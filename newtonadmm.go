// Package newtonadmm is a distributed GPU-style-accelerated second-order
// optimizer for multiclass classification, reproducing "Newton-ADMM: A
// Distributed GPU-Accelerated Optimizer for Multiclass Classification
// Problems" (Fang et al., SC 2020). The solver minimizes L2-regularized
// softmax cross-entropy (binary logistic regression when Classes == 2)
// over a simulated multi-node cluster: inexact Newton-CG on every rank,
// one consensus-ADMM communication round per iteration, and spectral
// penalty selection.
//
// The package also ships the paper's baselines (GIANT, InexactDANE, AIDE,
// synchronous SGD) behind the same Train call, synthetic analogues of the
// paper's datasets, an experiment harness that regenerates every table
// and figure of the evaluation, and an online inference subsystem —
// Predictor for in-process scoring and Serve for a micro-batching HTTP
// model server (see DESIGN.md for the architecture and PERF.md for
// measured numbers).
//
// Quickstart:
//
//	ds, _ := newtonadmm.PresetDataset("mnist", 0.5)
//	model, _ := newtonadmm.Train(ds, newtonadmm.Options{Ranks: 4, Lambda: 1e-5})
//	fmt.Println(model.TestAccuracy)
package newtonadmm

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"time"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/cg"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/linesearch"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/newton"
)

// Dataset is an in-memory classification dataset (dense or sparse
// features, train/test split).
type Dataset struct {
	inner *datasets.Dataset
}

// DatasetOptions configures synthetic dataset generation (a planted
// softmax model; see internal/datasets for the knobs' semantics).
type DatasetOptions struct {
	Name                 string
	Samples, TestSamples int
	Features, Classes    int
	Seed                 int64
	// Sparsity in (0,1) stores features as CSR at that density.
	Sparsity float64
	// Decay controls Hessian conditioning (0 = well conditioned).
	Decay float64
	// Noise is the label temperature, Separation the planted signal
	// strength.
	Noise, Separation float64
}

// GenerateDataset builds a synthetic dataset.
func GenerateDataset(opts DatasetOptions) (*Dataset, error) {
	ds, err := datasets.Generate(datasets.Config{
		Name: opts.Name, Samples: opts.Samples, TestSamples: opts.TestSamples,
		Features: opts.Features, Classes: opts.Classes, Seed: opts.Seed,
		Sparsity: opts.Sparsity, Decay: opts.Decay,
		Noise: opts.Noise, Separation: opts.Separation,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds}, nil
}

// PresetDataset builds one of the paper's Table 1 analogues: "higgs",
// "mnist", "cifar", or "e18". scale multiplies the default sample counts
// (scale <= 0 selects 1).
func PresetDataset(name string, scale float64) (*Dataset, error) {
	cfg, ok := datasets.PresetByName(name, scale)
	if !ok {
		return nil, fmt.Errorf("newtonadmm: unknown preset %q (want higgs, mnist, cifar, or e18)", name)
	}
	ds, err := datasets.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds}, nil
}

// LoadLIBSVM reads a LIBSVM/SVMLight file as the training set. testFile
// may be empty for no test split.
func LoadLIBSVM(trainFile, testFile string) (*Dataset, error) {
	f, err := os.Open(trainFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	x, y, classes, err := datasets.ReadLIBSVM(f)
	if err != nil {
		return nil, fmt.Errorf("newtonadmm: %s: %w", trainFile, err)
	}
	ds := &datasets.Dataset{
		Name: trainFile, Classes: classes, Xtrain: x, Ytrain: y,
	}
	if testFile != "" {
		tf, err := os.Open(testFile)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		xt, yt, tClasses, err := datasets.ReadLIBSVM(tf)
		if err != nil {
			return nil, fmt.Errorf("newtonadmm: %s: %w", testFile, err)
		}
		if tClasses > classes {
			ds.Classes = tClasses
		}
		if xt.Cols() != x.Cols() {
			return nil, fmt.Errorf("newtonadmm: train has %d features, test has %d", x.Cols(), xt.Cols())
		}
		ds.Xtest, ds.Ytest = xt, yt
	}
	return &Dataset{inner: ds}, nil
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.inner.Name }

// Classes returns the class count.
func (d *Dataset) Classes() int { return d.inner.Classes }

// Features returns the raw feature dimension.
func (d *Dataset) Features() int { return d.inner.NumFeatures() }

// TrainSize returns the training sample count.
func (d *Dataset) TrainSize() int { return d.inner.TrainSize() }

// TestSize returns the test sample count.
func (d *Dataset) TestSize() int { return d.inner.TestSize() }

// Solver names accepted by Options.Solver.
const (
	SolverNewtonADMM  = "newton-admm"
	SolverGIANT       = "giant"
	SolverInexactDANE = "inexact-dane"
	SolverAIDE        = "aide"
	SolverDiSCO       = "disco"
	SolverSyncSGD     = "sync-sgd"
	SolverNewton      = "newton" // single-node reference
)

// Options configures Train.
type Options struct {
	// Solver is one of the Solver* constants; "" selects Newton-ADMM.
	Solver string
	// Ranks is the simulated node count; <= 0 selects 4.
	Ranks int
	// Epochs is the outer-iteration budget; <= 0 uses each solver's
	// paper default.
	Epochs int
	// Lambda is the L2 regularization strength (paper default 1e-5
	// when zero).
	Lambda float64
	// Network names the interconnect model: "infiniband" (default),
	// "10g", "1g", "wan", or "none".
	Network string
	// UseTCP runs the cluster over real loopback TCP sockets.
	UseTCP bool
	// CGIters / CGTol configure the inner CG solver of the Newton-type
	// methods (paper: 10 iterations at 1e-4).
	CGIters int
	CGTol   float64
	// PenaltyPolicy selects Newton-ADMM's penalty adaptation:
	// "spectral" (default), "residual-balancing", or "fixed".
	PenaltyPolicy string
	// Jacobi enables diagonal preconditioning of the Newton-type CG
	// solves (optional optimization beyond the paper).
	Jacobi bool
	// BatchSize / StepSize configure SGD (and the SVRG inner solver);
	// Momentum in [0,1) enables heavy-ball SGD.
	BatchSize int
	StepSize  float64
	Momentum  float64
	// Tau is AIDE's catalyst weight.
	Tau float64
	// Seed drives the stochastic solvers.
	Seed int64
	// EvalTestAccuracy measures test accuracy along the trace.
	EvalTestAccuracy bool
	// CheckpointDir enables crash-safe checkpointing for the newton-admm
	// and giant solvers: an atomic, CRC-checked snapshot of the full
	// solver state every CheckpointEvery epochs (see internal/ckpt).
	// Other solvers reject the option.
	CheckpointDir string
	// CheckpointEvery is the snapshot period in epochs; <= 0 selects 1
	// when CheckpointDir is set.
	CheckpointEvery int
	// Resume continues from the latest good checkpoint in CheckpointDir;
	// the resumed run is bitwise-identical to an uninterrupted one. A
	// checkpoint from a different solver/dataset/config is rejected.
	Resume bool
	// MaxRestarts bounds automatic restart-from-latest-checkpoint when
	// training fails with a communication error (crashed or hung rank).
	MaxRestarts int
	// CollectiveTimeout bounds every blocking collective wait so a hung
	// rank surfaces as a typed error instead of wedging the run; zero
	// disables deadlines.
	CollectiveTimeout time.Duration
}

// TracePoint is one epoch of convergence history.
type TracePoint struct {
	Epoch        int
	Seconds      float64 // virtual time
	Objective    float64
	TestAccuracy float64 // NaN when not measured
}

// Model is a trained multiclass linear classifier.
type Model struct {
	// Weights holds (Classes-1) blocks of Features coefficients; the
	// last class is the zero-weight reference.
	Weights  []float64
	Classes  int
	Features int
	Solver   string
	// Trace is the recorded convergence history.
	Trace []TracePoint
	// TestAccuracy is the final test accuracy (NaN when not measured).
	TestAccuracy float64
	// TotalTime and AvgEpochTime are virtual (modeled) times.
	TotalTime, AvgEpochTime time.Duration
	// FailedEpoch is the outer iteration in flight when a failed run went
	// down (0 for successful runs). Train returns a partial Model with
	// the trace recorded so far alongside the error, so callers can flush
	// the convergence history instead of discarding it.
	FailedEpoch int
}

// NetworkByName resolves an interconnect model name.
func NetworkByName(name string) (cluster.NetworkModel, error) {
	switch name {
	case "", "infiniband", "infiniband-100g":
		return cluster.InfiniBand100G, nil
	case "10g", "ethernet-10g":
		return cluster.Ethernet10G, nil
	case "1g", "ethernet-1g":
		return cluster.Ethernet1G, nil
	case "wan":
		return cluster.WAN, nil
	case "none", "zero", "zero-cost":
		return cluster.ZeroCost, nil
	}
	return cluster.NetworkModel{}, fmt.Errorf("newtonadmm: unknown network %q", name)
}

func (o Options) withDefaults() Options {
	if o.Solver == "" {
		o.Solver = SolverNewtonADMM
	}
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-5
	}
	if o.CGIters <= 0 {
		o.CGIters = 10
	}
	if o.CGTol <= 0 {
		o.CGTol = 1e-4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 128
	}
	return o
}

// Train fits a softmax classifier on ds with the selected solver.
func Train(ds *Dataset, opts Options) (*Model, error) {
	if ds == nil || ds.inner == nil {
		return nil, fmt.Errorf("newtonadmm: nil dataset")
	}
	opts = opts.withDefaults()
	net, err := NetworkByName(opts.Network)
	if err != nil {
		return nil, err
	}
	ccfg := cluster.Config{
		Ranks: opts.Ranks, Network: net, UseTCP: opts.UseTCP,
		CollectiveTimeout: opts.CollectiveTimeout,
	}
	cgOpts := cg.Options{MaxIters: opts.CGIters, RelTol: opts.CGTol}
	if opts.CheckpointDir != "" && opts.Solver != SolverNewtonADMM && opts.Solver != SolverGIANT {
		return nil, fmt.Errorf("newtonadmm: solver %q does not support checkpointing", opts.Solver)
	}

	var (
		weights     []float64
		trace       metrics.Trace
		acc         = math.NaN()
		failedEpoch int
	)
	switch opts.Solver {
	case SolverNewtonADMM:
		res, err := core.Solve(ccfg, ds.inner, core.Options{
			Epochs: opts.Epochs, Lambda: opts.Lambda,
			Penalty: opts.PenaltyPolicy, CG: cgOpts, Jacobi: opts.Jacobi,
			LineSearch:       linesearch.Options{MaxIters: 10},
			EvalTestAccuracy: opts.EvalTestAccuracy,
			CheckpointDir:    opts.CheckpointDir,
			CheckpointEvery:  opts.CheckpointEvery,
			Resume:           opts.Resume,
			MaxRestarts:      opts.MaxRestarts,
		})
		if err != nil {
			if res != nil {
				return buildModel(ds, opts, res.Z, res.Trace, acc, res.FailedEpoch), err
			}
			return nil, err
		}
		weights, trace, acc = res.Z, res.Trace, res.TestAccuracy
	case SolverGIANT:
		res, err := baselines.SolveGIANT(ccfg, ds.inner, baselines.GiantOptions{
			Epochs: opts.Epochs, Lambda: opts.Lambda, CG: cgOpts,
			LineSearch:       linesearch.Options{MaxIters: 10},
			EvalTestAccuracy: opts.EvalTestAccuracy,
			CheckpointDir:    opts.CheckpointDir,
			CheckpointEvery:  opts.CheckpointEvery,
			Resume:           opts.Resume,
			MaxRestarts:      opts.MaxRestarts,
		})
		if err != nil {
			if res != nil {
				return buildModel(ds, opts, res.X, res.Trace, acc, res.FailedEpoch), err
			}
			return nil, err
		}
		weights, trace, acc = res.X, res.Trace, res.TestAccuracy
	case SolverInexactDANE:
		res, err := baselines.SolveInexactDANE(ccfg, ds.inner, baselines.DANEOptions{
			Epochs: opts.Epochs, Lambda: opts.Lambda, Eta: 1, Mu: 0,
			Seed: opts.Seed, EvalTestAccuracy: opts.EvalTestAccuracy,
			SVRG: baselines.SVRGOptions{Step: opts.StepSize, BatchSize: opts.BatchSize},
		})
		if err != nil {
			return nil, err
		}
		weights, trace, acc = res.X, res.Trace, res.TestAccuracy
	case SolverAIDE:
		res, err := baselines.SolveAIDE(ccfg, ds.inner, baselines.AIDEOptions{
			DANE: baselines.DANEOptions{
				Epochs: opts.Epochs, Lambda: opts.Lambda, Eta: 1, Mu: 0,
				Seed: opts.Seed, EvalTestAccuracy: opts.EvalTestAccuracy,
				SVRG: baselines.SVRGOptions{Step: opts.StepSize, BatchSize: opts.BatchSize},
			},
			Tau: opts.Tau,
		})
		if err != nil {
			return nil, err
		}
		weights, trace, acc = res.X, res.Trace, res.TestAccuracy
	case SolverDiSCO:
		res, err := baselines.SolveDiSCO(ccfg, ds.inner, baselines.DiSCOOptions{
			Epochs: opts.Epochs, Lambda: opts.Lambda,
			PCGIters: opts.CGIters, PCGTol: opts.CGTol,
			EvalTestAccuracy: opts.EvalTestAccuracy,
		})
		if err != nil {
			return nil, err
		}
		weights, trace, acc = res.X, res.Trace, res.TestAccuracy
	case SolverSyncSGD:
		res, err := baselines.SolveSyncSGD(ccfg, ds.inner, baselines.SGDOptions{
			Epochs: opts.Epochs, Lambda: opts.Lambda,
			BatchSize: opts.BatchSize, Step: opts.StepSize,
			Momentum: opts.Momentum, Seed: opts.Seed,
			EvalTestAccuracy: opts.EvalTestAccuracy,
		})
		if err != nil {
			return nil, err
		}
		weights, trace, acc = res.X, res.Trace, res.TestAccuracy
	case SolverNewton:
		w, tr, a, err := trainSingleNodeNewton(ds.inner, opts, cgOpts)
		if err != nil {
			return nil, err
		}
		weights, trace, acc = w, tr, a
	default:
		return nil, fmt.Errorf("newtonadmm: unknown solver %q", opts.Solver)
	}

	return buildModel(ds, opts, weights, trace, acc, failedEpoch), nil
}

// buildModel assembles the public Model from a solver's outputs (also
// used for the partial model returned alongside a training error).
func buildModel(ds *Dataset, opts Options, weights []float64, trace metrics.Trace, acc float64, failedEpoch int) *Model {
	m := &Model{
		Weights:      weights,
		Classes:      ds.inner.Classes,
		Features:     ds.inner.NumFeatures(),
		Solver:       opts.Solver,
		TestAccuracy: acc,
		AvgEpochTime: trace.AvgEpochTime(),
		FailedEpoch:  failedEpoch,
	}
	for _, p := range trace.Points {
		m.Trace = append(m.Trace, TracePoint{
			Epoch: p.Epoch, Seconds: p.Time.Seconds(),
			Objective: p.Objective, TestAccuracy: p.TestAccuracy,
		})
	}
	if final, ok := trace.Final(); ok {
		m.TotalTime = final.Time
	}
	return m
}

// trainSingleNodeNewton runs the paper's Algorithm 1 on the whole dataset
// in one process (the oracle used for the theta studies).
func trainSingleNodeNewton(ds *datasets.Dataset, opts Options, cgOpts cg.Options) ([]float64, metrics.Trace, float64, error) {
	dev := device.New("newton", 0)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, opts.Lambda)
	if err != nil {
		return nil, metrics.Trace{}, 0, err
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = 100
	}
	w := make([]float64, prob.Dim())
	start := time.Now()
	res := newton.Solve(prob, w, newton.Options{
		MaxIters: epochs, GradTol: 1e-8, CG: cgOpts,
		LineSearch: linesearch.Options{MaxIters: 10},
	})
	elapsed := time.Since(start)
	tr := metrics.Trace{Solver: SolverNewton, Dataset: ds.Name}
	for i, st := range res.Trace {
		tr.Append(metrics.Point{
			Epoch: i + 1, Objective: st.NewValue,
			Time:         elapsed * time.Duration(i+1) / time.Duration(maxIntPkg(len(res.Trace), 1)),
			TestAccuracy: math.NaN(), GradNorm: st.GradNorm,
		})
	}
	acc := math.NaN()
	if opts.EvalTestAccuracy && ds.Xtest != nil {
		acc = prob.Accuracy(ds.Xtest, ds.Ytest, w)
		if len(tr.Points) > 0 {
			tr.Points[len(tr.Points)-1].TestAccuracy = acc
		}
	}
	return w, tr, acc, nil
}

// Predict classifies dense feature rows (one-shot; for repeated calls
// build a Predictor, and see Serve for the batching HTTP server).
func (m *Model) Predict(rows [][]float64) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	out := make([]int, len(rows))
	if err := p.Predict(rows, out); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return out, nil
}

// Evaluate returns train and test accuracy on ds (test is NaN without a
// test split).
func (m *Model) Evaluate(ds *Dataset) (train, test float64, err error) {
	dev := device.New("evaluate", 0)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.inner.Xtrain, ds.inner.Ytrain, m.Classes, 0)
	if err != nil {
		return 0, 0, err
	}
	train = prob.Accuracy(ds.inner.Xtrain, ds.inner.Ytrain, m.Weights)
	test = math.NaN()
	if ds.inner.Xtest != nil {
		test = prob.Accuracy(ds.inner.Xtest, ds.inner.Ytest, m.Weights)
	}
	return train, test, nil
}

// Save writes the model with encoding/gob.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(m)
}

// LoadModel reads a model written by Save.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Model
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func maxIntPkg(a, b int) int {
	if a > b {
		return a
	}
	return b
}
