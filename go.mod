module newtonadmm

go 1.24
