package newtonadmm

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestControlSmoke is the CI control-plane smoke: a 1-replica fleet
// with the autoscaler enabled rides a load ramp up to more replicas,
// drains back down when the load stops, and exposes the whole episode
// on /metricz. This is the test the ci control-smoke job runs.
func TestControlSmoke(t *testing.T) {
	m := testModel(4, 6, 31)
	rs, err := ServeSharded(m, RouterOptions{
		Addr: "127.0.0.1:0", Replicas: 1, Mode: "replica", Workers: 1,
		MaxBatch: 1, Linger: -1, QueueDepth: 64, HealthEvery: -1,
		AutoscaleMin: 1, AutoscaleMax: 3,
		AutoscaleTick: 2 * time.Millisecond, AutoscaleCooldown: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	scaler := rs.Autoscaler()
	if scaler == nil {
		t.Fatal("AutoscaleMax > 0 did not start an autoscaler")
	}

	// Ramp: concurrent callers against MaxBatch=1 replicas keep
	// utilization pinned above the 0.75 high-water mark.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Int64
	target := rs.Target()
	row := []float64{0.5, -1, 2, 0, 1, -0.5}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := target.Predict(row); err == nil {
					served.Add(1)
				}
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for scaler.Ups() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if scaler.Ups() == 0 {
		t.Fatalf("autoscaler never scaled up under saturation (served %d)", served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no request served during the ramp")
	}

	// Quiet: the loop drains back toward Min.
	deadline = time.Now().Add(10 * time.Second)
	for scaler.Replicas() > 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if scaler.Replicas() != 1 || scaler.Downs() == 0 {
		t.Fatalf("fleet did not drain to Min after the ramp: replicas=%d downs=%d",
			scaler.Replicas(), scaler.Downs())
	}

	// Accepted work survived the whole episode: scale-downs drain, so a
	// request admitted before a retirement still completed.
	resp, _ := postInstances(t, "http://"+rs.Addr()+"/v1/predict", []any{row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after scale-down: status %d", resp.StatusCode)
	}

	// The episode is on /metricz: autoscale counters moved and the
	// admission families exist (at zero — no policy installed).
	mresp, err := http.Get("http://" + rs.Addr() + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"nadmm_autoscale_replicas 1",
		"nadmm_autoscale_ups_total",
		"nadmm_autoscale_downs_total",
		`nadmm_admission_rejected_total{reason="rate_limited"} 0`,
		`nadmm_admission_rejected_total{reason="queue_full"} 0`,
		"nadmm_admission_active 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metricz missing %q", want)
		}
	}
}

// TestRouterAdmission429 pins the router-plane rejection surface: with
// a starved token bucket, /v1/predict answers 429 with a
// machine-readable reason and a Retry-After header.
func TestRouterAdmission429(t *testing.T) {
	m := testModel(4, 6, 32)
	rs, err := ServeSharded(m, RouterOptions{
		Addr: "127.0.0.1:0", Replicas: 1, Mode: "replica", Workers: 1,
		MaxBatch: 8, Linger: -1, HealthEvery: -1,
		Admission: "token-bucket", AdmissionRate: 0.001, AdmissionBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	base := "http://" + rs.Addr()
	row := []float64{0.5, -1, 2, 0, 1, -0.5}

	var rejected int
	for i := 0; i < 6; i++ {
		resp, body := postInstances(t, base+"/v1/predict", []any{row})
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			rejected++
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 without a Retry-After header")
			}
			var er struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("429 body is not JSON: %v (%s)", err, body)
			}
			if er.Reason != "rate_limited" {
				t.Fatalf("429 reason = %q, want rate_limited", er.Reason)
			}
		default:
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if rejected == 0 {
		t.Fatal("a 2-token bucket admitted 6 requests")
	}
	if got := rs.Router().AdmissionStats().Total(); got != uint64(rejected) {
		t.Fatalf("router rejection counter = %d, callers saw %d", got, rejected)
	}

	// An invalid priority header is a 400, not a silent default.
	req, _ := http.NewRequest("POST", base+"/v1/predict", strings.NewReader(`{"instances":[[0,0,0,0,0,0]]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Nadmm-Priority", "urgent")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority header: status %d, want 400", resp.StatusCode)
	}
}

// TestAutoscaleDownRacesSwap drives the lmu seam directly: fleet-wide
// hot swaps racing autoscaler scale-ups/scale-downs. The membership
// mutex must keep Swap from iterating into a retired (closed) registry
// and keep scale-up spawning replicas of the latest deployed model.
func TestAutoscaleDownRacesSwap(t *testing.T) {
	m := testModel(4, 6, 33)
	rs, err := ServeSharded(m, RouterOptions{
		Replicas: 2, Mode: "replica", Workers: 1,
		MaxBatch: 8, Linger: -1, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Swapper: rolls the fleet to fresh models as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := int64(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seed++
			if _, err := rs.Swap(testModel(4, 6, seed)); err != nil {
				t.Errorf("swap during scaling: %v", err)
				return
			}
		}
	}()
	// Traffic: every outcome must be a success (no admission policy, big
	// queue, and drains wait out accepted work).
	wg.Add(1)
	go func() {
		defer wg.Done()
		target := rs.Target()
		row := []float64{0.5, -1, 2, 0, 1, -0.5}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := target.Predict(row); err != nil {
				t.Errorf("predict during swap/scale churn: %v", err)
				return
			}
		}
	}()

	// Scaler actuator, driven synchronously for determinism: grow to 4,
	// shrink back to 2, repeatedly — exactly what the control loop does,
	// minus the hysteresis timing.
	act := fleetActuator{rs: rs}
	for cycle := 0; cycle < 10; cycle++ {
		for act.Replicas() < 4 {
			if err := act.ScaleUp(); err != nil {
				t.Fatalf("cycle %d scale-up: %v", cycle, err)
			}
		}
		for act.Replicas() > 2 {
			if err := act.ScaleDown(); err != nil {
				t.Fatalf("cycle %d scale-down: %v", cycle, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if n := act.Replicas(); n != 2 {
		t.Fatalf("fleet ended with %d replicas, want 2", n)
	}
	// The last deployed model is what a future scale-up would spawn.
	if _, err := rs.Swap(testModel(4, 6, 999)); err != nil {
		t.Fatalf("final swap: %v", err)
	}
}
