package newtonadmm

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// postInstances is a test helper for the kserve wire format.
func postInstances(t *testing.T, url string, instances []any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"instances": instances})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// mixedInstances builds alternating dense/sparse wire instances from
// dense rows.
func mixedInstances(rows [][]float64) []any {
	sparse := denseToSparse(rows)
	instances := make([]any, len(rows))
	for i := range rows {
		if i%2 == 0 {
			instances[i] = rows[i]
		} else {
			instances[i] = map[string]any{"indices": sparse[i].Indices, "values": sparse[i].Values}
		}
	}
	return instances
}

type wireResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities"`
	ModelVersion  int64       `json:"model_version"`
}

// TestServeShardedClassBitwiseHTTP drives the in-process class-sharded
// tier over HTTP and pins its predictions and probabilities bitwise to
// the single-node model, mixed dense+sparse in one request.
func TestServeShardedClassBitwiseHTTP(t *testing.T) {
	m := testModel(7, 12, 21)
	rng := rand.New(rand.NewSource(22))
	rows := make([][]float64, 9)
	for i := range rows {
		rows[i] = make([]float64, m.Features)
		for j := range rows[i] {
			if rng.Float64() < 0.7 {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	wantPred, err := m.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	wantProba, err := m.PredictProba(rows)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := ServeSharded(m, RouterOptions{
		Addr: "127.0.0.1:0", Replicas: 3, Mode: "class", Workers: 1,
		MaxBatch: 8, Linger: 50 * time.Microsecond, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	base := "http://" + rs.Addr()

	resp, body := postInstances(t, base+"/v1/proba", mixedInstances(rows))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr wireResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if pr.Predictions[i] != wantPred[i] {
			t.Fatalf("row %d: router class %d, single-node %d", i, pr.Predictions[i], wantPred[i])
		}
		for c := range wantProba[i] {
			if pr.Probabilities[i][c] != wantProba[i][c] { // bitwise through JSON
				t.Fatalf("row %d class %d: router %v, single-node %v", i, c, pr.Probabilities[i][c], wantProba[i][c])
			}
		}
	}

	// healthz reports the class placement.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Mode     string `json:"mode"`
		Replicas []struct {
			State     string `json:"state"`
			ShardLow  int    `json:"shard_low"`
			ShardHigh int    `json:"shard_high"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.Mode != "class" || len(health.Replicas) != 3 {
		t.Fatalf("healthz: %+v", health)
	}
	covered := 0
	for _, r := range health.Replicas {
		covered += r.ShardHigh - r.ShardLow
	}
	if covered != m.Classes-1 {
		t.Fatalf("shards cover %d explicit rows, want %d", covered, m.Classes-1)
	}
}

// TestServeShardedReplicaEndToEnd drives the replica-balanced tier over
// HTTP: predictions match, the fleet reloads in one coordinated call,
// and the drain admin endpoint works.
func TestServeShardedReplicaEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	m := testModel(4, 6, 23)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	rs, err := ServeSharded(m, RouterOptions{
		Addr: "127.0.0.1:0", Replicas: 2, Mode: "replica", Workers: 1,
		MaxBatch: 8, Linger: 50 * time.Microsecond, ModelPath: path, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	base := "http://" + rs.Addr()

	row := []float64{0.5, -1, 2, 0, 1, -0.5}
	want, err := m.Predict([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postInstances(t, base+"/v1/predict", []any{row})
	var pr wireResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || pr.Predictions[0] != want[0] {
		t.Fatalf("status %d, got %+v want class %d", resp.StatusCode, pr, want[0])
	}

	// Coordinated reload bumps every replica.
	rresp, err := http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		ModelVersion int64 `json:"model_version"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || rr.ModelVersion != 2 {
		t.Fatalf("reload: status %d version %d, want 200 v2", rresp.StatusCode, rr.ModelVersion)
	}

	// Drain replica 0 through the admin endpoint; serving continues.
	dresp, err := http.Post(base+"/v1/replicas?id=0&action=drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", dresp.StatusCode)
	}
	resp, _ = postInstances(t, base+"/v1/predict", []any{row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict during drain: status %d", resp.StatusCode)
	}
	hresp, _ := http.Get(base + "/healthz")
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q with one drained replica, want degraded", health.Status)
	}
	// SwapReplica hot-swaps a single replica while the fleet serves.
	if _, err := rs.SwapReplica(1, testModel(4, 6, 24)); err != nil {
		t.Fatal(err)
	}
	resp, _ = postInstances(t, base+"/v1/predict", []any{row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after single-replica swap: status %d", resp.StatusCode)
	}
}

// TestServeShardedJoinMultiServer is the multi-process topology in one
// test process: two shard replicas as full ModelServers on their own
// ports, fronted by a router joined by URL — the partial-logit data
// plane, /healthz shard discovery, and coordinated /v1/reload all cross
// real HTTP, and the merged output stays bitwise identical to the
// single-node model.
func TestServeShardedJoinMultiServer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	m := testModel(5, 8, 25)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	var joins []string
	for i := 0; i < 2; i++ {
		shard, err := Serve(m, ServeOptions{
			Addr: "127.0.0.1:0", MaxBatch: 8, Linger: 50 * time.Microsecond,
			Workers: 1, ModelPath: path, ShardIndex: i, ShardCount: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer shard.Close()
		joins = append(joins, "http://"+shard.Addr())
	}

	rs, err := ServeSharded(nil, RouterOptions{
		Addr: "127.0.0.1:0", Mode: "class", Join: joins, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	base := "http://" + rs.Addr()

	rng := rand.New(rand.NewSource(26))
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = make([]float64, m.Features)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	wantPred, err := m.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	wantProba, err := m.PredictProba(rows)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postInstances(t, base+"/v1/proba", mixedInstances(rows))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr wireResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if pr.Predictions[i] != wantPred[i] {
			t.Fatalf("row %d: joined router class %d, single-node %d", i, pr.Predictions[i], wantPred[i])
		}
		for c := range wantProba[i] {
			if pr.Probabilities[i][c] != wantProba[i][c] {
				t.Fatalf("row %d class %d: joined router %v, single-node %v (delta %v)",
					i, c, pr.Probabilities[i][c], wantProba[i][c], pr.Probabilities[i][c]-wantProba[i][c])
			}
		}
	}

	// Coordinated reload across both remote shard replicas.
	rresp, err := http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		ModelVersion int64 `json:"model_version"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || rr.ModelVersion != 2 {
		t.Fatalf("reload: status %d version %d, want 200 v2", rresp.StatusCode, rr.ModelVersion)
	}
	resp, body = postInstances(t, base+"/v1/predict", []any{rows[0]})
	var pr2 wireResponse
	if err := json.Unmarshal(body, &pr2); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || pr2.Predictions[0] != wantPred[0] {
		t.Fatalf("post-reload predict: status %d got %+v want %d (%s)", resp.StatusCode, pr2, wantPred[0], body)
	}
	if pr2.ModelVersion != 2 {
		t.Fatalf("post-reload model_version %d, want 2", pr2.ModelVersion)
	}
}

// TestServeShardedValidation covers construction-time errors.
func TestServeShardedValidation(t *testing.T) {
	if _, err := ServeSharded(nil, RouterOptions{}); err == nil {
		t.Fatal("accepted nil model without Join")
	}
	m := testModel(3, 4, 27)
	// 2 explicit class rows cannot split across 3 shards.
	if _, err := ServeSharded(m, RouterOptions{Replicas: 3, Mode: "class", HealthEvery: -1}); err == nil {
		t.Fatal("accepted more shards than explicit class rows")
	}
	if _, err := ServeSharded(m, RouterOptions{Replicas: 2, Mode: "bogus", HealthEvery: -1}); err == nil {
		t.Fatal("accepted unknown mode")
	}
	// Shard options on the single-node server are validated too.
	if _, err := Serve(m, ServeOptions{ShardIndex: 5, ShardCount: 2, Workers: 1}); err == nil {
		t.Fatal("accepted out-of-range shard index")
	}
	// Replica mode already replicates the whole model; a per-shard
	// sibling count there is a misconfiguration, not a bigger fleet.
	if _, err := ServeSharded(m, RouterOptions{Replicas: 2, ReplicasPerShard: 2, Mode: "replica", HealthEvery: -1}); err == nil {
		t.Fatal("accepted ReplicasPerShard in replica mode")
	}
}

// TestServeShardedGridFailover drives the public R x S grid: 2 class
// shards x 2 zone-spread siblings. Scoring stays bitwise-identical to
// the single-node model, healthz reports the grid placement, draining
// one sibling leaves the shard served, draining its last sibling is
// refused with 409, and a fleet-wide Swap re-slices every member onto
// its own shard (not one shard per member).
func TestServeShardedGridFailover(t *testing.T) {
	m := testModel(5, 8, 31)
	rng := rand.New(rand.NewSource(33))
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = make([]float64, m.Features)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	wantProba, err := m.PredictProba(rows)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := ServeSharded(m, RouterOptions{
		Addr: "127.0.0.1:0", Replicas: 2, ReplicasPerShard: 2,
		Zones: []string{"zone-a", "zone-b"}, Mode: "class", Workers: 1,
		MaxBatch: 8, Linger: 50 * time.Microsecond, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	base := "http://" + rs.Addr()

	checkBitwise := func(stage string) {
		t.Helper()
		resp, body := postInstances(t, base+"/v1/proba", mixedInstances(rows))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", stage, resp.StatusCode, body)
		}
		var pr wireResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			for c := range wantProba[i] {
				if pr.Probabilities[i][c] != wantProba[i][c] {
					t.Fatalf("%s: row %d class %d: grid %v, single-node %v",
						stage, i, c, pr.Probabilities[i][c], wantProba[i][c])
				}
			}
		}
	}
	checkBitwise("fresh grid")

	// healthz shows 4 members in 2 groups with spread zones and full
	// coverage.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Shards []struct {
			Group, Healthy, Members int
		} `json:"shards"`
		Replicas []struct {
			ID    int    `json:"id"`
			Group int    `json:"group"`
			Zone  string `json:"zone"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || len(health.Replicas) != 4 || len(health.Shards) != 2 {
		t.Fatalf("healthz: %+v", health)
	}
	for _, sh := range health.Shards {
		if sh.Healthy != 2 || sh.Members != 2 {
			t.Fatalf("shard %d: %d/%d healthy, want 2/2", sh.Group, sh.Healthy, sh.Members)
		}
	}
	zones := map[int]map[string]bool{}
	for _, rep := range health.Replicas {
		if zones[rep.Group] == nil {
			zones[rep.Group] = map[string]bool{}
		}
		zones[rep.Group][rep.Zone] = true
	}
	for g, zs := range zones {
		if len(zs) != 2 {
			t.Fatalf("group %d zones %v, want spread across 2", g, zs)
		}
	}

	// Drain one sibling of group 0: the shard keeps serving bitwise off
	// the survivor.
	adminPost := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(base+"/v1/replicas", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := adminPost(`{"id":0,"action":"drain"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain sibling: HTTP %d", resp.StatusCode)
	}
	checkBitwise("one sibling drained")
	// Its sibling is now the shard's last member: refused without force.
	if resp := adminPost(`{"id":1,"action":"drain"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("drain last member: HTTP %d, want 409", resp.StatusCode)
	}
	if resp := adminPost(`{"id":0,"action":"undrain"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain: HTTP %d", resp.StatusCode)
	}

	// A fleet-wide hot swap re-slices each of the 4 members onto its own
	// shard and stays bitwise.
	if _, err := rs.Swap(m); err != nil {
		t.Fatal(err)
	}
	checkBitwise("after fleet swap")
}

// TestRouterTargetProba checks the in-process load-generation target's
// probability path agrees with the model (used by nadmm-bench serve
// -proba -compare).
func TestRouterTargetProba(t *testing.T) {
	m := testModel(4, 5, 28)
	rs, err := ServeSharded(m, RouterOptions{
		Replicas: 2, Mode: "class", Workers: 1, HealthEvery: -1,
		MaxBatch: 8, Linger: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	row := []float64{1, -0.5, 0, 2, 0.25}
	want, err := m.PredictProba([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, m.Classes)
	cls, err := rs.Target().Proba(row, got)
	if err != nil {
		t.Fatal(err)
	}
	for c := range want[0] {
		if got[c] != want[0][c] {
			t.Fatalf("class %d: target %v, model %v", c, got[c], want[0][c])
		}
	}
	wantCls, err := m.Predict([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}
	if cls != wantCls[0] {
		t.Fatalf("target class %d, model %d", cls, wantCls[0])
	}
	if _, err := rs.Target().Predict(row); err != nil {
		t.Fatal(err)
	}
}
