package newtonadmm

// Online inference: the public surface of internal/serve. A trained (or
// loaded) Model can score sparse rows and class probabilities directly,
// be wrapped in a reusable zero-allocation Predictor, or be served over
// HTTP with dynamic micro-batching, backpressure, and hot checkpoint
// reload — see DESIGN.md for the architecture and PERF.md for measured
// throughput/latency.

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"newtonadmm/internal/serve"
)

// SparseRow is one sparse feature row: Values[i] at column Indices[i],
// indices strictly increasing and zero-based.
type SparseRow struct {
	Indices []int
	Values  []float64
}

// Predictor is a persistent, thread-safe scorer over one model snapshot.
// Unlike the one-shot Model.Predict helpers it keeps its device, scratch
// buffers, and staging areas alive between calls, so steady-state
// batches perform zero heap allocations. Close releases the device.
type Predictor struct {
	p *serve.Predictor
}

// NewPredictor builds a reusable predictor from the model. workers <= 0
// selects NumCPU device workers.
func (m *Model) NewPredictor(workers int) (*Predictor, error) {
	p, err := serve.NewPredictor(m.Weights, m.Classes, m.Features, workers)
	if err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return &Predictor{p: p}, nil
}

// Predict writes the predicted class of each dense row into
// out[:len(rows)].
func (p *Predictor) Predict(rows [][]float64, out []int) error {
	return p.p.PredictDense(rows, out)
}

// PredictSparse writes the predicted class of each sparse row into
// out[:len(idx)]; idx and val run parallel (see SparseRow for the row
// convention — this indices/values form is the zero-allocation path).
func (p *Predictor) PredictSparse(idx [][]int, val [][]float64, out []int) error {
	return p.p.PredictCSR(idx, val, out)
}

// Proba writes each row's class-probability vector into out, row-major
// len(rows) x Classes with the reference class last.
func (p *Predictor) Proba(rows [][]float64, out []float64) error {
	return p.p.ProbaDense(rows, out)
}

// ProbaSparse is Proba for sparse rows.
func (p *Predictor) ProbaSparse(idx [][]int, val [][]float64, out []float64) error {
	return p.p.ProbaCSR(idx, val, out)
}

// Classes returns the model's class count.
func (p *Predictor) Classes() int { return p.p.Classes() }

// Features returns the model's feature dimension.
func (p *Predictor) Features() int { return p.p.Features() }

// Close releases the predictor's device. The predictor must not be used
// afterwards.
func (p *Predictor) Close() { p.p.Close() }

// splitSparse converts []SparseRow to the parallel-slices form.
func splitSparse(rows []SparseRow) ([][]int, [][]float64) {
	idx := make([][]int, len(rows))
	val := make([][]float64, len(rows))
	for i, r := range rows {
		idx[i], val[i] = r.Indices, r.Values
	}
	return idx, val
}

// PredictSparse classifies sparse feature rows (one-shot; for repeated
// calls build a Predictor).
func (m *Model) PredictSparse(rows []SparseRow) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	idx, val := splitSparse(rows)
	out := make([]int, len(rows))
	if err := p.PredictSparse(idx, val, out); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return out, nil
}

// PredictProba returns the softmax class probabilities of dense rows,
// one []float64 of length Classes per row (reference class last).
func (m *Model) PredictProba(rows [][]float64) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	flat := make([]float64, len(rows)*m.Classes)
	if err := p.Proba(rows, flat); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return unflattenProba(flat, len(rows), m.Classes), nil
}

// PredictProbaSparse is PredictProba for sparse rows.
func (m *Model) PredictProbaSparse(rows []SparseRow) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	idx, val := splitSparse(rows)
	flat := make([]float64, len(rows)*m.Classes)
	if err := p.ProbaSparse(idx, val, flat); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return unflattenProba(flat, len(rows), m.Classes), nil
}

func unflattenProba(flat []float64, rows, classes int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = flat[i*classes : (i+1)*classes]
	}
	return out
}

// ServeOptions configures an HTTP model server.
type ServeOptions struct {
	// Addr is the listen address (e.g. ":8080"); empty serves no
	// listener — use Handler with your own server.
	Addr string
	// MaxBatch is the micro-batcher's launch size cap; <= 0 selects 64.
	MaxBatch int
	// Linger is the micro-batcher's flush window; 0 selects 200µs,
	// negative disables lingering.
	Linger time.Duration
	// QueueDepth bounds the admission queue; <= 0 selects 4*MaxBatch.
	QueueDepth int
	// Workers is the predictor's device worker count; <= 0 selects
	// NumCPU.
	Workers int
	// ModelPath, when set, enables POST /v1/reload (and Watch) to
	// hot-swap the checkpoint at that path into the running server.
	ModelPath string
	// Watch > 0 polls ModelPath at that interval and hot-swaps when the
	// file changes (mtime/size), so `nadmm-train -save` into the same
	// path deploys with zero downtime.
	Watch time.Duration
}

// ModelServer is a running (or embeddable) inference server.
type ModelServer struct {
	reg  *serve.Registry
	bat  *serve.Batcher
	srv  *serve.Server
	opts ServeOptions

	ln    net.Listener
	hsrv  *http.Server
	stopW chan struct{}
}

// Serve builds the full serving stack for m — predictor, hot-swap
// registry, micro-batcher, HTTP surface — and, when opts.Addr is set,
// starts listening. The returned server's Swap method (and the
// /v1/reload endpoint when ModelPath is set) replaces the model with
// zero downtime.
func Serve(m *Model, opts ServeOptions) (*ModelServer, error) {
	ms := &ModelServer{
		reg:  serve.NewRegistry(),
		opts: opts,
	}
	if m != nil {
		if _, err := ms.swapModel(m, opts.ModelPath); err != nil {
			return nil, err
		}
	}
	ms.bat = serve.NewBatcher(ms.reg, serve.BatcherConfig{
		MaxBatch: opts.MaxBatch, MaxLinger: opts.Linger, QueueDepth: opts.QueueDepth,
	})
	var reload func() (int64, error)
	if opts.ModelPath != "" {
		reload = func() (int64, error) { return ms.reloadFromPath() }
	}
	ms.srv = serve.NewServer(ms.reg, ms.bat, reload)

	if opts.Addr != "" {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			ms.shutdown()
			return nil, fmt.Errorf("newtonadmm: %w", err)
		}
		ms.ln = ln
		ms.hsrv = &http.Server{Handler: ms.srv.Handler()}
		go ms.hsrv.Serve(ln)
	}
	if opts.Watch > 0 && opts.ModelPath != "" {
		ms.stopW = make(chan struct{})
		go ms.watch()
	}
	return ms, nil
}

func (ms *ModelServer) swapModel(m *Model, path string) (int64, error) {
	p, err := serve.NewPredictor(m.Weights, m.Classes, m.Features, ms.opts.Workers)
	if err != nil {
		return 0, fmt.Errorf("newtonadmm: %w", err)
	}
	return ms.reg.Swap(p, serve.ModelMeta{Path: path, Solver: m.Solver}), nil
}

func (ms *ModelServer) reloadFromPath() (int64, error) {
	m, err := LoadModel(ms.opts.ModelPath)
	if err != nil {
		return 0, err
	}
	return ms.swapModel(m, ms.opts.ModelPath)
}

// watch polls ModelPath and hot-swaps when the checkpoint changes.
func (ms *ModelServer) watch() {
	var lastMod time.Time
	var lastSize int64
	if st, err := os.Stat(ms.opts.ModelPath); err == nil {
		lastMod, lastSize = st.ModTime(), st.Size()
	}
	tick := time.NewTicker(ms.opts.Watch)
	defer tick.Stop()
	for {
		select {
		case <-ms.stopW:
			return
		case <-tick.C:
			st, err := os.Stat(ms.opts.ModelPath)
			if err != nil {
				continue
			}
			if st.ModTime().Equal(lastMod) && st.Size() == lastSize {
				continue
			}
			if v, err := ms.reloadFromPath(); err != nil {
				// Keep retrying (a half-written checkpoint heals on the
				// next tick), but tell the operator — a corrupt file
				// would otherwise fail silently forever while healthz
				// keeps reporting the old version.
				log.Printf("newtonadmm: hot-swap watch: reloading %s failed: %v", ms.opts.ModelPath, err)
			} else {
				lastMod, lastSize = st.ModTime(), st.Size()
				log.Printf("newtonadmm: hot-swap watch: %s deployed as model version %d", ms.opts.ModelPath, v)
			}
		}
	}
}

// Swap hot-swaps a new model into the running server with zero downtime
// and returns the new model version.
func (ms *ModelServer) Swap(m *Model) (int64, error) {
	if m == nil {
		return 0, fmt.Errorf("newtonadmm: nil model")
	}
	return ms.swapModel(m, "")
}

// Handler returns the HTTP surface (/v1/predict, /v1/proba, /healthz,
// /metricz, /v1/reload) for embedding in an existing server.
func (ms *ModelServer) Handler() http.Handler { return ms.srv.Handler() }

// Addr returns the bound listen address ("" when not listening) — handy
// with ":0".
func (ms *ModelServer) Addr() string {
	if ms.ln == nil {
		return ""
	}
	return ms.ln.Addr().String()
}

// Batcher exposes the micro-batcher, the in-process load-test target.
func (ms *ModelServer) Batcher() *serve.Batcher { return ms.bat }

func (ms *ModelServer) shutdown() {
	if ms.stopW != nil {
		close(ms.stopW)
		ms.stopW = nil
	}
	if ms.hsrv != nil {
		ms.hsrv.Close()
		ms.hsrv = nil
	}
	if ms.bat != nil {
		ms.bat.Close()
	}
	ms.reg.Close()
}

// Close stops the listener (if any), drains the batcher, and releases
// the model's device.
func (ms *ModelServer) Close() { ms.shutdown() }
