package newtonadmm

// Online inference: the public surface of internal/serve. A trained (or
// loaded) Model can score sparse rows and class probabilities directly,
// be wrapped in a reusable zero-allocation Predictor, or be served over
// HTTP with dynamic micro-batching, backpressure, and hot checkpoint
// reload — see DESIGN.md for the architecture and PERF.md for measured
// throughput/latency.

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/router"
	"newtonadmm/internal/serve"
)

// SparseRow is one sparse feature row: Values[i] at column Indices[i],
// indices strictly increasing and zero-based.
type SparseRow struct {
	Indices []int
	Values  []float64
}

// Predictor is a persistent, thread-safe scorer over one model snapshot.
// Unlike the one-shot Model.Predict helpers it keeps its device, scratch
// buffers, and staging areas alive between calls, so steady-state
// batches perform zero heap allocations. Close releases the device.
type Predictor struct {
	p *serve.Predictor
}

// NewPredictor builds a reusable predictor from the model. workers <= 0
// selects NumCPU device workers.
func (m *Model) NewPredictor(workers int) (*Predictor, error) {
	p, err := serve.NewPredictor(m.Weights, m.Classes, m.Features, workers)
	if err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return &Predictor{p: p}, nil
}

// Predict writes the predicted class of each dense row into
// out[:len(rows)].
func (p *Predictor) Predict(rows [][]float64, out []int) error {
	return p.p.PredictDense(rows, out)
}

// PredictSparse writes the predicted class of each sparse row into
// out[:len(idx)]; idx and val run parallel (see SparseRow for the row
// convention — this indices/values form is the zero-allocation path).
func (p *Predictor) PredictSparse(idx [][]int, val [][]float64, out []int) error {
	return p.p.PredictCSR(idx, val, out)
}

// Proba writes each row's class-probability vector into out, row-major
// len(rows) x Classes with the reference class last.
func (p *Predictor) Proba(rows [][]float64, out []float64) error {
	return p.p.ProbaDense(rows, out)
}

// ProbaSparse is Proba for sparse rows.
func (p *Predictor) ProbaSparse(idx [][]int, val [][]float64, out []float64) error {
	return p.p.ProbaCSR(idx, val, out)
}

// Classes returns the model's class count.
func (p *Predictor) Classes() int { return p.p.Classes() }

// Features returns the model's feature dimension.
func (p *Predictor) Features() int { return p.p.Features() }

// Close releases the predictor's device. The predictor must not be used
// afterwards.
func (p *Predictor) Close() { p.p.Close() }

// splitSparse converts []SparseRow to the parallel-slices form.
func splitSparse(rows []SparseRow) ([][]int, [][]float64) {
	idx := make([][]int, len(rows))
	val := make([][]float64, len(rows))
	for i, r := range rows {
		idx[i], val[i] = r.Indices, r.Values
	}
	return idx, val
}

// PredictSparse classifies sparse feature rows (one-shot; for repeated
// calls build a Predictor).
func (m *Model) PredictSparse(rows []SparseRow) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	idx, val := splitSparse(rows)
	out := make([]int, len(rows))
	if err := p.PredictSparse(idx, val, out); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return out, nil
}

// PredictProba returns the softmax class probabilities of dense rows,
// one []float64 of length Classes per row (reference class last).
func (m *Model) PredictProba(rows [][]float64) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	flat := make([]float64, len(rows)*m.Classes)
	if err := p.Proba(rows, flat); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return unflattenProba(flat, len(rows), m.Classes), nil
}

// PredictProbaSparse is PredictProba for sparse rows.
func (m *Model) PredictProbaSparse(rows []SparseRow) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	p, err := m.NewPredictor(0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	idx, val := splitSparse(rows)
	flat := make([]float64, len(rows)*m.Classes)
	if err := p.ProbaSparse(idx, val, flat); err != nil {
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	return unflattenProba(flat, len(rows), m.Classes), nil
}

func unflattenProba(flat []float64, rows, classes int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = flat[i*classes : (i+1)*classes]
	}
	return out
}

// ServeOptions configures an HTTP model server.
type ServeOptions struct {
	// Addr is the listen address (e.g. ":8080"); empty serves no
	// listener — use Handler with your own server.
	Addr string
	// WireAddr, when set, additionally listens there with the binary
	// frame data plane (internal/wire; see DESIGN.md "Binary data
	// plane"), sharing the same batcher and registry as the HTTP
	// surface. A scatter-gather router joins it via a tcp:// URL.
	WireAddr string
	// MaxBatch is the micro-batcher's launch size cap; <= 0 selects 64.
	MaxBatch int
	// Linger is the micro-batcher's flush window; 0 selects 200µs,
	// negative disables lingering.
	Linger time.Duration
	// QueueDepth bounds the admission queue; <= 0 selects 4*MaxBatch.
	QueueDepth int
	// Workers is the predictor's device worker count; <= 0 selects
	// NumCPU.
	Workers int
	// ModelPath, when set, enables POST /v1/reload (and Watch) to
	// hot-swap the checkpoint at that path into the running server.
	ModelPath string
	// Watch > 0 polls ModelPath at that interval and hot-swaps when the
	// file changes (mtime/size), so `nadmm-train -save` into the same
	// path deploys with zero downtime.
	Watch time.Duration
	// ShardCount > 0 makes this server a class-shard replica: it serves
	// only shard ShardIndex of ShardCount — the contiguous slice of the
	// model's explicit class rows assigned by the shard planner — and
	// reports the shard range on /healthz so a scatter-gather router can
	// assemble the fleet. Reload and Watch re-slice the same shard from
	// the refreshed checkpoint.
	ShardIndex, ShardCount int
	// Zone is this replica's failure-domain label (zone, rack, host),
	// advertised on /healthz and the binary data plane's meta frame. A
	// router fronting a replicated fleet uses it to enforce the
	// zone-spread placement invariant — see DESIGN.md "Replicated-shard
	// topology". Empty opts out of placement checks.
	Zone string
	// SampleEvery is the observability sampling period: every Nth
	// request is latency-stamped and trace-captured (DESIGN.md
	// "Observability"). 0 selects the default (8); negative disables
	// sampling entirely.
	SampleEvery int
	// Admission selects the admission policy evaluated on every submit,
	// before a queue slot is taken (DESIGN.md "Control plane"): "" or
	// "none" keeps admission open (the queue bound still applies),
	// "token-bucket" admits AdmissionRate requests/s with bursts up to
	// AdmissionBurst, "cost" prices each request at rows x features
	// against a bucket refilled at AdmissionRate cost-units/s with
	// capacity AdmissionBurst.
	Admission      string
	AdmissionRate  float64
	AdmissionBurst int
	// Debug mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling endpoints expose stack traces).
	Debug bool
}

// buildAdmission constructs the policy named by kind (the ServeOptions
// and RouterOptions Admission field).
func buildAdmission(kind string, rate float64, burst int) (control.AdmissionPolicy, error) {
	switch kind {
	case "", "none":
		return nil, nil
	case "token-bucket":
		return control.NewTokenBucket(rate, burst), nil
	case "cost":
		return control.NewCostPolicy(rate, int64(burst)), nil
	default:
		return nil, fmt.Errorf("newtonadmm: unknown admission policy %q (want none, token-bucket, or cost)", kind)
	}
}

// ModelServer is a running (or embeddable) inference server.
type ModelServer struct {
	reg  *serve.Registry
	bat  *serve.Batcher
	srv  *serve.Server
	opts ServeOptions

	ln    net.Listener
	hsrv  *http.Server
	wln   net.Listener
	fsrv  *serve.FrameServer
	stopW chan struct{}
}

// Serve builds the full serving stack for m — predictor, hot-swap
// registry, micro-batcher, HTTP surface — and, when opts.Addr is set,
// starts listening. The returned server's Swap method (and the
// /v1/reload endpoint when ModelPath is set) replaces the model with
// zero downtime.
func Serve(m *Model, opts ServeOptions) (*ModelServer, error) {
	ms := &ModelServer{
		reg:  serve.NewRegistry(),
		opts: opts,
	}
	if m != nil {
		if _, err := ms.swapModel(m, opts.ModelPath); err != nil {
			return nil, err
		}
	}
	pol, err := buildAdmission(opts.Admission, opts.AdmissionRate, opts.AdmissionBurst)
	if err != nil {
		return nil, err
	}
	ms.bat = serve.NewBatcher(ms.reg, serve.BatcherConfig{
		MaxBatch: opts.MaxBatch, MaxLinger: opts.Linger, QueueDepth: opts.QueueDepth,
		SampleEvery: opts.SampleEvery, Admission: pol,
	})
	var reload func() (int64, error)
	if opts.ModelPath != "" {
		reload = func() (int64, error) { return ms.reloadFromPath() }
	}
	ms.srv = serve.NewServer(ms.reg, ms.bat, reload)
	if opts.Debug {
		ms.srv.EnableDebug()
	}

	if opts.Addr != "" {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			ms.shutdown()
			return nil, fmt.Errorf("newtonadmm: %w", err)
		}
		ms.ln = ln
		ms.hsrv = &http.Server{Handler: ms.srv.Handler()}
		go ms.hsrv.Serve(ln)
	}
	if opts.WireAddr != "" {
		wln, err := net.Listen("tcp", opts.WireAddr)
		if err != nil {
			ms.shutdown()
			return nil, fmt.Errorf("newtonadmm: %w", err)
		}
		ms.wln = wln
		ms.fsrv = serve.NewFrameServer(ms.reg, ms.bat, reload)
		go ms.fsrv.Serve(wln)
	}
	if opts.Watch > 0 && opts.ModelPath != "" {
		ms.stopW = make(chan struct{})
		go ms.watch()
	}
	return ms, nil
}

func (ms *ModelServer) swapModel(m *Model, path string) (int64, error) {
	return swapShardInto(ms.reg, m, path, ms.opts.ShardIndex, ms.opts.ShardCount, ms.opts.Workers, ms.opts.Zone)
}

// swapShardInto builds a predictor for m — or, when shardCount > 0, its
// class shard shardIndex of shardCount with the matching shard metadata
// — and hot-swaps it into reg. This is the single swap path shared by
// the single-node server, the in-process router replicas, and the
// fleet-wide Swap.
func swapShardInto(reg *serve.Registry, m *Model, path string, shardIndex, shardCount, workers int, zone string) (int64, error) {
	weights, classes := m.Weights, m.Classes
	meta := serve.ModelMeta{Path: path, Solver: m.Solver, Zone: zone}
	if shardCount > 0 {
		var rng router.ShardRange
		var err error
		weights, classes, rng, err = shardSlice(m, shardIndex, shardCount)
		if err != nil {
			return 0, err
		}
		meta.ShardIndex, meta.ShardCount = shardIndex, shardCount
		meta.ShardLow, meta.ShardHigh = rng.Low, rng.High
		meta.TotalClasses = m.Classes
	}
	p, err := serve.NewPredictor(weights, classes, m.Features, workers)
	if err != nil {
		return 0, fmt.Errorf("newtonadmm: %w", err)
	}
	return reg.Swap(p, meta), nil
}

// shardSlice returns shard i-of-n of the model's explicit class rows:
// the weight sub-vector, the shard's local class count (slice width plus
// the implicit reference class), and the covered range.
func shardSlice(m *Model, i, n int) ([]float64, int, router.ShardRange, error) {
	if i < 0 || i >= n {
		return nil, 0, router.ShardRange{}, fmt.Errorf("newtonadmm: shard index %d outside [0,%d)", i, n)
	}
	plan, err := router.PlanShards(m.Classes, n)
	if err != nil {
		return nil, 0, router.ShardRange{}, fmt.Errorf("newtonadmm: %w", err)
	}
	rng := plan[i]
	w := m.Weights[rng.Low*m.Features : rng.High*m.Features]
	return w, rng.Width() + 1, rng, nil
}

func (ms *ModelServer) reloadFromPath() (int64, error) {
	m, err := LoadModel(ms.opts.ModelPath)
	if err != nil {
		return 0, err
	}
	return ms.swapModel(m, ms.opts.ModelPath)
}

// watch polls ModelPath and hot-swaps when the checkpoint changes.
func (ms *ModelServer) watch() {
	var lastMod time.Time
	var lastSize int64
	if st, err := os.Stat(ms.opts.ModelPath); err == nil {
		lastMod, lastSize = st.ModTime(), st.Size()
	}
	tick := time.NewTicker(ms.opts.Watch)
	defer tick.Stop()
	for {
		select {
		case <-ms.stopW:
			return
		case <-tick.C:
			st, err := os.Stat(ms.opts.ModelPath)
			if err != nil {
				continue
			}
			if st.ModTime().Equal(lastMod) && st.Size() == lastSize {
				continue
			}
			if v, err := ms.reloadFromPath(); err != nil {
				// Keep retrying (a half-written checkpoint heals on the
				// next tick), but tell the operator — a corrupt file
				// would otherwise fail silently forever while healthz
				// keeps reporting the old version.
				log.Printf("newtonadmm: hot-swap watch: reloading %s failed: %v", ms.opts.ModelPath, err)
			} else {
				lastMod, lastSize = st.ModTime(), st.Size()
				log.Printf("newtonadmm: hot-swap watch: %s deployed as model version %d", ms.opts.ModelPath, v)
			}
		}
	}
}

// Swap hot-swaps a new model into the running server with zero downtime
// and returns the new model version.
func (ms *ModelServer) Swap(m *Model) (int64, error) {
	if m == nil {
		return 0, fmt.Errorf("newtonadmm: nil model")
	}
	return ms.swapModel(m, "")
}

// Handler returns the HTTP surface (/v1/predict, /v1/proba, /healthz,
// /metricz, /v1/reload) for embedding in an existing server.
func (ms *ModelServer) Handler() http.Handler { return ms.srv.Handler() }

// Addr returns the bound listen address ("" when not listening) — handy
// with ":0".
func (ms *ModelServer) Addr() string {
	if ms.ln == nil {
		return ""
	}
	return ms.ln.Addr().String()
}

// WireAddr returns the binary data plane's bound listen address (""
// when WireAddr was not configured); join it from a router with
// "tcp://" + WireAddr().
func (ms *ModelServer) WireAddr() string {
	if ms.wln == nil {
		return ""
	}
	return ms.wln.Addr().String()
}

// Batcher exposes the micro-batcher, the in-process load-test target.
func (ms *ModelServer) Batcher() *serve.Batcher { return ms.bat }

func (ms *ModelServer) shutdown() {
	if ms.stopW != nil {
		close(ms.stopW)
		ms.stopW = nil
	}
	if ms.hsrv != nil {
		ms.hsrv.Close()
		ms.hsrv = nil
	}
	if ms.fsrv != nil {
		ms.fsrv.Close()
		ms.fsrv = nil
	}
	if ms.bat != nil {
		ms.bat.Close()
	}
	ms.reg.Close()
}

// Close stops the listener (if any), drains the batcher, and releases
// the model's device.
func (ms *ModelServer) Close() { ms.shutdown() }

// RouterOptions configures the sharded serving tier: a scatter-gather
// router over N predictor replicas.
type RouterOptions struct {
	// Addr is the router's listen address; empty serves no listener.
	Addr string
	// Replicas is the in-process replica count; <= 0 selects 2. Ignored
	// when Join is set. In class mode this is S, the shard count; with
	// ReplicasPerShard > 1 the tier becomes an R x S grid of
	// Replicas*ReplicasPerShard members.
	Replicas int
	// ReplicasPerShard is R, the in-process member count per class-shard
	// group; <= 0 selects 1. Every shard is served by R interchangeable
	// siblings: a member death fails over within the group and is never
	// client-visible while a sibling survives. Class mode only — replica
	// mode already replicates the whole model (raise Replicas instead).
	// Ignored when Join is set (remote grids replicate by joining several
	// servers per shard range).
	ReplicasPerShard int
	// Zones labels in-process members with failure domains: member r of
	// each shard group gets Zones[r % len(Zones)], so R <= len(Zones)
	// places every group's siblings in distinct zones. Empty leaves
	// members zoneless (placement checks opt out). Ignored when Join is
	// set — remote replicas advertise their own -zone.
	Zones []string
	// Mode is "replica" (data-parallel whole-model replicas,
	// least-loaded routing with failover; the default) or "class"
	// (model-parallel class-sharded replicas, partial-logit
	// scatter-gather merged bitwise-identically to single-node scoring).
	Mode string
	// Join lists remote replica base URLs to front instead of building
	// in-process replicas: each must be a running nadmm-serve — full
	// models for replica mode, shard replicas (started with
	// ShardIndex/ShardCount) tiling one model for class mode. The URL
	// scheme negotiates the data plane per replica: "http://host:8081"
	// joins the JSON surface, "tcp://host:9081" the binary frame
	// listener (the replica's -wire-addr); a scheme-less host:port uses
	// Wire.
	Join []string
	// Wire selects the data plane for scheme-less Join addresses:
	// "json" (the default) or "binary". Explicit tcp:// and http://
	// schemes win over it.
	Wire string
	// MaxBatch, Linger, QueueDepth, Workers configure each in-process
	// replica's micro-batcher and device exactly like ServeOptions.
	MaxBatch   int
	Linger     time.Duration
	QueueDepth int
	Workers    int
	// ModelPath, when set, enables POST /v1/reload to hot-swap the
	// checkpoint at that path across the whole in-process fleet.
	ModelPath string
	// HealthEvery is the replica health-probe interval; 0 selects 250ms,
	// negative disables the monitor.
	HealthEvery time.Duration
	// SampleEvery is the observability sampling period for the router
	// tier and every in-process replica: every Nth request is
	// latency-stamped and trace-captured (DESIGN.md "Observability").
	// 0 selects the default (8); negative disables sampling entirely.
	SampleEvery int
	// Admission, AdmissionRate, AdmissionBurst install an admission
	// policy at the router's scatter seam, evaluated per client batch at
	// a cost of rows x features — exactly like the ServeOptions fields
	// of the same names. Swappable at runtime via
	// Router().SetAdmission.
	Admission      string
	AdmissionRate  float64
	AdmissionBurst int
	// AutoscaleMax > 0 enables the in-process autoscaler (DESIGN.md
	// "Control plane"): a target-tracking loop that grows the fleet one
	// replica at a time toward AutoscaleMax under sustained overload and
	// drains it back toward AutoscaleMin when idle. Replica mode with
	// in-process backends only — class mode's shard tiling and remote
	// fleets are not autoscaled. AutoscaleMin <= 0 selects the initial
	// replica count.
	AutoscaleMin, AutoscaleMax int
	// AutoscaleTargetP99 is the latency target driving scale-up; zero
	// tracks utilization only.
	AutoscaleTargetP99 time.Duration
	// AutoscaleTick is the control loop's evaluation period (<= 0
	// selects 1s); AutoscaleCooldown, when > 0, overrides both the
	// scale-up and scale-down cooldowns (defaults 3s/10s).
	AutoscaleTick     time.Duration
	AutoscaleCooldown time.Duration
	// Debug mounts net/http/pprof on the router's surface (opt-in).
	Debug bool
}

// RouterServer is a running scatter-gather serving tier.
type RouterServer struct {
	rt   *router.Router
	srv  *router.Server
	opts RouterOptions

	// lmu guards the in-process membership below (locals and its
	// parallel slices, model) against concurrent mutation by the
	// autoscaler's actuator and fleet-wide Swap. Lock order: lmu before
	// the router's internal swap lock (scale actions and Coordinate both
	// take it next).
	lmu    sync.Mutex
	locals []*router.LocalBackend // nil entries for remote replicas
	model  *Model

	// Per-local grid placement, parallel to locals: which class shard
	// each member serves (shards is S; 0 when unsharded), its zone
	// label, and its stable pool replica ID (IDs are not indices once
	// the autoscaler removes members). Swap re-slices by these, so an
	// R x S grid hot-swaps every member onto its own shard rather than
	// assuming one member per shard.
	shards     int
	localShard []int
	localZones []string
	localIDs   []int

	scaler *control.Autoscaler

	ln   net.Listener
	hsrv *http.Server
}

// ServeSharded builds the distributed serving tier: N replicas (each its
// own predictor, hot-swap registry, and micro-batcher — in-process, or
// remote nadmm-serve processes via Join) behind a scatter-gather router
// with health tracking, draining, failover, and coordinated hot swap,
// exposed over the same HTTP surface as Serve. In class mode the
// router's merged predictions and probabilities are bitwise identical to
// a single-node Predictor over the full model, and ReplicasPerShard > 1
// builds an R x S replicated-shard grid: each class shard is served by R
// interchangeable siblings, a mid-scatter member death retries on a
// sibling, and no single replica failure is client-visible (see
// DESIGN.md "Replicated-shard topology").
func ServeSharded(m *Model, opts RouterOptions) (*RouterServer, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.ReplicasPerShard <= 0 {
		opts.ReplicasPerShard = 1
	}
	mode := router.Mode(opts.Mode)
	if opts.Mode == "" {
		mode = router.ModeReplica
	}
	if opts.ReplicasPerShard > 1 && mode != router.ModeClass {
		return nil, fmt.Errorf("newtonadmm: ReplicasPerShard needs class mode (replica mode already replicates the whole model; raise Replicas)")
	}
	rs := &RouterServer{opts: opts, model: m}

	var backends []router.Backend
	if len(opts.Join) > 0 {
		for _, base := range opts.Join {
			b, err := router.BackendForURL(base, opts.Wire)
			if err != nil {
				for _, b := range backends {
					b.Close()
				}
				return nil, fmt.Errorf("newtonadmm: %w", err)
			}
			backends = append(backends, b)
		}
	} else {
		if m == nil {
			return nil, fmt.Errorf("newtonadmm: ServeSharded needs a model (or Join addresses)")
		}
		// Lay out the in-process grid group-major: S shard groups
		// (opts.Replicas; one group of whole-model copies in replica
		// mode) of R siblings each, so member s*R+r serves shard s from
		// zone Zones[r % len(Zones)].
		if mode == router.ModeClass {
			rs.shards = opts.Replicas
		}
		for s := 0; s < opts.Replicas; s++ {
			for r := 0; r < opts.ReplicasPerShard; r++ {
				zone := ""
				if len(opts.Zones) > 0 {
					zone = opts.Zones[r%len(opts.Zones)]
				}
				shardIdx := s
				if mode != router.ModeClass {
					shardIdx = 0
					if len(opts.Zones) > 0 {
						zone = opts.Zones[s%len(opts.Zones)]
					}
				}
				lb, err := rs.buildLocalReplica(m, shardIdx, rs.shards, zone)
				if err != nil {
					for _, b := range backends {
						b.Close()
					}
					return nil, err
				}
				rs.locals = append(rs.locals, lb)
				rs.localShard = append(rs.localShard, shardIdx)
				rs.localZones = append(rs.localZones, zone)
				rs.localIDs = append(rs.localIDs, len(backends))
				backends = append(backends, lb)
			}
		}
	}

	rt, err := router.New(backends, router.Options{Mode: mode, HealthEvery: opts.HealthEvery, SampleEvery: opts.SampleEvery})
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, fmt.Errorf("newtonadmm: %w", err)
	}
	rs.rt = rt
	rs.srv = router.NewServer(rt)
	if opts.Debug {
		rs.srv.EnableDebug()
	}
	pol, err := buildAdmission(opts.Admission, opts.AdmissionRate, opts.AdmissionBurst)
	if err != nil {
		rs.Close()
		return nil, err
	}
	rt.SetAdmission(pol)
	if opts.AutoscaleMax > 0 {
		if err := rs.startAutoscaler(); err != nil {
			rs.Close()
			return nil, err
		}
	}

	if opts.Addr != "" {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			rs.Close()
			return nil, fmt.Errorf("newtonadmm: %w", err)
		}
		rs.ln = ln
		rs.hsrv = &http.Server{Handler: rs.srv.Handler()}
		go rs.hsrv.Serve(ln)
	}
	return rs, nil
}

// buildLocalReplica assembles one in-process replica: registry with the
// (possibly shard-sliced) snapshot, micro-batcher, and a reloader that
// re-reads ModelPath and re-slices the same shard.
func (rs *RouterServer) buildLocalReplica(m *Model, shardIdx, shardCount int, zone string) (*router.LocalBackend, error) {
	reg := serve.NewRegistry()
	swap := func(nm *Model) (int64, error) {
		return swapShardInto(reg, nm, rs.opts.ModelPath, shardIdx, shardCount, rs.opts.Workers, zone)
	}
	if _, err := swap(m); err != nil {
		reg.Close()
		return nil, err
	}
	bat := serve.NewBatcher(reg, serve.BatcherConfig{
		MaxBatch: rs.opts.MaxBatch, MaxLinger: rs.opts.Linger, QueueDepth: rs.opts.QueueDepth,
		SampleEvery: rs.opts.SampleEvery,
	})
	var reload func() (int64, error)
	if rs.opts.ModelPath != "" {
		path := rs.opts.ModelPath
		reload = func() (int64, error) {
			nm, err := LoadModel(path)
			if err != nil {
				return 0, err
			}
			return swap(nm)
		}
	}
	return router.NewLocalBackend(reg, bat, reload), nil
}

// startAutoscaler wires the control loop over the router tier's own
// signals: windowed p99 from the nadmm_request_latency histogram,
// utilization from aggregate in-flight over replicas x max-batch.
// Replica mode with in-process backends only — class mode's shard
// tiling is planned at construction, and remote fleets scale
// out-of-process.
func (rs *RouterServer) startAutoscaler() error {
	if rs.rt.Mode() != router.ModeReplica {
		return fmt.Errorf("newtonadmm: autoscaling requires replica mode")
	}
	if len(rs.locals) == 0 {
		return fmt.Errorf("newtonadmm: autoscaling requires in-process replicas")
	}
	maxBatch := rs.opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64 // the batcher's own default
	}
	src, err := control.NewRegistrySource(rs.srv.Obs(), "nadmm_request_latency",
		func() int64 {
			var n int64
			for _, rep := range rs.rt.Pool().Replicas() {
				n += rep.InFlight()
			}
			return n
		},
		func() int64 { return int64(len(rs.rt.Pool().Replicas()) * maxBatch) },
		func() int { return len(rs.rt.Pool().Replicas()) },
	)
	if err != nil {
		return fmt.Errorf("newtonadmm: %w", err)
	}
	min := rs.opts.AutoscaleMin
	if min <= 0 {
		min = len(rs.locals)
	}
	rs.scaler = control.NewAutoscaler(src, fleetActuator{rs: rs}, control.AutoscalerConfig{
		Min: min, Max: rs.opts.AutoscaleMax,
		TargetP99:  rs.opts.AutoscaleTargetP99,
		Tick:       rs.opts.AutoscaleTick,
		UpCooldown: rs.opts.AutoscaleCooldown, DownCooldown: rs.opts.AutoscaleCooldown,
	})
	rs.srv.RegisterAutoscaler(rs.scaler)
	rs.scaler.Start()
	return nil
}

// fleetActuator adapts the RouterServer's in-process membership to the
// autoscaler's Actuator interface.
type fleetActuator struct{ rs *RouterServer }

func (f fleetActuator) Replicas() int    { return len(f.rs.rt.Pool().Replicas()) }
func (f fleetActuator) ScaleUp() error   { return f.rs.scaleUp() }
func (f fleetActuator) ScaleDown() error { return f.rs.scaleDown() }

// scaleUp spawns one whole-model in-process replica and joins it to
// the pool; it starts receiving traffic as soon as the new membership
// publishes. The replica is built from the fleet's current model
// (Swap keeps it current), in the next zone of the configured cycle.
func (rs *RouterServer) scaleUp() error {
	rs.lmu.Lock()
	defer rs.lmu.Unlock()
	if rs.model == nil {
		return fmt.Errorf("newtonadmm: no model to build a replica from")
	}
	zone := ""
	if len(rs.opts.Zones) > 0 {
		zone = rs.opts.Zones[len(rs.locals)%len(rs.opts.Zones)]
	}
	lb, err := rs.buildLocalReplica(rs.model, 0, 0, zone)
	if err != nil {
		return err
	}
	id, err := rs.rt.AddBackend(lb)
	if err != nil {
		lb.Close()
		return err
	}
	rs.locals = append(rs.locals, lb)
	rs.localShard = append(rs.localShard, 0)
	rs.localZones = append(rs.localZones, zone)
	rs.localIDs = append(rs.localIDs, id)
	return nil
}

// scaleDown drains and retires the newest in-process replica. The
// removal routes through Router.RemoveBackend, so the coverage guard
// and the drain protect accepted work; a refused or timed-out drain
// leaves the membership unchanged (the autoscaler retries after its
// next idle run).
func (rs *RouterServer) scaleDown() error {
	rs.lmu.Lock()
	defer rs.lmu.Unlock()
	if len(rs.localIDs) <= 1 {
		return fmt.Errorf("newtonadmm: no removable in-process replica")
	}
	i := len(rs.localIDs) - 1
	if err := rs.rt.RemoveBackend(rs.localIDs[i], 30*time.Second); err != nil {
		return err
	}
	rs.locals = rs.locals[:i]
	rs.localShard = rs.localShard[:i]
	rs.localZones = rs.localZones[:i]
	rs.localIDs = rs.localIDs[:i]
	return nil
}

// Autoscaler returns the running control loop (nil when autoscaling is
// disabled); tests and the CLI read its Ups/Downs/Replicas counters.
func (rs *RouterServer) Autoscaler() *control.Autoscaler { return rs.scaler }

// Router returns the underlying router (stats, drain/undrain).
func (rs *RouterServer) Router() *router.Router { return rs.rt }

// Handler returns the router's HTTP surface for embedding.
func (rs *RouterServer) Handler() http.Handler { return rs.srv.Handler() }

// Addr returns the bound listen address ("" when not listening).
func (rs *RouterServer) Addr() string {
	if rs.ln == nil {
		return ""
	}
	return rs.ln.Addr().String()
}

// Swap hot-swaps a new model across the whole in-process fleet with
// zero downtime (class mode re-slices the shards). The swap runs under
// the router's coordination lock, so no class-mode scatter straddles
// the rollout and merged logits stay version-consistent; the router's
// replica metadata is refreshed and revalidated against its plan (a
// model whose shape no longer fits the plan is rejected). Returns the
// newest version deployed.
func (rs *RouterServer) Swap(m *Model) (int64, error) {
	if m == nil {
		return 0, fmt.Errorf("newtonadmm: nil model")
	}
	// lmu freezes the in-process membership for the whole rollout, so an
	// autoscaler scale-down cannot retire (and close) a replica between
	// the iteration and the swap into its registry.
	rs.lmu.Lock()
	defer rs.lmu.Unlock()
	if len(rs.locals) == 0 {
		return 0, fmt.Errorf("newtonadmm: Swap needs in-process replicas (remote fleets reload via /v1/reload)")
	}
	var latest int64
	err := rs.rt.Coordinate(func() error {
		for i, lb := range rs.locals {
			v, err := swapShardInto(lb.Registry(), m, "", rs.localShard[i], rs.shards, rs.opts.Workers, rs.localZones[i])
			if err != nil {
				return err
			}
			if v > latest {
				latest = v
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	rs.model = m // future scale-ups spawn replicas of the deployed model
	return latest, nil
}

// SwapReplica hot-swaps a single replica's model while the rest of the
// fleet keeps serving (replica-balanced rollouts; class mode must swap
// the whole fleet via Swap or Reload so shard versions stay aligned).
func (rs *RouterServer) SwapReplica(id int, m *Model) (int64, error) {
	if rs.rt.Mode() != router.ModeReplica {
		return 0, fmt.Errorf("newtonadmm: SwapReplica needs replica mode (use Swap in class mode)")
	}
	if m == nil {
		return 0, fmt.Errorf("newtonadmm: nil model")
	}
	rs.lmu.Lock()
	defer rs.lmu.Unlock()
	// id is the pool's stable replica ID; resolve it to the local index
	// (they diverge once the autoscaler has removed a member).
	idx := -1
	for i, lid := range rs.localIDs {
		if lid == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("newtonadmm: no in-process replica %d", id)
	}
	// The router's buffers and merge plan are sized at construction; a
	// replica with a different shape would corrupt routing, so a
	// shape-changing rollout must rebuild the tier (or go through Swap,
	// which revalidates the whole fleet).
	if m.Classes != rs.rt.Classes() || m.Features != rs.rt.Features() {
		return 0, fmt.Errorf("newtonadmm: replacement model shape (%d classes, %d features) != serving tier (%d, %d)",
			m.Classes, m.Features, rs.rt.Classes(), rs.rt.Features())
	}
	return swapShardInto(rs.locals[idx].Registry(), m, "", 0, 0, rs.opts.Workers, rs.localZones[idx])
}

// routerTarget adapts the router to the load generator's Target and
// ProbaTarget interfaces (single-row requests, the same unit the HTTP
// surface submits per instance). It applies the router's trace
// sampling exactly like the HTTP surface, so in-process load tests
// capture the same per-stage waterfalls a live fleet would.
type routerTarget struct{ rt *router.Router }

func (t routerTarget) Predict(row []float64) (int, error) {
	var b router.Batch
	b.AddDense(row)
	b.Trace = t.rt.StartTrace(time.Now())
	var out [1]int
	err := t.rt.Predict(&b, out[:])
	t.rt.FinishTrace(b.Trace, time.Now())
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

func (t routerTarget) Proba(row []float64, out []float64) (int, error) {
	var b router.Batch
	b.AddDense(row)
	b.Trace = t.rt.StartTrace(time.Now())
	var cls [1]int
	err := t.rt.Proba(&b, out, cls[:])
	t.rt.FinishTrace(b.Trace, time.Now())
	if err != nil {
		return 0, err
	}
	return cls[0], nil
}

// Target returns an in-process load-generation target driving the
// router (implements serve.Target and serve.ProbaTarget).
func (rs *RouterServer) Target() serve.ProbaTarget { return routerTarget{rt: rs.rt} }

// Close stops the listener, the router's health monitor, and every
// in-process replica (batchers drain, devices release).
func (rs *RouterServer) Close() {
	// The control loop goes first so no scale action races teardown.
	if rs.scaler != nil {
		rs.scaler.Stop()
		rs.scaler = nil
	}
	if rs.hsrv != nil {
		rs.hsrv.Close()
		rs.hsrv = nil
	}
	if rs.rt != nil {
		rs.rt.Close()
	}
}
