package newtonadmm

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testModel builds a model with random (untrained) weights — prediction
// correctness only needs a fixed linear map.
func testModel(classes, features int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, (classes-1)*features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return &Model{Weights: w, Classes: classes, Features: features, Solver: SolverNewtonADMM}
}

func denseToSparse(rows [][]float64) []SparseRow {
	out := make([]SparseRow, len(rows))
	for i, r := range rows {
		for j, v := range r {
			if v != 0 {
				out[i].Indices = append(out[i].Indices, j)
				out[i].Values = append(out[i].Values, v)
			}
		}
	}
	return out
}

func TestModelPredictSparseMatchesDense(t *testing.T) {
	m := testModel(5, 12, 1)
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 9)
	for i := range rows {
		rows[i] = make([]float64, 12)
		for j := range rows[i] {
			if rng.Float64() < 0.5 {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	want, err := m.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.PredictSparse(denseToSparse(rows))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: sparse %d vs dense %d", i, got[i], want[i])
		}
	}
	// Validation errors surface.
	if _, err := m.PredictSparse([]SparseRow{{Indices: []int{99}, Values: []float64{1}}}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestModelPredictProba(t *testing.T) {
	m := testModel(4, 7, 3)
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = make([]float64, 7)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	classes, err := m.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.PredictProba(rows)
	if err != nil {
		t.Fatal(err)
	}
	sparseProbs, err := m.PredictProbaSparse(denseToSparse(rows))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if len(p) != m.Classes {
			t.Fatalf("row %d has %d probabilities", i, len(p))
		}
		var sum float64
		best, bestP := 0, p[0]
		for c, v := range p {
			sum += v
			if v > bestP {
				best, bestP = c, v
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if best != classes[i] {
			t.Fatalf("row %d: proba argmax %d, Predict %d", i, best, classes[i])
		}
		for c := range p {
			if p[c] != sparseProbs[i][c] {
				t.Fatalf("row %d class %d: dense %v sparse %v", i, c, p[c], sparseProbs[i][c])
			}
		}
	}
}

func TestPredictorReuseAndClose(t *testing.T) {
	m := testModel(3, 9, 5)
	p, err := m.NewPredictor(1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Classes() != 3 || p.Features() != 9 {
		t.Fatalf("shape %d/%d", p.Classes(), p.Features())
	}
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, 4)
	for i := range rows {
		rows[i] = make([]float64, 9)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	want, err := m.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(rows))
	for trial := 0; trial < 3; trial++ { // reuse across calls
		if err := p.Predict(rows, out); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("trial %d row %d: %d vs %d", trial, i, out[i], want[i])
			}
		}
	}
	probs := make([]float64, len(rows)*3)
	if err := p.Proba(rows, probs); err != nil {
		t.Fatal(err)
	}
}

// TestServeEndToEnd boots the full HTTP server on an ephemeral port,
// predicts, checks health/metrics, hot-swaps via the API and via
// /v1/reload, and shuts down.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	m := testModel(3, 6, 7)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	srv, err := Serve(m, ServeOptions{
		Addr: "127.0.0.1:0", MaxBatch: 8, Linger: 100 * time.Microsecond,
		ModelPath: path, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	row := []float64{0.5, -1, 2, 0, 1, -0.5}
	want, err := m.Predict([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"instances": []any{row}})
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Predictions  []int `json:"predictions"`
		ModelVersion int64 `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(pr.Predictions) != 1 || pr.Predictions[0] != want[0] {
		t.Fatalf("predict: status %d, got %+v want class %d", resp.StatusCode, pr, want[0])
	}
	if pr.ModelVersion != 1 {
		t.Fatalf("version %d", pr.ModelVersion)
	}

	// healthz is live.
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hr.StatusCode)
	}

	// Hot-swap through the programmatic API: version bumps, serving
	// continues.
	if v, err := srv.Swap(testModel(3, 6, 8)); err != nil || v != 2 {
		t.Fatalf("swap: v=%d err=%v", v, err)
	}
	// Hot-swap through /v1/reload (re-reads ModelPath): version 3.
	rr, err := http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl struct {
		ModelVersion int64 `json:"model_version"`
	}
	if err := json.NewDecoder(rr.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || rl.ModelVersion != 3 {
		t.Fatalf("reload: status %d version %d", rr.StatusCode, rl.ModelVersion)
	}

	// Still serving after two swaps, against the reloaded (original
	// from disk) weights.
	resp2, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr2 struct {
		Predictions []int `json:"predictions"`
	}
	json.NewDecoder(resp2.Body).Decode(&pr2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || pr2.Predictions[0] != want[0] {
		t.Fatalf("post-swap predict: status %d got %+v", resp2.StatusCode, pr2)
	}
}

// TestPresetAccuracyFloors pins the satellite fix: every synthetic
// preset must be learnable well above chance out of the box (the
// planted-signal normalization in internal/datasets makes Separation
// the actual logit scale). Floors sit ~2-3 sigma under the measured
// values at these scales so CPU-count-dependent chunking noise cannot
// flake them; chance is 0.5 / 0.1 / 0.1 / 0.05 respectively.
func TestPresetAccuracyFloors(t *testing.T) {
	cases := []struct {
		preset string
		scale  float64
		epochs int
		floor  float64
	}{
		{"higgs", 0.25, 10, 0.60},
		{"mnist", 0.25, 10, 0.40},
		{"cifar", 0.25, 10, 0.40},
		{"e18", 0.3, 10, 0.09},
	}
	for _, c := range cases {
		t.Run(c.preset, func(t *testing.T) {
			ds, err := PresetDataset(c.preset, c.scale)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Train(ds, Options{
				Epochs: c.epochs, Network: "none", EvalTestAccuracy: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(m.TestAccuracy) || m.TestAccuracy < c.floor {
				t.Fatalf("%s test accuracy %.4f below floor %.2f", c.preset, m.TestAccuracy, c.floor)
			}
			t.Logf("%s: test accuracy %.4f (floor %.2f)", c.preset, m.TestAccuracy, c.floor)
		})
	}
}

// TestModelSaveLoadServeRoundTrip guards the checkpoint format the
// serving layer depends on.
func TestModelSaveLoadServeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rt.gob")
	m := testModel(4, 5, 9)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Classes != m.Classes || m2.Features != m.Features || len(m2.Weights) != len(m.Weights) {
		t.Fatalf("round trip mangled shape: %+v", m2)
	}
	row := [][]float64{{1, -2, 0.5, 3, -1}}
	a, _ := m.Predict(row)
	b, _ := m2.Predict(row)
	if a[0] != b[0] {
		t.Fatalf("prediction changed across save/load: %d vs %d", a[0], b[0])
	}
	if _, err := LoadModel(filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.gob"), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(filepath.Join(dir, "junk.gob")); err == nil {
		t.Fatal("junk file loaded")
	}
}
