// Package admm implements the consensus machinery of paper §2.2: the
// closed-form z-update for L2 regularization (eq. 7), the multiplier
// update (eq. 6c), primal/dual residuals, and the penalty-parameter
// policies — Spectral Penalty Selection (Xu et al., the paper's choice),
// residual balancing (He et al., the baseline the paper calls
// ineffective), and a fixed penalty for ablations.
//
// Sign conventions follow the paper's eq. (6a-c) verbatim: the multiplier
// update is y_i <- y_i + rho_i (z - x_i), which makes y the negative of
// the textbook scaled dual.
package admm

import (
	"math"

	"newtonadmm/internal/linalg"
)

// UpdateZ computes the consensus variable of eq. (7):
//
//	z (lambda + sum_i rho_i) = sum_i (rho_i x_i - y_i)
//
// xs and ys are indexed by rank; rhos holds each rank's penalty. The
// result is written into z.
func UpdateZ(z []float64, xs, ys [][]float64, rhos []float64, lambda float64) {
	if len(xs) != len(ys) || len(xs) != len(rhos) {
		panic("admm: UpdateZ rank count mismatch")
	}
	linalg.Zero(z)
	var rhoSum float64
	for i := range xs {
		if len(xs[i]) != len(z) || len(ys[i]) != len(z) {
			panic("admm: UpdateZ dimension mismatch")
		}
		rho := rhos[i]
		rhoSum += rho
		for j := range z {
			z[j] += rho*xs[i][j] - ys[i][j]
		}
	}
	scale := lambda + rhoSum
	if scale <= 0 {
		panic("admm: UpdateZ nonpositive normalizer")
	}
	linalg.Scal(1/scale, z)
}

// UpdateY applies the multiplier update of eq. (6c) in place:
// y <- y + rho (z - x).
func UpdateY(y, z, x []float64, rho float64) {
	if len(y) != len(z) || len(y) != len(x) {
		panic("admm: UpdateY dimension mismatch")
	}
	for j := range y {
		y[j] += rho * (z[j] - x[j])
	}
}

// Anchor computes the local subproblem anchor v = z + y/rho of eq. (6a)
// into v.
func Anchor(v, z, y []float64, rho float64) {
	if rho <= 0 {
		panic("admm: Anchor requires positive rho")
	}
	linalg.Waxpby(1, z, 1/rho, y, v)
}

// PrimalResidual returns ||x - z||, one rank's disagreement with the
// consensus.
func PrimalResidual(x, z []float64) float64 {
	return linalg.Dist2(x, z)
}

// DualResidual returns ||rho (z - zPrev)||, the standard consensus-ADMM
// dual residual for one rank.
func DualResidual(z, zPrev []float64, rho float64) float64 {
	return math.Abs(rho) * linalg.Dist2(z, zPrev)
}

// GlobalResiduals aggregates per-rank primal residuals and the dual
// residual into the usual stopping quantities:
// r = sqrt(sum_i ||x_i - z||^2), s = sqrt(sum_i rho_i^2) ||z - zPrev||.
func GlobalResiduals(xs [][]float64, z, zPrev []float64, rhos []float64) (primal, dual float64) {
	var rsq, rhosq float64
	for i := range xs {
		d := linalg.Dist2(xs[i], z)
		rsq += d * d
		rhosq += rhos[i] * rhos[i]
	}
	return math.Sqrt(rsq), math.Sqrt(rhosq) * linalg.Dist2(z, zPrev)
}
