package admm

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestUpdateZClosedForm(t *testing.T) {
	// Verify eq. (7) against a brute-force minimization of
	// g(z) + sum_i rho_i/2 ||z - x_i + y_i/rho_i||^2 via its gradient.
	rng := rand.New(rand.NewSource(70))
	dim, ranks := 6, 3
	xs := make([][]float64, ranks)
	ys := make([][]float64, ranks)
	rhos := make([]float64, ranks)
	for i := range xs {
		xs[i] = randVec(rng, dim)
		ys[i] = randVec(rng, dim)
		rhos[i] = 0.5 + rng.Float64()
	}
	lambda := 0.3
	z := make([]float64, dim)
	UpdateZ(z, xs, ys, rhos, lambda)

	// Gradient of the z-subproblem at the solution must vanish:
	// lambda z + sum_i rho_i (z - x_i + y_i/rho_i) = 0.
	for j := 0; j < dim; j++ {
		grad := lambda * z[j]
		for i := range xs {
			grad += rhos[i]*(z[j]-xs[i][j]) + ys[i][j]
		}
		if math.Abs(grad) > 1e-10 {
			t.Fatalf("z-update gradient[%d] = %v", j, grad)
		}
	}
}

func TestUpdateZSingleRankZeroLambda(t *testing.T) {
	// One rank, lambda=0: z = x - y/rho.
	x := []float64{1, 2}
	y := []float64{0.5, -0.5}
	z := make([]float64, 2)
	UpdateZ(z, [][]float64{x}, [][]float64{y}, []float64{2}, 0)
	want := []float64{1 - 0.25, 2 + 0.25}
	for j := range want {
		if math.Abs(z[j]-want[j]) > 1e-12 {
			t.Fatalf("z=%v, want %v", z, want)
		}
	}
}

func TestUpdateZValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank count mismatch")
		}
	}()
	UpdateZ(make([]float64, 2), [][]float64{{1, 2}}, nil, []float64{1}, 0.1)
}

func TestUpdateYFixedPoint(t *testing.T) {
	// At consensus (x == z), y must not move.
	y := []float64{1, -2}
	z := []float64{3, 4}
	UpdateY(y, z, z, 5)
	if y[0] != 1 || y[1] != -2 {
		t.Fatalf("y moved at consensus: %v", y)
	}
}

func TestUpdateYDirection(t *testing.T) {
	y := []float64{0}
	UpdateY(y, []float64{2}, []float64{1}, 3) // y += 3*(2-1)
	if y[0] != 3 {
		t.Fatalf("y=%v, want 3", y[0])
	}
}

func TestAnchor(t *testing.T) {
	v := make([]float64, 2)
	Anchor(v, []float64{1, 2}, []float64{4, -4}, 2)
	if v[0] != 3 || v[1] != 0 {
		t.Fatalf("anchor=%v, want [3 0]", v)
	}
}

func TestAnchorRequiresPositiveRho(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rho<=0")
		}
	}()
	Anchor(make([]float64, 1), []float64{1}, []float64{1}, 0)
}

func TestResiduals(t *testing.T) {
	x := []float64{1, 0}
	z := []float64{0, 0}
	if got := PrimalResidual(x, z); got != 1 {
		t.Fatalf("primal=%v, want 1", got)
	}
	zPrev := []float64{0, 2}
	if got := DualResidual(z, zPrev, 3); got != 6 {
		t.Fatalf("dual=%v, want 6", got)
	}
	primal, dual := GlobalResiduals([][]float64{{1, 0}, {0, 1}}, z, zPrev, []float64{3, 4})
	if math.Abs(primal-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("global primal=%v", primal)
	}
	if math.Abs(dual-5*2) > 1e-12 { // sqrt(9+16)*||z - zPrev||
		t.Fatalf("global dual=%v", dual)
	}
}

func TestFixedPenalty(t *testing.T) {
	p := &FixedPenalty{Value: 2.5}
	if p.Rho() != 2.5 || p.Update(3, IterState{}) != 2.5 || p.Name() != "fixed" {
		t.Fatal("FixedPenalty changed")
	}
}

func TestResidualBalancingDirections(t *testing.T) {
	rb := NewResidualBalancing(1)
	// Primal dominates: rho doubles.
	if got := rb.Update(1, IterState{Primal: 100, Dual: 1}); got != 2 {
		t.Fatalf("rho=%v, want 2", got)
	}
	// Dual dominates: rho halves.
	if got := rb.Update(2, IterState{Primal: 1, Dual: 100}); got != 1 {
		t.Fatalf("rho=%v, want 1", got)
	}
	// Balanced: unchanged.
	if got := rb.Update(3, IterState{Primal: 1, Dual: 1}); got != 1 {
		t.Fatalf("rho=%v, want 1", got)
	}
}

func TestSpectralStepHybridRule(t *testing.T) {
	// 2*MG > SD: pick MG.
	if got := spectralStep(1.0, 0.9); got != 0.9 {
		t.Fatalf("hybrid=%v, want 0.9", got)
	}
	// Otherwise SD - MG/2.
	if got := spectralStep(1.0, 0.2); got != 0.9 {
		t.Fatalf("hybrid=%v, want 0.9", got)
	}
}

func TestSpectralPenaltyNoUpdateWithoutHistory(t *testing.T) {
	sp := NewSpectralPenalty(1.5)
	st := IterState{
		X1: []float64{1}, Z0: []float64{0}, Z1: []float64{0.5},
		Y0: []float64{0}, Y1: []float64{0.1},
	}
	if got := sp.Update(1, st); got != 1.5 {
		t.Fatalf("first observation changed rho to %v", got)
	}
}

func TestSpectralPenaltyRecoversQuadraticCurvature(t *testing.T) {
	// For f(x) = a/2 x^2 the dual relationship gives lamHat proportional
	// to a * x; feeding consistent iterates should drive rho toward
	// sqrt(alpha*beta) with alpha ~= a. Build synthetic iterates where the
	// local solver is exact: lamHat = a * x1 (stationarity of
	// f(x) + rho/2||x - z - y/rho||^2 gives a*x = -(y + rho(z - x)) = lamHat
	// with our sign convention... here we directly synthesize the pairs.
	a, b := 4.0, 1.0 // local curvature a, regularizer curvature b
	sp := NewSpectralPenalty(1)
	sp.Tf = 1 // adapt every iteration
	dim := 3
	rng := rand.New(rand.NewSource(71))
	x := randVec(rng, dim)
	z := randVec(rng, dim)
	for k := 1; k <= 12; k++ {
		x1 := make([]float64, dim)
		z1 := make([]float64, dim)
		y0 := make([]float64, dim)
		y1 := make([]float64, dim)
		for j := 0; j < dim; j++ {
			x1[j] = x[j] * math.Pow(0.8, float64(k))
			z1[j] = z[j] * math.Pow(0.8, float64(k))
			// Choose y so that lamHat = a*x1 (= grad f at x1 for
			// f = a/2 x^2) and lam = b*z1 (= grad g at z1) exactly:
			// lamHat = y0 + rho(z0 - x1) => y0 = a*x1 - rho*(z0 - x1).
			z0j := z[j] * math.Pow(0.8, float64(k-1))
			y0[j] = a*x1[j] - sp.Rho()*(z0j-x1[j])
			y1[j] = -b * z1[j]
		}
		z0 := make([]float64, dim)
		for j := range z0 {
			z0[j] = z[j] * math.Pow(0.8, float64(k-1))
		}
		sp.Update(k, IterState{X1: x1, Z0: z0, Z1: z1, Y0: y0, Y1: y1})
	}
	want := math.Sqrt(a * b)
	if math.Abs(sp.Rho()-want) > 0.2*want {
		t.Fatalf("spectral rho=%v, want ~%v", sp.Rho(), want)
	}
}

func TestSpectralPenaltySafeguardBounds(t *testing.T) {
	sp := NewSpectralPenalty(1)
	sp.Tf = 1
	sp.Ccg = 1 // tight guard: relative change at k is 1 + 1/k^2
	rng := rand.New(rand.NewSource(72))
	st := func() IterState {
		return IterState{
			X1: randVec(rng, 4), Z0: randVec(rng, 4), Z1: randVec(rng, 4),
			Y0: randVec(rng, 4), Y1: randVec(rng, 4),
		}
	}
	sp.Update(1, st())
	prev := sp.Rho()
	for k := 2; k <= 30; k++ {
		got := sp.Update(k, st())
		guard := 1 + 1/float64(k*k)
		if got > prev*guard*(1+1e-12) || got < prev/guard*(1-1e-12) {
			t.Fatalf("k=%d: rho %v escaped guard [%v, %v]", k, got, prev/guard, prev*guard)
		}
		if got < sp.MinRho || got > sp.MaxRho {
			t.Fatalf("rho %v escaped absolute bounds", got)
		}
		prev = got
	}
}

func TestSpectralPenaltyRespectsPeriod(t *testing.T) {
	sp := NewSpectralPenalty(1)
	sp.Tf = 2
	rng := rand.New(rand.NewSource(73))
	mk := func() IterState {
		return IterState{
			X1: randVec(rng, 3), Z0: randVec(rng, 3), Z1: randVec(rng, 3),
			Y0: randVec(rng, 3), Y1: randVec(rng, 3),
		}
	}
	sp.Update(1, mk()) // snapshot only
	before := sp.Rho()
	sp.Update(3, mk()) // odd iteration: no adaptation
	if sp.Rho() != before {
		t.Fatal("penalty adapted on an off-period iteration")
	}
}

func TestNewPolicy(t *testing.T) {
	if NewPolicy("fixed", 1).Name() != "fixed" {
		t.Fatal("fixed policy")
	}
	if NewPolicy("residual-balancing", 1).Name() != "residual-balancing" {
		t.Fatal("rb policy")
	}
	if NewPolicy("spectral", 1).Name() != "spectral" {
		t.Fatal("spectral policy")
	}
	if NewPolicy("bogus", 1).Name() != "spectral" {
		t.Fatal("default policy should be spectral")
	}
}

func TestGlobalResidualsConsensusIsZero(t *testing.T) {
	z := []float64{1, 2, 3}
	xs := [][]float64{linalg.Clone(z), linalg.Clone(z)}
	primal, dual := GlobalResiduals(xs, z, z, []float64{1, 1})
	if primal != 0 || dual != 0 {
		t.Fatalf("residuals at consensus: %v, %v", primal, dual)
	}
}
