package admm

import (
	"math/rand"
	"testing"
)

// randIterState fabricates a plausible iteration result so policies
// evolve real internal state before the round trip.
func randIterState(rng *rand.Rand, dim int) IterState {
	vec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	return IterState{
		X1: vec(), Z0: vec(), Z1: vec(), Y0: vec(), Y1: vec(),
		Primal: rng.Float64(), Dual: rng.Float64(),
	}
}

// TestPolicyStateRoundTrip drives each policy for a few iterations,
// snapshots it, restores into a fresh instance, and checks both evolve
// identically afterwards — the property checkpoint/resume relies on.
func TestPolicyStateRoundTrip(t *testing.T) {
	const dim = 6
	for _, name := range []string{"fixed", "residual-balancing", "spectral"} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			orig := NewPolicy(name, 1.0)
			for k := 1; k <= 5; k++ {
				orig.Update(k, randIterState(rng, dim))
			}
			restored := NewPolicy(name, 999.0) // wrong rho0: must be overwritten
			if !restored.SetState(orig.State()) {
				t.Fatal("SetState rejected its own State encoding")
			}
			if restored.Rho() != orig.Rho() {
				t.Fatalf("rho after restore %v, want %v", restored.Rho(), orig.Rho())
			}
			// Both copies must now produce identical future updates.
			rngA := rand.New(rand.NewSource(8))
			rngB := rand.New(rand.NewSource(8))
			for k := 6; k <= 10; k++ {
				a := orig.Update(k, randIterState(rngA, dim))
				b := restored.Update(k, randIterState(rngB, dim))
				if a != b {
					t.Fatalf("k=%d: divergence after restore: %v vs %v", k, a, b)
				}
			}
		})
	}
}

// TestSpectralStatePreSnapshot covers the no-BB-history encoding.
func TestSpectralStatePreSnapshot(t *testing.T) {
	sp := NewSpectralPenalty(2.5)
	st := sp.State()
	if len(st) != 2 || st[0] != 2.5 || st[1] != 0 {
		t.Fatalf("pre-snapshot state %v", st)
	}
	fresh := NewSpectralPenalty(1)
	if !fresh.SetState(st) {
		t.Fatal("SetState rejected pre-snapshot encoding")
	}
	if fresh.Rho() != 2.5 || fresh.havePrev {
		t.Fatalf("restore corrupted: rho=%v havePrev=%v", fresh.Rho(), fresh.havePrev)
	}
}

// TestSetStateRejectsWrongShape ensures mismatched encodings fail loudly
// instead of silently corrupting a resumed run.
func TestSetStateRejectsWrongShape(t *testing.T) {
	if (&FixedPenalty{}).SetState([]float64{1, 2}) {
		t.Fatal("fixed accepted a 2-element state")
	}
	if NewResidualBalancing(1).SetState(nil) {
		t.Fatal("residual-balancing accepted nil state")
	}
	sp := NewSpectralPenalty(1)
	if sp.SetState([]float64{1}) {
		t.Fatal("spectral accepted a 1-element state")
	}
	if sp.SetState([]float64{1, 1, 2, 3}) {
		t.Fatal("spectral accepted a state with len%4 != 0 vectors")
	}
	if sp.SetState([]float64{1, 0, 9}) {
		t.Fatal("spectral accepted trailing bytes on a pre-snapshot state")
	}
}
