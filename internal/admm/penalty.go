package admm

import (
	"math"

	"newtonadmm/internal/linalg"
)

// IterState carries one rank's view of an ADMM iteration's results, the
// raw material for penalty adaptation.
type IterState struct {
	// X1 is the fresh local subproblem solution x_i^{k+1}.
	X1 []float64
	// Z0 and Z1 are the consensus before and after the z-update.
	Z0, Z1 []float64
	// Y0 and Y1 are the multiplier before and after the y-update.
	Y0, Y1 []float64
	// Primal is this rank's primal residual ||x_i - z||.
	Primal float64
	// Dual is this rank's dual residual ||rho (z1 - z0)||.
	Dual float64
}

// PenaltyPolicy adapts one rank's ADMM penalty parameter. Update is called
// once per ADMM iteration (iteration index k starting at 1); it returns
// the penalty to use for the next iteration.
type PenaltyPolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Rho returns the current penalty.
	Rho() float64
	// Update observes iteration k's results and returns the new penalty.
	Update(k int, st IterState) float64
	// State serializes the policy's full mutable state as float64s, so a
	// checkpointed run resumes with bitwise-identical adaptation. The
	// layout is policy-specific; SetState of the same policy type inverts
	// it exactly.
	State() []float64
	// SetState restores state produced by State. It reports false when
	// the encoding does not match this policy type.
	SetState(s []float64) bool
}

// FixedPenalty keeps rho constant (vanilla consensus ADMM).
type FixedPenalty struct{ Value float64 }

// Name implements PenaltyPolicy.
func (f *FixedPenalty) Name() string { return "fixed" }

// Rho implements PenaltyPolicy.
func (f *FixedPenalty) Rho() float64 { return f.Value }

// Update implements PenaltyPolicy (no adaptation).
func (f *FixedPenalty) Update(int, IterState) float64 { return f.Value }

// State implements PenaltyPolicy: [rho].
func (f *FixedPenalty) State() []float64 { return []float64{f.Value} }

// SetState implements PenaltyPolicy.
func (f *FixedPenalty) SetState(s []float64) bool {
	if len(s) != 1 {
		return false
	}
	f.Value = s[0]
	return true
}

// ResidualBalancing is the classic adaptive rule of He, Yang & Wang (2000):
// grow rho when the primal residual dominates, shrink when the dual
// residual dominates. The paper cites it as the common default whose
// convergence "is still not effective in practice".
type ResidualBalancing struct {
	rho float64
	// Mu is the imbalance threshold (default 10).
	Mu float64
	// Tau is the multiplicative step (default 2).
	Tau float64
}

// NewResidualBalancing returns the policy with textbook constants.
func NewResidualBalancing(rho0 float64) *ResidualBalancing {
	return &ResidualBalancing{rho: rho0, Mu: 10, Tau: 2}
}

// Name implements PenaltyPolicy.
func (rb *ResidualBalancing) Name() string { return "residual-balancing" }

// Rho implements PenaltyPolicy.
func (rb *ResidualBalancing) Rho() float64 { return rb.rho }

// State implements PenaltyPolicy: [rho] (Mu and Tau are configuration,
// not evolving state).
func (rb *ResidualBalancing) State() []float64 { return []float64{rb.rho} }

// SetState implements PenaltyPolicy.
func (rb *ResidualBalancing) SetState(s []float64) bool {
	if len(s) != 1 {
		return false
	}
	rb.rho = s[0]
	return true
}

// Update implements PenaltyPolicy from the residual norms.
func (rb *ResidualBalancing) Update(_ int, st IterState) float64 {
	if st.Primal > rb.Mu*st.Dual {
		rb.rho *= rb.Tau
	} else if st.Dual > rb.Mu*st.Primal {
		rb.rho /= rb.Tau
	}
	return rb.rho
}

// SpectralPenalty is Spectral Penalty Selection (SPS) following Xu,
// Figueiredo & Goldstein's adaptive ADMM and its consensus variant
// (ACADMM), the policy the paper adopts (§2.2, refs [29, 30]): per-rank
// Barzilai-Borwein curvature estimates of the local objective and the
// regularizer, combined through a correlation safeguard.
type SpectralPenalty struct {
	rho float64
	// EpsCor is the correlation threshold below which estimates are
	// considered unreliable (Xu et al. use 0.2).
	EpsCor float64
	// Tf is the adaptation period in iterations (Xu et al. use 2).
	Tf int
	// Ccg bounds the relative change per update via (1 + Ccg/k^2).
	Ccg float64
	// MinRho/MaxRho clamp the penalty to a sane range.
	MinRho, MaxRho float64

	havePrev              bool
	x0, z0, lamHat0, lam0 []float64
}

// NewSpectralPenalty returns an SPS policy with the constants of the
// ACADMM paper.
func NewSpectralPenalty(rho0 float64) *SpectralPenalty {
	return &SpectralPenalty{
		rho:    rho0,
		EpsCor: 0.2,
		Tf:     2,
		Ccg:    1e10,
		MinRho: 1e-8,
		MaxRho: 1e8,
	}
}

// Name implements PenaltyPolicy.
func (sp *SpectralPenalty) Name() string { return "spectral" }

// Rho implements PenaltyPolicy.
func (sp *SpectralPenalty) Rho() float64 { return sp.rho }

// spectralStep combines the steepest-descent and minimum-gradient
// Barzilai-Borwein estimates with the hybrid rule of Xu et al.:
// use MG when 2*MG > SD, otherwise SD - MG/2.
func spectralStep(sd, mg float64) float64 {
	if 2*mg > sd {
		return mg
	}
	return sd - mg/2
}

// Update implements PenaltyPolicy. The spectral quotients need the
// gradients the iterates imply, not the raw multipliers:
//
//   - at the stationary point of the x-subproblem (eq. 6a),
//     grad f_i(x1) = y0 + rho (z0 - x1) =: lamHat, so (dx, dLamHat)
//     estimates the local objective's curvature;
//   - at the stationary point of the z-subproblem (eq. 6b/7),
//     grad g(z1) = -sum_i y1_i, so per node -y1 =: lam is its share and
//     (dz, dLam) estimates the regularizer's curvature.
func (sp *SpectralPenalty) Update(k int, st IterState) float64 {
	dim := len(st.X1)
	lamHat := make([]float64, dim)
	lam := make([]float64, dim)
	for j := 0; j < dim; j++ {
		lamHat[j] = st.Y0[j] + sp.rho*(st.Z0[j]-st.X1[j])
		lam[j] = -st.Y1[j]
	}
	if !sp.havePrev {
		sp.snapshot(st.X1, st.Z1, lamHat, lam)
		return sp.rho
	}
	if sp.Tf > 1 && k%sp.Tf != 0 {
		return sp.rho
	}

	dx := make([]float64, dim)
	dz := make([]float64, dim)
	dlh := make([]float64, dim)
	dl := make([]float64, dim)
	for j := 0; j < dim; j++ {
		dx[j] = st.X1[j] - sp.x0[j]
		dz[j] = st.Z1[j] - sp.z0[j]
		dlh[j] = lamHat[j] - sp.lamHat0[j]
		dl[j] = lam[j] - sp.lam0[j]
	}

	// Curvature of the local objective f_i from (dx, dlamHat).
	dxDlh := linalg.Dot(dx, dlh)
	dlhSq := linalg.Dot(dlh, dlh)
	dxSq := linalg.Dot(dx, dx)
	// Curvature of the regularizer g from (dz, dlam).
	dzDl := linalg.Dot(dz, dl)
	dlSq := linalg.Dot(dl, dl)
	dzSq := linalg.Dot(dz, dz)

	var alphaOK, betaOK bool
	var alpha, beta float64
	if dxDlh > 0 && dlhSq > 0 && dxSq > 0 {
		aSD := dlhSq / dxDlh
		aMG := dxDlh / dxSq
		alpha = spectralStep(aSD, aMG)
		alphaCor := dxDlh / (math.Sqrt(dxSq) * math.Sqrt(dlhSq))
		alphaOK = alphaCor > sp.EpsCor && alpha > 0
	}
	if dzDl > 0 && dlSq > 0 && dzSq > 0 {
		bSD := dlSq / dzDl
		bMG := dzDl / dzSq
		beta = spectralStep(bSD, bMG)
		betaCor := dzDl / (math.Sqrt(dzSq) * math.Sqrt(dlSq))
		betaOK = betaCor > sp.EpsCor && beta > 0
	}

	proposal := sp.rho
	switch {
	case alphaOK && betaOK:
		proposal = math.Sqrt(alpha * beta)
	case alphaOK:
		proposal = alpha
	case betaOK:
		proposal = beta
	}

	// Convergence safeguard: bounded relative change, decaying with k.
	guard := 1 + sp.Ccg/float64(k*k)
	lo, hi := sp.rho/guard, sp.rho*guard
	proposal = math.Min(math.Max(proposal, lo), hi)
	proposal = math.Min(math.Max(proposal, sp.MinRho), sp.MaxRho)
	sp.rho = proposal

	sp.snapshot(st.X1, st.Z1, lamHat, lam)
	return sp.rho
}

// State implements PenaltyPolicy: [rho, havePrev] when no BB snapshot
// exists yet, else [rho, 1, x0..., z0..., lamHat0..., lam0...] with the
// four vectors equal-length (the iterate dimension is recovered from the
// slice length on restore).
func (sp *SpectralPenalty) State() []float64 {
	if !sp.havePrev {
		return []float64{sp.rho, 0}
	}
	out := make([]float64, 0, 2+4*len(sp.x0))
	out = append(out, sp.rho, 1)
	out = append(out, sp.x0...)
	out = append(out, sp.z0...)
	out = append(out, sp.lamHat0...)
	out = append(out, sp.lam0...)
	return out
}

// SetState implements PenaltyPolicy.
func (sp *SpectralPenalty) SetState(s []float64) bool {
	if len(s) < 2 {
		return false
	}
	rho, havePrev := s[0], s[1] != 0
	rest := s[2:]
	if !havePrev {
		if len(rest) != 0 {
			return false
		}
		sp.rho = rho
		sp.havePrev = false
		sp.x0, sp.z0, sp.lamHat0, sp.lam0 = nil, nil, nil, nil
		return true
	}
	if len(rest)%4 != 0 || len(rest) == 0 {
		return false
	}
	dim := len(rest) / 4
	sp.rho = rho
	sp.snapshot(rest[:dim], rest[dim:2*dim], rest[2*dim:3*dim], rest[3*dim:])
	return true
}

func (sp *SpectralPenalty) snapshot(x, z, lamHat, lam []float64) {
	sp.x0 = append(sp.x0[:0], x...)
	sp.z0 = append(sp.z0[:0], z...)
	sp.lamHat0 = append(sp.lamHat0[:0], lamHat...)
	sp.lam0 = append(sp.lam0[:0], lam...)
	sp.havePrev = true
}

// NewPolicy constructs a policy by name: "spectral", "residual-balancing",
// or "fixed". Unknown names fall back to spectral (the paper's default).
func NewPolicy(name string, rho0 float64) PenaltyPolicy {
	switch name {
	case "fixed":
		return &FixedPenalty{Value: rho0}
	case "residual-balancing":
		return NewResidualBalancing(rho0)
	default:
		return NewSpectralPenalty(rho0)
	}
}
