package dist

import (
	"math"
	"testing"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/loss"
)

func testDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate(datasets.Config{
		Name: "dist-test", Samples: 60, TestSamples: 20,
		Features: 5, Classes: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildLocalShardsPartitionData(t *testing.T) {
	ds := testDataset(t)
	const ranks = 3
	totals := make([]int, ranks)
	var l2s []float64
	_, err := cluster.Run(cluster.Config{Ranks: ranks, DeviceWorkers: 1},
		func(node *cluster.Node) error {
			local, err := BuildLocal(node, ds, 0.9, true)
			if err != nil {
				return err
			}
			totals[node.Rank()] = local.Problem.N()
			if local.N != ds.TrainSize() {
				return nil
			}
			node.Frozen(func() {
				buf := []float64{local.Problem.L2}
				node.AllReduceSum(buf)
				if node.Rank() == 0 {
					l2s = append(l2s, buf[0])
				}
			})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if sum != ds.TrainSize() {
		t.Fatalf("shards cover %d samples, want %d", sum, ds.TrainSize())
	}
	// Sharded L2 must sum back to the global lambda.
	if len(l2s) != 1 || math.Abs(l2s[0]-0.9) > 1e-12 {
		t.Fatalf("sharded L2 sums to %v, want 0.9", l2s)
	}
}

// TestGlobalGradientMatchesSingleNode checks that the distributed
// gradient/objective equals a single-node evaluation of the fully
// regularized problem, in both regularization conventions.
func TestGlobalGradientMatchesSingleNode(t *testing.T) {
	ds := testDataset(t)
	const lambda = 0.3
	w := make([]float64, ds.Dim())
	for i := range w {
		w[i] = 0.05 * float64(i%9)
	}

	// Single-node reference.
	refDev := device.New("dist-ref", 1)
	defer refDev.Close()
	ref, err := loss.NewSoftmax(refDev, ds.Xtrain, ds.Ytrain, ds.Classes, lambda)
	if err != nil {
		t.Fatal(err)
	}
	gRef := make([]float64, ds.Dim())
	vRef := ref.Gradient(w, gRef)

	for _, shardL2 := range []bool{true, false} {
		var gotVal float64
		gGot := make([]float64, ds.Dim())
		_, err := cluster.Run(cluster.Config{Ranks: 3, DeviceWorkers: 1},
			func(node *cluster.Node) error {
				local, err := BuildLocal(node, ds, lambda, shardL2)
				if err != nil {
					return err
				}
				g := make([]float64, ds.Dim())
				val := local.GlobalGradient(node, w, g)
				if node.Rank() == 0 {
					gotVal = val
					copy(gGot, g)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotVal-vRef) > 1e-9*math.Max(1, math.Abs(vRef)) {
			t.Fatalf("shardL2=%v: global value %v, want %v", shardL2, gotVal, vRef)
		}
		for j := range gRef {
			if math.Abs(gGot[j]-gRef[j]) > 1e-9*math.Max(1, math.Abs(gRef[j])) {
				t.Fatalf("shardL2=%v: global gradient differs at %d: %v vs %v",
					shardL2, j, gGot[j], gRef[j])
			}
		}
	}
}

func TestRecorderObserveFrozenAndConsistent(t *testing.T) {
	ds := testDataset(t)
	w := make([]float64, ds.Dim())
	objs := make([]float64, 3)
	var points int
	var acc float64
	_, err := cluster.Run(cluster.Config{Ranks: 3, DeviceWorkers: 1},
		func(node *cluster.Node) error {
			local, err := BuildLocal(node, ds, 0.1, true)
			if err != nil {
				return err
			}
			rec := NewRecorder("test-solver", ds, local, true)
			rounds := node.Rounds()
			objs[node.Rank()] = rec.Observe(node, 0, w)
			if node.Rounds() != rounds {
				return nil // frozen instrumentation must not count rounds
			}
			if node.Rank() == 0 {
				points = len(rec.Trace.Points)
				acc = rec.Trace.Points[0].TestAccuracy
				if rec.Trace.Solver != "test-solver" || rec.Trace.Dataset != ds.Name {
					points = -1
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank must see the identical allreduced objective (the
	// early-stopping contract), equal to n*log(C) at w=0.
	want := float64(ds.TrainSize()) * math.Log(float64(ds.Classes))
	for r, o := range objs {
		if math.Abs(o-want) > 1e-9*want {
			t.Fatalf("rank %d observed %v, want %v", r, o, want)
		}
		if o != objs[0] {
			t.Fatalf("rank %d observed %v != rank 0's %v", r, o, objs[0])
		}
	}
	if points != 1 {
		t.Fatalf("rank 0 recorded %d trace points (or bad labels), want 1", points)
	}
	if math.IsNaN(acc) || acc < 0 || acc > 1 {
		t.Fatalf("test accuracy %v outside [0,1]", acc)
	}
}
