// Package dist holds the rank-local state shared by every distributed
// solver in the reproduction: the shard-local softmax problem each rank
// optimizes, the one-round global gradient/objective collective, and the
// frozen-clock convergence recorder behind every trace in the evaluation.
//
// Two regularization conventions coexist in the paper. The consensus
// solver (Newton-ADMM) keeps g(z) = Lambda/2 ||z||^2 at the master's
// z-update, so its local problems carry no L2 at all; the data-parallel
// baselines (GIANT, DiSCO, DANE, SGD) need sum_i f_i = F including the
// regularizer, so each shard carries Lambda scaled by its sample
// fraction. BuildLocal's shardL2 flag selects between them, and the
// Recorder adds the global regularizer back when it was left out.
package dist

import (
	"math"
	"time"

	"newtonadmm/internal/ckpt"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
)

// Local is one rank's share of a distributed training run.
type Local struct {
	// Problem is the softmax objective over this rank's contiguous shard,
	// executing on the rank's private device.
	Problem *loss.Softmax
	// Lambda is the *global* L2 strength (regardless of how much of it the
	// shard problem carries).
	Lambda float64
	// N is the global training-set size (sum of all shards).
	N int
	// ShardedL2 records whether Problem.L2 is Lambda scaled by the shard
	// fraction (true: summing shard objectives reproduces the fully
	// regularized global objective) or zero (false: the Newton-ADMM
	// convention, where the master's z-update owns the regularizer).
	ShardedL2 bool

	buf []float64 // dim+1 scratch for the fused gradient+value allreduce
}

// BuildLocal constructs rank node.Rank()'s Local over its shard of ds.
// With shardL2 the shard problem carries Lambda * n_i/n so that the shard
// objectives sum to the global objective; without it the shard problem is
// unregularized (the ADMM subproblem convention).
func BuildLocal(node *cluster.Node, ds *datasets.Dataset, lambda float64, shardL2 bool) (*Local, error) {
	n := ds.TrainSize()
	idx := datasets.Shard(n, node.Size(), node.Rank())
	y := make([]int, len(idx))
	for k, i := range idx {
		y[k] = ds.Ytrain[i]
	}
	l2 := 0.0
	if shardL2 && n > 0 {
		l2 = lambda * float64(len(idx)) / float64(n)
	}
	prob, err := loss.NewSoftmax(node.Dev, ds.Xtrain.Subset(idx), y, ds.Classes, l2)
	if err != nil {
		return nil, err
	}
	return &Local{Problem: prob, Lambda: lambda, N: n, ShardedL2: shardL2}, nil
}

// GlobalGradient fills g with the gradient of the *global* objective at x
// and returns the global objective value, using a single allreduce round
// (value and gradient travel in one fused payload). When the shards do
// not carry the regularizer, it is added exactly once after the reduce.
func (l *Local) GlobalGradient(node *cluster.Node, x, g []float64) float64 {
	dim := l.Problem.Dim()
	if len(l.buf) != dim+1 {
		l.buf = make([]float64, dim+1)
	}
	val := l.Problem.Gradient(x, g)
	copy(l.buf, g)
	l.buf[dim] = val
	node.AllReduceSum(l.buf)
	copy(g, l.buf[:dim])
	total := l.buf[dim]
	if !l.ShardedL2 {
		linalg.Axpy(l.Lambda, x, g)
		nrm := linalg.Nrm2(x)
		total += 0.5 * l.Lambda * nrm * nrm
	}
	return total
}

// Recorder accumulates a convergence trace with the virtual clock frozen,
// so instrumentation (global objective, test accuracy) costs the measured
// algorithm nothing — the harness convention used for every figure.
type Recorder struct {
	// Trace is the history recorded so far. Points are appended on rank 0;
	// other ranks keep an empty trace but still participate in the
	// collective so the schedule stays aligned.
	Trace metrics.Trace

	local    *Local
	ds       *datasets.Dataset
	evalTest bool
	buf      []float64 // 1-element allreduce scratch
}

// NewRecorder builds a recorder for one solver run.
func NewRecorder(solver string, ds *datasets.Dataset, local *Local, evalTestAccuracy bool) *Recorder {
	return &Recorder{
		Trace:    metrics.Trace{Solver: solver, Dataset: ds.Name},
		local:    local,
		ds:       ds,
		evalTest: evalTestAccuracy,
		buf:      make([]float64, 1),
	}
}

// CheckpointTrace exports the recorded points in snapshot form, so a
// resumed run reconstructs the uninterrupted trace bitwise.
func (r *Recorder) CheckpointTrace() []ckpt.TracePoint {
	out := make([]ckpt.TracePoint, len(r.Trace.Points))
	for i, p := range r.Trace.Points {
		out[i] = ckpt.TracePoint{
			Epoch:        p.Epoch,
			TimeNs:       float64(p.Time),
			Objective:    p.Objective,
			TestAccuracy: p.TestAccuracy,
			GradNorm:     p.GradNorm,
		}
	}
	return out
}

// RestoreTrace seeds the recorder from snapshot points (the inverse of
// CheckpointTrace); called on rank 0 when resuming.
func (r *Recorder) RestoreTrace(points []ckpt.TracePoint) {
	r.Trace.Points = make([]metrics.Point, len(points))
	for i, p := range points {
		r.Trace.Points[i] = metrics.Point{
			Epoch:        p.Epoch,
			Time:         time.Duration(p.TimeNs),
			Objective:    p.Objective,
			TestAccuracy: p.TestAccuracy,
			GradNorm:     p.GradNorm,
		}
	}
}

// Observe records one trace point at iterate x and returns the global
// objective (identical on every rank — the early-stopping contract). It
// is a collective: every rank must call it at the same point.
func (r *Recorder) Observe(node *cluster.Node, epoch int, x []float64) float64 {
	var obj float64
	node.Frozen(func() {
		r.buf[0] = r.local.Problem.Value(x)
		node.AllReduceSum(r.buf)
		obj = r.buf[0]
		if !r.local.ShardedL2 {
			nrm := linalg.Nrm2(x)
			obj += 0.5 * r.local.Lambda * nrm * nrm
		}
		if node.Rank() == 0 {
			acc := math.NaN()
			if r.evalTest && r.ds.Xtest != nil && r.ds.TestSize() > 0 {
				acc = r.local.Problem.Accuracy(r.ds.Xtest, r.ds.Ytest, x)
			}
			r.Trace.Append(metrics.Point{
				Epoch:        epoch,
				Time:         node.Clock(),
				Objective:    obj,
				TestAccuracy: acc,
				GradNorm:     math.NaN(),
			})
		}
	})
	return obj
}
