package linalg

import (
	"math/rand"
	"testing"
)

// The blocked kernels must be drop-in replacements for the retained
// serial references: bitwise-identical output on every shape, including
// feature dimensions that straddle the cache-block width, class counts
// that exercise the 4-class remainder, row counts that exercise the
// 4-row remainder, and inputs laced with exact zeros (the reference
// MulTN skips zero weights; the blocked kernel must reproduce that
// bitwise).

func randVecWithZeros(rng *rand.Rand, n int, zeroFrac float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Float64() >= zeroFrac {
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

// propShapes exercises the blocking boundaries: p around featureBlock,
// m around the class quad, n around the row quad.
func propShapes(rng *rand.Rand) (n, p, m int) {
	ps := []int{1, 2, 3, 5, featureBlock - 1, featureBlock, featureBlock + 1, 2*featureBlock + 7, 40}
	ms := []int{1, 2, 3, 4, 5, 7, 8, 9, 11}
	ns := []int{1, 2, 3, 4, 5, 7, 8, 23}
	return ns[rng.Intn(len(ns))], ps[rng.Intn(len(ps))], ms[rng.Intn(len(ms))]
}

func TestBlockedMulNTBitwiseMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		n, p, m := propShapes(rng)
		a := randMatrix(rng, n, p)
		b := randVecWithZeros(rng, m*p, 0.1)
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		got := make([]float64, n*m)
		want := make([]float64, n*m)
		MulNTRange(a, b, m, got, lo, hi)
		MulNTRangeRef(a, b, m, want, lo, hi)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d p=%d m=%d rows [%d,%d)): blocked MulNT differs at %d: %v vs %v",
					trial, n, p, m, lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestBlockedMulTNBitwiseMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 200; trial++ {
		n, p, m := propShapes(rng)
		a := randMatrix(rng, n, p)
		// Heavily zero-laden weights: the reference kernel's w==0 skip
		// must be bitwise-reproduced by the blocked kernel.
		d := randVecWithZeros(rng, n*m, 0.4)
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		got := make([]float64, m*p)
		want := make([]float64, m*p)
		MulTNRange(a, d, m, got, lo, hi)
		MulTNRangeRef(a, d, m, want, lo, hi)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d p=%d m=%d rows [%d,%d)): blocked MulTN differs at %d: %v vs %v",
					trial, n, p, m, lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestBlockedMulTNRangePartitionBitwise(t *testing.T) {
	// Accumulating disjoint row ranges into one buffer must equal the
	// full-range reference bitwise — the contract the device's
	// single-chunk fast path relies on.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 50; trial++ {
		n, p, m := propShapes(rng)
		a := randMatrix(rng, n, p)
		d := randVecWithZeros(rng, n*m, 0.3)
		got := make([]float64, m*p)
		cut := rng.Intn(n + 1)
		MulTNRange(a, d, m, got, 0, cut)
		MulTNRange(a, d, m, got, cut, n)
		want := make([]float64, m*p)
		MulTNRangeRef(a, d, m, want, 0, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: partitioned MulTN differs at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
