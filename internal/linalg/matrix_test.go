package linalg

import (
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMulNT computes S = A*B^T with triple loops, as the oracle.
func naiveMulNT(a *Matrix, b []float64, m int) []float64 {
	s := make([]float64, a.Rows*m)
	for i := 0; i < a.Rows; i++ {
		for c := 0; c < m; c++ {
			var acc float64
			for j := 0; j < a.Cols; j++ {
				acc += a.At(i, j) * b[c*a.Cols+j]
			}
			s[i*m+c] = acc
		}
	}
	return s
}

// naiveMulTN computes G = D^T*A with triple loops, as the oracle.
func naiveMulTN(a *Matrix, d []float64, m int) []float64 {
	g := make([]float64, m*a.Cols)
	for c := 0; c < m; c++ {
		for j := 0; j < a.Cols; j++ {
			var acc float64
			for i := 0; i < a.Rows; i++ {
				acc += d[i*m+c] * a.At(i, j)
			}
			g[c*a.Cols+j] = acc
		}
	}
	return g
}

func TestMulNTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n, p, m := 1+rng.Intn(20), 1+rng.Intn(15), 1+rng.Intn(8)
		a := randMatrix(rng, n, p)
		b := randVec(rng, m*p)
		s := make([]float64, n*m)
		MulNT(a, b, m, s)
		want := naiveMulNT(a, b, m)
		for i := range want {
			if !almostEqual(s[i], want[i], 1e-10) {
				t.Fatalf("trial %d: MulNT[%d]=%v, want %v", trial, i, s[i], want[i])
			}
		}
	}
}

func TestMulTNAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n, p, m := 1+rng.Intn(20), 1+rng.Intn(15), 1+rng.Intn(8)
		a := randMatrix(rng, n, p)
		d := randVec(rng, n*m)
		g := make([]float64, m*p)
		MulTN(a, d, m, g)
		want := naiveMulTN(a, d, m)
		for i := range want {
			if !almostEqual(g[i], want[i], 1e-10) {
				t.Fatalf("trial %d: MulTN[%d]=%v, want %v", trial, i, g[i], want[i])
			}
		}
	}
}

func TestMulRangePartition(t *testing.T) {
	// Computing over [0,k) and [k,n) must equal computing over [0,n).
	rng := rand.New(rand.NewSource(5))
	n, p, m := 17, 9, 4
	a := randMatrix(rng, n, p)
	b := randVec(rng, m*p)
	whole := make([]float64, n*m)
	MulNTRange(a, b, m, whole, 0, n)
	split := make([]float64, n*m)
	MulNTRange(a, b, m, split, 0, 7)
	MulNTRange(a, b, m, split, 7, n)
	for i := range whole {
		if whole[i] != split[i] {
			t.Fatalf("partitioned MulNTRange differs at %d", i)
		}
	}

	d := randVec(rng, n*m)
	gWhole := make([]float64, m*p)
	MulTNRange(a, d, m, gWhole, 0, n)
	g1 := make([]float64, m*p)
	g2 := make([]float64, m*p)
	MulTNRange(a, d, m, g1, 0, 7)
	MulTNRange(a, d, m, g2, 7, n)
	for i := range gWhole {
		if !almostEqual(gWhole[i], g1[i]+g2[i], 1e-12) {
			t.Fatalf("partitioned MulTNRange differs at %d", i)
		}
	}
}

func TestRowSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 10, 3)
	sub := a.RowSubset([]int{7, 0, 7})
	if sub.Rows != 3 || sub.Cols != 3 {
		t.Fatalf("RowSubset shape %dx%d", sub.Rows, sub.Cols)
	}
	for j := 0; j < 3; j++ {
		if sub.At(0, j) != a.At(7, j) || sub.At(1, j) != a.At(0, j) || sub.At(2, j) != a.At(7, j) {
			t.Fatal("RowSubset content mismatch")
		}
	}
	// Mutating the subset must not touch the original.
	sub.Set(0, 0, 1234)
	if a.At(7, 0) == 1234 {
		t.Fatal("RowSubset aliases parent data")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 5 {
		t.Fatal("Row view mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases data")
	}
}

func TestNewMatrixFromValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}
