package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDotBasic(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// tame maps arbitrary quick-generated floats into a finite moderate range
// so products cannot overflow.
func tame(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Remainder(x, 1e6)
	}
	return out
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x, y := tame(a[:n]), tame(b[:n])
		return almostEqual(Dot(x, y), Dot(y, x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		x, y, z := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		alpha := rng.NormFloat64()
		// <alpha*x + y, z> == alpha*<x,z> + <y,z>
		w := make([]float64, n)
		Waxpby(alpha, x, 1, y, w)
		lhs := Dot(w, z)
		rhs := alpha*Dot(x, z) + Dot(y, z)
		if !almostEqual(lhs, rhs, 1e-9) {
			t.Fatalf("linearity violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", y, want)
		}
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{5, 5}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("Axpy with alpha=0 modified y: %v", y)
	}
}

func TestNrm2AgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(100)
		x := randVec(rng, n)
		var ssq float64
		for _, v := range x {
			ssq += v * v
		}
		if !almostEqual(Nrm2(x), math.Sqrt(ssq), 1e-12) {
			t.Fatalf("Nrm2 mismatch: %v vs %v", Nrm2(x), math.Sqrt(ssq))
		}
	}
}

func TestNrm2Overflow(t *testing.T) {
	// Components near sqrt(MaxFloat64) would overflow a naive sum of squares.
	big := math.Sqrt(math.MaxFloat64) / 2
	x := []float64{big, big, big}
	want := big * math.Sqrt(3)
	if !almostEqual(Nrm2(x), want, 1e-12) {
		t.Fatalf("Nrm2 overflow guard failed: %v vs %v", Nrm2(x), want)
	}
}

func TestNrm2Zero(t *testing.T) {
	if Nrm2([]float64{0, 0, 0}) != 0 {
		t.Fatal("Nrm2 of zero vector should be 0")
	}
	if Nrm2(nil) != 0 {
		t.Fatal("Nrm2 of empty vector should be 0")
	}
}

func TestNrmInf(t *testing.T) {
	if got := NrmInf([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("NrmInf = %v, want 7", got)
	}
}

func TestWaxpbyAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	// w aliases x
	Waxpby(2, x, 3, y, x)
	want := []float64{14, 19, 24}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Waxpby aliased result %v, want %v", x, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := Clone(x)
	c[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(raw []float64) bool {
		a := tame(raw)
		y := Clone(a)
		x := Clone(a)
		Add(y, x)
		Sub(y, x)
		for i := range y {
			if !almostEqual(y[i], a[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2([]float64{0, 3}, []float64{4, 0}); got != 5 {
		t.Fatalf("Dist2 = %v, want 5", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestScalZero(t *testing.T) {
	x := []float64{1, 2, 3}
	Scal(0, x)
	for _, v := range x {
		if v != 0 {
			t.Fatal("Scal(0) should zero the vector")
		}
	}
}
