// Package linalg provides the dense linear-algebra kernels used throughout
// the Newton-ADMM solver: BLAS-1 style vector operations and row-parallel
// BLAS-3 style matrix products. All matrices are row-major float64.
//
// The package is deliberately dependency-free; the device package layers
// parallel execution and accounting on top of these kernels.
package linalg

import "math"

// Dot returns the inner product <x, y>. The slices must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Waxpby computes w = alpha*x + beta*y element-wise. w may alias x or y.
func Waxpby(alpha float64, x []float64, beta float64, y, w []float64) {
	if len(x) != len(y) || len(x) != len(w) {
		panic("linalg: Waxpby length mismatch")
	}
	for i := range w {
		w[i] = alpha*x[i] + beta*y[i]
	}
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst. The slices must have equal length.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("linalg: Copy length mismatch")
	}
	copy(dst, src)
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Nrm2 returns the Euclidean norm of x, guarding against overflow for
// large components by rescaling.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// NrmInf returns the max-norm of x.
func NrmInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Add computes y += x element-wise.
func Add(y, x []float64) {
	if len(x) != len(y) {
		panic("linalg: Add length mismatch")
	}
	for i, v := range x {
		y[i] += v
	}
}

// Sub computes y -= x element-wise.
func Sub(y, x []float64) {
	if len(x) != len(y) {
		panic("linalg: Sub length mismatch")
	}
	for i, v := range x {
		y[i] -= v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Dist2 returns the Euclidean distance ||x - y||.
func Dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dist2 length mismatch")
	}
	var ssq float64
	for i, v := range x {
		d := v - y[i]
		ssq += d * d
	}
	return math.Sqrt(ssq)
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
