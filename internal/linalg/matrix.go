package linalg

import "fmt"

// Matrix is a dense row-major matrix: element (i,j) is Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom wraps data (no copy) as a Rows x Cols matrix.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// RowSubset returns a new matrix whose rows are m's rows at the given
// indices, in order. The data is copied.
func (m *Matrix) RowSubset(idx []int) *Matrix {
	s := NewMatrix(len(idx), m.Cols)
	for k, i := range idx {
		copy(s.Row(k), m.Row(i))
	}
	return s
}

// featureBlock is the cache-blocking width (in float64 elements) of the
// feature dimension used by the blocked kernels: 256 elements = 2 KiB per
// streamed row segment, so a 4-class register block touches ~10 KiB of
// hot data per tile and stays L1-resident. Blocking never reorders the
// per-element accumulation (see the kernel comments), so results are
// bitwise identical to the *Ref kernels at any block width.
const featureBlock = 256

// MulNTRange computes, for rows i in [lo,hi) of A, the block
// S[i,:] = A[i,:] * B^T where B is m x cols(A) row-major and S is rows(A) x m.
// It is the inner kernel parallelized by the device package.
//
// The implementation is register-blocked over four output classes at a
// time: the row A[i,:] is streamed once per class quad instead of once per
// class, and the four accumulators form independent floating-point
// dependency chains (the serial kernel is latency-bound on a single add
// chain). Each accumulator still sums A[i,j]*B[c,j] in increasing-j order
// with one accumulator per output element, so the result is bitwise
// identical to MulNTRangeRef — which is also why the feature dimension is
// blocked with an order-preserving split loop rather than a reordering
// tile: accumulating j-tiles into separate partials would reassociate the
// sum.
func MulNTRange(a *Matrix, b []float64, m int, s []float64, lo, hi int) {
	p := a.Cols
	if len(b) != m*p {
		panic("linalg: MulNTRange B dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		si := s[i*m : (i+1)*m]
		c := 0
		for ; c+4 <= m; c += 4 {
			b0 := b[c*p : c*p+p]
			b1 := b[(c+1)*p : (c+1)*p+p]
			b2 := b[(c+2)*p : (c+2)*p+p]
			b3 := b[(c+3)*p : (c+3)*p+p]
			var acc0, acc1, acc2, acc3 float64
			for jb := 0; jb < p; jb += featureBlock {
				je := jb + featureBlock
				if je > p {
					je = p
				}
				av := ai[jb:je]
				// Reslicing to len(av) lets the compiler prove the
				// indexed loads below are in bounds (no per-element
				// bounds checks in the hot loop).
				t0 := b0[jb:je][:len(av)]
				t1 := b1[jb:je][:len(av)]
				t2 := b2[jb:je][:len(av)]
				t3 := b3[jb:je][:len(av)]
				for j, v := range av {
					acc0 += v * t0[j]
					acc1 += v * t1[j]
					acc2 += v * t2[j]
					acc3 += v * t3[j]
				}
			}
			si[c] = acc0
			si[c+1] = acc1
			si[c+2] = acc2
			si[c+3] = acc3
		}
		for ; c < m; c++ {
			bc := b[c*p : c*p+p]
			var acc float64
			for j, v := range ai {
				acc += v * bc[j]
			}
			si[c] = acc
		}
	}
}

// MulTNRange accumulates, for rows i in [lo,hi) of A, the outer-product
// contribution G += D[i,:]^T ⊗ A[i,:] where D is rows(A) x m and G is m x cols(A).
// Callers parallelize over disjoint row ranges with private G buffers.
//
// The kernel is cache-blocked over the feature dimension (the m x
// featureBlock tile of G stays resident while all rows of the range
// stream through it) and register-blocked 4x4: four sample rows and four
// classes at a time, so every G element is loaded and stored once per
// four row contributions instead of once each (the serial kernel is
// bound by that read-modify-write stream) and every A load feeds four
// classes. Blocking never changes the result: every G element still
// receives its per-row contributions in increasing-i order with the same
// multiply-add per contribution, so for finite inputs the output is
// bitwise identical to MulTNRangeRef (G accumulators start at +0 and can
// never become -0, making the zero-weight contributions the reference
// kernel skips exact bitwise no-ops; only non-finite inputs, which the
// loss layer never produces, would propagate differently).
func MulTNRange(a *Matrix, d []float64, m int, g []float64, lo, hi int) {
	p := a.Cols
	if len(g) != m*p {
		panic("linalg: MulTNRange G dimension mismatch")
	}
	for jb := 0; jb < p; jb += featureBlock {
		je := jb + featureBlock
		if je > p {
			je = p
		}
		i := lo
		for ; i+4 <= hi; i += 4 {
			a0 := a.Row(i)[jb:je]
			a1 := a.Row(i + 1)[jb:je][:len(a0)]
			a2 := a.Row(i + 2)[jb:je][:len(a0)]
			a3 := a.Row(i + 3)[jb:je][:len(a0)]
			d0 := d[i*m : (i+1)*m]
			d1 := d[(i+1)*m : (i+2)*m]
			d2 := d[(i+2)*m : (i+3)*m]
			d3 := d[(i+3)*m : (i+4)*m]
			c := 0
			for ; c+4 <= m; c += 4 {
				w00, w10, w20, w30 := d0[c], d1[c], d2[c], d3[c]
				w01, w11, w21, w31 := d0[c+1], d1[c+1], d2[c+1], d3[c+1]
				w02, w12, w22, w32 := d0[c+2], d1[c+2], d2[c+2], d3[c+2]
				w03, w13, w23, w33 := d0[c+3], d1[c+3], d2[c+3], d3[c+3]
				g0 := g[c*p+jb : c*p+je][:len(a0)]
				g1 := g[(c+1)*p+jb : (c+1)*p+je][:len(a0)]
				g2 := g[(c+2)*p+jb : (c+2)*p+je][:len(a0)]
				g3 := g[(c+3)*p+jb : (c+3)*p+je][:len(a0)]
				for j, v0 := range a0 {
					v1, v2, v3 := a1[j], a2[j], a3[j]
					t0 := g0[j]
					t0 += w00 * v0
					t0 += w10 * v1
					t0 += w20 * v2
					t0 += w30 * v3
					g0[j] = t0
					t1 := g1[j]
					t1 += w01 * v0
					t1 += w11 * v1
					t1 += w21 * v2
					t1 += w31 * v3
					g1[j] = t1
					t2 := g2[j]
					t2 += w02 * v0
					t2 += w12 * v1
					t2 += w22 * v2
					t2 += w32 * v3
					g2[j] = t2
					t3 := g3[j]
					t3 += w03 * v0
					t3 += w13 * v1
					t3 += w23 * v2
					t3 += w33 * v3
					g3[j] = t3
				}
			}
			for ; c < m; c++ {
				w0, w1, w2, w3 := d0[c], d1[c], d2[c], d3[c]
				gc := g[c*p+jb : c*p+je][:len(a0)]
				for j, v0 := range a0 {
					t := gc[j]
					t += w0 * v0
					t += w1 * a1[j]
					t += w2 * a2[j]
					t += w3 * a3[j]
					gc[j] = t
				}
			}
		}
		// Remainder rows (< 4): the reference per-class loop.
		for ; i < hi; i++ {
			ai := a.Row(i)[jb:je]
			di := d[i*m : (i+1)*m]
			for c := 0; c < m; c++ {
				w := di[c]
				if w == 0 {
					continue
				}
				gc := g[c*p+jb : c*p+je][:len(ai)]
				for j, v := range ai {
					gc[j] += w * v
				}
			}
		}
	}
}

// MulNTRangeRef is the unblocked serial reference for MulNTRange, kept
// for property testing: the blocked kernel must match it bitwise.
func MulNTRangeRef(a *Matrix, b []float64, m int, s []float64, lo, hi int) {
	p := a.Cols
	if len(b) != m*p {
		panic("linalg: MulNTRangeRef B dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		si := s[i*m : (i+1)*m]
		for c := 0; c < m; c++ {
			bc := b[c*p : (c+1)*p]
			var acc float64
			for j, v := range ai {
				acc += v * bc[j]
			}
			si[c] = acc
		}
	}
}

// MulTNRangeRef is the unblocked serial reference for MulTNRange, kept
// for property testing: the blocked kernel must match it bitwise.
func MulTNRangeRef(a *Matrix, d []float64, m int, g []float64, lo, hi int) {
	p := a.Cols
	if len(g) != m*p {
		panic("linalg: MulTNRangeRef G dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := d[i*m : (i+1)*m]
		for c := 0; c < m; c++ {
			w := di[c]
			if w == 0 {
				continue
			}
			gc := g[c*p : (c+1)*p]
			for j, v := range ai {
				gc[j] += w * v
			}
		}
	}
}

// MulNT computes S = A * B^T serially (reference implementation).
// B is m x cols(A); S must have length rows(A)*m.
func MulNT(a *Matrix, b []float64, m int, s []float64) {
	if len(s) != a.Rows*m {
		panic("linalg: MulNT S dimension mismatch")
	}
	MulNTRangeRef(a, b, m, s, 0, a.Rows)
}

// MulTN computes G = D^T * A serially (reference implementation).
// D is rows(A) x m; G must have length m*cols(A) and is overwritten.
func MulTN(a *Matrix, d []float64, m int, g []float64) {
	Zero(g)
	MulTNRangeRef(a, d, m, g, 0, a.Rows)
}
