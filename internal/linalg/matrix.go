package linalg

import "fmt"

// Matrix is a dense row-major matrix: element (i,j) is Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom wraps data (no copy) as a Rows x Cols matrix.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// RowSubset returns a new matrix whose rows are m's rows at the given
// indices, in order. The data is copied.
func (m *Matrix) RowSubset(idx []int) *Matrix {
	s := NewMatrix(len(idx), m.Cols)
	for k, i := range idx {
		copy(s.Row(k), m.Row(i))
	}
	return s
}

// MulNTRange computes, for rows i in [lo,hi) of A, the block
// S[i,:] = A[i,:] * B^T where B is m x cols(A) row-major and S is rows(A) x m.
// It is the inner kernel parallelized by the device package.
func MulNTRange(a *Matrix, b []float64, m int, s []float64, lo, hi int) {
	p := a.Cols
	if len(b) != m*p {
		panic("linalg: MulNTRange B dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		si := s[i*m : (i+1)*m]
		for c := 0; c < m; c++ {
			bc := b[c*p : (c+1)*p]
			var acc float64
			for j, v := range ai {
				acc += v * bc[j]
			}
			si[c] = acc
		}
	}
}

// MulTNRange accumulates, for rows i in [lo,hi) of A, the outer-product
// contribution G += D[i,:]^T ⊗ A[i,:] where D is rows(A) x m and G is m x cols(A).
// Callers parallelize over disjoint row ranges with private G buffers.
func MulTNRange(a *Matrix, d []float64, m int, g []float64, lo, hi int) {
	p := a.Cols
	if len(g) != m*p {
		panic("linalg: MulTNRange G dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := d[i*m : (i+1)*m]
		for c := 0; c < m; c++ {
			w := di[c]
			if w == 0 {
				continue
			}
			gc := g[c*p : (c+1)*p]
			for j, v := range ai {
				gc[j] += w * v
			}
		}
	}
}

// MulNT computes S = A * B^T serially (reference implementation).
// B is m x cols(A); S must have length rows(A)*m.
func MulNT(a *Matrix, b []float64, m int, s []float64) {
	if len(s) != a.Rows*m {
		panic("linalg: MulNT S dimension mismatch")
	}
	MulNTRange(a, b, m, s, 0, a.Rows)
}

// MulTN computes G = D^T * A serially (reference implementation).
// D is rows(A) x m; G must have length m*cols(A) and is overwritten.
func MulTN(a *Matrix, d []float64, m int, g []float64) {
	Zero(g)
	MulTNRange(a, d, m, g, 0, a.Rows)
}
