package core

import (
	"math"
	"testing"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
)

func TestSolveWithJacobiPreconditioning(t *testing.T) {
	ds := smallDataset(t)
	lambda := 1e-3
	_, fStar := singleNodeOptimum(t, ds, lambda)
	res, err := Solve(cluster.Config{Ranks: 3, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 60, Lambda: lambda, Jacobi: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.05 {
		t.Fatalf("Jacobi Newton-ADMM gap %v", rel)
	}
}

func TestSolveTargetObjectiveStopsEarly(t *testing.T) {
	ds := smallDataset(t)
	// First run free to learn a reachable mid-trajectory target.
	free, err := Solve(cluster.Config{Ranks: 2, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 30, Lambda: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(free.Trace.Points) < 10 {
		t.Fatalf("trace too short: %d", len(free.Trace.Points))
	}
	target := free.Trace.Points[5].Objective

	res, err := Solve(cluster.Config{Ranks: 2, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 30, Lambda: 1e-3, TargetObjective: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	if final.Epoch >= 30 {
		t.Fatalf("early stop did not trigger: ran %d epochs", final.Epoch)
	}
	if final.Objective > target {
		t.Fatalf("stopped above target: %v > %v", final.Objective, target)
	}
}

func TestSolveLargerLocalNewtonBudgetConvergesFasterPerEpoch(t *testing.T) {
	// More inner Newton iterations per ADMM epoch should reach a lower
	// objective in the same number of epochs (at higher per-epoch cost).
	ds := smallDataset(t)
	epochs := 10
	run := func(inner int) float64 {
		res, err := Solve(cluster.Config{Ranks: 2, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
			Epochs: epochs, Lambda: 1e-3, LocalNewtonIters: inner,
		})
		if err != nil {
			t.Fatal(err)
		}
		final, _ := res.Trace.Final()
		return final.Objective
	}
	one := run(1)
	five := run(5)
	if five > one*(1+1e-9) {
		t.Fatalf("inner=5 (%v) worse than inner=1 (%v)", five, one)
	}
}

func TestSpectralBeatsFixedPenalty(t *testing.T) {
	// Regression test for the SPS sign convention: lamHat must equal
	// grad f_i(x1) = y0 + rho (z0 - x1). With the sign flipped, the
	// correlation safeguard vetoes every update, rho never moves, and
	// "spectral" degenerates to "fixed" — on a weakly regularized
	// problem the adaptive penalty is what drives consensus.
	ds, err := datasets.Generate(datasets.MNISTLike(0.1))
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy string) (float64, float64, []float64) {
		res, err := Solve(cluster.Config{Ranks: 4, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
			Epochs: 40, Lambda: 1e-5, Penalty: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		final, _ := res.Trace.Final()
		return final.Objective, res.PrimalResidual, res.FinalRhos
	}
	fSpec, rSpec, rhosSpec := run("spectral")
	fFixed, rFixed, _ := run("fixed")
	adapted := false
	for _, rho := range rhosSpec {
		if rho != 1 {
			adapted = true
		}
	}
	if !adapted {
		t.Fatal("spectral penalty never adapted rho")
	}
	if fSpec >= fFixed {
		t.Fatalf("spectral objective %v not better than fixed %v", fSpec, fFixed)
	}
	if rSpec >= rFixed {
		t.Fatalf("spectral primal residual %v not better than fixed %v", rSpec, rFixed)
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epochs != 100 || o.Rho0 != 1 || o.Penalty != "spectral" {
		t.Fatalf("defaults: %+v", o)
	}
	if o.LocalNewtonIters != 1 {
		t.Fatalf("LocalNewtonIters default %d, want 1 (paper epoch-cost profile)", o.LocalNewtonIters)
	}
	if o.CG.MaxIters != 10 || o.CG.RelTol != 1e-4 || o.LineSearch.MaxIters != 10 {
		t.Fatalf("paper hyper-parameter defaults wrong: %+v", o)
	}
}
