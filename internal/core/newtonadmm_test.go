package core

import (
	"math"
	"testing"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/newton"
)

func smallDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate(datasets.Config{
		Name: "core-test", Samples: 600, TestSamples: 200, Features: 12,
		Classes: 3, Seed: 90, Separation: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// singleNodeOptimum runs plain Newton to high precision for F(x*).
func singleNodeOptimum(t *testing.T, ds *datasets.Dataset, lambda float64) (w []float64, fStar float64) {
	t.Helper()
	dev := device.New("oracle", 4)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, lambda)
	if err != nil {
		t.Fatal(err)
	}
	w = make([]float64, prob.Dim())
	res := newton.Solve(prob, w, newton.Options{MaxIters: 200, GradTol: 1e-7})
	if !res.Converged && res.GradNorm > 1e-5 {
		t.Fatalf("oracle Newton did not converge: %+v", res)
	}
	return w, prob.Value(w)
}

func TestSolveReachesNearOptimum(t *testing.T) {
	ds := smallDataset(t)
	lambda := 1e-3
	_, fStar := singleNodeOptimum(t, ds, lambda)

	res, err := Solve(cluster.Config{Ranks: 4, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 60, Lambda: lambda, EvalTestAccuracy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, ok := res.Trace.Final()
	if !ok {
		t.Fatal("empty trace")
	}
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.05 {
		t.Fatalf("relative gap %v after 60 epochs (F=%v, F*=%v)", rel, final.Objective, fStar)
	}
}

func TestSolveSingleRankMatchesNewton(t *testing.T) {
	// With one rank and no consensus pressure, Newton-ADMM should reach
	// essentially the single-node optimum.
	ds := smallDataset(t)
	lambda := 1e-2
	_, fStar := singleNodeOptimum(t, ds, lambda)
	res, err := Solve(cluster.Config{Ranks: 1, Network: cluster.ZeroCost, DeviceWorkers: 2}, ds, Options{
		Epochs: 40, Lambda: lambda, LocalNewtonIters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.02 {
		t.Fatalf("single-rank gap %v", rel)
	}
}

func TestSolveObjectiveDecreases(t *testing.T) {
	ds := smallDataset(t)
	res, err := Solve(cluster.Config{Ranks: 2, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 20, Lambda: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Trace.Points
	if len(pts) < 3 {
		t.Fatalf("too few trace points: %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Objective >= first.Objective {
		t.Fatalf("objective did not decrease: %v -> %v", first.Objective, last.Objective)
	}
}

func TestSolveConsensusResidualShrinks(t *testing.T) {
	ds := smallDataset(t)
	res, err := Solve(cluster.Config{Ranks: 4, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 50, Lambda: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Scale-free check: primal residual small relative to ||z||.
	zNorm := linalg.Nrm2(res.Z)
	if zNorm == 0 {
		t.Fatal("zero consensus vector")
	}
	if res.PrimalResidual/zNorm > 0.05 {
		t.Fatalf("consensus not reached: ||r||/||z|| = %v", res.PrimalResidual/zNorm)
	}
}

func TestSolveTestAccuracyAboveChance(t *testing.T) {
	ds := smallDataset(t)
	res, err := Solve(cluster.Config{Ranks: 2, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 40, Lambda: 1e-4, EvalTestAccuracy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.TestAccuracy) {
		t.Fatal("test accuracy not measured")
	}
	if res.TestAccuracy < 0.55 { // chance = 1/3
		t.Fatalf("test accuracy %v", res.TestAccuracy)
	}
}

func TestSolvePenaltyPolicies(t *testing.T) {
	// All three policies must run and converge reasonably; rho must stay
	// positive and finite.
	ds := smallDataset(t)
	for _, policy := range []string{"spectral", "residual-balancing", "fixed"} {
		res, err := Solve(cluster.Config{Ranks: 3, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
			Epochs: 25, Lambda: 1e-3, Penalty: policy,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		for r, rho := range res.FinalRhos {
			if !(rho > 0) || math.IsInf(rho, 0) {
				t.Fatalf("%s: rank %d rho=%v", policy, r, rho)
			}
		}
		first := res.Trace.Points[0]
		last, _ := res.Trace.Final()
		if last.Objective >= first.Objective {
			t.Fatalf("%s: no progress (%v -> %v)", policy, first.Objective, last.Objective)
		}
	}
}

func TestSolveCommunicationRoundsPerEpoch(t *testing.T) {
	// The headline property: one gather + one scatter per ADMM iteration
	// — exactly 2 collectives per epoch, independent of epochs' content.
	ds := smallDataset(t)
	epochs := 13
	res, err := Solve(cluster.Config{Ranks: 4, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: epochs, Lambda: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stats {
		if s.Rounds != 2*epochs {
			t.Fatalf("rank %d used %d collectives for %d epochs, want %d",
				s.Rank, s.Rounds, epochs, 2*epochs)
		}
	}
}

func TestSolveOverTCPMatchesInproc(t *testing.T) {
	// The algorithm is deterministic given the data and rank count, so
	// the in-process and TCP transports must produce identical iterates.
	ds := smallDataset(t)
	opts := Options{Epochs: 8, Lambda: 1e-3}
	a, err := Solve(cluster.Config{Ranks: 3, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(cluster.Config{Ranks: 3, Network: cluster.ZeroCost, DeviceWorkers: 1, UseTCP: true}, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.Dist2(a.Z, b.Z); d > 1e-12 {
		t.Fatalf("transports disagree: ||z_inproc - z_tcp|| = %v", d)
	}
}

func TestSolveMoreRanksStillConverges(t *testing.T) {
	ds := smallDataset(t)
	lambda := 1e-3
	_, fStar := singleNodeOptimum(t, ds, lambda)
	for _, ranks := range []int{2, 8} {
		res, err := Solve(cluster.Config{Ranks: ranks, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
			Epochs: 80, Lambda: lambda,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		final, _ := res.Trace.Final()
		rel := (final.Objective - fStar) / math.Abs(fStar)
		if rel > 0.1 {
			t.Fatalf("ranks=%d: relative gap %v", ranks, rel)
		}
	}
}

func TestSolveEvalEveryThinsTrace(t *testing.T) {
	ds := smallDataset(t)
	res, err := Solve(cluster.Config{Ranks: 2, Network: cluster.ZeroCost, DeviceWorkers: 1}, ds, Options{
		Epochs: 10, Lambda: 1e-3, EvalEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// points at epochs 0, 5, 10
	if len(res.Trace.Points) != 3 {
		t.Fatalf("trace has %d points, want 3", len(res.Trace.Points))
	}
}
