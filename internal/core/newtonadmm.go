// Package core implements the paper's primary contribution: Newton-ADMM
// (Algorithm 2), the distributed second-order solver that runs inexact
// Newton-CG (Algorithm 1) on each rank's penalized local subproblem
// (eq. 6a) and reconciles the ranks with a single gather+scatter round per
// iteration — the consensus z-update of eq. (7), the multiplier update of
// eq. (6c), and per-rank Spectral Penalty Selection.
package core

import (
	"fmt"
	"math"

	"newtonadmm/internal/admm"
	"newtonadmm/internal/cg"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/linesearch"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/newton"
)

// Options configures Newton-ADMM.
type Options struct {
	// Epochs is the number of ADMM iterations; <=0 selects 100
	// (the paper's setting).
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// Rho0 is the initial per-rank penalty; <=0 selects 1.
	Rho0 float64
	// Penalty selects the adaptation policy: "spectral" (default),
	// "residual-balancing", or "fixed".
	Penalty string
	// LocalNewtonIters caps the inner Newton iterations per ADMM
	// iteration (Algorithm 1 run on each rank); <=0 selects 1, which
	// makes one ADMM epoch's compute comparable to one GIANT epoch
	// (one gradient, one CG solve, one line search) as in the paper's
	// epoch-time comparisons.
	LocalNewtonIters int
	// CG configures the inner linear solver (paper: 10 iterations at
	// tolerance 1e-4 for the Figure 1 study).
	CG cg.Options
	// Jacobi enables diagonal preconditioning of the local CG solves
	// (optional optimization beyond the paper).
	Jacobi bool
	// LineSearch configures the per-rank Armijo backtracking
	// (paper: at most 10 iterations).
	LineSearch linesearch.Options
	// EvalEvery records a trace point every this many epochs;
	// <=0 selects 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at each trace point.
	EvalTestAccuracy bool
	// TargetObjective stops the run at the first evaluation whose global
	// objective reaches this value (the paper's time-to-theta protocol);
	// zero disables early stopping.
	TargetObjective float64
}

func (o Options) withDefaults() Options {
	if o.Epochs <= 0 {
		o.Epochs = 100
	}
	if o.Rho0 <= 0 {
		o.Rho0 = 1
	}
	if o.Penalty == "" {
		o.Penalty = "spectral"
	}
	if o.LocalNewtonIters <= 0 {
		o.LocalNewtonIters = 1
	}
	if o.CG.MaxIters <= 0 {
		o.CG.MaxIters = 10
	}
	if o.CG.RelTol <= 0 {
		o.CG.RelTol = 1e-4
	}
	if o.LineSearch.MaxIters <= 0 {
		o.LineSearch.MaxIters = 10
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	return o
}

// Result reports a Newton-ADMM run.
type Result struct {
	// Z is the final consensus weight vector.
	Z []float64
	// Trace is the convergence history (recorded on rank 0).
	Trace metrics.Trace
	// Stats are the per-rank timing summaries.
	Stats []cluster.NodeStats
	// PrimalResidual and DualResidual are the final global residuals.
	PrimalResidual, DualResidual float64
	// FinalRhos are the per-rank penalties at termination.
	FinalRhos []float64
	// TestAccuracy is the final test accuracy (NaN without a test set or
	// when EvalTestAccuracy is off).
	TestAccuracy float64
}

// Solve trains the softmax classifier of ds on a simulated cluster.
func Solve(clusterCfg cluster.Config, ds *datasets.Dataset, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Z: make([]float64, ds.Dim())}
	finalRhos := make([]float64, maxInt(clusterCfg.Ranks, 1))
	var trace *metrics.Trace
	var finalPrimal, finalDual float64

	stats, err := cluster.Run(clusterCfg, func(node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, false)
		if err != nil {
			return err
		}
		out := runRank(node, local, ds, opts, &rankSinks{
			z:      res.Z,
			rhos:   finalRhos,
			trace:  &trace,
			primal: &finalPrimal,
			dual:   &finalDual,
		})
		return out
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Trace = *trace
	}
	res.PrimalResidual = finalPrimal
	res.DualResidual = finalDual
	res.FinalRhos = finalRhos
	if p, ok := res.Trace.Final(); ok {
		res.TestAccuracy = p.TestAccuracy
	}
	return res, nil
}

// rankSinks collects outputs written by individual ranks (each rank
// writes only its own slots; rank 0 writes the shared ones after the last
// collective, so there are no races).
type rankSinks struct {
	z      []float64
	rhos   []float64
	trace  **metrics.Trace
	primal *float64
	dual   *float64
}

func runRank(node *cluster.Node, local *dist.Local, ds *datasets.Dataset, opts Options, sinks *rankSinks) error {
	dim := ds.Dim()
	z := make([]float64, dim)     // consensus iterate, step 1 of Algorithm 2
	zPrev := make([]float64, dim) // consensus before the current update
	y := make([]float64, dim)     // multipliers, step 2
	x := make([]float64, dim)     // local iterate
	v := make([]float64, dim)     // subproblem anchor z + y/rho
	policy := admm.NewPolicy(opts.Penalty, opts.Rho0)
	rec := dist.NewRecorder("newton-admm", ds, local, opts.EvalTestAccuracy)

	yPrev := make([]float64, dim)
	payload := make([]float64, dim+1) // [rho*x - y ; rho]

	newtonOpts := newton.Options{
		MaxIters:   opts.LocalNewtonIters,
		GradTol:    1e-10,
		CG:         opts.CG,
		Jacobi:     opts.Jacobi,
		LineSearch: opts.LineSearch,
	}
	// All epochs of this rank share one CG workspace (zero steady-state
	// allocation in the inner solves).
	newtonOpts.CG.Work = &cg.Workspace{}

	rec.Observe(node, 0, z)
	for k := 1; k <= opts.Epochs; k++ {
		rho := policy.Rho()

		// Local x-update (eq. 6a): inexact Newton on the augmented
		// subproblem, warm-started from the previous local iterate
		// ("Perform Algorithm 1 with x_i^k, y_i^k, z^k").
		admm.Anchor(v, z, y, rho)
		aug := loss.NewAugmented(local.Problem, rho, v)
		newton.Solve(aug, x, newtonOpts)

		// The paper's single communication round: gather each rank's
		// z-update contribution (rho_i x_i - y_i, rho_i) at the master...
		for j := 0; j < dim; j++ {
			payload[j] = rho*x[j] - y[j]
		}
		payload[dim] = rho
		parts := node.Gather(0, payload)

		// ...master evaluates eq. (7)...
		copy(zPrev, z)
		if node.Rank() == 0 {
			linalg.Zero(z)
			var rhoSum float64
			for _, part := range parts {
				linalg.Axpy(1, part[:dim], z)
				rhoSum += part[dim]
			}
			scale := local.Lambda + rhoSum
			if scale <= 0 {
				return fmt.Errorf("core: nonpositive z normalizer %v", scale)
			}
			linalg.Scal(1/scale, z)
		}

		// ...and scatters the new consensus back.
		node.Bcast(0, z)

		// Local updates: multipliers (eq. 6c) and the spectral penalty
		// (step 8 of Algorithm 2) need no further communication.
		copy(yPrev, y)
		admm.UpdateY(y, z, x, rho)
		st := admm.IterState{
			X1: x, Z0: zPrev, Z1: z, Y0: yPrev, Y1: y,
			Primal: admm.PrimalResidual(x, z),
			Dual:   admm.DualResidual(z, zPrev, rho),
		}
		policy.Update(k, st)

		if k%opts.EvalEvery == 0 || k == opts.Epochs {
			obj := rec.Observe(node, k, z)
			if opts.TargetObjective != 0 && obj <= opts.TargetObjective {
				break // all ranks see the same allreduced objective
			}
		}
	}

	// Final residuals: aggregate primal over ranks (frozen: diagnostics).
	node.Frozen(func() {
		rsq := []float64{admm.PrimalResidual(x, z)}
		rsq[0] *= rsq[0]
		node.AllReduceSum(rsq)
		if node.Rank() == 0 {
			*sinks.primal = math.Sqrt(rsq[0])
			*sinks.dual = admm.DualResidual(z, zPrev, policy.Rho())
		}
	})

	sinks.rhos[node.Rank()] = policy.Rho()
	if node.Rank() == 0 {
		copy(sinks.z, z)
		tr := rec.Trace
		*sinks.trace = &tr
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
