// Package core implements the paper's primary contribution: Newton-ADMM
// (Algorithm 2), the distributed second-order solver that runs inexact
// Newton-CG (Algorithm 1) on each rank's penalized local subproblem
// (eq. 6a) and reconciles the ranks with a single gather+scatter round per
// iteration — the consensus z-update of eq. (7), the multiplier update of
// eq. (6c), and per-rank Spectral Penalty Selection.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"newtonadmm/internal/admm"
	"newtonadmm/internal/cg"
	"newtonadmm/internal/ckpt"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/linesearch"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/newton"
)

// Options configures Newton-ADMM.
type Options struct {
	// Epochs is the number of ADMM iterations; <=0 selects 100
	// (the paper's setting).
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// Rho0 is the initial per-rank penalty; <=0 selects 1.
	Rho0 float64
	// Penalty selects the adaptation policy: "spectral" (default),
	// "residual-balancing", or "fixed".
	Penalty string
	// LocalNewtonIters caps the inner Newton iterations per ADMM
	// iteration (Algorithm 1 run on each rank); <=0 selects 1, which
	// makes one ADMM epoch's compute comparable to one GIANT epoch
	// (one gradient, one CG solve, one line search) as in the paper's
	// epoch-time comparisons.
	LocalNewtonIters int
	// CG configures the inner linear solver (paper: 10 iterations at
	// tolerance 1e-4 for the Figure 1 study).
	CG cg.Options
	// Jacobi enables diagonal preconditioning of the local CG solves
	// (optional optimization beyond the paper).
	Jacobi bool
	// LineSearch configures the per-rank Armijo backtracking
	// (paper: at most 10 iterations).
	LineSearch linesearch.Options
	// EvalEvery records a trace point every this many epochs;
	// <=0 selects 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at each trace point.
	EvalTestAccuracy bool
	// TargetObjective stops the run at the first evaluation whose global
	// objective reaches this value (the paper's time-to-theta protocol);
	// zero disables early stopping.
	TargetObjective float64
	// CheckpointDir, when set, enables crash-safe checkpointing: a
	// versioned, CRC-checked snapshot of the full solver state is written
	// atomically every CheckpointEvery epochs (see internal/ckpt). A
	// fresh (non-Resume) run clears stale checkpoints from the directory
	// first.
	CheckpointDir string
	// CheckpointEvery is the snapshot period in epochs; <=0 selects 1
	// when CheckpointDir is set.
	CheckpointEvery int
	// Resume loads the latest good checkpoint from CheckpointDir and
	// continues from it; the resumed trajectory is bitwise-identical to
	// an uninterrupted run. A checkpoint from a different
	// solver/dataset/config is rejected (fingerprint mismatch); an empty
	// directory falls back to a fresh start.
	Resume bool
	// MaxRestarts bounds in-place restart-from-latest-checkpoint when a
	// run fails with a typed communication error (crashed or hung rank);
	// 0 disables restarting.
	MaxRestarts int
	// RestartBackoff is the sleep before the first restart, doubling per
	// attempt; <=0 selects the cluster default (100ms).
	RestartBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Epochs <= 0 {
		o.Epochs = 100
	}
	if o.Rho0 <= 0 {
		o.Rho0 = 1
	}
	if o.Penalty == "" {
		o.Penalty = "spectral"
	}
	if o.LocalNewtonIters <= 0 {
		o.LocalNewtonIters = 1
	}
	if o.CG.MaxIters <= 0 {
		o.CG.MaxIters = 10
	}
	if o.CG.RelTol <= 0 {
		o.CG.RelTol = 1e-4
	}
	if o.LineSearch.MaxIters <= 0 {
		o.LineSearch.MaxIters = 10
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	if o.CheckpointDir != "" && o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// fingerprint binds checkpoints to the run's identity: everything that
// shapes the optimization trajectory (solver, data, cluster width, and
// the mathematically relevant options). Epochs is deliberately excluded
// so a run can resume toward a larger epoch budget, and the transport
// choice is excluded because the math is transport-independent.
func fingerprint(ranks int, ds *datasets.Dataset, opts Options) uint64 {
	f := ckpt.NewFingerprinter()
	f.String("newton-admm")
	f.Int(ranks)
	f.String(ds.Name)
	f.Int(ds.Dim())
	f.Int(ds.Classes)
	f.Int(ds.TrainSize())
	f.Float(opts.Lambda)
	f.String(opts.Penalty)
	f.Float(opts.Rho0)
	f.Int(opts.LocalNewtonIters)
	f.Int(opts.CG.MaxIters)
	f.Float(opts.CG.RelTol)
	f.Bool(opts.Jacobi)
	f.Float(opts.LineSearch.Beta)
	f.Float(opts.LineSearch.Shrink)
	f.Int(opts.LineSearch.MaxIters)
	f.Float(opts.LineSearch.Initial)
	f.Int(opts.EvalEvery)
	f.Bool(opts.EvalTestAccuracy)
	f.Float(opts.TargetObjective)
	return f.Sum()
}

// Result reports a Newton-ADMM run.
type Result struct {
	// Z is the final consensus weight vector.
	Z []float64
	// Trace is the convergence history (recorded on rank 0).
	Trace metrics.Trace
	// Stats are the per-rank timing summaries.
	Stats []cluster.NodeStats
	// PrimalResidual and DualResidual are the final global residuals.
	PrimalResidual, DualResidual float64
	// FinalRhos are the per-rank penalties at termination.
	FinalRhos []float64
	// TestAccuracy is the final test accuracy (NaN without a test set or
	// when EvalTestAccuracy is off).
	TestAccuracy float64
	// FailedEpoch is the outer iteration in flight when a failed run went
	// down (0 when the run succeeded or failed before the first epoch).
	FailedEpoch int
}

// Solve trains the softmax classifier of ds on a simulated cluster. On
// failure it returns the partial result accumulated so far (trace,
// failed-at epoch) together with the error, so callers can flush the
// convergence history instead of discarding the run.
func Solve(clusterCfg cluster.Config, ds *datasets.Dataset, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ranks := maxInt(clusterCfg.Ranks, 1)
	fp := fingerprint(ranks, ds, opts)
	if opts.CheckpointDir != "" && !opts.Resume {
		// A restart within this run must never load a snapshot left over
		// from an older run in the same directory.
		if err := ckpt.Clear(opts.CheckpointDir); err != nil {
			return nil, err
		}
	}
	res := &Result{Z: make([]float64, ds.Dim())}
	finalRhos := make([]float64, ranks)
	failedEpochs := make([]int, ranks)
	var trace *metrics.Trace
	var finalPrimal, finalDual float64

	pol := cluster.RestartPolicy{MaxRestarts: opts.MaxRestarts, Backoff: opts.RestartBackoff}
	stats, err := cluster.RunRestart(clusterCfg, pol, func(attempt int, node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, false)
		if err != nil {
			return err
		}
		// A restart attempt always resumes from the latest checkpoint this
		// run has written; otherwise resume only when asked to.
		resume := opts.CheckpointDir != "" && (opts.Resume || attempt > 0)
		return runRank(node, local, ds, opts, fp, resume, &rankSinks{
			z:      res.Z,
			rhos:   finalRhos,
			trace:  &trace,
			primal: &finalPrimal,
			dual:   &finalDual,
			failed: failedEpochs,
		})
	})
	res.Stats = stats
	if trace != nil {
		res.Trace = *trace
	}
	if err != nil {
		for _, k := range failedEpochs {
			if k > res.FailedEpoch {
				res.FailedEpoch = k
			}
		}
		return res, err
	}
	res.PrimalResidual = finalPrimal
	res.DualResidual = finalDual
	res.FinalRhos = finalRhos
	if p, ok := res.Trace.Final(); ok {
		res.TestAccuracy = p.TestAccuracy
	}
	return res, nil
}


// rankSinks collects outputs written by individual ranks (each rank
// writes only its own slots; rank 0 writes the shared ones after the last
// collective, so there are no races).
type rankSinks struct {
	z      []float64
	rhos   []float64
	trace  **metrics.Trace
	primal *float64
	dual   *float64
	failed []int
}

func runRank(node *cluster.Node, local *dist.Local, ds *datasets.Dataset, opts Options, fp uint64, resume bool, sinks *rankSinks) error {
	dim := ds.Dim()
	z := make([]float64, dim)     // consensus iterate, step 1 of Algorithm 2
	zPrev := make([]float64, dim) // consensus before the current update
	y := make([]float64, dim)     // multipliers, step 2
	x := make([]float64, dim)     // local iterate
	v := make([]float64, dim)     // subproblem anchor z + y/rho
	policy := admm.NewPolicy(opts.Penalty, opts.Rho0)
	rec := dist.NewRecorder("newton-admm", ds, local, opts.EvalTestAccuracy)

	// Flush whatever trace exists even when this rank dies mid-run (the
	// deferred write happens before Run returns), so a failed run still
	// surfaces its partial convergence history; the epoch in flight is
	// recorded alongside it.
	epochInFlight := 0
	defer func() {
		sinks.failed[node.Rank()] = epochInFlight
		if node.Rank() == 0 {
			tr := rec.Trace
			*sinks.trace = &tr
		}
	}()

	yPrev := make([]float64, dim)
	payload := make([]float64, dim+1) // [rho*x - y ; rho]

	newtonOpts := newton.Options{
		MaxIters:   opts.LocalNewtonIters,
		GradTol:    1e-10,
		CG:         opts.CG,
		Jacobi:     opts.Jacobi,
		LineSearch: opts.LineSearch,
	}
	// All epochs of this rank share one CG workspace (zero steady-state
	// allocation in the inner solves).
	newtonOpts.CG.Work = &cg.Workspace{}

	// Resume: every rank loads the same latest good snapshot (rank 0 only
	// writes new ones after a full collective round, so no rank can read a
	// newer file than its peers). Shared state is [z ; zPrev]; each rank's
	// private state is [x ; y ; penalty-policy state].
	startK := 0
	if resume {
		snap, err := ckpt.LoadLatest(opts.CheckpointDir, fp)
		switch {
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// Nothing saved yet: fresh start.
		case err != nil:
			return err
		default:
			if len(snap.Shared) != 2*dim || len(snap.Ranks) != node.Size() {
				return fmt.Errorf("core: checkpoint shape mismatch (shared %d, ranks %d)", len(snap.Shared), len(snap.Ranks))
			}
			st := snap.Ranks[node.Rank()]
			if len(st) < 2*dim {
				return fmt.Errorf("core: checkpoint rank state too short (%d)", len(st))
			}
			copy(z, snap.Shared[:dim])
			copy(zPrev, snap.Shared[dim:])
			copy(x, st[:dim])
			copy(y, st[dim:2*dim])
			if !policy.SetState(st[2*dim:]) {
				return fmt.Errorf("core: checkpoint penalty state does not match policy %q", policy.Name())
			}
			startK = int(snap.Iter)
			if node.Rank() == 0 {
				rec.RestoreTrace(snap.Trace)
			}
		}
	}

	if startK == 0 {
		rec.Observe(node, 0, z)
	}
	for k := startK + 1; k <= opts.Epochs; k++ {
		epochInFlight = k
		rho := policy.Rho()

		// Local x-update (eq. 6a): inexact Newton on the augmented
		// subproblem, warm-started from the previous local iterate
		// ("Perform Algorithm 1 with x_i^k, y_i^k, z^k").
		admm.Anchor(v, z, y, rho)
		aug := loss.NewAugmented(local.Problem, rho, v)
		newton.Solve(aug, x, newtonOpts)

		// The paper's single communication round: gather each rank's
		// z-update contribution (rho_i x_i - y_i, rho_i) at the master...
		for j := 0; j < dim; j++ {
			payload[j] = rho*x[j] - y[j]
		}
		payload[dim] = rho
		parts := node.Gather(0, payload)

		// ...master evaluates eq. (7)...
		copy(zPrev, z)
		if node.Rank() == 0 {
			linalg.Zero(z)
			var rhoSum float64
			for _, part := range parts {
				linalg.Axpy(1, part[:dim], z)
				rhoSum += part[dim]
			}
			scale := local.Lambda + rhoSum
			if scale <= 0 {
				return fmt.Errorf("core: nonpositive z normalizer %v", scale)
			}
			linalg.Scal(1/scale, z)
		}

		// ...and scatters the new consensus back.
		node.Bcast(0, z)

		// Local updates: multipliers (eq. 6c) and the spectral penalty
		// (step 8 of Algorithm 2) need no further communication.
		copy(yPrev, y)
		admm.UpdateY(y, z, x, rho)
		st := admm.IterState{
			X1: x, Z0: zPrev, Z1: z, Y0: yPrev, Y1: y,
			Primal: admm.PrimalResidual(x, z),
			Dual:   admm.DualResidual(z, zPrev, rho),
		}
		policy.Update(k, st)

		if k%opts.EvalEvery == 0 || k == opts.Epochs {
			obj := rec.Observe(node, k, z)
			if opts.TargetObjective != 0 && obj <= opts.TargetObjective {
				break // all ranks see the same allreduced objective
			}
		}

		// Snapshot after the epoch's trace point so a resume replays the
		// uninterrupted run bitwise, trace included.
		if opts.CheckpointDir != "" && (k%opts.CheckpointEvery == 0 || k == opts.Epochs) {
			if err := writeCheckpoint(node, opts, fp, k, z, zPrev, x, y, policy, rec); err != nil {
				return err
			}
		}
	}

	// Final residuals: aggregate primal over ranks (frozen: diagnostics).
	node.Frozen(func() {
		rsq := []float64{admm.PrimalResidual(x, z)}
		rsq[0] *= rsq[0]
		node.AllReduceSum(rsq)
		if node.Rank() == 0 {
			*sinks.primal = math.Sqrt(rsq[0])
			*sinks.dual = admm.DualResidual(z, zPrev, policy.Rho())
		}
	})

	sinks.rhos[node.Rank()] = policy.Rho()
	epochInFlight = 0 // clean finish; the deferred flush still writes the trace
	if node.Rank() == 0 {
		copy(sinks.z, z)
	}
	return nil
}

// writeCheckpoint gathers every rank's private state at rank 0 and saves
// one snapshot atomically. It runs with the virtual clock frozen:
// checkpointing is harness infrastructure, not part of the algorithm
// being measured. The gather doubles as a barrier, so every rank has
// finished epoch k before the file appears — a resuming rank can never
// observe a snapshot ahead of its peers.
func writeCheckpoint(node *cluster.Node, opts Options, fp uint64, k int, z, zPrev, x, y []float64, policy admm.PenaltyPolicy, rec *dist.Recorder) error {
	var saveErr error
	node.Frozen(func() {
		state := make([]float64, 0, 2*len(x)+len(policy.State()))
		state = append(state, x...)
		state = append(state, y...)
		state = append(state, policy.State()...)
		parts := node.Gather(0, state)
		if node.Rank() != 0 {
			return
		}
		shared := make([]float64, 0, 2*len(z))
		shared = append(shared, z...)
		shared = append(shared, zPrev...)
		saveErr = ckpt.Save(opts.CheckpointDir, &ckpt.Snapshot{
			Fingerprint: fp,
			Iter:        uint64(k),
			Solver:      "newton-admm",
			Shared:      shared,
			Ranks:       parts,
			Trace:       rec.CheckpointTrace(),
		})
	})
	return saveErr
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
