package core

import (
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/cluster/faultinject"
	"newtonadmm/internal/datasets"
)

// The acceptance pin: train K epochs straight vs. train k, kill, resume
// to K — identical trace and final iterate, bitwise. The device kernels
// use chunk-ordered reductions, so the only way this holds is if the
// checkpoint captures the complete solver state (z, zPrev, x, y, and the
// spectral-penalty BB history).

const (
	resumeEpochs = 6
	resumeRanks  = 2
)

func resumeDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate(datasets.MNISTLike(0.03))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func resumeOpts(dir string) Options {
	return Options{
		Epochs:        resumeEpochs,
		Lambda:        1e-4,
		Penalty:       "spectral",
		CheckpointDir: dir,
	}
}

func resumeCluster() cluster.Config {
	return cluster.Config{
		Ranks:             resumeRanks,
		Network:           cluster.ZeroCost,
		DeviceWorkers:     1,
		CollectiveTimeout: 10 * time.Second,
	}
}

// assertBitwiseEqual pins two results to each other bit for bit. Trace
// Time is excluded: the virtual clock includes real wall-clock compute,
// which no checkpoint can (or should) reproduce.
func assertBitwiseEqual(t *testing.T, label string, base, got *Result) {
	t.Helper()
	if len(got.Trace.Points) != len(base.Trace.Points) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got.Trace.Points), len(base.Trace.Points))
	}
	for i, bp := range base.Trace.Points {
		gp := got.Trace.Points[i]
		if gp.Epoch != bp.Epoch {
			t.Fatalf("%s: trace[%d] epoch %d, want %d", label, i, gp.Epoch, bp.Epoch)
		}
		if math.Float64bits(gp.Objective) != math.Float64bits(bp.Objective) {
			t.Fatalf("%s: trace[%d] objective %.17g, want %.17g (not bitwise)", label, i, gp.Objective, bp.Objective)
		}
	}
	for j := range base.Z {
		if math.Float64bits(got.Z[j]) != math.Float64bits(base.Z[j]) {
			t.Fatalf("%s: Z[%d] = %.17g, want %.17g (not bitwise)", label, j, got.Z[j], base.Z[j])
		}
	}
	for r := range base.FinalRhos {
		if math.Float64bits(got.FinalRhos[r]) != math.Float64bits(base.FinalRhos[r]) {
			t.Fatalf("%s: rho[%d] = %v, want %v", label, r, got.FinalRhos[r], base.FinalRhos[r])
		}
	}
}

// crashRankAfter wraps one rank with a deterministic crash; wraps counts
// invocations so restart attempts (which re-wrap every rank) can leave
// later attempts fault-free.
func crashRankAfter(victim, sends int, onlyFirstAttempt bool) func(int, cluster.Transport) cluster.Transport {
	var wraps atomic.Int64
	return func(rank int, tr cluster.Transport) cluster.Transport {
		attempt := int(wraps.Add(1)-1) / resumeRanks
		if rank != victim || (onlyFirstAttempt && attempt > 0) {
			return tr
		}
		f := faultinject.Wrap(tr)
		f.CrashAfterSend(sends)
		return f
	}
}

func TestNewtonADMMBitwiseResume(t *testing.T) {
	ds := resumeDataset(t)

	// (a) The uninterrupted reference run (no checkpointing at all).
	base, err := Solve(resumeCluster(), ds, resumeOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Trace.Points) != resumeEpochs+1 {
		t.Fatalf("reference trace has %d points", len(base.Trace.Points))
	}

	// (b) Same run, checkpointing every epoch, with rank 1 crashing after
	// a fixed send count (mid-epoch 3, after two checkpoints landed).
	dir := t.TempDir()
	ccfg := resumeCluster()
	ccfg.WrapTransport = crashRankAfter(1, 20, false)
	partial, err := Solve(ccfg, ds, resumeOpts(dir))
	if err == nil {
		t.Fatal("crashed run reported success")
	}
	if !cluster.IsCommError(err) {
		t.Fatalf("crash not surfaced as a typed comm error: %v", err)
	}
	if partial == nil || partial.FailedEpoch == 0 {
		t.Fatalf("partial result missing failed-at epoch: %+v", partial)
	}
	if len(partial.Trace.Points) == 0 {
		t.Fatal("partial trace discarded on failure")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.nack")); len(files) == 0 {
		t.Fatal("no checkpoint was written before the crash")
	}

	// (c) Resume from the latest checkpoint with no faults: the combined
	// trajectory must reproduce the reference bitwise.
	opts := resumeOpts(dir)
	opts.Resume = true
	resumed, err := Solve(resumeCluster(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, "kill+resume", base, resumed)

	// The resumed trace must be strictly longer than the partial one —
	// i.e. work actually carried over instead of restarting from scratch.
	if len(resumed.Trace.Points) <= len(partial.Trace.Points)-1 {
		t.Fatalf("resume did not extend the partial trace (%d vs %d points)",
			len(resumed.Trace.Points), len(partial.Trace.Points))
	}
}

func TestNewtonADMMInPlaceRestart(t *testing.T) {
	ds := resumeDataset(t)
	base, err := Solve(resumeCluster(), ds, resumeOpts(""))
	if err != nil {
		t.Fatal(err)
	}

	// One Solve call: rank 1 crashes on the first attempt, the bounded
	// restart policy rebuilds the cluster and resumes from the latest
	// checkpoint, and the final result still matches the reference
	// bitwise.
	ccfg := resumeCluster()
	ccfg.WrapTransport = crashRankAfter(1, 20, true)
	opts := resumeOpts(t.TempDir())
	opts.MaxRestarts = 2
	opts.RestartBackoff = time.Millisecond
	restarted, err := Solve(ccfg, ds, opts)
	if err != nil {
		t.Fatalf("restart did not recover: %v", err)
	}
	assertBitwiseEqual(t, "in-place restart", base, restarted)
}

// TestResumeRejectsForeignCheckpoint pins the fingerprint gate: a
// checkpoint from a different configuration must fail typed, not
// silently seed a different run.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	ds := resumeDataset(t)
	dir := t.TempDir()
	opts := resumeOpts(dir)
	opts.Epochs = 1
	if _, err := Solve(resumeCluster(), ds, opts); err != nil {
		t.Fatal(err)
	}
	foreign := resumeOpts(dir)
	foreign.Epochs = 2 // allowed to differ: epochs are not fingerprinted
	foreign.Lambda = 42
	foreign.Resume = true
	if _, err := Solve(resumeCluster(), ds, foreign); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}
