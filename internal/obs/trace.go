package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies which serving stage a span attributes time to. The
// set is closed and small on purpose: every stage below is a place a
// request can wait that the end-to-end latency histogram cannot tell
// apart.
type Stage uint8

const (
	// StageQueue is admission-queue wait: submit to dequeue.
	StageQueue Stage = iota
	// StageLinger is batch formation: dequeue to kernel launch.
	StageLinger
	// StageExecute is the batched kernel execution.
	StageExecute
	// StageScatter is one scatter-leg round trip (router to replica
	// and back). Leg is the shard-group index; Try counts sibling
	// attempts within the leg (0 = first member tried).
	StageScatter
	// StageMerge is the router's partial-logit merge.
	StageMerge
	// StageEncode is response encoding (JSON body or binary frame).
	StageEncode
)

func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StageLinger:
		return "linger"
	case StageExecute:
		return "execute"
	case StageScatter:
		return "scatter"
	case StageMerge:
		return "merge"
	case StageEncode:
		return "encode"
	}
	return "unknown"
}

// MaxSpans bounds the span array of one trace. A request through the
// largest supported topology records one queue + linger + execute
// triplet, one scatter span per shard group per sibling attempt, one
// merge, and one encode; overflow increments Dropped instead of
// allocating.
const MaxSpans = 24

// Span is one timed stage of a request, stored inline in the trace.
// Start is the offset from the trace's Begin time, so a rendered
// waterfall needs no absolute clocks.
type Span struct {
	Stage Stage
	Leg   int16 // scatter group index; -1 for non-scatter stages
	Try   int16 // sibling attempt within the leg; 0 otherwise
	Start time.Duration
	Dur   time.Duration
}

// Trace is the per-request span record. Ownership is strict: exactly
// one goroutine may call Finish/Discard, and concurrent span writers
// (parallel scatter legs) must all complete — e.g. via WaitGroup.Wait —
// before the owner publishes. Span slots are claimed by atomic index so
// concurrent AddSpan calls never collide.
type Trace struct {
	// ID is the 64-bit trace identity. It crosses process boundaries
	// via the NAWP trace trailer and the X-Nadmm-Trace header, so one
	// sampled request yields the same ID on the router and on every
	// remote replica it touched.
	ID uint64
	// Remote marks a trace adopted from a propagated context (a
	// replica-side record of a router-originated request).
	Remote bool
	// Begin and End bound the locally observed lifetime.
	Begin time.Time
	End   time.Time

	n       atomic.Int32
	dropped atomic.Int32
	spans   [MaxSpans]Span

	rec *Recorder // owning recorder, for recycling
}

// AddSpan records one span. Safe for concurrent use by multiple
// writers; spans past MaxSpans are counted as dropped, not stored.
func (t *Trace) AddSpan(stage Stage, leg, try int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	i := t.n.Add(1) - 1
	if int(i) >= MaxSpans {
		t.dropped.Add(1)
		return
	}
	t.spans[i] = Span{
		Stage: stage,
		Leg:   int16(leg),
		Try:   int16(try),
		Start: start.Sub(t.Begin),
		Dur:   d,
	}
}

// Spans returns the recorded spans. Only the trace's exclusive owner
// (or a reader that took ownership from the recorder ring) may call it.
func (t *Trace) Spans() []Span {
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	return t.spans[:n]
}

// Dropped reports spans lost to the MaxSpans bound.
func (t *Trace) Dropped() int { return int(t.dropped.Load()) }

// Total is the locally observed end-to-end duration.
func (t *Trace) Total() time.Duration { return t.End.Sub(t.Begin) }

// reset prepares a recycled trace for reuse. Stale span payload past
// the reset count is never read because Spans slices by n.
func (t *Trace) reset() {
	t.ID = 0
	t.Remote = false
	t.Begin = time.Time{}
	t.End = time.Time{}
	t.n.Store(0)
	t.dropped.Store(0)
}
