package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the lock-free ring buffer behind /debug/tracez: finished
// traces are published into a fixed ring of recent exemplars plus one
// slowest-since-last-scrape slot, and displaced traces recycle through
// a pool so steady-state publishing allocates nothing.
//
// Ownership protocol (what makes this race-free without locks): a trace
// is owned by exactly one party at a time — the request that started
// it, then (after Finish) the ring slot it was swapped into, then
// whoever atomically swaps it out (a later Finish displacing it, or a
// Snapshot reader). Every transfer is an atomic.Pointer Swap, so no two
// parties ever touch a trace's fields concurrently.
type Recorder struct {
	ring []atomic.Pointer[Trace]
	pos  atomic.Uint64

	slow    atomic.Pointer[Trace]
	slowDur atomic.Int64 // threshold; reset to 0 on TakeSlowest

	finished atomic.Uint64
	pool     sync.Pool
}

// DefaultRingSize is the recent-trace window when NewRecorder is given
// a non-positive size.
const DefaultRingSize = 64

// NewRecorder returns a recorder keeping the last size finished traces.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	r := &Recorder{ring: make([]atomic.Pointer[Trace], size)}
	r.pool.New = func() any { return new(Trace) }
	return r
}

// Start begins a locally originated trace with a fresh random ID.
func (r *Recorder) Start(at time.Time) *Trace {
	id := rand.Uint64()
	for id == 0 {
		id = rand.Uint64()
	}
	return r.start(id, false, at)
}

// StartRemote begins a trace adopted from a propagated context: the ID
// arrived over the wire (trace trailer or X-Nadmm-Trace header), so the
// spans recorded here stitch to the originator's trace by ID.
func (r *Recorder) StartRemote(id uint64, at time.Time) *Trace {
	return r.start(id, true, at)
}

func (r *Recorder) start(id uint64, remote bool, at time.Time) *Trace {
	t := r.pool.Get().(*Trace)
	t.ID = id
	t.Remote = remote
	t.Begin = at
	t.rec = r
	return t
}

// Finish stamps the end time and publishes the trace; the caller's
// ownership ends here. The slowest trace since the last TakeSlowest
// goes to the slow slot, everything else to the recent ring.
func (r *Recorder) Finish(t *Trace, end time.Time) {
	if t == nil {
		return
	}
	t.End = end
	r.finished.Add(1)
	d := int64(t.Total())
	for {
		cur := r.slowDur.Load()
		if d <= cur {
			break
		}
		if r.slowDur.CompareAndSwap(cur, d) {
			if old := r.slow.Swap(t); old != nil {
				r.recycle(old)
			}
			return
		}
	}
	i := (r.pos.Add(1) - 1) % uint64(len(r.ring))
	if old := r.ring[i].Swap(t); old != nil {
		r.recycle(old)
	}
}

// Discard abandons a started trace without publishing it (error paths).
func (r *Recorder) Discard(t *Trace) {
	if t != nil {
		r.recycle(t)
	}
}

func (r *Recorder) recycle(t *Trace) {
	t.reset()
	r.pool.Put(t)
}

// Finished reports the number of traces published so far.
func (r *Recorder) Finished() uint64 { return r.finished.Load() }

// TraceView is an owned copy of a published trace, safe to hold after
// the underlying trace has been recycled.
type TraceView struct {
	ID      uint64
	Remote  bool
	Begin   time.Time
	Total   time.Duration
	Dropped int
	Spans   []Span
}

func viewOf(t *Trace) TraceView {
	spans := t.Spans()
	v := TraceView{
		ID:      t.ID,
		Remote:  t.Remote,
		Begin:   t.Begin,
		Total:   t.Total(),
		Dropped: t.Dropped(),
		Spans:   make([]Span, len(spans)),
	}
	copy(v.Spans, spans)
	sort.SliceStable(v.Spans, func(i, j int) bool { return v.Spans[i].Start < v.Spans[j].Start })
	return v
}

// Snapshot copies the recent ring, newest first. Traces are put back
// after copying when possible, so repeated scrapes keep seeing them.
// This is the cold path — it allocates freely.
func (r *Recorder) Snapshot() []TraceView {
	out := make([]TraceView, 0, len(r.ring))
	for i := range r.ring {
		t := r.ring[i].Swap(nil)
		if t == nil {
			continue
		}
		out = append(out, viewOf(t))
		if !r.ring[i].CompareAndSwap(nil, t) {
			r.recycle(t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Begin.After(out[j].Begin) })
	return out
}

// TakeSlowest consumes the slowest trace observed since the previous
// call (the "window" resets on read). Second result is false when no
// trace finished in the window.
func (r *Recorder) TakeSlowest() (TraceView, bool) {
	t := r.slow.Swap(nil)
	r.slowDur.Store(0)
	if t == nil {
		return TraceView{}, false
	}
	v := viewOf(t)
	r.recycle(t)
	return v, true
}

// PeekSlowest reports the slowest trace without consuming it or
// resetting the window.
func (r *Recorder) PeekSlowest() (TraceView, bool) {
	t := r.slow.Swap(nil)
	if t == nil {
		return TraceView{}, false
	}
	v := viewOf(t)
	if !r.slow.CompareAndSwap(nil, t) {
		r.recycle(t)
	}
	return v, true
}
