package obs

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// TracezHandler serves /debug/tracez: the slowest sampled trace since
// the last scrape, then the recent-trace ring newest first, each
// rendered as a per-stage waterfall. Plain text, grep-friendly — every
// trace header line carries `trace id=%016x` so a scraper can follow
// one ID across the router's and a replica's endpoints.
func TracezHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "tracez: %d sampled traces recorded\n\n", r.Finished())
		if slow, ok := r.TakeSlowest(); ok {
			io.WriteString(w, "slowest since last scrape:\n")
			WriteTrace(w, slow)
			io.WriteString(w, "\n")
		}
		recent := r.Snapshot()
		fmt.Fprintf(w, "recent (%d):\n", len(recent))
		for _, v := range recent {
			WriteTrace(w, v)
		}
	})
}

// waterfallWidth is the character width of the rendered span bars.
const waterfallWidth = 32

// WriteTrace renders one trace as a waterfall: a header line with the
// ID, origin, and total, then one line per span with its stage, leg and
// sibling attempt (scatter only), start offset, duration, and a bar
// positioned proportionally inside the trace's total.
func WriteTrace(w io.Writer, v TraceView) {
	origin := "local"
	if v.Remote {
		origin = "remote"
	}
	fmt.Fprintf(w, "trace id=%016x origin=%s total=%v spans=%d", v.ID, origin, v.Total, len(v.Spans))
	if v.Dropped > 0 {
		fmt.Fprintf(w, " dropped=%d", v.Dropped)
	}
	io.WriteString(w, "\n")
	for _, s := range v.Spans {
		tag := s.Stage.String()
		if s.Stage == StageScatter {
			tag = fmt.Sprintf("%s leg=%d try=%d", tag, s.Leg, s.Try)
		}
		fmt.Fprintf(w, "  %-22s start=%-12v dur=%-12v |%s|\n", tag, s.Start, s.Dur, bar(s, v.Total))
	}
}

// bar renders a fixed-width timeline with the span's extent filled.
func bar(s Span, total time.Duration) string {
	b := make([]byte, waterfallWidth)
	for i := range b {
		b[i] = ' '
	}
	if total <= 0 {
		return string(b)
	}
	lo := int(float64(s.Start) / float64(total) * waterfallWidth)
	hi := int(float64(s.Start+s.Dur) / float64(total) * waterfallWidth)
	if lo < 0 {
		lo = 0
	}
	if lo >= waterfallWidth {
		lo = waterfallWidth - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > waterfallWidth {
		hi = waterfallWidth
	}
	for i := lo; i < hi; i++ {
		b[i] = '='
	}
	return string(b)
}
