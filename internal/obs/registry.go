package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"newtonadmm/internal/metrics"
)

// Registry is the unified metrics surface: both tiers register their
// counters, gauges, and histograms here and /metricz renders them
// through one code path, in one Prometheus-style text exposition, under
// the canonical nadmm_* names documented in DESIGN.md "Observability".
//
// Most rows are registered at construction time; families whose label
// sets change at runtime (the per-replica rows of an autoscaled pool)
// register a Collect callback instead. Rendering reads atomics and
// snapshot closures, so a scrape never blocks a request.
type Registry struct {
	mu   sync.Mutex
	rows []row
}

type rowKind uint8

const (
	kindCounter rowKind = iota
	kindGauge
	kindDuration
	kindCollect
)

type row struct {
	name   string
	labels string // pre-rendered `k="v",k2="v2"`, may be empty
	help   string
	kind   rowKind
	cfn    func() uint64  // kindCounter
	gfn    func() float64 // kindGauge
	hist   *metrics.Histogram
	colfn  func(io.Writer) // kindCollect
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Label renders one static label pair for the labels argument of the
// register calls; join multiple with Labels.
func Label(k, v string) string { return k + `="` + v + `"` }

// Labels joins pre-rendered label pairs.
func Labels(pairs ...string) string { return strings.Join(pairs, ",") }

// Counter is a monotonically increasing atomic counter owned by the
// registry caller.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (r *Registry) add(rw row) {
	r.mu.Lock()
	r.rows = append(r.rows, rw)
	r.mu.Unlock()
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, labels, help, c.Value)
	return c
}

// CounterFunc registers a counter whose value is read at scrape time
// (the idiom for counters that already live in a subsystem's atomics).
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.add(row{name: name, labels: labels, help: help, kind: kindCounter, cfn: fn})
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, labels, help, g.Value)
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.add(row{name: name, labels: labels, help: help, kind: kindGauge, gfn: fn})
}

// Duration registers a latency histogram rendered as the summary rows
// name_count and name_{mean,p50,p95,p99,max}_seconds — the same suffix
// scheme as metrics.Histogram.WriteMetrics, with label support.
func (r *Registry) Duration(name, labels, help string, h *metrics.Histogram) {
	r.add(row{name: name, labels: labels, help: help, kind: kindDuration, hist: h})
}

// Collect registers a scrape-time collector: fn writes fully formed
// exposition lines (including any HELP/TYPE comments it wants) into
// the scrape at this position. It exists for metric families whose
// label set changes at runtime — the per-replica rows of an autoscaled
// pool — where construction-time registration would freeze a stale
// membership.
func (r *Registry) Collect(fn func(io.Writer)) {
	r.add(row{kind: kindCollect, colfn: fn})
}

// FindDuration returns the first histogram registered under name (any
// labels); control loops use it to window a tier's latency signal
// without holding a second reference path to the histogram.
func (r *Registry) FindDuration(name string) (*metrics.Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.rows {
		if r.rows[i].kind == kindDuration && r.rows[i].name == name {
			return r.rows[i].hist, true
		}
	}
	return nil, false
}

// WriteText renders the exposition: HELP/TYPE comments once per metric
// family (first registration wins), then one line per row in
// registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	rows := r.rows
	r.mu.Unlock()

	seen := make(map[string]bool, len(rows))
	for i := range rows {
		rw := &rows[i]
		if rw.kind == kindCollect {
			rw.colfn(w)
			continue
		}
		if !seen[rw.name] {
			seen[rw.name] = true
			if rw.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", rw.name, rw.help)
			}
			switch rw.kind {
			case kindCounter:
				fmt.Fprintf(w, "# TYPE %s counter\n", rw.name)
			case kindGauge:
				fmt.Fprintf(w, "# TYPE %s gauge\n", rw.name)
			}
		}
		switch rw.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", withLabels(rw.name, rw.labels), rw.cfn())
		case kindGauge:
			fmt.Fprintf(w, "%s %s\n", withLabels(rw.name, rw.labels), formatFloat(rw.gfn()))
		case kindDuration:
			s := rw.hist.Snapshot()
			fmt.Fprintf(w, "%s %d\n", withLabels(rw.name+"_count", rw.labels), s.Count)
			fmt.Fprintf(w, "%s %.9f\n", withLabels(rw.name+"_mean_seconds", rw.labels), s.Mean.Seconds())
			fmt.Fprintf(w, "%s %.9f\n", withLabels(rw.name+"_p50_seconds", rw.labels), s.P50.Seconds())
			fmt.Fprintf(w, "%s %.9f\n", withLabels(rw.name+"_p95_seconds", rw.labels), s.P95.Seconds())
			fmt.Fprintf(w, "%s %.9f\n", withLabels(rw.name+"_p99_seconds", rw.labels), s.P99.Seconds())
			fmt.Fprintf(w, "%s %.9f\n", withLabels(rw.name+"_max_seconds", rw.labels), s.Max.Seconds())
		}
	}
}

func withLabels(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// formatFloat renders integral gauges without a decimal tail so greps
// like `nadmm_model_version 1` stay stable.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 9, 64)
}
