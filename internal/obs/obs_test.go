package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"newtonadmm/internal/metrics"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nadmm_requests_total", "", "completed requests")
	c.Add(3)
	r.GaugeFunc("nadmm_model_version", "", "current model version", func() float64 { return 2 })
	r.GaugeFunc("nadmm_replica_state", Label("replica", "0"), "replica state", func() float64 { return 1 })
	r.GaugeFunc("nadmm_replica_state", Label("replica", "1"), "replica state", func() float64 { return 0 })
	h := metrics.NewHistogram()
	h.Observe(2 * time.Millisecond)
	r.Duration("nadmm_request_latency", "", "sampled end-to-end latency", h)

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE nadmm_requests_total counter",
		"nadmm_requests_total 3",
		"nadmm_model_version 2",
		`nadmm_replica_state{replica="0"} 1`,
		`nadmm_replica_state{replica="1"} 0`,
		"nadmm_request_latency_count 1",
		"nadmm_request_latency_p50_seconds 0.002",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE once per family even with several labeled rows.
	if n := strings.Count(out, "# HELP nadmm_replica_state"); n != 1 {
		t.Fatalf("HELP emitted %d times, want 1:\n%s", n, out)
	}
}

func TestRegistryGaugeFormatting(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g_int", "", "", func() float64 { return 42 })
	r.GaugeFunc("g_frac", "", "", func() float64 { return 1.5 })
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "g_int 42\n") {
		t.Fatalf("integral gauge not rendered bare: %s", sb.String())
	}
	if !strings.Contains(sb.String(), "g_frac 1.5\n") {
		t.Fatalf("fractional gauge mangled: %s", sb.String())
	}
}

func TestRecorderPublishAndSnapshot(t *testing.T) {
	r := NewRecorder(4)
	base := time.Now()
	// Non-monotonic durations: the 9ms outlier goes to the slow slot,
	// the rest cycle through the recent ring.
	durs := []time.Duration{5, 1, 9, 2, 3, 2, 4, 1, 2, 3}
	for i, d := range durs {
		at := base.Add(time.Duration(i) * time.Second)
		tr := r.Start(at)
		tr.AddSpan(StageQueue, -1, 0, at, time.Microsecond)
		r.Finish(tr, at.Add(d*time.Millisecond))
	}
	if got := r.Finished(); got != uint64(len(durs)) {
		t.Fatalf("Finished = %d, want %d", got, len(durs))
	}
	slow, ok := r.TakeSlowest()
	if !ok || slow.Total != 9*time.Millisecond {
		t.Fatalf("slowest = %+v ok=%v, want total 9ms", slow, ok)
	}
	if _, ok := r.TakeSlowest(); ok {
		t.Fatal("TakeSlowest did not reset the window")
	}
	recent := r.Snapshot()
	if len(recent) != 4 {
		t.Fatalf("Snapshot returned %d traces, ring size is 4", len(recent))
	}
	// Newest first, and a second scrape still sees them (CAS-restore).
	if !recent[0].Begin.After(recent[len(recent)-1].Begin) {
		t.Fatalf("Snapshot not newest-first: %v ... %v", recent[0].Begin, recent[len(recent)-1].Begin)
	}
	if len(r.Snapshot()) != 4 {
		t.Fatal("second Snapshot lost ring contents")
	}
}

func TestRecorderRemoteAdoptsID(t *testing.T) {
	r := NewRecorder(2)
	at := time.Now()
	tr := r.StartRemote(0xdeadbeef, at)
	if !tr.Remote || tr.ID != 0xdeadbeef {
		t.Fatalf("StartRemote: %+v", tr)
	}
	r.Finish(tr, at.Add(time.Millisecond))
	slow, ok := r.TakeSlowest()
	if !ok || slow.ID != 0xdeadbeef || !slow.Remote {
		t.Fatalf("slowest = %+v ok=%v", slow, ok)
	}
}

func TestSpanOverflowDropsNotGrows(t *testing.T) {
	r := NewRecorder(2)
	at := time.Now()
	tr := r.Start(at)
	for i := 0; i < MaxSpans+5; i++ {
		tr.AddSpan(StageScatter, i, 0, at, time.Microsecond)
	}
	if len(tr.Spans()) != MaxSpans {
		t.Fatalf("spans = %d, want %d", len(tr.Spans()), MaxSpans)
	}
	if tr.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", tr.Dropped())
	}
	r.Finish(tr, at.Add(time.Millisecond))
}

// TestRecorderConcurrent exercises the ownership handoff under -race:
// concurrent publishers (with concurrent span writers per trace, the
// scatter-leg shape) against concurrent scrapers.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	var publishers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		publishers.Add(1)
		go func() {
			defer publishers.Done()
			for i := 0; i < 500; i++ {
				at := time.Now()
				tr := r.Start(at)
				var legs sync.WaitGroup
				for leg := 0; leg < 3; leg++ {
					legs.Add(1)
					go func(leg int) {
						defer legs.Done()
						tr.AddSpan(StageScatter, leg, 0, at, time.Microsecond)
					}(leg)
				}
				legs.Wait()
				r.Finish(tr, time.Now())
			}
		}()
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range r.Snapshot() {
				_ = v.Spans
			}
			r.TakeSlowest()
			r.PeekSlowest()
		}
	}()
	publishers.Wait()
	close(stop)
	scraper.Wait()
}

func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	r := NewRecorder(8)
	at := time.Now()
	// Warm the pool and fill the ring so Finish recycles.
	for i := 0; i < 64; i++ {
		tr := r.Start(at)
		tr.AddSpan(StageQueue, -1, 0, at, time.Microsecond)
		r.Finish(tr, at.Add(time.Millisecond))
	}
	r.TakeSlowest()
	allocs := testing.AllocsPerRun(200, func() {
		tr := r.Start(at)
		tr.AddSpan(StageQueue, -1, 0, at, time.Microsecond)
		tr.AddSpan(StageExecute, -1, 0, at, time.Microsecond)
		r.Finish(tr, at.Add(time.Microsecond))
	})
	if allocs != 0 {
		t.Fatalf("trace start/span/finish allocates %.1f/op, want 0", allocs)
	}
}

func TestTracezHandler(t *testing.T) {
	r := NewRecorder(4)
	at := time.Now()
	tr := r.StartRemote(0x00ab, at)
	tr.AddSpan(StageQueue, -1, 0, at, 50*time.Microsecond)
	tr.AddSpan(StageExecute, -1, 0, at.Add(60*time.Microsecond), 40*time.Microsecond)
	r.Finish(tr, at.Add(120*time.Microsecond))
	tr2 := r.Start(at)
	tr2.AddSpan(StageScatter, 1, 2, at, 10*time.Microsecond)
	r.Finish(tr2, at.Add(15*time.Microsecond))

	rec := httptest.NewRecorder()
	TracezHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"trace id=00000000000000ab origin=remote",
		"queue",
		"execute",
		"scatter leg=1 try=2",
		"slowest since last scrape:",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("tracez missing %q:\n%s", want, body)
		}
	}
}
