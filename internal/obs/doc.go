// Package obs is the fleet-wide observability layer: a unified metrics
// Registry rendered as one Prometheus-style text exposition (the single
// code path behind both tiers' /metricz), per-request Traces made of a
// fixed-size span array (admission-queue wait, batch linger, batch
// execute, per-leg scatter RTT with sibling-retry attempts, merge,
// encode), and a lock-free ring-buffer Recorder behind /debug/tracez.
//
// Everything on the request path is zero-alloc at steady state: traces
// are pooled and recycled through the recorder ring, spans are claimed
// by atomic index into a fixed array, and sampling (1 in N, shared with
// the latency histograms) keeps the batcher and router hot paths pinned
// at 0 allocs/op. DESIGN.md "Observability" is the normative spec for
// the metric name table, the trace-trailer wire layout, and the
// sampling semantics.
package obs
