// Package linesearch implements the globalization strategies of the paper:
// the per-node backtracking Armijo search of Algorithm 3 (used by
// Newton-ADMM, which may terminate early on each worker independently) and
// the synchronized candidate-set variant used by GIANT, where every worker
// must evaluate the full step-size set S = {1, 2^-1, ..., 2^-k} so the
// master can pick one α globally (the redundancy Newton-ADMM avoids).
package linesearch

import "newtonadmm/internal/linalg"

// Options configures the backtracking search.
type Options struct {
	// Beta is the Armijo sufficient-decrease constant in (0,1); <=0 selects 1e-4.
	Beta float64
	// Shrink is the backtracking factor rho in (0,1); <=0 selects 0.5
	// (the paper halves the step each iteration).
	Shrink float64
	// MaxIters caps backtracking iterations; <=0 selects 10 (paper setting).
	MaxIters int
	// Initial is the first step size tried; <=0 selects 1 (full Newton step).
	Initial float64
}

func (o Options) withDefaults() Options {
	if o.Beta <= 0 {
		o.Beta = 1e-4
	}
	if o.Shrink <= 0 || o.Shrink >= 1 {
		o.Shrink = 0.5
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 10
	}
	if o.Initial <= 0 {
		o.Initial = 1
	}
	return o
}

// Result reports the accepted step.
type Result struct {
	Alpha     float64 // accepted step size
	Value     float64 // objective at x + Alpha p
	Evals     int     // objective evaluations performed
	Satisfied bool    // Armijo condition held at Alpha
}

// Backtrack finds the largest alpha in {Initial * Shrink^i} satisfying the
// Armijo condition of paper eq. (3c):
//
//	F(x + alpha p) <= F(x) + alpha * Beta * <p, g>
//
// f evaluates the objective at x + alpha*p; f0 is F(x) and slope is
// <p, g(x)> (negative for a descent direction). If the budget runs out the
// last alpha tried is returned with Satisfied=false, matching Algorithm 3
// which breaks out of the loop after imax iterations.
func Backtrack(f func(alpha float64) float64, f0, slope float64, opts Options) Result {
	opts = opts.withDefaults()
	alpha := opts.Initial
	res := Result{}
	for i := 0; i < opts.MaxIters; i++ {
		val := f(alpha)
		res.Evals++
		if val <= f0+alpha*opts.Beta*slope {
			res.Alpha = alpha
			res.Value = val
			res.Satisfied = true
			return res
		}
		res.Alpha = alpha
		res.Value = val
		alpha *= opts.Shrink
	}
	return res
}

// EvalCandidates evaluates the objective at every step in the candidate
// set {Initial * Shrink^i : i = 0..MaxIters-1}, as each GIANT worker must
// (the values are then summed across workers by the master). It returns
// the candidate steps and the local objective values.
func EvalCandidates(f func(alpha float64) float64, opts Options) (alphas, values []float64) {
	opts = opts.withDefaults()
	alphas = make([]float64, opts.MaxIters)
	values = make([]float64, opts.MaxIters)
	alpha := opts.Initial
	for i := 0; i < opts.MaxIters; i++ {
		alphas[i] = alpha
		values[i] = f(alpha)
		alpha *= opts.Shrink
	}
	return alphas, values
}

// PickArmijo selects the largest candidate step whose (globally summed)
// objective value satisfies the Armijo condition; if none qualifies it
// returns the step with the smallest objective value. This is the master
// side of GIANT's synchronized line search.
func PickArmijo(alphas, values []float64, f0, slope, beta float64) (alpha, value float64) {
	if len(alphas) == 0 || len(alphas) != len(values) {
		panic("linesearch: bad candidate arrays")
	}
	if beta <= 0 {
		beta = 1e-4
	}
	bestIdx := 0
	for i := range alphas {
		if values[i] <= f0+alphas[i]*beta*slope {
			return alphas[i], values[i]
		}
		if values[i] < values[bestIdx] {
			bestIdx = i
		}
	}
	return alphas[bestIdx], values[bestIdx]
}

// Objective evaluates prob at x + alpha*p reusing the provided scratch
// buffer. It is the standard adapter between problems and Backtrack.
func Objective(value func(w []float64) float64, x, p, scratch []float64) func(alpha float64) float64 {
	if len(scratch) != len(x) || len(p) != len(x) {
		panic("linesearch: Objective buffer dimension mismatch")
	}
	return func(alpha float64) float64 {
		linalg.Waxpby(1, x, alpha, p, scratch)
		return value(scratch)
	}
}
