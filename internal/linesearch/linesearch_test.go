package linesearch

import (
	"math"
	"testing"
)

func TestBacktrackAcceptsFullNewtonStepOnQuadratic(t *testing.T) {
	// F(x) = x^2 at x=1 with Newton step p=-1: alpha=1 is optimal and
	// satisfies Armijo, so no backtracking should occur.
	f := func(alpha float64) float64 { x := 1 - alpha; return x * x }
	res := Backtrack(f, 1.0, -2.0, Options{})
	if !res.Satisfied || res.Alpha != 1 {
		t.Fatalf("full step rejected: %+v", res)
	}
	if res.Evals != 1 {
		t.Fatalf("expected a single evaluation, got %d", res.Evals)
	}
}

func TestBacktrackHalvesUntilArmijo(t *testing.T) {
	// A steep function where alpha=1 overshoots badly.
	// F(x) = x^4 at x=1, direction p=-10 (aggressive): F(1-10a).
	f0 := 1.0
	slope := -40.0 // <p, g> = -10 * 4
	f := func(alpha float64) float64 { x := 1 - 10*alpha; return x * x * x * x }
	res := Backtrack(f, f0, slope, Options{MaxIters: 30})
	if !res.Satisfied {
		t.Fatalf("no Armijo step found: %+v", res)
	}
	if res.Value > f0+res.Alpha*1e-4*slope {
		t.Fatal("returned step violates Armijo")
	}
	if res.Alpha >= 1 {
		t.Fatalf("expected backtracking, got alpha=%v", res.Alpha)
	}
}

func TestBacktrackRespectsBudget(t *testing.T) {
	calls := 0
	f := func(alpha float64) float64 { calls++; return 1e9 } // never acceptable
	res := Backtrack(f, 0, -1, Options{MaxIters: 7})
	if calls != 7 {
		t.Fatalf("evaluated %d times, budget 7", calls)
	}
	if res.Satisfied {
		t.Fatal("cannot be satisfied")
	}
	// Algorithm 3 breaks and returns the last alpha tried.
	want := math.Pow(0.5, 6)
	if math.Abs(res.Alpha-want) > 1e-15 {
		t.Fatalf("alpha=%v, want %v", res.Alpha, want)
	}
}

func TestBacktrackCustomShrinkAndInitial(t *testing.T) {
	var seen []float64
	f := func(alpha float64) float64 { seen = append(seen, alpha); return 1e9 }
	Backtrack(f, 0, -1, Options{MaxIters: 3, Shrink: 0.1, Initial: 2})
	want := []float64{2, 0.2, 0.02}
	for i := range want {
		if math.Abs(seen[i]-want[i]) > 1e-12 {
			t.Fatalf("steps %v, want %v", seen, want)
		}
	}
}

func TestEvalCandidatesGrid(t *testing.T) {
	alphas, values := EvalCandidates(func(a float64) float64 { return 2 * a }, Options{MaxIters: 4})
	wantA := []float64{1, 0.5, 0.25, 0.125}
	for i := range wantA {
		if alphas[i] != wantA[i] {
			t.Fatalf("alphas=%v", alphas)
		}
		if values[i] != 2*wantA[i] {
			t.Fatalf("values=%v", values)
		}
	}
}

func TestPickArmijoSelectsLargestSatisfying(t *testing.T) {
	// f0=10, slope=-4, beta=0.5: threshold(a) = 10 - 2a.
	alphas := []float64{1, 0.5, 0.25}
	values := []float64{9.5, 8.9, 9.6} // a=1 needs <=8: no; a=0.5 needs <=9: yes
	a, v := PickArmijo(alphas, values, 10, -4, 0.5)
	if a != 0.5 || v != 8.9 {
		t.Fatalf("picked (%v,%v), want (0.5,8.9)", a, v)
	}
}

func TestPickArmijoFallsBackToBestValue(t *testing.T) {
	alphas := []float64{1, 0.5}
	values := []float64{100, 99} // nothing satisfies Armijo for f0=0
	a, v := PickArmijo(alphas, values, 0, -1, 0.5)
	if a != 0.5 || v != 99 {
		t.Fatalf("fallback picked (%v,%v), want (0.5,99)", a, v)
	}
}

func TestPickArmijoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched arrays")
		}
	}()
	PickArmijo([]float64{1}, []float64{1, 2}, 0, -1, 0.5)
}

func TestObjectiveAdapter(t *testing.T) {
	x := []float64{1, 2}
	p := []float64{1, -1}
	scratch := make([]float64, 2)
	value := func(w []float64) float64 { return w[0]*w[0] + w[1]*w[1] }
	f := Objective(value, x, p, scratch)
	// alpha=1: w=(2,1) -> 5
	if got := f(1); got != 5 {
		t.Fatalf("f(1)=%v, want 5", got)
	}
	// alpha=0: w=(1,2) -> 5
	if got := f(0); got != 5 {
		t.Fatalf("f(0)=%v, want 5", got)
	}
	// x must be untouched
	if x[0] != 1 || x[1] != 2 {
		t.Fatal("Objective modified x")
	}
}

func TestObjectiveAdapterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad scratch size")
		}
	}()
	Objective(func(w []float64) float64 { return 0 }, []float64{1}, []float64{1}, []float64{1, 2})
}
