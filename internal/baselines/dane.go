package baselines

import (
	"math"
	"math/rand"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/metrics"
)

// DANEOptions configures InexactDANE and (via AIDE) its accelerated
// wrapper.
type DANEOptions struct {
	// Epochs is the number of outer DANE iterations; <=0 selects 10
	// (the paper only runs 10 because each is so expensive).
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// Eta is DANE's gradient weight (paper uses 1.0).
	Eta float64
	// Mu is DANE's proximal coefficient (paper uses 0.0).
	Mu float64
	// SVRG configures the inexact subproblem solver.
	SVRG SVRGOptions
	// Seed makes the stochastic inner solver reproducible.
	Seed int64
	// EvalEvery records a trace point every this many epochs; <=0 is 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at trace points.
	EvalTestAccuracy bool
}

func (o DANEOptions) withDefaults() DANEOptions {
	if o.Epochs <= 0 {
		o.Epochs = 10
	}
	if o.Eta == 0 {
		o.Eta = 1
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	return o
}

// daneIteration performs one InexactDANE step from x (identical on all
// ranks): allreduce the global gradient, solve the local corrected
// subproblem with SVRG, allreduce-average the solutions. extraC/extraA add
// the AIDE prox linearization (zero for plain DANE). Two communication
// rounds per iteration.
func daneIteration(node *cluster.Node, local *dist.Local, x []float64, opts DANEOptions, rng *rand.Rand, extraC []float64, extraA float64) {
	dim := len(x)
	g := make([]float64, dim)
	gLocal := make([]float64, dim)

	// Round 1: global gradient G = sum_i grad f_i(x).
	local.Problem.Gradient(x, gLocal)
	copy(g, gLocal)
	if extraA != 0 || extraC != nil {
		// include the AIDE prox term's gradient in the global view
		for j := 0; j < dim; j++ {
			g[j] += extraA*x[j] + extraC[j]
		}
		for j := 0; j < dim; j++ {
			gLocal[j] += extraA*x[j] + extraC[j]
		}
	}
	node.AllReduceSum(g)

	// Local subproblem (Reddi et al., sum form):
	//   min_x f_i(x) - <grad f_i(x0) - eta G / N, x> + mu/2 ||x - x0||^2
	// encoded for SVRGSolve as phi(x) = f(x) + <c,x> + a/2||x||^2 +
	// mu/2||x-x0||^2 with c = -(grad f_i(x0) - eta G / N) + extraC and the
	// AIDE quadratic in a.
	c := make([]float64, dim)
	invN := 1 / float64(node.Size())
	for j := 0; j < dim; j++ {
		c[j] = -(gLocal[j] - opts.Eta*g[j]*invN)
	}
	if extraC != nil {
		linalg.Add(c, extraC)
	}
	x0 := linalg.Clone(x)
	SVRGSolve(local.Problem, c, extraA, opts.Mu, x0, x, opts.SVRG, rng)

	// Round 2: average the local solutions.
	node.AllReduceSum(x)
	linalg.Scal(invN, x)
}

// SolveInexactDANE runs the InexactDANE solver of Reddi et al.: DANE with
// each node's subproblem solved approximately by SVRG. The SVRG sweep
// makes every epoch orders of magnitude more expensive than a Newton-ADMM
// epoch, which is exactly the behaviour the paper's Figure 1 reports.
func SolveInexactDANE(clusterCfg cluster.Config, ds *datasets.Dataset, opts DANEOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{X: make([]float64, ds.Dim())}
	var trace *metrics.Trace

	stats, err := cluster.Run(clusterCfg, func(node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, true)
		if err != nil {
			return err
		}
		rec := dist.NewRecorder("inexact-dane", ds, local, opts.EvalTestAccuracy)
		rng := rand.New(rand.NewSource(opts.Seed + 7919*int64(node.Rank())))
		x := make([]float64, ds.Dim())

		rec.Observe(node, 0, x)
		for k := 1; k <= opts.Epochs; k++ {
			daneIteration(node, local, x, opts, rng, nil, 0)
			if k%opts.EvalEvery == 0 || k == opts.Epochs {
				rec.Observe(node, k, x)
			}
		}
		if node.Rank() == 0 {
			copy(res.X, x)
			tr := rec.Trace
			trace = &tr
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Trace = *trace
	}
	finishResult(res)
	return res, nil
}

// AIDEOptions configures the accelerated InexactDANE wrapper.
type AIDEOptions struct {
	// DANE configures the inner solver.
	DANE DANEOptions
	// Tau is the catalyst proximal weight (the paper sweeps 1e-4..1e4).
	Tau float64
}

// SolveAIDE runs AIDE (Reddi et al.): catalyst-style acceleration around
// InexactDANE. Each outer step solves the tau-augmented problem
// F(x) + tau/2 ||x - v||^2 with one InexactDANE iteration and then
// extrapolates v with the Nesterov coefficient derived from
// q = lambda / (lambda + tau).
func SolveAIDE(clusterCfg cluster.Config, ds *datasets.Dataset, opts AIDEOptions) (*Result, error) {
	opts.DANE = opts.DANE.withDefaults()
	if opts.Tau <= 0 {
		opts.Tau = 1
	}
	res := &Result{X: make([]float64, ds.Dim())}
	var trace *metrics.Trace

	q := opts.DANE.Lambda / (opts.DANE.Lambda + opts.Tau)
	zeta := (1 - math.Sqrt(q)) / (1 + math.Sqrt(q))

	stats, err := cluster.Run(clusterCfg, func(node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.DANE.Lambda, true)
		if err != nil {
			return err
		}
		rec := dist.NewRecorder("aide", ds, local, opts.DANE.EvalTestAccuracy)
		rng := rand.New(rand.NewSource(opts.DANE.Seed + 104729*int64(node.Rank())))
		dim := ds.Dim()
		x := make([]float64, dim)
		xPrev := make([]float64, dim)
		v := make([]float64, dim)
		extraC := make([]float64, dim)

		// Per-rank share of the tau prox: sum over ranks must equal
		// tau/2 ||x - v||^2.
		tauShare := opts.Tau / float64(node.Size())

		rec.Observe(node, 0, x)
		for k := 1; k <= opts.DANE.Epochs; k++ {
			// tau/2N ||x - v||^2 = tauShare/2 ||x||^2 - <tauShare v, x> + const
			for j := 0; j < dim; j++ {
				extraC[j] = -tauShare * v[j]
			}
			copy(xPrev, x)
			daneIteration(node, local, x, opts.DANE, rng, extraC, tauShare)
			// Nesterov extrapolation of the prox center.
			for j := 0; j < dim; j++ {
				v[j] = x[j] + zeta*(x[j]-xPrev[j])
			}
			if k%opts.DANE.EvalEvery == 0 || k == opts.DANE.Epochs {
				rec.Observe(node, k, x)
			}
		}
		if node.Rank() == 0 {
			copy(res.X, x)
			tr := rec.Trace
			trace = &tr
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Trace = *trace
	}
	finishResult(res)
	return res, nil
}
