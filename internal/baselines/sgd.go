package baselines

import (
	"math/rand"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/metrics"
)

// SGDOptions configures synchronous distributed mini-batch SGD, the
// first-order baseline of the paper's Figure 4.
type SGDOptions struct {
	// Epochs is the number of full passes over the data; <=0 selects 100.
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// BatchSize is the per-rank mini-batch size (paper: 128).
	BatchSize int
	// Step is the learning rate applied to the mean-form gradient
	// (the paper sweeps 1e-8..1e8 and reports the best).
	Step float64
	// Momentum is the heavy-ball coefficient in [0,1); 0 is plain SGD
	// (the paper's related work covers SGD "with/without momentum").
	Momentum float64
	// Seed makes shuffling reproducible.
	Seed int64
	// EvalEvery records a trace point every this many epochs; <=0 is 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at trace points.
	EvalTestAccuracy bool
}

func (o SGDOptions) withDefaults() SGDOptions {
	if o.Epochs <= 0 {
		o.Epochs = 100
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 128
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	return o
}

// SolveSyncSGD runs synchronous data-parallel mini-batch SGD: every step,
// each rank computes a mini-batch gradient on its shard and the ranks
// allreduce-average before updating identically — one communication round
// per mini-batch, i.e. ~n_i/BatchSize rounds per epoch versus
// Newton-ADMM's single round, which is the communication gap the paper's
// Figure 4 and the "amplified by slower interconnects" remark rest on.
func SolveSyncSGD(clusterCfg cluster.Config, ds *datasets.Dataset, opts SGDOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{X: make([]float64, ds.Dim())}
	var trace *metrics.Trace

	stats, err := cluster.Run(clusterCfg, func(node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, true)
		if err != nil {
			return err
		}
		rec := dist.NewRecorder("sync-sgd", ds, local, opts.EvalTestAccuracy)
		rng := rand.New(rand.NewSource(opts.Seed + 31337*int64(node.Rank())))
		dim := ds.Dim()
		x := make([]float64, dim)
		g := make([]float64, dim)
		vel := make([]float64, dim) // heavy-ball velocity
		nLocal := local.Problem.N()
		batch := opts.BatchSize
		if batch > nLocal {
			batch = nLocal
		}
		stepsPerEpoch := (nLocal + batch - 1) / batch
		// Every rank must take the same number of steps per epoch
		// (collectives are synchronous): agree on the max.
		agree := []float64{float64(stepsPerEpoch)}
		node.AllReduceMax(agree)
		stepsPerEpoch = int(agree[0])

		perm := make([]int, nLocal) // reshuffled each epoch
		idx := make([]int, 0, batch)

		rec.Observe(node, 0, x)
		for epoch := 1; epoch <= opts.Epochs; epoch++ {
			copy(perm, rng.Perm(nLocal))
			for s := 0; s < stepsPerEpoch; s++ {
				lo := (s * batch) % nLocal
				idx = idx[:0]
				for b := 0; b < batch; b++ {
					idx = append(idx, perm[(lo+b)%nLocal])
				}
				sub := local.Problem.Subproblem(idx)
				sub.L2 = 0
				sub.Gradient(x, g)
				// Scale the shard's mini-batch estimate to the full
				// sum-form gradient, add the exact regularizer, and
				// allreduce — one round per mini-batch.
				linalg.Scal(float64(nLocal)/float64(len(idx)), g)
				node.AllReduceSum(g)
				linalg.Axpy(opts.Lambda, x, g)
				// Mean-form heavy-ball step for size-independent
				// learning rates; Momentum = 0 is plain SGD.
				linalg.Waxpby(opts.Momentum, vel, -opts.Step/float64(local.N), g, vel)
				linalg.Add(x, vel)
			}
			if epoch%opts.EvalEvery == 0 || epoch == opts.Epochs {
				rec.Observe(node, epoch, x)
			}
		}
		if node.Rank() == 0 {
			copy(res.X, x)
			tr := rec.Trace
			trace = &tr
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Trace = *trace
	}
	finishResult(res)
	return res, nil
}
