package baselines

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/newton"
)

func testDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate(datasets.Config{
		Name: "baseline-test", Samples: 500, TestSamples: 150, Features: 10,
		Classes: 3, Seed: 80, Separation: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func optimum(t *testing.T, ds *datasets.Dataset, lambda float64) float64 {
	t.Helper()
	dev := device.New("oracle", 4)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, lambda)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, prob.Dim())
	newton.Solve(prob, w, newton.Options{MaxIters: 200, GradTol: 1e-7})
	return prob.Value(w)
}

var zeroNet = cluster.Config{Ranks: 3, Network: cluster.ZeroCost, DeviceWorkers: 1}

func TestGIANTConvergesNearOptimum(t *testing.T) {
	ds := testDataset(t)
	lambda := 1e-3
	fStar := optimum(t, ds, lambda)
	res, err := SolveGIANT(zeroNet, ds, GiantOptions{Epochs: 30, Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.02 {
		t.Fatalf("GIANT gap %v (F=%v, F*=%v)", rel, final.Objective, fStar)
	}
}

func TestGIANTSingleRankIsNewton(t *testing.T) {
	// With one rank the local Hessian IS the global Hessian, so GIANT
	// must behave like plain Newton-CG: fast, monotone convergence.
	ds := testDataset(t)
	lambda := 1e-2
	fStar := optimum(t, ds, lambda)
	res, err := SolveGIANT(cluster.Config{Ranks: 1, Network: cluster.ZeroCost, DeviceWorkers: 2}, ds,
		GiantOptions{Epochs: 20, Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	if rel := (final.Objective - fStar) / math.Abs(fStar); rel > 0.01 {
		t.Fatalf("single-rank GIANT gap %v", rel)
	}
}

func TestGIANTCommunicationRoundsPerEpoch(t *testing.T) {
	// The paper's count: three collectives per iteration (gradient,
	// direction, line search).
	ds := testDataset(t)
	epochs := 7
	res, err := SolveGIANT(zeroNet, ds, GiantOptions{Epochs: epochs, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stats {
		if s.Rounds != 3*epochs {
			t.Fatalf("rank %d used %d collectives, want %d", s.Rank, s.Rounds, 3*epochs)
		}
	}
}

func TestGIANTMonotoneObjective(t *testing.T) {
	ds := testDataset(t)
	res, err := SolveGIANT(zeroNet, ds, GiantOptions{Epochs: 15, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, p := range res.Trace.Points {
		if p.Objective > prev+1e-9 {
			t.Fatalf("objective increased at epoch %d: %v -> %v", p.Epoch, prev, p.Objective)
		}
		prev = p.Objective
	}
}

func TestInexactDANEMakesProgress(t *testing.T) {
	ds := testDataset(t)
	lambda := 1e-3
	res, err := SolveInexactDANE(zeroNet, ds, DANEOptions{
		Epochs: 5, Lambda: lambda, Seed: 1,
		SVRG: SVRGOptions{Step: 1, Snapshots: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace.Points[0]
	last, _ := res.Trace.Final()
	if last.Objective >= 0.9*first.Objective {
		t.Fatalf("InexactDANE barely moved: %v -> %v", first.Objective, last.Objective)
	}
}

func TestAIDEMakesProgress(t *testing.T) {
	ds := testDataset(t)
	res, err := SolveAIDE(zeroNet, ds, AIDEOptions{
		DANE: DANEOptions{
			Epochs: 5, Lambda: 1e-3, Seed: 2,
			SVRG: SVRGOptions{Step: 1, Snapshots: 2},
		},
		Tau: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace.Points[0]
	last, _ := res.Trace.Final()
	if last.Objective >= 0.9*first.Objective {
		t.Fatalf("AIDE barely moved: %v -> %v", first.Objective, last.Objective)
	}
}

func TestSyncSGDConverges(t *testing.T) {
	ds := testDataset(t)
	lambda := 1e-3
	fStar := optimum(t, ds, lambda)
	res, err := SolveSyncSGD(zeroNet, ds, SGDOptions{
		Epochs: 60, Lambda: lambda, BatchSize: 64, Step: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.2 {
		t.Fatalf("SGD gap %v (F=%v, F*=%v)", rel, final.Objective, fStar)
	}
}

func TestSyncSGDRoundsScaleWithBatches(t *testing.T) {
	// One allreduce per mini-batch step: rounds per epoch =
	// ceil(n_local / batch), plus the max-agreement round at setup.
	ds := testDataset(t)
	epochs := 3
	batch := 64
	res, err := SolveSyncSGD(zeroNet, ds, SGDOptions{
		Epochs: epochs, Lambda: 1e-3, BatchSize: batch, Step: 0.5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	nLocal := (500 + 2) / 3 // ceil for the largest shard
	steps := (nLocal + batch - 1) / batch
	want := epochs*steps + 1
	for _, s := range res.Stats {
		if s.Rounds != want {
			t.Fatalf("rank %d rounds=%d, want %d", s.Rank, s.Rounds, want)
		}
	}
}

func TestSGDManyMoreRoundsThanGIANT(t *testing.T) {
	// The communication-structure claim behind Figure 4, checked
	// structurally: SGD needs far more collectives per epoch.
	ds := testDataset(t)
	sgd, err := SolveSyncSGD(zeroNet, ds, SGDOptions{Epochs: 5, Lambda: 1e-3, BatchSize: 16, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	giant, err := SolveGIANT(zeroNet, ds, GiantOptions{Epochs: 5, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if sgd.Stats[0].Rounds <= 2*giant.Stats[0].Rounds {
		t.Fatalf("SGD rounds %d not dominating GIANT rounds %d",
			sgd.Stats[0].Rounds, giant.Stats[0].Rounds)
	}
}

func TestSVRGSolveReducesQuadraticObjective(t *testing.T) {
	// phi(x) = f(x) + <c,x> + a/2||x||^2 with a strongly convex softmax:
	// SVRG from 0 must reduce phi.
	ds := testDataset(t)
	dev := device.New("svrg-test", 2)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dim := prob.Dim()
	c := make([]float64, dim)
	for i := range c {
		c[i] = 0.01 * float64(i%5)
	}
	phi := func(x []float64) float64 {
		nrm := linalg.Nrm2(x)
		return prob.Value(x) + linalg.Dot(c, x) + 0.5*0.1*nrm*nrm
	}
	x := make([]float64, dim)
	before := phi(x)
	rng := rand.New(rand.NewSource(5))
	SVRGSolve(prob, c, 0.1, 0, linalg.Clone(x), x, SVRGOptions{Step: 1, Snapshots: 2}, rng)
	after := phi(x)
	if after >= before {
		t.Fatalf("SVRG did not reduce the subproblem: %v -> %v", before, after)
	}
	if !linalg.AllFinite(x) {
		t.Fatal("SVRG produced non-finite iterate")
	}
}

func TestSVRGDivergenceGuard(t *testing.T) {
	ds := testDataset(t)
	dev := device.New("svrg-test", 2)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dim := prob.Dim()
	x := make([]float64, dim)
	rng := rand.New(rand.NewSource(6))
	// Absurd step size: guard must keep the iterate finite.
	SVRGSolve(prob, make([]float64, dim), 0, 0, make([]float64, dim), x,
		SVRGOptions{Step: 1e12, Snapshots: 1}, rng)
	if !linalg.AllFinite(x) {
		t.Fatal("divergence guard failed")
	}
}

func TestSVRGRestoresL2(t *testing.T) {
	ds := testDataset(t)
	dev := device.New("svrg-test", 2)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, prob.Dim())
	rng := rand.New(rand.NewSource(7))
	SVRGSolve(prob, make([]float64, prob.Dim()), 0, 0, make([]float64, prob.Dim()), x,
		SVRGOptions{Step: 0.5, Snapshots: 1, StepsPerSnapshot: 5}, rng)
	if prob.L2 != 0.25 {
		t.Fatalf("SVRGSolve did not restore L2: %v", prob.L2)
	}
}

func TestBaselinesDeterministicWithSeed(t *testing.T) {
	ds := testDataset(t)
	opts := SGDOptions{Epochs: 3, Lambda: 1e-3, BatchSize: 32, Step: 0.5, Seed: 11}
	a, err := SolveSyncSGD(zeroNet, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveSyncSGD(zeroNet, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.Dist2(a.X, b.X); d != 0 {
		t.Fatalf("same seed produced different iterates: %v", d)
	}
}
