package baselines

import (
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/cluster/faultinject"
	"newtonadmm/internal/datasets"
)

// GIANT covers the other L2 convention (sharded regularization): the
// same kill-and-resume pin as Newton-ADMM, bitwise on trace and iterate.

const (
	giantResumeEpochs = 6
	giantResumeRanks  = 2
)

func giantResumeDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate(datasets.MNISTLike(0.03))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func giantResumeOpts(dir string) GiantOptions {
	return GiantOptions{
		Epochs:        giantResumeEpochs,
		Lambda:        1e-4,
		CheckpointDir: dir,
	}
}

func giantResumeCluster() cluster.Config {
	return cluster.Config{
		Ranks:             giantResumeRanks,
		Network:           cluster.ZeroCost,
		DeviceWorkers:     1,
		CollectiveTimeout: 10 * time.Second,
	}
}

func giantAssertBitwise(t *testing.T, label string, base, got *Result) {
	t.Helper()
	if len(got.Trace.Points) != len(base.Trace.Points) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got.Trace.Points), len(base.Trace.Points))
	}
	for i, bp := range base.Trace.Points {
		gp := got.Trace.Points[i]
		if gp.Epoch != bp.Epoch || math.Float64bits(gp.Objective) != math.Float64bits(bp.Objective) {
			t.Fatalf("%s: trace[%d] = (%d, %.17g), want (%d, %.17g)",
				label, i, gp.Epoch, gp.Objective, bp.Epoch, bp.Objective)
		}
	}
	for j := range base.X {
		if math.Float64bits(got.X[j]) != math.Float64bits(base.X[j]) {
			t.Fatalf("%s: X[%d] = %.17g, want %.17g (not bitwise)", label, j, got.X[j], base.X[j])
		}
	}
}

func giantCrashRank(victim, sends int, onlyFirstAttempt bool) func(int, cluster.Transport) cluster.Transport {
	var wraps atomic.Int64
	return func(rank int, tr cluster.Transport) cluster.Transport {
		attempt := int(wraps.Add(1)-1) / giantResumeRanks
		if rank != victim || (onlyFirstAttempt && attempt > 0) {
			return tr
		}
		f := faultinject.Wrap(tr)
		f.CrashAfterSend(sends)
		return f
	}
}

func TestGIANTBitwiseResume(t *testing.T) {
	ds := giantResumeDataset(t)

	base, err := SolveGIANT(giantResumeCluster(), ds, giantResumeOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Trace.Points) != giantResumeEpochs+1 {
		t.Fatalf("reference trace has %d points", len(base.Trace.Points))
	}

	// Kill rank 1 mid-epoch 2 (after the first checkpoint landed).
	dir := t.TempDir()
	ccfg := giantResumeCluster()
	ccfg.WrapTransport = giantCrashRank(1, 15, false)
	partial, err := SolveGIANT(ccfg, ds, giantResumeOpts(dir))
	if err == nil {
		t.Fatal("crashed run reported success")
	}
	if !cluster.IsCommError(err) {
		t.Fatalf("crash not surfaced as a typed comm error: %v", err)
	}
	if partial == nil || partial.FailedEpoch == 0 || len(partial.Trace.Points) == 0 {
		t.Fatalf("partial result incomplete: %+v", partial)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.nack")); len(files) == 0 {
		t.Fatal("no checkpoint was written before the crash")
	}

	opts := giantResumeOpts(dir)
	opts.Resume = true
	resumed, err := SolveGIANT(giantResumeCluster(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	giantAssertBitwise(t, "kill+resume", base, resumed)
}

func TestGIANTInPlaceRestart(t *testing.T) {
	ds := giantResumeDataset(t)
	base, err := SolveGIANT(giantResumeCluster(), ds, giantResumeOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	ccfg := giantResumeCluster()
	ccfg.WrapTransport = giantCrashRank(1, 15, true)
	opts := giantResumeOpts(t.TempDir())
	opts.MaxRestarts = 2
	opts.RestartBackoff = time.Millisecond
	restarted, err := SolveGIANT(ccfg, ds, opts)
	if err != nil {
		t.Fatalf("restart did not recover: %v", err)
	}
	giantAssertBitwise(t, "in-place restart", base, restarted)
}
