package baselines

import (
	"math"
	"testing"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/linalg"
)

func TestDiSCOConvergesNearOptimum(t *testing.T) {
	ds := testDataset(t)
	lambda := 1e-2 // self-concordant-friendly regularization
	fStar := optimum(t, ds, lambda)
	res, err := SolveDiSCO(zeroNet, ds, DiSCOOptions{
		Epochs: 40, Lambda: lambda, PCGIters: 20, PCGTol: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.05 {
		t.Fatalf("DiSCO gap %v (F=%v, F*=%v)", rel, final.Objective, fStar)
	}
}

func TestDiSCOMonotoneDecrease(t *testing.T) {
	ds := testDataset(t)
	res, err := SolveDiSCO(zeroNet, ds, DiSCOOptions{Epochs: 15, Lambda: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, p := range res.Trace.Points {
		// Damped Newton on a convex objective: allow tiny numerical slack.
		if p.Objective > prev*(1+1e-9) {
			t.Fatalf("objective increased at epoch %d: %v -> %v", p.Epoch, prev, p.Objective)
		}
		prev = p.Objective
	}
}

func TestDiSCOCommunicationHeavierThanADMM(t *testing.T) {
	// DiSCO pays ~2 rounds per PCG iteration plus gradient and damping
	// rounds each epoch; with 10 PCG iterations that dwarfs Newton-ADMM's
	// 2 rounds per epoch. Structural check on the round counters.
	ds := testDataset(t)
	epochs := 5
	res, err := SolveDiSCO(zeroNet, ds, DiSCOOptions{
		Epochs: epochs, Lambda: 1e-2, PCGIters: 10, PCGTol: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Rounds < epochs*5 {
		t.Fatalf("DiSCO rounds %d suspiciously low", res.Stats[0].Rounds)
	}
}

func TestDiSCOTranportsAgree(t *testing.T) {
	ds := testDataset(t)
	opts := DiSCOOptions{Epochs: 4, Lambda: 1e-2}
	a, err := SolveDiSCO(zeroNet, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tcpCfg := zeroNet
	tcpCfg.UseTCP = true
	b, err := SolveDiSCO(tcpCfg, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.Dist2(a.X, b.X); d > 1e-12 {
		t.Fatalf("transports disagree: %v", d)
	}
}

func TestDiSCOSingleRank(t *testing.T) {
	ds := testDataset(t)
	res, err := SolveDiSCO(cluster.Config{Ranks: 1, Network: cluster.ZeroCost, DeviceWorkers: 2},
		ds, DiSCOOptions{Epochs: 20, Lambda: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace.Points[0]
	last, _ := res.Trace.Final()
	if last.Objective >= first.Objective {
		t.Fatalf("no progress on single rank: %v -> %v", first.Objective, last.Objective)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	ds := testDataset(t)
	lambda := 1e-3
	fStar := optimum(t, ds, lambda)
	res, err := SolveSyncSGD(zeroNet, ds, SGDOptions{
		Epochs: 50, Lambda: lambda, BatchSize: 64, Step: 1, Momentum: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := res.Trace.Final()
	rel := (final.Objective - fStar) / math.Abs(fStar)
	if rel > 0.3 {
		t.Fatalf("momentum SGD gap %v", rel)
	}
}

func TestSGDMomentumZeroMatchesPlain(t *testing.T) {
	ds := testDataset(t)
	base := SGDOptions{Epochs: 3, Lambda: 1e-3, BatchSize: 32, Step: 0.5, Seed: 6}
	a, err := SolveSyncSGD(zeroNet, ds, base)
	if err != nil {
		t.Fatal(err)
	}
	withZero := base
	withZero.Momentum = 0
	b, err := SolveSyncSGD(zeroNet, ds, withZero)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.Dist2(a.X, b.X); d != 0 {
		t.Fatalf("momentum=0 changed the trajectory: %v", d)
	}
}
