package baselines

import (
	"math/rand"

	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

// SVRGOptions configures the stochastic variance-reduced gradient inner
// solver used by InexactDANE and AIDE (paper: "SVRG iterations to 100 and
// updating frequency as 2n").
type SVRGOptions struct {
	// Snapshots is the number of outer (full-gradient) rounds; <=0 is 2.
	Snapshots int
	// StepsPerSnapshot is the number of stochastic steps between full
	// gradients; <=0 selects UpdateFreqFactor * n / BatchSize.
	StepsPerSnapshot int
	// UpdateFreqFactor is the paper's "2n" factor; <=0 is 2.
	UpdateFreqFactor float64
	// BatchSize is the mini-batch size per stochastic step; <=0 is 16.
	BatchSize int
	// Step is the SVRG step size (the paper sweeps 1e-4..1e4).
	Step float64
}

func (o SVRGOptions) withDefaults(n int) SVRGOptions {
	if o.Snapshots <= 0 {
		o.Snapshots = 2
	}
	if o.UpdateFreqFactor <= 0 {
		o.UpdateFreqFactor = 2
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.BatchSize > n {
		o.BatchSize = n
	}
	if o.StepsPerSnapshot <= 0 {
		o.StepsPerSnapshot = int(o.UpdateFreqFactor*float64(n))/o.BatchSize + 1
	}
	if o.Step <= 0 {
		o.Step = 1e-3
	}
	return o
}

// SVRGSolve approximately minimizes the composite local subproblem
//
//	phi(x) = f(x) + <c, x> + (a/2)||x||^2 + (mu/2)||x - x0||^2
//
// by SVRG, starting from x (updated in place). f is the rank's softmax
// shard; the linear/quadratic terms encode the DANE or AIDE corrections.
// The stochastic gradient uses mini-batch variance reduction:
//
//	g = (n/b) (gB(x) - gB(xSnap)) + grad f(xSnap) + c + a x + mu (x - x0)
//
// Steps are scaled by 1/n so Step is comparable across shard sizes.
func SVRGSolve(f *loss.Softmax, c []float64, a, mu float64, x0, x []float64, opts SVRGOptions, rng *rand.Rand) {
	n := f.N()
	if n == 0 {
		return
	}
	opts = opts.withDefaults(n)
	// Handle f's own L2 term exactly in the deterministic part: fold it
	// into the quadratic coefficient and evaluate f as pure loss below.
	savedL2 := f.L2
	f.L2 = 0
	defer func() { f.L2 = savedL2 }()
	a += savedL2
	dim := f.Dim()
	snapGrad := make([]float64, dim)
	xSnap := make([]float64, dim)
	gB := make([]float64, dim)
	gBSnap := make([]float64, dim)
	step := opts.Step / float64(n)
	idx := make([]int, opts.BatchSize)

	for s := 0; s < opts.Snapshots; s++ {
		copy(xSnap, x)
		f.Gradient(xSnap, snapGrad)
		for t := 0; t < opts.StepsPerSnapshot; t++ {
			for i := range idx {
				idx[i] = rng.Intn(n)
			}
			batch := f.Subproblem(idx)
			batch.Gradient(x, gB)
			batch.Gradient(xSnap, gBSnap)
			scale := float64(n) / float64(opts.BatchSize)
			for j := 0; j < dim; j++ {
				g := scale*(gB[j]-gBSnap[j]) + snapGrad[j] +
					c[j] + a*x[j] + mu*(x[j]-x0[j])
				x[j] -= step * g
			}
			if !linalg.AllFinite(x) {
				// Divergence guard: step too large; fall back to the
				// snapshot and stop (the harness sweeps step sizes).
				copy(x, xSnap)
				return
			}
		}
	}
}
