package baselines

import (
	"newtonadmm/internal/cg"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/linesearch"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
)

// GiantOptions configures the GIANT solver.
type GiantOptions struct {
	// Epochs is the number of outer iterations; <=0 selects 100.
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// CG configures the local Newton-direction solves (paper setting for
	// the comparison: 10 iterations at 1e-4).
	CG cg.Options
	// LineSearch sets the synchronized candidate set S = {1, 1/2, ...,
	// 2^-(MaxIters-1)} every worker must evaluate in full (paper: 10).
	LineSearch linesearch.Options
	// EvalEvery records a trace point every this many epochs; <=0 is 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at trace points.
	EvalTestAccuracy bool
	// TargetObjective stops the run at the first evaluation whose global
	// objective reaches this value; zero disables early stopping.
	TargetObjective float64
}

func (o GiantOptions) withDefaults() GiantOptions {
	if o.Epochs <= 0 {
		o.Epochs = 100
	}
	if o.CG.MaxIters <= 0 {
		o.CG.MaxIters = 10
	}
	if o.CG.RelTol <= 0 {
		o.CG.RelTol = 1e-4
	}
	if o.LineSearch.MaxIters <= 0 {
		o.LineSearch.MaxIters = 10
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	return o
}

// SolveGIANT runs the Globally Improved Approximate Newton method: each
// iteration allreduces the exact global gradient, has every rank solve its
// *local* Hessian system against that gradient (rescaled by n/n_i so the
// local Hessian estimates the global one), averages the resulting
// directions, and picks one global step size with the synchronized
// candidate-set line search — three communication rounds per iteration
// versus Newton-ADMM's one (paper §3).
func SolveGIANT(clusterCfg cluster.Config, ds *datasets.Dataset, opts GiantOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{X: make([]float64, ds.Dim())}
	var trace *metrics.Trace

	stats, err := cluster.Run(clusterCfg, func(node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, true)
		if err != nil {
			return err
		}
		rec := dist.NewRecorder("giant", ds, local, opts.EvalTestAccuracy)
		opts := opts
		opts.CG.Work = &cg.Workspace{} // per-rank scratch, reused every epoch
		dim := ds.Dim()
		x := make([]float64, dim)
		g := make([]float64, dim)
		p := make([]float64, dim)
		scratch := make([]float64, dim)
		scale := float64(local.N) / float64(local.Problem.N())
		scaled := &loss.Scaled{Base: local.Problem, Factor: scale}

		rec.Observe(node, 0, x)
		for k := 1; k <= opts.Epochs; k++ {
			// Round 1: exact global gradient and objective value.
			f0 := local.GlobalGradient(node, x, g)

			// Local CG on the rescaled local Hessian (no communication).
			h := scaled.HessianAt(x)
			cg.NewtonDirection(h, g, p, opts.CG)

			// Round 2: average the local directions.
			node.AllReduceSum(p)
			linalg.Scal(1/float64(node.Size()), p)

			// Round 3: synchronized candidate-set line search. Every
			// worker evaluates its local objective on the full set S
			// (the redundant work the paper contrasts with Newton-ADMM's
			// local early-terminating search).
			localVal := linesearch.Objective(local.Problem.Value, x, p, scratch)
			alphas, values := linesearch.EvalCandidates(localVal, opts.LineSearch)
			node.AllReduceSum(values)
			slope := linalg.Dot(p, g)
			alpha, _ := linesearch.PickArmijo(alphas, values, f0, slope, opts.LineSearch.Beta)

			linalg.Axpy(alpha, p, x)
			if k%opts.EvalEvery == 0 || k == opts.Epochs {
				obj := rec.Observe(node, k, x)
				if opts.TargetObjective != 0 && obj <= opts.TargetObjective {
					break // all ranks see the same allreduced objective
				}
			}
		}
		if node.Rank() == 0 {
			copy(res.X, x)
			tr := rec.Trace
			trace = &tr
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Trace = *trace
	}
	finishResult(res)
	return res, nil
}
