package baselines

import (
	"errors"
	"fmt"
	"time"

	"newtonadmm/internal/cg"
	"newtonadmm/internal/ckpt"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/linesearch"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
)

// GiantOptions configures the GIANT solver.
type GiantOptions struct {
	// Epochs is the number of outer iterations; <=0 selects 100.
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// CG configures the local Newton-direction solves (paper setting for
	// the comparison: 10 iterations at 1e-4).
	CG cg.Options
	// LineSearch sets the synchronized candidate set S = {1, 1/2, ...,
	// 2^-(MaxIters-1)} every worker must evaluate in full (paper: 10).
	LineSearch linesearch.Options
	// EvalEvery records a trace point every this many epochs; <=0 is 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at trace points.
	EvalTestAccuracy bool
	// TargetObjective stops the run at the first evaluation whose global
	// objective reaches this value; zero disables early stopping.
	TargetObjective float64
	// CheckpointDir, CheckpointEvery, Resume, MaxRestarts and
	// RestartBackoff mirror core.Options: crash-safe snapshots every
	// CheckpointEvery epochs, bitwise resume from the latest good one,
	// and bounded in-place restart on typed communication failures.
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	MaxRestarts     int
	RestartBackoff  time.Duration
}

func (o GiantOptions) withDefaults() GiantOptions {
	if o.Epochs <= 0 {
		o.Epochs = 100
	}
	if o.CG.MaxIters <= 0 {
		o.CG.MaxIters = 10
	}
	if o.CG.RelTol <= 0 {
		o.CG.RelTol = 1e-4
	}
	if o.LineSearch.MaxIters <= 0 {
		o.LineSearch.MaxIters = 10
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	if o.CheckpointDir != "" && o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// giantFingerprint binds checkpoints to the run's identity; like the
// Newton-ADMM fingerprint it excludes Epochs (resume toward a larger
// budget) and the transport (the math is transport-independent).
func giantFingerprint(ranks int, ds *datasets.Dataset, opts GiantOptions) uint64 {
	f := ckpt.NewFingerprinter()
	f.String("giant")
	f.Int(ranks)
	f.String(ds.Name)
	f.Int(ds.Dim())
	f.Int(ds.Classes)
	f.Int(ds.TrainSize())
	f.Float(opts.Lambda)
	f.Int(opts.CG.MaxIters)
	f.Float(opts.CG.RelTol)
	f.Float(opts.LineSearch.Beta)
	f.Float(opts.LineSearch.Shrink)
	f.Int(opts.LineSearch.MaxIters)
	f.Float(opts.LineSearch.Initial)
	f.Int(opts.EvalEvery)
	f.Bool(opts.EvalTestAccuracy)
	f.Float(opts.TargetObjective)
	return f.Sum()
}

// SolveGIANT runs the Globally Improved Approximate Newton method: each
// iteration allreduces the exact global gradient, has every rank solve its
// *local* Hessian system against that gradient (rescaled by n/n_i so the
// local Hessian estimates the global one), averages the resulting
// directions, and picks one global step size with the synchronized
// candidate-set line search — three communication rounds per iteration
// versus Newton-ADMM's one (paper §3).
func SolveGIANT(clusterCfg cluster.Config, ds *datasets.Dataset, opts GiantOptions) (*Result, error) {
	opts = opts.withDefaults()
	ranks := clusterCfg.Ranks
	if ranks < 1 {
		ranks = 1
	}
	fp := giantFingerprint(ranks, ds, opts)
	if opts.CheckpointDir != "" && !opts.Resume {
		// A restart within this run must never load a snapshot left over
		// from an older run in the same directory.
		if err := ckpt.Clear(opts.CheckpointDir); err != nil {
			return nil, err
		}
	}
	res := &Result{X: make([]float64, ds.Dim())}
	failedEpochs := make([]int, ranks)
	var trace *metrics.Trace

	pol := cluster.RestartPolicy{MaxRestarts: opts.MaxRestarts, Backoff: opts.RestartBackoff}
	stats, err := cluster.RunRestart(clusterCfg, pol, func(attempt int, node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, true)
		if err != nil {
			return err
		}
		rec := dist.NewRecorder("giant", ds, local, opts.EvalTestAccuracy)
		opts := opts
		opts.CG.Work = &cg.Workspace{} // per-rank scratch, reused every epoch
		dim := ds.Dim()
		x := make([]float64, dim)
		g := make([]float64, dim)
		p := make([]float64, dim)
		scratch := make([]float64, dim)
		scale := float64(local.N) / float64(local.Problem.N())
		scaled := &loss.Scaled{Base: local.Problem, Factor: scale}

		// Flush the partial trace even when this rank dies mid-run, with
		// the epoch in flight recorded alongside it.
		epochInFlight := 0
		defer func() {
			failedEpochs[node.Rank()] = epochInFlight
			if node.Rank() == 0 {
				tr := rec.Trace
				trace = &tr
			}
		}()

		// Resume: GIANT's full recoverable state is the iterate x, which
		// is identical on all ranks (the per-rank checkpoint sections stay
		// empty — CG and line-search state is pure scratch).
		startK := 0
		resume := opts.CheckpointDir != "" && (opts.Resume || attempt > 0)
		if resume {
			snap, err := ckpt.LoadLatest(opts.CheckpointDir, fp)
			switch {
			case errors.Is(err, ckpt.ErrNoCheckpoint):
				// Nothing saved yet: fresh start.
			case err != nil:
				return err
			default:
				if len(snap.Shared) != dim {
					return fmt.Errorf("baselines: checkpoint shape mismatch (shared %d, want %d)", len(snap.Shared), dim)
				}
				copy(x, snap.Shared)
				startK = int(snap.Iter)
				if node.Rank() == 0 {
					rec.RestoreTrace(snap.Trace)
				}
			}
		}

		if startK == 0 {
			rec.Observe(node, 0, x)
		}
		for k := startK + 1; k <= opts.Epochs; k++ {
			epochInFlight = k
			// Round 1: exact global gradient and objective value.
			f0 := local.GlobalGradient(node, x, g)

			// Local CG on the rescaled local Hessian (no communication).
			h := scaled.HessianAt(x)
			cg.NewtonDirection(h, g, p, opts.CG)

			// Round 2: average the local directions.
			node.AllReduceSum(p)
			linalg.Scal(1/float64(node.Size()), p)

			// Round 3: synchronized candidate-set line search. Every
			// worker evaluates its local objective on the full set S
			// (the redundant work the paper contrasts with Newton-ADMM's
			// local early-terminating search).
			localVal := linesearch.Objective(local.Problem.Value, x, p, scratch)
			alphas, values := linesearch.EvalCandidates(localVal, opts.LineSearch)
			node.AllReduceSum(values)
			slope := linalg.Dot(p, g)
			alpha, _ := linesearch.PickArmijo(alphas, values, f0, slope, opts.LineSearch.Beta)

			linalg.Axpy(alpha, p, x)
			if k%opts.EvalEvery == 0 || k == opts.Epochs {
				obj := rec.Observe(node, k, x)
				if opts.TargetObjective != 0 && obj <= opts.TargetObjective {
					break // all ranks see the same allreduced objective
				}
			}

			// Snapshot after the epoch's trace point; rank 0 writes after a
			// barrier so no rank can observe a file ahead of its peers.
			if opts.CheckpointDir != "" && (k%opts.CheckpointEvery == 0 || k == opts.Epochs) {
				var saveErr error
				node.Frozen(func() {
					node.Barrier()
					if node.Rank() != 0 {
						return
					}
					saveErr = ckpt.Save(opts.CheckpointDir, &ckpt.Snapshot{
						Fingerprint: fp,
						Iter:        uint64(k),
						Solver:      "giant",
						Shared:      append([]float64(nil), x...),
						Ranks:       make([][]float64, node.Size()),
						Trace:       rec.CheckpointTrace(),
					})
				})
				if saveErr != nil {
					return saveErr
				}
			}
		}
		epochInFlight = 0 // clean finish
		if node.Rank() == 0 {
			copy(res.X, x)
		}
		return nil
	})
	res.Stats = stats
	if trace != nil {
		res.Trace = *trace
	}
	if err != nil {
		for _, k := range failedEpochs {
			if k > res.FailedEpoch {
				res.FailedEpoch = k
			}
		}
		return res, err
	}
	finishResult(res)
	return res, nil
}
