// Package baselines implements the distributed optimizers the paper
// compares Newton-ADMM against: GIANT (Wang et al.), InexactDANE and AIDE
// (Reddi et al., with an SVRG inner solver), and synchronous mini-batch
// SGD. Each follows the communication pattern the paper attributes to it —
// GIANT's three collectives per iteration, DANE/AIDE's two, and SGD's one
// per mini-batch — so the virtual-clock comparisons reproduce the paper's
// cost structure.
package baselines

import (
	"math"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/metrics"
)

// Result is the common output shape of the baseline solvers.
type Result struct {
	// X is the final iterate (identical on all ranks).
	X []float64
	// Trace is the convergence history recorded on rank 0.
	Trace metrics.Trace
	// Stats are per-rank timing summaries.
	Stats []cluster.NodeStats
	// TestAccuracy is the final test accuracy (NaN when not measured).
	TestAccuracy float64
	// FailedEpoch is the outer iteration in flight when a failed run went
	// down (0 when the run succeeded or failed before the first epoch).
	FailedEpoch int
}

func finishResult(res *Result) {
	res.TestAccuracy = math.NaN()
	if p, ok := res.Trace.Final(); ok {
		res.TestAccuracy = p.TestAccuracy
	}
}
