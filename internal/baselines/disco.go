package baselines

import (
	"math"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/dist"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
)

// DiSCOOptions configures the DiSCO solver.
type DiSCOOptions struct {
	// Epochs is the number of outer damped-Newton iterations; <=0 is 50.
	Epochs int
	// Lambda is the global L2 regularization strength.
	Lambda float64
	// PCGIters caps the inner distributed PCG iterations; <=0 is 20.
	PCGIters int
	// PCGTol is the relative residual tolerance of the inner solve;
	// <=0 is 1e-4.
	PCGTol float64
	// Mu is the preconditioner damping added to the local Hessian;
	// <=0 selects Lambda.
	Mu float64
	// LocalCGIters caps the local CG iterations used to apply the
	// preconditioner; <=0 is 10.
	LocalCGIters int
	// EvalEvery records a trace point every this many epochs; <=0 is 1.
	EvalEvery int
	// EvalTestAccuracy also measures test accuracy at trace points.
	EvalTestAccuracy bool
	// TargetObjective stops early at this objective; zero disables.
	TargetObjective float64
}

func (o DiSCOOptions) withDefaults() DiSCOOptions {
	if o.Epochs <= 0 {
		o.Epochs = 50
	}
	if o.PCGIters <= 0 {
		o.PCGIters = 20
	}
	if o.PCGTol <= 0 {
		o.PCGTol = 1e-4
	}
	if o.Mu <= 0 {
		o.Mu = o.Lambda
	}
	if o.LocalCGIters <= 0 {
		o.LocalCGIters = 10
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 1
	}
	return o
}

// SolveDiSCO runs DiSCO (Zhang & Lin, ICML 2015): a distributed inexact
// damped Newton method for self-concordant losses. The Newton system on
// the *global* Hessian is solved by preconditioned conjugate gradient in
// which every iteration allreduces one global Hessian-vector product; the
// preconditioner is the master's local Hessian plus mu*I, applied
// approximately with a short local CG. The resulting communication
// pattern — one allreduce per PCG iteration, so PCGIters+2 rounds per
// Newton step — is exactly the per-iteration cost the paper contrasts
// with Newton-ADMM's single round.
func SolveDiSCO(clusterCfg cluster.Config, ds *datasets.Dataset, opts DiSCOOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{X: make([]float64, ds.Dim())}
	var trace *metrics.Trace

	stats, err := cluster.Run(clusterCfg, func(node *cluster.Node) error {
		local, err := dist.BuildLocal(node, ds, opts.Lambda, true)
		if err != nil {
			return err
		}
		rec := dist.NewRecorder("disco", ds, local, opts.EvalTestAccuracy)
		dim := ds.Dim()
		x := make([]float64, dim)
		g := make([]float64, dim)
		p := make([]float64, dim)

		rec.Observe(node, 0, x)
		for k := 1; k <= opts.Epochs; k++ {
			// Round 1: global gradient (and value, unused here).
			local.GlobalGradient(node, x, g)

			h := local.Problem.HessianAt(x)
			solveDistributedPCG(node, local, h, g, p, opts)

			// Damped Newton step: delta = sqrt(p^T H p) through one more
			// allreduce, step 1/(1+delta).
			hp := make([]float64, dim)
			h.Apply(p, hp)
			node.AllReduceSum(hp)
			delta := math.Sqrt(math.Max(0, linalg.Dot(p, hp)))
			step := 1 / (1 + delta)
			linalg.Axpy(-step, p, x)

			if k%opts.EvalEvery == 0 || k == opts.Epochs {
				obj := rec.Observe(node, k, x)
				if opts.TargetObjective != 0 && obj <= opts.TargetObjective {
					break
				}
			}
		}
		if node.Rank() == 0 {
			copy(res.X, x)
			tr := rec.Trace
			trace = &tr
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Trace = *trace
	}
	finishResult(res)
	return res, nil
}

// solveDistributedPCG solves (sum_i H_i) p = g with PCG. The PCG state
// (p, r, s) is replicated on every rank and advanced identically; each
// iteration costs two communication rounds, exactly DiSCO's pattern:
// an allreduce of the local Hessian-vector products, and a broadcast of
// the master's preconditioned residual (only rank 0 holds the
// preconditioner — its local Hessian plus mu*I, applied with a short
// local CG). p is overwritten.
func solveDistributedPCG(node *cluster.Node, local *dist.Local, h loss.HessianOperator, g, p []float64, opts DiSCOOptions) {
	dim := len(g)
	linalg.Zero(p)
	r := linalg.Clone(g) // residual of H p = g at p = 0
	z := make([]float64, dim)
	s := make([]float64, dim)
	hs := make([]float64, dim)

	// Rank 0's preconditioner; other ranks only participate in the
	// broadcast so the replicated state stays bitwise identical.
	applyPrec := func(rhs, out []float64) {
		if node.Rank() == 0 {
			prec := &dampedOp{h: h, mu: opts.Mu}
			linalg.Zero(out)
			localCG(prec, rhs, out, opts.LocalCGIters)
		}
		node.Bcast(0, out)
	}

	gNorm := linalg.Nrm2(g)
	if gNorm == 0 {
		// Keep the collective schedule aligned across ranks: no rank
		// enters the loop because g is identical everywhere.
		return
	}
	applyPrec(r, z)
	linalg.Copy(s, z)
	rz := linalg.Dot(r, z)
	for it := 0; it < opts.PCGIters; it++ {
		if linalg.Nrm2(r)/gNorm <= opts.PCGTol {
			return
		}
		// Round 1: global Hessian-vector product.
		h.Apply(s, hs)
		node.AllReduceSum(hs)
		curv := linalg.Dot(s, hs)
		if curv <= 0 {
			return
		}
		alpha := rz / curv
		linalg.Axpy(alpha, s, p)
		linalg.Axpy(-alpha, hs, r)
		// Round 2: master preconditions, broadcasts.
		applyPrec(r, z)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		linalg.Waxpby(1, z, beta, s, s)
		rz = rzNew
	}
}

// dampedOp applies h + mu*I.
type dampedOp struct {
	h  loss.HessianOperator
	mu float64
}

func (d *dampedOp) Apply(v, hv []float64) {
	d.h.Apply(v, hv)
	linalg.Axpy(d.mu, v, hv)
}

// localCG is a plain CG loop without communication, used to apply the
// DiSCO preconditioner approximately.
func localCG(op *dampedOp, b, x []float64, iters int) {
	dim := len(b)
	r := linalg.Clone(b)
	p := linalg.Clone(b)
	hp := make([]float64, dim)
	rs := linalg.Dot(r, r)
	for it := 0; it < iters && rs > 0; it++ {
		op.Apply(p, hp)
		curv := linalg.Dot(p, hp)
		if curv <= 0 {
			return
		}
		alpha := rs / curv
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, hp, r)
		rsNew := linalg.Dot(r, r)
		linalg.Waxpby(1, r, rsNew/rs, p, p)
		rs = rsNew
	}
}
