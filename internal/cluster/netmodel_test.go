package cluster

import (
	"math"
	"testing"
	"time"
)

func TestHops(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for n, want := range cases {
		if got := hops(n); got != want {
			t.Fatalf("hops(%d)=%d, want %d", n, got, want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	m := NetworkModel{Latency: 0, Bandwidth: 1e9} // 1 GB/s
	if got := m.transfer(1e9); got != time.Second {
		t.Fatalf("transfer(1GB)=%v, want 1s", got)
	}
	if got := m.transfer(0); got != 0 {
		t.Fatalf("transfer(0)=%v, want 0", got)
	}
	inf := NetworkModel{Bandwidth: math.Inf(1)}
	if got := inf.transfer(1e12); got != 0 {
		t.Fatalf("infinite bandwidth transfer=%v, want 0", got)
	}
}

func TestCollectiveCostsScaleWithRanksAndBytes(t *testing.T) {
	m := Ethernet1G
	// More ranks cannot be cheaper.
	for _, bytes := range []int{0, 1 << 10, 1 << 20} {
		prev := time.Duration(0)
		for _, n := range []int{2, 4, 8, 16} {
			c := m.AllReduceCost(n, bytes)
			if c < prev {
				t.Fatalf("AllReduceCost(%d,%d)=%v < previous %v", n, bytes, c, prev)
			}
			prev = c
		}
	}
	// More bytes cannot be cheaper.
	for _, n := range []int{2, 8} {
		if m.BcastCost(n, 1<<20) < m.BcastCost(n, 1<<10) {
			t.Fatal("BcastCost decreased with payload size")
		}
		if m.GatherCost(n, 1<<20) < m.GatherCost(n, 1<<10) {
			t.Fatal("GatherCost decreased with payload size")
		}
	}
}

func TestSingleRankCostsAreZero(t *testing.T) {
	m := Ethernet10G
	if m.BcastCost(1, 1<<20) != 0 || m.GatherCost(1, 1<<20) != 0 ||
		m.AllReduceCost(1, 1<<20) != 0 || m.BarrierCost(1) != 0 {
		t.Fatal("single-rank collectives must be free")
	}
}

func TestZeroCostModel(t *testing.T) {
	if ZeroCost.AllReduceCost(16, 1<<30) != 0 {
		t.Fatal("ZeroCost model charged time")
	}
}

func TestSlowerNetworksCostMore(t *testing.T) {
	// The ablation-network experiment depends on this ordering.
	bytes := 1 << 20
	n := 8
	ib := InfiniBand100G.AllReduceCost(n, bytes)
	e10 := Ethernet10G.AllReduceCost(n, bytes)
	e1 := Ethernet1G.AllReduceCost(n, bytes)
	wan := WAN.AllReduceCost(n, bytes)
	if !(ib < e10 && e10 < e1 && e1 < wan) {
		t.Fatalf("cost ordering violated: ib=%v e10=%v e1=%v wan=%v", ib, e10, e1, wan)
	}
}

func TestModelString(t *testing.T) {
	s := InfiniBand100G.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
