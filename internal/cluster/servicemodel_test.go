package cluster

import (
	"testing"
	"time"
)

func TestFitServiceTimeRecoversAffineModel(t *testing.T) {
	// Points generated from an exact affine model must be recovered
	// exactly (least squares on noiseless data).
	truth := ServiceTimeModel{Base: 3 * time.Microsecond, PerRow: 2700 * time.Nanosecond}
	var pts []ServicePoint
	for _, n := range []int{1, 8, 32, 64, 128} {
		pts = append(pts, ServicePoint{Rows: n, Elapsed: truth.BatchTime(n)})
	}
	m, err := FitServiceTime("fit", pts)
	if err != nil {
		t.Fatal(err)
	}
	tol := time.Nanosecond * 2
	if d := m.Base - truth.Base; d < -tol || d > tol {
		t.Errorf("Base = %v, want %v", m.Base, truth.Base)
	}
	if d := m.PerRow - truth.PerRow; d < -tol || d > tol {
		t.Errorf("PerRow = %v, want %v", m.PerRow, truth.PerRow)
	}
}

func TestFitServiceTimeRejectsDegenerateInput(t *testing.T) {
	if _, err := FitServiceTime("x", []ServicePoint{{Rows: 1, Elapsed: time.Microsecond}}); err == nil {
		t.Error("single point: want error")
	}
	same := []ServicePoint{{Rows: 4, Elapsed: time.Microsecond}, {Rows: 4, Elapsed: 2 * time.Microsecond}}
	if _, err := FitServiceTime("x", same); err == nil {
		t.Error("identical row counts: want error")
	}
}

func TestFitServiceTimeClampsNegativeIntercept(t *testing.T) {
	// A noisy fit whose intercept would go negative is clamped to zero.
	pts := []ServicePoint{
		{Rows: 1, Elapsed: 0},
		{Rows: 2, Elapsed: 4 * time.Microsecond},
	}
	m, err := FitServiceTime("x", pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Base < 0 || m.PerRow < 0 {
		t.Errorf("clamped fit went negative: %+v", m)
	}
}

func TestServiceTimeModelBatchTime(t *testing.T) {
	m := ServiceTimeModel{Base: 10 * time.Microsecond, PerRow: time.Microsecond}
	if got := m.BatchTime(0); got != 0 {
		t.Errorf("BatchTime(0) = %v, want 0", got)
	}
	if got, want := m.BatchTime(64), 74*time.Microsecond; got != want {
		t.Errorf("BatchTime(64) = %v, want %v", got, want)
	}
	// Amortization: a 64-row batch is cheaper than 64 singletons.
	if batched, singles := m.BatchTime(64), 64*m.BatchTime(1); batched >= singles {
		t.Errorf("batch amortization lost: %v >= %v", batched, singles)
	}
}
