package faultinject

import (
	"errors"
	"testing"
	"time"

	"newtonadmm/internal/cluster"
)

func TestCrashAfterSendExactCount(t *testing.T) {
	ts := cluster.NewInprocGroup(2)
	f := Wrap(ts[0])
	f.CrashAfterSend(2)

	for i := 0; i < 2; i++ {
		if err := f.Send(1, []float64{float64(i)}); err != nil {
			t.Fatalf("send %d should pass the gate: %v", i, err)
		}
	}
	if err := f.Send(1, []float64{2}); !errors.Is(err, cluster.ErrPeerLost) {
		t.Fatalf("third send should trip the crash with ErrPeerLost, got %v", err)
	}
	if got := f.Sends(); got != 2 {
		t.Fatalf("Sends()=%d, want exactly 2 (the tripping call does not count)", got)
	}

	// The trip closed the inner transport: the peer drains the two
	// delivered payloads, then sees the rank as dead.
	for i := 0; i < 2; i++ {
		if _, err := ts[1].Recv(0); err != nil {
			t.Fatalf("queued payload %d lost: %v", i, err)
		}
	}
	if _, err := ts[1].Recv(0); !errors.Is(err, cluster.ErrPeerLost) {
		t.Fatalf("peer should see ErrPeerLost after the crash, got %v", err)
	}
	// And every local call fails too.
	if _, err := f.Recv(1); !errors.Is(err, cluster.ErrPeerLost) {
		t.Fatalf("local recv after crash: got %v, want ErrPeerLost", err)
	}
}

func TestCrashAfterZeroKillsFirstSend(t *testing.T) {
	ts := cluster.NewInprocGroup(2)
	f := Wrap(ts[1])
	f.CrashAfterSend(0)
	if err := f.Send(0, []float64{1}); !errors.Is(err, cluster.ErrPeerLost) {
		t.Fatalf("first send should crash, got %v", err)
	}
	if got := f.Sends(); got != 0 {
		t.Fatalf("Sends()=%d, want 0", got)
	}
}

func TestReviveDisarmsUntrippedFaults(t *testing.T) {
	ts := cluster.NewInprocGroup(2)
	f := Wrap(ts[0])
	f.CrashAfterSend(0)
	f.DropSendsTo(1)
	f.Revive()
	if err := f.Send(1, []float64{7}); err != nil {
		t.Fatalf("revived transport should send cleanly: %v", err)
	}
	if got, err := ts[1].Recv(0); err != nil || got[0] != 7 {
		t.Fatalf("revived send not delivered: %v %v", got, err)
	}
}

func TestReviveDoesNotResurrectTrippedCrash(t *testing.T) {
	ts := cluster.NewInprocGroup(2)
	f := Wrap(ts[0])
	f.Crash()
	f.Revive()
	if err := f.Send(1, []float64{1}); !errors.Is(err, cluster.ErrPeerLost) {
		t.Fatalf("a tripped crash must stay dead, got %v", err)
	}
}

func TestDropSendsToBlackHoles(t *testing.T) {
	const timeout = 100 * time.Millisecond
	ts := cluster.NewInprocGroupTimeout(2, timeout)
	f := Wrap(ts[0])
	f.DropSendsTo(1)
	if err := f.Send(1, []float64{1}); err != nil {
		t.Fatalf("dropped send must report success (black hole), got %v", err)
	}
	if got := f.Sends(); got != 1 {
		t.Fatalf("Sends()=%d, want 1 (dropped sends count)", got)
	}
	// The receiver's only recourse is its deadline — the wedged-peer path
	// a closed connection can never exercise.
	if _, err := ts[1].Recv(0); !errors.Is(err, cluster.ErrCollectiveTimeout) {
		t.Fatalf("receiver of a dropped send: got %v, want ErrCollectiveTimeout", err)
	}
}

func TestHangRecvForDelaysDelivery(t *testing.T) {
	ts := cluster.NewInprocGroup(2)
	if err := ts[1].Send(0, []float64{9}); err != nil {
		t.Fatal(err)
	}
	const hang = 150 * time.Millisecond
	f := Wrap(ts[0])
	f.HangRecvFor(hang)
	start := time.Now()
	got, err := f.Recv(1)
	if err != nil || got[0] != 9 {
		t.Fatalf("hung recv should still deliver: %v %v", got, err)
	}
	if elapsed := time.Since(start); elapsed < hang-10*time.Millisecond {
		t.Fatalf("recv returned after %v, want >= %v", elapsed, hang)
	}
}

func TestDelegation(t *testing.T) {
	ts := cluster.NewInprocGroup(3)
	f := Wrap(ts[2])
	if f.Rank() != 2 || f.Size() != 3 {
		t.Fatalf("Rank/Size not delegated: %d/%d", f.Rank(), f.Size())
	}
	if f.Inner() != ts[2] {
		t.Fatal("Inner() does not return the wrapped transport")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
