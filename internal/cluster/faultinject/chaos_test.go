package faultinject_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/cluster/faultinject"
)

// The chaos matrix: kill or wedge every rank at every collective phase,
// on both transports, and assert the liveness contract — every survivor
// exits with a typed error within the deadline, never a hang, never a
// leaked goroutine. Faults are armed deterministically (exact send
// counts, fixed drop targets), so a failing combination replays
// identically.

const (
	chaosRanks = 3
	// chaosTimeout bounds every blocking wait. Generous relative to the
	// ~0 compute the chaos bodies do, so healthy iterations never trip it
	// even under -race scheduling jitter.
	chaosTimeout = 500 * time.Millisecond
)

type chaosPhase struct {
	name string
	body func(n *cluster.Node)
}

var chaosPhases = []chaosPhase{
	{"barrier", func(n *cluster.Node) { n.Barrier() }},
	{"bcast", func(n *cluster.Node) {
		v := make([]float64, 4)
		if n.Rank() == 0 {
			v = []float64{1, 2, 3, 4}
		}
		n.Bcast(0, v)
	}},
	{"gather", func(n *cluster.Node) { n.Gather(0, []float64{float64(n.Rank()), 1}) }},
	{"scatter", func(n *cluster.Node) {
		var parts [][]float64
		if n.Rank() == 0 {
			parts = [][]float64{{0}, {1}, {2}}
		}
		n.Scatter(0, parts)
	}},
	{"allreduce-sum", func(n *cluster.Node) { v := []float64{1}; n.AllReduceSum(v) }},
	{"allreduce-max", func(n *cluster.Node) { v := []float64{float64(n.Rank())}; n.AllReduceMax(v) }},
}

func runChaos(t *testing.T, useTCP bool, ph chaosPhase, victim int, fault string) {
	t.Helper()
	cfg := cluster.Config{
		Ranks:             chaosRanks,
		UseTCP:            useTCP,
		Network:           cluster.ZeroCost,
		DeviceWorkers:     1,
		CollectiveTimeout: chaosTimeout,
		WrapTransport: func(rank int, tr cluster.Transport) cluster.Transport {
			if rank != victim {
				return tr
			}
			f := faultinject.Wrap(tr)
			switch fault {
			case "crash":
				// Let a few sends through so the crash lands mid-phase,
				// not during the first payload exchange.
				f.CrashAfterSend(3)
			case "hang":
				// Black-hole one peer: the victim stays connected but a
				// survivor's Recv starves — only the deadline can save it.
				// Every collective routes through rank 0's clock sync, so
				// dropping to rank 0 (or rank 1 when 0 is the victim)
				// starves a survivor in every phase.
				to := 0
				if victim == 0 {
					to = 1
				}
				f.DropSendsTo(to)
			}
			return f
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(cfg, func(n *cluster.Node) error {
			for i := 0; i < 20; i++ {
				ph.body(n)
			}
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with an injected fault reported success")
		}
		if !cluster.IsCommError(err) {
			t.Fatalf("failure not typed (IsCommError=false): %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cluster hung: fault=%s victim=%d phase=%s", fault, victim, ph.name)
	}
}

func TestChaosEveryRankEveryPhase(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, useTCP := range []bool{false, true} {
		transport := "inproc"
		if useTCP {
			transport = "tcp"
		}
		for _, ph := range chaosPhases {
			for victim := 0; victim < chaosRanks; victim++ {
				for _, fault := range []string{"crash", "hang"} {
					name := fmt.Sprintf("%s/%s/%s-rank%d", transport, ph.name, fault, victim)
					t.Run(name, func(t *testing.T) {
						runChaos(t, useTCP, ph, victim, fault)
					})
				}
			}
		}
	}
	// Liveness half two: after the whole matrix, every accept/read loop
	// and rank goroutine must have drained.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across chaos matrix: before=%d after=%d", before, runtime.NumGoroutine())
}
