// Package faultinject wraps the training cluster's Transport seam with
// scriptable, deterministic faults — crash-after-exact-send-count,
// black-holed sends (a hung-but-connected rank), delayed receives — so
// the chaos suite can kill or wedge any rank at any collective phase and
// assert the group's liveness invariants. It mirrors router/faultinject:
// faults arm from explicit test calls and trip on exact call counts,
// never on timers or randomness, so a failing chaos run replays
// identically. It replaces the ad-hoc inproc-only InjectSendFailure hook
// the transport used to carry.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"newtonadmm/internal/cluster"
)

// FaultTransport wraps a cluster.Transport and injects faults at the
// call boundary. Two fault families model the two real failure modes:
//
//   - Crash (CrashAfterSend): the rank dies. The trip closes the inner
//     transport — exactly what process death does to its sockets — so
//     peers blocked on Recv(from=this rank) fail promptly with
//     ErrPeerLost, and every local call fails with an injected
//     ErrPeerLost error.
//   - Wedge (DropSendsTo, HangRecvFor): the rank stays connected but
//     stops making progress. Nothing closes, so peers can only recover
//     through the collective deadline (ErrCollectiveTimeout) — the case
//     a closed connection can never surface.
//
// Safe for concurrent use. Install via cluster.Config.WrapTransport.
type FaultTransport struct {
	inner cluster.Transport

	mu             sync.Mutex
	crashed        bool
	crashAfterSend int64 // sends still allowed before the armed crash; -1 disarmed
	sends          int64
	dropTo         map[int]bool
	hangRecvUntil  time.Time
}

// Wrap builds a FaultTransport over inner with no faults armed.
func Wrap(inner cluster.Transport) *FaultTransport {
	return &FaultTransport{inner: inner, crashAfterSend: -1}
}

// Inner returns the wrapped transport.
func (f *FaultTransport) Inner() cluster.Transport { return f.inner }

// Rank implements cluster.Transport.
func (f *FaultTransport) Rank() int { return f.inner.Rank() }

// Size implements cluster.Transport.
func (f *FaultTransport) Size() int { return f.inner.Size() }

// Sends reports how many Send calls have entered the fault gate
// (including dropped ones).
func (f *FaultTransport) Sends() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends
}

// CrashAfterSend arms a deterministic crash: the next n Send calls pass
// the gate, and the one after trips the crash. CrashAfterSend(0)
// crashes on the very next send. Tripping closes the inner transport
// (poisoning peers like a dead process); see Crash.
func (f *FaultTransport) CrashAfterSend(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfterSend = int64(n)
}

// Crash kills the rank now: the inner transport is closed and every
// subsequent local call fails with an ErrPeerLost-wrapped injected
// error.
func (f *FaultTransport) Crash() {
	f.mu.Lock()
	already := f.crashed
	f.crashed = true
	f.crashAfterSend = -1
	f.mu.Unlock()
	if !already {
		f.inner.Close()
	}
}

// DropSendsTo black-holes every subsequent send to rank `to`: the send
// reports success but nothing is delivered — the wedged-peer scenario
// where the receiver's only recourse is its deadline.
func (f *FaultTransport) DropSendsTo(to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropTo == nil {
		f.dropTo = make(map[int]bool)
	}
	f.dropTo[to] = true
}

// HangRecvFor makes Recv calls entering within the next d first wait
// out the window before proceeding — a rank stalled on a slow disk or a
// GC pause, visible to its peers as delayed sends.
func (f *FaultTransport) HangRecvFor(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hangRecvUntil = time.Now().Add(d)
}

// Revive clears all armed-but-untripped faults (an armed crash, drops,
// hangs). A tripped crash has already closed the inner transport and
// stays dead — ranks rejoin through a fresh Run, not resurrection.
func (f *FaultTransport) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfterSend = -1
	f.dropTo = nil
	f.hangRecvUntil = time.Time{}
}

func (f *FaultTransport) crashErr(op string) error {
	return fmt.Errorf("faultinject: injected crash (%s on rank %d): %w", op, f.inner.Rank(), cluster.ErrPeerLost)
}

// Send implements cluster.Transport through the fault gate.
func (f *FaultTransport) Send(to int, data []float64) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return f.crashErr("send")
	}
	if f.crashAfterSend >= 0 && f.sends >= f.crashAfterSend {
		f.crashed = true
		f.crashAfterSend = -1
		f.mu.Unlock()
		f.inner.Close()
		return f.crashErr("send")
	}
	f.sends++
	if f.dropTo[to] {
		f.mu.Unlock()
		return nil // black hole: reported delivered, never arrives
	}
	f.mu.Unlock()
	return f.inner.Send(to, data)
}

// Recv implements cluster.Transport through the fault gate.
func (f *FaultTransport) Recv(from int) ([]float64, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, f.crashErr("recv")
	}
	until := f.hangRecvUntil
	f.mu.Unlock()
	if now := time.Now(); now.Before(until) {
		time.Sleep(until.Sub(now))
	}
	return f.inner.Recv(from)
}

// Abort always reaches the inner transport: the coordinated-abort
// broadcast is the runtime's recovery path, not a fault surface.
func (f *FaultTransport) Abort() { f.inner.Abort() }

// Close always reaches the inner transport: resource cleanup is not a
// fault surface (a tripped crash has already closed it; Close is
// idempotent).
func (f *FaultTransport) Close() error { return f.inner.Close() }
