package cluster

import (
	"fmt"
	"sync"
)

// Transport delivers float64 payloads between ranks. Messages between a
// fixed (from, to) pair are delivered in order; the collectives built on
// top only rely on pairwise ordering. Implementations must be safe for
// concurrent use by their owning rank.
type Transport interface {
	// Rank is this endpoint's rank in [0, Size).
	Rank() int
	// Size is the number of ranks.
	Size() int
	// Send delivers a copy of data to rank `to`.
	Send(to int, data []float64) error
	// Recv blocks until the next payload from rank `from` arrives.
	Recv(from int) ([]float64, error)
	// Close releases transport resources.
	Close() error
}

// inprocHub connects n in-process endpoints with buffered channels, one
// per directed pair.
type inprocHub struct {
	n     int
	pipes [][]chan []float64 // pipes[from][to]
}

// NewInprocGroup returns n connected in-process transports, one per rank.
func NewInprocGroup(n int) []Transport {
	if n <= 0 {
		panic("cluster: group size must be positive")
	}
	hub := &inprocHub{n: n, pipes: make([][]chan []float64, n)}
	for i := 0; i < n; i++ {
		hub.pipes[i] = make([]chan []float64, n)
		for j := 0; j < n; j++ {
			hub.pipes[i][j] = make(chan []float64, 8)
		}
	}
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		ts[i] = &inprocEndpoint{hub: hub, rank: i, failAfterSend: -1}
	}
	return ts
}

type inprocEndpoint struct {
	hub  *inprocHub
	rank int

	mu     sync.Mutex
	closed bool

	// fault injection (tests): fail the k-th send, or all sends to a rank
	failSendsTo   map[int]bool
	failAfterSend int // fail every send once the counter exceeds this; <0 disables
	sends         int
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.hub.n }

func (e *inprocEndpoint) Send(to int, data []float64) error {
	if to < 0 || to >= e.hub.n {
		return fmt.Errorf("cluster: send to invalid rank %d (size %d)", to, e.hub.n)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("cluster: rank %d transport closed", e.rank)
	}
	e.sends++
	if e.failSendsTo[to] || (e.failAfterSend >= 0 && e.sends > e.failAfterSend) {
		e.mu.Unlock()
		return fmt.Errorf("cluster: injected send failure %d->%d", e.rank, to)
	}
	e.mu.Unlock()
	cp := make([]float64, len(data))
	copy(cp, data)
	e.hub.pipes[e.rank][to] <- cp
	return nil
}

func (e *inprocEndpoint) Recv(from int) ([]float64, error) {
	if from < 0 || from >= e.hub.n {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d (size %d)", from, e.hub.n)
	}
	data, ok := <-e.hub.pipes[from][e.rank]
	if !ok {
		return nil, fmt.Errorf("cluster: channel from %d to %d closed", from, e.rank)
	}
	return data, nil
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	// Poison outgoing pipes so peers blocked on Recv(from=this rank) fail
	// instead of hanging when this rank dies mid-protocol.
	for to := range e.hub.pipes[e.rank] {
		close(e.hub.pipes[e.rank][to])
	}
	return nil
}

// InjectSendFailure makes every subsequent send from this endpoint to rank
// `to` fail. Test hook; no-op on non-inproc transports.
func InjectSendFailure(t Transport, to int) {
	if e, ok := t.(*inprocEndpoint); ok {
		e.mu.Lock()
		if e.failSendsTo == nil {
			e.failSendsTo = make(map[int]bool)
		}
		e.failSendsTo[to] = true
		e.mu.Unlock()
	}
}
