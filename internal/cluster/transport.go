package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Typed communication failures. Every transport error surfaced by a
// collective wraps exactly one of these, so callers (and the restart
// policy) can distinguish a dead peer from a deadline from a coordinated
// abort with errors.Is instead of string matching.
var (
	// ErrPeerLost means a peer's connection or pipe closed: the rank on
	// the other end died (or closed its transport) mid-protocol.
	ErrPeerLost = errors.New("cluster: peer lost")
	// ErrCollectiveTimeout means a blocking Recv (or a stalled Send)
	// exceeded the configured CollectiveTimeout: the peer is still
	// connected but not making progress — the hung-rank case a closed
	// connection can never surface.
	ErrCollectiveTimeout = errors.New("cluster: collective timeout")
	// ErrAborted means another rank's collective failed and broadcast an
	// abort: this rank's pending operation was poisoned so it could exit
	// promptly instead of waiting for its own deadline.
	ErrAborted = errors.New("cluster: collective aborted")
)

// IsCommError reports whether err (or any error in its tree) is one of
// the typed transport failures. Restart policies use it to distinguish
// infrastructure failures (retryable) from algorithmic errors (not).
func IsCommError(err error) bool {
	return errors.Is(err, ErrPeerLost) ||
		errors.Is(err, ErrCollectiveTimeout) ||
		errors.Is(err, ErrAborted)
}

// Transport delivers float64 payloads between ranks. Messages between a
// fixed (from, to) pair are delivered in order; the collectives built on
// top only rely on pairwise ordering. Implementations must be safe for
// concurrent use by their owning rank.
type Transport interface {
	// Rank is this endpoint's rank in [0, Size).
	Rank() int
	// Size is the number of ranks.
	Size() int
	// Send delivers a copy of data to rank `to`.
	Send(to int, data []float64) error
	// Recv blocks until the next payload from rank `from` arrives, the
	// configured receive deadline expires (ErrCollectiveTimeout), or an
	// abort is broadcast (ErrAborted).
	Recv(from int) ([]float64, error)
	// Abort broadcasts a poison signal: every rank's pending and future
	// Recv fails promptly with ErrAborted instead of blocking until its
	// deadline. It is called by the runtime when any rank's collective
	// fails, so survivors never hang on a rank that already gave up.
	Abort()
	// Close releases transport resources and unblocks pending Recvs.
	Close() error
}

// inprocHub connects n in-process endpoints with buffered channels, one
// per directed pair, plus a hub-wide abort channel shared by the group.
type inprocHub struct {
	n         int
	pipes     [][]chan []float64 // pipes[from][to]
	abort     chan struct{}
	abortOnce sync.Once
}

// NewInprocGroup returns n connected in-process transports, one per
// rank, with no receive deadline (Recv blocks until data or abort).
func NewInprocGroup(n int) []Transport {
	return NewInprocGroupTimeout(n, 0)
}

// NewInprocGroupTimeout is NewInprocGroup with a receive deadline:
// with timeout > 0 a Recv (or a Send into a full pipe) that waits longer
// fails with ErrCollectiveTimeout.
func NewInprocGroupTimeout(n int, timeout time.Duration) []Transport {
	if n <= 0 {
		panic("cluster: group size must be positive")
	}
	hub := &inprocHub{n: n, pipes: make([][]chan []float64, n), abort: make(chan struct{})}
	for i := 0; i < n; i++ {
		hub.pipes[i] = make([]chan []float64, n)
		for j := 0; j < n; j++ {
			hub.pipes[i][j] = make(chan []float64, 8)
		}
	}
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		ts[i] = &inprocEndpoint{hub: hub, rank: i, timeout: timeout}
	}
	return ts
}

type inprocEndpoint struct {
	hub     *inprocHub
	rank    int
	timeout time.Duration

	mu     sync.Mutex
	closed bool
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.hub.n }

// Abort poisons the whole group: the hub's abort channel is shared
// memory, so closing it is the in-process analogue of the TCP abort
// broadcast frame.
func (e *inprocEndpoint) Abort() {
	e.hub.abortOnce.Do(func() { close(e.hub.abort) })
}

// timerC returns a timeout channel (nil when deadlines are disabled; a
// nil channel never fires in a select).
func timerC(d time.Duration) (<-chan time.Time, *time.Timer) {
	if d <= 0 {
		return nil, nil
	}
	t := time.NewTimer(d)
	return t.C, t
}

func (e *inprocEndpoint) Send(to int, data []float64) error {
	if to < 0 || to >= e.hub.n {
		return fmt.Errorf("cluster: send to invalid rank %d (size %d)", to, e.hub.n)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("cluster: rank %d transport closed: %w", e.rank, ErrPeerLost)
	}
	e.mu.Unlock()
	cp := make([]float64, len(data))
	copy(cp, data)
	select { // fast path: pipe has room
	case e.hub.pipes[e.rank][to] <- cp:
		return nil
	default:
	}
	tc, timer := timerC(e.timeout)
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case e.hub.pipes[e.rank][to] <- cp:
		return nil
	case <-e.hub.abort:
		return fmt.Errorf("cluster: rank %d send to %d: %w", e.rank, to, ErrAborted)
	case <-tc:
		return fmt.Errorf("cluster: rank %d send to %d stalled after %v: %w", e.rank, to, e.timeout, ErrCollectiveTimeout)
	}
}

func (e *inprocEndpoint) Recv(from int) ([]float64, error) {
	if from < 0 || from >= e.hub.n {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d (size %d)", from, e.hub.n)
	}
	pipe := e.hub.pipes[from][e.rank]
	select { // fast path: data already queued wins over abort/deadline
	case data, ok := <-pipe:
		if !ok {
			return nil, fmt.Errorf("cluster: rank %d lost rank %d: %w", e.rank, from, ErrPeerLost)
		}
		return data, nil
	default:
	}
	tc, timer := timerC(e.timeout)
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case data, ok := <-pipe:
		if !ok {
			return nil, fmt.Errorf("cluster: rank %d lost rank %d: %w", e.rank, from, ErrPeerLost)
		}
		return data, nil
	case <-e.hub.abort:
		return nil, fmt.Errorf("cluster: rank %d recv from %d: %w", e.rank, from, ErrAborted)
	case <-tc:
		return nil, fmt.Errorf("cluster: rank %d recv from %d exceeded %v: %w", e.rank, from, e.timeout, ErrCollectiveTimeout)
	}
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	// Poison outgoing pipes so peers blocked on Recv(from=this rank) fail
	// instead of hanging when this rank dies mid-protocol.
	for to := range e.hub.pipes[e.rank] {
		close(e.hub.pipes[e.rank][to])
	}
	return nil
}
