package cluster

import (
	"fmt"
	"time"
)

// ServiceTimeModel is a calibrated affine model of a replica's batch
// service time: scoring a batch of n rows costs Base + n*PerRow. The
// affine shape is what the serving measurements in PERF.md show — a
// fixed launch/bookkeeping overhead amortized over rows whose per-row
// kernel cost is constant for a given model shape. The fleet simulator
// uses it in place of wall-clock execution, the same way the training
// side's NetworkModel replaces a measured interconnect.
type ServiceTimeModel struct {
	Name string
	// Base is the per-batch fixed cost (launch, staging, bookkeeping).
	Base time.Duration
	// PerRow is the marginal cost of one additional row.
	PerRow time.Duration
}

// Calibrated presets, fit from the PERF.md serving matrix (single
// hardware thread; see "Serving performance"):
//
//   - MNISTServiceModel: the MNIST-shaped model (784 features, 10
//     classes). BenchmarkServePredictorBatch64 measures 171 µs for a
//     fused 64-row launch (~2.7 µs/row) and the batcher round trip adds
//     ~3 µs of per-batch bookkeeping.
//   - HIGGSServiceModel: the HIGGS-shaped model (28 features, binary).
//     The batch-1 pipeline sustains 1.31 M req/s (~0.7 µs/row,
//     near-zero fixed cost at this width).
var (
	MNISTServiceModel = ServiceTimeModel{Name: "mnist-784f", Base: 3 * time.Microsecond, PerRow: 2700 * time.Nanosecond}
	HIGGSServiceModel = ServiceTimeModel{Name: "higgs-28f", Base: 1 * time.Microsecond, PerRow: 700 * time.Nanosecond}
)

// BatchTime returns the modeled service time of one n-row batch.
func (m ServiceTimeModel) BatchTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.Base + time.Duration(n)*m.PerRow
}

func (m ServiceTimeModel) String() string {
	return fmt.Sprintf("%s (base %v + %v/row)", m.Name, m.Base, m.PerRow)
}

// ServicePoint is one calibration measurement: a batch of Rows took
// Elapsed to score (a PERF.md table row or a bench run).
type ServicePoint struct {
	Rows    int
	Elapsed time.Duration
}

// FitServiceTime least-squares-fits an affine service-time model to
// measured (rows, elapsed) points — the calibration step that turns a
// PERF.md latency matrix into a simulator replica model. At least two
// points with distinct row counts are required; a fit with a negative
// intercept or slope is clamped to zero rather than rejected (noisy
// measurements near the origin are common).
func FitServiceTime(name string, points []ServicePoint) (ServiceTimeModel, error) {
	if len(points) < 2 {
		return ServiceTimeModel{}, fmt.Errorf("cluster: service-time fit needs >= 2 points, got %d", len(points))
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x, y := float64(p.Rows), float64(p.Elapsed)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(points))
	det := n*sxx - sx*sx
	if det == 0 {
		return ServiceTimeModel{}, fmt.Errorf("cluster: service-time fit needs >= 2 distinct row counts")
	}
	slope := (n*sxy - sx*sy) / det
	intercept := (sy - slope*sx) / n
	if slope < 0 {
		slope = 0
	}
	if intercept < 0 {
		intercept = 0
	}
	return ServiceTimeModel{
		Name:   name,
		Base:   time.Duration(intercept),
		PerRow: time.Duration(slope),
	}, nil
}
