package cluster

import (
	"fmt"
	"math"
	"time"
)

// NetworkModel is a latency/bandwidth model of the interconnect.
type NetworkModel struct {
	Name string
	// Latency is the per-hop message latency.
	Latency time.Duration
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
}

// Preset interconnects. InfiniBand100G approximates the paper's testbed.
var (
	InfiniBand100G = NetworkModel{Name: "infiniband-100g", Latency: 2 * time.Microsecond, Bandwidth: 100e9 / 8}
	Ethernet10G    = NetworkModel{Name: "ethernet-10g", Latency: 50 * time.Microsecond, Bandwidth: 10e9 / 8}
	Ethernet1G     = NetworkModel{Name: "ethernet-1g", Latency: 200 * time.Microsecond, Bandwidth: 1e9 / 8}
	WAN            = NetworkModel{Name: "wan", Latency: 20 * time.Millisecond, Bandwidth: 100e6 / 8}
	ZeroCost       = NetworkModel{Name: "zero-cost", Latency: 0, Bandwidth: math.Inf(1)}
)

// hops returns the tree depth for n ranks: ceil(log2(n)).
func hops(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func (m NetworkModel) transfer(bytes int) time.Duration {
	if bytes <= 0 || math.IsInf(m.Bandwidth, 1) || m.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.Bandwidth * float64(time.Second))
}

// BcastCost models a binomial-tree broadcast of one payload to n ranks:
// the payload traverses ceil(log2 n) levels.
func (m NetworkModel) BcastCost(n, bytes int) time.Duration {
	h := hops(n)
	return time.Duration(h)*m.Latency + time.Duration(h)*m.transfer(bytes)
}

// GatherCost models a tree gather of one payload per rank toward the root:
// tree latency plus the (n-1) payloads that must cross the root link.
func (m NetworkModel) GatherCost(n, bytes int) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(hops(n))*m.Latency + m.transfer((n-1)*bytes)
}

// AllReduceCost models reduce-then-broadcast trees: twice the tree latency
// plus two traversals of the payload.
func (m NetworkModel) AllReduceCost(n, bytes int) time.Duration {
	if n <= 1 {
		return 0
	}
	return 2*time.Duration(hops(n))*m.Latency + 2*m.transfer(bytes)
}

// BarrierCost models an empty allreduce.
func (m NetworkModel) BarrierCost(n int) time.Duration {
	return m.AllReduceCost(n, 0)
}

func (m NetworkModel) String() string {
	return fmt.Sprintf("%s (lat %v, bw %.1f Gbps)", m.Name, m.Latency, m.Bandwidth*8/1e9)
}
