package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// Frame-count sentinels. Regular data frames carry count <= maxFrameVecs;
// the two top values are reserved control frames.
const (
	// helloCount binds a connection to its sending rank before any
	// payload flows.
	helloCount = 0xFFFFFFFF
	// abortCount is the coordinated-abort broadcast: the sender's
	// collective failed, so the receiver must poison its own queues and
	// fail pending Recvs promptly instead of waiting for a deadline.
	abortCount = 0xFFFFFFFE
	// maxFrameVecs bounds a data frame's element count (1 GiB of
	// float64s) so a corrupt header cannot drive a giant allocation.
	maxFrameVecs = 1 << 27
	// defaultDialTimeout bounds connection establishment when no
	// collective timeout is configured, so a dead address fails fast
	// instead of waiting out the kernel's connect timeout.
	defaultDialTimeout = 10 * time.Second
)

// tcpEndpoint is a Transport over real TCP sockets: each rank listens on
// its own port, outbound connections are dialed eagerly (full mesh) with a
// hello frame, and data frames carry
// [from uint32][count uint32][count * float64 little-endian].
// Incoming frames are demultiplexed into per-sender queues so Recv(from)
// preserves pairwise ordering. When a peer disconnects, its queue is
// closed so blocked receivers fail instead of hanging — giving the SPMD
// runtime liveness when a rank dies mid-protocol. A hung-but-connected
// peer is covered by the receive deadline instead, and a coordinated
// abort frame poisons the whole endpoint at once.
type tcpEndpoint struct {
	rank, size int
	addrs      []string
	listener   net.Listener
	timeout    time.Duration // recv deadline, write deadline, dial timeout

	mu      sync.Mutex
	conns   map[int]net.Conn // cached outbound connections
	inbound []net.Conn       // accepted connections (closed on teardown)

	queues    []chan []float64
	queueOnce []sync.Once
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	aborted   chan struct{}
	abortOnce sync.Once
	wg        sync.WaitGroup
}

// NewTCPGroup creates n ranks listening on consecutive loopback ports
// starting at basePort, with no receive deadline. With basePort <= 0 the
// kernel picks free ports. All ranks live in the calling process (each
// typically driven by its own goroutine), but every payload crosses a
// real TCP socket.
func NewTCPGroup(n, basePort int) ([]Transport, error) {
	return NewTCPGroupTimeout(n, basePort, 0)
}

// NewTCPGroupTimeout is NewTCPGroup with a deadline: with timeout > 0,
// Recv fails with ErrCollectiveTimeout after waiting that long, frame
// writes carry a write deadline (a stalled peer cannot wedge Send), and
// dials are bounded by the same timeout.
func NewTCPGroupTimeout(n, basePort int, timeout time.Duration) ([]Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: group size must be positive")
	}
	eps := make([]*tcpEndpoint, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := "127.0.0.1:0"
		if basePort > 0 {
			addr = fmt.Sprintf("127.0.0.1:%d", basePort+i)
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			for j := 0; j < i; j++ {
				eps[j].Close()
			}
			return nil, fmt.Errorf("cluster: rank %d listen: %w", i, err)
		}
		addrs[i] = l.Addr().String()
		ep := &tcpEndpoint{
			rank: i, size: n,
			listener:  l,
			timeout:   timeout,
			conns:     make(map[int]net.Conn),
			queues:    make([]chan []float64, n),
			queueOnce: make([]sync.Once, n),
			closed:    make(chan struct{}),
			aborted:   make(chan struct{}),
		}
		for j := 0; j < n; j++ {
			ep.queues[j] = make(chan []float64, 8)
		}
		eps[i] = ep
	}
	for _, ep := range eps {
		ep.addrs = addrs
		ep.wg.Add(1)
		go ep.acceptLoop()
	}
	// Eagerly build the full mesh so a rank that dies before sending still
	// has live connections whose teardown unblocks its peers.
	for _, ep := range eps {
		for to := 0; to < n; to++ {
			if to == ep.rank {
				continue
			}
			if err := ep.hello(to); err != nil {
				for _, e := range eps {
					e.Close()
				}
				return nil, err
			}
		}
	}
	out := make([]Transport, n)
	for i, ep := range eps {
		out[i] = ep
	}
	return out, nil
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		e.inbound = append(e.inbound, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// closeQueue marks the sender as disconnected exactly once.
func (e *tcpEndpoint) closeQueue(sender int) {
	e.queueOnce[sender].Do(func() { close(e.queues[sender]) })
}

// abortLocal poisons this endpoint: pending and future Recvs fail with
// ErrAborted.
func (e *tcpEndpoint) abortLocal() {
	e.abortOnce.Do(func() { close(e.aborted) })
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	sender := -1
	defer func() {
		if sender >= 0 {
			e.closeQueue(sender)
		}
	}()
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		from := int(binary.LittleEndian.Uint32(header[0:4]))
		count := binary.LittleEndian.Uint32(header[4:8])
		if from < 0 || from >= e.size {
			return
		}
		if sender == -1 {
			sender = from
		} else if from != sender {
			return // protocol violation: one sender per connection
		}
		switch count {
		case helloCount:
			continue
		case abortCount:
			e.abortLocal()
			continue
		}
		if count > maxFrameVecs {
			return // protocol violation: absurd frame size
		}
		buf := make([]byte, 8*int(count))
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		data := make([]float64, count)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		select {
		case e.queues[from] <- data:
		case <-e.closed:
			return
		}
	}
}

func (e *tcpEndpoint) dialTimeout() time.Duration {
	if e.timeout > 0 {
		return e.timeout
	}
	return defaultDialTimeout
}

func (e *tcpEndpoint) dial(to int) (net.Conn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[to]; ok {
		return c, nil
	}
	c, err := net.DialTimeout("tcp", e.addrs[to], e.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("cluster: rank %d dial %d: %w (%v)", e.rank, to, ErrPeerLost, err)
	}
	e.conns[to] = c
	return c, nil
}

// write sends buf on the shared conn under e.mu with a write deadline,
// so a stalled peer whose TCP window is full cannot wedge the caller
// while it holds the lock.
func (e *tcpEndpoint) write(conn net.Conn, buf []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(e.timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// control builds the 8-byte frame for a sentinel count.
func (e *tcpEndpoint) control(count uint32) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.rank))
	binary.LittleEndian.PutUint32(buf[4:8], count)
	return buf[:]
}

func (e *tcpEndpoint) hello(to int) error {
	conn, err := e.dial(to)
	if err != nil {
		return err
	}
	if err := e.write(conn, e.control(helloCount)); err != nil {
		return fmt.Errorf("cluster: rank %d hello to %d: %w (%v)", e.rank, to, ErrPeerLost, err)
	}
	return nil
}

// Abort broadcasts an abort frame to every peer (best effort, bounded by
// the write deadline) and poisons the local endpoint, so every rank's
// blocked Recv — here and remote — exits promptly with ErrAborted.
func (e *tcpEndpoint) Abort() {
	frame := e.control(abortCount)
	for to := 0; to < e.size; to++ {
		if to == e.rank {
			continue
		}
		e.mu.Lock()
		conn, ok := e.conns[to]
		e.mu.Unlock()
		if !ok {
			continue
		}
		_ = e.write(conn, frame)
	}
	e.abortLocal()
}

func (e *tcpEndpoint) Send(to int, data []float64) error {
	if to < 0 || to >= e.size {
		return fmt.Errorf("cluster: send to invalid rank %d (size %d)", to, e.size)
	}
	select {
	case <-e.closed:
		return fmt.Errorf("cluster: rank %d transport closed: %w", e.rank, ErrPeerLost)
	default:
	}
	conn, err := e.dial(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+8*len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.rank))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	if err := e.write(conn, buf); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return fmt.Errorf("cluster: rank %d send to %d stalled after %v: %w", e.rank, to, e.timeout, ErrCollectiveTimeout)
		}
		return fmt.Errorf("cluster: rank %d send to %d: %w (%v)", e.rank, to, ErrPeerLost, err)
	}
	return nil
}

func (e *tcpEndpoint) Recv(from int) ([]float64, error) {
	if from < 0 || from >= e.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d (size %d)", from, e.size)
	}
	select { // fast path: data already queued wins over abort/deadline
	case data, ok := <-e.queues[from]:
		if !ok {
			return nil, fmt.Errorf("cluster: rank %d lost connection from rank %d: %w", e.rank, from, ErrPeerLost)
		}
		return data, nil
	default:
	}
	tc, timer := timerC(e.timeout)
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case data, ok := <-e.queues[from]:
		if !ok {
			return nil, fmt.Errorf("cluster: rank %d lost connection from rank %d: %w", e.rank, from, ErrPeerLost)
		}
		return data, nil
	case <-e.aborted:
		return nil, fmt.Errorf("cluster: rank %d recv from %d: %w", e.rank, from, ErrAborted)
	case <-e.closed:
		return nil, fmt.Errorf("cluster: rank %d transport closed: %w", e.rank, ErrPeerLost)
	case <-tc:
		return nil, fmt.Errorf("cluster: rank %d recv from %d exceeded %v: %w", e.rank, from, e.timeout, ErrCollectiveTimeout)
	}
}

// Close tears the endpoint down and drains every goroutine it started:
// the listener and all connections (outbound and inbound) are closed,
// pending Recvs unblock with ErrPeerLost, and Close returns only after
// the accept and read loops have exited — no leaks, asserted by the
// teardown tests.
func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.closed)
		e.closeErr = e.listener.Close()
		e.mu.Lock()
		for _, c := range e.conns {
			c.Close()
		}
		for _, c := range e.inbound {
			c.Close()
		}
		e.mu.Unlock()
		e.wg.Wait()
	})
	return e.closeErr
}
