package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

// helloCount is the frame-count sentinel for the connection handshake that
// binds a connection to its sending rank before any payload flows.
const helloCount = 0xFFFFFFFF

// tcpEndpoint is a Transport over real TCP sockets: each rank listens on
// its own port, outbound connections are dialed eagerly (full mesh) with a
// hello frame, and data frames carry
// [from uint32][count uint32][count * float64 little-endian].
// Incoming frames are demultiplexed into per-sender queues so Recv(from)
// preserves pairwise ordering. When a peer disconnects, its queue is
// closed so blocked receivers fail instead of hanging — giving the SPMD
// runtime liveness when a rank dies mid-protocol.
type tcpEndpoint struct {
	rank, size int
	addrs      []string
	listener   net.Listener

	mu    sync.Mutex
	conns map[int]net.Conn // cached outbound connections

	queues    []chan []float64
	queueOnce []sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewTCPGroup creates n ranks listening on consecutive loopback ports
// starting at basePort. With basePort <= 0 the kernel picks free ports.
// All ranks live in the calling process (each typically driven by its own
// goroutine), but every payload crosses a real TCP socket.
func NewTCPGroup(n, basePort int) ([]Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: group size must be positive")
	}
	eps := make([]*tcpEndpoint, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := "127.0.0.1:0"
		if basePort > 0 {
			addr = fmt.Sprintf("127.0.0.1:%d", basePort+i)
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			for j := 0; j < i; j++ {
				eps[j].Close()
			}
			return nil, fmt.Errorf("cluster: rank %d listen: %w", i, err)
		}
		addrs[i] = l.Addr().String()
		ep := &tcpEndpoint{
			rank: i, size: n,
			listener:  l,
			conns:     make(map[int]net.Conn),
			queues:    make([]chan []float64, n),
			queueOnce: make([]sync.Once, n),
			closed:    make(chan struct{}),
		}
		for j := 0; j < n; j++ {
			ep.queues[j] = make(chan []float64, 8)
		}
		eps[i] = ep
	}
	for i, ep := range eps {
		ep.addrs = addrs
		ep.wg.Add(1)
		go ep.acceptLoop()
		_ = i
	}
	// Eagerly build the full mesh so a rank that dies before sending still
	// has live connections whose teardown unblocks its peers.
	for _, ep := range eps {
		for to := 0; to < n; to++ {
			if to == ep.rank {
				continue
			}
			if err := ep.hello(to); err != nil {
				for _, e := range eps {
					e.Close()
				}
				return nil, err
			}
		}
	}
	out := make([]Transport, n)
	for i, ep := range eps {
		out[i] = ep
	}
	return out, nil
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// closeQueue marks the sender as disconnected exactly once.
func (e *tcpEndpoint) closeQueue(sender int) {
	e.queueOnce[sender].Do(func() { close(e.queues[sender]) })
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	sender := -1
	defer func() {
		if sender >= 0 {
			e.closeQueue(sender)
		}
	}()
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		from := int(binary.LittleEndian.Uint32(header[0:4]))
		count := binary.LittleEndian.Uint32(header[4:8])
		if from < 0 || from >= e.size {
			return
		}
		if sender == -1 {
			sender = from
		} else if from != sender {
			return // protocol violation: one sender per connection
		}
		if count == helloCount {
			continue
		}
		buf := make([]byte, 8*int(count))
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		data := make([]float64, count)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		select {
		case e.queues[from] <- data:
		case <-e.closed:
			return
		}
	}
}

func (e *tcpEndpoint) dial(to int) (net.Conn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[to]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", e.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("cluster: rank %d dial %d: %w", e.rank, to, err)
	}
	e.conns[to] = c
	return c, nil
}

func (e *tcpEndpoint) hello(to int) error {
	conn, err := e.dial(to)
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.rank))
	binary.LittleEndian.PutUint32(buf[4:8], helloCount)
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := conn.Write(buf[:]); err != nil {
		return fmt.Errorf("cluster: rank %d hello to %d: %w", e.rank, to, err)
	}
	return nil
}

func (e *tcpEndpoint) Send(to int, data []float64) error {
	if to < 0 || to >= e.size {
		return fmt.Errorf("cluster: send to invalid rank %d (size %d)", to, e.size)
	}
	select {
	case <-e.closed:
		return fmt.Errorf("cluster: rank %d transport closed", e.rank)
	default:
	}
	conn, err := e.dial(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+8*len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.rank))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	e.mu.Lock()
	defer e.mu.Unlock() // serialize writes on the shared conn
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("cluster: rank %d send to %d: %w", e.rank, to, err)
	}
	return nil
}

func (e *tcpEndpoint) Recv(from int) ([]float64, error) {
	if from < 0 || from >= e.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d (size %d)", from, e.size)
	}
	data, ok := <-e.queues[from]
	if !ok {
		return nil, fmt.Errorf("cluster: rank %d lost connection from rank %d", e.rank, from)
	}
	return data, nil
}

func (e *tcpEndpoint) Close() error {
	select {
	case <-e.closed:
		return nil
	default:
	}
	close(e.closed)
	err := e.listener.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	return err
}
