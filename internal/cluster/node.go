package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
)

// Config describes a simulated cluster.
type Config struct {
	// Ranks is the number of compute nodes; must be >= 1.
	Ranks int
	// Network is the interconnect cost model; the zero value selects
	// the paper's InfiniBand100G.
	Network NetworkModel
	// UseTCP selects the real TCP loopback transport instead of
	// in-process channels.
	UseTCP bool
	// BasePort is the first TCP port (0 lets the kernel choose).
	BasePort int
	// DeviceWorkers is the accelerator worker-pool size per rank;
	// <= 0 divides the machine's cores evenly among ranks.
	DeviceWorkers int
	// CollectiveTimeout bounds every blocking transport wait: a Recv (or
	// stalled Send) that exceeds it fails with ErrCollectiveTimeout, so a
	// hung-but-connected rank cannot wedge its peers' collectives. Zero
	// disables deadlines (legacy behavior). It must comfortably exceed
	// the largest per-epoch compute imbalance between ranks, since a
	// fast rank waits in Recv while a slow one still computes.
	CollectiveTimeout time.Duration
	// WrapTransport, when non-nil, wraps each rank's transport after
	// construction — the deterministic fault-injection seam used by
	// internal/cluster/faultinject. It must return a usable Transport.
	WrapTransport func(rank int, t Transport) Transport
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Network == (NetworkModel{}) {
		c.Network = InfiniBand100G
	}
	if c.DeviceWorkers <= 0 {
		c.DeviceWorkers = runtime.NumCPU() / c.Ranks
		if c.DeviceWorkers < 1 {
			c.DeviceWorkers = 1
		}
	}
	return c
}

// Node is one rank's view of the cluster inside a Run body. Collective
// methods are synchronization points for every rank: all ranks must call
// the same sequence of collectives (standard SPMD discipline). On
// transport failure the collective panics with a commError, which Run
// recovers and converts to an error.
type Node struct {
	rank, size int
	tr         Transport
	model      NetworkModel
	// Dev is this rank's private compute accelerator.
	Dev *device.Device

	clock    time.Duration // virtual time: max over ranks of compute + modeled comm
	compute  time.Duration // this rank's accumulated local compute
	commTime time.Duration // modeled communication cost accumulated
	rounds   int           // collective operations performed
	sentVecs int           // payload vectors sent (diagnostics)
	mark     time.Time     // start of the current compute segment
}

// NodeStats is the timing summary of one rank after Run completes.
type NodeStats struct {
	Rank     int
	Clock    time.Duration // final virtual time
	Compute  time.Duration // local compute portion
	CommTime time.Duration // modeled communication portion
	Rounds   int           // collectives performed
	DevStats device.Stats
	SentVecs int
}

type commError struct {
	rank int
	err  error
}

// Rank returns this node's rank in [0, Size()).
func (n *Node) Rank() int { return n.rank }

// Size returns the number of ranks.
func (n *Node) Size() int { return n.size }

// Model returns the interconnect model in effect.
func (n *Node) Model() NetworkModel { return n.model }

// Clock returns the current virtual time at this rank. It is updated at
// every collective; between collectives it lags local compute.
func (n *Node) Clock() time.Duration { return n.clock }

// ComputeTime returns this rank's accumulated local compute time.
func (n *Node) ComputeTime() time.Duration { return n.compute }

// CommTime returns the accumulated modeled communication time.
func (n *Node) CommTime() time.Duration { return n.commTime }

// Rounds returns the number of collective operations performed.
func (n *Node) Rounds() int { return n.rounds }

func (n *Node) check(err error) {
	if err != nil {
		panic(commError{rank: n.rank, err: err})
	}
}

func (n *Node) send(to int, data []float64) {
	n.sentVecs++
	n.check(n.tr.Send(to, data))
}

func (n *Node) recv(from int) []float64 {
	data, err := n.tr.Recv(from)
	n.check(err)
	return data
}

// closeComputeSegment folds the wall time since the last mark into the
// rank's compute account.
func (n *Node) closeComputeSegment() {
	now := time.Now()
	n.compute += now.Sub(n.mark)
	n.clock += now.Sub(n.mark)
	n.mark = now
}

// syncClocks is the heart of the virtual-time model: after the payload
// exchange of a collective, all ranks agree on max(clock_i) + cost. It is
// implemented as a scalar star-reduce through the raw transport so it
// works identically over channels and TCP.
func (n *Node) syncClocks(cost time.Duration) {
	if n.size > 1 {
		if n.rank == 0 {
			maxClock := n.clock
			for r := 1; r < n.size; r++ {
				v := n.recv(r)
				if d := time.Duration(v[0]); d > maxClock {
					maxClock = d
				}
			}
			n.clock = maxClock
			out := []float64{float64(maxClock)}
			for r := 1; r < n.size; r++ {
				n.send(r, out)
			}
		} else {
			n.send(0, []float64{float64(n.clock)})
			n.clock = time.Duration(n.recv(0)[0])
		}
	}
	n.clock += cost
	n.commTime += cost
	n.rounds++
	n.mark = time.Now() // next compute segment starts after the collective
}

// Barrier synchronizes all ranks and advances virtual time by an empty
// allreduce.
func (n *Node) Barrier() {
	n.closeComputeSegment()
	n.syncClocks(n.model.BarrierCost(n.size))
}

// Bcast distributes root's vec to every rank, overwriting vec elsewhere.
// All ranks must pass equal-length buffers.
func (n *Node) Bcast(root int, vec []float64) {
	n.closeComputeSegment()
	if n.rank == root {
		for r := 0; r < n.size; r++ {
			if r != root {
				n.send(r, vec)
			}
		}
	} else {
		data := n.recv(root)
		if len(data) != len(vec) {
			n.check(fmt.Errorf("cluster: bcast size mismatch: got %d want %d", len(data), len(vec)))
		}
		copy(vec, data)
	}
	n.syncClocks(n.model.BcastCost(n.size, 8*len(vec)))
}

// Gather collects every rank's vec at root. Root receives a slice indexed
// by rank (its own entry is a copy); other ranks receive nil.
func (n *Node) Gather(root int, vec []float64) [][]float64 {
	n.closeComputeSegment()
	var out [][]float64
	if n.rank == root {
		out = make([][]float64, n.size)
		for r := 0; r < n.size; r++ {
			if r == root {
				out[r] = append([]float64(nil), vec...)
			} else {
				out[r] = n.recv(r)
			}
		}
	} else {
		n.send(root, vec)
	}
	n.syncClocks(n.model.GatherCost(n.size, 8*len(vec)))
	return out
}

// Scatter distributes parts[r] from root to each rank r, returning this
// rank's part. Only root's parts argument is consulted.
func (n *Node) Scatter(root int, parts [][]float64) []float64 {
	n.closeComputeSegment()
	var mine []float64
	if n.rank == root {
		if len(parts) != n.size {
			n.check(fmt.Errorf("cluster: scatter needs %d parts, got %d", n.size, len(parts)))
		}
		for r := 0; r < n.size; r++ {
			if r == root {
				mine = append([]float64(nil), parts[r]...)
			} else {
				n.send(r, parts[r])
			}
		}
	} else {
		mine = n.recv(root)
	}
	var bytes int
	if n.rank == root {
		for _, p := range parts {
			bytes += 8 * len(p)
		}
		bytes /= n.size
	} else {
		bytes = 8 * len(mine)
	}
	n.syncClocks(n.model.GatherCost(n.size, bytes))
	return mine
}

// AllReduceSum replaces vec on every rank with the element-wise sum over
// ranks. All ranks must pass equal-length buffers.
func (n *Node) AllReduceSum(vec []float64) {
	n.closeComputeSegment()
	if n.rank == 0 {
		for r := 1; r < n.size; r++ {
			data := n.recv(r)
			if len(data) != len(vec) {
				n.check(fmt.Errorf("cluster: allreduce size mismatch: got %d want %d", len(data), len(vec)))
			}
			linalg.Add(vec, data)
		}
		for r := 1; r < n.size; r++ {
			n.send(r, vec)
		}
	} else {
		n.send(0, vec)
		copy(vec, n.recv(0))
	}
	n.syncClocks(n.model.AllReduceCost(n.size, 8*len(vec)))
}

// AllReduceMax replaces vec on every rank with the element-wise max.
func (n *Node) AllReduceMax(vec []float64) {
	n.closeComputeSegment()
	if n.rank == 0 {
		for r := 1; r < n.size; r++ {
			data := n.recv(r)
			for i := range vec {
				if data[i] > vec[i] {
					vec[i] = data[i]
				}
			}
		}
		for r := 1; r < n.size; r++ {
			n.send(r, vec)
		}
	} else {
		n.send(0, vec)
		copy(vec, n.recv(0))
	}
	n.syncClocks(n.model.AllReduceCost(n.size, 8*len(vec)))
}

// Frozen runs fn with the virtual clock frozen: any compute and
// collectives inside fn leave the rank's timing accounts untouched. It is
// for instrumentation (objective traces, test accuracy) that exists only
// in the harness, not in the algorithm being measured. Like collectives,
// if fn communicates, every rank must call Frozen at the same point.
func (n *Node) Frozen(fn func()) {
	n.closeComputeSegment()
	savedClock, savedCompute := n.clock, n.compute
	savedComm, savedRounds := n.commTime, n.rounds
	savedSent := n.sentVecs
	fn()
	n.clock, n.compute = savedClock, savedCompute
	n.commTime, n.rounds = savedComm, savedRounds
	n.sentVecs = savedSent
	n.mark = time.Now()
}

// Stats snapshots this rank's accounting (typically called at the end of
// the Run body).
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Rank:     n.rank,
		Clock:    n.clock,
		Compute:  n.compute,
		CommTime: n.commTime,
		Rounds:   n.rounds,
		DevStats: n.Dev.Stats(),
		SentVecs: n.sentVecs,
	}
}

// Run executes body as an SPMD program: one goroutine per rank, each with
// its own Node and accelerator. It returns per-rank stats. A panic or
// error in any rank's body aborts the run — the failing rank broadcasts
// an abort so every survivor exits its blocking collective promptly with
// a typed error instead of hanging — and all rank errors are aggregated
// with errors.Join, so the root cause is never hidden behind a casualty.
func Run(cfg Config, body func(n *Node) error) ([]NodeStats, error) {
	cfg = cfg.withDefaults()
	var transports []Transport
	if cfg.UseTCP {
		var err error
		transports, err = NewTCPGroupTimeout(cfg.Ranks, cfg.BasePort, cfg.CollectiveTimeout)
		if err != nil {
			return nil, err
		}
	} else {
		transports = NewInprocGroupTimeout(cfg.Ranks, cfg.CollectiveTimeout)
	}
	if cfg.WrapTransport != nil {
		for r := range transports {
			transports[r] = cfg.WrapTransport(r, transports[r])
		}
	}

	stats := make([]NodeStats, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	done := make(chan int, cfg.Ranks)
	start := time.Now()
	for r := 0; r < cfg.Ranks; r++ {
		node := &Node{
			rank:  r,
			size:  cfg.Ranks,
			tr:    transports[r],
			model: cfg.Network,
			Dev:   device.New(fmt.Sprintf("gpu-%d", r), cfg.DeviceWorkers),
			mark:  start,
		}
		go func(r int, node *Node) {
			defer func() {
				if p := recover(); p != nil {
					if ce, ok := p.(commError); ok {
						errs[r] = fmt.Errorf("rank %d communication: %w", ce.rank, ce.err)
					} else {
						errs[r] = fmt.Errorf("rank %d panic: %v", r, p)
					}
				}
				if errs[r] != nil {
					// Coordinated abort: poison every rank's pending
					// collectives so no survivor waits out its deadline
					// (or hangs forever when deadlines are off).
					node.tr.Abort()
				}
				node.Dev.Close()
				node.tr.Close()
				stats[r] = node.Stats()
				done <- r
			}()
			if err := body(node); err != nil {
				errs[r] = fmt.Errorf("rank %d: %w", r, err)
			}
		}(r, node)
	}
	for i := 0; i < cfg.Ranks; i++ {
		<-done
	}
	var all []error
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	if len(all) > 0 {
		return stats, errors.Join(all...)
	}
	return stats, nil
}

// RestartPolicy bounds RunRestart's recovery loop.
type RestartPolicy struct {
	// MaxRestarts is the number of additional attempts after the first
	// run fails with a communication error; <= 0 disables restarting.
	MaxRestarts int
	// Backoff is the sleep before the first restart, doubling per
	// attempt; <= 0 selects 100ms.
	Backoff time.Duration
}

// RunRestart is Run with bounded restart-on-communication-failure: when
// the body fails with a typed transport error (a crashed or hung rank —
// see IsCommError), the whole SPMD program is rebuilt on fresh
// transports and re-run after an exponential backoff, up to
// pol.MaxRestarts times. The body receives the attempt index (0 for the
// first run) so it can resume from its latest checkpoint on retries.
// Algorithmic errors never restart.
func RunRestart(cfg Config, pol RestartPolicy, body func(attempt int, n *Node) error) ([]NodeStats, error) {
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var stats []NodeStats
	var err error
	for attempt := 0; ; attempt++ {
		a := attempt
		stats, err = Run(cfg, func(n *Node) error { return body(a, n) })
		if err == nil {
			return stats, nil
		}
		if attempt >= pol.MaxRestarts || !IsCommError(err) {
			if attempt > 0 {
				err = fmt.Errorf("after %d restart(s): %w", attempt, err)
			}
			return stats, err
		}
		time.Sleep(backoff << attempt)
	}
}

// MaxClock returns the largest virtual clock across ranks — the simulated
// wall time of the whole run.
func MaxClock(stats []NodeStats) time.Duration {
	var m time.Duration
	for _, s := range stats {
		if s.Clock > m {
			m = s.Clock
		}
	}
	return m
}
