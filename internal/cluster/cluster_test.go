package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// runBoth runs the same SPMD body on the inproc and TCP transports.
func runBoth(t *testing.T, ranks int, body func(n *Node) error) {
	t.Helper()
	for _, useTCP := range []bool{false, true} {
		name := "inproc"
		if useTCP {
			name = "tcp"
		}
		_, err := Run(Config{Ranks: ranks, UseTCP: useTCP, Network: ZeroCost, DeviceWorkers: 1}, body)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBcast(t *testing.T) {
	runBoth(t, 4, func(n *Node) error {
		vec := make([]float64, 3)
		if n.Rank() == 2 {
			vec = []float64{1, 2, 3}
		}
		n.Bcast(2, vec)
		for i, want := range []float64{1, 2, 3} {
			if vec[i] != want {
				return fmt.Errorf("rank %d: bcast vec=%v", n.Rank(), vec)
			}
		}
		return nil
	})
}

func TestGatherOrdersByRank(t *testing.T) {
	runBoth(t, 4, func(n *Node) error {
		vec := []float64{float64(n.Rank()), float64(n.Rank() * 10)}
		got := n.Gather(0, vec)
		if n.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if got[r][0] != float64(r) || got[r][1] != float64(r*10) {
				return fmt.Errorf("gather[%d]=%v", r, got[r])
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	runBoth(t, 3, func(n *Node) error {
		var parts [][]float64
		if n.Rank() == 0 {
			parts = [][]float64{{0}, {1}, {2}}
		}
		mine := n.Scatter(0, parts)
		if len(mine) != 1 || mine[0] != float64(n.Rank()) {
			return fmt.Errorf("rank %d scatter got %v", n.Rank(), mine)
		}
		return nil
	})
}

func TestAllReduceSum(t *testing.T) {
	runBoth(t, 5, func(n *Node) error {
		vec := []float64{1, float64(n.Rank())}
		n.AllReduceSum(vec)
		// sum over ranks: [5, 0+1+2+3+4=10]
		if vec[0] != 5 || vec[1] != 10 {
			return fmt.Errorf("rank %d allreduce got %v", n.Rank(), vec)
		}
		return nil
	})
}

func TestAllReduceMax(t *testing.T) {
	runBoth(t, 4, func(n *Node) error {
		vec := []float64{float64(-n.Rank()), float64(n.Rank())}
		n.AllReduceMax(vec)
		if vec[0] != 0 || vec[1] != 3 {
			return fmt.Errorf("rank %d allreduce max got %v", n.Rank(), vec)
		}
		return nil
	})
}

func TestAllReduceEqualsGatherSumBcastProperty(t *testing.T) {
	// Algebraic identity: allreduce-sum == gather to root, sum, bcast.
	rng := rand.New(rand.NewSource(60))
	data := make([][]float64, 4)
	for r := range data {
		data[r] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	runBoth(t, 4, func(n *Node) error {
		viaAll := append([]float64(nil), data[n.Rank()]...)
		n.AllReduceSum(viaAll)

		viaGather := append([]float64(nil), data[n.Rank()]...)
		parts := n.Gather(0, viaGather)
		sum := make([]float64, 3)
		if n.Rank() == 0 {
			for _, p := range parts {
				for i := range sum {
					sum[i] += p[i]
				}
			}
		}
		n.Bcast(0, sum)
		for i := range sum {
			if math.Abs(sum[i]-viaAll[i]) > 1e-12 {
				return fmt.Errorf("identity violated at %d: %v vs %v", i, sum[i], viaAll[i])
			}
		}
		return nil
	})
}

func TestSequentialCollectivesInterleave(t *testing.T) {
	// Repeated mixed collectives must stay matched (pairwise FIFO).
	runBoth(t, 3, func(n *Node) error {
		for iter := 0; iter < 20; iter++ {
			v := []float64{float64(iter)}
			n.Bcast(iter%3, v)
			if v[0] != float64(iter) {
				return fmt.Errorf("iter %d: bcast corrupted: %v", iter, v)
			}
			s := []float64{1}
			n.AllReduceSum(s)
			if s[0] != 3 {
				return fmt.Errorf("iter %d: allreduce=%v", iter, s)
			}
			n.Barrier()
		}
		return nil
	})
}

func TestSingleRankCollectivesNoop(t *testing.T) {
	_, err := Run(Config{Ranks: 1, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		v := []float64{7}
		n.AllReduceSum(v)
		n.Bcast(0, v)
		n.Barrier()
		g := n.Gather(0, v)
		if v[0] != 7 || g[0][0] != 7 {
			return fmt.Errorf("single-rank collectives corrupted data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	_, err := Run(Config{Ranks: 3, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		if n.Rank() == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || !errorsContains(err, "boom") {
		t.Fatalf("expected body error, got %v", err)
	}
}

func TestBodyPanicRecovered(t *testing.T) {
	_, err := Run(Config{Ranks: 2, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		if n.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !errorsContains(err, "kaboom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestRankDeathUnblocksPeers(t *testing.T) {
	// Rank 1 dies before its first collective; the others are blocked in
	// a Barrier and must fail rather than hang.
	done := make(chan error, 1)
	go func() {
		_, err := Run(Config{Ranks: 3, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
			if n.Rank() == 1 {
				return errors.New("early death")
			}
			n.Barrier()
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster hung after rank death")
	}
}

func TestInjectedSendFailureSurfaces(t *testing.T) {
	transports := NewInprocGroup(2)
	InjectSendFailure(transports[1], 0)
	if err := transports[1].Send(0, []float64{1}); err == nil {
		t.Fatal("injected failure did not fire")
	}
	if err := transports[0].Send(1, []float64{1}); err != nil {
		t.Fatalf("unrelated direction failed: %v", err)
	}
}

func TestVirtualClockAdvancesByModel(t *testing.T) {
	// With a pure-latency network, k barriers on n ranks advance the
	// clock by exactly k * BarrierCost(n) plus measured compute.
	model := NetworkModel{Name: "lat-only", Latency: time.Millisecond, Bandwidth: math.Inf(1)}
	const k, ranks = 5, 4
	stats, err := Run(Config{Ranks: ranks, Network: model, DeviceWorkers: 1}, func(n *Node) error {
		for i := 0; i < k; i++ {
			n.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantComm := time.Duration(k) * model.BarrierCost(ranks)
	for _, s := range stats {
		if s.CommTime != wantComm {
			t.Fatalf("rank %d comm time %v, want %v", s.Rank, s.CommTime, wantComm)
		}
		if s.Clock < wantComm {
			t.Fatalf("rank %d clock %v below comm time %v", s.Rank, s.Clock, wantComm)
		}
		if s.Rounds != k {
			t.Fatalf("rank %d rounds %d, want %d", s.Rank, s.Rounds, k)
		}
	}
}

func TestClocksAgreeAfterCollective(t *testing.T) {
	stats, err := Run(Config{Ranks: 4, Network: InfiniBand100G, DeviceWorkers: 1}, func(n *Node) error {
		// Unequal compute: rank r spins ~r*2ms, then one barrier.
		deadline := time.Now().Add(time.Duration(n.Rank()) * 2 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		n.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks synchronized at the barrier; final clocks equal.
	for _, s := range stats[1:] {
		if s.Clock != stats[0].Clock {
			t.Fatalf("clocks diverged: %v vs %v", s.Clock, stats[0].Clock)
		}
	}
	// The barrier waits for the slowest rank (~6ms of compute).
	if stats[0].Clock < 5*time.Millisecond {
		t.Fatalf("clock %v does not reflect the slowest rank", stats[0].Clock)
	}
}

func TestMaxClock(t *testing.T) {
	stats := []NodeStats{{Clock: 5}, {Clock: 9}, {Clock: 3}}
	if got := MaxClock(stats); got != 9 {
		t.Fatalf("MaxClock=%v, want 9", got)
	}
	if got := MaxClock(nil); got != 0 {
		t.Fatalf("MaxClock(nil)=%v, want 0", got)
	}
}

func TestBcastSizeMismatchFails(t *testing.T) {
	_, err := Run(Config{Ranks: 2, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		if n.Rank() == 0 {
			n.Bcast(0, []float64{1, 2, 3})
		} else {
			n.Bcast(0, make([]float64, 2))
		}
		return nil
	})
	if err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func errorsContains(err error, substr string) bool {
	return err != nil && (len(err.Error()) >= len(substr)) && (func() bool {
		s := err.Error()
		for i := 0; i+len(substr) <= len(s); i++ {
			if s[i:i+len(substr)] == substr {
				return true
			}
		}
		return false
	})()
}
