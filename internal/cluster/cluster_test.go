package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// runBoth runs the same SPMD body on the inproc and TCP transports.
func runBoth(t *testing.T, ranks int, body func(n *Node) error) {
	t.Helper()
	for _, useTCP := range []bool{false, true} {
		name := "inproc"
		if useTCP {
			name = "tcp"
		}
		_, err := Run(Config{Ranks: ranks, UseTCP: useTCP, Network: ZeroCost, DeviceWorkers: 1}, body)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBcast(t *testing.T) {
	runBoth(t, 4, func(n *Node) error {
		vec := make([]float64, 3)
		if n.Rank() == 2 {
			vec = []float64{1, 2, 3}
		}
		n.Bcast(2, vec)
		for i, want := range []float64{1, 2, 3} {
			if vec[i] != want {
				return fmt.Errorf("rank %d: bcast vec=%v", n.Rank(), vec)
			}
		}
		return nil
	})
}

func TestGatherOrdersByRank(t *testing.T) {
	runBoth(t, 4, func(n *Node) error {
		vec := []float64{float64(n.Rank()), float64(n.Rank() * 10)}
		got := n.Gather(0, vec)
		if n.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if got[r][0] != float64(r) || got[r][1] != float64(r*10) {
				return fmt.Errorf("gather[%d]=%v", r, got[r])
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	runBoth(t, 3, func(n *Node) error {
		var parts [][]float64
		if n.Rank() == 0 {
			parts = [][]float64{{0}, {1}, {2}}
		}
		mine := n.Scatter(0, parts)
		if len(mine) != 1 || mine[0] != float64(n.Rank()) {
			return fmt.Errorf("rank %d scatter got %v", n.Rank(), mine)
		}
		return nil
	})
}

func TestAllReduceSum(t *testing.T) {
	runBoth(t, 5, func(n *Node) error {
		vec := []float64{1, float64(n.Rank())}
		n.AllReduceSum(vec)
		// sum over ranks: [5, 0+1+2+3+4=10]
		if vec[0] != 5 || vec[1] != 10 {
			return fmt.Errorf("rank %d allreduce got %v", n.Rank(), vec)
		}
		return nil
	})
}

func TestAllReduceMax(t *testing.T) {
	runBoth(t, 4, func(n *Node) error {
		vec := []float64{float64(-n.Rank()), float64(n.Rank())}
		n.AllReduceMax(vec)
		if vec[0] != 0 || vec[1] != 3 {
			return fmt.Errorf("rank %d allreduce max got %v", n.Rank(), vec)
		}
		return nil
	})
}

func TestAllReduceEqualsGatherSumBcastProperty(t *testing.T) {
	// Algebraic identity: allreduce-sum == gather to root, sum, bcast.
	rng := rand.New(rand.NewSource(60))
	data := make([][]float64, 4)
	for r := range data {
		data[r] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	runBoth(t, 4, func(n *Node) error {
		viaAll := append([]float64(nil), data[n.Rank()]...)
		n.AllReduceSum(viaAll)

		viaGather := append([]float64(nil), data[n.Rank()]...)
		parts := n.Gather(0, viaGather)
		sum := make([]float64, 3)
		if n.Rank() == 0 {
			for _, p := range parts {
				for i := range sum {
					sum[i] += p[i]
				}
			}
		}
		n.Bcast(0, sum)
		for i := range sum {
			if math.Abs(sum[i]-viaAll[i]) > 1e-12 {
				return fmt.Errorf("identity violated at %d: %v vs %v", i, sum[i], viaAll[i])
			}
		}
		return nil
	})
}

func TestSequentialCollectivesInterleave(t *testing.T) {
	// Repeated mixed collectives must stay matched (pairwise FIFO).
	runBoth(t, 3, func(n *Node) error {
		for iter := 0; iter < 20; iter++ {
			v := []float64{float64(iter)}
			n.Bcast(iter%3, v)
			if v[0] != float64(iter) {
				return fmt.Errorf("iter %d: bcast corrupted: %v", iter, v)
			}
			s := []float64{1}
			n.AllReduceSum(s)
			if s[0] != 3 {
				return fmt.Errorf("iter %d: allreduce=%v", iter, s)
			}
			n.Barrier()
		}
		return nil
	})
}

func TestSingleRankCollectivesNoop(t *testing.T) {
	_, err := Run(Config{Ranks: 1, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		v := []float64{7}
		n.AllReduceSum(v)
		n.Bcast(0, v)
		n.Barrier()
		g := n.Gather(0, v)
		if v[0] != 7 || g[0][0] != 7 {
			return fmt.Errorf("single-rank collectives corrupted data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	_, err := Run(Config{Ranks: 3, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		if n.Rank() == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || !errorsContains(err, "boom") {
		t.Fatalf("expected body error, got %v", err)
	}
}

func TestBodyPanicRecovered(t *testing.T) {
	_, err := Run(Config{Ranks: 2, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		if n.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !errorsContains(err, "kaboom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestRankDeathUnblocksPeers(t *testing.T) {
	// Rank 1 dies before its first collective; the others are blocked in
	// a Barrier and must fail rather than hang.
	done := make(chan error, 1)
	go func() {
		_, err := Run(Config{Ranks: 3, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
			if n.Rank() == 1 {
				return errors.New("early death")
			}
			n.Barrier()
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster hung after rank death")
	}
}

func TestRecvDeadlineFiresTyped(t *testing.T) {
	// No rank ever sends to us: a Recv with a deadline must fail with
	// ErrCollectiveTimeout, promptly, on both transports.
	const timeout = 100 * time.Millisecond
	inproc := NewInprocGroupTimeout(2, timeout)
	tcp, err := NewTCPGroupTimeout(2, 0, timeout)
	if err != nil {
		t.Fatal(err)
	}
	for name, group := range map[string][]Transport{"inproc": inproc, "tcp": tcp} {
		start := time.Now()
		_, err := group[0].Recv(1)
		elapsed := time.Since(start)
		if !errors.Is(err, ErrCollectiveTimeout) {
			t.Fatalf("%s: got %v, want ErrCollectiveTimeout", name, err)
		}
		if elapsed > 10*timeout {
			t.Fatalf("%s: deadline took %v, budget %v", name, elapsed, timeout)
		}
		for _, tr := range group {
			tr.Close()
		}
	}
}

func TestAbortUnblocksPendingRecv(t *testing.T) {
	// A blocked Recv with no deadline must still exit promptly when any
	// rank broadcasts an abort — the coordinated-abort liveness guarantee.
	inproc := NewInprocGroup(2)
	tcp, err := NewTCPGroup(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, group := range map[string][]Transport{"inproc": inproc, "tcp": tcp} {
		done := make(chan error, 1)
		go func() {
			_, err := group[0].Recv(1)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the Recv block
		group[1].Abort()
		select {
		case err := <-done:
			if !errors.Is(err, ErrAborted) {
				t.Fatalf("%s: got %v, want ErrAborted", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: abort did not unblock pending Recv", name)
		}
		for _, tr := range group {
			tr.Close()
		}
	}
}

func TestRunAggregatesAllRankErrors(t *testing.T) {
	// Two ranks fail independently; errors.Join must surface both, so the
	// root cause is never hidden by a casualty with a lower rank number.
	_, err := Run(Config{Ranks: 4, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		switch n.Rank() {
		case 0:
			return errors.New("casualty-zero")
		case 3:
			return errors.New("root-cause-three")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errorsContains(err, "casualty-zero") || !errorsContains(err, "root-cause-three") {
		t.Fatalf("aggregated error lost a rank's failure: %v", err)
	}
}

func TestDialDeadAddressFailsFast(t *testing.T) {
	// A dial to a port nothing listens on must fail promptly with a typed
	// error, not wait out the kernel connect timeout.
	ep := &tcpEndpoint{
		rank: 0, size: 2,
		addrs:   []string{"", "127.0.0.1:1"}, // port 1: nothing listens
		timeout: 200 * time.Millisecond,
		conns:   make(map[int]net.Conn),
	}
	start := time.Now()
	_, err := ep.dial(1)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("dial error not typed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v, deadline not applied", elapsed)
	}
}

func TestTCPCloseDrainsGoroutinesAndUnblocksRecv(t *testing.T) {
	// Teardown invariants: Close during an in-flight collective unblocks
	// every pending Recv with ErrPeerLost, and after all endpoints close,
	// the goroutine count settles back (wg-drained accept/read loops).
	before := runtime.NumGoroutine()
	group, err := NewTCPGroup(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var recvErrs [3]error
	var wg sync.WaitGroup
	for i, tr := range group {
		wg.Add(1)
		go func(i int, tr Transport) {
			defer wg.Done()
			_, recvErrs[i] = tr.Recv((i + 1) % 3) // blocks: nobody sends
		}(i, tr)
	}
	time.Sleep(20 * time.Millisecond) // let all Recvs block
	for _, tr := range group {
		if err := tr.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not unblock pending Recvs")
	}
	for i, err := range recvErrs {
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("rank %d recv after close: got %v, want ErrPeerLost", i, err)
		}
	}
	// Double Close must be a no-op, not a panic.
	for _, tr := range group {
		if err := tr.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}
	// All accept/read goroutines must have drained.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestReadLoopRejectsSenderSwitch(t *testing.T) {
	// Protocol regression: one connection, two claimed sender ranks. The
	// read loop must drop the connection and poison the bound sender's
	// queue so a Recv from it fails with ErrPeerLost instead of trusting
	// forged frames.
	group, err := NewTCPGroup(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range group {
			tr.Close()
		}
	}()
	ep := group[0].(*tcpEndpoint)
	conn, err := net.Dial("tcp", ep.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := func(from uint32, vals []float64) []byte {
		buf := make([]byte, 8+8*len(vals))
		binary.LittleEndian.PutUint32(buf[0:4], from)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(vals)))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
		}
		return buf
	}
	// Bind the connection to rank 1, deliver one legitimate frame, then
	// violate the protocol by claiming rank 2 on the same connection.
	if _, err := conn.Write(frame(1, []float64{42})); err != nil {
		t.Fatal(err)
	}
	got, err := group[0].Recv(1)
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("legitimate frame lost: %v %v", got, err)
	}
	if _, err := conn.Write(frame(2, []float64{13})); err != nil {
		t.Fatal(err)
	}
	// The violating connection is dropped and rank 1's queue closed: the
	// next Recv(1) on this spoofed path must fail typed, and the forged
	// frame must never surface as data from rank 2.
	done := make(chan error, 1)
	go func() {
		_, err := group[0].Recv(1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("recv after protocol violation: got %v, want ErrPeerLost", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("protocol violation did not poison the sender queue")
	}
}

func TestOversizedFrameDropsConnection(t *testing.T) {
	// A frame header claiming an absurd element count must drop the
	// connection instead of attempting a giant allocation.
	group, err := NewTCPGroup(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range group {
			tr.Close()
		}
	}()
	ep := group[0].(*tcpEndpoint)
	conn, err := net.Dial("tcp", ep.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1)
	binary.LittleEndian.PutUint32(hdr[4:8], maxFrameVecs+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := group[0].Recv(1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("recv after oversized frame: got %v, want ErrPeerLost", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversized frame did not drop the connection")
	}
}

func TestVirtualClockAdvancesByModel(t *testing.T) {
	// With a pure-latency network, k barriers on n ranks advance the
	// clock by exactly k * BarrierCost(n) plus measured compute.
	model := NetworkModel{Name: "lat-only", Latency: time.Millisecond, Bandwidth: math.Inf(1)}
	const k, ranks = 5, 4
	stats, err := Run(Config{Ranks: ranks, Network: model, DeviceWorkers: 1}, func(n *Node) error {
		for i := 0; i < k; i++ {
			n.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantComm := time.Duration(k) * model.BarrierCost(ranks)
	for _, s := range stats {
		if s.CommTime != wantComm {
			t.Fatalf("rank %d comm time %v, want %v", s.Rank, s.CommTime, wantComm)
		}
		if s.Clock < wantComm {
			t.Fatalf("rank %d clock %v below comm time %v", s.Rank, s.Clock, wantComm)
		}
		if s.Rounds != k {
			t.Fatalf("rank %d rounds %d, want %d", s.Rank, s.Rounds, k)
		}
	}
}

func TestClocksAgreeAfterCollective(t *testing.T) {
	stats, err := Run(Config{Ranks: 4, Network: InfiniBand100G, DeviceWorkers: 1}, func(n *Node) error {
		// Unequal compute: rank r spins ~r*2ms, then one barrier.
		deadline := time.Now().Add(time.Duration(n.Rank()) * 2 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		n.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks synchronized at the barrier; final clocks equal.
	for _, s := range stats[1:] {
		if s.Clock != stats[0].Clock {
			t.Fatalf("clocks diverged: %v vs %v", s.Clock, stats[0].Clock)
		}
	}
	// The barrier waits for the slowest rank (~6ms of compute).
	if stats[0].Clock < 5*time.Millisecond {
		t.Fatalf("clock %v does not reflect the slowest rank", stats[0].Clock)
	}
}

func TestMaxClock(t *testing.T) {
	stats := []NodeStats{{Clock: 5}, {Clock: 9}, {Clock: 3}}
	if got := MaxClock(stats); got != 9 {
		t.Fatalf("MaxClock=%v, want 9", got)
	}
	if got := MaxClock(nil); got != 0 {
		t.Fatalf("MaxClock(nil)=%v, want 0", got)
	}
}

func TestBcastSizeMismatchFails(t *testing.T) {
	_, err := Run(Config{Ranks: 2, Network: ZeroCost, DeviceWorkers: 1}, func(n *Node) error {
		if n.Rank() == 0 {
			n.Bcast(0, []float64{1, 2, 3})
		} else {
			n.Bcast(0, make([]float64, 2))
		}
		return nil
	})
	if err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func errorsContains(err error, substr string) bool {
	return err != nil && (len(err.Error()) >= len(substr)) && (func() bool {
		s := err.Error()
		for i := 0; i+len(substr) <= len(s); i++ {
			if s[i:i+len(substr)] == substr {
				return true
			}
		}
		return false
	})()
}
