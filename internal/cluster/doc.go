// Package cluster provides the distributed-execution substrate of the
// training-side reproduction: an SPMD runtime that runs one goroutine
// per rank, MPI-style collectives over pluggable transports
// (in-process channels or real TCP), and a network cost model with
// per-rank virtual clocks.
//
// The paper's clusters communicate over 100 Gbps InfiniBand, and its
// core claim is about communication *rounds*: Newton-ADMM needs one
// gather+scatter per iteration while GIANT needs three collectives and
// synchronous SGD one per mini-batch. The virtual clock charges every
// collective with a tree cost (latency * ceil(log2 N) + bytes/bandwidth)
// on top of the measured local compute time, so experiments can replay
// the paper's interconnect — or a slower one, reproducing the
// "amplified by slower interconnects" observation — on a single
// machine.
//
// Responsibilities and invariants:
//
//   - Transport delivers []float64 payloads between ranks with pairwise
//     (from, to) ordering — the only ordering the collectives rely on.
//     The TCP transport frames payloads as [from u32][count u32][raw
//     float64 bits], crossing real loopback sockets so wire effects are
//     exercised without a cluster.
//   - Liveness over hangs: when a rank dies mid-protocol, its peers'
//     blocked Recv calls fail (closed queues / poisoned pipes) instead
//     of deadlocking the SPMD step.
//   - Bitwise-stable collectives: reduction order is fixed by rank, so
//     a collective's result does not depend on message arrival timing.
//
// Relation to the serving tier: this package is the *training* data
// plane (rank-addressed collectives between peers). The serving
// fleet's router↔replica hop uses internal/wire instead — a
// request/response frame protocol with correlation IDs and error
// frames over the same kind of raw TCP socket; DESIGN.md's "Binary
// data plane" section specifies it and contrasts the two.
package cluster
