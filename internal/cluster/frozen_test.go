package cluster

import (
	"testing"
	"time"
)

func TestFrozenRestoresAccounting(t *testing.T) {
	model := NetworkModel{Name: "lat", Latency: time.Millisecond, Bandwidth: 1e12}
	stats, err := Run(Config{Ranks: 3, Network: model, DeviceWorkers: 1}, func(n *Node) error {
		n.Barrier()
		before := n.Clock()
		rounds, comm := n.Rounds(), n.CommTime()
		n.Frozen(func() {
			// Expensive instrumentation: several collectives.
			for i := 0; i < 5; i++ {
				v := []float64{1}
				n.AllReduceSum(v)
			}
		})
		// The clock may advance by the (sub-ms) compute between the
		// barrier and Frozen, but none of the 5 frozen allreduces'
		// modeled cost (5 * 2ms of latency alone) may leak.
		if drift := n.Clock() - before; drift > time.Millisecond {
			t.Errorf("clock leaked: %v -> %v", before, n.Clock())
		}
		if n.Rounds() != rounds || n.CommTime() != comm {
			t.Errorf("rounds/comm leaked: %d/%v -> %d/%v", rounds, comm, n.Rounds(), n.CommTime())
		}
		// Work after Frozen must be accounted again.
		n.Barrier()
		if n.Rounds() != rounds+1 {
			t.Errorf("post-Frozen barrier not counted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		// 2 barriers only.
		if s.Rounds != 2 {
			t.Fatalf("rank %d rounds=%d, want 2", s.Rank, s.Rounds)
		}
	}
}

func TestNodeAccessors(t *testing.T) {
	model := Ethernet10G
	_, err := Run(Config{Ranks: 2, Network: model, DeviceWorkers: 1}, func(n *Node) error {
		if n.Size() != 2 {
			t.Errorf("Size=%d", n.Size())
		}
		if n.Rank() < 0 || n.Rank() >= 2 {
			t.Errorf("Rank=%d", n.Rank())
		}
		if n.Model() != model {
			t.Errorf("Model=%v", n.Model())
		}
		if n.Dev == nil {
			t.Error("nil device")
		}
		if n.ComputeTime() < 0 || n.CommTime() < 0 {
			t.Error("negative accounting")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsPopulatedAfterRun(t *testing.T) {
	stats, err := Run(Config{Ranks: 4, Network: InfiniBand100G, DeviceWorkers: 1}, func(n *Node) error {
		v := make([]float64, 100)
		n.AllReduceSum(v)
		n.Dev.ParallelFor(1000, 0, func(lo, hi int) {})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats for %d ranks", len(stats))
	}
	for r, s := range stats {
		if s.Rank != r {
			t.Fatalf("stats[%d].Rank=%d", r, s.Rank)
		}
		if s.Rounds != 1 {
			t.Fatalf("rank %d rounds=%d", r, s.Rounds)
		}
		if s.DevStats.Launches == 0 {
			t.Fatalf("rank %d device launches not recorded", r)
		}
		if s.SentVecs == 0 && r != 0 {
			t.Fatalf("rank %d sent nothing", r)
		}
	}
}

func TestScatterCostUsesPartSize(t *testing.T) {
	// Scatter's modeled cost should reflect per-part bytes, not zero.
	model := NetworkModel{Name: "bw", Latency: 0, Bandwidth: 1e6} // 1 MB/s
	stats, err := Run(Config{Ranks: 2, Network: model, DeviceWorkers: 1}, func(n *Node) error {
		parts := [][]float64{make([]float64, 1000), make([]float64, 1000)}
		if n.Rank() != 0 {
			parts = nil
		}
		n.Scatter(0, parts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8000 bytes at 1 MB/s = 8 ms.
	if stats[0].CommTime < 5*time.Millisecond {
		t.Fatalf("scatter cost %v too small", stats[0].CommTime)
	}
}
