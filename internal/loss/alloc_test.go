package loss

import (
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
	"newtonadmm/internal/sparse"
)

// Allocation regression tests: once a Softmax problem's scratch is warm,
// the whole Newton-CG hot path — Value, Gradient, HessianAt, Apply,
// Accuracy — must perform zero heap allocations per evaluation.
// testing.AllocsPerRun performs one warm-up call before measuring, which
// is what creates the lazily-allocated scratch and functors.

func allocProblem(t *testing.T, sparseX bool) *Softmax {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	n, p, classes := 300, 40, 7
	x := linalg.NewMatrix(n, p)
	for i := range x.Data {
		if !sparseX || rng.Float64() < 0.3 {
			x.Data[i] = rng.NormFloat64()
		}
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	var feats Features
	if sparseX {
		feats = Sparse{M: sparse.FromDense(x)}
	} else {
		feats = Dense{M: x}
	}
	s, err := NewSoftmax(testDev, feats, y, classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testEvalAllocs(t *testing.T, sparseX bool) {
	t.Helper()
	s := allocProblem(t, sparseX)
	w := randW(rand.New(rand.NewSource(62)), s.Dim())
	g := make([]float64, s.Dim())

	if allocs := testing.AllocsPerRun(10, func() { s.Value(w) }); allocs != 0 {
		t.Errorf("Value allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { s.Gradient(w, g) }); allocs != 0 {
		t.Errorf("Gradient allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { s.HessianAt(w) }); allocs != 0 {
		t.Errorf("HessianAt allocates %v per call in steady state, want 0", allocs)
	}
	h := s.HessianAt(w)
	v := randW(rand.New(rand.NewSource(63)), s.Dim())
	hv := make([]float64, s.Dim())
	if allocs := testing.AllocsPerRun(10, func() { h.Apply(v, hv) }); allocs != 0 {
		t.Errorf("Hessian Apply allocates %v per call in steady state, want 0", allocs)
	}
}

func TestDenseEvalZeroAllocsSteadyState(t *testing.T)  { testEvalAllocs(t, false) }
func TestSparseEvalZeroAllocsSteadyState(t *testing.T) { testEvalAllocs(t, true) }

func TestAccuracyZeroAllocsSteadyState(t *testing.T) {
	s := allocProblem(t, false)
	w := randW(rand.New(rand.NewSource(64)), s.Dim())
	x := s.X
	y := s.Y
	if allocs := testing.AllocsPerRun(10, func() { s.Accuracy(x, y, w) }); allocs != 0 {
		t.Errorf("Accuracy allocates %v per call in steady state, want 0", allocs)
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	s := allocProblem(t, false)
	w := randW(rand.New(rand.NewSource(65)), s.Dim())
	want := s.Predict(s.X, w)
	got := make([]int, s.X.Rows())
	s.PredictInto(s.X, w, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PredictInto differs from Predict at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestHessianOperatorReboundByHessianAt(t *testing.T) {
	// The operator shares problem-owned scratch: a second HessianAt call
	// rebinds it to the new anchor, and applying it must give the new
	// anchor's Hessian-vector product.
	s := allocProblem(t, false)
	rng := rand.New(rand.NewSource(66))
	w1 := randW(rng, s.Dim())
	w2 := randW(rng, s.Dim())
	v := randW(rng, s.Dim())

	h2 := s.HessianAt(w2)
	want := make([]float64, s.Dim())
	h2.Apply(v, want)

	s.HessianAt(w1)
	h := s.HessianAt(w2) // rebind back to w2
	got := make([]float64, s.Dim())
	h.Apply(v, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rebound Hessian differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
