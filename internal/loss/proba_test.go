package loss

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
)

// TestProbaIntoMatchesDirectSoftmax verifies ProbaInto against an
// independent computation of the stabilized softmax over C classes with
// the implicit zero-score reference class.
func TestProbaIntoMatchesDirectSoftmax(t *testing.T) {
	s := allocProblem(t, false)
	rng := rand.New(rand.NewSource(71))
	w := randW(rng, s.Dim())
	n, p, c := s.X.Rows(), s.X.Cols(), s.C

	out := make([]float64, n*c)
	s.ProbaInto(s.X, w, out)

	x := s.X.(Dense).M
	for i := 0; i < n; i++ {
		// Direct per-row computation.
		scores := make([]float64, c) // last stays 0 (reference)
		for cc := 0; cc < c-1; cc++ {
			scores[cc] = linalg.Dot(x.Row(i), w[cc*p:(cc+1)*p])
		}
		var z float64
		for _, v := range scores {
			z += math.Exp(v)
		}
		var sum float64
		for cc := 0; cc < c; cc++ {
			want := math.Exp(scores[cc]) / z
			got := out[i*c+cc]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("row %d class %d: got %v want %v", i, cc, got, want)
			}
			sum += got
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d probabilities sum to %v", i, sum)
		}
	}
}

// TestProbaIntoAgreesWithPredict checks the argmax of the probabilities
// is exactly the predicted class.
func TestProbaIntoAgreesWithPredict(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		s := allocProblem(t, sparse)
		rng := rand.New(rand.NewSource(72))
		w := randW(rng, s.Dim())
		n, c := s.X.Rows(), s.C

		out := make([]float64, n*c)
		s.ProbaInto(s.X, w, out)
		pred := s.Predict(s.X, w)
		for i := 0; i < n; i++ {
			best, bestP := 0, out[i*c]
			for cc := 1; cc < c; cc++ {
				if out[i*c+cc] > bestP {
					best, bestP = cc, out[i*c+cc]
				}
			}
			if best != pred[i] {
				t.Fatalf("sparse=%v row %d: proba argmax %d, Predict %d", sparse, i, best, pred[i])
			}
		}
	}
}

func TestProbaIntoZeroAllocsSteadyState(t *testing.T) {
	s := allocProblem(t, false)
	w := randW(rand.New(rand.NewSource(73)), s.Dim())
	x := s.X
	out := make([]float64, x.Rows()*s.C)
	if allocs := testing.AllocsPerRun(10, func() { s.ProbaInto(x, w, out) }); allocs != 0 {
		t.Errorf("ProbaInto allocates %v per call in steady state, want 0", allocs)
	}
}

// TestScorerPredictsLikeTrainedProblem verifies the inference-only
// constructor scores identically to a full problem over the same data.
func TestScorerPredictsLikeTrainedProblem(t *testing.T) {
	s := allocProblem(t, false)
	rng := rand.New(rand.NewSource(74))
	w := randW(rng, s.Dim())

	sc, err := NewScorer(testDev, s.C)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Predict(s.X, w)
	got := make([]int, s.X.Rows())
	sc.PredictInto(s.X, w, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scorer differs at %d: %d vs %d", i, got[i], want[i])
		}
	}

	wantP := make([]float64, s.X.Rows()*s.C)
	gotP := make([]float64, s.X.Rows()*s.C)
	s.ProbaInto(s.X, w, wantP)
	sc.ProbaInto(s.X, w, gotP)
	for i := range wantP {
		if gotP[i] != wantP[i] {
			t.Fatalf("scorer proba differs at %d: %v vs %v", i, gotP[i], wantP[i])
		}
	}
	if _, err := NewScorer(testDev, 1); err == nil {
		t.Fatal("NewScorer accepted classes=1")
	}
}

// TestProbaRowExtremeScores checks stabilization at large magnitudes.
func TestProbaRowExtremeScores(t *testing.T) {
	dst := make([]float64, 4)
	probaRow([]float64{700, -700, 0}, dst)
	sum := 0.0
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			t.Fatalf("unstable probability %v in %v", v, dst)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum %v", sum)
	}
	if dst[0] < 0.999999 {
		t.Fatalf("dominant class got %v", dst[0])
	}
}
