package loss

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
	"newtonadmm/internal/sparse"
)

// hessianDiagByProbing extracts the exact diagonal with unit-vector probes
// through the Hessian-free operator (the oracle).
func hessianDiagByProbing(s *Softmax, w []float64) []float64 {
	d := s.Dim()
	h := s.HessianAt(w)
	e := make([]float64, d)
	he := make([]float64, d)
	diag := make([]float64, d)
	for j := 0; j < d; j++ {
		linalg.Zero(e)
		e[j] = 1
		h.Apply(e, he)
		diag[j] = he[j]
	}
	return diag
}

func TestHessianDiagMatchesProbingDense(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for _, classes := range []int{2, 4} {
		s := randProblem(rng, 25, 6, classes, 0.3)
		w := randW(rng, s.Dim())
		got := make([]float64, s.Dim())
		s.HessianDiag(w, got)
		want := hessianDiagByProbing(s, w)
		for j := range want {
			// The probe includes the off-diagonal class coupling
			// -p_ic p_ic' only at (c,j),(c',j) with c != c', so the
			// diagonal entries of the probe are a_ij^2 p(1-p) + L2 too:
			// exact agreement expected up to roundoff.
			if math.Abs(got[j]-want[j]) > 1e-9*math.Max(1, math.Abs(want[j])) {
				t.Fatalf("C=%d diag[%d]=%v, want %v", classes, j, got[j], want[j])
			}
		}
	}
}

func TestHessianDiagMatchesProbingSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	x := linalg.NewMatrix(30, 8)
	for i := range x.Data {
		if rng.Float64() < 0.3 {
			x.Data[i] = rng.NormFloat64()
		}
	}
	y := make([]int, 30)
	for i := range y {
		y[i] = rng.Intn(3)
	}
	sp, err := NewSoftmax(testDev, Sparse{M: sparse.FromDense(x)}, y, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	w := randW(rng, sp.Dim())
	got := make([]float64, sp.Dim())
	sp.HessianDiag(w, got)
	want := hessianDiagByProbing(sp, w)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9*math.Max(1, math.Abs(want[j])) {
			t.Fatalf("sparse diag[%d]=%v, want %v", j, got[j], want[j])
		}
	}
}

func TestHessianDiagPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	s := randProblem(rng, 40, 5, 3, 0.1)
	w := randW(rng, s.Dim())
	diag := make([]float64, s.Dim())
	s.HessianDiag(w, diag)
	for j, v := range diag {
		if v < 0.1 { // at least the L2 term
			t.Fatalf("diag[%d]=%v below the regularization floor", j, v)
		}
	}
}

func TestHessianDiagDimensionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	s := randProblem(rng, 10, 4, 3, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.HessianDiag(make([]float64, s.Dim()), make([]float64, s.Dim()+1))
}

func TestGradientBitwiseDeterministic(t *testing.T) {
	// Device reductions must combine chunk partials in a fixed order, so
	// repeated evaluations (and fresh devices with the same worker
	// count) agree bitwise — the property the cross-transport and
	// fixed-seed reproducibility guarantees rest on.
	rng := rand.New(rand.NewSource(230))
	s := randProblem(rng, 500, 30, 4, 0.1)
	w := randW(rng, s.Dim())
	g1 := make([]float64, s.Dim())
	g2 := make([]float64, s.Dim())
	v1 := s.Gradient(w, g1)
	for trial := 0; trial < 5; trial++ {
		v2 := s.Gradient(w, g2)
		if v1 != v2 {
			t.Fatalf("objective differs across evaluations: %v vs %v", v1, v2)
		}
		for j := range g1 {
			if g1[j] != g2[j] {
				t.Fatalf("gradient differs at %d: %v vs %v", j, g1[j], g2[j])
			}
		}
	}
}
