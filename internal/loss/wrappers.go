package loss

import "newtonadmm/internal/linalg"

// Augmented is the ADMM local subproblem objective of paper eq. (6a):
//
//	phi_i(x) = f_i(x) + Rho/2 ||x - V||^2, with V = z + y_i/Rho,
//
// using the identity ||z - x + y/rho||^2 = ||x - (z + y/rho)||^2. Its
// gradient is grad f + Rho (x - V) and its Hessian is H_f + Rho*I, so the
// proximal term simultaneously conditions the local Newton system.
type Augmented struct {
	Base Problem
	Rho  float64
	V    []float64
}

// NewAugmented builds the augmented subproblem. V is captured by reference;
// callers update it between ADMM iterations.
func NewAugmented(base Problem, rho float64, v []float64) *Augmented {
	if len(v) != base.Dim() {
		panic("loss: Augmented anchor dimension mismatch")
	}
	return &Augmented{Base: base, Rho: rho, V: v}
}

// Dim returns the base dimension.
func (a *Augmented) Dim() int { return a.Base.Dim() }

// Value evaluates phi(x).
func (a *Augmented) Value(w []float64) float64 {
	d := linalg.Dist2(w, a.V)
	return a.Base.Value(w) + 0.5*a.Rho*d*d
}

// Gradient fills g and returns phi(x).
func (a *Augmented) Gradient(w, g []float64) float64 {
	val := a.Base.Gradient(w, g)
	for i := range g {
		g[i] += a.Rho * (w[i] - a.V[i])
	}
	d := linalg.Dist2(w, a.V)
	return val + 0.5*a.Rho*d*d
}

type augmentedHessian struct {
	base HessianOperator
	rho  float64
}

// HessianAt returns H_f(w) + Rho*I.
func (a *Augmented) HessianAt(w []float64) HessianOperator {
	return &augmentedHessian{base: a.Base.HessianAt(w), rho: a.Rho}
}

// HessianDiag fills diag with diag(H_f) + Rho when the base problem
// supports diagonals; it panics otherwise (callers gate on the
// DiagHessian interface of the base).
func (a *Augmented) HessianDiag(w, diag []float64) {
	a.Base.(DiagHessian).HessianDiag(w, diag)
	for j := range diag {
		diag[j] += a.Rho
	}
}

func (h *augmentedHessian) Apply(v, hv []float64) {
	h.base.Apply(v, hv)
	linalg.Axpy(h.rho, v, hv)
}

// Scaled multiplies a problem by a constant factor. GIANT uses it to turn
// the local-shard Hessian sum into an estimate of the global Hessian
// (factor n/n_i).
type Scaled struct {
	Base   Problem
	Factor float64
}

// Dim returns the base dimension.
func (s *Scaled) Dim() int { return s.Base.Dim() }

// Value returns Factor * base value.
func (s *Scaled) Value(w []float64) float64 { return s.Factor * s.Base.Value(w) }

// Gradient fills g with Factor * base gradient and returns the scaled value.
func (s *Scaled) Gradient(w, g []float64) float64 {
	val := s.Base.Gradient(w, g)
	linalg.Scal(s.Factor, g)
	return s.Factor * val
}

type scaledHessian struct {
	base   HessianOperator
	factor float64
}

// HessianAt returns Factor * base Hessian.
func (s *Scaled) HessianAt(w []float64) HessianOperator {
	return &scaledHessian{base: s.Base.HessianAt(w), factor: s.Factor}
}

// HessianDiag fills diag with Factor * base diagonal when the base
// problem supports diagonals.
func (s *Scaled) HessianDiag(w, diag []float64) {
	s.Base.(DiagHessian).HessianDiag(w, diag)
	for j := range diag {
		diag[j] *= s.Factor
	}
}

func (h *scaledHessian) Apply(v, hv []float64) {
	h.base.Apply(v, hv)
	linalg.Scal(h.factor, hv)
}

// CanDiag reports whether prob supports HessianDiag all the way down the
// wrapper chain (Augmented and Scaled forward to their base problems, so
// asking them directly would claim support their base may lack).
func CanDiag(prob Problem) bool {
	switch p := prob.(type) {
	case *Augmented:
		return CanDiag(p.Base)
	case *Scaled:
		return CanDiag(p.Base)
	default:
		_, ok := prob.(DiagHessian)
		return ok
	}
}

// Quadratic is the test problem F(w) = 1/2 w^T A w - b^T w for a symmetric
// positive definite A. Newton's method converges on it in one exact step,
// which makes it the canonical oracle for the CG and Newton solvers.
type Quadratic struct {
	A *linalg.Matrix // d x d, symmetric positive definite
	B []float64
}

// Dim returns the number of variables.
func (q *Quadratic) Dim() int { return len(q.B) }

// Value evaluates the quadratic.
func (q *Quadratic) Value(w []float64) float64 {
	aw := make([]float64, len(w))
	linalg.MulNT(q.A, w, 1, aw) // A is symmetric: A*w == (w^T A)^T
	return 0.5*linalg.Dot(w, aw) - linalg.Dot(q.B, w)
}

// Gradient fills g = A w - b and returns the value.
func (q *Quadratic) Gradient(w, g []float64) float64 {
	linalg.MulNT(q.A, w, 1, g)
	val := 0.5*linalg.Dot(w, g) - linalg.Dot(q.B, w)
	linalg.Sub(g, q.B)
	return val
}

type quadHessian struct{ a *linalg.Matrix }

// HessianAt returns the constant Hessian A.
func (q *Quadratic) HessianAt(w []float64) HessianOperator { return quadHessian{a: q.A} }

func (h quadHessian) Apply(v, hv []float64) { linalg.MulNT(h.a, v, 1, hv) }
