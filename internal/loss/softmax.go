package loss

import (
	"fmt"
	"math"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
)

// Softmax is the paper's multi-class cross-entropy objective (eq. 8) with
// L2 regularization g(x) = L2/2 ||x||^2 in the *sum* (not mean) convention:
//
//	F(w) = sum_i [ log(1 + sum_{c<C-1} e^{<a_i, w_c>}) - <a_i, w_{y_i}> ] + L2/2 ||w||^2
//
// Classes are labeled 0..C-1; class C-1 is the zero-weight reference class,
// so the parameter vector has length (C-1)*p laid out as C-1 contiguous
// blocks of p. For C=2 this is exactly binary logistic regression.
//
// All bulk work (scores, probabilities, gradient accumulation) runs as
// device kernels, and the log-sum-exp stabilization of paper §6 guarantees
// every exponential has a non-positive argument. The score matrix and its
// log-sum-exp / residual sweep are fused into a single MulNTReduce launch
// (one pass over the n x m tile while it is cache-hot), and every scratch
// buffer and kernel functor is cached on the problem, so steady-state
// Value/Gradient/Hessian evaluations perform zero heap allocations.
type Softmax struct {
	X   Features
	Y   []int // labels in [0, C)
	C   int   // number of classes, >= 2
	L2  float64
	Dev *device.Device

	// scores is the n x (C-1) fused scratch tile: Value leaves raw scores
	// in it, Gradient and HessianDiag overwrite it in place with
	// probabilities/residuals during the same launch.
	scores []float64

	// Persistent fused-launch functors, created alongside the scratch so
	// steady-state evaluations pass the same func values to the device
	// (no per-call closure allocation).
	valueFn func(lo, hi int) float64
	gradFn  func(lo, hi int) float64
	probFn  func(lo, hi int) float64

	hess *softmaxHessian // cached Hessian operator, rebound by HessianAt

	// Prediction scratch (grow-only, shared by Predict/Accuracy).
	predScores []float64
	predTarget []int
	predFn     func(lo, hi int)
	predOut    []int

	// Probability scratch: ProbaInto expands the n x (C-1) score tile
	// into n x C probabilities (reference class included) in one launch.
	probaTarget []float64
	probaFn     func(lo, hi int) float64
}

// NewSoftmax validates inputs and returns the objective.
func NewSoftmax(dev *device.Device, x Features, y []int, classes int, l2 float64) (*Softmax, error) {
	if classes < 2 {
		return nil, fmt.Errorf("loss: need at least 2 classes, got %d", classes)
	}
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("loss: %d rows but %d labels", x.Rows(), len(y))
	}
	if l2 < 0 {
		return nil, fmt.Errorf("loss: negative L2 %v", l2)
	}
	for i, c := range y {
		if c < 0 || c >= classes {
			return nil, fmt.Errorf("loss: label %d at row %d outside [0,%d)", c, i, classes)
		}
	}
	return &Softmax{X: x, Y: y, C: classes, L2: l2, Dev: dev}, nil
}

// NewScorer returns a training-data-free Softmax used purely for
// inference: PredictInto, ProbaInto, and Accuracy against explicitly
// passed features all work; Value/Gradient/HessianAt (which need the
// training set) must not be called. This is what the serving layer's
// Predictor wraps — it reuses the same cached prediction scratch and
// device arena as the training-side evaluations, so steady-state scoring
// performs zero heap allocations.
func NewScorer(dev *device.Device, classes int) (*Softmax, error) {
	if classes < 2 {
		return nil, fmt.Errorf("loss: need at least 2 classes, got %d", classes)
	}
	return &Softmax{X: Dense{M: linalg.NewMatrix(0, 0)}, Y: nil, C: classes, Dev: dev}, nil
}

// N returns the number of local samples.
func (s *Softmax) N() int { return s.X.Rows() }

// Dim returns (C-1) * p.
func (s *Softmax) Dim() int { return (s.C - 1) * s.X.Cols() }

func (s *Softmax) ensureScratch() {
	n, m := s.X.Rows(), s.C-1
	if len(s.scores) == n*m && s.valueFn != nil {
		return
	}
	s.scores = make([]float64, n*m)
	// The functors close over the problem, not over per-call state, so
	// they are created exactly once per scratch shape.
	s.valueFn = func(lo, hi int) float64 {
		var part float64
		for i := lo; i < hi; i++ {
			row := s.scores[i*m : (i+1)*m]
			part += lseRow(row, nil)
			if yi := s.Y[i]; yi < m {
				part -= row[yi]
			}
		}
		return part
	}
	s.gradFn = func(lo, hi int) float64 {
		var part float64
		for i := lo; i < hi; i++ {
			row := s.scores[i*m : (i+1)*m]
			yi := s.Y[i]
			var sc float64
			if yi < m {
				sc = row[yi] // read the label score before the in-place overwrite
			}
			part += lseRow(row, row) // scores -> probabilities in place
			if yi < m {
				part -= sc
				row[yi] -= 1 // residual = prob - onehot
			}
		}
		return part
	}
	s.probFn = func(lo, hi int) float64 {
		for i := lo; i < hi; i++ {
			row := s.scores[i*m : (i+1)*m]
			lseRow(row, row)
		}
		return 0
	}
}

// lseRow computes the stabilized log-sum-exp of one score row:
// M = max(0, s_0..s_{m-1}), alpha = e^{-M} + sum_c e^{s_c - M},
// returning M + log(alpha) and leaving probabilities in prob if non-nil
// (prob_c = e^{s_c - M} / alpha; the implicit reference class has
// probability e^{-M}/alpha, not stored). prob may alias scores: each
// element is read before it is overwritten.
func lseRow(scores []float64, prob []float64) float64 {
	m := 0.0
	for _, v := range scores {
		if v > m {
			m = v
		}
	}
	alpha := math.Exp(-m)
	for _, v := range scores {
		alpha += math.Exp(v - m)
	}
	if prob != nil {
		inv := 1 / alpha
		for c, v := range scores {
			prob[c] = math.Exp(v-m) * inv
		}
	}
	return m + math.Log(alpha)
}

// Value evaluates the objective at w. Scores and their log-sum-exp sweep
// run as one fused launch.
func (s *Softmax) Value(w []float64) float64 {
	s.ensureScratch()
	total := s.X.MulNTReduce(s.Dev, w, s.C-1, s.scores, s.valueFn)
	nrm := linalg.Nrm2(w)
	return total + 0.5*s.L2*nrm*nrm
}

// Gradient fills g with the gradient at w and returns the objective value.
// Score matrix, log-sum-exp, residual, and gradient accumulation run as
// ONE fused launch (the "fused" kernel the paper runs on the GPU): the
// residual overwrites the score tile in place and the outer products
// accumulate panel by panel while the features are cache-hot, so each
// evaluation streams X once and the n x m scratch exactly once.
func (s *Softmax) Gradient(w, g []float64) float64 {
	if len(g) != s.Dim() {
		panic("loss: gradient buffer dimension mismatch")
	}
	s.ensureScratch()
	total := s.X.FusedGradient(s.Dev, w, s.C-1, s.scores, s.gradFn, g)
	linalg.Axpy(s.L2, w, g)
	nrm := linalg.Nrm2(w)
	return total + 0.5*s.L2*nrm*nrm
}

// softmaxHessian caches the per-sample probabilities at a fixed w so each
// CG iteration costs two feature products. The operator and its buffers
// are owned by the parent Softmax and rebound on every HessianAt call.
type softmaxHessian struct {
	s       *Softmax
	probs   []float64 // n x (C-1), probabilities at the anchor w
	u       []float64 // n x (C-1) scratch for X*v
	probFn  func(lo, hi int) float64
	applyFn func(lo, hi int) float64
}

// HessianAt returns the Hessian operator at w. The Gauss structure of the
// softmax Hessian is H = X^T diag-blocks(P) X + L2*I where each sample's
// block is diag(p_i) - p_i p_i^T over the C-1 explicit classes.
//
// The operator reuses scratch cached on the problem: it stays valid until
// the next HessianAt call on the same Softmax, which rebinds the shared
// buffers to the new anchor point (the Problem contract already promises
// no concurrent use).
func (s *Softmax) HessianAt(w []float64) HessianOperator {
	n, m := s.X.Rows(), s.C-1
	h := s.hess
	if h == nil || len(h.probs) != n*m {
		h = &softmaxHessian{
			s:     s,
			probs: make([]float64, n*m),
			u:     make([]float64, n*m),
		}
		h.probFn = func(lo, hi int) float64 {
			for i := lo; i < hi; i++ {
				row := h.probs[i*m : (i+1)*m]
				lseRow(row, row) // overwrite scores with probabilities in place
			}
			return 0
		}
		h.applyFn = func(lo, hi int) float64 {
			for i := lo; i < hi; i++ {
				p := h.probs[i*m : (i+1)*m]
				u := h.u[i*m : (i+1)*m]
				var pu float64
				for c := 0; c < m; c++ {
					pu += p[c] * u[c]
				}
				for c := 0; c < m; c++ {
					u[c] = p[c] * (u[c] - pu)
				}
			}
			return 0
		}
		s.hess = h
	}
	s.X.MulNTReduce(s.Dev, w, m, h.probs, h.probFn)
	return h
}

// Apply computes hv = H v in one fused launch:
//
//	u_i = X_i . v-blocks, r_{i,c} = p_{i,c} (u_{i,c} - <p_i, u_i>)
//	in place over u, and hv = X^T r + L2 * v — the same single-pass
//	pipeline as Gradient, so each CG iteration streams X once.
func (h *softmaxHessian) Apply(v, hv []float64) {
	s := h.s
	if len(v) != s.Dim() || len(hv) != s.Dim() {
		panic("loss: HessVec dimension mismatch")
	}
	s.X.FusedGradient(s.Dev, v, s.C-1, h.u, h.applyFn, hv)
	linalg.Axpy(s.L2, v, hv)
}

func (s *Softmax) ensurePredict(rows int) {
	m := s.C - 1
	if need := rows * m; cap(s.predScores) < need {
		s.predScores = make([]float64, need)
	}
	if s.predFn == nil {
		s.predFn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := s.predScores[i*m : (i+1)*m]
				best, bestScore := s.C-1, 0.0 // reference class has score 0
				for c, v := range row {
					if v > bestScore {
						best, bestScore = c, v
					}
				}
				s.predTarget[i] = best
			}
		}
	}
}

// Predict returns the argmax class for every row of x under weights w,
// following the paper's classification rule (§5): the reference class
// C-1 wins when every explicit score is negative.
func (s *Softmax) Predict(x Features, w []float64) []int {
	out := make([]int, x.Rows())
	s.PredictInto(x, w, out)
	return out
}

// PredictInto writes the argmax class of every row of x into out
// (length x.Rows()), reusing cached score scratch so steady-state calls
// allocate nothing. This is what the evaluation harness calls every
// trace point.
func (s *Softmax) PredictInto(x Features, w []float64, out []int) {
	rows := x.Rows()
	if len(out) != rows {
		panic("loss: PredictInto output dimension mismatch")
	}
	if rows == 0 {
		return
	}
	m := s.C - 1
	s.ensurePredict(rows)
	scores := s.predScores[:rows*m]
	x.MulNT(s.Dev, w, m, scores)
	s.predTarget = out
	s.Dev.ParallelFor(rows, 0, s.predFn)
	s.predTarget = nil
}

// probaRow expands one row of explicit-class scores into the full
// C-class probability vector (reference class last), using the same
// stabilization as lseRow. dst has length len(scores)+1 and must not
// alias scores.
func probaRow(scores, dst []float64) {
	m := 0.0
	for _, v := range scores {
		if v > m {
			m = v
		}
	}
	ref := math.Exp(-m)
	alpha := ref
	for c, v := range scores {
		e := math.Exp(v - m)
		dst[c] = e
		alpha += e
	}
	inv := 1 / alpha
	for c := range scores {
		dst[c] *= inv
	}
	dst[len(scores)] = ref * inv
}

// ProbaInto writes the softmax class probabilities of every row of x
// under weights w into out, row-major x.Rows() x C with the reference
// class in column C-1. Scores and the probability transform run as one
// fused MulNTReduce launch, and all scratch is cached on the problem, so
// steady-state calls allocate nothing. This is the /v1/proba kernel of
// the serving layer.
func (s *Softmax) ProbaInto(x Features, w []float64, out []float64) {
	rows := x.Rows()
	if len(out) != rows*s.C {
		panic("loss: ProbaInto output dimension mismatch")
	}
	if rows == 0 {
		return
	}
	m := s.C - 1
	s.ensurePredict(rows)
	if s.probaFn == nil {
		s.probaFn = func(lo, hi int) float64 {
			mm := s.C - 1
			for i := lo; i < hi; i++ {
				probaRow(s.predScores[i*mm:(i+1)*mm], s.probaTarget[i*s.C:(i+1)*s.C])
			}
			return 0
		}
	}
	scores := s.predScores[:rows*m]
	s.probaTarget = out
	x.MulNTReduce(s.Dev, w, m, scores, s.probaFn)
	s.probaTarget = nil
}

// Accuracy returns the fraction of rows of x classified as y under w.
func (s *Softmax) Accuracy(x Features, y []int, w []float64) float64 {
	if x.Rows() == 0 {
		return 0
	}
	if cap(s.predOut) < x.Rows() {
		s.predOut = make([]int, x.Rows())
	}
	pred := s.predOut[:x.Rows()]
	s.PredictInto(x, w, pred)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// Subproblem returns a new Softmax over the given sample rows with the
// regularization scaled by the subset fraction, so that summing the
// subproblem objectives over a partition of the rows reproduces the full
// objective. This is how data is sharded across cluster ranks and how SGD
// mini-batches are drawn.
func (s *Softmax) Subproblem(idx []int) *Softmax {
	y := make([]int, len(idx))
	for k, i := range idx {
		y[k] = s.Y[i]
	}
	frac := 0.0
	if s.X.Rows() > 0 {
		frac = float64(len(idx)) / float64(s.X.Rows())
	}
	return &Softmax{
		X:   s.X.Subset(idx),
		Y:   y,
		C:   s.C,
		L2:  s.L2 * frac,
		Dev: s.Dev,
	}
}
