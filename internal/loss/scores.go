package loss

// Partial-logit scoring: the class-sharded serving tier splits the
// (C-1) x p weight matrix's class rows across replicas, each scoring a
// raw partial score tile S_r = X * W_r^T for its rows, and the router
// reassembles the full score matrix column-range by column-range before
// applying the same argmax / probability transforms as single-node
// prediction. The split is exact because the MulNT kernels (dense and
// CSR) compute every output class with its own accumulator in
// increasing-j order — S[i,c] depends only on row i of X and row c of W,
// never on how many classes share the launch — so merged shard scores
// are bitwise identical to one full-width launch.

// ScoresInto writes the raw explicit-class score tile S = X * W^T into
// out, row-major x.Rows() x (C-1). No softmax transform is applied: this
// is the partial-logit kernel a class-shard replica runs over its slice
// of the weight rows (its local C counts the shard's rows plus the
// implicit reference class). Scratch-free and zero-allocation: out is
// the kernel's destination.
func (s *Softmax) ScoresInto(x Features, w []float64, out []float64) {
	rows := x.Rows()
	if len(out) != rows*(s.C-1) {
		panic("loss: ScoresInto output dimension mismatch")
	}
	if rows == 0 {
		return
	}
	x.MulNT(s.Dev, w, s.C-1, out)
}

// PredictFromScores writes the argmax class of each row of a full
// explicit-class score matrix (row-major rows x (classes-1)) into out,
// with exactly the tie-breaking of PredictInto: the zero-score reference
// class classes-1 wins unless some explicit score is strictly positive,
// and among explicit classes the lowest index wins ties. This is the
// router-side merge kernel for class-sharded prediction.
func PredictFromScores(scores []float64, rows, classes int, out []int) {
	m := classes - 1
	if len(scores) != rows*m {
		panic("loss: PredictFromScores score dimension mismatch")
	}
	if len(out) != rows {
		panic("loss: PredictFromScores output dimension mismatch")
	}
	for i := 0; i < rows; i++ {
		row := scores[i*m : (i+1)*m]
		best, bestScore := classes-1, 0.0 // reference class has score 0
		for c, v := range row {
			if v > bestScore {
				best, bestScore = c, v
			}
		}
		out[i] = best
	}
}

// ProbaFromScores expands a full explicit-class score matrix (row-major
// rows x (classes-1)) into class probabilities (row-major rows x
// classes, reference class last), using the same stabilized transform as
// ProbaInto — merged shard scores therefore produce bitwise-identical
// probabilities to a single-node ProbaInto call. out must not alias
// scores.
func ProbaFromScores(scores []float64, rows, classes int, out []float64) {
	m := classes - 1
	if len(scores) != rows*m {
		panic("loss: ProbaFromScores score dimension mismatch")
	}
	if len(out) != rows*classes {
		panic("loss: ProbaFromScores output dimension mismatch")
	}
	for i := 0; i < rows; i++ {
		probaRow(scores[i*m:(i+1)*m], out[i*classes:(i+1)*classes])
	}
}
