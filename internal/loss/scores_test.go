package loss

import (
	"math/rand"
	"testing"
)

// TestScoresMergeMatchesPredictInto pins the class-sharding identity at
// the loss layer: scoring each contiguous slice of the weight rows
// separately and concatenating the partial score columns, then applying
// the merge kernels, is bitwise identical to single-launch PredictInto /
// ProbaInto over the full weight matrix — for dense and CSR features and
// for shard counts that exercise both the 4-wide and remainder kernel
// paths.
func TestScoresMergeMatchesPredictInto(t *testing.T) {
	for _, sparseX := range []bool{false, true} {
		s := allocProblem(t, sparseX)
		rng := rand.New(rand.NewSource(81))
		w := randW(rng, s.Dim())
		n, p, c := s.X.Rows(), s.X.Cols(), s.C
		m := c - 1

		wantPred := make([]int, n)
		s.PredictInto(s.X, w, wantPred)
		wantProba := make([]float64, n*c)
		s.ProbaInto(s.X, w, wantProba)

		for shards := 1; shards <= 4; shards++ {
			// Contiguous balanced split of the m explicit class rows.
			merged := make([]float64, n*m)
			lo := 0
			for r := 0; r < shards; r++ {
				width := m / shards
				if r < m%shards {
					width++
				}
				hi := lo + width
				if width == 0 {
					continue
				}
				shard, err := NewScorer(testDev, width+1)
				if err != nil {
					t.Fatal(err)
				}
				part := make([]float64, n*width)
				shard.ScoresInto(s.X, w[lo*p:hi*p], part)
				for i := 0; i < n; i++ {
					copy(merged[i*m+lo:i*m+hi], part[i*width:(i+1)*width])
				}
				lo = hi
			}

			gotPred := make([]int, n)
			PredictFromScores(merged, n, c, gotPred)
			for i := range wantPred {
				if gotPred[i] != wantPred[i] {
					t.Fatalf("sparse=%v shards=%d row %d: merged class %d, PredictInto %d",
						sparseX, shards, i, gotPred[i], wantPred[i])
				}
			}
			gotProba := make([]float64, n*c)
			ProbaFromScores(merged, n, c, gotProba)
			for i := range wantProba {
				if gotProba[i] != wantProba[i] { // bitwise: == on float64
					t.Fatalf("sparse=%v shards=%d proba[%d]: merged %v, ProbaInto %v",
						sparseX, shards, i, gotProba[i], wantProba[i])
				}
			}
		}
	}
}

// TestPredictFromScoresTieBreaking checks the reference-class and
// lowest-index tie rules match PredictInto's documented behavior.
func TestPredictFromScoresTieBreaking(t *testing.T) {
	// Row 0: all explicit scores negative -> reference class (3).
	// Row 1: explicit class 1 strictly positive -> 1.
	// Row 2: two equal positive scores -> lowest index (0).
	// Row 3: explicit score exactly 0 does not beat the reference.
	scores := []float64{
		-1, -2, -3,
		-1, 2, 2,
		5, 5, 1,
		0, -1, 0,
	}
	out := make([]int, 4)
	PredictFromScores(scores, 4, 4, out)
	want := []int{3, 1, 0, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("row %d: got %d want %d (out %v)", i, out[i], want[i], out)
		}
	}
}

func TestScoresIntoZeroAllocsSteadyState(t *testing.T) {
	s := allocProblem(t, false)
	w := randW(rand.New(rand.NewSource(82)), s.Dim())
	x := s.X
	out := make([]float64, x.Rows()*(s.C-1))
	if allocs := testing.AllocsPerRun(10, func() { s.ScoresInto(x, w, out) }); allocs != 0 {
		t.Errorf("ScoresInto allocates %v per call in steady state, want 0", allocs)
	}
}
