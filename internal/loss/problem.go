// Package loss defines the optimization problems of the paper: multi-class
// softmax cross-entropy with L2 regularization (paper §5), numerically
// stabilized with the log-sum-exp trick (paper §6), together with the
// Hessian-free operator interface consumed by the Newton-CG solver and the
// augmented-Lagrangian wrapper used by the ADMM subproblems (eq. 6a).
package loss

import (
	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/sparse"
)

// Problem is a twice-differentiable objective accessed Hessian-free.
// Implementations are not safe for concurrent use; each cluster rank owns
// its own Problem over its local shard.
type Problem interface {
	// Dim is the number of optimization variables.
	Dim() int
	// Value evaluates the objective at w.
	Value(w []float64) float64
	// Gradient fills g with the gradient at w and returns the objective
	// value (fused, since both share the score computation).
	Gradient(w, g []float64) float64
	// HessianAt returns an operator applying the Hessian at w. The
	// operator caches per-sample quantities so repeated applications
	// inside CG cost two matrix products each. The operator may share
	// scratch with the problem: it stays valid until the next HessianAt
	// call on the same problem.
	HessianAt(w []float64) HessianOperator
}

// HessianOperator applies a fixed Hessian to vectors.
type HessianOperator interface {
	// Apply computes hv = H v.
	Apply(v, hv []float64)
}

// DiagHessian is implemented by problems that can also produce the
// Hessian diagonal at w, enabling Jacobi-preconditioned CG.
type DiagHessian interface {
	// HessianDiag fills diag with the Hessian diagonal at w.
	HessianDiag(w, diag []float64)
}

// Features abstracts the design matrix so dense and sparse data share the
// same solver code. Implementations execute on the provided device.
type Features interface {
	// Rows is the number of samples.
	Rows() int
	// Cols is the number of raw features p.
	Cols() int
	// MulNT computes S = X * W^T where W is m x p row-major; S is
	// Rows() x m row-major and is overwritten.
	MulNT(dev *device.Device, w []float64, m int, s []float64)
	// MulNTReduce computes S = X * W^T and applies fn to each row range
	// of the fresh tile in the same launch, returning the chunk-ordered
	// sum of fn's partials (the fused score + log-sum-exp primitive).
	MulNTReduce(dev *device.Device, w []float64, m int, s []float64, fn func(lo, hi int) float64) float64
	// FusedGradient computes S = X * W^T, applies fn to each fresh row
	// range of S (in place; the residual transform), and accumulates
	// G = S^T * X, all in one launch that streams X once. Returns the
	// sum of fn's partials; G is overwritten.
	FusedGradient(dev *device.Device, w []float64, m int, s []float64, fn func(lo, hi int) float64, g []float64) float64
	// MulTN computes G = D^T * X where D is Rows() x m row-major; G is
	// m x p row-major and is overwritten.
	MulTN(dev *device.Device, d []float64, m int, g []float64)
	// Subset returns the features restricted to the given rows (copied).
	Subset(idx []int) Features
}

// Dense adapts a dense row-major matrix to the Features interface.
type Dense struct{ M *linalg.Matrix }

// Rows returns the number of samples.
func (d Dense) Rows() int { return d.M.Rows }

// Cols returns the number of features.
func (d Dense) Cols() int { return d.M.Cols }

// MulNT computes S = X * W^T on the device.
func (d Dense) MulNT(dev *device.Device, w []float64, m int, s []float64) {
	dev.MulNT(d.M, w, m, s)
}

// MulNTReduce runs the fused score + row-functor launch on the device.
func (d Dense) MulNTReduce(dev *device.Device, w []float64, m int, s []float64, fn func(lo, hi int) float64) float64 {
	return dev.MulNTReduce(d.M, w, m, s, fn)
}

// FusedGradient runs the single-launch score+functor+accumulate pipeline.
func (d Dense) FusedGradient(dev *device.Device, w []float64, m int, s []float64, fn func(lo, hi int) float64, g []float64) float64 {
	return dev.FusedGradient(d.M, w, m, s, fn, g)
}

// MulTN computes G = D^T * X on the device.
func (d Dense) MulTN(dev *device.Device, dm []float64, m int, g []float64) {
	dev.MulTN(d.M, dm, m, g)
}

// Subset returns a copy of the selected rows.
func (d Dense) Subset(idx []int) Features { return Dense{M: d.M.RowSubset(idx)} }

// Sparse adapts a CSR matrix to the Features interface.
type Sparse struct{ M *sparse.CSR }

// Rows returns the number of samples.
func (s Sparse) Rows() int { return s.M.NumRows }

// Cols returns the number of features.
func (s Sparse) Cols() int { return s.M.NumCols }

// MulNT computes S = X * W^T on the device.
func (s Sparse) MulNT(dev *device.Device, w []float64, m int, out []float64) {
	s.M.MulNT(dev, w, m, out)
}

// MulNTReduce runs the fused score + row-functor launch on the device.
func (s Sparse) MulNTReduce(dev *device.Device, w []float64, m int, out []float64, fn func(lo, hi int) float64) float64 {
	return s.M.MulNTReduce(dev, w, m, out, fn)
}

// FusedGradient runs the single-launch score+functor+accumulate pipeline.
func (s Sparse) FusedGradient(dev *device.Device, w []float64, m int, out []float64, fn func(lo, hi int) float64, g []float64) float64 {
	return s.M.FusedGradient(dev, w, m, out, fn, g)
}

// MulTN computes G = D^T * X on the device.
func (s Sparse) MulTN(dev *device.Device, dm []float64, m int, g []float64) {
	s.M.MulTN(dev, dm, m, g)
}

// Subset returns a copy of the selected rows.
func (s Sparse) Subset(idx []int) Features { return Sparse{M: s.M.RowSubset(idx)} }
