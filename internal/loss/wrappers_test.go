package loss

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
)

// randSPD returns a random symmetric positive definite d x d matrix.
func randSPD(rng *rand.Rand, d int) *linalg.Matrix {
	b := linalg.NewMatrix(d, d)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for k := 0; k < d; k++ {
				acc += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, acc)
		}
		a.Set(i, i, a.At(i, i)+float64(d)) // diagonal shift for conditioning
	}
	return a
}

func TestQuadraticGradientAndHessian(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d := 6
	q := &Quadratic{A: randSPD(rng, d), B: randW(rng, d)}
	w := randW(rng, d)
	g := make([]float64, d)
	val := q.Gradient(w, g)
	if math.Abs(val-q.Value(w)) > 1e-10*math.Max(1, math.Abs(val)) {
		t.Fatalf("fused value mismatch: %v vs %v", val, q.Value(w))
	}
	for j := 0; j < d; j++ {
		fd := fdGrad(q, w, j, 1e-6)
		if math.Abs(g[j]-fd) > 1e-4*math.Max(1, math.Abs(fd)) {
			t.Fatalf("quadratic grad[%d]=%v, fd=%v", j, g[j], fd)
		}
	}
	h := q.HessianAt(w)
	v := randW(rng, d)
	hv := make([]float64, d)
	h.Apply(v, hv)
	want := make([]float64, d)
	linalg.MulNT(q.A, v, 1, want)
	for j := range hv {
		if hv[j] != want[j] {
			t.Fatal("quadratic Hessian is not A")
		}
	}
}

func TestAugmentedIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := randProblem(rng, 20, 4, 3, 0.1)
	d := base.Dim()
	v := randW(rng, d)
	rho := 2.5
	aug := NewAugmented(base, rho, v)
	w := randW(rng, d)

	// Value identity
	dist := linalg.Dist2(w, v)
	wantVal := base.Value(w) + 0.5*rho*dist*dist
	if got := aug.Value(w); math.Abs(got-wantVal) > 1e-10*math.Max(1, math.Abs(wantVal)) {
		t.Fatalf("Augmented.Value=%v, want %v", got, wantVal)
	}

	// Gradient identity
	gBase := make([]float64, d)
	base.Gradient(w, gBase)
	gAug := make([]float64, d)
	gotVal := aug.Gradient(w, gAug)
	if math.Abs(gotVal-wantVal) > 1e-10*math.Max(1, math.Abs(wantVal)) {
		t.Fatalf("Augmented.Gradient value=%v, want %v", gotVal, wantVal)
	}
	for j := 0; j < d; j++ {
		want := gBase[j] + rho*(w[j]-v[j])
		if math.Abs(gAug[j]-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Fatalf("Augmented grad[%d]=%v, want %v", j, gAug[j], want)
		}
	}

	// Hessian identity: H_aug u = H_base u + rho*u
	u := randW(rng, d)
	huBase := make([]float64, d)
	base.HessianAt(w).Apply(u, huBase)
	huAug := make([]float64, d)
	aug.HessianAt(w).Apply(u, huAug)
	for j := 0; j < d; j++ {
		want := huBase[j] + rho*u[j]
		if math.Abs(huAug[j]-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Fatalf("Augmented Hv[%d]=%v, want %v", j, huAug[j], want)
		}
	}
}

func TestAugmentedMinimizerMovesTowardAnchor(t *testing.T) {
	// As rho -> infinity the augmented minimizer approaches V; check the
	// gradient at V shrinks relative to rho.
	rng := rand.New(rand.NewSource(32))
	base := randProblem(rng, 20, 3, 2, 0.1)
	d := base.Dim()
	v := randW(rng, d)
	g := make([]float64, d)
	aug := NewAugmented(base, 1e8, v)
	aug.Gradient(v, g)
	// At w=V the prox term vanishes; gradient = base gradient, small
	// relative to curvature rho.
	if linalg.Nrm2(g)/1e8 > 1e-3 {
		t.Fatalf("prox term should dominate: |g|/rho = %v", linalg.Nrm2(g)/1e8)
	}
}

func TestAugmentedDimensionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	base := randProblem(rng, 10, 3, 2, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong anchor dimension")
		}
	}()
	NewAugmented(base, 1, make([]float64, base.Dim()+1))
}

func TestScaledIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	base := randProblem(rng, 15, 4, 3, 0.2)
	d := base.Dim()
	factor := 3.5
	sc := &Scaled{Base: base, Factor: factor}
	w := randW(rng, d)
	if got, want := sc.Value(w), factor*base.Value(w); math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
		t.Fatalf("Scaled.Value=%v, want %v", got, want)
	}
	gBase := make([]float64, d)
	base.Gradient(w, gBase)
	gSc := make([]float64, d)
	sc.Gradient(w, gSc)
	for j := range gSc {
		if math.Abs(gSc[j]-factor*gBase[j]) > 1e-10*math.Max(1, math.Abs(gBase[j])) {
			t.Fatal("Scaled gradient mismatch")
		}
	}
	u := randW(rng, d)
	hBase, hSc := make([]float64, d), make([]float64, d)
	base.HessianAt(w).Apply(u, hBase)
	sc.HessianAt(w).Apply(u, hSc)
	for j := range hSc {
		if math.Abs(hSc[j]-factor*hBase[j]) > 1e-10*math.Max(1, math.Abs(hBase[j])) {
			t.Fatal("Scaled Hessian mismatch")
		}
	}
}
