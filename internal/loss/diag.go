package loss

import "newtonadmm/internal/linalg"

// HessianDiag fills diag (length Dim()) with the diagonal of the softmax
// Hessian at w:
//
//	H[(c,j),(c,j)] = sum_i a_ij^2 * p_ic (1 - p_ic) + L2,
//
// computed as one fused device kernel (scores and probabilities in a
// single MulNTReduce launch, overwriting the score tile in place). The
// diagonal is what a Jacobi preconditioner for CG needs — an optional
// optimization beyond the paper, exposed through cg.Options.Jacobi.
func (s *Softmax) HessianDiag(w, diag []float64) {
	if len(diag) != s.Dim() {
		panic("loss: HessianDiag dimension mismatch")
	}
	n, m, p := s.X.Rows(), s.C-1, s.X.Cols()
	s.ensureScratch()
	s.X.MulNTReduce(s.Dev, w, m, s.scores, s.probFn)
	probs := s.scores

	for j := range diag {
		diag[j] = s.L2
	}
	switch x := s.X.(type) {
	case Dense:
		// Accumulate per class block: diag[c*p+j] += a_ij^2 * w_ic where
		// w_ic = p_ic(1-p_ic). Parallelize over rows with arena-pooled
		// chunk accumulators like the gradient kernel.
		accumulateDiagDense(s, x, probs, diag, n, m, p)
	case Sparse:
		accumulateDiagSparse(s, x, probs, diag, n, m)
	default:
		// Generic fallback through m Hessian-free probes would be O(m)
		// products; unknown Features implementations are not expected.
		panic("loss: HessianDiag requires Dense or Sparse features")
	}
}

func accumulateDiagDense(s *Softmax, x Dense, probs, diag []float64, n, m, p int) {
	parts := s.Dev.ScratchParts(s.Dev.ChunkCount(n, 0), len(diag))
	s.Dev.ParallelForChunks(n, 0, func(chunk, lo, hi int) {
		part := parts[chunk]
		linalg.Zero(part)
		for i := lo; i < hi; i++ {
			row := x.M.Row(i)
			pr := probs[i*m : (i+1)*m]
			for c := 0; c < m; c++ {
				w := pr[c] * (1 - pr[c])
				if w == 0 {
					continue
				}
				block := part[c*p : (c+1)*p]
				for j, v := range row {
					block[j] += w * v * v
				}
			}
		}
	})
	reduceDiagParts(diag, parts)
}

func accumulateDiagSparse(s *Softmax, x Sparse, probs, diag []float64, n, m int) {
	p := x.M.NumCols
	parts := s.Dev.ScratchParts(s.Dev.ChunkCount(n, 0), len(diag))
	s.Dev.ParallelForChunks(n, 0, func(chunk, lo, hi int) {
		part := parts[chunk]
		linalg.Zero(part)
		for i := lo; i < hi; i++ {
			pr := probs[i*m : (i+1)*m]
			start, end := x.M.RowPtr[i], x.M.RowPtr[i+1]
			for c := 0; c < m; c++ {
				w := pr[c] * (1 - pr[c])
				if w == 0 {
					continue
				}
				block := part[c*p : (c+1)*p]
				for k := start; k < end; k++ {
					v := x.M.Val[k]
					block[x.M.Col[k]] += w * v * v
				}
			}
		}
	})
	reduceDiagParts(diag, parts)
}

// reduceDiagParts adds chunk partials into diag in chunk order, keeping
// the floating-point sum deterministic.
func reduceDiagParts(diag []float64, parts [][]float64) {
	for _, part := range parts {
		for j, v := range part {
			diag[j] += v
		}
	}
}
