package loss

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/sparse"
)

var testDev = device.New("loss-test", 4)

func randProblem(rng *rand.Rand, n, p, classes int, l2 float64) *Softmax {
	x := linalg.NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	s, err := NewSoftmax(testDev, Dense{M: x}, y, classes, l2)
	if err != nil {
		panic(err)
	}
	return s
}

func randW(rng *rand.Rand, dim int) []float64 {
	w := make([]float64, dim)
	for i := range w {
		w[i] = 0.5 * rng.NormFloat64()
	}
	return w
}

// central finite difference of Value along coordinate j.
func fdGrad(p Problem, w []float64, j int, h float64) float64 {
	wp := linalg.Clone(w)
	wm := linalg.Clone(w)
	wp[j] += h
	wm[j] -= h
	return (p.Value(wp) - p.Value(wm)) / (2 * h)
}

func TestNewSoftmaxValidation(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	if _, err := NewSoftmax(testDev, Dense{M: x}, []int{0, 1, 0}, 1, 0); err == nil {
		t.Fatal("classes < 2 accepted")
	}
	if _, err := NewSoftmax(testDev, Dense{M: x}, []int{0, 1}, 2, 0); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := NewSoftmax(testDev, Dense{M: x}, []int{0, 2, 0}, 2, 0); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := NewSoftmax(testDev, Dense{M: x}, []int{0, 1, 0}, 2, -1); err == nil {
		t.Fatal("negative L2 accepted")
	}
	if _, err := NewSoftmax(testDev, Dense{M: x}, []int{0, 1, 0}, 2, 0.1); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, classes := range []int{2, 3, 5} {
		s := randProblem(rng, 40, 7, classes, 0.1)
		w := randW(rng, s.Dim())
		g := make([]float64, s.Dim())
		s.Gradient(w, g)
		for trial := 0; trial < 10; trial++ {
			j := rng.Intn(s.Dim())
			fd := fdGrad(s, w, j, 1e-5)
			if math.Abs(g[j]-fd) > 1e-4*math.Max(1, math.Abs(fd)) {
				t.Fatalf("C=%d: grad[%d]=%v, fd=%v", classes, j, g[j], fd)
			}
		}
	}
}

func TestGradientReturnsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randProblem(rng, 25, 4, 3, 0.05)
	w := randW(rng, s.Dim())
	g := make([]float64, s.Dim())
	v1 := s.Gradient(w, g)
	v2 := s.Value(w)
	if math.Abs(v1-v2) > 1e-10*math.Max(1, math.Abs(v2)) {
		t.Fatalf("fused value %v != Value %v", v1, v2)
	}
}

func TestHessVecMatchesGradientDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, classes := range []int{2, 4} {
		s := randProblem(rng, 30, 6, classes, 0.2)
		w := randW(rng, s.Dim())
		h := s.HessianAt(w)
		v := randW(rng, s.Dim())
		hv := make([]float64, s.Dim())
		h.Apply(v, hv)

		// central difference of the gradient along direction v
		eps := 1e-5
		wp, wm := linalg.Clone(w), linalg.Clone(w)
		linalg.Axpy(eps, v, wp)
		linalg.Axpy(-eps, v, wm)
		gp := make([]float64, s.Dim())
		gm := make([]float64, s.Dim())
		s.Gradient(wp, gp)
		s.Gradient(wm, gm)
		for j := range hv {
			fd := (gp[j] - gm[j]) / (2 * eps)
			if math.Abs(hv[j]-fd) > 1e-3*math.Max(1, math.Abs(fd)) {
				t.Fatalf("C=%d: Hv[%d]=%v, fd=%v", classes, j, hv[j], fd)
			}
		}
	}
}

func TestHessianPositiveSemidefiniteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randProblem(rng, 50, 5, 3, 0)
	w := randW(rng, s.Dim())
	h := s.HessianAt(w)
	hv := make([]float64, s.Dim())
	for trial := 0; trial < 30; trial++ {
		v := randW(rng, s.Dim())
		h.Apply(v, hv)
		if q := linalg.Dot(v, hv); q < -1e-9 {
			t.Fatalf("Hessian not PSD: v^T H v = %v", q)
		}
	}
}

func TestHessianLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := randProblem(rng, 20, 4, 3, 0.3)
	w := randW(rng, s.Dim())
	h := s.HessianAt(w)
	d := s.Dim()
	u, v := randW(rng, d), randW(rng, d)
	alpha := rng.NormFloat64()
	comb := make([]float64, d)
	linalg.Waxpby(alpha, u, 1, v, comb)
	hu, hvv, hc := make([]float64, d), make([]float64, d), make([]float64, d)
	h.Apply(u, hu)
	h.Apply(v, hvv)
	h.Apply(comb, hc)
	for j := 0; j < d; j++ {
		want := alpha*hu[j] + hvv[j]
		if math.Abs(hc[j]-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("H not linear at %d: %v vs %v", j, hc[j], want)
		}
	}
}

func TestLogSumExpStability(t *testing.T) {
	// Huge positive and huge negative scores must not overflow.
	dev := testDev
	x := linalg.NewMatrix(2, 1)
	x.Set(0, 0, 1)
	x.Set(1, 0, -1)
	s, err := NewSoftmax(dev, Dense{M: x}, []int{0, 1}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{1e3, 1e5, 1e8} {
		w := []float64{scale}
		v := s.Value(w)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Value overflowed at scale %v: %v", scale, v)
		}
		// Sample 0 has score=scale, label 0 -> loss ~ 0. Sample 1 has
		// score=-scale, label 1 (reference) -> loss ~ 0.
		if v > 1e-6 {
			t.Fatalf("Value at scale %v = %v, want ~0", scale, v)
		}
		g := make([]float64, 1)
		s.Gradient(w, g)
		if !linalg.AllFinite(g) {
			t.Fatalf("gradient overflowed at scale %v", scale)
		}
	}
}

func TestBinaryMatchesManualLogistic(t *testing.T) {
	// For C=2 the objective must equal sum_i log(1+e^{s_i}) - 1(y=0) s_i.
	rng := rand.New(rand.NewSource(25))
	n, p := 30, 4
	x := linalg.NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(2)
	}
	s, err := NewSoftmax(testDev, Dense{M: x}, y, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := randW(rng, p)
	var want float64
	for i := 0; i < n; i++ {
		score := linalg.Dot(x.Row(i), w)
		want += math.Log(1 + math.Exp(score))
		if y[i] == 0 {
			want -= score
		}
	}
	nrm := linalg.Nrm2(w)
	want += 0.05 * nrm * nrm
	if got := s.Value(w); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("binary Value = %v, want %v", got, want)
	}
}

func TestSparseDenseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n, p, classes := 40, 12, 4
	x := linalg.NewMatrix(n, p)
	for i := range x.Data {
		if rng.Float64() < 0.3 {
			x.Data[i] = rng.NormFloat64()
		}
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	dense, _ := NewSoftmax(testDev, Dense{M: x}, y, classes, 0.1)
	sp, _ := NewSoftmax(testDev, Sparse{M: sparse.FromDense(x)}, y, classes, 0.1)
	w := randW(rng, dense.Dim())
	if dv, sv := dense.Value(w), sp.Value(w); math.Abs(dv-sv) > 1e-9*math.Max(1, math.Abs(dv)) {
		t.Fatalf("dense Value %v != sparse Value %v", dv, sv)
	}
	gd := make([]float64, dense.Dim())
	gs := make([]float64, dense.Dim())
	dense.Gradient(w, gd)
	sp.Gradient(w, gs)
	for j := range gd {
		if math.Abs(gd[j]-gs[j]) > 1e-9*math.Max(1, math.Abs(gd[j])) {
			t.Fatalf("gradient mismatch at %d: %v vs %v", j, gd[j], gs[j])
		}
	}
	hd := dense.HessianAt(w)
	hs := sp.HessianAt(w)
	v := randW(rng, dense.Dim())
	hvd := make([]float64, dense.Dim())
	hvs := make([]float64, dense.Dim())
	hd.Apply(v, hvd)
	hs.Apply(v, hvs)
	for j := range hvd {
		if math.Abs(hvd[j]-hvs[j]) > 1e-9*math.Max(1, math.Abs(hvd[j])) {
			t.Fatalf("Hv mismatch at %d: %v vs %v", j, hvd[j], hvs[j])
		}
	}
}

func TestSubproblemPartitionSumsToWhole(t *testing.T) {
	// Splitting rows into shards must give sum_i f_i = F (values and grads),
	// which is the invariant the distributed objective relies on.
	rng := rand.New(rand.NewSource(27))
	s := randProblem(rng, 36, 5, 3, 0.7)
	w := randW(rng, s.Dim())
	idxA := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	idxB := []int{12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}
	idxC := []int{24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35}
	var sumV float64
	sumG := make([]float64, s.Dim())
	g := make([]float64, s.Dim())
	for _, idx := range [][]int{idxA, idxB, idxC} {
		sub := s.Subproblem(idx)
		sumV += sub.Gradient(w, g)
		linalg.Add(sumG, g)
	}
	fullV := s.Gradient(w, g)
	if math.Abs(sumV-fullV) > 1e-9*math.Max(1, math.Abs(fullV)) {
		t.Fatalf("shard values sum to %v, want %v", sumV, fullV)
	}
	for j := range g {
		if math.Abs(sumG[j]-g[j]) > 1e-9*math.Max(1, math.Abs(g[j])) {
			t.Fatalf("shard gradients sum mismatch at %d", j)
		}
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	// Two well-separated clusters in 1-D, binary classification.
	x := linalg.NewMatrix(4, 1)
	x.Data = []float64{5, 4, -5, -4}
	y := []int{0, 0, 1, 1}
	s, err := NewSoftmax(testDev, Dense{M: x}, y, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{2} // positive score -> class 0
	pred := s.Predict(Dense{M: x}, w)
	want := []int{0, 0, 1, 1}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("Predict = %v, want %v", pred, want)
		}
	}
	if acc := s.Accuracy(Dense{M: x}, y, w); acc != 1 {
		t.Fatalf("Accuracy = %v, want 1", acc)
	}
	if acc := s.Accuracy(Dense{M: x}, []int{1, 1, 0, 0}, w); acc != 0 {
		t.Fatalf("Accuracy on flipped labels = %v, want 0", acc)
	}
}

func TestPredictReferenceClassWins(t *testing.T) {
	// All explicit scores negative -> reference class C-1.
	x := linalg.NewMatrix(1, 2)
	x.Data = []float64{1, 1}
	s, err := NewSoftmax(testDev, Dense{M: x}, []int{2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{-1, -1, -2, -2} // both class scores negative
	if pred := s.Predict(Dense{M: x}, w); pred[0] != 2 {
		t.Fatalf("Predict = %d, want reference class 2", pred[0])
	}
}

func TestValueAtZeroIsNLogC(t *testing.T) {
	// At w=0 every class has probability 1/C, so F(0) = n*log(C).
	rng := rand.New(rand.NewSource(28))
	for _, classes := range []int{2, 3, 10} {
		s := randProblem(rng, 17, 3, classes, 0.5)
		w := make([]float64, s.Dim())
		want := 17 * math.Log(float64(classes))
		if got := s.Value(w); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("C=%d: F(0)=%v, want %v", classes, got, want)
		}
	}
}
