// Package cg implements the conjugate gradient method with the relative
// residual early-stopping rule of paper eq. (3b): CG on H p = -g stops once
// ||H p + g|| <= theta * ||g||, which (Roosta-Khorasani & Mahoney) preserves
// the convergence of exact Newton for moderate theta. A negative-curvature
// guard makes the solver safe on merely positive semidefinite operators.
package cg

import (
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

// Options controls the CG iteration.
type Options struct {
	// MaxIters caps CG iterations; <= 0 selects dim(b).
	MaxIters int
	// RelTol is the relative residual tolerance theta in (0,1);
	// <= 0 selects 1e-4 (the paper's setting for the Figure 1 study).
	RelTol float64
	// Work optionally supplies reusable iteration scratch; nil allocates
	// per call. Outer solvers that run CG every iteration (Newton,
	// Newton-ADMM ranks) pass one Workspace so the inner solve does no
	// steady-state allocation.
	Work *Workspace
}

// Workspace holds the CG iteration vectors (residual, directions,
// right-hand side, preconditioner scratch). A Workspace may be reused
// across solves of the same or different dimensions; it grows to the
// largest dimension seen.
type Workspace struct {
	r, z, p, hp, b, invd []float64
}

// vec returns a zeroed length-dim view of buf, growing it if needed.
func (w *Workspace) vec(buf *[]float64, dim int) []float64 {
	if cap(*buf) < dim {
		*buf = make([]float64, dim)
	}
	v := (*buf)[:dim]
	linalg.Zero(v)
	return v
}

// workspace returns the scratch to use: the caller-provided one, or a
// fresh private one matching the old allocate-per-call behaviour.
func (o Options) workspace() *Workspace {
	if o.Work != nil {
		return o.Work
	}
	return &Workspace{}
}

// Result reports how the CG iteration terminated.
type Result struct {
	Iters       int     // iterations performed
	Residual    float64 // final ||H x - b||
	RelResidual float64 // final residual divided by ||b||
	Converged   bool    // hit the tolerance (rather than the cap)
	NegCurve    bool    // stopped on (near-)zero or negative curvature
}

func (o Options) withDefaults(dim int) Options {
	if o.MaxIters <= 0 {
		o.MaxIters = dim
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-4
	}
	return o
}

// Solve runs CG on H x = b starting from x (which is updated in place;
// pass a zero vector for the usual Newton system). H must be symmetric
// positive semidefinite.
func Solve(h loss.HessianOperator, b, x []float64, opts Options) Result {
	dim := len(b)
	if len(x) != dim {
		panic("cg: x/b dimension mismatch")
	}
	opts = opts.withDefaults(dim)

	ws := opts.workspace()
	r := ws.vec(&ws.r, dim)   // residual b - Hx
	p := ws.vec(&ws.p, dim)   // search direction
	hp := ws.vec(&ws.hp, dim) // H p

	bNorm := linalg.Nrm2(b)
	if bNorm == 0 {
		linalg.Zero(x)
		return Result{Converged: true}
	}

	// r = b - H x
	h.Apply(x, hp)
	linalg.Waxpby(1, b, -1, hp, r)
	linalg.Copy(p, r)
	rsOld := linalg.Dot(r, r)

	res := Result{}
	for k := 0; k < opts.MaxIters; k++ {
		rNorm := linalg.Nrm2(r)
		res.Residual = rNorm
		res.RelResidual = rNorm / bNorm
		if res.RelResidual <= opts.RelTol {
			res.Converged = true
			return res
		}
		h.Apply(p, hp)
		curv := linalg.Dot(p, hp)
		if curv <= 1e-14*linalg.Dot(p, p) {
			// Direction of (numerically) zero or negative curvature: the
			// operator is not PD along p. Return the iterate so far; for
			// k=0 that leaves x as the caller's initial point.
			res.NegCurve = true
			return res
		}
		alpha := rsOld / curv
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, hp, r)
		rsNew := linalg.Dot(r, r)
		beta := rsNew / rsOld
		linalg.Waxpby(1, r, beta, p, p)
		rsOld = rsNew
		res.Iters = k + 1
	}
	rNorm := linalg.Nrm2(r)
	res.Residual = rNorm
	res.RelResidual = rNorm / bNorm
	res.Converged = res.RelResidual <= opts.RelTol
	return res
}

// NewtonDirection solves H p = -g for the Newton step p (overwritten,
// starting from zero). If CG makes no progress (immediate negative
// curvature), it falls back to the steepest-descent direction -g so the
// outer line search always receives a descent direction.
func NewtonDirection(h loss.HessianOperator, g, p []float64, opts Options) Result {
	ws := opts.workspace()
	b := ws.vec(&ws.b, len(g))
	linalg.Waxpby(-1, g, 0, g, b) // b = -g
	linalg.Zero(p)
	res := Solve(h, b, p, opts)
	if linalg.Nrm2(p) == 0 {
		linalg.Copy(p, b) // fallback: steepest descent
	}
	return res
}
