package cg

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

type denseOp struct{ a *linalg.Matrix }

func (d denseOp) Apply(v, hv []float64) { linalg.MulNT(d.a, v, 1, hv) }

func randSPD(rng *rand.Rand, d int, shift float64) *linalg.Matrix {
	b := linalg.NewMatrix(d, d)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for k := 0; k < d; k++ {
				acc += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, acc)
		}
		a.Set(i, i, a.At(i, i)+shift)
	}
	return a
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestSolveRandomSPDSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(30)
		a := randSPD(rng, d, 1.0)
		xTrue := randVec(rng, d)
		b := make([]float64, d)
		linalg.MulNT(a, xTrue, 1, b)
		x := make([]float64, d)
		res := Solve(denseOp{a}, b, x, Options{MaxIters: 10 * d, RelTol: 1e-10})
		if !res.Converged {
			t.Fatalf("trial %d: CG did not converge: %+v", trial, res)
		}
		if dist := linalg.Dist2(x, xTrue); dist > 1e-6*math.Max(1, linalg.Nrm2(xTrue)) {
			t.Fatalf("trial %d: ||x - x*|| = %v", trial, dist)
		}
	}
}

func TestSolveExactInAtMostDimIters(t *testing.T) {
	// CG in exact arithmetic finishes in dim steps; allow a tiny slack.
	rng := rand.New(rand.NewSource(41))
	d := 12
	a := randSPD(rng, d, 2.0)
	b := randVec(rng, d)
	x := make([]float64, d)
	res := Solve(denseOp{a}, b, x, Options{MaxIters: d + 2, RelTol: 1e-8})
	if !res.Converged {
		t.Fatalf("CG needed more than dim iterations: %+v", res)
	}
}

func TestSolveIdentityOneIteration(t *testing.T) {
	d := 5
	a := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	x := make([]float64, d)
	res := Solve(denseOp{a}, b, x, Options{MaxIters: 10, RelTol: 1e-12})
	if res.Iters > 1 {
		t.Fatalf("identity system took %d iterations", res.Iters)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("x=%v, want %v", x, b)
		}
	}
}

func TestSolveZeroRHS(t *testing.T) {
	d := 4
	a := randSPD(rand.New(rand.NewSource(42)), d, 1)
	x := []float64{1, 2, 3, 4}
	res := Solve(denseOp{a}, make([]float64, d), x, Options{})
	if !res.Converged {
		t.Fatal("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS should produce zero solution")
		}
	}
}

func TestSolveRespectsIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := 50
	a := randSPD(rng, d, 0.01) // badly conditioned
	b := randVec(rng, d)
	x := make([]float64, d)
	res := Solve(denseOp{a}, b, x, Options{MaxIters: 3, RelTol: 1e-14})
	if res.Iters > 3 {
		t.Fatalf("iteration cap violated: %d", res.Iters)
	}
}

func TestSolveEarlyStoppingRelativeTolerance(t *testing.T) {
	// With a loose tolerance the solver must stop early with the
	// guaranteed relative residual (paper eq. 3b).
	rng := rand.New(rand.NewSource(44))
	d := 40
	a := randSPD(rng, d, 1)
	b := randVec(rng, d)
	x := make([]float64, d)
	theta := 0.1
	res := Solve(denseOp{a}, b, x, Options{MaxIters: 1000, RelTol: theta})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// verify the postcondition directly: ||Hx - b|| <= theta ||b||
	hx := make([]float64, d)
	linalg.MulNT(a, x, 1, hx)
	linalg.Sub(hx, b)
	if linalg.Nrm2(hx) > theta*linalg.Nrm2(b)*(1+1e-12) {
		t.Fatalf("postcondition violated: %v > %v", linalg.Nrm2(hx), theta*linalg.Nrm2(b))
	}
}

func TestNegativeCurvatureDetected(t *testing.T) {
	d := 3
	a := linalg.NewMatrix(d, d)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1) // indefinite
	a.Set(2, 2, 1)
	b := []float64{0, 1, 0}
	x := make([]float64, d)
	res := Solve(denseOp{a}, b, x, Options{MaxIters: 10, RelTol: 1e-10})
	if !res.NegCurve {
		t.Fatalf("negative curvature not flagged: %+v", res)
	}
}

func TestNewtonDirectionIsDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(20)
		a := randSPD(rng, d, 0.5)
		g := randVec(rng, d)
		p := make([]float64, d)
		NewtonDirection(denseOp{a}, g, p, Options{MaxIters: 5, RelTol: 1e-2})
		if linalg.Dot(p, g) >= 0 {
			t.Fatalf("trial %d: Newton direction is not descent: <p,g>=%v", trial, linalg.Dot(p, g))
		}
	}
}

func TestNewtonDirectionFallbackOnIndefinite(t *testing.T) {
	d := 2
	a := linalg.NewMatrix(d, d)
	a.Set(0, 0, -1)
	a.Set(1, 1, -1)
	g := []float64{1, 1}
	p := make([]float64, d)
	res := NewtonDirection(denseOp{a}, g, p, Options{MaxIters: 5, RelTol: 1e-8})
	if !res.NegCurve {
		t.Fatalf("expected NegCurve: %+v", res)
	}
	// must fall back to -g
	if p[0] != -1 || p[1] != -1 {
		t.Fatalf("fallback direction = %v, want -g", p)
	}
}

func TestSolveWithQuadraticProblemHessian(t *testing.T) {
	// End-to-end against the loss.Quadratic operator.
	rng := rand.New(rand.NewSource(46))
	d := 8
	a := randSPD(rng, d, 1)
	q := &loss.Quadratic{A: a, B: randVec(rng, d)}
	h := q.HessianAt(nil)
	x := make([]float64, d)
	res := Solve(h, q.B, x, Options{MaxIters: 100, RelTol: 1e-10})
	if !res.Converged {
		t.Fatalf("CG on Quadratic Hessian failed: %+v", res)
	}
	// x solves A x = b, so the gradient of the quadratic at x is 0.
	g := make([]float64, d)
	q.Gradient(x, g)
	if linalg.Nrm2(g) > 1e-6 {
		t.Fatalf("gradient at CG solution = %v", linalg.Nrm2(g))
	}
}
