package cg

import (
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

// SolvePrecond runs preconditioned CG on H x = b with a diagonal (Jacobi)
// preconditioner: M = diag(d), applied as z = r / d element-wise. Entries
// of d below a small floor are clamped so a singular diagonal cannot
// poison the iteration. Semantics otherwise match Solve, including the
// relative-residual early stopping of paper eq. (3b). This is an optional
// optimization beyond the paper: on ill-conditioned problems (the
// CIFAR-10 regime) Jacobi scaling often cuts the CG iterations needed for
// a given tolerance.
func SolvePrecond(h loss.HessianOperator, diag, b, x []float64, opts Options) Result {
	dim := len(b)
	if len(x) != dim || len(diag) != dim {
		panic("cg: SolvePrecond dimension mismatch")
	}
	opts = opts.withDefaults(dim)

	ws := opts.workspace()
	const floor = 1e-12
	invd := ws.vec(&ws.invd, dim)
	for j, v := range diag {
		if v < floor {
			v = floor
		}
		invd[j] = 1 / v
	}
	applyPrec := func(r, z []float64) {
		for j := range z {
			z[j] = r[j] * invd[j]
		}
	}

	r := ws.vec(&ws.r, dim)
	z := ws.vec(&ws.z, dim)
	p := ws.vec(&ws.p, dim)
	hp := ws.vec(&ws.hp, dim)

	bNorm := linalg.Nrm2(b)
	if bNorm == 0 {
		linalg.Zero(x)
		return Result{Converged: true}
	}

	h.Apply(x, hp)
	linalg.Waxpby(1, b, -1, hp, r)
	applyPrec(r, z)
	linalg.Copy(p, z)
	rz := linalg.Dot(r, z)

	res := Result{}
	for k := 0; k < opts.MaxIters; k++ {
		rNorm := linalg.Nrm2(r)
		res.Residual = rNorm
		res.RelResidual = rNorm / bNorm
		if res.RelResidual <= opts.RelTol {
			res.Converged = true
			return res
		}
		h.Apply(p, hp)
		curv := linalg.Dot(p, hp)
		if curv <= 1e-14*linalg.Dot(p, p) {
			res.NegCurve = true
			return res
		}
		alpha := rz / curv
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, hp, r)
		applyPrec(r, z)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		linalg.Waxpby(1, z, beta, p, p)
		rz = rzNew
		res.Iters = k + 1
	}
	rNorm := linalg.Nrm2(r)
	res.Residual = rNorm
	res.RelResidual = rNorm / bNorm
	res.Converged = res.RelResidual <= opts.RelTol
	return res
}

// NewtonDirectionPrecond solves H p = -g with Jacobi-preconditioned CG,
// falling back to steepest descent like NewtonDirection.
func NewtonDirectionPrecond(h loss.HessianOperator, diag, g, p []float64, opts Options) Result {
	ws := opts.workspace()
	b := ws.vec(&ws.b, len(g))
	linalg.Waxpby(-1, g, 0, g, b)
	linalg.Zero(p)
	res := SolvePrecond(h, diag, b, p, opts)
	if linalg.Nrm2(p) == 0 {
		linalg.Copy(p, b)
	}
	return res
}
