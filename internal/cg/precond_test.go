package cg

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/linalg"
)

func TestSolvePrecondCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(25)
		a := randSPD(rng, d, 1)
		xTrue := randVec(rng, d)
		b := make([]float64, d)
		linalg.MulNT(a, xTrue, 1, b)
		diag := make([]float64, d)
		for j := 0; j < d; j++ {
			diag[j] = a.At(j, j)
		}
		x := make([]float64, d)
		res := SolvePrecond(denseOp{a}, diag, b, x, Options{MaxIters: 20 * d, RelTol: 1e-10})
		if !res.Converged {
			t.Fatalf("trial %d: PCG did not converge: %+v", trial, res)
		}
		if dist := linalg.Dist2(x, xTrue); dist > 1e-6*math.Max(1, linalg.Nrm2(xTrue)) {
			t.Fatalf("trial %d: ||x-x*||=%v", trial, dist)
		}
	}
}

func TestPrecondHelpsOnScaledSystem(t *testing.T) {
	// Badly scaled diagonal system: Jacobi preconditioning should solve
	// it in one iteration while plain CG needs many.
	d := 60
	a := linalg.NewMatrix(d, d)
	diag := make([]float64, d)
	for j := 0; j < d; j++ {
		v := math.Pow(10, float64(j%7)) // condition number 1e6
		a.Set(j, j, v)
		diag[j] = v
	}
	rng := rand.New(rand.NewSource(211))
	b := randVec(rng, d)

	xPlain := make([]float64, d)
	plain := Solve(denseOp{a}, b, xPlain, Options{MaxIters: d, RelTol: 1e-10})
	xPrec := make([]float64, d)
	prec := SolvePrecond(denseOp{a}, diag, b, xPrec, Options{MaxIters: d, RelTol: 1e-10})
	if !prec.Converged {
		t.Fatalf("PCG failed: %+v", prec)
	}
	if prec.Iters >= plain.Iters && plain.Converged {
		t.Fatalf("Jacobi did not help: plain %d iters, precond %d", plain.Iters, prec.Iters)
	}
	if prec.Iters > 3 {
		t.Fatalf("diagonal system should converge immediately with Jacobi, took %d", prec.Iters)
	}
}

func TestSolvePrecondZeroRHS(t *testing.T) {
	d := 4
	a := randSPD(rand.New(rand.NewSource(212)), d, 1)
	diag := []float64{1, 1, 1, 1}
	x := []float64{1, 2, 3, 4}
	res := SolvePrecond(denseOp{a}, diag, make([]float64, d), x, Options{})
	if !res.Converged {
		t.Fatal("zero RHS must converge")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS must produce zero solution")
		}
	}
}

func TestSolvePrecondDegenerateDiagonalClamped(t *testing.T) {
	// Zero/negative diagonal entries must not produce NaNs.
	d := 5
	a := randSPD(rand.New(rand.NewSource(213)), d, 1)
	diag := []float64{0, -1, 1e-300, 1, 1}
	b := []float64{1, 1, 1, 1, 1}
	x := make([]float64, d)
	res := SolvePrecond(denseOp{a}, diag, b, x, Options{MaxIters: 100, RelTol: 1e-8})
	if !linalg.AllFinite(x) {
		t.Fatal("degenerate diagonal produced non-finite iterate")
	}
	if !res.Converged {
		t.Fatalf("PCG with clamped diagonal failed: %+v", res)
	}
}

func TestNewtonDirectionPrecondIsDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(15)
		a := randSPD(rng, d, 0.5)
		diag := make([]float64, d)
		for j := 0; j < d; j++ {
			diag[j] = a.At(j, j)
		}
		g := randVec(rng, d)
		p := make([]float64, d)
		NewtonDirectionPrecond(denseOp{a}, diag, g, p, Options{MaxIters: 5, RelTol: 1e-2})
		if linalg.Dot(p, g) >= 0 {
			t.Fatalf("trial %d: not a descent direction", trial)
		}
	}
}

func TestSolvePrecondDimensionPanics(t *testing.T) {
	a := randSPD(rand.New(rand.NewSource(215)), 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SolvePrecond(denseOp{a}, make([]float64, 2), make([]float64, 3), make([]float64, 3), Options{})
}
