package router

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"newtonadmm/internal/metrics"
)

// State is a replica's routing eligibility.
type State int32

const (
	// StateHealthy replicas receive traffic.
	StateHealthy State = iota
	// StateDraining replicas receive no new traffic but finish what they
	// accepted; set by the drain API, never by the health monitor, and
	// only Undrain clears it.
	StateDraining
	// StateDown replicas failed consecutive health probes; the monitor
	// restores them to Healthy when probes succeed again.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Replica is one pool member: a backend plus the routing-side view of it
// (health state, in-flight load for least-loaded picking, counters).
type Replica struct {
	ID int
	// GroupID is the shard group this replica belongs to (index into
	// Pool.Groups); -1 until groups are assigned.
	GroupID int
	// Zone is the replica's placement zone/rack label ("" undeclared).
	Zone    string
	backend Backend

	meta  atomic.Pointer[Meta] // refreshed by the health monitor
	state atomic.Int32
	fails atomic.Int32 // consecutive failed probes

	inflight atomic.Int64
	done     atomic.Int64
	errs     atomic.Int64
	rejected atomic.Int64

	// Latency is the per-request backend round-trip observed by the
	// router (scatter leg only; merge time is router-side).
	Latency *metrics.Histogram
}

// State returns the replica's current routing state.
func (r *Replica) State() State { return State(r.state.Load()) }

// Meta returns the last known snapshot metadata.
func (r *Replica) Meta() Meta { return *r.meta.Load() }

// InFlight returns the number of router requests currently executing on
// this replica.
func (r *Replica) InFlight() int64 { return r.inflight.Load() }

// Backend returns the replica's backend (tests hot-swap through it).
func (r *Replica) Backend() Backend { return r.backend }

// AdjustLoad shifts the replica's in-flight gauge by d. This is the
// fleet simulator's seam: virtual work that completes at a later
// virtual time still has to be visible to the power-of-two-choices
// pick, so the simulator adds the backlog here when a simulated
// replica accepts a job and subtracts it at the job's virtual
// completion event. Production code never calls it — the router
// maintains the gauge itself around each backend call.
func (r *Replica) AdjustLoad(d int64) { r.inflight.Add(d) }

// available reports whether new traffic may be routed here.
func (r *Replica) available() bool { return r.State() == StateHealthy }

// ReplicaStats is a counters snapshot for /metricz and the load
// generator's per-replica breakdown.
type ReplicaStats struct {
	ID       int
	Group    int
	Zone     string
	State    string
	Version  int64
	InFlight int64
	Done     int64
	Errors   int64
	Rejected int64
	Latency  metrics.Snapshot
}

// Stats snapshots the replica's counters.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		ID:       r.ID,
		Group:    r.GroupID,
		Zone:     r.Zone,
		State:    r.State().String(),
		Version:  r.Meta().Version,
		InFlight: r.inflight.Load(),
		Done:     r.done.Load(),
		Errors:   r.errs.Load(),
		Rejected: r.rejected.Load(),
		Latency:  r.Latency.Snapshot(),
	}
}

// Group is one shard group of the R×S grid: the replicas jointly
// serving one class-shard range. Health is tracked per member;
// serviceability is a group property — the group serves as long as at
// least one member is available.
type Group struct {
	ID      int
	Range   ShardRange
	members []*Replica
}

// Members returns the group's replicas (fixed after construction).
func (g *Group) Members() []*Replica { return g.members }

// availableCount counts members currently accepting traffic.
func (g *Group) availableCount() int {
	n := 0
	for _, r := range g.members {
		if r.available() {
			n++
		}
	}
	return n
}

// Pool owns the replica set, its shard groups, and the health monitor.
// Membership is copy-on-write: the replica and group slices are
// immutable once published, mutators build replacements under memMu,
// and readers snapshot the current slices — an in-flight scatter keeps
// scoring against the membership it started with while the autoscaler
// grows or shrinks the pool.
type Pool struct {
	memMu    sync.RWMutex // guards membership (replicas/groups/nextID)
	replicas []*Replica
	groups   []*Group
	nextID   int // next replica ID; IDs are stable and never reused

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newPool builds a pool over backends whose metas were already probed.
func newPool(backends []Backend, metas []Meta) *Pool {
	p := &Pool{
		rng:  rand.New(rand.NewSource(1)), // tie-breaking only; no correctness impact
		stop: make(chan struct{}),
	}
	for i, b := range backends {
		r := &Replica{ID: i, GroupID: -1, Zone: metas[i].Zone, backend: b, Latency: metrics.NewHistogram()}
		m := metas[i]
		r.meta.Store(&m)
		p.replicas = append(p.replicas, r)
	}
	p.nextID = len(backends)
	return p
}

// setGroups wires the planner's placement into the pool: one Group per
// plan entry, members resolved to replicas and back-linked via GroupID.
// Called once at construction, before any traffic.
func (p *Pool) setGroups(plans []GroupPlan) {
	p.groups = p.groups[:0]
	for gi, plan := range plans {
		g := &Group{ID: gi, Range: plan.Range}
		for _, ri := range plan.Members {
			r := p.replicas[ri]
			r.GroupID = gi
			g.members = append(g.members, r)
		}
		p.groups = append(p.groups, g)
	}
}

// snapshot returns the current membership. The returned slices are
// immutable — mutators publish replacements, never edit in place.
func (p *Pool) snapshot() ([]*Replica, []*Group) {
	p.memMu.RLock()
	defer p.memMu.RUnlock()
	return p.replicas, p.groups
}

// byID resolves a replica by its stable ID (IDs survive removals, so
// they are not slice indices). Returns nil when the ID has left the
// pool.
func (p *Pool) byID(id int) *Replica {
	reps, _ := p.snapshot()
	for _, r := range reps {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// addReplica grows the pool: the new member (stable fresh ID) joins the
// given shard group and starts receiving traffic as soon as the new
// membership publishes. The caller has already probed and validated the
// meta.
func (p *Pool) addReplica(b Backend, m Meta, groupID int) *Replica {
	p.memMu.Lock()
	defer p.memMu.Unlock()
	r := &Replica{ID: p.nextID, GroupID: groupID, Zone: m.Zone, backend: b, Latency: metrics.NewHistogram()}
	p.nextID++
	mc := m
	r.meta.Store(&mc)
	reps := make([]*Replica, len(p.replicas), len(p.replicas)+1)
	copy(reps, p.replicas)
	reps = append(reps, r)
	p.replicas = reps
	if groupID >= 0 && groupID < len(p.groups) {
		old := p.groups[groupID]
		ng := &Group{ID: old.ID, Range: old.Range}
		ng.members = append(append(ng.members, old.members...), r)
		groups := make([]*Group, len(p.groups))
		copy(groups, p.groups)
		groups[groupID] = ng
		p.groups = groups
	}
	return r
}

// removeReplica shrinks the pool, returning the removed member (the
// caller owns closing its backend). In-flight requests that picked the
// replica from an older snapshot finish normally — removal only stops
// new snapshots from seeing it. Returns nil when the ID is not pooled.
func (p *Pool) removeReplica(id int) *Replica {
	p.memMu.Lock()
	defer p.memMu.Unlock()
	var victim *Replica
	reps := make([]*Replica, 0, len(p.replicas))
	for _, r := range p.replicas {
		if r.ID == id {
			victim = r
			continue
		}
		reps = append(reps, r)
	}
	if victim == nil {
		return nil
	}
	p.replicas = reps
	if gi := victim.GroupID; gi >= 0 && gi < len(p.groups) {
		old := p.groups[gi]
		ng := &Group{ID: old.ID, Range: old.Range}
		for _, r := range old.members {
			if r.ID != id {
				ng.members = append(ng.members, r)
			}
		}
		groups := make([]*Group, len(p.groups))
		copy(groups, p.groups)
		groups[gi] = ng
		p.groups = groups
	}
	return victim
}

// Groups returns the current shard groups in range order (empty until
// setGroups). The slice is an immutable snapshot.
func (p *Pool) Groups() []*Group {
	_, groups := p.snapshot()
	return groups
}

// Replicas returns the current pool members as an immutable snapshot.
func (p *Pool) Replicas() []*Replica {
	reps, _ := p.snapshot()
	return reps
}

// Stats snapshots every replica.
func (p *Pool) Stats() []ReplicaStats {
	reps, _ := p.snapshot()
	out := make([]ReplicaStats, len(reps))
	for i, r := range reps {
		out[i] = r.Stats()
	}
	return out
}

// pickFrom selects one of members by power-of-two-choices: two distinct
// available members at random, the one with fewer requests in flight
// wins. With one available member it returns it; with none it returns
// nil.
func (p *Pool) pickFrom(members []*Replica) *Replica {
	avail := make([]*Replica, 0, len(members))
	for _, r := range members {
		if r.available() {
			avail = append(avail, r)
		}
	}
	switch len(avail) {
	case 0:
		return nil
	case 1:
		return avail[0]
	}
	p.mu.Lock()
	i := p.rng.Intn(len(avail))
	j := p.rng.Intn(len(avail) - 1)
	p.mu.Unlock()
	if j >= i {
		j++
	}
	a, b := avail[i], avail[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// pick selects from the whole pool (replica-balanced mode).
func (p *Pool) pick() *Replica { return p.pickFrom(p.Replicas()) }

// failoverOrderFrom returns the available members to try, first choice
// first: the power-of-two pick, then every other available member.
func (p *Pool) failoverOrderFrom(members []*Replica) []*Replica {
	order := p.failoverOrderInto(members, nil)
	if len(order) == 0 {
		return nil
	}
	return order
}

// failoverOrderInto is failoverOrderFrom writing into a caller-owned
// buffer (grown as needed, reused across calls), so the scatter hot
// path stays allocation-free at steady state. The power-of-two-choices
// winner is swapped to the front; the rest of the available members
// follow in pool order (modulo that swap).
func (p *Pool) failoverOrderInto(members []*Replica, buf []*Replica) []*Replica {
	buf = buf[:0]
	for _, r := range members {
		if r.available() {
			buf = append(buf, r)
		}
	}
	if len(buf) < 2 {
		return buf
	}
	p.mu.Lock()
	i := p.rng.Intn(len(buf))
	j := p.rng.Intn(len(buf) - 1)
	p.mu.Unlock()
	if j >= i {
		j++
	}
	win := i
	if buf[j].inflight.Load() < buf[i].inflight.Load() {
		win = j
	}
	buf[0], buf[win] = buf[win], buf[0]
	return buf
}

// failoverOrder is failoverOrderFrom over the whole pool.
func (p *Pool) failoverOrder() []*Replica {
	return p.failoverOrderFrom(p.Replicas())
}

// ShardCoverage is one group's serviceability summary for /healthz.
type ShardCoverage struct {
	Group   int `json:"group"`
	Low     int `json:"low"`
	High    int `json:"high"`
	Healthy int `json:"healthy"`
	Members int `json:"members"`
}

// Coverage summarizes fleet serviceability by group: "ok" when every
// member of every group is available, "degraded" when every group still
// has at least one available member but some member is down or
// draining, "unserviceable" when some group has zero available members
// (that shard's partial logits cannot be assembled and class-mode
// requests fail 503 until a member recovers).
func (p *Pool) Coverage() (string, []ShardCoverage) {
	_, groups := p.snapshot()
	status := "ok"
	shards := make([]ShardCoverage, len(groups))
	for i, g := range groups {
		n := g.availableCount()
		shards[i] = ShardCoverage{
			Group:   g.ID,
			Low:     g.Range.Low,
			High:    g.Range.High,
			Healthy: n,
			Members: len(g.members),
		}
		switch {
		case n == 0:
			status = "unserviceable"
		case n < len(g.members) && status == "ok":
			status = "degraded"
		}
	}
	return status, shards
}

// CanDrain reports whether draining the replica leaves its group
// serviceable: it is refused when the replica is the last available
// member of its group, because the drain would take a shard's coverage
// to zero. Pool.Drain itself stays unguarded — operators (and tests)
// can force the drain; this is the advisory check the admin API applies
// unless forced.
func (p *Pool) CanDrain(id int) error {
	r := p.byID(id)
	if r == nil {
		return fmt.Errorf("router: no replica %d", id)
	}
	if !r.available() || r.GroupID < 0 {
		return nil
	}
	_, groups := p.snapshot()
	if r.GroupID >= len(groups) {
		return nil
	}
	g := groups[r.GroupID]
	if g.availableCount() <= 1 {
		return fmt.Errorf("router: replica %d is the last available member of shard group %d [%d,%d); draining it makes the shard unserviceable (use force to override)",
			id, g.ID, g.Range.Low, g.Range.High)
	}
	return nil
}

// Drain marks the replica as draining (no new traffic) and blocks until
// its in-flight requests finish or the timeout expires. Accepted work is
// never dropped: requests already executing hold their inflight
// reference until answered. Draining is sticky until Undrain.
func (p *Pool) Drain(id int, timeout time.Duration) error {
	r := p.byID(id)
	if r == nil {
		return fmt.Errorf("router: no replica %d", id)
	}
	r.state.Store(int32(StateDraining))
	deadline := time.Now().Add(timeout)
	for r.inflight.Load() > 0 {
		if timeout > 0 && time.Now().After(deadline) {
			return fmt.Errorf("router: replica %d still has %d in flight after %v", id, r.inflight.Load(), timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Undrain returns a draining replica to service.
func (p *Pool) Undrain(id int) error {
	r := p.byID(id)
	if r == nil {
		return fmt.Errorf("router: no replica %d", id)
	}
	r.state.CompareAndSwap(int32(StateDraining), int32(StateHealthy))
	return nil
}

// startHealth launches the periodic health monitor: every interval each
// replica is probed via Meta; failAfter consecutive failures mark a
// healthy replica Down, one success restores a Down replica and
// refreshes its metadata (version changes surface here between
// requests). Draining replicas are probed but their state is operator-
// owned.
func (p *Pool) startHealth(interval time.Duration, failAfter int) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.ProbeHealth(failAfter)
			}
		}
	}()
}

// ProbeHealth runs one health-monitor sweep: every replica is probed
// via Meta; failAfter consecutive failures mark a healthy replica
// Down, one success restores a Down replica and refreshes its
// metadata. This is one tick of the monitor startHealth runs on a
// wall ticker — exported so a synthetic clock (the fleet simulator,
// tests) can step the same probe logic at virtual times with the wall
// monitor disabled (Options.HealthEvery < 0).
func (p *Pool) ProbeHealth(failAfter int) {
	for _, r := range p.Replicas() {
		m, err := r.backend.Meta()
		if err != nil {
			if n := r.fails.Add(1); int(n) >= failAfter {
				r.state.CompareAndSwap(int32(StateHealthy), int32(StateDown))
			}
			continue
		}
		r.fails.Store(0)
		r.meta.Store(&m)
		r.state.CompareAndSwap(int32(StateDown), int32(StateHealthy))
	}
}

// noteRequestError feeds data-plane failures into the health signal: a
// transport-level error counts like a failed probe so a dead replica is
// evicted between health ticks (failAfter data-plane errors in a row
// mark it Down; the monitor restores it when probes succeed).
func (p *Pool) noteRequestError(r *Replica, failAfter int) {
	if n := r.fails.Add(1); int(n) >= failAfter {
		r.state.CompareAndSwap(int32(StateHealthy), int32(StateDown))
	}
}

// Close stops the health monitor and closes every backend.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	for _, r := range p.Replicas() {
		r.backend.Close()
	}
}
