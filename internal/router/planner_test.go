package router

import (
	"math/rand"
	"testing"
)

// TestPlanShardsBalancedSplit pins PlanShards' split properties across
// shapes, including both degenerate corners: the single-shard plan whose
// one range has maximum width (all explicit rows), and the n == m plan
// where every shard is width 1.
func TestPlanShardsBalancedSplit(t *testing.T) {
	// Maximum-width range: one shard owns every explicit row.
	got, err := PlanShards(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (ShardRange{0, 9}) {
		t.Errorf("PlanShards(10, 1) = %v, want [{0 9}]", got)
	}
	// The smallest legal grid: 2 classes = 1 explicit row, 1 shard.
	got, err = PlanShards(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (ShardRange{0, 1}) {
		t.Errorf("PlanShards(2, 1) = %v, want [{0 1}]", got)
	}

	for _, tc := range []struct{ classes, n int }{
		{10, 4}, {10, 9}, {5, 2}, {11, 3}, {257, 16},
	} {
		ranges, err := PlanShards(tc.classes, tc.n)
		if err != nil {
			t.Fatalf("PlanShards(%d, %d): %v", tc.classes, tc.n, err)
		}
		m := tc.classes - 1
		lo, minW, maxW := 0, m, 0
		for _, r := range ranges {
			if r.Low != lo {
				t.Fatalf("PlanShards(%d, %d) = %v: gap/overlap at %d", tc.classes, tc.n, ranges, lo)
			}
			if w := r.Width(); w <= 0 {
				t.Fatalf("PlanShards(%d, %d) produced empty shard %v", tc.classes, tc.n, r)
			} else {
				if w < minW {
					minW = w
				}
				if w > maxW {
					maxW = w
				}
			}
			lo = r.High
		}
		if lo != m {
			t.Errorf("PlanShards(%d, %d) covers [0,%d), want [0,%d)", tc.classes, tc.n, lo, m)
		}
		if maxW-minW > 1 {
			t.Errorf("PlanShards(%d, %d) widths range [%d,%d], want balanced within 1", tc.classes, tc.n, minW, maxW)
		}
	}
}

func TestPlanShardsErrors(t *testing.T) {
	if _, err := PlanShards(10, 0); err == nil {
		t.Error("PlanShards(10, 0) accepted a non-positive shard count")
	}
	if _, err := PlanShards(10, -1); err == nil {
		t.Error("PlanShards(10, -1) accepted a negative shard count")
	}
	// n may not exceed the m = classes-1 explicit rows.
	if _, err := PlanShards(5, 5); err == nil {
		t.Error("PlanShards(5, 5) accepted 5 shards for 4 explicit rows")
	}
	if _, err := PlanShards(2, 2); err == nil {
		t.Error("PlanShards(2, 2) accepted 2 shards for 1 explicit row")
	}
}

// TestPlanGroupsDegenerateGrids covers the 1x1 corners of the planner:
// a single replica serving a single maximum-width shard is a legal grid,
// and R siblings on that same full span form one group — the class-mode
// topology degenerating to replica-mode semantics.
func TestPlanGroupsDegenerateGrids(t *testing.T) {
	full := Meta{
		Classes: 5, Features: 8, Version: 1,
		ShardCount: 1, ShardLow: 0, ShardHigh: 4, TotalClasses: 5,
	}
	plans, err := planGroupsFromMetas([]Meta{full})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Range != (ShardRange{0, 4}) || len(plans[0].Members) != 1 {
		t.Errorf("single replica, single max-width shard: %+v, want one [0,4) group with one member", plans)
	}

	plans, err = planGroupsFromMetas([]Meta{full, full, full})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || len(plans[0].Members) != 3 {
		t.Errorf("three max-width siblings: %d groups x %d members, want 1x3", len(plans), len(plans[0].Members))
	}
}

// TestPlanGroupsPermutedMetas pins order-independence: feeding the same
// fleet metas in any order must produce the identical plan — same group
// ranges in the same (range-sorted) order, and each group's members
// pointing at metas with exactly that group's shard range. Membership is
// positional, so the index values move with the permutation, but the
// induced placement may not.
func TestPlanGroupsPermutedMetas(t *testing.T) {
	// R=2 x S=3 over 7 classes (rows [0,2) [2,4) [4,6)), two zones.
	base := []Meta{
		gridMeta(0, 2, 7, 8, "zone-a"), gridMeta(0, 2, 7, 8, "zone-b"),
		gridMeta(2, 4, 7, 8, "zone-a"), gridMeta(2, 4, 7, 8, "zone-b"),
		gridMeta(4, 6, 7, 8, "zone-a"), gridMeta(4, 6, 7, 8, "zone-b"),
	}
	want, err := planGroupsFromMetas(base)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		metas := make([]Meta, len(base))
		copy(metas, base)
		rng.Shuffle(len(metas), func(i, j int) { metas[i], metas[j] = metas[j], metas[i] })

		got, err := planGroupsFromMetas(metas)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(want))
		}
		for g := range got {
			if got[g].Range != want[g].Range {
				t.Errorf("trial %d group %d range = %v, want %v", trial, g, got[g].Range, want[g].Range)
			}
			if len(got[g].Members) != len(want[g].Members) {
				t.Errorf("trial %d group %d has %d members, want %d", trial, g, len(got[g].Members), len(want[g].Members))
			}
			zones := map[string]bool{}
			for _, i := range got[g].Members {
				m := metas[i]
				if (ShardRange{m.ShardLow, m.ShardHigh}) != got[g].Range {
					t.Errorf("trial %d group %d member %d serves [%d,%d), group range is %v",
						trial, g, i, m.ShardLow, m.ShardHigh, got[g].Range)
				}
				zones[m.Zone] = true
			}
			if len(zones) != 2 {
				t.Errorf("trial %d group %d spans %d zones, want 2", trial, g, len(zones))
			}
		}
	}
}
