package router

import (
	"errors"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/serve"
	"newtonadmm/internal/wire"
)

// frameReplica wraps an in-process serving stack with a live binary
// frame listener, the replica side of the TCP data plane.
type frameReplica struct {
	lb *LocalBackend
	fs *serve.FrameServer
	ln net.Listener
}

func (fr *frameReplica) addr() string { return fr.ln.Addr().String() }

func (fr *frameReplica) close() {
	fr.fs.Close()
	fr.lb.Close()
}

// startFrameReplica serves shard i of n (n == 0: the full model) over a
// loopback frame listener.
func startFrameReplica(t testing.TB, w []float64, classes, features, i, n int) *frameReplica {
	t.Helper()
	lb := localReplica(t, w, classes, features, i, n)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := serve.NewFrameServer(lb.Registry(), lb.Batcher(), nil)
	go fs.Serve(ln)
	return &frameReplica{lb: lb, fs: fs, ln: ln}
}

// shardBackend builds one class-shard backend reached over the named
// transport, all fronting the identical in-process serving stack:
//
//	local — the in-process LocalBackend (no wire)
//	json  — HTTPBackend over a live httptest server (the JSON plane)
//	binary — TCPBackend over a live frame listener (the binary plane)
func shardBackend(t testing.TB, transport string, w []float64, classes, features, i, n int) Backend {
	t.Helper()
	switch transport {
	case "local":
		lb := localReplica(t, w, classes, features, i, n)
		t.Cleanup(lb.Close)
		return lb
	case "json":
		lb := localReplica(t, w, classes, features, i, n)
		hs := httptest.NewServer(serve.NewServer(lb.Registry(), lb.Batcher(), nil).Handler())
		t.Cleanup(func() { hs.Close(); lb.Close() })
		return &HTTPBackend{Base: hs.URL}
	case "binary":
		fr := startFrameReplica(t, w, classes, features, i, n)
		t.Cleanup(fr.close)
		tb := &TCPBackend{Addr: fr.addr()}
		t.Cleanup(tb.Close)
		return tb
	default:
		t.Fatalf("unknown transport %q", transport)
		return nil
	}
}

// transports enumerates the data planes the identity tests cover.
var transports = []string{"local", "json", "binary"}

// TestTCPBackendConcurrentPipelining hammers one single-connection
// TCPBackend from many goroutines: every request multiplexes over the
// same socket via correlation IDs and must come back with its own
// answer.
func TestTCPBackendConcurrentPipelining(t *testing.T) {
	const classes, features = 6, 12
	rng := rand.New(rand.NewSource(70))
	w := randWeights(rng, classes, features)
	fr := startFrameReplica(t, w, classes, features, 0, 0)
	defer fr.close()
	tb := &TCPBackend{Addr: fr.addr(), Conns: 1}
	defer tb.Close()

	single, err := serve.NewPredictorOn(testDev, w, classes, features)
	if err != nil {
		t.Fatal(err)
	}
	// A set of distinguishable rows with known answers.
	const nRows = 8
	rows := make([][]float64, nRows)
	for i := range rows {
		rows[i] = make([]float64, features)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	want := make([]int, nRows)
	if err := single.PredictDense(rows, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, 1)
			for k := 0; k < 32; k++ {
				i := (g + k) % nRows
				var b Batch
				b.AddDense(rows[i])
				if err := tb.Predict(&b, out); err != nil {
					errs <- err
					return
				}
				if out[0] != want[i] {
					errs <- errors.New("wrong answer for multiplexed request")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sent, recv := tb.BytesOnWire()
	if sent == 0 || recv == 0 {
		t.Fatalf("bytes-on-wire counters: sent=%d recv=%d", sent, recv)
	}
}

// TestTCPReplicaDeathFailover is the mid-stream death satellite: a
// replica process dying under load (its listener and live connections
// torn down mid-request) must fail over without a single client-visible
// error and without wedging the connection pool; the dead replica goes
// Down and the survivor keeps serving.
func TestTCPReplicaDeathFailover(t *testing.T) {
	const classes, features = 4, 10
	rng := rand.New(rand.NewSource(71))
	w := randWeights(rng, classes, features)
	fr0 := startFrameReplica(t, w, classes, features, 0, 0)
	fr1 := startFrameReplica(t, w, classes, features, 0, 0)
	defer fr0.close()
	defer fr1.close()
	tb0 := &TCPBackend{Addr: fr0.addr(), Timeout: 2 * time.Second}
	tb1 := &TCPBackend{Addr: fr1.addr(), Timeout: 2 * time.Second}
	rt, err := New([]Backend{tb0, tb1}, Options{Mode: ModeReplica, HealthEvery: -1, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var stop atomic.Bool
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			row := make([]float64, features)
			out := make([]int, 1)
			for !stop.Load() {
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				var b Batch
				b.AddDense(row)
				if err := rt.Predict(&b, out); err != nil {
					failed.Add(1)
				} else {
					served.Add(1)
				}
			}
		}(int64(300 + g))
	}

	time.Sleep(20 * time.Millisecond)
	fr0.close() // listener and every live connection die mid-stream
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d requests failed across the replica death (%d served): failover must absorb mid-stream connection loss", failed.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served")
	}
	if got := rt.Pool().Replicas()[0].State(); got != StateDown {
		t.Fatalf("dead replica state %v, want down", got)
	}
	// The pool is not wedged: fresh requests still answer promptly on
	// the survivor.
	for k := 0; k < 8; k++ {
		var b Batch
		b.AddDense(make([]float64, features))
		if err := rt.Predict(&b, make([]int, 1)); err != nil {
			t.Fatalf("post-death request %d: %v", k, err)
		}
	}
}

// TestTCPShardDeathIs503 pins single-copy shard semantics on the binary
// plane: a dead shard makes class-mode requests fail with the
// router's transient taxonomy (shard unavailable / replica unreachable
// / queue semantics — all 503-class), never hang.
func TestTCPShardDeathIs503(t *testing.T) {
	const classes, features = 5, 8
	rng := rand.New(rand.NewSource(72))
	w := randWeights(rng, classes, features)
	fr0 := startFrameReplica(t, w, classes, features, 0, 2)
	fr1 := startFrameReplica(t, w, classes, features, 1, 2)
	defer fr1.close()
	tb0 := &TCPBackend{Addr: fr0.addr(), Timeout: 2 * time.Second}
	tb1 := &TCPBackend{Addr: fr1.addr(), Timeout: 2 * time.Second}
	rt, err := New([]Backend{tb0, tb1}, Options{Mode: ModeClass, HealthEvery: -1, SkewRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var b Batch
	b.AddDense(make([]float64, features))
	if err := rt.Predict(&b, make([]int, 1)); err != nil {
		t.Fatal(err)
	}
	fr0.close()
	err = rt.Predict(&b, make([]int, 1))
	if err == nil {
		t.Fatal("class-mode request succeeded with a dead shard")
	}
	if !errors.Is(err, ErrReplicaUnreachable) && !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("dead shard error %v, want unreachable/unavailable taxonomy", err)
	}
}

// TestTCPBackendTimeout checks a replica that accepts but never answers
// is cut off by the per-call deadline with the unreachable taxonomy.
func TestTCPBackendTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the conn open, never answer
		}
	}()
	tb := &TCPBackend{Addr: ln.Addr().String(), Timeout: 50 * time.Millisecond}
	defer tb.Close()
	if _, err := tb.Meta(); !errors.Is(err, ErrReplicaUnreachable) {
		t.Fatalf("got %v, want ErrReplicaUnreachable", err)
	}
}

// TestTCPBackendRejectsUnframeableBatch checks batches the wire cannot
// carry (too many rows, oversized payload) fail client-side as
// deterministic request errors — NOT ErrReplicaUnreachable, which
// would feed the health signal and mark healthy replicas down — and
// without ever dialing (the backend address is a black hole).
func TestTCPBackendRejectsUnframeableBatch(t *testing.T) {
	tb := &TCPBackend{Addr: "127.0.0.1:1", Timeout: time.Second}
	defer tb.Close()

	var flood Batch
	for i := 0; i < wire.MaxRows+1; i++ {
		flood.AddCSR(nil, nil)
	}
	err := tb.Predict(&flood, make([]int, flood.Rows()))
	if err == nil || errors.Is(err, ErrReplicaUnreachable) {
		t.Fatalf("row flood: got %v, want a request-shaped error", err)
	}

	var fat Batch
	fat.AddDense(make([]float64, wire.MaxPayload/8+2))
	err = tb.Predict(&fat, make([]int, 1))
	if err == nil || errors.Is(err, ErrReplicaUnreachable) {
		t.Fatalf("oversized payload: got %v, want a request-shaped error", err)
	}
}

// TestBackendForURL covers the join-address negotiation matrix.
func TestBackendForURL(t *testing.T) {
	cases := []struct {
		base, wire string
		wantTCP    bool
		wantErr    bool
	}{
		{"tcp://127.0.0.1:9081", "", true, false},
		{"http://127.0.0.1:8081", "binary", false, false},
		{"https://replica.example:8081", "", false, false},
		{"127.0.0.1:9081", "binary", true, false},
		{"127.0.0.1:8081", "json", false, false},
		{"127.0.0.1:8081", "", false, false},
		{"ftp://127.0.0.1:21", "", false, true},
		{"127.0.0.1:9081", "tcp", false, true},          // typo'd -wire fails loudly
		{"tcp://127.0.0.1:9081", "Binary", false, true}, // even with explicit schemes
	}
	for _, c := range cases {
		b, err := BackendForURL(c.base, c.wire)
		if c.wantErr {
			if err == nil {
				t.Errorf("%q: expected an error", c.base)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.base, err)
			continue
		}
		if _, isTCP := b.(*TCPBackend); isTCP != c.wantTCP {
			t.Errorf("%q wire=%q: TCP=%v, want %v", c.base, c.wire, isTCP, c.wantTCP)
		}
	}
}

// TestTCPRedialBackoff pins the flapping-replica protection: after a
// failed dial the backend opens a jittered exponential backoff window
// during which calls fail fast (ErrReplicaUnreachable) without dialing;
// when the window expires it dials again, and a successful dial resets
// the backoff entirely.
func TestTCPRedialBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	tb := &TCPBackend{Addr: addr, Timeout: time.Second, RedialBase: 60 * time.Millisecond, RedialMax: 60 * time.Millisecond}
	defer tb.Close()
	if _, err := tb.Meta(); !errors.Is(err, ErrReplicaUnreachable) {
		t.Fatalf("dial to closed port: got %v, want ErrReplicaUnreachable", err)
	}
	// Calls inside the window must not dial again: the consecutive-
	// failure count stays at 1.
	for i := 0; i < 3; i++ {
		if _, err := tb.Meta(); !errors.Is(err, ErrReplicaUnreachable) {
			t.Fatalf("backed-off call %d: got %v, want ErrReplicaUnreachable", i, err)
		}
	}
	tb.mu.Lock()
	fails, next := tb.dialFails, tb.nextDial
	tb.mu.Unlock()
	if fails != 1 {
		t.Fatalf("dialFails = %d after calls inside the backoff window, want 1 (no redial storm)", fails)
	}
	if next.IsZero() {
		t.Fatal("no backoff window opened after a failed dial")
	}

	// Past the window (base 60ms, +25% jitter max) the backend dials
	// again; with a live replica on the address the dial succeeds and
	// resets the backoff.
	fr := func() *frameReplica {
		deadline := time.Now().Add(2 * time.Second)
		for {
			lb := localReplica(t, randWeights(rand.New(rand.NewSource(73)), 3, 4), 3, 4, 0, 0)
			ln, err := net.Listen("tcp", addr)
			if err == nil {
				fs := serve.NewFrameServer(lb.Registry(), lb.Batcher(), nil)
				go fs.Serve(ln)
				return &frameReplica{lb: lb, fs: fs, ln: ln}
			}
			lb.Close()
			if time.Now().After(deadline) {
				t.Skipf("cannot rebind %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	defer fr.close()

	time.Sleep(100 * time.Millisecond) // let the window expire
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := tb.Meta(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backend never recovered after the replica came back")
		}
		time.Sleep(30 * time.Millisecond)
	}
	tb.mu.Lock()
	fails, next = tb.dialFails, tb.nextDial
	tb.mu.Unlock()
	if fails != 0 || !next.IsZero() {
		t.Fatalf("successful dial did not reset backoff: fails=%d window=%v", fails, next)
	}
}
