package router

import (
	"math/rand"
	"testing"
	"time"

	"newtonadmm/internal/obs"
	"newtonadmm/internal/serve"
)

// TestRouterPredictZeroAlloc pins the acceptance bound from DESIGN.md
// "Observability": the scatter path — StartTrace, Predict, FinishTrace —
// performs zero heap allocations per request at the default 1-in-8
// sampling stride, in both routing modes. Published traces occupy ring
// slots until displacement recycling begins, so the warm-up pushes
// enough sampled requests through to fill the recorder ring first.
func TestRouterPredictZeroAlloc(t *testing.T) {
	cases := []struct {
		name     string
		mode     Mode
		backends func() []Backend
	}{
		{"replica", ModeReplica, func() []Backend {
			return []Backend{newFakeBackend(4, 8), newFakeBackend(4, 8)}
		}},
		{"class", ModeClass, func() []Backend {
			return []Backend{gridFake(0, 2, 5, ""), gridFake(2, 4, 5, "")}
		}},
	}
	if raceEnabled {
		t.Skip("allocation counts are skewed by -race instrumentation")
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := New(tc.backends(), Options{Mode: tc.mode, HealthEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()

			b := oneRowBatch(8)
			out := make([]int, 1)
			call := func() {
				b.Trace = rt.StartTrace(time.Now())
				if err := rt.Predict(b, out); err != nil {
					t.Fatal(err)
				}
				rt.FinishTrace(b.Trace, time.Now())
				b.Trace = nil
			}
			for i := 0; i < obs.DefaultRingSize*serve.DefaultSampleEvery*2; i++ {
				call()
			}
			if allocs := testing.AllocsPerRun(400, call); allocs != 0 {
				t.Fatalf("%s Predict: %.2f allocs/op at default sampling, want 0", tc.name, allocs)
			}
		})
	}
}

// findTrace locates a published trace by ID on a recorder, checking
// both the recent ring and the slowest-request slot (a lone finished
// trace lands in the slow slot, not the ring).
func findTrace(rec *obs.Recorder, id uint64) (obs.TraceView, bool) {
	if v, ok := rec.PeekSlowest(); ok && v.ID == id {
		return v, true
	}
	for _, v := range rec.Snapshot() {
		if v.ID == id {
			return v, true
		}
	}
	return obs.TraceView{}, false
}

// hasStage reports whether the view recorded at least one span of the
// given stage.
func hasStage(v obs.TraceView, stage obs.Stage) bool {
	for _, s := range v.Spans {
		if s.Stage == stage {
			return true
		}
	}
	return false
}

// TestStitchedTraceAcrossBinaryPlane runs one sampled request through a
// real two-process-shaped fleet — a router scattering over the binary
// frame plane to a replica's FrameServer — and asserts the trace
// stitches: the NAWP trace trailer carries the router's trace ID to the
// replica, whose recorder publishes a Remote trace under the SAME ID
// with queue/execute spans, and the replica's sequential span sum fits
// inside the end-to-end latency the router measured.
func TestStitchedTraceAcrossBinaryPlane(t *testing.T) {
	const classes, features = 4, 8
	rng := rand.New(rand.NewSource(99))
	w := randWeights(rng, classes, features)
	fr := startFrameReplica(t, w, classes, features, 0, 0)
	defer fr.close()
	tb := &TCPBackend{Addr: fr.addr()}
	defer tb.Close()

	rt, err := New([]Backend{tb}, Options{Mode: ModeReplica, HealthEvery: -1, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	b := oneRowBatch(features)
	out := make([]int, 1)
	t0 := time.Now()
	tr := rt.StartTrace(t0)
	if tr == nil {
		t.Fatal("SampleEvery=1 must sample every request")
	}
	id := tr.ID // save before FinishTrace: the trace may be recycled after publish
	b.Trace = tr
	if err := rt.Predict(b, out); err != nil {
		t.Fatal(err)
	}
	rt.FinishTrace(tr, time.Now())
	e2e := time.Since(t0)

	routerView, ok := findTrace(rt.Recorder(), id)
	if !ok {
		t.Fatalf("router trace %016x not published", id)
	}
	if routerView.Remote {
		t.Fatal("router-originated trace marked Remote")
	}
	if !hasStage(routerView, obs.StageScatter) {
		t.Fatalf("router trace has no scatter-leg span: %+v", routerView.Spans)
	}

	// The replica publishes its trace before the response frame is
	// written, but poll briefly anyway so scheduler jitter cannot flake
	// the test.
	var replicaView obs.TraceView
	rec := fr.lb.Batcher().Recorder()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if replicaView, ok = findTrace(rec, id); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica trace %016x never published", id)
		}
		time.Sleep(time.Millisecond)
	}
	if !replicaView.Remote {
		t.Fatal("replica-side trace not marked Remote: stitching by ID would double-count it as an origin")
	}
	if !hasStage(replicaView, obs.StageQueue) || !hasStage(replicaView, obs.StageExecute) {
		t.Fatalf("replica trace missing queue/execute spans: %+v", replicaView.Spans)
	}

	// The replica's stages are sequential slices of the router-observed
	// round trip, so their sum must fit inside the e2e latency.
	var sum time.Duration
	for _, s := range replicaView.Spans {
		sum += s.Dur
	}
	if sum > e2e {
		t.Fatalf("replica span sum %v exceeds end-to-end latency %v", sum, e2e)
	}
	if replicaView.Dropped != 0 {
		t.Fatalf("replica trace dropped %d spans", replicaView.Dropped)
	}
}
