package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/serve"
)

// WireStats is implemented by backends that meter their data plane;
// the serving bench reads it for the bytes-on-wire column.
type WireStats interface {
	// BytesOnWire returns cumulative request bytes sent and response
	// bytes received.
	BytesOnWire() (sent, recv uint64)
}

// HTTPBackend drives a replica process (a running nadmm-serve) over its
// kserve-style HTTP surface: /v1/predict and /v1/proba for the
// replica-balanced data plane, /v1/scores for partial logits, /healthz
// as the health/metadata probe, and /v1/reload for coordinated hot
// swaps. Go's encoding/json round-trips finite float64 values
// bit-exactly in both directions, so partial scores merged from remote
// shards remain bitwise identical to single-node scoring.
type HTTPBackend struct {
	Base   string // e.g. "http://127.0.0.1:8081"
	Client *http.Client

	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
}

// BytesOnWire reports cumulative JSON payload bytes sent and received
// (bodies only — HTTP headers are not counted, so the JSON plane's
// bytes-per-request figure is a lower bound in the bench's comparison
// against the binary plane's exact frame sizes).
func (h *HTTPBackend) BytesOnWire() (sent, recv uint64) {
	return h.bytesSent.Load(), h.bytesRecv.Load()
}

// countingReader feeds the response-byte counter as the JSON decoder
// consumes the body.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

func (h *HTTPBackend) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// wireError maps a non-200 replica response to the router's error
// taxonomy: 429 becomes serve.ErrQueueFull (failover signal), 503
// becomes serve.ErrNoModel-shaped unavailability, everything else keeps
// its body as context.
func wireError(status int, body []byte) error {
	switch status {
	case http.StatusTooManyRequests:
		return serve.ErrQueueFull
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (replica: %s)", serve.ErrNoModel, bytes.TrimSpace(body))
	default:
		return fmt.Errorf("router: replica HTTP %d: %s", status, bytes.TrimSpace(body))
	}
}

// rejection429 reconstructs a replica's admission rejection from its
// 429 body and Retry-After header, preserving the machine-readable
// reason across the hop. Bare 429s (legacy replicas) stay the plain
// queue-full sentinel, so failover treats them identically.
func rejection429(retryAfterHeader string, body []byte) error {
	var er struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Reason == "" {
		return serve.ErrQueueFull
	}
	re := &serve.RejectionError{Reason: control.ParseReason(er.Reason)}
	if secs, err := strconv.Atoi(retryAfterHeader); err == nil && secs > 0 {
		re.RetryAfter = time.Duration(secs) * time.Second
	}
	return re
}

// postJSON posts payload and decodes a 200 response into resp. A
// non-nil trace rides along as the serve.TraceHeader request header
// (hex trace ID), the JSON plane's equivalent of the binary plane's
// trace trailer; a non-interactive priority rides as the priority
// header (absent = interactive keeps legacy requests byte-identical).
func (h *HTTPBackend) postJSON(path string, payload, resp any, trace *obs.Trace, pri control.Priority) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	h.bytesSent.Add(uint64(len(body)))
	req, err := http.NewRequest(http.MethodPost, h.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != nil {
		req.Header.Set(serve.TraceHeader, fmt.Sprintf("%016x", trace.ID))
	}
	if pri != control.Interactive && pri.Valid() {
		req.Header.Set(serve.PriorityHeader, pri.String())
	}
	r, err := h.client().Do(req)
	if err != nil {
		return fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, h.Base, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		if r.StatusCode == http.StatusTooManyRequests {
			return rejection429(r.Header.Get("Retry-After"), b)
		}
		return wireError(r.StatusCode, b)
	}
	return json.NewDecoder(countingReader{r: r.Body, n: &h.bytesRecv}).Decode(resp)
}

// Meta probes /healthz.
func (h *HTTPBackend) Meta() (Meta, error) {
	r, err := h.client().Get(h.Base + "/healthz")
	if err != nil {
		return Meta{}, fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, h.Base, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return Meta{}, wireError(r.StatusCode, b)
	}
	var health struct {
		Model serve.ModelMeta `json:"model"`
	}
	if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
		return Meta{}, err
	}
	if health.Model.Classes < 2 || health.Model.Features <= 0 {
		return Meta{}, fmt.Errorf("router: replica %s reported no model", h.Base)
	}
	return metaFromModel(health.Model), nil
}

type wirePredictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities"`
	ModelVersion  int64       `json:"model_version"`
}

// Predict posts the batch to /v1/predict.
func (h *HTTPBackend) Predict(b *Batch, out []int) error {
	var resp wirePredictResponse
	if err := h.postJSON("/v1/predict", map[string]any{"instances": b.instances()}, &resp, b.Trace, b.Priority); err != nil {
		return err
	}
	if len(resp.Predictions) != b.Rows() {
		return fmt.Errorf("router: replica returned %d predictions for %d instances", len(resp.Predictions), b.Rows())
	}
	copy(out, resp.Predictions)
	return nil
}

// Proba posts the batch to /v1/proba; out is rows x classes.
func (h *HTTPBackend) Proba(b *Batch, out []float64) error {
	var resp wirePredictResponse
	if err := h.postJSON("/v1/proba", map[string]any{"instances": b.instances()}, &resp, b.Trace, b.Priority); err != nil {
		return err
	}
	if len(resp.Probabilities) != b.Rows() {
		return fmt.Errorf("router: replica returned %d probability rows for %d instances", len(resp.Probabilities), b.Rows())
	}
	rows := b.Rows()
	if rows == 0 {
		return nil
	}
	classes := len(out) / rows
	for i, pr := range resp.Probabilities {
		if len(pr) != classes {
			return fmt.Errorf("router: replica returned %d probabilities per row, want %d", len(pr), classes)
		}
		copy(out[i*classes:(i+1)*classes], pr)
	}
	return nil
}

// PartialScores posts the batch to /v1/scores and flattens the partial
// tile into out (rows x cols, arrival order — the replica preserves
// request order). A replica whose shard width no longer matches the
// router's plan (a shape-changing reload behind the router's back)
// fails with serve.ErrModelShapeChanged instead of writing a
// misaligned tile.
func (h *HTTPBackend) PartialScores(b *Batch, cols int, out []float64) (int64, error) {
	var resp struct {
		Scores       [][]float64 `json:"scores"`
		Cols         int         `json:"cols"`
		ModelVersion int64       `json:"model_version"`
	}
	if err := h.postJSON("/v1/scores", map[string]any{"instances": b.instances()}, &resp, b.Trace, b.Priority); err != nil {
		return 0, err
	}
	if resp.Cols != cols {
		return 0, fmt.Errorf("%w (shard now %d explicit classes, router planned %d)", serve.ErrModelShapeChanged, resp.Cols, cols)
	}
	if len(resp.Scores) != b.Rows() {
		return 0, fmt.Errorf("router: replica returned %d score rows for %d instances", len(resp.Scores), b.Rows())
	}
	for i, row := range resp.Scores {
		if len(row) != cols {
			return 0, fmt.Errorf("router: score row %d has %d cols, header says %d", i, len(row), cols)
		}
		copy(out[i*cols:(i+1)*cols], row)
	}
	return resp.ModelVersion, nil
}

// Reload posts /v1/reload.
func (h *HTTPBackend) Reload() (int64, error) {
	r, err := h.client().Post(h.Base+"/v1/reload", "application/json", nil)
	if err != nil {
		return 0, fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, h.Base, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return 0, wireError(r.StatusCode, b)
	}
	var resp struct {
		ModelVersion int64 `json:"model_version"`
	}
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return 0, err
	}
	return resp.ModelVersion, nil
}

// Close is a no-op: the replica process owns its resources.
func (h *HTTPBackend) Close() {}
