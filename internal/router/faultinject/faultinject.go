// Package faultinject wraps the router's Backend seam with scriptable,
// deterministic faults — crash, hang-until-deadline, slow-start,
// flaky-dial-style error bursts — so the chaos suite can kill any
// replica at any position (mid-scatter, mid-drain, mid-reload) and
// assert the fleet's availability invariants. Determinism is the whole
// design: faults arm from explicit test calls and trip on exact call
// counts, never on timers or randomness, so a failing chaos run replays
// identically.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"newtonadmm/internal/router"
)

// FaultBackend wraps a router.Backend and injects faults at the call
// boundary, before the inner backend sees the request — a crashed
// backend never writes a partial tile, exactly like a dead process.
// All faults surface as router.ErrReplicaUnreachable, the transport
// taxonomy that feeds the router's health signal. Safe for concurrent
// use.
type FaultBackend struct {
	inner router.Backend

	mu         sync.Mutex
	crashed    bool
	hangUntil  time.Time
	slowN      int
	slowD      time.Duration
	failN      int
	crashAfter int64 // calls still allowed before an armed crash; -1 disarmed
	calls      int64
}

// Wrap builds a FaultBackend over inner with no faults armed.
func Wrap(inner router.Backend) *FaultBackend {
	return &FaultBackend{inner: inner, crashAfter: -1}
}

// Inner returns the wrapped backend.
func (f *FaultBackend) Inner() router.Backend { return f.inner }

// Crash makes every subsequent call fail immediately with
// router.ErrReplicaUnreachable, like a dead process: no request reaches
// the inner backend until Revive.
func (f *FaultBackend) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// CrashAfter arms a deterministic crash: the next n calls pass through,
// the one after trips Crash. CrashAfter(0) crashes on the very next
// call. This is how the chaos suite kills a replica at an exact
// position in a scatter.
func (f *FaultBackend) CrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = int64(n)
}

// Revive clears a crash (armed or tripped); calls flow to the inner
// backend again.
func (f *FaultBackend) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.crashAfter = -1
}

// HangFor makes calls arriving within the next d block until the window
// closes and then fail unreachable — a wedged replica that holds the
// socket open without answering, cut off by the caller's deadline.
func (f *FaultBackend) HangFor(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hangUntil = time.Now().Add(d)
}

// SlowStart delays the next n calls by d each before letting them
// succeed — a replica warming caches or recovering from a restart.
func (f *FaultBackend) SlowStart(n int, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slowN, f.slowD = n, d
}

// FailNext makes the next n calls fail unreachable without reaching the
// inner backend — a flaky dial or transient error burst.
func (f *FaultBackend) FailNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failN = n
}

// Calls reports how many calls have entered the fault gate.
func (f *FaultBackend) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// gate applies the armed faults to one call, in severity order: crash,
// hang, error burst, slow-start.
func (f *FaultBackend) gate() error {
	f.mu.Lock()
	f.calls++
	if f.crashAfter >= 0 {
		f.crashAfter--
		if f.crashAfter < 0 {
			f.crashed = true
		}
	}
	if f.crashed {
		f.mu.Unlock()
		return fmt.Errorf("%w: injected crash", router.ErrReplicaUnreachable)
	}
	if until := f.hangUntil; time.Now().Before(until) {
		f.mu.Unlock()
		time.Sleep(time.Until(until))
		return fmt.Errorf("%w: injected hang", router.ErrReplicaUnreachable)
	}
	if f.failN > 0 {
		f.failN--
		f.mu.Unlock()
		return fmt.Errorf("%w: injected error burst", router.ErrReplicaUnreachable)
	}
	if f.slowN > 0 {
		f.slowN--
		d := f.slowD
		f.mu.Unlock()
		time.Sleep(d)
		return nil
	}
	f.mu.Unlock()
	return nil
}

// Meta probes the inner backend through the fault gate (a crashed
// replica fails its health probes, so the monitor marks it down).
func (f *FaultBackend) Meta() (router.Meta, error) {
	if err := f.gate(); err != nil {
		return router.Meta{}, err
	}
	return f.inner.Meta()
}

// Predict scores through the fault gate.
func (f *FaultBackend) Predict(b *router.Batch, out []int) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Predict(b, out)
}

// Proba scores through the fault gate.
func (f *FaultBackend) Proba(b *router.Batch, out []float64) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Proba(b, out)
}

// PartialScores scores through the fault gate; a tripped fault returns
// before the tile is written, like a replica that died mid-scatter.
func (f *FaultBackend) PartialScores(b *router.Batch, cols int, out []float64) (int64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.PartialScores(b, cols, out)
}

// Reload hot-swaps through the fault gate (a crashed replica cannot
// take the new checkpoint — the rollout must survive without it).
func (f *FaultBackend) Reload() (int64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.Reload()
}

// Close always reaches the inner backend: resource cleanup is not a
// fault surface.
func (f *FaultBackend) Close() { f.inner.Close() }
