// Package router is the distributed serving tier: a scatter-gather
// router in front of N predictor replicas, each running its own
// serve.Batcher/Registry/Predictor stack — in-process, or in separate
// processes reached over a wire.
//
// It turns the single-node model server of internal/serve into a
// serving fleet with two placement modes:
//
//   - Replica-balanced (data-parallel): every replica holds the whole
//     model; each request is routed to one replica picked by
//     power-of-two-choices least-loaded selection, with per-replica
//     health tracking, draining, and 429-aware failover. Throughput
//     scales with replica count; any replica can be hot-swapped or
//     drained while the others serve.
//   - Class-sharded (model-parallel): the weight matrix's explicit class
//     rows are split across replicas; every request is scattered to all
//     replicas, each scores a partial logit tile for its rows, and the
//     router merges the partial columns and applies the same
//     argmax/softmax transforms as single-node prediction. This is the
//     paper's amortization argument applied to inference: one scatter
//     and one gather per request batch, with the per-class work spread
//     across the fleet.
//
// Remote replicas are reached over one of two data planes, negotiated
// per replica by join-URL scheme (BackendForURL):
//
//   - HTTPBackend (http://) speaks the kserve-style JSON surface of
//     serve.Server — wire-debuggable, allocation-heavy.
//   - TCPBackend (tcp://) speaks the binary frame protocol of
//     internal/wire against serve.FrameServer — persistent pooled
//     connections, pipelined requests matched by correlation ID, raw
//     IEEE-754 float64 payloads. DESIGN.md's "Binary data plane"
//     section is the normative protocol spec.
//
// Invariants the tier maintains on every plane:
//
//   - Bitwise identity: class-sharded predictions and probabilities are
//     bit-for-bit equal to a single Predictor holding the full model
//     (TestClassShardedBitwiseIdentical, parameterized over local, JSON,
//     and binary transports). JSON preserves float64 by exact
//     round-tripping; the binary plane by carrying raw bits.
//   - Version-consistent merges: partial tiles carry the snapshot
//     version they were scored against; mixed versions trigger a
//     bounded rescore then ErrVersionSkew, and coordinated reloads hold
//     the swap lock so router-originated scatters never straddle a
//     rollout.
//   - Error taxonomy: backpressure (serve.ErrQueueFull) fails over and
//     never evicts; only transport-level failures
//     (ErrReplicaUnreachable) feed the health signal; request-shaped
//     errors fail fast. The wire's error codes and the HTTP status
//     mapping encode the same classes, so failover behavior cannot
//     depend on the plane.
//
// See DESIGN.md for the architecture diagrams and PERF.md for the
// measured router matrix including the JSON-vs-binary wire comparison.
package router
