// Chaos suite: deterministic fault injection (faultinject.FaultBackend
// at the Backend seam) against the R×S replicated-shard grid. The
// invariants under test are the tentpole's acceptance criteria: with
// R >= 2, killing any replica in any position — mid-scatter, mid-drain,
// mid-reload — produces zero non-429 client errors and responses that
// stay bitwise-identical to single-node scoring; with R = 1 a death
// degrades to a per-shard 503 reported by /healthz coverage, never a
// hang.
//
// This file is an external test package: faultinject imports router, so
// an internal test would create an import cycle. Everything here goes
// through the exported API — which doubles as a check that the public
// surface is sufficient to operate the grid.
package router_test

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/router"
	"newtonadmm/internal/router/faultinject"
	"newtonadmm/internal/serve"
)

func chaosWeights(rng *rand.Rand, classes, features int) []float64 {
	w := make([]float64, (classes-1)*features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// chaosBatch builds a mixed dense+CSR batch (odd rows sparse) plus the
// per-row dense form for single-node reference scoring.
func chaosBatch(rng *rand.Rand, rows, features int) (*router.Batch, [][]float64) {
	var b router.Batch
	dense := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		row := make([]float64, features)
		for j := range row {
			if rng.Float64() < 0.6 {
				row[j] = rng.NormFloat64()
			}
		}
		dense[i] = row
		if i%2 == 1 {
			var idx []int
			var val []float64
			for j, v := range row {
				if v != 0 {
					idx = append(idx, j)
					val = append(val, v)
				}
			}
			b.AddCSR(idx, val)
		} else {
			b.AddDense(row)
		}
	}
	return &b, dense
}

// chaosLocal builds one in-process replica serving shard i of n (n == 0:
// the full model) in the given zone, with a working reload hook (reload
// re-swaps the same weights, bumping the version — what the
// kill-during-reload test needs).
func chaosLocal(t testing.TB, w []float64, classes, features, i, n int, zone string) *router.LocalBackend {
	t.Helper()
	reg := serve.NewRegistry()
	weights, localClasses := w, classes
	meta := serve.ModelMeta{Zone: zone}
	if n > 0 {
		plan, err := router.PlanShards(classes, n)
		if err != nil {
			t.Fatal(err)
		}
		rng := plan[i]
		weights = w[rng.Low*features : rng.High*features]
		localClasses = rng.Width() + 1
		meta = serve.ModelMeta{
			ShardIndex: i, ShardCount: n,
			ShardLow: rng.Low, ShardHigh: rng.High, TotalClasses: classes,
			Zone: zone,
		}
	}
	reload := func() (int64, error) {
		p, err := serve.NewPredictor(weights, localClasses, features, 1)
		if err != nil {
			return 0, err
		}
		return reg.Swap(p, meta), nil
	}
	if _, err := reload(); err != nil {
		t.Fatal(err)
	}
	bat := serve.NewBatcher(reg, serve.BatcherConfig{MaxBatch: 16, MaxLinger: 50 * time.Microsecond, QueueDepth: 256})
	return router.NewLocalBackend(reg, bat, reload)
}

// chaosBackend reaches a chaosLocal replica over the named transport
// (local, json, or binary), mirroring the internal shardBackend helper.
func chaosBackend(t testing.TB, transport string, w []float64, classes, features, i, n int, zone string) router.Backend {
	t.Helper()
	lb := chaosLocal(t, w, classes, features, i, n, zone)
	switch transport {
	case "local":
		t.Cleanup(lb.Close)
		return lb
	case "json":
		hs := httptest.NewServer(serve.NewServer(lb.Registry(), lb.Batcher(), nil).Handler())
		t.Cleanup(func() { hs.Close(); lb.Close() })
		return &router.HTTPBackend{Base: hs.URL}
	case "binary":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fs := serve.NewFrameServer(lb.Registry(), lb.Batcher(), nil)
		go fs.Serve(ln)
		t.Cleanup(func() { fs.Close(); lb.Close() })
		tb := &router.TCPBackend{Addr: ln.Addr().String(), Timeout: 2 * time.Second}
		t.Cleanup(tb.Close)
		return tb
	default:
		t.Fatalf("unknown transport %q", transport)
		return nil
	}
}

// chaosGrid builds an R×S grid over the named transport with every
// backend wrapped in a FaultBackend. faults[s][r] is shard group s's
// member r; members spread across zones zone-0..zone-(R-1). Backend
// order is group-major, so replica ID s*R+r == faults[s][r].
func chaosGrid(t testing.TB, transport string, w []float64, classes, features, gridR, gridS int, opts router.Options) (*router.Router, [][]*faultinject.FaultBackend) {
	t.Helper()
	faults := make([][]*faultinject.FaultBackend, gridS)
	var backends []router.Backend
	for s := 0; s < gridS; s++ {
		for r := 0; r < gridR; r++ {
			fb := faultinject.Wrap(chaosBackend(t, transport, w, classes, features, s, gridS, fmt.Sprintf("zone-%d", r)))
			faults[s] = append(faults[s], fb)
			backends = append(backends, fb)
		}
	}
	rt, err := router.New(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, faults
}

// refProba is the single-node reference: the full model's probabilities
// for the batch's dense form, the bitwise ground truth every merged
// response must equal.
func refProba(t testing.TB, w []float64, classes, features int, dense [][]float64) []float64 {
	t.Helper()
	p, err := serve.NewPredictor(w, classes, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out := make([]float64, len(dense)*classes)
	if err := p.ProbaDense(dense, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosKillEveryPositionBitwise kills each of the R×S grid's four
// members in turn, on every data plane, under request traffic: after
// the kill, every response must still be served (zero non-429 errors)
// and stay bitwise-identical to single-node scoring — the group sibling
// absorbs the death invisibly.
func TestChaosKillEveryPositionBitwise(t *testing.T) {
	const classes, features, gridR, gridS, rows = 5, 8, 2, 2, 6
	rng := rand.New(rand.NewSource(90))
	w := chaosWeights(rng, classes, features)
	b, dense := chaosBatch(rng, rows, features)
	want := refProba(t, w, classes, features, dense)

	for _, transport := range []string{"local", "json", "binary"} {
		for s := 0; s < gridS; s++ {
			for r := 0; r < gridR; r++ {
				t.Run(fmt.Sprintf("%s/kill-g%d-m%d", transport, s, r), func(t *testing.T) {
					rt, faults := chaosGrid(t, transport, w, classes, features, gridR, gridS,
						router.Options{Mode: router.ModeClass, HealthEvery: -1, FailAfter: 2})
					out := make([]float64, rows*classes)
					check := func(k int) {
						t.Helper()
						if err := rt.Proba(b, out, nil); err != nil {
							if errors.Is(err, serve.ErrQueueFull) {
								return // 429 backpressure is the one allowed client error
							}
							t.Fatalf("request %d: client-visible error after kill: %v", k, err)
						}
						for i := range want {
							if out[i] != want[i] {
								t.Fatalf("request %d: proba[%d] = %v, want %v (bitwise)", k, i, out[i], want[i])
							}
						}
					}
					for k := 0; k < 8; k++ {
						check(k)
					}
					faults[s][r].Crash()
					for k := 8; k < 40; k++ {
						check(k)
					}
				})
			}
		}
	}
}

// TestChaosKillUnderConcurrentLoad loses one member of every group
// while concurrent clients hammer the grid; no client may see a
// non-429 error or a non-identical response, race-clean under -race.
func TestChaosKillUnderConcurrentLoad(t *testing.T) {
	const classes, features, gridR, gridS, rows = 5, 8, 2, 2, 4
	rng := rand.New(rand.NewSource(91))
	w := chaosWeights(rng, classes, features)
	b, dense := chaosBatch(rng, rows, features)
	want := refProba(t, w, classes, features, dense)
	rt, faults := chaosGrid(t, "local", w, classes, features, gridR, gridS,
		router.Options{Mode: router.ModeClass, HealthEvery: 2 * time.Millisecond, FailAfter: 2})

	var stop atomic.Bool
	var served atomic.Int64
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, rows*classes)
			for !stop.Load() {
				if err := rt.Proba(b, out, nil); err != nil {
					if errors.Is(err, serve.ErrQueueFull) {
						continue
					}
					select {
					case errCh <- err:
					default:
					}
					return
				}
				for i := range want {
					if out[i] != want[i] {
						select {
						case errCh <- fmt.Errorf("proba[%d] = %v, want %v (bitwise)", i, out[i], want[i]):
						default:
						}
						return
					}
				}
				served.Add(1)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	faults[0][0].Crash() // one member of group 0, mid-load
	time.Sleep(20 * time.Millisecond)
	faults[1][1].Crash() // and the opposite member of group 1
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("client-visible failure under chaos load: %v", err)
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served")
	}
}

// TestChaosTransientFaultsAbsorbed scripts the softer fault shapes —
// error bursts (flaky dials), slow-start, hang-until-deadline — against
// single members; group siblings must absorb all of them bitwise.
func TestChaosTransientFaultsAbsorbed(t *testing.T) {
	const classes, features, gridR, gridS, rows = 5, 8, 2, 2, 4
	rng := rand.New(rand.NewSource(92))
	w := chaosWeights(rng, classes, features)
	b, dense := chaosBatch(rng, rows, features)
	want := refProba(t, w, classes, features, dense)
	rt, faults := chaosGrid(t, "local", w, classes, features, gridR, gridS,
		router.Options{Mode: router.ModeClass, HealthEvery: -1, FailAfter: 100})

	out := make([]float64, rows*classes)
	check := func(stage string) {
		t.Helper()
		if err := rt.Proba(b, out, nil); err != nil {
			t.Fatalf("%s: client-visible error: %v", stage, err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%s: proba[%d] = %v, want %v (bitwise)", stage, i, out[i], want[i])
			}
		}
	}
	faults[0][0].FailNext(3) // flaky-dial-style burst
	for k := 0; k < 8; k++ {
		check("error burst")
	}
	faults[1][0].SlowStart(2, 3*time.Millisecond)
	for k := 0; k < 8; k++ {
		check("slow start")
	}
	faults[0][1].HangFor(20 * time.Millisecond) // wedged member; sibling absorbs
	for k := 0; k < 4; k++ {
		check("hang")
	}
}

// TestChaosDrainRacingSiblingDeath is the drain/failover race: a member
// that is draining while its group sibling dies must finish its
// in-flight work, accept no new traffic, and come back cleanly on
// undrain. Run under -race this also pins the memory-safety of the
// drain spin against concurrent scatters.
func TestChaosDrainRacingSiblingDeath(t *testing.T) {
	const classes, features, gridR, gridS, rows = 5, 8, 2, 2, 4
	rng := rand.New(rand.NewSource(93))
	w := chaosWeights(rng, classes, features)
	b, dense := chaosBatch(rng, rows, features)
	want := refProba(t, w, classes, features, dense)
	rt, faults := chaosGrid(t, "local", w, classes, features, gridR, gridS,
		router.Options{Mode: router.ModeClass, HealthEvery: -1, FailAfter: 1})
	pool := rt.Pool()

	// Background load for the drain to race against; after the sibling
	// dies, shard-unavailable errors are expected (group 0 has no
	// available member) — only wrong answers are failures here.
	var stop atomic.Bool
	errCh := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, rows*classes)
			for !stop.Load() {
				if err := rt.Proba(b, out, nil); err != nil {
					continue // availability errors are asserted via coverage below
				}
				for i := range want {
					if out[i] != want[i] {
						select {
						case errCh <- fmt.Errorf("proba[%d] = %v, want %v (bitwise)", i, out[i], want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond)
	drainDone := make(chan error, 1)
	go func() { drainDone <- pool.Drain(0, 5*time.Second) }()
	time.Sleep(time.Millisecond)
	faults[0][1].Crash() // sibling dies while replica 0 drains
	if err := <-drainDone; err != nil {
		t.Fatalf("drain did not finish while sibling died: %v", err)
	}
	if got := pool.Replicas()[0].InFlight(); got != 0 {
		t.Fatalf("drained replica still has %d in flight", got)
	}

	// The draining member must not pick up its dead sibling's traffic.
	doneBefore := pool.Replicas()[0].Stats().Done
	out := make([]float64, rows*classes)
	for k := 0; k < 8; k++ {
		if err := rt.Proba(b, out, nil); err == nil {
			t.Fatal("request succeeded with group 0 fully unavailable (drained + dead)")
		} else if !errors.Is(err, router.ErrShardUnavailable) && !errors.Is(err, router.ErrReplicaUnreachable) {
			t.Fatalf("got %v, want 503-class shard-unavailable taxonomy", err)
		}
	}
	if got := pool.Replicas()[0].Stats().Done; got != doneBefore {
		t.Fatalf("draining replica served %d new requests", got-doneBefore)
	}
	status, shards := pool.Coverage()
	if status != "unserviceable" {
		t.Fatalf("coverage %q with a drained+dead group, want unserviceable", status)
	}
	if shards[0].Healthy != 0 {
		t.Fatalf("group 0 reports %d healthy members, want 0", shards[0].Healthy)
	}

	// Undrain restores service end to end, bitwise.
	if err := pool.Undrain(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Proba(b, out, nil); err != nil {
		t.Fatalf("post-undrain request failed: %v", err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("post-undrain proba[%d] = %v, want %v (bitwise)", i, out[i], want[i])
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestChaosKillDuringReload kills a member mid-rollout: the coordinated
// reload must keep rolling the survivors forward (best-effort, error
// reported to the operator), and traffic afterwards must be served with
// zero non-429 errors at the new version — no version-skew wedge from a
// half-rolled-out fleet.
func TestChaosKillDuringReload(t *testing.T) {
	const classes, features, gridR, gridS, rows = 5, 8, 2, 2, 4
	rng := rand.New(rand.NewSource(94))
	w := chaosWeights(rng, classes, features)
	b, dense := chaosBatch(rng, rows, features)
	want := refProba(t, w, classes, features, dense)
	rt, faults := chaosGrid(t, "local", w, classes, features, gridR, gridS,
		router.Options{Mode: router.ModeClass, HealthEvery: -1, FailAfter: 1})

	out := make([]float64, rows*classes)
	if err := rt.Proba(b, out, nil); err != nil {
		t.Fatal(err)
	}

	faults[0][0].Crash() // dies just before the rollout reaches it
	v, err := rt.Reload()
	if err == nil {
		t.Fatal("reload with a dead member reported success; the operator must learn the member was missed")
	}
	if v != 2 {
		t.Fatalf("survivors rolled to v%d, want v2", v)
	}

	// The fleet is half-dead but fully rolled out: every request serves
	// bitwise at the new version.
	for k := 0; k < 16; k++ {
		if err := rt.Proba(b, out, nil); err != nil {
			if errors.Is(err, serve.ErrQueueFull) {
				continue
			}
			t.Fatalf("request %d after mid-reload death: %v", k, err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("request %d: proba[%d] = %v, want %v (bitwise)", k, i, out[i], want[i])
			}
		}
	}
	if got := rt.Version(); got != 2 {
		t.Fatalf("fleet version %d, want 2", got)
	}
}

// TestChaosR1DegradesTo503NotHang pins the single-copy degradation
// path: with R = 1, a shard death is a per-shard 503 (reported by the
// /healthz coverage summary with per-shard healthy counts) and requests
// fail fast — never a hang.
func TestChaosR1DegradesTo503NotHang(t *testing.T) {
	const classes, features, rows = 5, 8, 4
	rng := rand.New(rand.NewSource(95))
	w := chaosWeights(rng, classes, features)
	b, _ := chaosBatch(rng, rows, features)
	rt, faults := chaosGrid(t, "local", w, classes, features, 1, 2,
		router.Options{Mode: router.ModeClass, HealthEvery: 2 * time.Millisecond, FailAfter: 1})
	hs := httptest.NewServer(router.NewServer(rt).Handler())
	defer hs.Close()

	getHealthz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := getHealthz(); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy grid: code %d body %s", code, body)
	}

	faults[0][0].Crash()
	start := time.Now()
	err := rt.Proba(b, make([]float64, rows*classes), nil)
	if err == nil {
		t.Fatal("request succeeded with a dead single-copy shard")
	}
	if !errors.Is(err, router.ErrReplicaUnreachable) && !errors.Is(err, router.ErrShardUnavailable) {
		t.Fatalf("got %v, want the 503-class unreachable/unavailable taxonomy", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("single-copy shard death took %v to fail — that is a hang, not a 503", elapsed)
	}

	// The health monitor marks the member down; coverage turns
	// unserviceable with the dead shard's healthy count at zero.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if status, _ := rt.Pool().Coverage(); status == "unserviceable" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coverage never turned unserviceable")
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, body := getHealthz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz code %d with an uncovered shard, want 503", code)
	}
	if !strings.Contains(body, `"status":"unserviceable"`) {
		t.Fatalf("healthz body lacks unserviceable status: %s", body)
	}
	if !strings.Contains(body, `"healthy":0`) {
		t.Fatalf("healthz body lacks the dead shard's healthy count: %s", body)
	}

	// The data plane degrades to 503 over HTTP too.
	resp, err := http.Post(hs.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"instances":[[0,0,0,0,0,0,0,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with a dead shard: HTTP %d, want 503", resp.StatusCode)
	}

	// Revival restores coverage: the monitor re-probes and the shard
	// comes back without intervention.
	faults[0][0].Revive()
	deadline = time.Now().Add(2 * time.Second)
	for {
		if status, _ := rt.Pool().Coverage(); status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coverage never recovered after revival")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := rt.Proba(b, make([]float64, rows*classes), nil); err != nil {
		t.Fatalf("post-revival request failed: %v", err)
	}
}

// TestChaosGroupDrainGuard pins the admin drain guard over HTTP:
// draining the last available member of a group is refused with 409
// unless forced.
func TestChaosGroupDrainGuard(t *testing.T) {
	const classes, features = 5, 8
	rng := rand.New(rand.NewSource(96))
	w := chaosWeights(rng, classes, features)
	rt, faults := chaosGrid(t, "local", w, classes, features, 2, 2,
		router.Options{Mode: router.ModeClass, HealthEvery: -1, FailAfter: 1})
	hs := httptest.NewServer(router.NewServer(rt).Handler())
	defer hs.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/replicas", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	// Draining one member of a two-member group is fine.
	if code := post(`{"id":0,"action":"drain"}`); code != http.StatusOK {
		t.Fatalf("drain with a healthy sibling: HTTP %d, want 200", code)
	}
	// Its sibling is now the group's last available member: refused.
	if code := post(`{"id":1,"action":"drain"}`); code != http.StatusConflict {
		t.Fatalf("drain of last available member: HTTP %d, want 409", code)
	}
	// The same holds when the sibling is dead rather than draining.
	if code := post(`{"id":0,"action":"undrain"}`); code != http.StatusOK {
		t.Fatalf("undrain: HTTP %d, want 200", code)
	}
	faults[0][0].Crash()
	// Drive traffic until the data-plane health signal marks the crashed
	// member down (FailAfter 1: its first picked request evicts it).
	deadline := time.Now().Add(2 * time.Second)
	for rt.Pool().Replicas()[0].State() != router.StateDown {
		rt.Proba(chaosOneRow(features), make([]float64, classes), nil)
		if time.Now().After(deadline) {
			t.Fatal("crashed member never marked down by the data path")
		}
	}
	if code := post(`{"id":1,"action":"drain"}`); code != http.StatusConflict {
		t.Fatalf("drain of last live member (sibling dead): HTTP %d, want 409", code)
	}
	// force overrides the guard.
	if code := post(`{"id":1,"action":"drain","force":true}`); code != http.StatusOK {
		t.Fatalf("forced drain: HTTP %d, want 200", code)
	}
}

func chaosOneRow(features int) *router.Batch {
	var b router.Batch
	b.AddDense(make([]float64, features))
	return &b
}
