package router

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"newtonadmm/internal/device"
	"newtonadmm/internal/serve"
)

var testDev = device.New("router-test", 2)

// randWeights builds a (classes-1)*features weight vector.
func randWeights(rng *rand.Rand, classes, features int) []float64 {
	w := make([]float64, (classes-1)*features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// randBatch builds a mixed dense+CSR batch (odd rows sparse) and returns
// it together with the per-row dense form for single-node reference
// scoring.
func randBatch(rng *rand.Rand, rows, features int, density float64) (*Batch, [][]float64) {
	var b Batch
	dense := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		row := make([]float64, features)
		for j := range row {
			if rng.Float64() < density {
				row[j] = rng.NormFloat64()
			}
		}
		dense[i] = row
		if i%2 == 1 {
			var idx []int
			var val []float64
			for j, v := range row {
				if v != 0 {
					idx = append(idx, j)
					val = append(val, v)
				}
			}
			b.AddCSR(idx, val)
		} else {
			b.AddDense(row)
		}
	}
	return &b, dense
}

// localReplica builds one in-process replica with its own device (the
// scatter path launches kernels on all replicas concurrently; a device
// is a single-stream resource, so sharing one across replicas is
// forbidden — exactly like production, where every replica owns its
// device). With n > 0 the replica serves class shard i of n; n == 0
// serves the full model.
func localReplica(t testing.TB, w []float64, classes, features, i, n int) *LocalBackend {
	t.Helper()
	reg := serve.NewRegistry()
	weights, localClasses := w, classes
	meta := serve.ModelMeta{}
	if n > 0 {
		plan, err := PlanShards(classes, n)
		if err != nil {
			t.Fatal(err)
		}
		rng := plan[i]
		weights = w[rng.Low*features : rng.High*features]
		localClasses = rng.Width() + 1
		meta = serve.ModelMeta{
			ShardIndex: i, ShardCount: n,
			ShardLow: rng.Low, ShardHigh: rng.High, TotalClasses: classes,
		}
	}
	p, err := serve.NewPredictor(weights, localClasses, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg.Swap(p, meta)
	bat := serve.NewBatcher(reg, serve.BatcherConfig{MaxBatch: 16, MaxLinger: 50 * time.Microsecond, QueueDepth: 256})
	return NewLocalBackend(reg, bat, nil)
}

// newClassRouter builds a class-sharded router over n local shards.
func newClassRouter(t testing.TB, w []float64, classes, features, n int) *Router {
	t.Helper()
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		backends[i] = localReplica(t, w, classes, features, i, n)
	}
	rt, err := New(backends, Options{Mode: ModeClass, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestClassShardedBitwiseIdentical is the core acceptance property,
// parameterized over every router↔replica transport: class-sharded
// routing over 1..4 replicas returns bitwise-identical classes and
// probabilities to a single Predictor holding the full model, for
// mixed dense+CSR batches — in process (local), across the JSON/HTTP
// plane (json), and across the binary frame plane (binary). The two
// wire transports must preserve every float64 bit: encoding/json by
// exact round-tripping, internal/wire by carrying raw IEEE-754 bits.
func TestClassShardedBitwiseIdentical(t *testing.T) {
	const classes, features, rows = 10, 33, 17
	rng := rand.New(rand.NewSource(90))
	w := randWeights(rng, classes, features)
	b, dense := randBatch(rng, rows, features, 0.6)

	single, err := serve.NewPredictorOn(testDev, w, classes, features)
	if err != nil {
		t.Fatal(err)
	}
	wantPred := make([]int, rows)
	if err := single.PredictDense(dense, wantPred); err != nil {
		t.Fatal(err)
	}
	wantProba := make([]float64, rows*classes)
	if err := single.ProbaDense(dense, wantProba); err != nil {
		t.Fatal(err)
	}

	for _, transport := range transports {
		t.Run(transport, func(t *testing.T) {
			for shards := 1; shards <= 4; shards++ {
				backends := make([]Backend, shards)
				for i := 0; i < shards; i++ {
					backends[i] = shardBackend(t, transport, w, classes, features, i, shards)
				}
				rt, err := New(backends, Options{Mode: ModeClass, HealthEvery: -1})
				if err != nil {
					t.Fatal(err)
				}
				gotPred := make([]int, rows)
				if err := rt.Predict(b, gotPred); err != nil {
					t.Fatal(err)
				}
				for i := range wantPred {
					if gotPred[i] != wantPred[i] {
						t.Fatalf("shards=%d row %d: router class %d, single-node %d", shards, i, gotPred[i], wantPred[i])
					}
				}
				gotProba := make([]float64, rows*classes)
				gotCls := make([]int, rows)
				if err := rt.Proba(b, gotProba, gotCls); err != nil {
					t.Fatal(err)
				}
				for i := range wantProba {
					if gotProba[i] != wantProba[i] { // bitwise: float64 ==
						t.Fatalf("shards=%d proba[%d]: router %v, single-node %v", shards, i, gotProba[i], wantProba[i])
					}
				}
				for i := range wantPred {
					if gotCls[i] != wantPred[i] {
						t.Fatalf("shards=%d proba-class row %d: %d vs %d", shards, i, gotCls[i], wantPred[i])
					}
				}
				// Leave the backends to t.Cleanup (shared stacks); only
				// the router's monitor/scratch need closing here. The
				// pool would close the backends too, which Cleanup
				// tolerates: Close is idempotent on every transport.
				rt.Close()
			}
		})
	}
}

// TestReplicaModeMatchesSingle checks replica-balanced routing returns
// the single-node answers regardless of which replica serves.
func TestReplicaModeMatchesSingle(t *testing.T) {
	const classes, features, rows = 4, 12, 11
	rng := rand.New(rand.NewSource(91))
	w := randWeights(rng, classes, features)
	b, dense := randBatch(rng, rows, features, 0.7)

	single, err := serve.NewPredictorOn(testDev, w, classes, features)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, rows)
	if err := single.PredictDense(dense, want); err != nil {
		t.Fatal(err)
	}

	backends := []Backend{
		localReplica(t, w, classes, features, 0, 0),
		localReplica(t, w, classes, features, 0, 0),
		localReplica(t, w, classes, features, 0, 0),
	}
	rt, err := New(backends, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	for trial := 0; trial < 8; trial++ { // different picks, same answers
		got := make([]int, rows)
		if err := rt.Predict(b, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
	proba := make([]float64, rows*classes)
	cls := make([]int, rows)
	if err := rt.Proba(b, proba, cls); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cls[i] != want[i] {
			t.Fatalf("proba class row %d: %d vs %d", i, cls[i], want[i])
		}
	}
}

func TestPlanShards(t *testing.T) {
	plan, err := PlanShards(10, 4) // 9 explicit rows -> 3,2,2,2
	if err != nil {
		t.Fatal(err)
	}
	widths := []int{3, 2, 2, 2}
	want := 0
	for i, s := range plan {
		if s.Low != want || s.Width() != widths[i] {
			t.Fatalf("shard %d: [%d,%d), want start %d width %d", i, s.Low, s.High, want, widths[i])
		}
		want = s.High
	}
	if want != 9 {
		t.Fatalf("plan covers [0,%d), want [0,9)", want)
	}
	if _, err := PlanShards(3, 4); err == nil {
		t.Fatal("accepted more shards than explicit class rows")
	}
	if _, err := PlanShards(10, 0); err == nil {
		t.Fatal("accepted zero shards")
	}
}

// TestClassModeRejectsBadTiling checks the construction-time coverage
// validation.
func TestClassModeRejectsBadTiling(t *testing.T) {
	const classes, features = 6, 8
	rng := rand.New(rand.NewSource(92))
	w := randWeights(rng, classes, features)
	// Two replicas both serving shard 0 of 2: overlap, gap at the top.
	b0 := localReplica(t, w, classes, features, 0, 2)
	b1 := localReplica(t, w, classes, features, 0, 2)
	defer b0.Close()
	defer b1.Close()
	if _, err := New([]Backend{b0, b1}, Options{Mode: ModeClass, HealthEvery: -1}); err == nil {
		t.Fatal("accepted overlapping shards")
	}
	// A full replica mixed into class mode with >1 replicas.
	full := localReplica(t, w, classes, features, 0, 0)
	defer full.Close()
	shard := localReplica(t, w, classes, features, 0, 2)
	defer shard.Close()
	if _, err := New([]Backend{full, shard}, Options{Mode: ModeClass, HealthEvery: -1}); err == nil {
		t.Fatal("accepted full replica as class shard")
	}
	// Replica mode rejects shard replicas.
	if _, err := New([]Backend{shard}, Options{Mode: ModeReplica, HealthEvery: -1}); err == nil {
		t.Fatal("replica mode accepted a shard backend")
	}
}

// TestClassModeVersionSkew checks a half-rolled-out fleet is detected:
// one shard on v2 while the other stays on v1 fails with ErrVersionSkew
// after bounded retries, and completes again once versions realign.
func TestClassModeVersionSkew(t *testing.T) {
	const classes, features, rows = 5, 9, 4
	rng := rand.New(rand.NewSource(93))
	w := randWeights(rng, classes, features)
	b0 := localReplica(t, w, classes, features, 0, 2)
	b1 := localReplica(t, w, classes, features, 1, 2)
	rt, err := New([]Backend{b0, b1}, Options{Mode: ModeClass, HealthEvery: -1, SkewRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	batch, _ := randBatch(rng, rows, features, 0.8)
	out := make([]int, rows)
	if err := rt.Predict(batch, out); err != nil {
		t.Fatal(err)
	}

	// Swap only shard 0 to a new snapshot: versions diverge (v2 vs v1).
	swapShard := func(lb *LocalBackend, i int) {
		plan, _ := PlanShards(classes, 2)
		rng2 := plan[i]
		p, err := serve.NewPredictor(w[rng2.Low*features:rng2.High*features], rng2.Width()+1, features, 1)
		if err != nil {
			t.Fatal(err)
		}
		lb.Registry().Swap(p, serve.ModelMeta{
			ShardIndex: i, ShardCount: 2, ShardLow: rng2.Low, ShardHigh: rng2.High, TotalClasses: classes,
		})
	}
	swapShard(b0, 0)
	if err := rt.Predict(batch, out); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want ErrVersionSkew", err)
	}
	if rt.Stats().SkewRetry == 0 {
		t.Fatal("no skew retries recorded")
	}
	// Align shard 1; requests flow again.
	swapShard(b1, 1)
	if err := rt.Predict(batch, out); err != nil {
		t.Fatal(err)
	}
}

// TestClassModeShapeChangeRejected checks the stale-plan guard: a shard
// whose snapshot width no longer matches the router's plan (a
// shape-changing swap behind the router's back) fails the request with
// serve.ErrModelShapeChanged instead of merging a misaligned tile or
// panicking.
func TestClassModeShapeChangeRejected(t *testing.T) {
	const classes, features, rows = 5, 9, 3
	rng := rand.New(rand.NewSource(98))
	w := randWeights(rng, classes, features)
	b0 := localReplica(t, w, classes, features, 0, 2)
	b1 := localReplica(t, w, classes, features, 1, 2)
	rt, err := New([]Backend{b0, b1}, Options{Mode: ModeClass, HealthEvery: -1, SkewRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Swap shard 0 to a snapshot with a different width (the full
	// model: 4 explicit rows where the plan expects 2).
	p, err := serve.NewPredictor(w, classes, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	b0.Registry().Swap(p, serve.ModelMeta{})
	batch, _ := randBatch(rng, rows, features, 0.8)
	err = rt.Predict(batch, make([]int, rows))
	if !errors.Is(err, serve.ErrModelShapeChanged) {
		t.Fatalf("got %v, want ErrModelShapeChanged", err)
	}
}

// TestRouterEmptyBatch checks zero-row requests are no-ops.
func TestRouterEmptyBatch(t *testing.T) {
	const classes, features = 4, 6
	rng := rand.New(rand.NewSource(94))
	w := randWeights(rng, classes, features)
	rt := newClassRouter(t, w, classes, features, 2)
	defer rt.Close()
	var b Batch
	if err := rt.Predict(&b, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Proba(&b, nil, nil); err != nil {
		t.Fatal(err)
	}
}
