package router

import (
	"fmt"

	"newtonadmm/internal/serve"
)

// LocalBackend is an in-process replica: its own hot-swap Registry and
// micro-batching Batcher over a Predictor with its own device, exactly
// the single-node serving stack. Full-model requests go through the
// batcher (so concurrent router requests coalesce into shared kernel
// launches and a full queue surfaces as serve.ErrQueueFull for
// failover); partial-score requests bypass it — the router already
// coalesced the whole client batch, so they score in at most two
// launches via the registry's predictor.
type LocalBackend struct {
	reg      *serve.Registry
	bat      *serve.Batcher
	reloadFn func() (int64, error) // nil: Reload unsupported
}

// NewLocalBackend wraps an in-process serving stack. reload may be nil.
func NewLocalBackend(reg *serve.Registry, bat *serve.Batcher, reload func() (int64, error)) *LocalBackend {
	return &LocalBackend{reg: reg, bat: bat, reloadFn: reload}
}

// Registry exposes the replica's registry for hot-swapping snapshots
// while the router serves (the public API and tests swap through it).
func (l *LocalBackend) Registry() *serve.Registry { return l.reg }

// Batcher exposes the replica's micro-batcher (stats, drain hook).
func (l *LocalBackend) Batcher() *serve.Batcher { return l.bat }

// Meta reports the current snapshot's metadata.
func (l *LocalBackend) Meta() (Meta, error) {
	mm, ok := l.reg.Meta()
	if !ok {
		return Meta{}, serve.ErrNoModel
	}
	return metaFromModel(mm), nil
}

// submitAll enqueues every batch row in arrival order and waits for all
// tickets. probaOut non-nil selects the probability path with the given
// class count. Every submitted ticket is always waited, even after a
// submit failure, so no accepted request is abandoned; the first error
// (submit or per-row) is returned. A sampled request's trace rides on
// the first row only — one representative pass through the batcher's
// queue/linger/execute stages — so a wide batch cannot overflow the
// trace's fixed span array.
func (l *LocalBackend) submitAll(b *Batch, out []int, probaOut []float64, classes int) error {
	n := b.Rows()
	tickets := make([]serve.Ticket, 0, n)
	rowOf := make([]int, 0, n)
	var submitErr error
	d, s := 0, 0
	trace := b.Trace
	for i, isSparse := range b.sparse {
		var po []float64
		if probaOut != nil {
			po = probaOut[i*classes : (i+1)*classes]
		}
		var t serve.Ticket
		var err error
		if isSparse {
			t, err = l.bat.SubmitCSRPri(b.idx[s], b.val[s], po, b.Priority, trace)
			s++
		} else {
			t, err = l.bat.SubmitDensePri(b.dense[d], po, b.Priority, trace)
			d++
		}
		trace = nil
		if err != nil {
			submitErr = err
			break
		}
		tickets = append(tickets, t)
		rowOf = append(rowOf, i)
	}
	var waitErr error
	for k, t := range tickets {
		class, err := t.Wait()
		if err != nil && waitErr == nil {
			waitErr = err
		}
		if out != nil {
			out[rowOf[k]] = class
		}
	}
	if submitErr != nil {
		return submitErr
	}
	return waitErr
}

// Predict scores the batch against the full model via the micro-batcher.
func (l *LocalBackend) Predict(b *Batch, out []int) error {
	return l.submitAll(b, out, nil, 0)
}

// Proba scores the batch with class probabilities (out is rows x
// classes in arrival order).
func (l *LocalBackend) Proba(b *Batch, out []float64) error {
	mm, ok := l.reg.Meta()
	if !ok {
		return serve.ErrNoModel
	}
	return l.submitAll(b, nil, out, mm.Classes)
}

// PartialScores scores the raw explicit-class logits of this replica's
// weight rows (rows x cols, arrival order). The per-call staging slices
// are request-granular — the underlying kernel path stays on the
// predictor's zero-allocation staging.
func (l *LocalBackend) PartialScores(b *Batch, cols int, out []float64) (int64, error) {
	p, mm, release, err := l.reg.AcquireCurrent()
	if err != nil {
		return 0, err
	}
	defer release()
	if got := p.Classes() - 1; got != cols {
		return 0, fmt.Errorf("%w (shard now %d explicit classes, router planned %d)", serve.ErrModelShapeChanged, got, cols)
	}
	if len(b.idx) == 0 {
		// Dense-only: score straight into the caller's buffer.
		return mm.Version, p.ScoresDense(b.dense, out[:b.Rows()*cols])
	}
	if len(b.dense) == 0 {
		return mm.Version, p.ScoresCSR(b.idx, b.val, out[:b.Rows()*cols])
	}
	denseOut := make([]float64, len(b.dense)*cols)
	sparseOut := make([]float64, len(b.idx)*cols)
	if err := p.ScoresDense(b.dense, denseOut); err != nil {
		return 0, err
	}
	if err := p.ScoresCSR(b.idx, b.val, sparseOut); err != nil {
		return 0, err
	}
	b.interleave(denseOut, sparseOut, cols, out)
	return mm.Version, nil
}

// Reload hot-swaps the replica's checkpoint through the configured
// reloader.
func (l *LocalBackend) Reload() (int64, error) {
	if l.reloadFn == nil {
		return 0, serve.ErrNoModel
	}
	return l.reloadFn()
}

// Close drains the batcher and retires the registry's snapshot (its
// device closes when the last in-flight batch releases).
func (l *LocalBackend) Close() {
	l.bat.Close()
	l.reg.Close()
}
