package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/serve"
)

// Server is the router's HTTP surface — wire-compatible with the
// single-node serve.Server so clients and the load generator cannot
// tell a fleet from one replica:
//
//	POST /v1/predict    scatter-gather prediction
//	POST /v1/proba      same plus class probabilities
//	GET  /healthz       tier readiness + per-replica states
//	GET  /metricz       router counters + per-replica breakdown
//	POST /v1/reload     coordinated hot swap across all replicas
//	POST /v1/replicas   admin: {"id":N,"action":"drain"|"undrain"}
type Server struct {
	rt    *Router
	mux   *http.ServeMux
	start time.Time

	// latency is the sampled client-request end-to-end latency at the
	// router tier (same sampling tick as trace capture).
	latency *metrics.Histogram
	obsReg  *obs.Registry
}

// NewServer wires the router's HTTP surface.
func NewServer(rt *Router) *Server {
	s := &Server{rt: rt, mux: http.NewServeMux(), start: time.Now(), latency: metrics.NewHistogram()}
	s.obsReg = obs.NewRegistry()
	registerRouterMetrics(s.obsReg, s, rt)
	s.mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, false) })
	s.mux.HandleFunc("/v1/proba", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, true) })
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.Handle("/debug/tracez", obs.TracezHandler(rt.Recorder()))
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/replicas", s.handleReplicas)
	return s
}

// EnableDebug mounts net/http/pprof under /debug/pprof/. Opt-in (the
// -debug flag): profiling endpoints expose stack traces and must not be
// on by default on a serving port.
func (s *Server) EnableDebug() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// stateValue maps a replica routing state to its gauge encoding:
// 1 healthy, 0 draining, -1 down.
func stateValue(st State) float64 {
	switch st {
	case StateHealthy:
		return 1
	case StateDraining:
		return 0
	default:
		return -1
	}
}

// registerRouterMetrics wires the router tier's canonical metric rows
// (the name table in DESIGN.md "Observability") over the router's and
// pool's live counters. Scrapes read atomics; nothing is locked against
// the request path.
func registerRouterMetrics(o *obs.Registry, s *Server, rt *Router) {
	o.CounterFunc("nadmm_requests_total", "", "client requests routed (unit: requests; a replica's figure counts rows)",
		func() uint64 { return uint64(rt.requests.Load()) })
	o.CounterFunc("nadmm_requests_rejected_total", "", "scatter legs rejected by replica backpressure",
		func() uint64 {
			var n int64
			for _, rep := range rt.Pool().Replicas() {
				n += rep.rejected.Load()
			}
			return uint64(n)
		})
	o.GaugeFunc("nadmm_router_mode", obs.Label("mode", string(rt.Mode())), "routing mode in effect (always 1; the mode is the label)",
		func() float64 { return 1 })
	o.CounterFunc("nadmm_failovers_total", "", "scatter legs retried on a sibling after a replica failure",
		func() uint64 { return uint64(rt.failovers.Load()) })
	o.CounterFunc("nadmm_skew_retries_total", "", "class-sharded gathers retried for cross-shard version skew",
		func() uint64 { return uint64(rt.skewRetry.Load()) })
	o.GaugeFunc("nadmm_coverage", "", "shard coverage: 1 ok, 0.5 degraded, 0 unserviceable", func() float64 {
		switch cov, _ := rt.Pool().Coverage(); cov {
		case "ok":
			return 1
		case "degraded":
			return 0.5
		default:
			return 0
		}
	})
	o.GaugeFunc("nadmm_model_version", "", "model snapshot version the router plans against",
		func() float64 { return float64(rt.Version()) })
	for _, reason := range []control.Reason{control.ReasonQueueFull, control.ReasonRateLimited, control.ReasonCostRejected} {
		reason := reason
		o.CounterFunc("nadmm_admission_rejected_total", obs.Label("reason", reason.String()),
			"client requests rejected at the router's admission seam, by machine-readable reason",
			func() uint64 { return rt.AdmissionStats().Count(reason) })
	}
	o.GaugeFunc("nadmm_admission_active", "", "1 when an admission policy is installed at the router",
		func() float64 {
			if rt.Admission() != nil {
				return 1
			}
			return 0
		})
	// The pool's membership changes at runtime (autoscaling), so the
	// per-shard and per-replica families render through a scrape-time
	// collector over the live snapshot instead of construction-time rows.
	o.Collect(func(w io.Writer) { collectPoolMetrics(w, rt) })
	o.Duration("nadmm_request_latency", "", "sampled end-to-end client-request latency at the router", s.latency)
	o.Duration("nadmm_stage_scatter", "", "per-leg scatter round-trip (all replicas)", rt.StageScatter)
	o.Duration("nadmm_stage_merge", "", "partial-tile merge time of class-sharded gathers", rt.StageMerge)
	o.GaugeFunc("nadmm_uptime_seconds", "", "seconds since server start",
		func() float64 { return time.Since(s.start).Seconds() })
	o.GaugeFunc("nadmm_goroutines", "", "goroutines in this process",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// collectPoolMetrics renders the per-shard and per-replica metric
// families over the pool's current membership. Registered as a
// scrape-time collector because AddBackend/RemoveBackend change the
// label sets while the server runs; each scrape emits exactly the live
// rows, and a removed replica's rows disappear with it.
func collectPoolMetrics(w io.Writer, rt *Router) {
	groups := rt.Pool().Groups()
	fmt.Fprint(w, "# HELP nadmm_shard_healthy healthy members in this shard group\n# TYPE nadmm_shard_healthy gauge\n")
	for gi, g := range groups {
		n := 0
		for _, rep := range g.Members() {
			if rep.available() {
				n++
			}
		}
		fmt.Fprintf(w, "nadmm_shard_healthy{shard=\"%d\"} %d\n", gi, n)
	}
	fmt.Fprint(w, "# TYPE nadmm_shard_members gauge\n")
	for gi, g := range groups {
		fmt.Fprintf(w, "nadmm_shard_members{shard=\"%d\"} %d\n", gi, len(g.Members()))
	}
	reps := rt.Pool().Replicas()
	fmt.Fprint(w, "# HELP nadmm_replica_state routing state: 1 healthy, 0 draining, -1 down\n# TYPE nadmm_replica_state gauge\n")
	for _, rep := range reps {
		fmt.Fprintf(w, "nadmm_replica_state{replica=\"%d\"} %s\n", rep.ID, formatGauge(stateValue(rep.State())))
	}
	fmt.Fprint(w, "# TYPE nadmm_replica_done_total counter\n")
	for _, rep := range reps {
		fmt.Fprintf(w, "nadmm_replica_done_total{replica=\"%d\"} %d\n", rep.ID, rep.done.Load())
	}
	fmt.Fprint(w, "# TYPE nadmm_replica_errors_total counter\n")
	for _, rep := range reps {
		fmt.Fprintf(w, "nadmm_replica_errors_total{replica=\"%d\"} %d\n", rep.ID, rep.errs.Load())
	}
	fmt.Fprint(w, "# TYPE nadmm_replica_rejected_total counter\n")
	for _, rep := range reps {
		fmt.Fprintf(w, "nadmm_replica_rejected_total{replica=\"%d\"} %d\n", rep.ID, rep.rejected.Load())
	}
	fmt.Fprint(w, "# TYPE nadmm_replica_inflight gauge\n")
	for _, rep := range reps {
		fmt.Fprintf(w, "nadmm_replica_inflight{replica=\"%d\"} %d\n", rep.ID, rep.InFlight())
	}
	for _, rep := range reps {
		hs := rep.Latency.Snapshot()
		label := fmt.Sprintf("{replica=\"%d\"}", rep.ID)
		fmt.Fprintf(w, "nadmm_leg_latency_count%s %d\n", label, hs.Count)
		fmt.Fprintf(w, "nadmm_leg_latency_mean_seconds%s %.9f\n", label, hs.Mean.Seconds())
		fmt.Fprintf(w, "nadmm_leg_latency_p50_seconds%s %.9f\n", label, hs.P50.Seconds())
		fmt.Fprintf(w, "nadmm_leg_latency_p95_seconds%s %.9f\n", label, hs.P95.Seconds())
		fmt.Fprintf(w, "nadmm_leg_latency_p99_seconds%s %.9f\n", label, hs.P99.Seconds())
		fmt.Fprintf(w, "nadmm_leg_latency_max_seconds%s %.9f\n", label, hs.Max.Seconds())
	}
}

// formatGauge matches the registry's integral-gauge rendering so
// collected rows grep the same as registered ones.
func formatGauge(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// RegisterAutoscaler adds the autoscaler's rows to /metricz. Called by
// the fleet bootstrap once the control loop exists; a fleet without one
// simply has no nadmm_autoscale_* family.
func (s *Server) RegisterAutoscaler(a *control.Autoscaler) {
	s.obsReg.GaugeFunc("nadmm_autoscale_replicas", "", "replica count as of the last autoscaler evaluation",
		func() float64 { return float64(a.Replicas()) })
	s.obsReg.CounterFunc("nadmm_autoscale_ups_total", "", "successful autoscaler scale-ups", a.Ups)
	s.obsReg.CounterFunc("nadmm_autoscale_downs_total", "", "successful autoscaler scale-downs", a.Downs)
	s.obsReg.CounterFunc("nadmm_autoscale_failures_total", "", "scaling actions refused or failed (drain guard, spawn error)", a.Failures)
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Router returns the underlying router (tests, stats).
func (s *Server) Router() *Router { return s.rt }

// Obs returns the router tier's metrics registry — the autoscaler's
// snapshot source windows nadmm_request_latency out of it.
func (s *Server) Obs() *obs.Registry { return s.obsReg }

type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeRouteError renders err through statusFor; a 429 additionally
// carries the machine-readable rejection reason in the body and, when
// the admission policy computed a refill horizon, a Retry-After header
// (whole seconds, rounded up, min 1) — the same envelope the replica
// tier emits, so clients see one shape regardless of which seam
// rejected them.
func writeRouteError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status != http.StatusTooManyRequests {
		writeError(w, status, "%v", err)
		return
	}
	reason, retryAfter, ok := serve.RejectionOf(err)
	if !ok {
		reason = control.ReasonQueueFull
	}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Reason: reason.String()})
}

// statusFor extends the single-node error mapping with the router's
// taxonomy: backpressure is 429; tier unavailability (no replicas, shard
// down, version skew, no model, shutdown, hot-swap shape change) is 503;
// the rest are 400-class request problems.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoReplicas), errors.Is(err, ErrShardUnavailable), errors.Is(err, ErrVersionSkew),
		errors.Is(err, ErrReplicaUnreachable),
		errors.Is(err, serve.ErrNoModel), errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrModelShapeChanged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

type predictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
	ModelVersion  int64       `json:"model_version"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, proba bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	t0 := time.Now()
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	pri, perr := control.ParsePriority(r.Header.Get(serve.PriorityHeader))
	if perr != nil {
		writeError(w, http.StatusBadRequest, "%v", perr)
		return
	}
	var b Batch
	b.Priority = pri
	for i, raw := range req.Instances {
		inst, err := serve.ParseInstance(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		if inst.Sparse {
			b.AddCSR(inst.Indices, inst.Values)
		} else {
			b.AddDense(inst.Dense)
		}
	}
	// Trace capture and the tier latency histogram share one sampling
	// tick; unsampled requests take no clock reads beyond t0.
	tr := s.rt.StartTrace(t0)
	b.Trace = tr
	finish := func() {
		if tr != nil {
			s.latency.Observe(time.Since(t0))
			s.rt.FinishTrace(tr, time.Now())
			tr = nil
		}
	}
	classes := s.rt.Classes()
	resp := predictResponse{
		Predictions:  make([]int, b.Rows()),
		ModelVersion: s.rt.Version(),
	}
	var err error
	if proba {
		flat := make([]float64, b.Rows()*classes)
		if err = s.rt.Proba(&b, flat, resp.Predictions); err == nil {
			resp.Probabilities = make([][]float64, b.Rows())
			for i := range resp.Probabilities {
				resp.Probabilities[i] = flat[i*classes : (i+1)*classes]
			}
		}
	} else {
		err = s.rt.Predict(&b, resp.Predictions)
	}
	if err != nil {
		writeRouteError(w, err)
		finish()
		return
	}
	encStart := time.Now()
	writeJSON(w, http.StatusOK, resp)
	if tr != nil {
		tr.AddSpan(obs.StageEncode, -1, 0, encStart, time.Since(encStart))
	}
	finish()
}

// replicaHealth is one replica's row in /healthz.
type replicaHealth struct {
	ID       int    `json:"id"`
	Group    int    `json:"group"`
	Zone     string `json:"zone,omitempty"`
	State    string `json:"state"`
	Version  int64  `json:"version"`
	InFlight int64  `json:"in_flight"`
	ShardLow int    `json:"shard_low,omitempty"`
	ShardHi  int    `json:"shard_high,omitempty"`
}

// handleHealthz reports shard coverage, not mere liveness: "ok" when
// every group member everywhere is healthy, "degraded" (still 200 —
// every shard retains at least one healthy member) when some member is
// down or draining, "unserviceable" (503) when some group has zero
// healthy members and class-sharded requests cannot be assembled. The
// per-shard healthy counts pinpoint which range lost coverage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reps := s.rt.Pool().Replicas()
	rows := make([]replicaHealth, len(reps))
	for i, rep := range reps {
		m := rep.Meta()
		rows[i] = replicaHealth{
			ID: rep.ID, Group: rep.GroupID, Zone: rep.Zone,
			State: rep.State().String(), Version: m.Version, InFlight: rep.InFlight(),
		}
		if s.rt.Mode() == ModeClass {
			rows[i].ShardLow, rows[i].ShardHi = m.ShardLow, m.ShardHigh
		}
	}
	status, shards := s.rt.Pool().Coverage()
	code := http.StatusOK
	if status == "unserviceable" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"mode":   string(s.rt.Mode()),
		"model": serve.ModelMeta{
			Version:  s.rt.Version(),
			Classes:  s.rt.Classes(),
			Features: s.rt.Features(),
		},
		"shards":         shards,
		"replicas":       rows,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.obsReg.WriteText(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	version, err := s.rt.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "model_version": version})
}

// handleReplicas is the admin surface: GET lists replica stats plus
// shard coverage, POST with {"id":N,"action":"drain"|"undrain"} (or
// ?id=&action=) changes a replica's routing state. Draining blocks
// until the replica's in-flight requests finish; draining the last
// available member of a shard group is refused with 409 unless
// "force":true (or ?force=true) — that drain takes the shard's
// coverage to zero.
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		coverage, shards := s.rt.Pool().Coverage()
		writeJSON(w, http.StatusOK, map[string]any{
			"replicas": s.rt.Pool().Stats(),
			"coverage": coverage,
			"shards":   shards,
		})
	case http.MethodPost:
		var req struct {
			ID     int    `json:"id"`
			Action string `json:"action"`
			Force  bool   `json:"force"`
		}
		if q := r.URL.Query(); q.Get("action") != "" {
			req.Action = q.Get("action")
			id, err := strconv.Atoi(q.Get("id"))
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad id: %v", err)
				return
			}
			req.ID = id
			req.Force, _ = strconv.ParseBool(q.Get("force"))
		} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		var err error
		switch req.Action {
		case "drain":
			if !req.Force {
				if err := s.rt.Pool().CanDrain(req.ID); err != nil {
					writeError(w, http.StatusConflict, "%v", err)
					return
				}
			}
			err = s.rt.Pool().Drain(req.ID, 30*time.Second)
		case "undrain":
			err = s.rt.Pool().Undrain(req.ID)
		default:
			writeError(w, http.StatusBadRequest, "unknown action %q (want drain or undrain)", req.Action)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": req.Action, "id": req.ID})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}
