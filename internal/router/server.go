package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"newtonadmm/internal/serve"
)

// Server is the router's HTTP surface — wire-compatible with the
// single-node serve.Server so clients and the load generator cannot
// tell a fleet from one replica:
//
//	POST /v1/predict    scatter-gather prediction
//	POST /v1/proba      same plus class probabilities
//	GET  /healthz       tier readiness + per-replica states
//	GET  /metricz       router counters + per-replica breakdown
//	POST /v1/reload     coordinated hot swap across all replicas
//	POST /v1/replicas   admin: {"id":N,"action":"drain"|"undrain"}
type Server struct {
	rt    *Router
	mux   *http.ServeMux
	start time.Time
}

// NewServer wires the router's HTTP surface.
func NewServer(rt *Router) *Server {
	s := &Server{rt: rt, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, false) })
	s.mux.HandleFunc("/v1/proba", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, true) })
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/replicas", s.handleReplicas)
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Router returns the underlying router (tests, stats).
func (s *Server) Router() *Router { return s.rt }

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor extends the single-node error mapping with the router's
// taxonomy: backpressure is 429; tier unavailability (no replicas, shard
// down, version skew, no model, shutdown, hot-swap shape change) is 503;
// the rest are 400-class request problems.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoReplicas), errors.Is(err, ErrShardUnavailable), errors.Is(err, ErrVersionSkew),
		errors.Is(err, ErrReplicaUnreachable),
		errors.Is(err, serve.ErrNoModel), errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrModelShapeChanged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

type predictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
	ModelVersion  int64       `json:"model_version"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, proba bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	var b Batch
	for i, raw := range req.Instances {
		inst, err := serve.ParseInstance(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		if inst.Sparse {
			b.AddCSR(inst.Indices, inst.Values)
		} else {
			b.AddDense(inst.Dense)
		}
	}
	classes := s.rt.Classes()
	resp := predictResponse{
		Predictions:  make([]int, b.Rows()),
		ModelVersion: s.rt.Version(),
	}
	var err error
	if proba {
		flat := make([]float64, b.Rows()*classes)
		if err = s.rt.Proba(&b, flat, resp.Predictions); err == nil {
			resp.Probabilities = make([][]float64, b.Rows())
			for i := range resp.Probabilities {
				resp.Probabilities[i] = flat[i*classes : (i+1)*classes]
			}
		}
	} else {
		err = s.rt.Predict(&b, resp.Predictions)
	}
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// replicaHealth is one replica's row in /healthz.
type replicaHealth struct {
	ID       int    `json:"id"`
	Group    int    `json:"group"`
	Zone     string `json:"zone,omitempty"`
	State    string `json:"state"`
	Version  int64  `json:"version"`
	InFlight int64  `json:"in_flight"`
	ShardLow int    `json:"shard_low,omitempty"`
	ShardHi  int    `json:"shard_high,omitempty"`
}

// handleHealthz reports shard coverage, not mere liveness: "ok" when
// every group member everywhere is healthy, "degraded" (still 200 —
// every shard retains at least one healthy member) when some member is
// down or draining, "unserviceable" (503) when some group has zero
// healthy members and class-sharded requests cannot be assembled. The
// per-shard healthy counts pinpoint which range lost coverage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reps := s.rt.Pool().Replicas()
	rows := make([]replicaHealth, len(reps))
	for i, rep := range reps {
		m := rep.Meta()
		rows[i] = replicaHealth{
			ID: rep.ID, Group: rep.GroupID, Zone: rep.Zone,
			State: rep.State().String(), Version: m.Version, InFlight: rep.InFlight(),
		}
		if s.rt.Mode() == ModeClass {
			rows[i].ShardLow, rows[i].ShardHi = m.ShardLow, m.ShardHigh
		}
	}
	status, shards := s.rt.Pool().Coverage()
	code := http.StatusOK
	if status == "unserviceable" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"mode":   string(s.rt.Mode()),
		"model": serve.ModelMeta{
			Version:  s.rt.Version(),
			Classes:  s.rt.Classes(),
			Features: s.rt.Features(),
		},
		"shards":         shards,
		"replicas":       rows,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.rt.Stats()
	fmt.Fprintf(w, "router_mode %s\n", st.Mode)
	fmt.Fprintf(w, "router_requests %d\n", st.Requests)
	fmt.Fprintf(w, "router_failovers %d\n", st.Failovers)
	fmt.Fprintf(w, "router_skew_retries %d\n", st.SkewRetry)
	fmt.Fprintf(w, "router_model_version %d\n", s.rt.Version())
	coverage, shards := s.rt.Pool().Coverage()
	fmt.Fprintf(w, "router_coverage %s\n", coverage)
	for _, sc := range shards {
		fmt.Fprintf(w, "router_shard_%d_healthy %d\n", sc.Group, sc.Healthy)
		fmt.Fprintf(w, "router_shard_%d_members %d\n", sc.Group, sc.Members)
	}
	for _, rs := range st.Replicas {
		fmt.Fprintf(w, "router_replica_%d_state %s\n", rs.ID, rs.State)
		fmt.Fprintf(w, "router_replica_%d_done %d\n", rs.ID, rs.Done)
		fmt.Fprintf(w, "router_replica_%d_errors %d\n", rs.ID, rs.Errors)
		fmt.Fprintf(w, "router_replica_%d_rejected %d\n", rs.ID, rs.Rejected)
		fmt.Fprintf(w, "router_replica_%d_inflight %d\n", rs.ID, rs.InFlight)
		fmt.Fprintf(w, "router_replica_%d_latency_p50_us %.1f\n", rs.ID, float64(rs.Latency.P50.Microseconds()))
		fmt.Fprintf(w, "router_replica_%d_latency_p99_us %.1f\n", rs.ID, float64(rs.Latency.P99.Microseconds()))
	}
	fmt.Fprintf(w, "router_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	version, err := s.rt.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "model_version": version})
}

// handleReplicas is the admin surface: GET lists replica stats plus
// shard coverage, POST with {"id":N,"action":"drain"|"undrain"} (or
// ?id=&action=) changes a replica's routing state. Draining blocks
// until the replica's in-flight requests finish; draining the last
// available member of a shard group is refused with 409 unless
// "force":true (or ?force=true) — that drain takes the shard's
// coverage to zero.
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		coverage, shards := s.rt.Pool().Coverage()
		writeJSON(w, http.StatusOK, map[string]any{
			"replicas": s.rt.Pool().Stats(),
			"coverage": coverage,
			"shards":   shards,
		})
	case http.MethodPost:
		var req struct {
			ID     int    `json:"id"`
			Action string `json:"action"`
			Force  bool   `json:"force"`
		}
		if q := r.URL.Query(); q.Get("action") != "" {
			req.Action = q.Get("action")
			id, err := strconv.Atoi(q.Get("id"))
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad id: %v", err)
				return
			}
			req.ID = id
			req.Force, _ = strconv.ParseBool(q.Get("force"))
		} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		var err error
		switch req.Action {
		case "drain":
			if !req.Force {
				if err := s.rt.Pool().CanDrain(req.ID); err != nil {
					writeError(w, http.StatusConflict, "%v", err)
					return
				}
			}
			err = s.rt.Pool().Drain(req.ID, 30*time.Second)
		case "undrain":
			err = s.rt.Pool().Undrain(req.ID)
		default:
			writeError(w, http.StatusBadRequest, "unknown action %q (want drain or undrain)", req.Action)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": req.Action, "id": req.ID})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}
