package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"newtonadmm/internal/metrics"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/serve"
)

// Server is the router's HTTP surface — wire-compatible with the
// single-node serve.Server so clients and the load generator cannot
// tell a fleet from one replica:
//
//	POST /v1/predict    scatter-gather prediction
//	POST /v1/proba      same plus class probabilities
//	GET  /healthz       tier readiness + per-replica states
//	GET  /metricz       router counters + per-replica breakdown
//	POST /v1/reload     coordinated hot swap across all replicas
//	POST /v1/replicas   admin: {"id":N,"action":"drain"|"undrain"}
type Server struct {
	rt    *Router
	mux   *http.ServeMux
	start time.Time

	// latency is the sampled client-request end-to-end latency at the
	// router tier (same sampling tick as trace capture).
	latency *metrics.Histogram
	obsReg  *obs.Registry
}

// NewServer wires the router's HTTP surface.
func NewServer(rt *Router) *Server {
	s := &Server{rt: rt, mux: http.NewServeMux(), start: time.Now(), latency: metrics.NewHistogram()}
	s.obsReg = obs.NewRegistry()
	registerRouterMetrics(s.obsReg, s, rt)
	s.mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, false) })
	s.mux.HandleFunc("/v1/proba", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, true) })
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.Handle("/debug/tracez", obs.TracezHandler(rt.Recorder()))
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/replicas", s.handleReplicas)
	return s
}

// EnableDebug mounts net/http/pprof under /debug/pprof/. Opt-in (the
// -debug flag): profiling endpoints expose stack traces and must not be
// on by default on a serving port.
func (s *Server) EnableDebug() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// stateValue maps a replica routing state to its gauge encoding:
// 1 healthy, 0 draining, -1 down.
func stateValue(st State) float64 {
	switch st {
	case StateHealthy:
		return 1
	case StateDraining:
		return 0
	default:
		return -1
	}
}

// registerRouterMetrics wires the router tier's canonical metric rows
// (the name table in DESIGN.md "Observability") over the router's and
// pool's live counters. Scrapes read atomics; nothing is locked against
// the request path.
func registerRouterMetrics(o *obs.Registry, s *Server, rt *Router) {
	o.CounterFunc("nadmm_requests_total", "", "client requests routed (unit: requests; a replica's figure counts rows)",
		func() uint64 { return uint64(rt.requests.Load()) })
	o.CounterFunc("nadmm_requests_rejected_total", "", "scatter legs rejected by replica backpressure",
		func() uint64 {
			var n int64
			for _, rep := range rt.Pool().Replicas() {
				n += rep.rejected.Load()
			}
			return uint64(n)
		})
	o.GaugeFunc("nadmm_router_mode", obs.Label("mode", string(rt.Mode())), "routing mode in effect (always 1; the mode is the label)",
		func() float64 { return 1 })
	o.CounterFunc("nadmm_failovers_total", "", "scatter legs retried on a sibling after a replica failure",
		func() uint64 { return uint64(rt.failovers.Load()) })
	o.CounterFunc("nadmm_skew_retries_total", "", "class-sharded gathers retried for cross-shard version skew",
		func() uint64 { return uint64(rt.skewRetry.Load()) })
	o.GaugeFunc("nadmm_coverage", "", "shard coverage: 1 ok, 0.5 degraded, 0 unserviceable", func() float64 {
		switch cov, _ := rt.Pool().Coverage(); cov {
		case "ok":
			return 1
		case "degraded":
			return 0.5
		default:
			return 0
		}
	})
	o.GaugeFunc("nadmm_model_version", "", "model snapshot version the router plans against",
		func() float64 { return float64(rt.Version()) })
	for gi, g := range rt.Pool().Groups() {
		g := g
		shard := obs.Label("shard", strconv.Itoa(gi))
		o.GaugeFunc("nadmm_shard_healthy", shard, "healthy members in this shard group", func() float64 {
			n := 0
			for _, rep := range g.Members() {
				if rep.available() {
					n++
				}
			}
			return float64(n)
		})
		o.GaugeFunc("nadmm_shard_members", shard, "total members in this shard group",
			func() float64 { return float64(len(g.Members())) })
	}
	for _, rep := range rt.Pool().Replicas() {
		rep := rep
		label := obs.Label("replica", strconv.Itoa(rep.ID))
		o.GaugeFunc("nadmm_replica_state", label, "routing state: 1 healthy, 0 draining, -1 down",
			func() float64 { return stateValue(rep.State()) })
		o.CounterFunc("nadmm_replica_done_total", label, "scatter legs completed on this replica",
			func() uint64 { return uint64(rep.done.Load()) })
		o.CounterFunc("nadmm_replica_errors_total", label, "scatter legs failed on this replica",
			func() uint64 { return uint64(rep.errs.Load()) })
		o.CounterFunc("nadmm_replica_rejected_total", label, "scatter legs rejected by this replica's backpressure",
			func() uint64 { return uint64(rep.rejected.Load()) })
		o.GaugeFunc("nadmm_replica_inflight", label, "router requests currently executing on this replica",
			func() float64 { return float64(rep.InFlight()) })
		o.Duration("nadmm_leg_latency", label, "scatter-leg round-trip to this replica", rep.Latency)
	}
	o.Duration("nadmm_request_latency", "", "sampled end-to-end client-request latency at the router", s.latency)
	o.Duration("nadmm_stage_scatter", "", "per-leg scatter round-trip (all replicas)", rt.StageScatter)
	o.Duration("nadmm_stage_merge", "", "partial-tile merge time of class-sharded gathers", rt.StageMerge)
	o.GaugeFunc("nadmm_uptime_seconds", "", "seconds since server start",
		func() float64 { return time.Since(s.start).Seconds() })
	o.GaugeFunc("nadmm_goroutines", "", "goroutines in this process",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Router returns the underlying router (tests, stats).
func (s *Server) Router() *Router { return s.rt }

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor extends the single-node error mapping with the router's
// taxonomy: backpressure is 429; tier unavailability (no replicas, shard
// down, version skew, no model, shutdown, hot-swap shape change) is 503;
// the rest are 400-class request problems.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoReplicas), errors.Is(err, ErrShardUnavailable), errors.Is(err, ErrVersionSkew),
		errors.Is(err, ErrReplicaUnreachable),
		errors.Is(err, serve.ErrNoModel), errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrModelShapeChanged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

type predictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
	ModelVersion  int64       `json:"model_version"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, proba bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	t0 := time.Now()
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	var b Batch
	for i, raw := range req.Instances {
		inst, err := serve.ParseInstance(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		if inst.Sparse {
			b.AddCSR(inst.Indices, inst.Values)
		} else {
			b.AddDense(inst.Dense)
		}
	}
	// Trace capture and the tier latency histogram share one sampling
	// tick; unsampled requests take no clock reads beyond t0.
	tr := s.rt.StartTrace(t0)
	b.Trace = tr
	finish := func() {
		if tr != nil {
			s.latency.Observe(time.Since(t0))
			s.rt.FinishTrace(tr, time.Now())
			tr = nil
		}
	}
	classes := s.rt.Classes()
	resp := predictResponse{
		Predictions:  make([]int, b.Rows()),
		ModelVersion: s.rt.Version(),
	}
	var err error
	if proba {
		flat := make([]float64, b.Rows()*classes)
		if err = s.rt.Proba(&b, flat, resp.Predictions); err == nil {
			resp.Probabilities = make([][]float64, b.Rows())
			for i := range resp.Probabilities {
				resp.Probabilities[i] = flat[i*classes : (i+1)*classes]
			}
		}
	} else {
		err = s.rt.Predict(&b, resp.Predictions)
	}
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		finish()
		return
	}
	encStart := time.Now()
	writeJSON(w, http.StatusOK, resp)
	if tr != nil {
		tr.AddSpan(obs.StageEncode, -1, 0, encStart, time.Since(encStart))
	}
	finish()
}

// replicaHealth is one replica's row in /healthz.
type replicaHealth struct {
	ID       int    `json:"id"`
	Group    int    `json:"group"`
	Zone     string `json:"zone,omitempty"`
	State    string `json:"state"`
	Version  int64  `json:"version"`
	InFlight int64  `json:"in_flight"`
	ShardLow int    `json:"shard_low,omitempty"`
	ShardHi  int    `json:"shard_high,omitempty"`
}

// handleHealthz reports shard coverage, not mere liveness: "ok" when
// every group member everywhere is healthy, "degraded" (still 200 —
// every shard retains at least one healthy member) when some member is
// down or draining, "unserviceable" (503) when some group has zero
// healthy members and class-sharded requests cannot be assembled. The
// per-shard healthy counts pinpoint which range lost coverage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reps := s.rt.Pool().Replicas()
	rows := make([]replicaHealth, len(reps))
	for i, rep := range reps {
		m := rep.Meta()
		rows[i] = replicaHealth{
			ID: rep.ID, Group: rep.GroupID, Zone: rep.Zone,
			State: rep.State().String(), Version: m.Version, InFlight: rep.InFlight(),
		}
		if s.rt.Mode() == ModeClass {
			rows[i].ShardLow, rows[i].ShardHi = m.ShardLow, m.ShardHigh
		}
	}
	status, shards := s.rt.Pool().Coverage()
	code := http.StatusOK
	if status == "unserviceable" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"mode":   string(s.rt.Mode()),
		"model": serve.ModelMeta{
			Version:  s.rt.Version(),
			Classes:  s.rt.Classes(),
			Features: s.rt.Features(),
		},
		"shards":         shards,
		"replicas":       rows,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.obsReg.WriteText(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	version, err := s.rt.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "model_version": version})
}

// handleReplicas is the admin surface: GET lists replica stats plus
// shard coverage, POST with {"id":N,"action":"drain"|"undrain"} (or
// ?id=&action=) changes a replica's routing state. Draining blocks
// until the replica's in-flight requests finish; draining the last
// available member of a shard group is refused with 409 unless
// "force":true (or ?force=true) — that drain takes the shard's
// coverage to zero.
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		coverage, shards := s.rt.Pool().Coverage()
		writeJSON(w, http.StatusOK, map[string]any{
			"replicas": s.rt.Pool().Stats(),
			"coverage": coverage,
			"shards":   shards,
		})
	case http.MethodPost:
		var req struct {
			ID     int    `json:"id"`
			Action string `json:"action"`
			Force  bool   `json:"force"`
		}
		if q := r.URL.Query(); q.Get("action") != "" {
			req.Action = q.Get("action")
			id, err := strconv.Atoi(q.Get("id"))
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad id: %v", err)
				return
			}
			req.ID = id
			req.Force, _ = strconv.ParseBool(q.Get("force"))
		} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		var err error
		switch req.Action {
		case "drain":
			if !req.Force {
				if err := s.rt.Pool().CanDrain(req.ID); err != nil {
					writeError(w, http.StatusConflict, "%v", err)
					return
				}
			}
			err = s.rt.Pool().Drain(req.ID, 30*time.Second)
		case "undrain":
			err = s.rt.Pool().Undrain(req.ID)
		default:
			writeError(w, http.StatusBadRequest, "unknown action %q (want drain or undrain)", req.Action)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": req.Action, "id": req.ID})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}
