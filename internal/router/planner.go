package router

import (
	"fmt"
	"sort"
)

// ShardRange is one replica's slice of the explicit class rows: classes
// [Low, High) of a model with TotalClasses classes (the reference class
// TotalClasses-1 is implicit and owned by no shard).
type ShardRange struct {
	Low, High int
}

// Width returns the number of explicit class rows in the range.
func (s ShardRange) Width() int { return s.High - s.Low }

// PlanShards splits the m = classes-1 explicit class rows of a model
// into n contiguous balanced ranges (the first m%n shards get one extra
// row). Every shard must be non-empty: n may not exceed m.
func PlanShards(classes, n int) ([]ShardRange, error) {
	m := classes - 1
	if n <= 0 {
		return nil, fmt.Errorf("router: shard count %d must be positive", n)
	}
	if n > m {
		return nil, fmt.Errorf("router: cannot split %d explicit class rows across %d shards", m, n)
	}
	out := make([]ShardRange, n)
	lo := 0
	for r := 0; r < n; r++ {
		width := m / n
		if r < m%n {
			width++
		}
		out[r] = ShardRange{Low: lo, High: lo + width}
		lo += width
	}
	return out, nil
}

// GroupPlan is one shard group of the R×S grid: the class-row range it
// owns and the indices (into the backend list) of the replicas that
// jointly serve it.
type GroupPlan struct {
	Range   ShardRange
	Members []int
}

// planGroupsFromMetas derives the replicated-shard placement from the
// replicas' reported metadata. Replicas reporting the same shard range
// form one group of siblings (any of them can serve the range's partial
// logits), and the group ranges must tile [0, TotalClasses-1) exactly —
// no gaps, no overlaps. Full-model replicas normalize to the whole
// explicit span, so R full copies form a single S=1 group. When the
// fleet declares more than one placement zone, every multi-member group
// must span at least two zones (the zone-spread invariant: one zone
// failure may not take a shard's coverage to zero). Groups are returned
// ordered by range.
func planGroupsFromMetas(metas []Meta) ([]GroupPlan, error) {
	if len(metas) == 0 {
		return nil, fmt.Errorf("router: class-sharded mode needs at least one replica")
	}
	total, features := metas[0].TotalClasses, metas[0].Features
	byRange := make(map[ShardRange]int)
	var groups []GroupPlan
	for i, m := range metas {
		if m.TotalClasses != total || m.Features != features {
			return nil, fmt.Errorf("router: replica %d shape (%d classes, %d features) != replica 0 (%d, %d)",
				i, m.TotalClasses, m.Features, total, features)
		}
		if m.ShardHigh-m.ShardLow != m.Classes-1 {
			return nil, fmt.Errorf("router: replica %d shard [%d,%d) disagrees with its %d local classes",
				i, m.ShardLow, m.ShardHigh, m.Classes)
		}
		rng := ShardRange{Low: m.ShardLow, High: m.ShardHigh}
		g, seen := byRange[rng]
		if !seen {
			g = len(groups)
			byRange[rng] = g
			groups = append(groups, GroupPlan{Range: rng})
		}
		groups[g].Members = append(groups[g].Members, i)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].Range.Low < groups[b].Range.Low })
	want := 0
	for _, g := range groups {
		if g.Range.Low != want {
			return nil, fmt.Errorf("router: shard coverage gap or overlap at class row %d (next shard starts at %d)", want, g.Range.Low)
		}
		if g.Range.Width() <= 0 {
			return nil, fmt.Errorf("router: empty shard [%d,%d)", g.Range.Low, g.Range.High)
		}
		want = g.Range.High
	}
	if want != total-1 {
		return nil, fmt.Errorf("router: shards cover class rows [0,%d), model has %d explicit rows", want, total-1)
	}
	if err := checkZoneSpread(metas, groups); err != nil {
		return nil, err
	}
	return groups, nil
}

// checkZoneSpread enforces the zone-spread invariant: in a fleet that
// declares more than one zone, a multi-member group concentrated in a
// single zone is a construction-time error, not a warning — that
// placement silently reintroduces the single-point-of-failure the R×S
// grid exists to remove.
func checkZoneSpread(metas []Meta, groups []GroupPlan) error {
	zones := make(map[string]bool)
	for _, m := range metas {
		if m.Zone != "" {
			zones[m.Zone] = true
		}
	}
	if len(zones) < 2 {
		return nil
	}
	for gi, g := range groups {
		if len(g.Members) < 2 {
			continue
		}
		seen := make(map[string]bool)
		for _, i := range g.Members {
			seen[metas[i].Zone] = true
		}
		if len(seen) < 2 {
			return fmt.Errorf("router: shard group %d [%d,%d) has all %d members in zone %q; replicated shards must spread across zones",
				gi, g.Range.Low, g.Range.High, len(g.Members), metas[g.Members[0]].Zone)
		}
	}
	return nil
}
