package router

import (
	"fmt"
	"sort"
)

// ShardRange is one replica's slice of the explicit class rows: classes
// [Low, High) of a model with TotalClasses classes (the reference class
// TotalClasses-1 is implicit and owned by no shard).
type ShardRange struct {
	Low, High int
}

// Width returns the number of explicit class rows in the range.
func (s ShardRange) Width() int { return s.High - s.Low }

// PlanShards splits the m = classes-1 explicit class rows of a model
// into n contiguous balanced ranges (the first m%n shards get one extra
// row). Every shard must be non-empty: n may not exceed m.
func PlanShards(classes, n int) ([]ShardRange, error) {
	m := classes - 1
	if n <= 0 {
		return nil, fmt.Errorf("router: shard count %d must be positive", n)
	}
	if n > m {
		return nil, fmt.Errorf("router: cannot split %d explicit class rows across %d shards", m, n)
	}
	out := make([]ShardRange, n)
	lo := 0
	for r := 0; r < n; r++ {
		width := m / n
		if r < m%n {
			width++
		}
		out[r] = ShardRange{Low: lo, High: lo + width}
		lo += width
	}
	return out, nil
}

// planFromMetas derives the class-sharded placement from the replicas'
// reported shard metadata: every backend must be a shard of the same
// model (same TotalClasses and Features), and together the shards must
// tile [0, TotalClasses-1) exactly — no gaps, no overlaps. Returns the
// per-replica ranges in replica order.
func planFromMetas(metas []Meta) ([]ShardRange, error) {
	if len(metas) == 0 {
		return nil, fmt.Errorf("router: class-sharded mode needs at least one replica")
	}
	total, features := metas[0].TotalClasses, metas[0].Features
	ranges := make([]ShardRange, len(metas))
	for i, m := range metas {
		if !m.IsShard() && len(metas) > 1 {
			return nil, fmt.Errorf("router: replica %d serves a full model, not a class shard", i)
		}
		if m.TotalClasses != total || m.Features != features {
			return nil, fmt.Errorf("router: replica %d shape (%d classes, %d features) != replica 0 (%d, %d)",
				i, m.TotalClasses, m.Features, total, features)
		}
		if m.ShardHigh-m.ShardLow != m.Classes-1 {
			return nil, fmt.Errorf("router: replica %d shard [%d,%d) disagrees with its %d local classes",
				i, m.ShardLow, m.ShardHigh, m.Classes)
		}
		ranges[i] = ShardRange{Low: m.ShardLow, High: m.ShardHigh}
	}
	// Coverage check over a sorted copy; the returned slice stays in
	// replica order so partials land at the right column offsets.
	sorted := append([]ShardRange(nil), ranges...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Low < sorted[b].Low })
	want := 0
	for _, s := range sorted {
		if s.Low != want {
			return nil, fmt.Errorf("router: shard coverage gap or overlap at class row %d (next shard starts at %d)", want, s.Low)
		}
		if s.Width() <= 0 {
			return nil, fmt.Errorf("router: empty shard [%d,%d)", s.Low, s.High)
		}
		want = s.High
	}
	if want != total-1 {
		return nil, fmt.Errorf("router: shards cover class rows [0,%d), model has %d explicit rows", want, total-1)
	}
	return ranges, nil
}
