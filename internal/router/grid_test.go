package router

import (
	"strings"
	"testing"

	"newtonadmm/internal/serve"
)

// gridMeta builds one member's meta for shard [lo,hi) of a model with
// total classes.
func gridMeta(lo, hi, total, features int, zone string) Meta {
	return Meta{
		Classes: hi - lo + 1, Features: features, Version: 1,
		ShardCount: 2, ShardLow: lo, ShardHigh: hi, TotalClasses: total,
		Zone: zone,
	}
}

func TestPlanGroupsGrid(t *testing.T) {
	// R=2 x S=2: members reporting the same range group together.
	metas := []Meta{
		gridMeta(0, 2, 5, 8, ""), gridMeta(0, 2, 5, 8, ""),
		gridMeta(2, 4, 5, 8, ""), gridMeta(2, 4, 5, 8, ""),
	}
	plans, err := planGroupsFromMetas(metas)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d groups, want 2", len(plans))
	}
	if plans[0].Range != (ShardRange{0, 2}) || plans[1].Range != (ShardRange{2, 4}) {
		t.Fatalf("ranges %v %v, want [0,2) [2,4)", plans[0].Range, plans[1].Range)
	}
	if len(plans[0].Members) != 2 || plans[0].Members[0] != 0 || plans[0].Members[1] != 1 {
		t.Fatalf("group 0 members %v, want [0 1]", plans[0].Members)
	}
	if len(plans[1].Members) != 2 || plans[1].Members[0] != 2 || plans[1].Members[1] != 3 {
		t.Fatalf("group 1 members %v, want [2 3]", plans[1].Members)
	}

	// R full-model copies form a single S=1 group (the old planner
	// rejected more than one full replica in class mode).
	full := metaFromModel(serve.ModelMeta{Classes: 5, Features: 8, Version: 1})
	plans, err = planGroupsFromMetas([]Meta{full, full})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || len(plans[0].Members) != 2 {
		t.Fatalf("two full copies: %d groups x %d members, want 1x2", len(plans), len(plans[0].Members))
	}

	// A replicated group does not excuse a coverage gap.
	if _, err := planGroupsFromMetas([]Meta{gridMeta(0, 2, 5, 8, ""), gridMeta(0, 2, 5, 8, "")}); err == nil {
		t.Fatal("uncovered range [2,4) accepted")
	}
}

func TestZoneSpreadInvariant(t *testing.T) {
	// Multi-zone fleet, group 0 concentrated in one zone: rejected.
	metas := []Meta{
		gridMeta(0, 2, 5, 8, "a"), gridMeta(0, 2, 5, 8, "a"),
		gridMeta(2, 4, 5, 8, "a"), gridMeta(2, 4, 5, 8, "b"),
	}
	_, err := planGroupsFromMetas(metas)
	if err == nil || !strings.Contains(err.Error(), "zone") {
		t.Fatalf("single-zone group in a multi-zone fleet: got %v, want zone-spread error", err)
	}

	// Spread groups pass.
	metas[1].Zone = "b"
	if _, err := planGroupsFromMetas(metas); err != nil {
		t.Fatalf("spread grid rejected: %v", err)
	}

	// A fleet that declares no zones (or one zone) has nothing to
	// spread across; no error.
	for i := range metas {
		metas[i].Zone = ""
	}
	if _, err := planGroupsFromMetas(metas); err != nil {
		t.Fatalf("zoneless grid rejected: %v", err)
	}
}

// gridFake builds a fakeBackend reporting shard [lo,hi) of total.
func gridFake(lo, hi, total int, zone string) *fakeBackend {
	f := newFakeBackend(total, 8)
	f.meta = gridMeta(lo, hi, total, 8, zone)
	return f
}

func TestCoverageAndDrainGuard(t *testing.T) {
	backends := []Backend{
		gridFake(0, 2, 5, ""), gridFake(0, 2, 5, ""),
		gridFake(2, 4, 5, ""), gridFake(2, 4, 5, ""),
	}
	rt, err := New(backends, Options{Mode: ModeClass, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	pool := rt.Pool()

	status, shards := pool.Coverage()
	if status != "ok" || len(shards) != 2 || shards[0].Healthy != 2 || shards[1].Healthy != 2 {
		t.Fatalf("fresh grid coverage %q %+v, want ok with 2/2 per shard", status, shards)
	}
	for id := 0; id < 4; id++ {
		if err := pool.CanDrain(id); err != nil {
			t.Fatalf("CanDrain(%d) on a full grid: %v", id, err)
		}
	}

	// One member down: degraded, and its sibling becomes undrainable.
	pool.replicas[1].state.Store(int32(StateDown))
	status, shards = pool.Coverage()
	if status != "degraded" || shards[0].Healthy != 1 {
		t.Fatalf("one member down: coverage %q healthy=%d, want degraded 1", status, shards[0].Healthy)
	}
	if err := pool.CanDrain(0); err == nil {
		t.Fatal("CanDrain allowed the last available member of group 0")
	}
	if err := pool.CanDrain(2); err != nil {
		t.Fatalf("CanDrain(2) with group 1 fully healthy: %v", err)
	}
	// Draining an already-unavailable member is always allowed.
	if err := pool.CanDrain(1); err != nil {
		t.Fatalf("CanDrain of a down member: %v", err)
	}

	// Whole group down: unserviceable with a zero healthy count.
	pool.replicas[0].state.Store(int32(StateDown))
	status, shards = pool.Coverage()
	if status != "unserviceable" || shards[0].Healthy != 0 {
		t.Fatalf("group down: coverage %q healthy=%d, want unserviceable 0", status, shards[0].Healthy)
	}

	// Replica IDs carry their group assignment.
	if pool.replicas[0].GroupID != 0 || pool.replicas[3].GroupID != 1 {
		t.Fatalf("group IDs %d %d, want 0 1", pool.replicas[0].GroupID, pool.replicas[3].GroupID)
	}
}

// TestReplicaModeSingleGroup pins that replica mode forms one group of
// the whole fleet, so coverage semantics are uniform across modes.
func TestReplicaModeSingleGroup(t *testing.T) {
	rt, err := New([]Backend{newFakeBackend(4, 8), newFakeBackend(4, 8)}, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	groups := rt.Pool().Groups()
	if len(groups) != 1 || len(groups[0].Members()) != 2 {
		t.Fatalf("replica mode: %d groups, want 1 with 2 members", len(groups))
	}
	rt.Pool().replicas[0].state.Store(int32(StateDown))
	status, _ := rt.Pool().Coverage()
	if status != "degraded" {
		t.Fatalf("one of two replicas down: coverage %q, want degraded", status)
	}
}
