package router

import (
	"errors"

	"newtonadmm/internal/control"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/serve"
)

// Errors introduced by the routing tier. Backend and scoring errors
// (serve.ErrQueueFull, serve.ErrNoModel, ...) pass through unchanged so
// the HTTP layer's status mapping stays uniform.
var (
	// ErrNoReplicas means no replica is currently available to serve the
	// request (all down or draining). Transient: maps to 503.
	ErrNoReplicas = errors.New("router: no available replica")
	// ErrShardUnavailable means a class shard's only replica is down or
	// draining, so partial logits cannot be assembled. Transient: 503.
	ErrShardUnavailable = errors.New("router: class shard unavailable")
	// ErrVersionSkew means the shards scored a request against different
	// model versions mid-rollout and retries were exhausted. Transient:
	// the next request (or retry) sees the settled version. Maps to 503.
	ErrVersionSkew = errors.New("router: shard model versions diverged; retry")
	// ErrReplicaUnreachable tags transport-level failures (dial/read
	// errors to a remote replica). It is the only data-plane error that
	// feeds the health signal: request-shaped errors (bad rows, wire
	// 4xx) are the client's fault and must not evict replicas. Maps to
	// 503.
	ErrReplicaUnreachable = errors.New("router: replica unreachable")
)

// Meta describes a backend's current model snapshot. For a full replica
// ShardCount is 0 and the shard range is the whole explicit-class span
// [0, Classes-1); for a class shard, Classes counts only the local slice
// plus the implicit reference class and TotalClasses is the full model's
// class count.
type Meta struct {
	Classes      int
	Features     int
	Version      int64
	ShardIndex   int
	ShardCount   int
	ShardLow     int
	ShardHigh    int
	TotalClasses int
	// Zone is the replica's placement zone/rack label ("" when the
	// operator declared none); the planner uses it to validate that a
	// replicated shard group spreads across failure domains.
	Zone string
}

// IsShard reports whether the backend serves a class shard rather than
// the full model.
func (m Meta) IsShard() bool { return m.ShardCount > 0 }

// metaFromModel maps the serving layer's wire metadata.
func metaFromModel(mm serve.ModelMeta) Meta {
	m := Meta{
		Classes:      mm.Classes,
		Features:     mm.Features,
		Version:      mm.Version,
		ShardIndex:   mm.ShardIndex,
		ShardCount:   mm.ShardCount,
		ShardLow:     mm.ShardLow,
		ShardHigh:    mm.ShardHigh,
		TotalClasses: mm.TotalClasses,
		Zone:         mm.Zone,
	}
	if m.ShardCount == 0 {
		m.ShardLow, m.ShardHigh = 0, mm.Classes-1
		m.TotalClasses = mm.Classes
	}
	return m
}

// Backend is the per-replica surface the router scatters to. All batch
// outputs are in the batch's original row order. Implementations must be
// safe for concurrent use; *LocalBackend wraps an in-process serving
// stack, *HTTPBackend drives a replica process over the wire.
type Backend interface {
	// Meta probes the backend's current snapshot; it doubles as the
	// health-check ping.
	Meta() (Meta, error)
	// Predict scores the whole batch against the full model (replica-
	// balanced data plane). A full admission queue surfaces as
	// serve.ErrQueueFull so the router can fail over.
	Predict(b *Batch, out []int) error
	// Proba is Predict plus class probabilities: out is rows x classes
	// row-major; classes are derived from the probability rows by the
	// caller.
	Proba(b *Batch, out []float64) error
	// PartialScores scores the raw explicit-class logits of the
	// backend's weight rows (class-sharded data plane): out is rows x
	// cols row-major in batch order, where cols is the shard width the
	// router planned for this replica. Implementations must fail with
	// serve.ErrModelShapeChanged when their current snapshot's width
	// differs (a shape-changing reload behind the router's back) —
	// never write a mismatched tile. Returns the snapshot version the
	// scores were computed against, so the router can detect
	// mid-rollout skew.
	PartialScores(b *Batch, cols int, out []float64) (int64, error)
	// Reload asks the backend to hot-swap its checkpoint; returns the
	// new version.
	Reload() (int64, error)
	// Close releases backend resources.
	Close()
}

// Batch is one scatter unit: the instances of one client request, mixed
// dense and sparse, in arrival order. Rows are partitioned into the two
// kind-homogeneous sub-batches the predictors score (each one launch),
// with the arrival order retained so outputs can be reassembled.
type Batch struct {
	sparse []bool // per original row: which sub-batch it went to
	dense  [][]float64
	idx    [][]int
	val    [][]float64

	// Trace, when non-nil, is the request's sampled observability trace
	// (see internal/obs and DESIGN.md "Observability"). The router
	// records scatter-leg and merge spans into it, and backends
	// propagate its ID across the wire so replica-side spans stitch to
	// the same trace. The party that set it owns finishing it; the
	// router only adds spans.
	Trace *obs.Trace

	// Priority is the request's service class (DESIGN.md "Control
	// plane"). The zero value is interactive, so untouched batches keep
	// the legacy behavior; backends propagate it to replicas (priority
	// header on the JSON plane, priority trailer on the binary plane).
	Priority control.Priority
}

// AddDense appends one dense row.
func (b *Batch) AddDense(row []float64) {
	b.sparse = append(b.sparse, false)
	b.dense = append(b.dense, row)
}

// AddCSR appends one sparse row (strictly increasing indices).
func (b *Batch) AddCSR(idx []int, val []float64) {
	b.sparse = append(b.sparse, true)
	b.idx = append(b.idx, idx)
	b.val = append(b.val, val)
}

// Rows returns the number of rows in the batch.
func (b *Batch) Rows() int { return len(b.sparse) }

// DenseRows returns the dense sub-batch in dense arrival order. The
// slice is shared, not copied — callers must treat it as read-only.
// In-process backends (the fleet simulator's virtual replicas) use it
// to feed rows to real scoring paths without the wire format.
func (b *Batch) DenseRows() [][]float64 { return b.dense }

// instances rebuilds the wire-format instance list in arrival order
// (dense rows as arrays, sparse rows as indices/values objects).
func (b *Batch) instances() []any {
	out := make([]any, 0, len(b.sparse))
	d, s := 0, 0
	for _, isSparse := range b.sparse {
		if isSparse {
			out = append(out, map[string]any{"indices": b.idx[s], "values": b.val[s]})
			s++
		} else {
			out = append(out, b.dense[d])
			d++
		}
	}
	return out
}

// interleave writes per-kind score blocks back into arrival order:
// denseOut and sparseOut are (rows-of-kind) x cols, out is rows x cols.
func (b *Batch) interleave(denseOut, sparseOut []float64, cols int, out []float64) {
	d, s := 0, 0
	for i, isSparse := range b.sparse {
		dst := out[i*cols : (i+1)*cols]
		if isSparse {
			copy(dst, sparseOut[s*cols:(s+1)*cols])
			s++
		} else {
			copy(dst, denseOut[d*cols:(d+1)*cols])
			d++
		}
	}
}
