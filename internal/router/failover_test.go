package router

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/serve"
)

// fakeBackend is a scriptable Backend for routing-policy tests (the
// production backends are covered by the correctness tests; these pin
// the control plane deterministically).
type fakeBackend struct {
	meta      Meta
	metaErr   atomic.Pointer[error]
	predictFn func(b *Batch, out []int) error
	calls     atomic.Int64
}

func newFakeBackend(classes, features int) *fakeBackend {
	return &fakeBackend{meta: Meta{
		Classes: classes, Features: features, Version: 1,
		ShardHigh: classes - 1, TotalClasses: classes,
	}}
}

func (f *fakeBackend) Meta() (Meta, error) {
	if ep := f.metaErr.Load(); ep != nil {
		return Meta{}, *ep
	}
	return f.meta, nil
}

func (f *fakeBackend) Predict(b *Batch, out []int) error {
	f.calls.Add(1)
	if f.predictFn != nil {
		return f.predictFn(b, out)
	}
	return nil
}

func (f *fakeBackend) Proba(b *Batch, out []float64) error { return nil }
func (f *fakeBackend) PartialScores(b *Batch, cols int, out []float64) (int64, error) {
	return f.meta.Version, nil
}
func (f *fakeBackend) Reload() (int64, error) { return f.meta.Version, nil }
func (f *fakeBackend) Close()                 {}

func oneRowBatch(features int) *Batch {
	var b Batch
	b.AddDense(make([]float64, features))
	return &b
}

// TestFailoverOnQueueFull checks 429-aware failover: a replica whose
// queue is full is skipped and its rejection counted, and the request
// completes on another replica. When every replica is saturated the
// caller sees serve.ErrQueueFull (HTTP 429), not a silent drop.
func TestFailoverOnQueueFull(t *testing.T) {
	full := newFakeBackend(4, 8)
	full.predictFn = func(*Batch, []int) error { return serve.ErrQueueFull }
	ok := newFakeBackend(4, 8)
	rt, err := New([]Backend{full, ok}, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	out := make([]int, 1)
	for trial := 0; trial < 16; trial++ {
		if err := rt.Predict(oneRowBatch(8), out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if ok.calls.Load() != 16 {
		t.Fatalf("healthy replica served %d of 16", ok.calls.Load())
	}
	st := rt.Stats()
	if st.Replicas[0].Rejected == 0 {
		t.Fatal("no rejections recorded on the saturated replica")
	}
	// The saturated replica must not be marked down: backpressure is a
	// load signal, not a failure signal.
	if got := rt.Pool().Replicas()[0].State(); got != StateHealthy {
		t.Fatalf("saturated replica state %v, want healthy", got)
	}

	ok.predictFn = func(*Batch, []int) error { return serve.ErrQueueFull }
	if err := rt.Predict(oneRowBatch(8), out); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("all-saturated fleet returned %v, want ErrQueueFull", err)
	}
}

// TestTransportErrorsMarkReplicaDown checks FailAfter consecutive
// transport-level data-plane errors evict a replica, traffic fails
// over, and a healthy probe restores it.
func TestTransportErrorsMarkReplicaDown(t *testing.T) {
	bad := newFakeBackend(4, 8)
	bad.predictFn = func(*Batch, []int) error {
		return fmt.Errorf("%w 127.0.0.1:9: connection refused", ErrReplicaUnreachable)
	}
	ok := newFakeBackend(4, 8)
	rt, err := New([]Backend{bad, ok}, Options{Mode: ModeReplica, HealthEvery: -1, FailAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	out := make([]int, 1)
	for trial := 0; trial < 32; trial++ {
		if err := rt.Predict(oneRowBatch(8), out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if got := rt.Pool().Replicas()[0].State(); got != StateDown {
		t.Fatalf("failing replica state %v after %d errors, want down", got, rt.Stats().Replicas[0].Errors)
	}
	// Once down it receives no traffic.
	before := bad.calls.Load()
	for trial := 0; trial < 8; trial++ {
		if err := rt.Predict(oneRowBatch(8), out); err != nil {
			t.Fatal(err)
		}
	}
	if bad.calls.Load() != before {
		t.Fatal("down replica still receiving traffic")
	}
}

// TestClientErrorsDoNotEvictReplica checks the health-signal policy:
// request-shaped failures (a malformed row, a wire 400) count as errors
// but never mark a replica down, and a served request resets the
// transport-failure streak.
func TestClientErrorsDoNotEvictReplica(t *testing.T) {
	flaky := newFakeBackend(4, 8)
	clientErr := true
	flaky.predictFn = func(*Batch, []int) error {
		if clientErr {
			return fmt.Errorf("row 0 has 3 features, model expects 8")
		}
		return nil
	}
	rt, err := New([]Backend{flaky}, Options{Mode: ModeReplica, HealthEvery: -1, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	out := make([]int, 1)
	for trial := 0; trial < 10; trial++ {
		if err := rt.Predict(oneRowBatch(8), out); err == nil {
			t.Fatal("expected the client error to propagate")
		}
	}
	if got := rt.Pool().Replicas()[0].State(); got != StateHealthy {
		t.Fatalf("replica state %v after client errors, want healthy", got)
	}
	// One transport failure, then a success, then another transport
	// failure: the streak reset by the success keeps the replica up
	// with FailAfter=2.
	unreachable := fmt.Errorf("%w x: dial", ErrReplicaUnreachable)
	clientErr = false
	flaky.predictFn = func(*Batch, []int) error { return unreachable }
	rt.Predict(oneRowBatch(8), out)
	flaky.predictFn = nil
	if err := rt.Predict(oneRowBatch(8), out); err != nil {
		t.Fatal(err)
	}
	flaky.predictFn = func(*Batch, []int) error { return unreachable }
	rt.Predict(oneRowBatch(8), out)
	if got := rt.Pool().Replicas()[0].State(); got != StateHealthy {
		t.Fatalf("replica state %v after non-consecutive transport errors, want healthy", got)
	}
}

// TestHealthMonitorRecovers checks the probe loop: a replica whose Meta
// fails goes down after FailAfter probes and comes back when probes
// succeed again.
func TestHealthMonitorRecovers(t *testing.T) {
	fb := newFakeBackend(4, 8)
	rt, err := New([]Backend{fb, newFakeBackend(4, 8)}, Options{
		Mode: ModeReplica, HealthEvery: 2 * time.Millisecond, FailAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	probeErr := errors.New("probe timeout")
	fb.metaErr.Store(&probeErr)
	waitState(t, rt.Pool().Replicas()[0], StateDown)
	fb.metaErr.Store(nil)
	waitState(t, rt.Pool().Replicas()[0], StateHealthy)
}

func waitState(t *testing.T, r *Replica, want State) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for r.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("replica %d stuck in %v, want %v", r.ID, r.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainUnderLoad is the failover satellite: a replica drained
// mid-run stops receiving new traffic without dropping any accepted
// request, while the rest of the fleet keeps serving; undrain restores
// it. Run with -race in CI.
func TestDrainUnderLoad(t *testing.T) {
	const classes, features = 4, 10
	rng := rand.New(rand.NewSource(95))
	w := randWeights(rng, classes, features)
	backends := []Backend{
		localReplica(t, w, classes, features, 0, 0),
		localReplica(t, w, classes, features, 0, 0),
		localReplica(t, w, classes, features, 0, 0),
	}
	rt, err := New(backends, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var stop atomic.Bool
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			row := make([]float64, features)
			out := make([]int, 1)
			for !stop.Load() {
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				var b Batch
				b.AddDense(row)
				if err := rt.Predict(&b, out); err != nil {
					failed.Add(1)
				} else {
					served.Add(1)
				}
			}
		}(int64(100 + g))
	}

	time.Sleep(20 * time.Millisecond)
	if err := rt.Pool().Drain(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	drained := rt.Pool().Replicas()[1]
	if drained.State() != StateDraining || drained.InFlight() != 0 {
		t.Fatalf("after drain: state %v, inflight %d", drained.State(), drained.InFlight())
	}
	servedAtDrain := drained.Stats().Done
	time.Sleep(20 * time.Millisecond)
	if got := drained.Stats().Done; got != servedAtDrain {
		t.Fatalf("draining replica served %d new requests", got-servedAtDrain)
	}
	if err := rt.Pool().Undrain(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d requests failed during drain/undrain (%d served)", failed.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served")
	}
	if got := drained.Stats().Done; got == servedAtDrain {
		t.Fatal("undrained replica never served again")
	}
}

// TestHotSwapReplicaUnderLoad is the second half of the failover
// satellite: hot-swapping one replica's checkpoint while the others
// serve keeps every request succeeding — requests in flight on the old
// snapshot drain on it, new ones score on whichever snapshot their
// replica holds. Run with -race in CI.
func TestHotSwapReplicaUnderLoad(t *testing.T) {
	const classes, features = 4, 10
	rng := rand.New(rand.NewSource(96))
	w := randWeights(rng, classes, features)
	lb0 := localReplica(t, w, classes, features, 0, 0)
	lb1 := localReplica(t, w, classes, features, 0, 0)
	rt, err := New([]Backend{lb0, lb1}, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var stop atomic.Bool
	var failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			row := make([]float64, features)
			out := make([]int, 1)
			for !stop.Load() {
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				var b Batch
				b.AddDense(row)
				if err := rt.Predict(&b, out); err != nil {
					failed.Add(1)
				}
			}
		}(int64(200 + g))
	}

	// Ten swaps of replica 0 under fire, alternating two weight sets.
	w2 := randWeights(rng, classes, features)
	for swap := 0; swap < 10; swap++ {
		weights := w
		if swap%2 == 0 {
			weights = w2
		}
		p, err := serve.NewPredictor(weights, classes, features, 1)
		if err != nil {
			t.Fatal(err)
		}
		lb0.Registry().Swap(p, serve.ModelMeta{})
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d requests failed across hot swaps", failed.Load())
	}
	if v, _ := lb0.Registry().Meta(); v.Version != 11 {
		t.Fatalf("replica 0 at version %d after 10 swaps, want 11", v.Version)
	}
}

// TestAllReplicasDown checks the no-replica path returns ErrNoReplicas.
func TestAllReplicasDown(t *testing.T) {
	fb := newFakeBackend(4, 8)
	rt, err := New([]Backend{fb}, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Pool().Drain(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := rt.Predict(oneRowBatch(8), make([]int, 1)); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("got %v, want ErrNoReplicas", err)
	}
}

// TestClassModeDrainMakesShardUnavailable documents single-copy shard
// semantics: draining a shard replica takes the tier down (503), not a
// silent partial answer.
func TestClassModeDrainMakesShardUnavailable(t *testing.T) {
	const classes, features = 5, 8
	rng := rand.New(rand.NewSource(97))
	w := randWeights(rng, classes, features)
	rt := newClassRouter(t, w, classes, features, 2)
	defer rt.Close()
	if err := rt.Pool().Drain(0, time.Second); err != nil {
		t.Fatal(err)
	}
	err := rt.Predict(oneRowBatch(features), make([]int, 1))
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("got %v, want ErrShardUnavailable", err)
	}
}
