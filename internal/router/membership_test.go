package router

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/serve"
)

// newReplicaFleet builds a replica-mode router over n identical local
// replicas and returns it with the weight vector for growing the fleet
// later.
func newReplicaFleet(t testing.TB, classes, features, n int, seed int64) (*Router, []float64, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := randWeights(rng, classes, features)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		backends[i] = localReplica(t, w, classes, features, 0, 0)
	}
	rt, err := New(backends, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return rt, w, rng
}

// TestMembershipUnderLoad churns the fleet — AddBackend / RemoveBackend
// in a loop — while scatter traffic runs full tilt. Every predict must
// either succeed with the right answer shape or fail with a routing
// error; no panics, no races, and the fleet ends at its starting size.
func TestMembershipUnderLoad(t *testing.T) {
	const classes, features = 4, 12
	rt, w, rng := newReplicaFleet(t, classes, features, 2, 101)
	defer rt.Close()
	b, _ := randBatch(rng, 5, features, 0.7)

	stop := make(chan struct{})
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, 5)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := rt.Predict(b, out); err != nil {
					failed.Add(1)
					continue
				}
				served.Add(1)
			}
		}()
	}

	// Membership churn: grow to 4, shrink back to 2, repeatedly. The
	// drain timeout is generous — in-process replicas finish batches in
	// microseconds.
	for cycle := 0; cycle < 5; cycle++ {
		var added []int
		for i := 0; i < 2; i++ {
			id, err := rt.AddBackend(localReplica(t, w, classes, features, 0, 0))
			if err != nil {
				t.Fatalf("cycle %d AddBackend: %v", cycle, err)
			}
			added = append(added, id)
		}
		time.Sleep(2 * time.Millisecond)
		for _, id := range added {
			if err := rt.RemoveBackend(id, 5*time.Second); err != nil {
				t.Fatalf("cycle %d RemoveBackend(%d): %v", cycle, id, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if n := len(rt.Pool().Replicas()); n != 2 {
		t.Fatalf("fleet ended with %d replicas, want the starting 2", n)
	}
	if served.Load() == 0 {
		t.Fatal("no predict succeeded during membership churn")
	}
	if failed.Load() != 0 {
		// Replica mode with >= 1 available member must never fail a
		// scatter: drains wait out in-flight work and the coverage
		// guard keeps a member available throughout.
		t.Fatalf("%d predicts failed during churn (served %d)", failed.Load(), served.Load())
	}
}

// TestRemoveBackendCoverageGuard: the last available member of the
// (single, in replica mode) group can never be removed — CanDrain
// refuses before any drain starts, and the replica keeps serving.
func TestRemoveBackendCoverageGuard(t *testing.T) {
	const classes, features = 4, 12
	rt, _, rng := newReplicaFleet(t, classes, features, 1, 102)
	defer rt.Close()

	snap := rt.Pool().Replicas()
	if len(snap) != 1 {
		t.Fatalf("fleet size = %d, want 1", len(snap))
	}
	if err := rt.RemoveBackend(snap[0].ID, time.Second); err == nil {
		t.Fatal("RemoveBackend removed the group's last available member")
	}
	// Still serving after the refused removal.
	b, _ := randBatch(rng, 3, features, 0.7)
	out := make([]int, 3)
	if err := rt.Predict(b, out); err != nil {
		t.Fatalf("predict after refused removal: %v", err)
	}
}

// TestAddBackendValidation: class mode refuses membership changes, and
// replica mode refuses shards and shape mismatches.
func TestAddBackendValidation(t *testing.T) {
	const classes, features = 6, 9
	rng := rand.New(rand.NewSource(103))
	w := randWeights(rng, classes, features)

	classRt := newClassRouter(t, w, classes, features, 2)
	defer classRt.Close()
	if _, err := classRt.AddBackend(localReplica(t, w, classes, features, 0, 0)); err == nil {
		t.Fatal("AddBackend accepted a member in class-sharded mode")
	}

	rt, _, _ := newReplicaFleet(t, classes, features, 1, 104)
	defer rt.Close()
	// A class shard is not a full model.
	if _, err := rt.AddBackend(localReplica(t, w, classes, features, 0, 2)); err == nil {
		t.Fatal("AddBackend accepted a class shard into a replica fleet")
	}
	// Wrong shape.
	w2 := randWeights(rng, classes, features+1)
	if _, err := rt.AddBackend(localReplica(t, w2, classes, features+1, 0, 0)); err == nil {
		t.Fatal("AddBackend accepted a replica with a different feature count")
	}
	if n := len(rt.Pool().Replicas()); n != 1 {
		t.Fatalf("rejected joins changed the fleet: %d replicas", n)
	}
}

// reloadableReplica is localReplica with a working reload hook (a
// no-op rollout that re-reports the live version) so Reload can sweep
// it.
func reloadableReplica(t testing.TB, w []float64, classes, features int) *LocalBackend {
	t.Helper()
	base := localReplica(t, w, classes, features, 0, 0)
	reg := base.Registry()
	return NewLocalBackend(reg, base.Batcher(), func() (int64, error) {
		mm, ok := reg.Meta()
		if !ok {
			return 0, serve.ErrNoModel
		}
		return mm.Version, nil
	})
}

// TestRemoveBackendRacesReload: retiring replicas while Reload sweeps
// the fleet — the swap lock serializes membership changes against the
// fleet-wide re-probe, so Reload must never observe (or re-probe) a
// closed backend. Race-detector pin for the scale-down/Reload seam.
func TestRemoveBackendRacesReload(t *testing.T) {
	const classes, features = 4, 12
	rng := rand.New(rand.NewSource(105))
	w := randWeights(rng, classes, features)
	backends := []Backend{
		reloadableReplica(t, w, classes, features),
		reloadableReplica(t, w, classes, features),
	}
	rt, err := New(backends, Options{Mode: ModeReplica, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rt.Reload(); err != nil {
				t.Errorf("Reload during membership churn: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 20; i++ {
		id, err := rt.AddBackend(reloadableReplica(t, w, classes, features))
		if err != nil {
			t.Fatalf("AddBackend %d: %v", i, err)
		}
		if err := rt.RemoveBackend(id, 5*time.Second); err != nil {
			t.Fatalf("RemoveBackend %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
