package router

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/serve"
	"newtonadmm/internal/wire"
)

// TCPBackend drives a replica over the binary frame data plane
// (internal/wire; DESIGN.md "Binary data plane" is the spec): a small
// pool of persistent TCP connections to the replica's frame listener,
// each multiplexing pipelined requests matched to responses by
// correlation ID. Float64 payloads cross the wire as raw IEEE-754
// bits, so partial scores merged from remote shards remain bitwise
// identical to single-node scoring — the same guarantee as the JSON
// plane, at a fraction of the encode/decode cost.
//
// Error semantics mirror HTTPBackend's: backpressure surfaces as
// serve.ErrQueueFull (failover without eviction), shape changes as
// serve.ErrModelShapeChanged, missing models as serve.ErrNoModel, and
// every transport-level failure — dial, write, read, timeout, or a
// connection dying mid-stream — as ErrReplicaUnreachable, the only
// class that feeds the health signal. A dead connection fails its
// in-flight requests immediately and is replaced on the next call, so
// a replica crash never wedges the pool.
type TCPBackend struct {
	Addr string // frame listener address, e.g. "127.0.0.1:9081"
	// Conns is the persistent connection pool size; <= 0 selects 2.
	// Requests are striped round-robin and pipelined, so a small pool
	// sustains many concurrent scatters.
	Conns int
	// Timeout bounds each blocking step of a call separately — the
	// dial, the frame write (a write deadline on the socket, so a
	// stalled replica whose receive window fills cannot wedge the
	// connection), and the response wait — so a worst-case call takes
	// up to 3x Timeout. <= 0 selects 30s. On expiry the call fails
	// with ErrReplicaUnreachable; a response-wait expiry abandons only
	// the correlation ID (the connection stays pooled — the reader
	// drops the late response by its unknown ID), while a write expiry
	// retires the connection.
	Timeout time.Duration
	// RedialBase is the initial backoff after a failed dial: it doubles
	// per consecutive failure up to RedialMax, carries ±25% jitter so a
	// fleet of routers does not redial a recovering replica in lockstep,
	// and resets on the first successful dial. While the backoff window
	// is open, calls fail fast with ErrReplicaUnreachable instead of
	// dialing — a flapping replica must not be hammered with immediate
	// reconnect attempts from every pooled connection. <= 0 selects 50ms.
	RedialBase time.Duration
	// RedialMax caps the redial backoff; <= 0 selects 5s.
	RedialMax time.Duration
	// Now is the clock the redial backoff window is measured on; nil
	// selects time.Now. Injectable so a synthetic clock (the fleet
	// simulator, tests) can open and step past backoff windows in
	// virtual time instead of sleeping real wall time.
	Now func() time.Time
	// Jitter draws the backoff jitter in [0, n]; nil selects the global
	// math/rand source (±25% around 7/8 of the nominal backoff).
	// Injectable so a seeded source makes the backoff schedule
	// replayable bit-for-bit.
	Jitter func(n int64) int64

	mu        sync.Mutex
	pool      []*wireConn
	rr        int
	closed    bool
	dialFails int       // consecutive failed dials
	nextDial  time.Time // earliest next dial attempt

	corr      atomic.Uint64
	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64

	encoders sync.Pool // *wire.Encoder
}

// BytesOnWire reports the cumulative request bytes written and response
// bytes read across all pooled connections (the bench's bytes-per-
// request column divides these by the request count).
func (t *TCPBackend) BytesOnWire() (sent, recv uint64) {
	return t.bytesSent.Load(), t.bytesRecv.Load()
}

func (t *TCPBackend) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 30 * time.Second
}

func (t *TCPBackend) redialBase() time.Duration {
	if t.RedialBase > 0 {
		return t.RedialBase
	}
	return 50 * time.Millisecond
}

func (t *TCPBackend) redialMax() time.Duration {
	if t.RedialMax > 0 {
		return t.RedialMax
	}
	return 5 * time.Second
}

func (t *TCPBackend) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

func (t *TCPBackend) jitter(n int64) int64 {
	if t.Jitter != nil {
		return t.Jitter(n)
	}
	return rand.Int63n(n)
}

// noteDialFailed opens (or widens) the backoff window after a failed
// dial: exponential in the consecutive-failure count, capped at
// RedialMax, jittered ±25%. Caller must not hold t.mu.
func (t *TCPBackend) noteDialFailed() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dialFails++
	d := t.redialBase()
	for i := 1; i < t.dialFails && d < t.redialMax(); i++ {
		d *= 2
	}
	if d > t.redialMax() {
		d = t.redialMax()
	}
	d = d*3/4 + time.Duration(t.jitter(int64(d)/2+1)) // ±25% jitter
	t.nextDial = t.now().Add(d)
}

// noteDialOK closes the backoff window. Caller must not hold t.mu.
func (t *TCPBackend) noteDialOK() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dialFails = 0
	t.nextDial = time.Time{}
}

// wireConn is one pooled connection: a write-serialized socket plus a
// reader goroutine that demultiplexes response frames to the waiting
// calls by correlation ID.
type wireConn struct {
	owner *TCPBackend
	c     net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan wireResp
	dead    bool
	deadErr error
}

// wireResp hands one response frame from the reader goroutine to its
// waiting call. The payload buffer is pooled; the call must release it.
type wireResp struct {
	op      wire.Op
	payload []byte
	err     error
}

var respBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// get returns a live pooled connection, dialing replacements as
// needed. The dial happens outside t.mu: a blackholed replica must not
// let one caller's 30s connect stall every other request (and the
// health monitor's fast probes) behind the pool lock.
func (t *TCPBackend) get() (*wireConn, error) {
	n := t.Conns
	if n <= 0 {
		n = 2
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w %s: backend closed", ErrReplicaUnreachable, t.Addr)
	}
	if t.pool == nil {
		t.pool = make([]*wireConn, n)
	}
	// Round-robin over the slots; reuse the slot's connection when it is
	// still alive, otherwise dial a fresh one into the slot.
	slot := t.rr % n
	t.rr++
	wc := t.pool[slot]
	wait := t.nextDial.Sub(t.now())
	t.mu.Unlock()
	if wc != nil && !wc.isDead() {
		return wc, nil
	}
	if wait > 0 {
		// Inside the redial backoff window: fail fast rather than hammer
		// a flapping replica with another connect attempt.
		return nil, fmt.Errorf("%w %s: redial backed off for another %v", ErrReplicaUnreachable, t.Addr, wait.Round(time.Millisecond))
	}
	c, err := net.DialTimeout("tcp", t.Addr, t.timeout())
	if err != nil {
		t.noteDialFailed()
		return nil, fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, t.Addr, err)
	}
	t.noteDialOK()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // frames are requests; don't batch them in the kernel
	}
	nc := &wireConn{owner: t, c: c, pending: make(map[uint64]chan wireResp)}
	t.mu.Lock()
	if t.closed {
		// Closed while we dialed.
		t.mu.Unlock()
		nc.fail(fmt.Errorf("%w %s: backend closed", ErrReplicaUnreachable, t.Addr))
		return nil, fmt.Errorf("%w %s: backend closed", ErrReplicaUnreachable, t.Addr)
	}
	if cur := t.pool[slot]; cur != nil && !cur.isDead() {
		// A concurrent caller repaired the slot first; use its
		// connection and drop the redundant dial.
		t.mu.Unlock()
		nc.fail(fmt.Errorf("%w %s: redundant dial", ErrReplicaUnreachable, t.Addr))
		return cur, nil
	}
	t.pool[slot] = nc
	t.mu.Unlock()
	go nc.readLoop()
	return nc, nil
}

func (w *wireConn) isDead() bool {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	return w.dead
}

// fail marks the connection dead and fails every pending call; safe to
// call more than once.
func (w *wireConn) fail(err error) {
	w.pmu.Lock()
	if w.dead {
		w.pmu.Unlock()
		return
	}
	w.dead = true
	w.deadErr = err
	pending := w.pending
	w.pending = nil
	w.pmu.Unlock()
	w.c.Close()
	for _, ch := range pending {
		ch <- wireResp{err: err}
	}
}

// readLoop demultiplexes response frames to pending calls until the
// connection dies.
func (w *wireConn) readLoop() {
	fr := wire.NewReader(bufio.NewReaderSize(w.c, 64<<10))
	for {
		h, payload, err := fr.Next()
		if err != nil {
			w.fail(fmt.Errorf("%w %s: mid-stream: %v", ErrReplicaUnreachable, w.owner.Addr, err))
			return
		}
		w.owner.bytesRecv.Add(uint64(wire.HeaderSize + len(payload)))
		w.pmu.Lock()
		ch, ok := w.pending[h.Corr]
		if ok {
			delete(w.pending, h.Corr)
		}
		w.pmu.Unlock()
		if !ok {
			continue // response to a timed-out call; drop it
		}
		bp := respBufPool.Get().(*[]byte)
		*bp = append((*bp)[:0], payload...)
		ch <- wireResp{op: h.Op, payload: *bp}
	}
}

// send registers the correlation ID and writes the frame.
func (w *wireConn) send(corr uint64, frame []byte, ch chan wireResp) error {
	w.pmu.Lock()
	if w.dead {
		err := w.deadErr
		w.pmu.Unlock()
		return err
	}
	w.pending[corr] = ch
	w.pmu.Unlock()

	w.wmu.Lock()
	// A stalled replica (open socket, full receive window) must not
	// wedge this connection — and with it every call striped here plus
	// the health probe — behind an unbounded Write.
	w.c.SetWriteDeadline(time.Now().Add(w.owner.timeout()))
	_, err := w.c.Write(frame)
	w.wmu.Unlock()
	if err != nil {
		w.fail(fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, w.owner.Addr, err))
		// fail() answered ch if it was still pending; the caller reads
		// the error from there or from this return — either is the same
		// ErrReplicaUnreachable class.
		return fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, w.owner.Addr, err)
	}
	w.owner.bytesSent.Add(uint64(len(frame)))
	return nil
}

// forget deregisters a timed-out call. Reports whether the response had
// already been delivered (in which case the caller must drain ch).
func (w *wireConn) forget(corr uint64) bool {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	if w.pending == nil {
		return false // conn died; fail() already answered
	}
	_, pending := w.pending[corr]
	delete(w.pending, corr)
	return !pending
}

// roundTrip sends one request frame and waits for its response. The
// returned release must be called after the payload is decoded (it
// recycles the buffer); it is nil when err != nil.
func (t *TCPBackend) roundTrip(encode func(corr uint64, e *wire.Encoder)) (wire.Op, []byte, func(), error) {
	wc, err := t.get()
	if err != nil {
		return 0, nil, nil, err
	}
	corr := t.corr.Add(1)
	ep, _ := t.encoders.Get().(*wire.Encoder)
	if ep == nil {
		ep = new(wire.Encoder)
	}
	encode(corr, ep)
	ch := make(chan wireResp, 1)
	err = wc.send(corr, ep.Bytes(), ch)
	t.encoders.Put(ep)
	if err != nil {
		return 0, nil, nil, err
	}
	timer := time.NewTimer(t.timeout())
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.err != nil {
			return 0, nil, nil, resp.err
		}
		release := func() {
			p := resp.payload[:0]
			respBufPool.Put(&p)
		}
		return resp.op, resp.payload, release, nil
	case <-timer.C:
		if delivered := wc.forget(corr); delivered {
			resp := <-ch // lost the race: response arrived while timing out
			if resp.err == nil {
				p := resp.payload[:0]
				respBufPool.Put(&p)
			}
		}
		// A response stream with an abandoned correlation ID is still
		// usable (the reader drops unknown IDs), but a replica that
		// blows the deadline is treated as unreachable for this call.
		return 0, nil, nil, fmt.Errorf("%w %s: round trip exceeded %v", ErrReplicaUnreachable, t.Addr, t.timeout())
	}
}

// errorForCode maps an error frame back to the router's taxonomy — the
// inverse of the frame server's wireCodeFor, keeping the binary plane's
// failover semantics identical to the JSON plane's status mapping. A
// queue-full frame carrying the admission detail trailer reconstructs
// the replica's typed rejection (reason + retry-after hint); without
// one it stays the plain sentinel, so legacy replicas fail over
// identically.
func (t *TCPBackend) errorForCode(code wire.ErrCode, msg string, detail wire.ErrDetail, retryAfter time.Duration) error {
	switch code {
	case wire.CodeQueueFull:
		switch detail {
		case wire.DetailRateLimited:
			return &serve.RejectionError{Reason: control.ReasonRateLimited, RetryAfter: retryAfter}
		case wire.DetailCostRejected:
			return &serve.RejectionError{Reason: control.ReasonCostRejected, RetryAfter: retryAfter}
		case wire.DetailQueueFull:
			return &serve.RejectionError{Reason: control.ReasonQueueFull, RetryAfter: retryAfter}
		}
		return serve.ErrQueueFull
	case wire.CodeNoModel:
		return fmt.Errorf("%w (replica: %s)", serve.ErrNoModel, msg)
	case wire.CodeShapeChanged:
		return fmt.Errorf("%w (replica: %s)", serve.ErrModelShapeChanged, msg)
	case wire.CodeClosed:
		return fmt.Errorf("%w (replica: %s)", serve.ErrClosed, msg)
	default:
		return fmt.Errorf("router: replica %s wire error %d: %s", t.Addr, code, msg)
	}
}

// expect accepts a response frame with the wanted opcode; any other
// frame is consumed and mapped to the error it carries.
func (t *TCPBackend) expect(op wire.Op, gotOp wire.Op, payload []byte, release func()) error {
	if gotOp == op {
		return nil
	}
	defer release()
	if gotOp == wire.OpError {
		code, msg, detail, retryAfter, err := wire.DecodeErrorDetail(payload)
		if err != nil {
			return fmt.Errorf("%w %s: undecodable error frame: %v", ErrReplicaUnreachable, t.Addr, err)
		}
		return t.errorForCode(code, msg, detail, retryAfter)
	}
	return fmt.Errorf("%w %s: response opcode %#x, want %#x", ErrReplicaUnreachable, t.Addr, gotOp, op)
}

// validateBatch rejects client-side what the wire cannot frame, as
// deterministic request-shaped (400-class) errors: mixed-width dense
// rows (the dense record length is derived from the header's feature
// count), batches over wire.MaxRows, and batches whose encoded payload
// would exceed wire.MaxPayload. The last two matter for failover: sent
// anyway, the replica would reject them as framing errors and close
// the connection, surfacing a deterministic client mistake as
// ErrReplicaUnreachable — which feeds the health signal and would mark
// healthy replicas down on retry.
func validateBatch(b *Batch) (features int, err error) {
	if b.Rows() > wire.MaxRows {
		return 0, fmt.Errorf("router: batch has %d rows, wire bound is %d", b.Rows(), wire.MaxRows)
	}
	if len(b.dense) > 0 {
		features = len(b.dense[0])
	}
	for i, row := range b.dense {
		if len(row) != features {
			return 0, fmt.Errorf("router: dense row %d has %d features, row 0 has %d", i, len(row), features)
		}
	}
	payload := 12 + len(b.dense)*(1+8*features)
	for _, idx := range b.idx {
		payload += 1 + 4 + 12*len(idx)
	}
	if b.Priority != control.Interactive {
		payload += wire.PriorityTrailerSize
	}
	if b.Trace != nil {
		payload += wire.TraceTrailerSize
	}
	if payload > wire.MaxPayload {
		return 0, fmt.Errorf("router: batch encodes to %d payload bytes, wire bound is %d (split the request)", payload, wire.MaxPayload)
	}
	return features, nil
}

// encodeBatch writes a batch request frame. A non-interactive request
// carries its service class in the priority trailer (appended before
// the trace trailer, per the wire layout); an interactive one omits it,
// keeping the frame byte-identical to pre-priority traffic. A sampled
// request carries its trace ID in the frame's trace trailer (DESIGN.md
// "Observability"), so replica-side spans stitch to the router's trace.
func encodeBatch(e *wire.Encoder, op wire.Op, corr uint64, b *Batch, features, cols int) {
	e.Begin(op, corr)
	e.BatchHeader(b.Rows(), features, cols)
	d, s := 0, 0
	for _, isSparse := range b.sparse {
		if isSparse {
			e.SparseRow(b.idx[s], b.val[s])
			s++
		} else {
			e.DenseRow(b.dense[d])
			d++
		}
	}
	if b.Priority != control.Interactive {
		e.PriorityTrailer(uint8(b.Priority))
	}
	if b.Trace != nil {
		e.TraceTrailer(b.Trace.ID, true)
	}
}

// Meta probes the replica over the wire; it doubles as the health
// check, exactly like HTTPBackend's /healthz probe.
func (t *TCPBackend) Meta() (Meta, error) {
	op, payload, release, err := t.roundTrip(func(corr uint64, e *wire.Encoder) {
		e.Begin(wire.OpMeta, corr)
	})
	if err != nil {
		return Meta{}, err
	}
	if err := t.expect(wire.OpMetaResp, op, payload, release); err != nil {
		return Meta{}, err
	}
	defer release()
	wm, err := wire.DecodeMetaResp(payload)
	if err != nil {
		return Meta{}, fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, t.Addr, err)
	}
	if wm.Classes < 2 || wm.Features <= 0 {
		return Meta{}, fmt.Errorf("router: replica %s reported no model", t.Addr)
	}
	return metaFromModel(serve.ModelMeta{
		Version: wm.Version, Classes: wm.Classes, Features: wm.Features,
		ShardIndex: wm.ShardIndex, ShardCount: wm.ShardCount,
		ShardLow: wm.ShardLow, ShardHigh: wm.ShardHigh, TotalClasses: wm.TotalClasses,
		Zone: wm.Zone,
	}), nil
}

// Predict scores the batch over the wire (replica-balanced data plane).
func (t *TCPBackend) Predict(b *Batch, out []int) error {
	op, payload, release, err := t.batchTrip(wire.OpPredict, b, 0)
	if err != nil {
		return err
	}
	if err := t.expect(wire.OpPredictResp, op, payload, release); err != nil {
		return err
	}
	defer release()
	_, n, err := wire.DecodePredictResp(payload, out)
	if err != nil {
		return fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, t.Addr, err)
	}
	if n != b.Rows() {
		return fmt.Errorf("router: replica returned %d predictions for %d instances", n, b.Rows())
	}
	return nil
}

// Proba scores the batch with probabilities; out is rows x classes.
func (t *TCPBackend) Proba(b *Batch, out []float64) error {
	op, payload, release, err := t.batchTrip(wire.OpProba, b, 0)
	if err != nil {
		return err
	}
	if err := t.expect(wire.OpProbaResp, op, payload, release); err != nil {
		return err
	}
	defer release()
	rows := b.Rows()
	if rows == 0 {
		return nil
	}
	classes := len(out) / rows
	_, nr, nc, err := wire.DecodeFloatsResp(payload, out)
	if err != nil {
		return fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, t.Addr, err)
	}
	if nr != rows || nc != classes {
		return fmt.Errorf("router: replica returned a %dx%d probability tile, want %dx%d", nr, nc, rows, classes)
	}
	return nil
}

// PartialScores fetches the raw partial-logit tile (class-sharded data
// plane). The request carries the planned width, so a replica whose
// shape changed answers CodeShapeChanged without writing a tile.
func (t *TCPBackend) PartialScores(b *Batch, cols int, out []float64) (int64, error) {
	op, payload, release, err := t.batchTrip(wire.OpScores, b, cols)
	if err != nil {
		return 0, err
	}
	if err := t.expect(wire.OpScoresResp, op, payload, release); err != nil {
		return 0, err
	}
	defer release()
	version, nr, nc, err := wire.DecodeFloatsResp(payload, out)
	if err != nil {
		return 0, fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, t.Addr, err)
	}
	if nc != cols {
		return 0, fmt.Errorf("%w (shard now %d explicit classes, router planned %d)", serve.ErrModelShapeChanged, nc, cols)
	}
	if nr != b.Rows() {
		return 0, fmt.Errorf("router: replica returned %d score rows for %d instances", nr, b.Rows())
	}
	return version, nil
}

// batchTrip validates, encodes, and round-trips one batch request.
func (t *TCPBackend) batchTrip(op wire.Op, b *Batch, cols int) (wire.Op, []byte, func(), error) {
	features, err := validateBatch(b)
	if err != nil {
		return 0, nil, nil, err
	}
	return t.roundTrip(func(corr uint64, e *wire.Encoder) {
		encodeBatch(e, op, corr, b, features, cols)
	})
}

// Reload asks the replica to hot-swap its checkpoint.
func (t *TCPBackend) Reload() (int64, error) {
	op, payload, release, err := t.roundTrip(func(corr uint64, e *wire.Encoder) {
		e.Begin(wire.OpReload, corr)
	})
	if err != nil {
		return 0, err
	}
	if err := t.expect(wire.OpReloadResp, op, payload, release); err != nil {
		return 0, err
	}
	defer release()
	v, err := wire.DecodeReloadResp(payload)
	if err != nil {
		return 0, fmt.Errorf("%w %s: %v", ErrReplicaUnreachable, t.Addr, err)
	}
	return v, nil
}

// Close tears down the connection pool; the backend must not be used
// afterwards (late calls fail with ErrReplicaUnreachable rather than
// resurrecting the pool).
func (t *TCPBackend) Close() {
	t.mu.Lock()
	t.closed = true
	pool := t.pool
	t.pool = nil
	t.mu.Unlock()
	for _, wc := range pool {
		if wc != nil {
			wc.fail(fmt.Errorf("%w %s: backend closed", ErrReplicaUnreachable, t.Addr))
		}
	}
}

// BackendForURL builds the backend for one -join address, negotiating
// the data plane by URL scheme: "tcp://host:port" joins the replica's
// binary frame listener, "http://"/"https://" its JSON surface. A
// scheme-less address uses defWire ("binary" selects tcp, "json" or
// "" http; anything else is rejected so a typo'd -wire flag fails
// loudly instead of silently selecting the wrong plane).
func BackendForURL(base, defWire string) (Backend, error) {
	switch defWire {
	case "", "json", "binary":
	default:
		return nil, fmt.Errorf("router: unknown wire plane %q (want json or binary)", defWire)
	}
	switch {
	case strings.HasPrefix(base, "tcp://"):
		return &TCPBackend{Addr: strings.TrimPrefix(base, "tcp://")}, nil
	case strings.HasPrefix(base, "http://"), strings.HasPrefix(base, "https://"):
		return &HTTPBackend{Base: base}, nil
	case strings.Contains(base, "://"):
		return nil, fmt.Errorf("router: unknown join scheme in %q (want tcp://, http://, or https://)", base)
	case defWire == "binary":
		return &TCPBackend{Addr: base}, nil
	default:
		return &HTTPBackend{Base: "http://" + base}, nil
	}
}
