package router

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/serve"
)

// Mode is the placement strategy of the serving tier.
type Mode string

const (
	// ModeReplica is data-parallel: whole-model replicas, one replica
	// per request, least-loaded picking with failover.
	ModeReplica Mode = "replica"
	// ModeClass is model-parallel: class-sharded replicas, every request
	// scattered to all shards and merged from partial logits.
	ModeClass Mode = "class"
)

// Options tunes the router.
type Options struct {
	// Mode selects the placement strategy; "" selects ModeReplica.
	Mode Mode
	// HealthEvery is the health-probe interval; 0 selects 250ms,
	// negative disables the monitor (data-plane errors still mark
	// replicas down).
	HealthEvery time.Duration
	// FailAfter is the consecutive probe/request failures that mark a
	// replica down; <= 0 selects 3.
	FailAfter int
	// SkewRetries bounds how often a class-sharded request is rescored
	// when a mid-rollout hot swap makes shard versions diverge; <= 0
	// selects 2.
	SkewRetries int
	// SiblingRetries bounds how many group siblings a class-sharded
	// scatter leg fails over to when its picked member dies mid-request
	// (transport or availability error); <= 0 selects 2. Request-shaped
	// errors never retry.
	SiblingRetries int
	// SampleEvery is the observability sampling period shared by the
	// latency histograms' request stamps and trace recording: StartTrace
	// returns a live trace for one request in every SampleEvery. 0
	// selects serve.DefaultSampleEvery (8); negative disables sampling.
	SampleEvery int
	// SerialScatter runs class-mode scatter legs sequentially in group
	// order on the caller's goroutine instead of fanning out to the leg
	// workers. The legs then consume the pool's pick RNG in a fixed
	// order, which is what makes a simulated fleet replay byte-identically
	// — concurrent legs draw from the shared RNG in scheduler order.
	// Production keeps this off: serial legs turn scatter latency from
	// max(legs) into sum(legs).
	SerialScatter bool
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = ModeReplica
	}
	if o.HealthEvery == 0 {
		o.HealthEvery = 250 * time.Millisecond
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.SkewRetries <= 0 {
		o.SkewRetries = 2
	}
	if o.SiblingRetries <= 0 {
		o.SiblingRetries = 2
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = serve.DefaultSampleEvery
	}
	if o.SampleEvery < 0 {
		o.SampleEvery = 0 // disabled
	}
	return o
}

// Stats is the router-level counter snapshot.
type Stats struct {
	Mode      Mode
	Requests  int64
	Failovers int64
	SkewRetry int64
	Replicas  []ReplicaStats
}

// Router scatters prediction requests over a replica pool and gathers
// the results. Safe for concurrent use.
type Router struct {
	mode Mode
	opts Options
	pool *Pool

	classes  int // full model class count C
	features int
	plan     []GroupPlan // plan[g] is shard group g's range and membership

	// swapMu orders coordinated hot swaps against in-flight class-mode
	// scatters: Reload holds the write side while the fleet swaps, so a
	// scatter never straddles a multi-replica rollout (version checking
	// on the partials is the belt to this suspender — replicas reached
	// directly over HTTP can still swap out from under the router).
	swapMu sync.RWMutex

	requests  atomic.Int64
	failovers atomic.Int64
	skewRetry atomic.Int64

	// Admission control (DESIGN.md "Control plane"): the policy is
	// evaluated once per client request at scatter time, pricing the
	// whole batch (rows x features) before any replica is touched — the
	// second evaluation point after the replica-side batcher's. Swap is
	// atomic so the policy can change under load.
	admission  atomic.Pointer[policyBox]
	admitStats control.RejectStats

	scratch sync.Pool // *[]float64 merge buffers

	// Observability (DESIGN.md "Observability"): StageScatter observes
	// every scatter-leg round trip (all attempts, all groups),
	// StageMerge the router-side gather+merge of a class-mode request.
	// rec records sampled traces; sampleTick drives StartTrace's 1-in-N
	// admission.
	StageScatter *metrics.Histogram
	StageMerge   *metrics.Histogram
	rec          *obs.Recorder
	sampleTick   atomic.Int64

	// Zero-alloc scatter plumbing: states are pooled per-request fan-out
	// descriptors with grow-only scratch; legs feeds persistent leg
	// workers, grown on demand, so steady-state scatters spawn no
	// goroutines and allocate nothing.
	scatterStates sync.Pool // *scatterState
	orderBufs     sync.Pool // *[]*Replica (replicaCall failover order)
	legs          chan *scatterJob
	legStop       chan struct{}
	closeOnce     sync.Once
}

// New builds a router over the given backends. Every backend must be
// reachable at construction: replica mode requires identically shaped
// full models, class mode requires an R×S grid whose shard groups tile
// the full model's explicit class rows exactly (backends reporting the
// same shard range are siblings of one group; R full-model copies form
// a single S=1 group). In a multi-zone fleet, every multi-member group
// must spread across zones.
func New(backends []Backend, opts Options) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("router: need at least one backend")
	}
	opts = opts.withDefaults()
	metas := make([]Meta, len(backends))
	for i, b := range backends {
		m, err := b.Meta()
		if err != nil {
			return nil, fmt.Errorf("router: probing replica %d: %w", i, err)
		}
		metas[i] = m
	}
	r := &Router{
		mode:         opts.Mode,
		opts:         opts,
		StageScatter: metrics.NewHistogram(),
		StageMerge:   metrics.NewHistogram(),
		rec:          obs.NewRecorder(0),
		legs:         make(chan *scatterJob),
		legStop:      make(chan struct{}),
	}
	switch opts.Mode {
	case ModeReplica:
		for i, m := range metas {
			if m.IsShard() {
				return nil, fmt.Errorf("router: replica %d serves class shard [%d,%d), replica-balanced mode needs full models", i, m.ShardLow, m.ShardHigh)
			}
			if m.Classes != metas[0].Classes || m.Features != metas[0].Features {
				return nil, fmt.Errorf("router: replica %d shape (%d classes, %d features) != replica 0 (%d, %d)",
					i, m.Classes, m.Features, metas[0].Classes, metas[0].Features)
			}
		}
		r.classes, r.features = metas[0].Classes, metas[0].Features
		// One group holding every replica: coverage and drain guards
		// work uniformly across modes.
		all := make([]int, len(backends))
		for i := range all {
			all[i] = i
		}
		r.plan = []GroupPlan{{Range: ShardRange{Low: 0, High: r.classes - 1}, Members: all}}
	case ModeClass:
		plan, err := planGroupsFromMetas(metas)
		if err != nil {
			return nil, err
		}
		r.plan = plan
		r.classes, r.features = metas[0].TotalClasses, metas[0].Features
	default:
		return nil, fmt.Errorf("router: unknown mode %q (want %q or %q)", opts.Mode, ModeReplica, ModeClass)
	}
	r.pool = newPool(backends, metas)
	r.pool.setGroups(r.plan)
	if opts.HealthEvery > 0 {
		r.pool.startHealth(opts.HealthEvery, opts.FailAfter)
	}
	return r, nil
}

// policyBox wraps an AdmissionPolicy for atomic.Pointer storage (the
// interface value itself is two words and cannot be swapped atomically).
type policyBox struct{ p control.AdmissionPolicy }

// SetAdmission installs (or, with nil, removes) the router-side
// admission policy. Safe under load: in-flight requests finish against
// the policy they were admitted by.
func (r *Router) SetAdmission(p control.AdmissionPolicy) {
	if p == nil {
		r.admission.Store(nil)
		return
	}
	r.admission.Store(&policyBox{p: p})
}

// Admission returns the installed policy, or nil.
func (r *Router) Admission() control.AdmissionPolicy {
	if box := r.admission.Load(); box != nil {
		return box.p
	}
	return nil
}

// AdmissionStats exposes the router's per-reason rejection counters.
func (r *Router) AdmissionStats() *control.RejectStats { return &r.admitStats }

// admit evaluates the installed policy against the batch, pricing it at
// rows x features. A rejection is returned as a typed RejectionError
// (429 with reason + retry-after on both serving planes).
func (r *Router) admit(b *Batch) error {
	box := r.admission.Load()
	if box == nil || box.p == nil {
		return nil
	}
	cost := int64(b.Rows()) * int64(r.features)
	d := box.p.Admit(cost, b.Priority)
	if d.Admit {
		return nil
	}
	r.admitStats.Note(d.Reason)
	return &serve.RejectionError{Reason: d.Reason, RetryAfter: d.RetryAfter}
}

// Mode returns the placement mode.
func (r *Router) Mode() Mode { return r.mode }

// Classes returns the full model's class count.
func (r *Router) Classes() int { return r.classes }

// Features returns the model's feature dimension.
func (r *Router) Features() int { return r.features }

// Pool returns the replica pool (drain/undrain, stats).
func (r *Router) Pool() *Pool { return r.pool }

// Plan returns the shard-group placement: one entry per group, in
// range order. Replica mode has a single group holding every replica.
func (r *Router) Plan() []GroupPlan { return r.plan }

// Version returns the newest model version any replica reports.
func (r *Router) Version() int64 {
	var v int64
	for _, rep := range r.pool.Replicas() {
		if mv := rep.Meta().Version; mv > v {
			v = mv
		}
	}
	return v
}

// Stats snapshots router and per-replica counters.
func (r *Router) Stats() Stats {
	return Stats{
		Mode:      r.mode,
		Requests:  r.requests.Load(),
		Failovers: r.failovers.Load(),
		SkewRetry: r.skewRetry.Load(),
		Replicas:  r.pool.Stats(),
	}
}

// Recorder returns the router's trace recorder (the /debug/tracez
// surface and the bench's slowest-request breakdown read it).
func (r *Router) Recorder() *obs.Recorder { return r.rec }

// StartTrace applies the 1-in-SampleEvery sampling decision and, when
// this request is sampled, starts a trace rooted at the router. The
// caller attaches it to the request's Batch (so scatter legs and the
// merge record spans into it) and must pass it to FinishTrace when the
// request completes. Returns nil — attach and finish nothing — for
// unsampled requests or when sampling is disabled.
func (r *Router) StartTrace(at time.Time) *obs.Trace {
	n := r.opts.SampleEvery
	if n <= 0 || r.sampleTick.Add(1)%int64(n) != 0 {
		return nil
	}
	return r.rec.Start(at)
}

// FinishTrace publishes a trace started by StartTrace to the recorder.
// Nil-safe, so callers can finish unconditionally.
func (r *Router) FinishTrace(t *obs.Trace, end time.Time) {
	if t == nil {
		return
	}
	r.rec.Finish(t, end)
}

// Close stops the health monitor, reaps the leg workers, and closes
// every backend.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.legStop) })
	r.pool.Close()
}

// Predict scores the batch and writes the predicted classes into
// out[:b.Rows()].
func (r *Router) Predict(b *Batch, out []int) error {
	if b.Rows() == 0 {
		return nil
	}
	if len(out) < b.Rows() {
		return fmt.Errorf("router: output buffer has %d slots for %d rows", len(out), b.Rows())
	}
	if err := r.admit(b); err != nil {
		return err
	}
	r.requests.Add(1)
	if r.mode == ModeClass {
		return r.classScore(b, out, nil)
	}
	return r.replicaCall(b, func(rep *Replica) error { return rep.backend.Predict(b, out) })
}

// Proba scores the batch with class probabilities: out is rows x Classes
// row-major (reference class last), and the predicted classes go into
// classOut when non-nil.
func (r *Router) Proba(b *Batch, out []float64, classOut []int) error {
	if b.Rows() == 0 {
		return nil
	}
	if len(out) < b.Rows()*r.classes {
		return fmt.Errorf("router: proba buffer has %d entries for %d rows x %d classes", len(out), b.Rows(), r.classes)
	}
	if err := r.admit(b); err != nil {
		return err
	}
	r.requests.Add(1)
	if r.mode == ModeClass {
		return r.classScore(b, classOut, out)
	}
	// Pass an exact-size view: backends derive the class stride from the
	// buffer, and an oversized caller buffer must not skew it.
	probaView := out[:b.Rows()*r.classes]
	err := r.replicaCall(b, func(rep *Replica) error { return rep.backend.Proba(b, probaView) })
	if err != nil {
		return err
	}
	if classOut != nil {
		for i := 0; i < b.Rows(); i++ {
			classOut[i] = serve.ArgmaxProba(out[i*r.classes : (i+1)*r.classes])
		}
	}
	return nil
}

// replicaCall runs fn against one replica, failing over through the
// remaining available replicas on backpressure (serve.ErrQueueFull) or
// backend errors. Each replica is tried at most once; the last error is
// returned when all fail. The batch rides along only for its trace:
// each attempt records a scatter-leg span (Leg = replica ID, Try =
// attempt) when the request is sampled.
func (r *Router) replicaCall(b *Batch, fn func(*Replica) error) error {
	bufp, _ := r.orderBufs.Get().(*[]*Replica)
	if bufp == nil {
		bufp = new([]*Replica)
	}
	order := r.pool.failoverOrderInto(r.pool.Replicas(), *bufp)
	*bufp = order[:0]
	defer r.orderBufs.Put(bufp)
	if len(order) == 0 {
		return ErrNoReplicas
	}
	var lastErr error
	for k, rep := range order {
		rep.inflight.Add(1)
		if !rep.available() {
			// Lost a race with Drain: it saw our increment or we see its
			// state change — either way the replica takes no new work.
			rep.inflight.Add(-1)
			lastErr = ErrNoReplicas
			continue
		}
		if k > 0 {
			r.failovers.Add(1)
		}
		t0 := time.Now()
		err := fn(rep)
		d := time.Since(t0)
		rep.Latency.Observe(d)
		r.StageScatter.Observe(d)
		b.Trace.AddSpan(obs.StageScatter, rep.ID, k, t0, d)
		rep.inflight.Add(-1)
		if err == nil {
			rep.done.Add(1)
			rep.fails.Store(0) // a served request is proof of life
			return nil
		}
		switch {
		case errors.Is(err, serve.ErrQueueFull):
			// Backpressure is a load signal, not a failure signal.
			rep.rejected.Add(1)
		case errors.Is(err, ErrReplicaUnreachable):
			// Only transport-level failures feed the health signal: a
			// client's malformed row must never evict a replica.
			rep.errs.Add(1)
			r.pool.noteRequestError(rep, r.opts.FailAfter)
		case errors.Is(err, serve.ErrNoModel), errors.Is(err, serve.ErrClosed),
			errors.Is(err, serve.ErrModelShapeChanged):
			// Replica-availability problems: another replica may hold a
			// usable snapshot, so keep failing over.
			rep.errs.Add(1)
		default:
			// Request-shaped (400-class) errors are deterministic:
			// every replica would reject the same batch, so re-scoring
			// it around the fleet only multiplies the cost of a bad
			// request.
			rep.errs.Add(1)
			return err
		}
		lastErr = err
	}
	return lastErr
}

// classScore is the class-sharded data plane: scatter the batch to every
// shard, gather partial logits into the full score matrix, apply the
// single-node merge kernels. Version skew from a concurrent hot swap
// triggers a bounded rescore.
func (r *Router) classScore(b *Batch, classOut []int, probaOut []float64) error {
	rows := b.Rows()
	m := r.classes - 1
	buf := r.getScratch(rows * m)
	defer r.putScratch(buf)
	scores := (*buf)[:rows*m]

	var err error
	for attempt := 0; ; attempt++ {
		err = r.scatterOnce(b, scores)
		if err == nil || !errors.Is(err, ErrVersionSkew) || attempt >= r.opts.SkewRetries {
			break
		}
		r.skewRetry.Add(1)
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		return err
	}
	mergeStart := time.Now()
	if probaOut != nil {
		loss.ProbaFromScores(scores, rows, r.classes, probaOut[:rows*r.classes])
		if classOut != nil {
			loss.PredictFromScores(scores, rows, r.classes, classOut[:rows])
		}
	} else {
		loss.PredictFromScores(scores, rows, r.classes, classOut[:rows])
	}
	d := time.Since(mergeStart)
	r.StageMerge.Observe(d)
	b.Trace.AddSpan(obs.StageMerge, -1, 0, mergeStart, d)
	return nil
}

// scatterJob is one shard group's leg of a fan-out: the request inputs,
// the leg's grow-only scratch (failover order, partial tile), and its
// outputs. Jobs live inside a pooled scatterState and are reused, so a
// steady-state scatter allocates nothing.
type scatterJob struct {
	r      *Router
	g      *Group
	b      *Batch
	scores []float64
	wg     *sync.WaitGroup

	order []*Replica // failover-order scratch
	part  []float64  // partial-tile scratch

	version int64
	err     error
}

func (j *scatterJob) run() {
	j.version, j.err = j.r.scatterGroup(j)
	j.wg.Done()
}

// scatterState is a pooled per-request fan-out descriptor: one job per
// shard group plus the barrier that gathers them.
type scatterState struct {
	wg   sync.WaitGroup
	jobs []*scatterJob // grow-only; the jobs themselves are reused
}

func (r *Router) getScatterState(n int) *scatterState {
	st, ok := r.scatterStates.Get().(*scatterState)
	if !ok {
		st = new(scatterState)
	}
	for len(st.jobs) < n {
		st.jobs = append(st.jobs, new(scatterJob))
	}
	return st
}

// dispatch hands the job to an idle persistent leg worker, growing the
// worker set when none is free — the only goroutine spawn on the
// scatter path, and only while the worker fleet is still warming up.
func (r *Router) dispatch(j *scatterJob) {
	select {
	case r.legs <- j:
	default:
		go r.legWorker(j)
	}
}

// legWorker runs its seed job, then serves further legs until the
// router closes.
func (r *Router) legWorker(seed *scatterJob) {
	seed.run()
	for {
		select {
		case <-r.legStop:
			return
		case j := <-r.legs:
			j.run()
		}
	}
}

// scatterOnce fans the batch out to all shard groups once and merges
// the partial columns into scores (rows x classes-1). Each group leg
// picks a member and retries transport failures on siblings; a leg
// fails only when its group exhausts the retry budget or has no
// available member. All groups must answer with the same model version.
func (r *Router) scatterOnce(b *Batch, scores []float64) error {
	r.swapMu.RLock()
	defer r.swapMu.RUnlock()
	groups := r.pool.Groups()
	st := r.getScatterState(len(groups))
	st.wg.Add(len(groups))
	for gi, g := range groups {
		j := st.jobs[gi]
		j.r, j.g, j.b, j.scores, j.wg = r, g, b, scores, &st.wg
		if r.opts.SerialScatter {
			j.run()
		} else {
			r.dispatch(j)
		}
	}
	st.wg.Wait()
	var err error
	for gi := range groups {
		if e := st.jobs[gi].err; e != nil {
			err = fmt.Errorf("router: shard group %d: %w", gi, e)
			break
		}
	}
	if err == nil {
		v0 := st.jobs[0].version
		for gi := 1; gi < len(groups); gi++ {
			if v := st.jobs[gi].version; v != v0 {
				err = fmt.Errorf("%w (group 0 at v%d, group %d at v%d)", ErrVersionSkew, v0, gi, v)
				break
			}
		}
	}
	// Drop request references before pooling so an idle state pins no
	// batch or score buffer (the grow-only scratch stays).
	for gi := range groups {
		j := st.jobs[gi]
		j.g, j.b, j.scores, j.wg, j.err = nil, nil, nil, nil, nil
	}
	r.scatterStates.Put(st)
	return err
}

// scatterGroup scores one shard group's partial tile. The member is
// picked by power-of-two-choices least-loaded; transport and
// availability failures retry on group siblings (bounded by
// SiblingRetries), so a mid-scatter member death is absorbed inside the
// group and never surfaces to the client while a sibling lives. The
// successful attempt writes the whole tile, so the buffer is safely
// reused across attempts. Returns the snapshot version the tile was
// scored against. Scratch (failover order, partial tile) lives on the
// pooled job; every attempt records a scatter-leg span (Leg = group ID,
// Try = attempt) when the request is sampled.
func (r *Router) scatterGroup(j *scatterJob) (int64, error) {
	g, b, scores := j.g, j.b, j.scores
	rows := b.Rows()
	m := r.classes - 1
	w := g.Range.Width()
	j.order = r.pool.failoverOrderInto(g.members, j.order)
	order := j.order
	if len(order) == 0 {
		return 0, fmt.Errorf("%w: group [%d,%d) has no available member", ErrShardUnavailable, g.Range.Low, g.Range.High)
	}
	attempts := r.opts.SiblingRetries + 1
	if attempts > len(order) {
		attempts = len(order)
	}
	if cap(j.part) < rows*w {
		j.part = make([]float64, rows*w)
	}
	part := j.part[:rows*w]
	var lastErr error
	for k := 0; k < attempts; k++ {
		rep := order[k]
		rep.inflight.Add(1)
		if !rep.available() {
			// Lost a race with Drain: it saw our increment or we see its
			// state change — either way the member takes no new work.
			rep.inflight.Add(-1)
			lastErr = fmt.Errorf("%w: replica %d is %s", ErrShardUnavailable, rep.ID, rep.State())
			continue
		}
		if k > 0 {
			r.failovers.Add(1)
		}
		t0 := time.Now()
		v, err := rep.backend.PartialScores(b, w, part)
		d := time.Since(t0)
		rep.Latency.Observe(d)
		r.StageScatter.Observe(d)
		b.Trace.AddSpan(obs.StageScatter, g.ID, k, t0, d)
		rep.inflight.Add(-1)
		if err == nil {
			rep.done.Add(1)
			rep.fails.Store(0)
			// Disjoint column ranges per group: concurrent writers never
			// overlap.
			for row := 0; row < rows; row++ {
				copy(scores[row*m+g.Range.Low:row*m+g.Range.High], part[row*w:(row+1)*w])
			}
			return v, nil
		}
		switch {
		case errors.Is(err, serve.ErrQueueFull):
			// Backpressure is a load signal, not a failure signal: a
			// sibling may have headroom.
			rep.rejected.Add(1)
		case errors.Is(err, ErrReplicaUnreachable):
			// Only transport-level failures feed the health signal.
			rep.errs.Add(1)
			r.pool.noteRequestError(rep, r.opts.FailAfter)
		case errors.Is(err, serve.ErrNoModel), errors.Is(err, serve.ErrClosed),
			errors.Is(err, serve.ErrModelShapeChanged):
			// Member-availability problems: a sibling may hold a usable
			// snapshot.
			rep.errs.Add(1)
		default:
			// Request-shaped (400-class) errors are deterministic: every
			// sibling would reject the same batch.
			rep.errs.Add(1)
			return 0, err
		}
		lastErr = err
	}
	return 0, lastErr
}

// Reload hot-swaps every replica's checkpoint, holding the swap lock so
// no class-mode scatter straddles the rollout, then revalidates the
// fleet against the router's construction-time plan: a checkpoint with
// a different shape would leave the plan stale (and, unvalidated, merge
// partials at wrong offsets), so a shape-changing reload is reported as
// an error — the replicas hold the new model, and the router must be
// restarted to serve it. Returns the newest version deployed.
func (r *Router) Reload() (int64, error) {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	var latest int64
	var firstErr error
	for _, rep := range r.pool.Replicas() {
		v, err := rep.backend.Reload()
		if err != nil {
			// Best-effort: keep rolling the rest of the fleet forward so
			// the survivors of a mid-reload replica death converge on one
			// version. Aborting here would strand the fleet half
			// rolled-out and turn every scatter into a version-skew 503
			// until the dead replica came back.
			if firstErr == nil {
				firstErr = fmt.Errorf("router: reloading replica %d: %w", rep.ID, err)
			}
			continue
		}
		if v > latest {
			latest = v
		}
	}
	if err := r.refreshMetasLocked(); err != nil {
		return 0, fmt.Errorf("router: reload deployed an incompatible model — restart the router to serve it: %w", err)
	}
	if firstErr != nil {
		return latest, firstErr
	}
	return latest, nil
}

// Coordinate runs fn while holding the swap lock, so no class-mode
// scatter straddles whatever multi-replica mutation fn performs (the
// public API's fleet-wide Swap uses it), then refreshes and revalidates
// the replica metadata like Reload.
func (r *Router) Coordinate(fn func() error) error {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	if err := fn(); err != nil {
		return err
	}
	return r.refreshMetasLocked()
}

// refreshMetasLocked re-probes every backend and checks the fleet still
// matches the router's plan (same shard tiling and class count in class
// mode, same shape in replica mode). Caller holds swapMu; the metas
// slice is positional over the membership snapshot taken here (replica
// IDs are stable across removals and no longer usable as indices).
func (r *Router) refreshMetasLocked() error {
	reps, groups := r.pool.snapshot()
	metas := make([]Meta, len(reps))
	for i, rep := range reps {
		m, err := rep.backend.Meta()
		if err != nil {
			// Unreachable replicas are the health monitor's problem, not
			// a shape mismatch; keep the last known meta.
			metas[i] = rep.Meta()
			continue
		}
		metas[i] = m
		rep.meta.Store(&m)
	}
	switch r.mode {
	case ModeClass:
		if _, err := planGroupsFromMetas(metas); err != nil {
			return err
		}
		// The grid must be unchanged: every replica still serves exactly
		// the range its group was planned for.
		for i, rep := range reps {
			g := groups[rep.GroupID]
			m := metas[i]
			if (ShardRange{Low: m.ShardLow, High: m.ShardHigh}) != g.Range {
				return fmt.Errorf("router: replica %d now serves shard [%d,%d), planned [%d,%d)",
					rep.ID, m.ShardLow, m.ShardHigh, g.Range.Low, g.Range.High)
			}
		}
		if metas[0].TotalClasses != r.classes {
			return fmt.Errorf("router: model now has %d classes, router planned %d", metas[0].TotalClasses, r.classes)
		}
	case ModeReplica:
		for i, m := range metas {
			if m.Classes != r.classes || m.Features != r.features {
				return fmt.Errorf("router: replica %d now serves (%d classes, %d features), router planned (%d, %d)",
					reps[i].ID, m.Classes, m.Features, r.classes, r.features)
			}
		}
	}
	return nil
}

// AddBackend grows the fleet with a freshly built replica (the
// autoscaler's scale-up actuator). Replica-balanced mode only: class
// mode's shard tiling is planned at construction and adding a member
// would need a placement decision this API does not take. The backend
// is probed and shape-validated before it joins; on success it starts
// receiving traffic immediately. Returns the new replica's stable ID.
func (r *Router) AddBackend(b Backend) (int, error) {
	if r.mode != ModeReplica {
		return 0, fmt.Errorf("router: AddBackend requires %q mode (got %q)", ModeReplica, r.mode)
	}
	m, err := b.Meta()
	if err != nil {
		return 0, fmt.Errorf("router: probing new replica: %w", err)
	}
	if m.IsShard() {
		return 0, fmt.Errorf("router: new replica serves class shard [%d,%d), replica-balanced mode needs full models", m.ShardLow, m.ShardHigh)
	}
	if m.Classes != r.classes || m.Features != r.features {
		return 0, fmt.Errorf("router: new replica shape (%d classes, %d features) != fleet (%d, %d)",
			m.Classes, m.Features, r.classes, r.features)
	}
	// Serialize against Reload/Coordinate so a fleet-wide swap never
	// interleaves with a membership change.
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	rep := r.pool.addReplica(b, m, 0)
	return rep.ID, nil
}

// RemoveBackend retires a replica without dropping accepted work: the
// coverage guard (Pool.CanDrain) refuses to remove a shard group's last
// available member, the drain waits out in-flight requests, and only
// then is the member unlinked and its backend closed — under the swap
// lock, so a concurrent Reload can never touch a closed backend. On a
// drain timeout the replica is undrained and the removal abandoned.
func (r *Router) RemoveBackend(id int, drainTimeout time.Duration) error {
	if err := r.pool.CanDrain(id); err != nil {
		return err
	}
	if err := r.pool.Drain(id, drainTimeout); err != nil {
		r.pool.Undrain(id)
		return err
	}
	r.swapMu.Lock()
	victim := r.pool.removeReplica(id)
	r.swapMu.Unlock()
	if victim == nil {
		return fmt.Errorf("router: no replica %d", id)
	}
	victim.backend.Close()
	return nil
}

func (r *Router) getScratch(n int) *[]float64 {
	if p, ok := r.scratch.Get().(*[]float64); ok && cap(*p) >= n {
		return p
	}
	buf := make([]float64, n)
	return &buf
}

func (r *Router) putScratch(p *[]float64) { r.scratch.Put(p) }
