// Package sparse implements a compressed sparse row (CSR) matrix with the
// device-parallel products needed by the softmax loss. The paper's E18
// dataset has ~280k features where forming dense structures (let alone the
// Hessian) is infeasible; CSR plus Hessian-free products is the code path
// that makes that experiment possible.
package sparse

import (
	"fmt"
	"sort"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
)

// CSR is a compressed sparse row matrix. Row i's nonzeros are
// Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with column
// indices strictly increasing within a row.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int
	Col              []int
	Val              []float64
}

// Coord is a single (row, col, value) entry used to build CSR matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// FromCoords builds a CSR matrix from coordinate triplets. Duplicate
// (row, col) entries are summed; zero results are kept. Entries out of
// range cause an error.
func FromCoords(rows, cols int, entries []Coord) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int, rows+1)}
	for k := 0; k < len(sorted); {
		e := sorted[k]
		v := e.Val
		k++
		for k < len(sorted) && sorted[k].Row == e.Row && sorted[k].Col == e.Col {
			v += sorted[k].Val
			k++
		}
		m.Col = append(m.Col, e.Col)
		m.Val = append(m.Val, v)
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(a *linalg.Matrix) *CSR {
	m := &CSR{NumRows: a.Rows, NumCols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			if v != 0 {
				m.Col = append(m.Col, j)
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns element (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Col[lo:hi], j)
	if k < hi && m.Col[k] == j {
		return m.Val[k]
	}
	return 0
}

// ToDense materializes the matrix densely (for tests and small problems).
func (m *CSR) ToDense() *linalg.Matrix {
	d := linalg.NewMatrix(m.NumRows, m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.Col[k], m.Val[k])
		}
	}
	return d
}

// RowSubset returns a new CSR whose rows are m's rows at idx, in order.
func (m *CSR) RowSubset(idx []int) *CSR {
	s := &CSR{NumRows: len(idx), NumCols: m.NumCols, RowPtr: make([]int, len(idx)+1)}
	nnz := 0
	for _, i := range idx {
		nnz += m.RowPtr[i+1] - m.RowPtr[i]
	}
	s.Col = make([]int, 0, nnz)
	s.Val = make([]float64, 0, nnz)
	for k, i := range idx {
		s.Col = append(s.Col, m.Col[m.RowPtr[i]:m.RowPtr[i+1]]...)
		s.Val = append(s.Val, m.Val[m.RowPtr[i]:m.RowPtr[i+1]]...)
		s.RowPtr[k+1] = len(s.Col)
	}
	return s
}

// MulNT computes S = A * B^T on the device: A is this CSR (n x p), B is
// m x p row-major dense, S is n x m row-major (overwritten).
func (m *CSR) MulNT(dev *device.Device, b []float64, mRows int, s []float64) {
	if len(b) != mRows*m.NumCols {
		panic("sparse: MulNT B dimension mismatch")
	}
	if len(s) != m.NumRows*mRows {
		panic("sparse: MulNT output dimension mismatch")
	}
	p := m.NumCols
	dev.ParallelFor(m.NumRows, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			si := s[i*mRows : (i+1)*mRows]
			start, end := m.RowPtr[i], m.RowPtr[i+1]
			for c := 0; c < mRows; c++ {
				bc := b[c*p : (c+1)*p]
				var acc float64
				for k := start; k < end; k++ {
					acc += m.Val[k] * bc[m.Col[k]]
				}
				si[c] = acc
			}
		}
	})
	dev.AddFLOPs(2 * int64(m.NNZ()) * int64(mRows))
	dev.AddBytes(8 * (int64(m.NNZ()) + int64(len(b)) + int64(len(s))))
}

// MulTN computes G = D^T * A on the device: D is n x m dense, A is this
// CSR (n x p), G is m x p (overwritten). Chunk-private accumulators are
// reduced in chunk order, as in the dense device kernel, so results are
// deterministic across runs.
func (m *CSR) MulTN(dev *device.Device, d []float64, mRows int, g []float64) {
	if len(d) != m.NumRows*mRows {
		panic("sparse: MulTN D dimension mismatch")
	}
	if len(g) != mRows*m.NumCols {
		panic("sparse: MulTN output dimension mismatch")
	}
	p := m.NumCols
	linalg.Zero(g)
	parts := make([][]float64, dev.ChunkCount(m.NumRows, 0))
	dev.ParallelForChunks(m.NumRows, 0, func(chunk, lo, hi int) {
		part := make([]float64, len(g))
		for i := lo; i < hi; i++ {
			di := d[i*mRows : (i+1)*mRows]
			start, end := m.RowPtr[i], m.RowPtr[i+1]
			for c := 0; c < mRows; c++ {
				w := di[c]
				if w == 0 {
					continue
				}
				gc := part[c*p : (c+1)*p]
				for k := start; k < end; k++ {
					gc[m.Col[k]] += w * m.Val[k]
				}
			}
		}
		parts[chunk] = part
	})
	for _, part := range parts {
		linalg.Add(g, part)
	}
	dev.AddFLOPs(2 * int64(m.NNZ()) * int64(mRows))
	dev.AddBytes(8 * (int64(m.NNZ()) + int64(len(d)) + int64(len(g))))
}
