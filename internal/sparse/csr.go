// Package sparse implements a compressed sparse row (CSR) matrix with the
// device-parallel products needed by the softmax loss. The paper's E18
// dataset has ~280k features where forming dense structures (let alone the
// Hessian) is infeasible; CSR plus Hessian-free products is the code path
// that makes that experiment possible.
//
// The products mirror the dense kernel layer: register-blocked over four
// output classes (each nonzero's value and column index are loaded once
// and feed four outputs), chunk accumulators drawn from the device scratch
// arena (zero steady-state allocation), and a fused MulNTReduce launch.
// The unexported *ref methods keep the naive loops as the bitwise
// reference for property tests.
package sparse

import (
	"fmt"
	"sort"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
)

// CSR is a compressed sparse row matrix. Row i's nonzeros are
// Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with column
// indices strictly increasing within a row.
//
// Like the loss objectives that own them, a CSR matrix is a single-stream
// structure for compute: its product methods reuse per-matrix kernel
// state, so concurrent products on the same CSR are not allowed (reads
// like At/ToDense are safe).
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int
	Col              []int
	Val              []float64

	// Persistent kernel parameter blocks, reused across launches so
	// steady-state products allocate nothing.
	kNT    csrMulNTKernel
	kTN    csrMulTNKernel
	kNTRed csrMulNTReduceKernel
	kFused csrFusedGradKernel
}

// Coord is a single (row, col, value) entry used to build CSR matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// FromCoords builds a CSR matrix from coordinate triplets. Duplicate
// (row, col) entries are summed; zero results are kept. Entries out of
// range cause an error.
func FromCoords(rows, cols int, entries []Coord) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int, rows+1)}
	for k := 0; k < len(sorted); {
		e := sorted[k]
		v := e.Val
		k++
		for k < len(sorted) && sorted[k].Row == e.Row && sorted[k].Col == e.Col {
			v += sorted[k].Val
			k++
		}
		m.Col = append(m.Col, e.Col)
		m.Val = append(m.Val, v)
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(a *linalg.Matrix) *CSR {
	m := &CSR{NumRows: a.Rows, NumCols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			if v != 0 {
				m.Col = append(m.Col, j)
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns element (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Col[lo:hi], j)
	if k < hi && m.Col[k] == j {
		return m.Val[k]
	}
	return 0
}

// ToDense materializes the matrix densely (for tests and small problems).
func (m *CSR) ToDense() *linalg.Matrix {
	d := linalg.NewMatrix(m.NumRows, m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.Col[k], m.Val[k])
		}
	}
	return d
}

// RowSubset returns a new CSR whose rows are m's rows at idx, in order.
func (m *CSR) RowSubset(idx []int) *CSR {
	s := &CSR{NumRows: len(idx), NumCols: m.NumCols, RowPtr: make([]int, len(idx)+1)}
	nnz := 0
	for _, i := range idx {
		nnz += m.RowPtr[i+1] - m.RowPtr[i]
	}
	s.Col = make([]int, 0, nnz)
	s.Val = make([]float64, 0, nnz)
	for k, i := range idx {
		s.Col = append(s.Col, m.Col[m.RowPtr[i]:m.RowPtr[i+1]]...)
		s.Val = append(s.Val, m.Val[m.RowPtr[i]:m.RowPtr[i+1]]...)
		s.RowPtr[k+1] = len(s.Col)
	}
	return s
}

// mulNTRange computes the blocked S = A * B^T tile for rows [lo,hi):
// four classes at a time, so each stored (value, column) pair is loaded
// once per quad instead of once per class, and the four accumulators form
// independent dependency chains. Each accumulator sums in nonzero order
// exactly like the reference, so results are bitwise identical to
// mulNTRangeRef.
func (m *CSR) mulNTRange(b []float64, mRows int, s []float64, lo, hi int) {
	p := m.NumCols
	rowPtr, col, val := m.RowPtr, m.Col, m.Val
	for i := lo; i < hi; i++ {
		si := s[i*mRows : (i+1)*mRows]
		start, end := rowPtr[i], rowPtr[i+1]
		cols := col[start:end]
		vals := val[start:end]
		c := 0
		for ; c+4 <= mRows; c += 4 {
			b0 := b[c*p : c*p+p]
			b1 := b[(c+1)*p : (c+1)*p+p]
			b2 := b[(c+2)*p : (c+2)*p+p]
			b3 := b[(c+3)*p : (c+3)*p+p]
			var acc0, acc1, acc2, acc3 float64
			for k, j := range cols {
				v := vals[k]
				acc0 += v * b0[j]
				acc1 += v * b1[j]
				acc2 += v * b2[j]
				acc3 += v * b3[j]
			}
			si[c] = acc0
			si[c+1] = acc1
			si[c+2] = acc2
			si[c+3] = acc3
		}
		for ; c < mRows; c++ {
			bc := b[c*p : c*p+p]
			var acc float64
			for k, j := range cols {
				acc += vals[k] * bc[j]
			}
			si[c] = acc
		}
	}
}

// mulNTRangeRef is the naive reference for mulNTRange (property tests).
func (m *CSR) mulNTRangeRef(b []float64, mRows int, s []float64, lo, hi int) {
	p := m.NumCols
	for i := lo; i < hi; i++ {
		si := s[i*mRows : (i+1)*mRows]
		start, end := m.RowPtr[i], m.RowPtr[i+1]
		for c := 0; c < mRows; c++ {
			bc := b[c*p : (c+1)*p]
			var acc float64
			for k := start; k < end; k++ {
				acc += m.Val[k] * bc[m.Col[k]]
			}
			si[c] = acc
		}
	}
}

// mulTNRange accumulates the blocked G += D^T * A contribution of rows
// [lo,hi) into g. Four classes share each nonzero's scattered update, and
// quads containing a zero weight fall back to the reference per-class
// loop so the w==0 skip semantics match mulTNRangeRef bitwise (per
// element, contributions arrive in the same (row, nonzero) order).
func (m *CSR) mulTNRange(d []float64, mRows int, g []float64, lo, hi int) {
	p := m.NumCols
	rowPtr, col, val := m.RowPtr, m.Col, m.Val
	for i := lo; i < hi; i++ {
		di := d[i*mRows : (i+1)*mRows]
		start, end := rowPtr[i], rowPtr[i+1]
		cols := col[start:end]
		vals := val[start:end]
		c := 0
		for ; c+4 <= mRows; c += 4 {
			w0, w1, w2, w3 := di[c], di[c+1], di[c+2], di[c+3]
			if w0 == 0 || w1 == 0 || w2 == 0 || w3 == 0 {
				csrQuadSkip(g, cols, vals, di, c, c+4, p)
				continue
			}
			g0 := g[c*p : c*p+p]
			g1 := g[(c+1)*p : (c+1)*p+p]
			g2 := g[(c+2)*p : (c+2)*p+p]
			g3 := g[(c+3)*p : (c+3)*p+p]
			for k, j := range cols {
				v := vals[k]
				g0[j] += w0 * v
				g1[j] += w1 * v
				g2[j] += w2 * v
				g3[j] += w3 * v
			}
		}
		if c < mRows {
			csrQuadSkip(g, cols, vals, di, c, mRows, p)
		}
	}
}

// csrQuadSkip is the per-class tail of the blocked CSR MulTN kernel: the
// reference scatter loop with the zero-weight skip for classes [c0,c1).
func csrQuadSkip(g []float64, cols []int, vals, di []float64, c0, c1, p int) {
	for c := c0; c < c1; c++ {
		w := di[c]
		if w == 0 {
			continue
		}
		gc := g[c*p : c*p+p]
		for k, j := range cols {
			gc[j] += w * vals[k]
		}
	}
}

// mulTNRangeRef is the naive reference for mulTNRange (property tests).
func (m *CSR) mulTNRangeRef(d []float64, mRows int, g []float64, lo, hi int) {
	p := m.NumCols
	for i := lo; i < hi; i++ {
		di := d[i*mRows : (i+1)*mRows]
		start, end := m.RowPtr[i], m.RowPtr[i+1]
		for c := 0; c < mRows; c++ {
			w := di[c]
			if w == 0 {
				continue
			}
			gc := g[c*p : (c+1)*p]
			for k := start; k < end; k++ {
				gc[m.Col[k]] += w * m.Val[k]
			}
		}
	}
}

// csrMulNTKernel is the persistent parameter block of the CSR MulNT launch.
type csrMulNTKernel struct {
	m *CSR
	b []float64
	r int
	s []float64
}

func (k *csrMulNTKernel) Run(_, lo, hi int) {
	k.m.mulNTRange(k.b, k.r, k.s, lo, hi)
}

// MulNT computes S = A * B^T on the device: A is this CSR (n x p), B is
// m x p row-major dense, S is n x m row-major (overwritten).
func (m *CSR) MulNT(dev *device.Device, b []float64, mRows int, s []float64) {
	if len(b) != mRows*m.NumCols {
		panic("sparse: MulNT B dimension mismatch")
	}
	if len(s) != m.NumRows*mRows {
		panic("sparse: MulNT output dimension mismatch")
	}
	k := &m.kNT
	k.m, k.b, k.r, k.s = m, b, mRows, s
	dev.Launch(m.NumRows, 0, k)
	k.b, k.s = nil, nil
	dev.AddFLOPs(2 * int64(m.NNZ()) * int64(mRows))
	dev.AddBytes(8 * (int64(m.NNZ()) + int64(len(b)) + int64(len(s))))
}

// csrMulNTReduceKernel fuses the CSR score kernel with a row functor.
type csrMulNTReduceKernel struct {
	m        *CSR
	b        []float64
	r        int
	s        []float64
	fn       func(lo, hi int) float64
	partials []float64
}

func (k *csrMulNTReduceKernel) Run(chunk, lo, hi int) {
	k.m.mulNTRange(k.b, k.r, k.s, lo, hi)
	k.partials[chunk] = k.fn(lo, hi)
}

// MulNTReduce computes S = A * B^T and applies fn over each row range of
// the fresh output tile in the same launch, returning the chunk-ordered
// sum of partials — the CSR twin of device.MulNTReduce. fn must only
// touch rows [lo, hi) of S and be safe on disjoint ranges concurrently.
func (m *CSR) MulNTReduce(dev *device.Device, b []float64, mRows int, s []float64, fn func(lo, hi int) float64) float64 {
	if len(b) != mRows*m.NumCols {
		panic("sparse: MulNTReduce B dimension mismatch")
	}
	if len(s) != m.NumRows*mRows {
		panic("sparse: MulNTReduce output dimension mismatch")
	}
	if m.NumRows == 0 {
		return 0
	}
	chunks := dev.ChunkCount(m.NumRows, 0)
	k := &m.kNTRed
	k.m, k.b, k.r, k.s = m, b, mRows, s
	k.fn = fn
	k.partials = dev.ScratchPartials(chunks)
	dev.Launch(m.NumRows, 0, k)
	var total float64
	for _, p := range k.partials {
		total += p
	}
	k.b, k.s, k.fn, k.partials = nil, nil, nil, nil
	dev.AddFLOPs(2 * int64(m.NNZ()) * int64(mRows))
	dev.AddBytes(8 * (int64(m.NNZ()) + int64(len(b)) + int64(len(s))))
	return total
}

// csrFusedGradKernel runs the whole CSR gradient pipeline per chunk —
// the sparse twin of the dense fusedGradKernel, panelled by
// device.GradPanel so each panel's CSR rows are still cache-resident
// for the scatter-accumulation sweep.
type csrFusedGradKernel struct {
	m        *CSR
	b        []float64
	r        int
	s        []float64
	fn       func(lo, hi int) float64
	partials []float64
	g        []float64
	parts    [][]float64 // nil on the single-chunk fast path
}

func (k *csrFusedGradKernel) Run(chunk, lo, hi int) {
	dst := k.g
	if k.parts != nil {
		dst = k.parts[chunk]
		linalg.Zero(dst)
	}
	var sum float64
	for plo := lo; plo < hi; plo += device.GradPanel {
		phi := plo + device.GradPanel
		if phi > hi {
			phi = hi
		}
		k.m.mulNTRange(k.b, k.r, k.s, plo, phi)
		sum += k.fn(plo, phi)
		k.m.mulTNRange(k.s, k.r, dst, plo, phi)
	}
	k.partials[chunk] = sum
}

// FusedGradient runs S = A·Bᵀ, applies fn to each fresh row range of S
// (in place), and accumulates G = Sᵀ·A in one launch that streams the
// CSR data once — the sparse twin of device.FusedGradient, with the same
// bitwise guarantee for G and chunk/panel-deterministic partials.
func (m *CSR) FusedGradient(dev *device.Device, b []float64, mRows int, s []float64, fn func(lo, hi int) float64, g []float64) float64 {
	if len(b) != mRows*m.NumCols {
		panic("sparse: FusedGradient B dimension mismatch")
	}
	if len(s) != m.NumRows*mRows {
		panic("sparse: FusedGradient score dimension mismatch")
	}
	if len(g) != mRows*m.NumCols {
		panic("sparse: FusedGradient output dimension mismatch")
	}
	linalg.Zero(g)
	if m.NumRows == 0 {
		return 0
	}
	chunks := dev.ChunkCount(m.NumRows, 0)
	k := &m.kFused
	k.m, k.b, k.r, k.s, k.fn, k.g = m, b, mRows, s, fn, g
	k.partials = dev.ScratchPartials(chunks)
	if chunks > 1 {
		k.parts = dev.ScratchParts(chunks, len(g))
	}
	dev.Launch(m.NumRows, 0, k)
	for _, part := range k.parts {
		linalg.Add(g, part)
	}
	var total float64
	for _, p := range k.partials {
		total += p
	}
	k.b, k.s, k.fn, k.g, k.parts, k.partials = nil, nil, nil, nil, nil, nil
	dev.AddFLOPs(4 * int64(m.NNZ()) * int64(mRows))
	dev.AddBytes(8 * (int64(m.NNZ()) + int64(len(b)) + int64(len(s)) + int64(len(g))))
	return total
}

// csrMulTNKernel is the persistent parameter block of the CSR MulTN
// launch; with a single chunk it accumulates straight into g.
type csrMulTNKernel struct {
	m     *CSR
	d     []float64
	r     int
	g     []float64
	parts [][]float64 // nil on the single-chunk fast path
}

func (k *csrMulTNKernel) Run(chunk, lo, hi int) {
	dst := k.g
	if k.parts != nil {
		dst = k.parts[chunk]
		linalg.Zero(dst)
	}
	k.m.mulTNRange(k.d, k.r, dst, lo, hi)
}

// MulTN computes G = D^T * A on the device: D is n x m dense, A is this
// CSR (n x p), G is m x p (overwritten). Chunk-private arena accumulators
// are reduced in chunk order, as in the dense device kernel, so results
// are deterministic across runs; steady-state calls allocate nothing.
func (m *CSR) MulTN(dev *device.Device, d []float64, mRows int, g []float64) {
	if len(d) != m.NumRows*mRows {
		panic("sparse: MulTN D dimension mismatch")
	}
	if len(g) != mRows*m.NumCols {
		panic("sparse: MulTN output dimension mismatch")
	}
	linalg.Zero(g)
	k := &m.kTN
	k.m, k.d, k.r, k.g = m, d, mRows, g
	if m.NumRows > 0 {
		if chunks := dev.ChunkCount(m.NumRows, 0); chunks > 1 {
			k.parts = dev.ScratchParts(chunks, len(g))
		}
	}
	dev.Launch(m.NumRows, 0, k)
	for _, part := range k.parts {
		linalg.Add(g, part)
	}
	k.d, k.g, k.parts = nil, nil, nil
	dev.AddFLOPs(2 * int64(m.NNZ()) * int64(mRows))
	dev.AddBytes(8 * (int64(m.NNZ()) + int64(len(d)) + int64(len(g))))
}
