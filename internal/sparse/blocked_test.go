package sparse

import (
	"math/rand"
	"testing"

	"newtonadmm/internal/device"
)

// Property tests for the blocked CSR kernels against the retained naive
// references (bitwise), plus allocation regression tests for the arena
// paths.

func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	return FromDense(randSparseDense(rng, rows, cols, density))
}

func randWeights(rng *rand.Rand, n int, zeroFrac float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Float64() >= zeroFrac {
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

func TestCSRBlockedMulNTBitwiseMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 120; trial++ {
		n, p, m := 1+rng.Intn(30), 1+rng.Intn(40), 1+rng.Intn(11)
		a := randCSR(rng, n, p, 0.3)
		b := randWeights(rng, m*p, 0.1)
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		got := make([]float64, n*m)
		want := make([]float64, n*m)
		a.mulNTRange(b, m, got, lo, hi)
		a.mulNTRangeRef(b, m, want, lo, hi)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d p=%d m=%d): blocked CSR MulNT differs at %d: %v vs %v",
					trial, n, p, m, i, got[i], want[i])
			}
		}
	}
}

func TestCSRBlockedMulTNBitwiseMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 120; trial++ {
		n, p, m := 1+rng.Intn(30), 1+rng.Intn(40), 1+rng.Intn(11)
		a := randCSR(rng, n, p, 0.3)
		d := randWeights(rng, n*m, 0.4) // exercise the zero-weight dispatch
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		got := make([]float64, m*p)
		want := make([]float64, m*p)
		a.mulTNRange(d, m, got, lo, hi)
		a.mulTNRangeRef(d, m, want, lo, hi)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d p=%d m=%d): blocked CSR MulTN differs at %d: %v vs %v",
					trial, n, p, m, i, got[i], want[i])
			}
		}
	}
}

func TestCSRMulNTReduceMatchesSeparatePasses(t *testing.T) {
	dev := device.New("csr-fused", 4)
	defer dev.Close()
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 20; trial++ {
		n, p, m := 1+rng.Intn(60), 1+rng.Intn(30), 1+rng.Intn(9)
		a := randCSR(rng, n, p, 0.4)
		b := randWeights(rng, m*p, 0)
		s1 := make([]float64, n*m)
		a.MulNT(dev, b, m, s1)
		want := dev.ParallelReduce(n, 0, func(lo, hi int) float64 {
			var acc float64
			for i := lo * m; i < hi*m; i++ {
				acc += s1[i]
			}
			return acc
		})
		s2 := make([]float64, n*m)
		got := a.MulNTReduce(dev, b, m, s2, func(lo, hi int) float64 {
			var acc float64
			for i := lo * m; i < hi*m; i++ {
				acc += s2[i]
			}
			return acc
		})
		if got != want {
			t.Fatalf("trial %d: fused reduce %v != separate passes %v", trial, got, want)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("trial %d: fused scores differ at %d", trial, i)
			}
		}
	}
}

func TestCSRFusedGradientMatchesUnfusedPipeline(t *testing.T) {
	dev := device.New("csr-fused-grad", 5)
	defer dev.Close()
	rng := rand.New(rand.NewSource(206))
	for trial := 0; trial < 20; trial++ {
		n, p, m := 1+rng.Intn(120), 1+rng.Intn(40), 1+rng.Intn(9)
		a := randCSR(rng, n, p, 0.3)
		b := randWeights(rng, m*p, 0)
		mkFn := func(s []float64) func(lo, hi int) float64 {
			return func(lo, hi int) float64 {
				var acc float64
				for i := lo * m; i < hi*m; i++ {
					s[i] *= 0.5
					acc += s[i]
				}
				return acc
			}
		}
		s1 := make([]float64, n*m)
		g1 := make([]float64, m*p)
		a.MulNTReduce(dev, b, m, s1, mkFn(s1))
		a.MulTN(dev, s1, m, g1)

		s2 := make([]float64, n*m)
		g2 := make([]float64, m*p)
		a.FusedGradient(dev, b, m, s2, mkFn(s2), g2)

		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("trial %d: fused CSR scores differ at %d", trial, i)
			}
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("trial %d: fused CSR gradient differs at %d: %v vs %v", trial, i, g1[i], g2[i])
			}
		}
	}
}

func TestCSRMulTNDeterministicAcrossRuns(t *testing.T) {
	dev := device.New("csr-det", 7)
	defer dev.Close()
	rng := rand.New(rand.NewSource(204))
	n, p, m := 300, 25, 5
	a := randCSR(rng, n, p, 0.2)
	d := randWeights(rng, n*m, 0.2)
	ref := make([]float64, m*p)
	a.MulTN(dev, d, m, ref)
	got := make([]float64, m*p)
	for run := 0; run < 5; run++ {
		a.MulTN(dev, d, m, got)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("run %d: nondeterministic CSR MulTN at %d: %v vs %v", run, i, got[i], ref[i])
			}
		}
	}
}

func TestCSRProductsZeroAllocsSteadyState(t *testing.T) {
	dev := device.New("csr-allocs", 4)
	defer dev.Close()
	rng := rand.New(rand.NewSource(205))
	n, p, m := 400, 30, 6
	a := randCSR(rng, n, p, 0.3)
	b := randWeights(rng, m*p, 0)
	d := randWeights(rng, n*m, 0.1)
	s := make([]float64, n*m)
	g := make([]float64, m*p)
	fn := func(lo, hi int) float64 { return float64(hi - lo) }

	if allocs := testing.AllocsPerRun(20, func() { a.MulNT(dev, b, m, s) }); allocs != 0 {
		t.Fatalf("CSR MulNT allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { a.MulTN(dev, d, m, g) }); allocs != 0 {
		t.Fatalf("CSR MulTN allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { a.MulNTReduce(dev, b, m, s, fn) }); allocs != 0 {
		t.Fatalf("CSR MulNTReduce allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { a.FusedGradient(dev, b, m, s, fn, g) }); allocs != 0 {
		t.Fatalf("CSR FusedGradient allocates %v per call in steady state, want 0", allocs)
	}
}
