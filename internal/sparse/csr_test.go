package sparse

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
)

func randSparseDense(rng *rand.Rand, rows, cols int, density float64) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func matricesEqual(t *testing.T, a, b *linalg.Matrix, tol float64) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			t.Fatalf("data mismatch at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		d := randSparseDense(rng, 1+rng.Intn(30), 1+rng.Intn(30), 0.2)
		c := FromDense(d)
		matricesEqual(t, c.ToDense(), d, 0)
	}
}

func TestFromCoordsDuplicatesSummed(t *testing.T) {
	m, err := FromCoords(2, 3, []Coord{
		{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, -1}, {0, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("duplicate entries not summed: At(0,1)=%v", got)
	}
	if got := m.At(1, 0); got != -1 {
		t.Fatalf("At(1,0)=%v", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Fatalf("missing entry should be 0, got %v", got)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ=%d, want 3", m.NNZ())
	}
}

func TestFromCoordsOutOfRange(t *testing.T) {
	if _, err := FromCoords(2, 2, []Coord{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := FromCoords(2, 2, []Coord{{0, -1, 1}}); err == nil {
		t.Fatal("expected error for negative col")
	}
}

func TestFromCoordsEmpty(t *testing.T) {
	m, err := FromCoords(3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 || m.NumRows != 3 || m.NumCols != 4 {
		t.Fatalf("empty matrix wrong: %+v", m)
	}
	// RowPtr must still be well-formed.
	if len(m.RowPtr) != 4 || m.RowPtr[3] != 0 {
		t.Fatalf("RowPtr malformed: %v", m.RowPtr)
	}
}

func TestMulNTMatchesDense(t *testing.T) {
	dev := device.New("test", 4)
	defer dev.Close()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n, p, m := 1+rng.Intn(50), 1+rng.Intn(40), 1+rng.Intn(6)
		dense := randSparseDense(rng, n, p, 0.15)
		csr := FromDense(dense)
		b := make([]float64, m*p)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := make([]float64, n*m)
		csr.MulNT(dev, b, m, got)
		want := make([]float64, n*m)
		linalg.MulNT(dense, b, m, want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("MulNT mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestMulTNMatchesDense(t *testing.T) {
	dev := device.New("test", 4)
	defer dev.Close()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		n, p, m := 1+rng.Intn(50), 1+rng.Intn(40), 1+rng.Intn(6)
		dense := randSparseDense(rng, n, p, 0.15)
		csr := FromDense(dense)
		d := make([]float64, n*m)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		got := make([]float64, m*p)
		csr.MulTN(dev, d, m, got)
		want := make([]float64, m*p)
		linalg.MulTN(dense, d, m, want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("MulTN mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestRowSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dense := randSparseDense(rng, 20, 10, 0.3)
	csr := FromDense(dense)
	idx := []int{3, 3, 19, 0}
	sub := csr.RowSubset(idx)
	subDense := dense.RowSubset(idx)
	matricesEqual(t, sub.ToDense(), subDense, 0)
}

func TestAtBinarySearch(t *testing.T) {
	m, err := FromCoords(1, 100, []Coord{{0, 5, 1}, {0, 50, 2}, {0, 99, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]float64{0: 0, 5: 1, 49: 0, 50: 2, 99: 3}
	for j, want := range cases {
		if got := m.At(0, j); got != want {
			t.Fatalf("At(0,%d)=%v, want %v", j, got, want)
		}
	}
}

func TestMulDimensionPanics(t *testing.T) {
	dev := device.New("test", 1)
	defer dev.Close()
	m, _ := FromCoords(2, 3, nil)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("MulNT bad B", func() { m.MulNT(dev, make([]float64, 2), 1, make([]float64, 2)) })
	mustPanic("MulNT bad S", func() { m.MulNT(dev, make([]float64, 3), 1, make([]float64, 5)) })
	mustPanic("MulTN bad D", func() { m.MulTN(dev, make([]float64, 5), 1, make([]float64, 3)) })
	mustPanic("MulTN bad G", func() { m.MulTN(dev, make([]float64, 2), 1, make([]float64, 5)) })
}
