// Package sim is the deterministic fleet simulator: a shared-virtual-
// clock discrete-event engine that drives the REAL serving policy code
// — internal/router's planner/pool/P2C/sibling-retry/health logic,
// internal/control's admission, weighted-round-robin, and autoscaler
// policies, and the batcher's queue/linger semantics — with service
// times supplied by calibrated models (cluster.ServiceTimeModel fit
// from the PERF.md matrix, interconnect cost from cluster.NetworkModel
// presets) instead of wall-clock execution. Replica failures and
// recoveries reuse the faultinject seam.
//
// Determinism is the contract: a scenario is a pure function of its
// definition and seed. The event loop is single-threaded (a heap of
// timestamped events, ties broken by insertion sequence), every random
// draw comes from seeded sources, the router runs with SerialScatter
// so scatter legs consume the pick RNG in group order, and the report
// is built exclusively from virtual-time accounting — so the same seed
// produces a byte-identical ScenarioResult report, which is what the
// scenario regression suite pins. DESIGN.md "Fleet simulator" is the
// normative spec.
package sim
