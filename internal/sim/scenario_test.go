package sim

import (
	"testing"
	"time"

	"newtonadmm/internal/control"
)

// runScenario caches one run per named scenario so the assertion tests
// and the determinism suite don't re-execute the million-request mix.
var scenarioRuns = map[string]*ScenarioResult{}

func runScenario(t *testing.T, name string) *ScenarioResult {
	t.Helper()
	if res, ok := scenarioRuns[name]; ok {
		return res
	}
	sc, ok := ByName(name)
	if !ok {
		t.Fatalf("no scenario %q", name)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	scenarioRuns[name] = res
	return res
}

// TestSteadyReplica: moderate constant load on a healthy fleet serves
// everything with zero rejects, zero errors, and latency at
// linger + service + wire.
func TestSteadyReplica(t *testing.T) {
	res := runScenario(t, "steady-replica")
	if res.Requests != 40000 {
		t.Errorf("requests = %d, want 40000 (constant 20k/s over 2s)", res.Requests)
	}
	if res.Completed != res.Requests || res.Rejected != 0 || res.Errors != 0 || res.Failovers != 0 {
		t.Errorf("healthy fleet dropped work: %+v", res)
	}
	p99 := res.Class(control.Interactive).Latency.P99
	if p99 <= 0 || p99 > time.Millisecond {
		t.Errorf("p99 = %v, want (0, 1ms] (linger 200µs + batch service + wire)", p99)
	}
	if len(res.Coverage) != 1 || res.Coverage[0].Status != "ok" {
		t.Errorf("coverage = %+v, want a single ok", res.Coverage)
	}
}

// TestBurstBackpressure: open-loop bursts overrun the slow fleet; the
// bounded queues reject with queue_full (and only queue_full), nothing
// is silently dropped, and latency stays bounded by the queue depth.
func TestBurstBackpressure(t *testing.T) {
	res := runScenario(t, "burst-backpressure")
	cs := res.Class(control.Interactive)
	if cs.Rejected[control.ReasonQueueFull] < 10000 {
		t.Errorf("queue_full rejects = %d, want >= 10000 (bursts must overrun)", cs.Rejected[control.ReasonQueueFull])
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0 (backpressure is not failure)", res.Errors)
	}
	if res.Completed+res.Rejected != res.Requests {
		t.Errorf("accounting leak: completed %d + rejected %d != requests %d", res.Completed, res.Rejected, res.Requests)
	}
	if res.Completed < res.Requests/10 {
		t.Errorf("completed = %d of %d, want the base load served", res.Completed, res.Requests)
	}
	if max := cs.Latency.Max; max > 5*time.Millisecond {
		t.Errorf("max latency = %v, want <= 5ms (bounded queues bound latency)", max)
	}
	if res.Failovers == 0 {
		t.Error("failovers = 0, want > 0 (full replica fails over to its peer before rejecting)")
	}
}

// TestDiurnalAutoscale: the real autoscaler must grow the fleet
// through the diurnal peak and drain it through the trough.
func TestDiurnalAutoscale(t *testing.T) {
	res := runScenario(t, "diurnal-autoscale")
	if !res.AutoEnabled {
		t.Fatal("autoscaler not enabled")
	}
	if res.AutoUps == 0 {
		t.Error("ups = 0, want scale-ups at the peak")
	}
	if res.AutoDowns == 0 {
		t.Error("downs = 0, want scale-downs in the trough")
	}
	if len(res.Scale) < 3 {
		t.Errorf("trajectory %+v, want >= 3 points (initial + up + down)", res.Scale)
	}
	if res.FinalReplicas < 2 || res.FinalReplicas > 8 {
		t.Errorf("final replicas = %d, want within [2, 8]", res.FinalReplicas)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
}

// TestZoneOutage: a whole zone dies mid-run on the R=2 x S=2 grid. The
// sibling retry keeps every client request whole (zero errors),
// coverage degrades without ever going unserviceable, and the virtual
// health probes restore the zone after revival.
func TestZoneOutage(t *testing.T) {
	res := runScenario(t, "zone-outage")
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0 (sibling retry must absorb the outage)", res.Errors)
	}
	if res.Completed != res.Requests {
		t.Errorf("completed %d of %d requests", res.Completed, res.Requests)
	}
	if res.Failovers == 0 {
		t.Error("failovers = 0, want > 0 (legs must have retried onto siblings)")
	}
	sawDegraded := false
	for _, tr := range res.Coverage {
		if tr.Status == "unserviceable" {
			t.Errorf("coverage went unserviceable at %v", tr.At)
		}
		if tr.Status == "degraded" {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Errorf("coverage %+v never degraded during the outage", res.Coverage)
	}
	if last := res.Coverage[len(res.Coverage)-1]; last.Status != "ok" {
		t.Errorf("final coverage = %q, want ok after revival", last.Status)
	}
}

// TestAdversarialMix is the million-request run: a 200k req/s
// background flood against an interactive trickle, priced out by the
// cost-aware admission policy. Interactive is never refused (the
// starvation bound), the flood eats every rejection, and the fleet
// serves all admitted work without error — in well under the CI
// budget.
func TestAdversarialMix(t *testing.T) {
	start := time.Now()
	res := runScenario(t, "adversarial-mix")
	if wall := time.Since(start); wall > 2*time.Minute {
		t.Errorf("run took %v, want < 2m (CI budget)", wall)
	}
	if res.Requests < 1_000_000 {
		t.Errorf("requests = %d, want >= 1e6", res.Requests)
	}
	inter := res.Class(control.Interactive)
	if inter.RejectedTotal() != 0 {
		t.Errorf("interactive rejections = %d, want 0 (starvation bound)", inter.RejectedTotal())
	}
	if inter.Completed != inter.Arrived {
		t.Errorf("interactive completed %d of %d", inter.Completed, inter.Arrived)
	}
	bg := res.Class(control.Background)
	if bg.Rejected[control.ReasonCostRejected] < 500_000 {
		t.Errorf("background cost_rejected = %d, want >= 5e5 (the flood must be priced out)", bg.Rejected[control.ReasonCostRejected])
	}
	if bg.Completed == 0 {
		t.Error("background completed = 0, want > 0 (the flood degrades, it is not starved)")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if p99 := inter.Latency.P99; p99 <= 0 || p99 > time.Millisecond {
		t.Errorf("interactive p99 = %v, want (0, 1ms]", p99)
	}
}

// TestScenarioCatalog pins the regression catalog: at least the five
// named scenarios, resolvable by name, valid after defaulting.
func TestScenarioCatalog(t *testing.T) {
	want := []string{"steady-replica", "burst-backpressure", "diurnal-autoscale", "zone-outage", "adversarial-mix"}
	all := Scenarios()
	if len(all) < len(want) {
		t.Fatalf("catalog has %d scenarios, want >= %d", len(all), len(want))
	}
	for _, name := range want {
		sc, ok := ByName(name)
		if !ok {
			t.Errorf("scenario %q missing from catalog", name)
			continue
		}
		if err := sc.withDefaults().validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName resolved a nonexistent scenario")
	}
}
