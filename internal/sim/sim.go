package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/router"
	"newtonadmm/internal/router/faultinject"
	"newtonadmm/internal/serve"
)

// numReasons mirrors the control package's reason space (none,
// queue_full, rate_limited, cost_rejected) for the per-class rejection
// counters.
const numReasons = 4

// reqRecord tracks one client request across its scatter legs: the
// request completes, in virtual time, when its last leg lands.
type reqRecord struct {
	start time.Duration
	pri   control.Priority
	legs  int           // legs enqueued on virtual replicas
	done  int           // legs whose virtual service completed
	end   time.Duration // latest leg completion (incl. wire cost)
	closed bool         // the router call returned
	ok     bool         // ... without error
}

// Sim is one scenario execution: the virtual clock, the REAL router
// over virtual replicas, and the virtual-time accounting the report is
// built from. Everything runs on the goroutine driving clock.Run.
type Sim struct {
	clock *Clock
	sc    Scenario

	rtr    *router.Router
	reps   map[int]*SimReplica             // router replica ID -> virtual replica
	faults map[int]*faultinject.FaultBackend

	cur       *reqRecord // request currently inside a router call
	vInflight int64      // legs enqueued but not virtually completed
	zoneRR    int        // round-robin zone cursor for scale-ups

	rows [][]float64 // deterministic request row pool
	out  []int       // reusable predict output

	latAll    *metrics.Histogram // all classes, feeds the autoscaler window
	lat       [control.NumPriorities]*metrics.Histogram
	arrived   [control.NumPriorities]int64
	completed [control.NumPriorities]int64
	errored   [control.NumPriorities]int64
	rejected  [control.NumPriorities][numReasons]int64

	coverage     []CoverageTransition
	lastCoverage string
	scale        []ScalePoint
	as           *control.Autoscaler
}

// Run executes the scenario to completion and returns its report.
func Run(sc Scenario) (*ScenarioResult, error) {
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		clock:  NewClock(),
		sc:     sc,
		reps:   make(map[int]*SimReplica),
		faults: make(map[int]*faultinject.FaultBackend),
		latAll: metrics.NewHistogram(),
		out:    make([]int, 1),
	}
	for c := range s.lat {
		s.lat[c] = metrics.NewHistogram()
	}
	s.genRows()
	if err := s.buildFleet(); err != nil {
		return nil, err
	}
	defer s.rtr.Close()
	if err := s.installAdmission(); err != nil {
		return nil, err
	}
	s.noteCoverage()
	s.scheduleLoad()
	s.scheduleFaults()
	s.scheduleProbes()
	s.scheduleAutoscaler()

	s.clock.Run()
	return s.result(), nil
}

// genRows builds the deterministic request row pool from the scenario
// seed.
func (s *Sim) genRows() {
	rng := rand.New(rand.NewSource(s.sc.Seed))
	s.rows = make([][]float64, 32)
	for i := range s.rows {
		row := make([]float64, s.sc.Features)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		s.rows[i] = row
	}
}

// zoneOf returns the placement zone for the i-th replica (of a group,
// or of the whole fleet in replica mode).
func (s *Sim) zoneOf(i int) string {
	if len(s.sc.Zones) == 0 {
		return ""
	}
	return s.sc.Zones[i%len(s.sc.Zones)]
}

// fullReplicaConfig is the shape of one whole-model virtual replica.
func (s *Sim) fullReplicaConfig(zone string) replicaConfig {
	return replicaConfig{
		classes:    s.sc.Classes,
		features:   s.sc.Features,
		zone:       zone,
		maxBatch:   s.sc.MaxBatch,
		linger:     s.sc.Linger,
		queueDepth: s.sc.QueueDepth,
		service:    s.sc.Service,
		net:        s.sc.Net,
	}
}

// buildFleet constructs the virtual replicas (each behind a faultinject
// gate) and the REAL router over them: SerialScatter for deterministic
// RNG consumption, wall health monitor disabled (the simulator drives
// ProbeHealth from virtual-time events).
func (s *Sim) buildFleet() error {
	var backends []router.Backend
	switch s.sc.Mode {
	case router.ModeClass:
		ranges, err := router.PlanShards(s.sc.Classes, s.sc.Shards)
		if err != nil {
			return err
		}
		for si, rng := range ranges {
			for ri := 0; ri < s.sc.Replicas; ri++ {
				cfg := s.fullReplicaConfig(s.zoneOf(ri))
				cfg.totalClasses = s.sc.Classes
				cfg.classes = rng.Width() + 1
				cfg.shard = rng
				cfg.shardIndex = si
				cfg.shardCount = s.sc.Shards
				backends = append(backends, faultinject.Wrap(newSimReplica(s, cfg)))
			}
		}
	default:
		for i := 0; i < s.sc.Replicas; i++ {
			backends = append(backends, faultinject.Wrap(newSimReplica(s, s.fullReplicaConfig(s.zoneOf(i)))))
		}
	}
	s.zoneRR = len(backends)
	rtr, err := router.New(backends, router.Options{
		Mode:          s.sc.Mode,
		HealthEvery:   -1,
		FailAfter:     s.sc.FailAfter,
		SampleEvery:   -1,
		SerialScatter: true,
	})
	if err != nil {
		return err
	}
	s.rtr = rtr
	for _, rep := range rtr.Pool().Replicas() {
		s.adoptReplica(rep)
	}
	return nil
}

// adoptReplica links a registered pool entry back to its virtual
// replica so legs can adjust the entry's load gauge.
func (s *Sim) adoptReplica(rep *router.Replica) {
	fb := rep.Backend().(*faultinject.FaultBackend)
	sr := fb.Inner().(*SimReplica)
	sr.rep = rep
	s.reps[rep.ID] = sr
	s.faults[rep.ID] = fb
}

// installAdmission builds the scenario's admission policy with its
// refill clock bound to the virtual clock.
func (s *Sim) installAdmission() error {
	var p *control.TokenBucket
	switch s.sc.Admission.Kind {
	case "":
		return nil
	case "rate":
		p = control.NewTokenBucket(s.sc.Admission.Rate, int(s.sc.Admission.Burst))
	case "cost":
		p = control.NewCostPolicy(s.sc.Admission.Rate, s.sc.Admission.Burst)
	default:
		return fmt.Errorf("sim: unknown admission kind %q (want \"\", \"rate\", or \"cost\")", s.sc.Admission.Kind)
	}
	p.SetNow(s.clock.Now)
	s.rtr.SetAdmission(p)
	return nil
}

// scheduleLoad starts one self-rescheduling arrival chain per class
// load, each with its own seeded RNG (gaps and row picks share it).
func (s *Sim) scheduleLoad() {
	for i, cl := range s.sc.Load {
		cl := cl
		rng := rand.New(rand.NewSource(s.sc.Seed + 7919*int64(i+1)))
		var next func()
		next = func() {
			s.arrive(cl.Priority, rng)
			if t := s.clock.VNow() + cl.Process.Next(rng, s.clock.VNow()); t <= s.sc.Duration {
				s.clock.At(t, next)
			}
		}
		if t := cl.Process.Next(rng, 0); t <= s.sc.Duration {
			s.clock.At(t, next)
		}
	}
}

// scheduleFaults registers the scenario's crash/revive timeline.
func (s *Sim) scheduleFaults() {
	for _, ev := range s.sc.Faults {
		ev := ev
		s.clock.At(ev.At, func() {
			fb, ok := s.faults[ev.Replica]
			if !ok {
				return
			}
			switch ev.Action {
			case FaultCrash:
				fb.Crash()
			case FaultRevive:
				fb.Revive()
			}
			s.noteCoverage()
		})
	}
}

// scheduleProbes drives the REAL pool health monitor body from virtual
// time when the scenario asks for probing.
func (s *Sim) scheduleProbes() {
	if s.sc.HealthEvery <= 0 {
		return
	}
	failAfter := s.sc.FailAfter
	if failAfter <= 0 {
		failAfter = 3
	}
	var probe func()
	probe = func() {
		s.rtr.Pool().ProbeHealth(failAfter)
		s.noteCoverage()
		if t := s.clock.VNow() + s.sc.HealthEvery; t <= s.sc.Duration {
			s.clock.At(t, probe)
		}
	}
	s.clock.At(s.sc.HealthEvery, probe)
}

// scheduleAutoscaler wires the REAL control loop — Evaluate driven by
// virtual ticks, the latency window advanced over the simulator's own
// histogram, scaling actuated through the router's membership API.
func (s *Sim) scheduleAutoscaler() {
	spec := s.sc.Autoscale
	if spec == nil {
		return
	}
	src := &simSource{s: s, delta: metrics.NewDelta(s.latAll)}
	s.as = control.NewAutoscaler(src, simActuator{s: s}, control.AutoscalerConfig{
		Min: spec.Min, Max: spec.Max,
		TargetP99:       spec.TargetP99,
		HighUtilization: spec.HighUtil, LowUtilization: spec.LowUtil,
		Tick:    spec.Tick,
		UpAfter: spec.UpAfter, DownAfter: spec.DownAfter,
		UpCooldown: spec.UpCooldown, DownCooldown: spec.DownCooldown,
	})
	s.scale = append(s.scale, ScalePoint{At: 0, Replicas: len(s.rtr.Pool().Replicas())})
	tick := s.as.Config().Tick
	var evaluate func()
	evaluate = func() {
		before := len(s.rtr.Pool().Replicas())
		s.as.Evaluate(s.clock.Now())
		if after := len(s.rtr.Pool().Replicas()); after != before {
			s.scale = append(s.scale, ScalePoint{At: s.clock.VNow(), Replicas: after})
		}
		if t := s.clock.VNow() + tick; t <= s.sc.Duration {
			s.clock.At(t, evaluate)
		}
	}
	s.clock.At(tick, evaluate)
}

// arrive is one client request: build the batch, call the REAL router
// synchronously (legs land on virtual replicas during the call), and
// classify the outcome with the real rejection taxonomy.
func (s *Sim) arrive(pri control.Priority, rng *rand.Rand) {
	s.arrived[pri]++
	b := &router.Batch{Priority: pri}
	b.AddDense(s.rows[rng.Intn(len(s.rows))])
	rec := &reqRecord{start: s.clock.VNow(), pri: pri}
	s.cur = rec
	err := s.rtr.Predict(b, s.out[:1])
	s.cur = nil
	rec.closed = true
	rec.ok = err == nil
	if err == nil {
		if rec.legs == 0 { // zero-row edge: nothing to wait for
			s.finish(rec)
		}
		return
	}
	if reason, _, isReject := serve.RejectionOf(err); isReject {
		s.rejected[pri][reason]++
		return
	}
	s.errored[pri]++
	s.noteCoverage() // data-plane errors can change replica health
}

// legDone lands one virtual leg. The request finishes — and its
// latency is recorded — when the router call succeeded and the last
// leg has landed.
func (s *Sim) legDone(r *SimReplica, j *vjob, end time.Duration) {
	s.vInflight--
	if r.rep != nil {
		r.rep.AdjustLoad(-1)
	}
	rec := j.rec
	if rec == nil {
		return
	}
	rec.done++
	if end > rec.end {
		rec.end = end
	}
	if rec.closed && rec.ok && rec.done == rec.legs {
		s.finish(rec)
	}
}

func (s *Sim) finish(rec *reqRecord) {
	s.completed[rec.pri]++
	lat := rec.end - rec.start
	if lat < 0 {
		lat = 0
	}
	s.lat[rec.pri].Observe(lat)
	s.latAll.Observe(lat)
}

// noteCoverage appends a transition when the pool's coverage status
// changed since last observed.
func (s *Sim) noteCoverage() {
	status, _ := s.rtr.Pool().Coverage()
	if status != s.lastCoverage {
		s.lastCoverage = status
		s.coverage = append(s.coverage, CoverageTransition{At: s.clock.VNow(), Status: status})
	}
}

// spawnReplica is the scale-up actuator: a fresh virtual replica joins
// the REAL pool through the router's membership API and starts taking
// traffic immediately.
func (s *Sim) spawnReplica() error {
	sr := newSimReplica(s, s.fullReplicaConfig(s.zoneOf(s.zoneRR)))
	s.zoneRR++
	fb := faultinject.Wrap(sr)
	id, err := s.rtr.AddBackend(fb)
	if err != nil {
		sr.Close()
		return err
	}
	for _, rep := range s.rtr.Pool().Replicas() {
		if rep.ID == id {
			s.adoptReplica(rep)
			return nil
		}
	}
	return fmt.Errorf("sim: replica %d not found after AddBackend", id)
}

// retireReplica is the scale-down actuator: retire the newest virtually
// idle replica the coverage guard will release. The pool's drain spin
// is wall-clock, so only idle replicas (no virtual backlog) are
// eligible — a refusal is the guard doing its job and surfaces as an
// autoscaler failure, exactly like production.
func (s *Sim) retireReplica() error {
	reps := s.rtr.Pool().Replicas()
	for i := len(reps) - 1; i >= 0; i-- {
		id := reps[i].ID
		sr := s.reps[id]
		if sr == nil || !sr.idle() {
			continue
		}
		if s.rtr.Pool().CanDrain(id) != nil {
			continue
		}
		if err := s.rtr.RemoveBackend(id, time.Millisecond); err != nil {
			return err
		}
		delete(s.reps, id)
		delete(s.faults, id)
		return nil
	}
	return errors.New("sim: no idle drainable replica")
}

// simSource feeds the real autoscaler from virtual-time accounting:
// windowed p99 over the simulator's latency histogram, in-flight from
// the virtual leg gauge, capacity as replicas x max batch.
type simSource struct {
	s     *Sim
	delta *metrics.Delta
}

func (src *simSource) Snapshot() control.Snapshot {
	_, p99 := src.delta.Advance(0.99)
	n := len(src.s.rtr.Pool().Replicas())
	return control.Snapshot{
		P99:      p99,
		InFlight: src.s.vInflight,
		Capacity: int64(n * src.s.sc.MaxBatch),
		Replicas: n,
	}
}

// simActuator routes the real autoscaler's decisions through the real
// router membership API.
type simActuator struct{ s *Sim }

func (a simActuator) Replicas() int  { return len(a.s.rtr.Pool().Replicas()) }
func (a simActuator) ScaleUp() error { return a.s.spawnReplica() }
func (a simActuator) ScaleDown() error { return a.s.retireReplica() }
