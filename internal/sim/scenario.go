package sim

import (
	"fmt"
	"time"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/control"
	"newtonadmm/internal/router"
)

// Fault actions.
const (
	// FaultCrash makes every call to the replica fail unreachable.
	FaultCrash = "crash"
	// FaultRevive clears a crash.
	FaultRevive = "revive"
)

// FaultEvent is one point on a replica's failure/recovery schedule.
type FaultEvent struct {
	At      time.Duration
	Replica int // router replica ID (construction order)
	Action  string
}

// ClassLoad is one arrival stream: a service class driven by an
// arrival process.
type ClassLoad struct {
	Priority control.Priority
	Process  ArrivalProcess
}

// AdmissionSpec selects the router-side admission policy. Kind "" is
// no policy, "rate" a request-rate token bucket, "cost" the cost-aware
// bucket charged rows x features per request.
type AdmissionSpec struct {
	Kind  string
	Rate  float64
	Burst int64
}

// AutoscaleSpec enables the real control.Autoscaler over the simulated
// fleet; zero fields select the control package's defaults.
type AutoscaleSpec struct {
	Min, Max                 int
	TargetP99                time.Duration
	Tick                     time.Duration
	UpAfter, DownAfter       int
	UpCooldown, DownCooldown time.Duration
	HighUtil, LowUtil        float64
}

// Scenario is one reproducible fleet experiment: topology, calibrated
// cost models, arrival streams, failure schedule, and control-plane
// policies. Same scenario + same seed => byte-identical report.
type Scenario struct {
	Name string
	Seed int64
	// Duration bounds generator activity (arrivals, probes, autoscaler
	// ticks); in-flight work drains past it, so the event loop always
	// terminates.
	Duration time.Duration

	// Mode selects the placement strategy ("" = replica). Replicas is
	// the initial whole-model replica count in replica mode, and the
	// per-shard sibling count R in class mode; Shards is the shard count
	// S (class mode only). Zones assigns placement zones round-robin.
	Mode     router.Mode
	Replicas int
	Shards   int
	Zones    []string

	// Model shape and batching parameters of every virtual replica.
	Classes, Features int
	MaxBatch          int
	Linger            time.Duration // < 0 disables lingering; 0 selects 200µs
	QueueDepth        int           // per-class backlog bound per replica

	// Calibrated cost models: service time per batch, wire cost per leg.
	Service cluster.ServiceTimeModel
	Net     cluster.NetworkModel

	// Health probing (virtual-time ProbeHealth cadence; <= 0 disables)
	// and the consecutive-failure threshold shared with the router.
	HealthEvery time.Duration
	FailAfter   int

	Admission AdmissionSpec
	Autoscale *AutoscaleSpec
	Load      []ClassLoad
	Faults    []FaultEvent
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Seed <= 0 {
		sc.Seed = 1
	}
	if sc.Duration <= 0 {
		sc.Duration = 2 * time.Second
	}
	if sc.Mode == "" {
		sc.Mode = router.ModeReplica
	}
	if sc.Replicas <= 0 {
		sc.Replicas = 1
	}
	if sc.Shards <= 0 {
		sc.Shards = 1
	}
	if sc.Classes <= 0 {
		sc.Classes = 10
	}
	if sc.Features <= 0 {
		sc.Features = 784
	}
	if sc.MaxBatch <= 0 {
		sc.MaxBatch = 64
	}
	if sc.Linger == 0 {
		sc.Linger = 200 * time.Microsecond
	}
	if sc.QueueDepth <= 0 {
		sc.QueueDepth = 256
	}
	if sc.Service.Name == "" {
		sc.Service = cluster.MNISTServiceModel
	}
	if sc.Net.Name == "" {
		sc.Net = cluster.InfiniBand100G
	}
	return sc
}

func (sc Scenario) validate() error {
	if len(sc.Load) == 0 {
		return fmt.Errorf("sim: scenario %q has no load", sc.Name)
	}
	if sc.Mode == router.ModeClass && sc.Shards > sc.Classes-1 {
		return fmt.Errorf("sim: scenario %q wants %d shards for %d explicit class rows", sc.Name, sc.Shards, sc.Classes-1)
	}
	for _, ev := range sc.Faults {
		if ev.Action != FaultCrash && ev.Action != FaultRevive {
			return fmt.Errorf("sim: scenario %q has unknown fault action %q", sc.Name, ev.Action)
		}
	}
	return nil
}

// heavyServiceModel is a deliberately slow synthetic replica used by
// the overload scenarios: realistic calibrated models (µs-scale) would
// need million-req/s arrival rates to saturate, which buys nothing in
// an overload test but costs wall time.
var heavyServiceModel = cluster.ServiceTimeModel{Name: "heavy-synth", Base: 50 * time.Microsecond, PerRow: 50 * time.Microsecond}

// diurnalServiceModel sizes a replica at roughly 5k rows/s so the
// diurnal swing crosses the fleet's capacity and forces scaling.
var diurnalServiceModel = cluster.ServiceTimeModel{Name: "diurnal-synth", Base: 100 * time.Microsecond, PerRow: 200 * time.Microsecond}

// Scenarios returns the named regression scenarios in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// Steady moderate load on a healthy fleet: nothing is rejected,
			// nothing errors, latency sits at linger + service + wire.
			Name:     "steady-replica",
			Duration: 2 * time.Second,
			Mode:     router.ModeReplica,
			Replicas: 3,
			Classes:  10, Features: 784,
			MaxBatch: 64, Linger: 200 * time.Microsecond, QueueDepth: 256,
			Service: cluster.MNISTServiceModel,
			Net:     cluster.InfiniBand100G,
			Load: []ClassLoad{
				{Priority: control.Interactive, Process: Constant{Every: 50 * time.Microsecond}},
			},
		},
		{
			// Open-loop bursts overrun two slow replicas: the bounded
			// per-class queues push back with queue_full, the fleet
			// recovers between bursts, and nothing is lost silently.
			Name:     "burst-backpressure",
			Duration: 2500 * time.Millisecond,
			Mode:     router.ModeReplica,
			Replicas: 2,
			Classes:  10, Features: 784,
			MaxBatch: 16, Linger: 50 * time.Microsecond, QueueDepth: 8,
			Service: heavyServiceModel,
			Net:     cluster.InfiniBand100G,
			Load: []ClassLoad{
				{Priority: control.Interactive, Process: Burst{
					BaseRate: 2000, BurstRate: 150000,
					Interval: 500 * time.Millisecond, Length: 100 * time.Millisecond,
				}},
			},
		},
		{
			// A diurnal swing crosses the two-replica fleet's capacity;
			// the real autoscaler grows the pool through the peak and
			// drains it through the trough.
			Name:     "diurnal-autoscale",
			Duration: 16 * time.Second,
			Mode:     router.ModeReplica,
			Replicas: 2,
			Classes:  10, Features: 784,
			MaxBatch: 32, Linger: 100 * time.Microsecond, QueueDepth: 512,
			Service: diurnalServiceModel,
			Net:     cluster.InfiniBand100G,
			Autoscale: &AutoscaleSpec{
				Min: 2, Max: 8,
				TargetP99: 5 * time.Millisecond,
				Tick:      500 * time.Millisecond,
				UpAfter:   2, DownAfter: 4,
				UpCooldown: time.Second, DownCooldown: 3 * time.Second,
				HighUtil: 0.75, LowUtil: 0.2,
			},
			Load: []ClassLoad{
				{Priority: control.Interactive, Process: Diurnal{Base: 1000, Peak: 15000, Period: 8 * time.Second}},
			},
		},
		{
			// R=2 x S=2 grid across two zones: zone b dies mid-run. The
			// sibling retry absorbs every mid-scatter death (zero client
			// errors), coverage degrades but never goes unserviceable, and
			// the virtual health probes restore the zone after revival.
			Name:     "zone-outage",
			Duration: 3 * time.Second,
			Mode:     router.ModeClass,
			Replicas: 2, Shards: 2,
			Zones:   []string{"zone-a", "zone-b"},
			Classes: 10, Features: 784,
			MaxBatch: 64, Linger: 100 * time.Microsecond, QueueDepth: 256,
			Service:     cluster.MNISTServiceModel,
			Net:         cluster.Ethernet10G,
			HealthEvery: 250 * time.Millisecond,
			FailAfter:   3,
			Load: []ClassLoad{
				{Priority: control.Interactive, Process: Poisson{Rate: 5000}},
			},
			Faults: []FaultEvent{
				{At: time.Second, Replica: 1, Action: FaultCrash},
				{At: time.Second, Replica: 3, Action: FaultCrash},
				{At: 2 * time.Second, Replica: 1, Action: FaultRevive},
				{At: 2 * time.Second, Replica: 3, Action: FaultRevive},
			},
		},
		{
			// The million-request adversarial mix: a background flood
			// (200k req/s, open loop) against an interactive trickle, with
			// the cost-aware admission policy holding the line. The flood
			// is priced out (cost_rejected), interactive is never refused
			// — the starvation bound — and the fleet serves everything it
			// admits without error.
			Name:     "adversarial-mix",
			Duration: 5 * time.Second,
			Mode:     router.ModeReplica,
			Replicas: 4,
			Classes:  2, Features: 28,
			MaxBatch: 64, Linger: 20 * time.Microsecond, QueueDepth: 256,
			Service:   cluster.HIGGSServiceModel,
			Net:       cluster.InfiniBand100G,
			Admission: AdmissionSpec{Kind: "cost", Rate: 600000, Burst: 60000},
			Load: []ClassLoad{
				{Priority: control.Interactive, Process: Poisson{Rate: 4000}},
				{Priority: control.Background, Process: Constant{Every: 5 * time.Microsecond}},
			},
		},
	}
}

// ByName looks up a named scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
