package sim

import (
	"math"
	"math/rand"
	"time"
)

// ArrivalProcess generates inter-arrival gaps. Next returns the delay
// from now until the next arrival; implementations must be
// deterministic given the rng and the current virtual time (diurnal
// processes read now, stationary ones ignore it).
type ArrivalProcess interface {
	Next(rng *rand.Rand, now time.Duration) time.Duration
}

// Constant fires exactly every Every — the fixed-schedule open-loop
// generator.
type Constant struct {
	Every time.Duration
}

// Next implements ArrivalProcess.
func (c Constant) Next(*rand.Rand, time.Duration) time.Duration { return c.Every }

// Poisson fires with exponential gaps at Rate arrivals per second —
// the memoryless open-loop user population.
type Poisson struct {
	Rate float64 // arrivals per second
}

// Next implements ArrivalProcess.
func (p Poisson) Next(rng *rand.Rand, _ time.Duration) time.Duration {
	if p.Rate <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// Diurnal is a sinusoidal-rate Poisson process: the rate swings from
// Base at the trough to Peak at the crest over Period, starting at the
// trough. The nonhomogeneous process is approximated by drawing each
// exponential gap at the instantaneous rate — accurate when the rate
// varies slowly relative to the gaps, which a diurnal cycle does.
type Diurnal struct {
	Base, Peak float64 // arrivals per second
	Period     time.Duration
}

// Rate returns the instantaneous arrival rate at virtual time t.
func (d Diurnal) Rate(t time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := 2 * math.Pi * float64(t%d.Period) / float64(d.Period)
	return d.Base + (d.Peak-d.Base)*(1-math.Cos(phase))/2
}

// Next implements ArrivalProcess.
func (d Diurnal) Next(rng *rand.Rand, now time.Duration) time.Duration {
	r := d.Rate(now)
	if r <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / r * float64(time.Second))
}

// Burst alternates between a quiet base schedule and periodic
// open-loop bursts: every Interval, a window of Length fires at
// BurstRate; outside windows arrivals follow BaseRate. Both phases are
// Poisson so bursts land with realistic jitter.
type Burst struct {
	BaseRate  float64 // arrivals per second between bursts
	BurstRate float64 // arrivals per second inside a burst window
	Interval  time.Duration
	Length    time.Duration
}

// inBurst reports whether t falls inside a burst window.
func (b Burst) inBurst(t time.Duration) bool {
	if b.Interval <= 0 {
		return false
	}
	return t%b.Interval < b.Length
}

// Next implements ArrivalProcess.
func (b Burst) Next(rng *rand.Rand, now time.Duration) time.Duration {
	r := b.BaseRate
	if b.inBurst(now) {
		r = b.BurstRate
	}
	if r <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / r * float64(time.Second))
}
