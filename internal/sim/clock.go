package sim

import (
	"container/heap"
	"time"
)

// Epoch is the fixed wall-time origin of every simulation: virtual
// time t maps to Epoch+t. A fixed origin (rather than time.Now at
// construction) keeps every timestamp handed to real policy code — the
// autoscaler's Evaluate, the token bucket's refill clock — a pure
// function of virtual time.
var Epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback. seq breaks same-instant ties in
// insertion order, so simultaneous events run deterministically.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Clock is the shared virtual clock plus its event queue. It is owned
// by the single goroutine running the simulation; events run inline on
// that goroutine, so everything an event touches is single-threaded.
type Clock struct {
	now  time.Duration
	seq  uint64
	heap eventHeap
}

// NewClock returns a clock at virtual time zero with no events.
func NewClock() *Clock { return &Clock{} }

// VNow returns the current virtual time as an offset from Epoch.
func (c *Clock) VNow() time.Duration { return c.now }

// Now returns the current virtual instant as a wall-typed time — the
// value handed to real policy code expecting a time.Time.
func (c *Clock) Now() time.Time { return Epoch.Add(c.now) }

// At schedules fn at virtual time t (clamped to now: the past cannot
// be scheduled, only the present).
func (c *Clock) At(t time.Duration, fn func()) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	heap.Push(&c.heap, event{at: t, seq: c.seq, fn: fn})
}

// After schedules fn d from now.
func (c *Clock) After(d time.Duration, fn func()) { c.At(c.now+d, fn) }

// Run processes events in (time, seq) order until the queue is empty.
// Event handlers schedule further events; the loop ends when the
// simulation has nothing left to do.
func (c *Clock) Run() {
	for len(c.heap) > 0 {
		e := heap.Pop(&c.heap).(event)
		c.now = e.at
		e.fn()
	}
}

// Pending returns the number of scheduled events (tests).
func (c *Clock) Pending() int { return len(c.heap) }
