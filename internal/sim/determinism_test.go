package sim

import (
	"testing"
)

// TestScenarioDeterminism is the simulator's core contract: every
// named scenario, re-run with the same seed, produces a byte-identical
// report. The first run is shared with the per-scenario assertion
// tests; the second is fresh, so the comparison covers the whole
// pipeline — arrival RNGs, the router's pick RNG under SerialScatter,
// WRR credit state, admission refill, autoscaler hysteresis, and the
// report rendering itself.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			first := runScenario(t, sc.Name).Report()
			again, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if second := again.Report(); first != second {
				t.Errorf("same seed, different reports:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
			}
		})
	}
}

// TestSeedChangesOutcome guards against the opposite failure: a seed
// that doesn't actually reach the generators would make every run
// identical. A different seed must change a Poisson-driven scenario's
// arrival count (and with it the report).
func TestSeedChangesOutcome(t *testing.T) {
	sc, ok := ByName("zone-outage")
	if !ok {
		t.Fatal("no zone-outage scenario")
	}
	base := runScenario(t, "zone-outage")
	sc.Seed = 42
	other, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if base.Report() == other.Report() {
		t.Error("seed 1 and seed 42 produced identical reports; the seed is not reaching the generators")
	}
}
