package sim

import (
	"errors"
	"math"
	"time"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/control"
	"newtonadmm/internal/router"
	"newtonadmm/internal/serve"
)

// replicaConfig shapes one virtual replica. totalClasses > 0 selects a
// class shard (PartialScores plane); 0 selects a full replica (Predict
// plane, backed by a real serve.Batcher).
type replicaConfig struct {
	classes, features int
	totalClasses      int
	shardIndex        int
	shardCount        int
	shard             router.ShardRange
	zone              string

	maxBatch   int
	linger     time.Duration
	queueDepth int // per priority class, mirroring the real batcher's queues
	service    cluster.ServiceTimeModel
	net        cluster.NetworkModel
}

// vjob is one enqueued scatter leg: the rows of one client request on
// one replica, tied back to the request record for completion
// accounting.
type vjob struct {
	rec  *reqRecord
	pri  control.Priority
	rows int
}

// SimReplica is a virtual replica: a router.Backend whose data plane
// costs virtual time instead of wall time. Its queue mirrors the real
// batcher's semantics — bounded per-class admission queues drained by
// the REAL control.WRR scheduler, batch formation with a linger window
// measured from formation — and its service time comes from the
// calibrated cluster.ServiceTimeModel. Full replicas additionally pass
// every admitted request through a REAL serve.Batcher (linger disabled,
// deterministic scorer), so the production submit/dequeue/score path
// runs on every simulated request.
//
// All methods run on the simulation goroutine (the router is built with
// SerialScatter and its wall health monitor disabled), so the virtual
// state needs no locking.
type SimReplica struct {
	s       *Sim
	cfg     replicaConfig
	version int64

	bat *serve.Batcher   // real serving path; nil for class shards
	rep *router.Replica  // pool entry, set at registration

	wrr         *control.WRR
	waiting     [control.NumPriorities][]*vjob
	forming     []*vjob
	formingRows int
	gen         uint64 // linger-timer generation: launch invalidates pending timers
	serving     bool
	closed      bool
}

func newSimReplica(s *Sim, cfg replicaConfig) *SimReplica {
	r := &SimReplica{s: s, cfg: cfg, version: 1, wrr: control.NewWRR(control.DefaultWeights)}
	if cfg.totalClasses == 0 {
		r.bat = serve.NewBatcher(fakeSource{scorer: &fakeScorer{classes: cfg.classes, features: cfg.features}}, serve.BatcherConfig{
			MaxBatch:  cfg.maxBatch,
			MaxLinger: -1, // wall lingering would not advance virtual time
			SampleEvery: -1,
		})
	}
	return r
}

// Meta implements router.Backend; it doubles as the health probe.
func (r *SimReplica) Meta() (router.Meta, error) {
	if r.closed {
		return router.Meta{}, serve.ErrClosed
	}
	m := router.Meta{Features: r.cfg.features, Version: r.version, Zone: r.cfg.zone}
	if r.cfg.totalClasses > 0 {
		m.Classes = r.cfg.shard.Width() + 1
		m.ShardIndex = r.cfg.shardIndex
		m.ShardCount = r.cfg.shardCount
		m.ShardLow = r.cfg.shard.Low
		m.ShardHigh = r.cfg.shard.High
		m.TotalClasses = r.cfg.totalClasses
	} else {
		m.Classes = r.cfg.classes
		m.ShardLow, m.ShardHigh = 0, r.cfg.classes-1
		m.TotalClasses = r.cfg.classes
	}
	return m, nil
}

// Predict implements router.Backend (full-replica data plane): admit
// into the virtual queue, then run the rows through the real batcher so
// the production serve path executes too.
func (r *SimReplica) Predict(b *router.Batch, out []int) error {
	if r.closed {
		return serve.ErrClosed
	}
	if err := r.enqueue(b); err != nil {
		return err
	}
	rows := b.DenseRows()
	for i, row := range rows {
		t, err := r.bat.SubmitDensePri(row, nil, b.Priority, nil)
		if err != nil {
			return err
		}
		class, err := t.Wait()
		if err != nil {
			return err
		}
		out[i] = class
	}
	return nil
}

// Proba implements router.Backend.
func (r *SimReplica) Proba(b *router.Batch, out []float64) error {
	if r.closed {
		return serve.ErrClosed
	}
	if err := r.enqueue(b); err != nil {
		return err
	}
	c := r.cfg.classes
	for i, row := range b.DenseRows() {
		t, err := r.bat.SubmitDensePri(row, out[i*c:(i+1)*c], b.Priority, nil)
		if err != nil {
			return err
		}
		if _, err := t.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// PartialScores implements router.Backend (class-sharded data plane):
// the shard's explicit-class logits are a pure function of (row,
// absolute class), so sibling replicas of the same range produce
// bit-identical tiles and failover cannot change a prediction.
func (r *SimReplica) PartialScores(b *router.Batch, cols int, out []float64) (int64, error) {
	if r.closed {
		return 0, serve.ErrClosed
	}
	if cols != r.cfg.shard.Width() {
		return 0, serve.ErrModelShapeChanged
	}
	if err := r.enqueue(b); err != nil {
		return 0, err
	}
	for i, row := range b.DenseRows() {
		for c := 0; c < cols; c++ {
			out[i*cols+c] = logitOf(row, r.cfg.shard.Low+c)
		}
	}
	return r.version, nil
}

// Reload implements router.Backend.
func (r *SimReplica) Reload() (int64, error) {
	if r.closed {
		return 0, serve.ErrClosed
	}
	r.version++
	return r.version, nil
}

// Close implements router.Backend.
func (r *SimReplica) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.bat != nil {
		r.bat.Close()
	}
}

// idle reports whether the replica holds no virtual work — the
// autoscaler only retires idle replicas (the pool's Drain spin is
// wall-clock and must not be entered with virtual backlog).
func (r *SimReplica) idle() bool {
	if r.serving || r.forming != nil {
		return false
	}
	for c := range r.waiting {
		if len(r.waiting[c]) > 0 {
			return false
		}
	}
	return true
}

// enqueue admits one request's rows into the virtual queue, mirroring
// the real batcher: an idle replica starts forming a batch (lingering
// up to the window for stragglers), a forming batch accepts joiners
// until full, and a busy replica parks the job in its bounded per-class
// queue — full queue is ErrQueueFull backpressure, exactly what the
// real admission queues return, so the real router failover and the
// real rejection taxonomy engage.
func (r *SimReplica) enqueue(b *router.Batch) error {
	j := &vjob{rec: r.s.cur, pri: b.Priority, rows: b.Rows()}
	switch {
	case r.forming != nil: // linger window open: join the forming batch
		r.forming = append(r.forming, j)
		r.formingRows += j.rows
		r.noteEnqueued(j)
		if r.formingRows >= r.cfg.maxBatch {
			r.launch()
		}
	case r.serving: // busy: bounded per-class backlog
		if len(r.waiting[j.pri]) >= r.cfg.queueDepth {
			return serve.ErrQueueFull
		}
		r.waiting[j.pri] = append(r.waiting[j.pri], j)
		r.noteEnqueued(j)
	default: // idle: start a batch
		r.forming = append(make([]*vjob, 0, 4), j)
		r.formingRows = j.rows
		r.noteEnqueued(j)
		if r.formingRows >= r.cfg.maxBatch || r.cfg.linger <= 0 {
			r.launch()
		} else {
			r.armLinger()
		}
	}
	return nil
}

// noteEnqueued records one accepted leg: the request gains a pending
// leg and the pool's inflight gauge gains the backlog, so the REAL P2C
// picker sees virtual queue depth when comparing replicas.
func (r *SimReplica) noteEnqueued(j *vjob) {
	if j.rec != nil {
		j.rec.legs++
	}
	r.s.vInflight++
	if r.rep != nil {
		r.rep.AdjustLoad(1)
	}
}

// armLinger schedules the linger flush for the currently forming batch.
// The generation token cancels the timer when the batch launches early
// (filled up) — the virtual analogue of timer.Stop.
func (r *SimReplica) armLinger() {
	r.gen++
	g := r.gen
	r.s.clock.After(r.cfg.linger, func() {
		if r.closed || r.serving || r.forming == nil || r.gen != g {
			return
		}
		r.launch()
	})
}

// launch moves the forming batch into service for its modeled batch
// time.
func (r *SimReplica) launch() {
	r.gen++
	batch, rows := r.forming, r.formingRows
	r.forming, r.formingRows = nil, 0
	r.serving = true
	r.s.clock.After(r.cfg.service.BatchTime(rows), func() { r.complete(batch) })
}

// complete finishes a served batch: each leg lands after its wire cost,
// then the backlog refills the next batch through the real WRR
// scheduler (linger again only if the drain left the batch short).
func (r *SimReplica) complete(batch []*vjob) {
	r.serving = false
	now := r.s.clock.VNow()
	for _, j := range batch {
		r.s.legDone(r, j, now+r.wireCost(j.rows))
	}
	if r.closed {
		return
	}
	next, rows := r.takeWaiting()
	if len(next) == 0 {
		return
	}
	r.forming, r.formingRows = next, rows
	if r.formingRows >= r.cfg.maxBatch || r.cfg.linger <= 0 {
		r.launch()
	} else {
		r.armLinger()
	}
}

// takeWaiting drains up to one batch from the per-class backlog using
// the real weighted-round-robin scheduler, so a background flood gets
// exactly its credit share of batch slots — the starvation bound the
// control plane pins.
func (r *SimReplica) takeWaiting() ([]*vjob, int) {
	var out []*vjob
	rows := 0
	pending := func(c control.Priority) int { return len(r.waiting[c]) }
	for rows < r.cfg.maxBatch {
		c, ok := r.wrr.Pick(pending)
		if !ok {
			break
		}
		j := r.waiting[c][0]
		copy(r.waiting[c], r.waiting[c][1:])
		r.waiting[c] = r.waiting[c][:len(r.waiting[c])-1]
		out = append(out, j)
		rows += j.rows
	}
	return out, rows
}

// wireCost models the request/response transfer for one leg: one
// point-to-point hop each way on the scenario's interconnect, request
// sized by the feature rows, response by the score tile.
func (r *SimReplica) wireCost(rows int) time.Duration {
	reqBytes := rows*r.cfg.features*8 + 64
	respCols := 1
	if r.cfg.totalClasses > 0 {
		respCols = r.cfg.shard.Width()
	}
	respBytes := rows*respCols*8 + 64
	return r.cfg.net.BcastCost(2, reqBytes) + r.cfg.net.BcastCost(2, respBytes)
}

// fakeScorer is the deterministic stand-in model behind each full
// replica's real batcher: logits are a pure function of (row, class),
// so predictions depend only on the request and never on which replica
// served it.
type fakeScorer struct {
	classes, features int
}

func (f *fakeScorer) Classes() int  { return f.classes }
func (f *fakeScorer) Features() int { return f.features }

// logitOf is the shared deterministic logit function (also used for
// class-shard partial tiles).
func logitOf(row []float64, class int) float64 {
	s := 0.0
	for i, v := range row {
		s += v * float64(i%7+1)
	}
	return math.Sin(s + 1.7*float64(class))
}

func (f *fakeScorer) PredictDense(rows [][]float64, out []int) error {
	for i, row := range rows {
		best, bestScore := f.classes-1, 0.0 // implicit reference class scores 0
		for c := 0; c < f.classes-1; c++ {
			if sc := logitOf(row, c); sc > bestScore {
				best, bestScore = c, sc
			}
		}
		out[i] = best
	}
	return nil
}

func (f *fakeScorer) ProbaDense(rows [][]float64, out []float64) error {
	for i, row := range rows {
		dst := out[i*f.classes : (i+1)*f.classes]
		sum := 0.0
		for c := range dst {
			l := 0.0
			if c < f.classes-1 {
				l = logitOf(row, c)
			}
			dst[c] = math.Exp(l)
			sum += dst[c]
		}
		for c := range dst {
			dst[c] /= sum
		}
	}
	return nil
}

func (f *fakeScorer) PredictCSR([][]int, [][]float64, []int) error {
	return errors.New("sim: sparse rows not simulated")
}

func (f *fakeScorer) ProbaCSR([][]int, [][]float64, []float64) error {
	return errors.New("sim: sparse rows not simulated")
}

// fakeSource hands out the scorer without device bookkeeping.
type fakeSource struct{ scorer *fakeScorer }

func (s fakeSource) Acquire() (serve.Scorer, func(), error) { return s.scorer, func() {}, nil }
