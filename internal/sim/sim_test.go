package sim

import (
	"math/rand"
	"testing"
	"time"

	"newtonadmm/internal/cluster"
	"newtonadmm/internal/control"
	"newtonadmm/internal/router"
)

func TestClockRunsEventsInTimeThenInsertionOrder(t *testing.T) {
	c := NewClock()
	var got []int
	c.At(20*time.Millisecond, func() { got = append(got, 3) })
	c.At(10*time.Millisecond, func() { got = append(got, 1) })
	c.At(10*time.Millisecond, func() { got = append(got, 2) }) // tie: insertion order
	c.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", got)
	}
	if c.VNow() != 20*time.Millisecond {
		t.Errorf("final VNow = %v, want 20ms", c.VNow())
	}
	if c.Now() != Epoch.Add(20*time.Millisecond) {
		t.Errorf("Now = %v, want Epoch+20ms", c.Now())
	}
}

func TestClockClampsPastAndChainsEvents(t *testing.T) {
	c := NewClock()
	var got []string
	c.At(10*time.Millisecond, func() {
		got = append(got, "a")
		// Scheduling before now clamps to now and still runs.
		c.At(5*time.Millisecond, func() { got = append(got, "clamped") })
		c.After(5*time.Millisecond, func() { got = append(got, "b") })
	})
	c.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "clamped" || got[2] != "b" {
		t.Errorf("events = %v, want [a clamped b]", got)
	}
	if c.Pending() != 0 {
		t.Errorf("pending = %d after Run, want 0", c.Pending())
	}
}

func TestArrivalProcesses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (Constant{Every: time.Millisecond}).Next(rng, 0); got != time.Millisecond {
		t.Errorf("Constant.Next = %v, want 1ms", got)
	}

	d := Diurnal{Base: 100, Peak: 1100, Period: 24 * time.Hour}
	if r := d.Rate(0); r != 100 {
		t.Errorf("diurnal trough rate = %v, want 100", r)
	}
	if r := d.Rate(12 * time.Hour); r < 1099.999 || r > 1100.001 {
		t.Errorf("diurnal crest rate = %v, want 1100", r)
	}

	b := Burst{BaseRate: 10, BurstRate: 1000, Interval: time.Second, Length: 100 * time.Millisecond}
	if !b.inBurst(50 * time.Millisecond) {
		t.Error("50ms should be inside the burst window")
	}
	if b.inBurst(500 * time.Millisecond) {
		t.Error("500ms should be outside the burst window")
	}

	// Poisson gaps are positive and deterministic under a fixed seed.
	p := Poisson{Rate: 1000}
	g1 := p.Next(rand.New(rand.NewSource(7)), 0)
	g2 := p.Next(rand.New(rand.NewSource(7)), 0)
	if g1 != g2 {
		t.Errorf("same seed, different Poisson gaps: %v vs %v", g1, g2)
	}
	if g1 <= 0 {
		t.Errorf("Poisson gap = %v, want > 0", g1)
	}
}

// TestBatchAmortization pins that the virtual replica actually batches:
// the arrival rate (50k/s) is far beyond single-row service capacity
// (~9.9k/s at 100µs+1µs/row) but well within batched capacity
// (64 rows per 164µs launch). Everything completes only if rows
// coalesce into shared launches, exactly like the real batcher.
func TestBatchAmortization(t *testing.T) {
	res, err := Run(Scenario{
		Name:     "amortization",
		Duration: 200 * time.Millisecond,
		Replicas: 1,
		Classes:  10, Features: 16,
		MaxBatch: 64, Linger: 100 * time.Microsecond, QueueDepth: 64,
		Service: serviceModel100us1us(),
		Load: []ClassLoad{
			{Priority: control.Interactive, Process: Constant{Every: 20 * time.Microsecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 10000 {
		t.Fatalf("requests = %d, want 10000", res.Requests)
	}
	if res.Completed != res.Requests || res.Rejected != 0 {
		t.Errorf("completed %d, rejected %d of %d: single-row service cannot keep up, so batching must have failed",
			res.Completed, res.Rejected, res.Requests)
	}
}

// TestWRRShareUnderOverload drives one slow replica with competing
// interactive and background floods whose combined demand exceeds
// capacity. The real WRR scheduler's 16:1 dequeue weights give
// interactive all the slots its own demand needs (it completes fully)
// while background degrades to the leftover share — but never to zero:
// the starvation bound has two sides.
func TestWRRShareUnderOverload(t *testing.T) {
	res, err := Run(Scenario{
		Name:     "wrr-share",
		Duration: time.Second,
		Replicas: 1,
		Classes:  10, Features: 16,
		MaxBatch: 8, Linger: -1, QueueDepth: 512,
		Service: serviceModel100us1us(),
		Load: []ClassLoad{
			{Priority: control.Interactive, Process: Constant{Every: 15 * time.Microsecond}},
			{Priority: control.Background, Process: Constant{Every: 15 * time.Microsecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, bg := res.Class(control.Interactive), res.Class(control.Background)
	if inter.Completed != inter.Arrived || inter.RejectedTotal() != 0 {
		t.Errorf("interactive completed %d of %d (rejected %d): want full service under contention",
			inter.Completed, inter.Arrived, inter.RejectedTotal())
	}
	if bg.Completed == 0 {
		t.Error("background starved: completed = 0, want > 0 (weight >= 1 guarantees progress)")
	}
	if bg.Completed >= bg.Arrived {
		t.Errorf("background completed %d of %d: the overload must cost the flood, not interactive",
			bg.Completed, bg.Arrived)
	}
}

// TestClassModeLegsAndMerge runs a small R=1 x S=3 grid and checks the
// class-sharded data plane end to end: every request scatters one leg
// per shard and completes when the slowest leg lands.
func TestClassModeLegsAndMerge(t *testing.T) {
	res, err := Run(Scenario{
		Name:     "class-legs",
		Duration: 100 * time.Millisecond,
		Mode:     router.ModeClass,
		Replicas: 1, Shards: 3,
		Classes: 10, Features: 16,
		MaxBatch: 16, Linger: -1, QueueDepth: 128,
		Service: serviceModel100us1us(),
		Load: []ClassLoad{
			{Priority: control.Interactive, Process: Constant{Every: time.Millisecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 {
		t.Fatalf("requests = %d, want 100", res.Requests)
	}
	if res.Completed != res.Requests || res.Errors != 0 {
		t.Errorf("completed %d, errors %d of %d requests", res.Completed, res.Errors, res.Requests)
	}
	// One leg per shard, service >= 101µs each: a request can never
	// complete faster than one shard's batch time.
	if p50 := res.Class(control.Interactive).Latency.P50; p50 < 100*time.Microsecond {
		t.Errorf("p50 = %v, want >= the 100µs shard service floor", p50)
	}
}

func serviceModel100us1us() cluster.ServiceTimeModel {
	return cluster.ServiceTimeModel{Name: "test-100us-1us", Base: 100 * time.Microsecond, PerRow: time.Microsecond}
}
