package sim

import (
	"fmt"
	"strings"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/metrics"
)

// CoverageTransition is one change of the pool's coverage status.
type CoverageTransition struct {
	At     time.Duration
	Status string
}

// ScalePoint is one point of the autoscaler's replica trajectory.
type ScalePoint struct {
	At       time.Duration
	Replicas int
}

// ClassStats is the per-service-class accounting of one scenario run.
type ClassStats struct {
	Class     string
	Arrived   int64
	Completed int64
	Errors    int64
	// Rejected is indexed by control.Reason.
	Rejected [numReasons]int64
	// Latency summarizes the class's virtual request latencies
	// (arrival to last leg landing, wire cost included).
	Latency metrics.Snapshot
}

// RejectedTotal sums the class's rejections across reasons.
func (c ClassStats) RejectedTotal() int64 {
	var n int64
	for _, v := range c.Rejected {
		n += v
	}
	return n
}

// ScenarioResult is the deterministic outcome of one scenario run. Its
// Report rendering is the regression surface: same scenario + same
// seed must produce byte-identical text.
type ScenarioResult struct {
	Name     string
	Seed     int64
	Mode     string
	Duration time.Duration

	Requests    int64
	Completed   int64
	Rejected    int64
	Errors      int64
	Failovers   int64
	SkewRetries int64

	Classes [control.NumPriorities]ClassStats

	Coverage []CoverageTransition

	AutoEnabled                   bool
	AutoUps, AutoDowns, AutoFails uint64
	Scale                         []ScalePoint
	FinalReplicas                 int
}

// result snapshots the simulator's accounting into a ScenarioResult.
func (s *Sim) result() *ScenarioResult {
	st := s.rtr.Stats()
	res := &ScenarioResult{
		Name:          s.sc.Name,
		Seed:          s.sc.Seed,
		Mode:          string(s.sc.Mode),
		Duration:      s.sc.Duration,
		Failovers:     st.Failovers,
		SkewRetries:   st.SkewRetry,
		Coverage:      s.coverage,
		Scale:         s.scale,
		FinalReplicas: len(s.rtr.Pool().Replicas()),
	}
	for c := 0; c < control.NumPriorities; c++ {
		cs := ClassStats{
			Class:     control.Priority(c).String(),
			Arrived:   s.arrived[c],
			Completed: s.completed[c],
			Errors:    s.errored[c],
			Rejected:  s.rejected[c],
			Latency:   s.lat[c].Snapshot(),
		}
		res.Classes[c] = cs
		res.Requests += cs.Arrived
		res.Completed += cs.Completed
		res.Errors += cs.Errors
		res.Rejected += cs.RejectedTotal()
	}
	if s.as != nil {
		res.AutoEnabled = true
		res.AutoUps = s.as.Ups()
		res.AutoDowns = s.as.Downs()
		res.AutoFails = s.as.Failures()
	}
	return res
}

// Class returns the stats of one service class.
func (r *ScenarioResult) Class(p control.Priority) ClassStats {
	return r.Classes[p]
}

// Report renders the run as stable text — the byte-identity surface
// the determinism suite pins and the artifact the CI job uploads.
func (r *ScenarioResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s seed=%d mode=%s duration=%v\n", r.Name, r.Seed, r.Mode, r.Duration)
	fmt.Fprintf(&b, "totals requests=%d completed=%d rejected=%d errors=%d failovers=%d skew_retries=%d\n",
		r.Requests, r.Completed, r.Rejected, r.Errors, r.Failovers, r.SkewRetries)
	for _, cs := range r.Classes {
		fmt.Fprintf(&b, "class %s arrived=%d completed=%d errors=%d queue_full=%d rate_limited=%d cost_rejected=%d",
			cs.Class, cs.Arrived, cs.Completed, cs.Errors,
			cs.Rejected[control.ReasonQueueFull], cs.Rejected[control.ReasonRateLimited], cs.Rejected[control.ReasonCostRejected])
		fmt.Fprintf(&b, " p50=%v p95=%v p99=%v max=%v\n",
			cs.Latency.P50, cs.Latency.P95, cs.Latency.P99, cs.Latency.Max)
	}
	b.WriteString("coverage")
	for _, tr := range r.Coverage {
		fmt.Fprintf(&b, " %v=%s", tr.At, tr.Status)
	}
	b.WriteString("\n")
	if r.AutoEnabled {
		fmt.Fprintf(&b, "autoscale ups=%d downs=%d refused=%d trajectory", r.AutoUps, r.AutoDowns, r.AutoFails)
		for _, p := range r.Scale {
			fmt.Fprintf(&b, " %v=%d", p.At, p.Replicas)
		}
		b.WriteString("\n")
	} else {
		b.WriteString("autoscale disabled\n")
	}
	fmt.Fprintf(&b, "final replicas=%d\n", r.FinalReplicas)
	return b.String()
}
