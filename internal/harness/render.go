package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"newtonadmm/internal/metrics"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a titled table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row (cells are stringified with %v).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatDuration renders durations at millisecond-ish precision.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// WriteTrace renders a convergence trace as a (time, objective, accuracy)
// series, the text equivalent of the paper's line plots.
func WriteTrace(w io.Writer, tr *metrics.Trace) error {
	tab := NewTable(
		fmt.Sprintf("series: %s on %s", tr.Solver, tr.Dataset),
		"epoch", "time", "objective", "test-acc",
	)
	for _, p := range tr.Points {
		acc := "-"
		if p.TestAccuracy == p.TestAccuracy { // not NaN
			acc = fmt.Sprintf("%.4f", p.TestAccuracy)
		}
		tab.Add(p.Epoch, p.Time, p.Objective, acc)
	}
	return tab.Render(w)
}

// sampleTracePoints thins a trace to at most k points for compact output,
// always keeping the first and last.
func sampleTracePoints(tr *metrics.Trace, k int) *metrics.Trace {
	n := len(tr.Points)
	if n <= k || k < 2 {
		return tr
	}
	out := &metrics.Trace{Solver: tr.Solver, Dataset: tr.Dataset}
	for i := 0; i < k-1; i++ {
		out.Points = append(out.Points, tr.Points[i*(n-1)/(k-1)])
	}
	out.Points = append(out.Points, tr.Points[n-1])
	return out
}
