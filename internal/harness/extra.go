package harness

import (
	"fmt"
	"io"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
)

func init() {
	register(Experiment{
		ID:    "extra-jacobi",
		Title: "Extra: Jacobi-preconditioned CG on the ill-conditioned regime",
		Paper: "beyond the paper: diagonal preconditioning of the inner CG " +
			"solve, most useful exactly where the paper's Figure 3 shows " +
			"GIANT struggling (ill-conditioned CIFAR-10-like spectra)",
		Run: runExtraJacobi,
	})
	register(Experiment{
		ID:    "extra-disco",
		Title: "Extra: communication-round census of the second-order field (incl. DiSCO)",
		Paper: "§1.2/§3: DiSCO is named among the compared second-order methods " +
			"but not plotted; its inner distributed PCG pays one allreduce " +
			"per iteration, so its round count per epoch dwarfs Newton-ADMM's " +
			"single gather+scatter",
		Run: runExtraDiSCO,
	})
}

// runExtraDiSCO complements Figure 1: the same MNIST problem solved by
// Newton-ADMM, GIANT, and DiSCO, reporting communication rounds per epoch
// alongside epoch time and final objective — the structural quantity the
// paper's communication argument is about.
func runExtraDiSCO(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-3 // DiSCO's damped steps favor moderate regularization
	const ranks = 4
	epochs := cfg.epochs(30)
	ds, err := generate(datasets.MNISTLike(cfg.Scale))
	if err != nil {
		return err
	}
	section(w, "Second-order round census — %s, %d ranks, %d epochs", ds.Name, ranks, epochs)

	tab := NewTable("solvers",
		"solver", "rounds/epoch", "avg epoch time", "final objective")
	ccfg := cfg.cluster(ranks)

	aRes, err := core.Solve(ccfg, ds, admmOptions(epochs, lambda, false))
	if err != nil {
		return fmt.Errorf("newton-admm: %w", err)
	}
	aFinal, _ := aRes.Trace.Final()
	tab.Add("newton-admm", float64(aRes.Stats[0].Rounds)/float64(maxi(aFinal.Epoch, 1)),
		aRes.Trace.AvgEpochTime(), aFinal.Objective)

	gRes, err := baselines.SolveGIANT(ccfg, ds, giantOptions(epochs, lambda, false))
	if err != nil {
		return fmt.Errorf("giant: %w", err)
	}
	gFinal, _ := gRes.Trace.Final()
	tab.Add("giant", float64(gRes.Stats[0].Rounds)/float64(maxi(gFinal.Epoch, 1)),
		gRes.Trace.AvgEpochTime(), gFinal.Objective)

	dRes, err := baselines.SolveDiSCO(ccfg, ds, baselines.DiSCOOptions{
		Epochs: epochs, Lambda: lambda, PCGIters: 10, PCGTol: 1e-4,
	})
	if err != nil {
		return fmt.Errorf("disco: %w", err)
	}
	dFinal, _ := dRes.Trace.Final()
	tab.Add("disco", float64(dRes.Stats[0].Rounds)/float64(maxi(dFinal.Epoch, 1)),
		dRes.Trace.AvgEpochTime(), dFinal.Objective)

	return tab.Render(w)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runExtraJacobi compares plain and Jacobi-preconditioned Newton-ADMM on
// the ill-conditioned CIFAR analogue: same CG budget, final objective
// tells how much more progress the preconditioned solve extracts per
// iteration.
func runExtraJacobi(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	const ranks = 4
	epochs := cfg.epochs(30)
	ds, err := generate(datasets.CIFARLike(cfg.Scale))
	if err != nil {
		return err
	}
	section(w, "Jacobi ablation — %s, %d ranks, %d epochs, CG budget 10", ds.Name, ranks, epochs)

	tab := NewTable("preconditioning",
		"cg preconditioner", "final objective", "avg epoch time")
	for _, jacobi := range []bool{false, true} {
		opts := admmOptions(epochs, lambda, false)
		opts.Jacobi = jacobi
		res, err := core.Solve(cfg.cluster(ranks), ds, opts)
		if err != nil {
			return err
		}
		name := "none"
		if jacobi {
			name = "jacobi"
		}
		final, _ := res.Trace.Final()
		tab.Add(name, final.Objective, res.Trace.AvgEpochTime())
	}
	return tab.Render(w)
}
