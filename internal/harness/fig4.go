package harness

import (
	"fmt"
	"io"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/cg"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: Newton-ADMM vs synchronous SGD (objective & test accuracy vs time)",
		Paper: "Newton-ADMM reaches matching accuracy in much less time: " +
			"22.5x (HIGGS), 2.48x (MNIST), 2.06x (CIFAR-10), 3.69x (E18); " +
			"weak scaling with 8 workers (E18: 16)",
		Run: runFig4,
	})
}

// runFig4 reproduces the first-order comparison: weak scaling with 8
// workers (16 for the E18 analogue), lambda = 1e-5, 100 epochs each.
// SGD uses batch 128 with the best step from a sweep; Newton-ADMM sweeps
// CG iterations {10,20,30} with tolerance 1e-10 and reports the best, as
// the paper does.
func runFig4(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	epochs := cfg.epochs(100)
	section(w, "Figure 4 — vs synchronous SGD, %d epochs, network %s", epochs, cfg.Network.Name)

	summary := NewTable("summary",
		"dataset", "ranks", "solver", "final objective", "final test acc",
		"total time", "speedup to SGD's best F")

	for _, pcfg := range presetConfigs(cfg.Scale) {
		ranks := 8
		if pcfg.Name == "e18-like" {
			ranks = 16
		}
		// Weak scaling: shard size fixed at the preset size / 8.
		perRank := pcfg.Samples / 8
		if perRank < 8 {
			perRank = 8
		}
		wcfg := pcfg
		wcfg.Samples = perRank * ranks
		ds, err := generate(wcfg)
		if err != nil {
			return err
		}
		ccfg := cfg.cluster(ranks)

		sgdTrace, sgdStep, err := bestSGD(ccfg, ds, lambda, epochs, cfg.Quick)
		if err != nil {
			return fmt.Errorf("%s sgd: %w", ds.Name, err)
		}
		admmTrace, admmCG, err := bestADMM(ccfg, ds, lambda, epochs, cfg.Quick)
		if err != nil {
			return fmt.Errorf("%s admm: %w", ds.Name, err)
		}

		// Speedup: time for each solver to reach SGD's best objective.
		target := sgdTrace.BestObjective()
		sgdTime, _ := sgdTrace.TimeToObjective(target)
		admmTime, admmReached := admmTrace.TimeToObjective(target)
		speed := "n/a"
		if admmReached && admmTime > 0 {
			speed = fmt.Sprintf("%.2fx", float64(sgdTime)/float64(admmTime))
		}

		aFinal, _ := admmTrace.Final()
		sFinal, _ := sgdTrace.Final()
		summary.Add(ds.Name, ranks, fmt.Sprintf("newton-admm (cg=%d)", admmCG),
			aFinal.Objective, aFinal.TestAccuracy, aFinal.Time, speed)
		summary.Add(ds.Name, ranks, fmt.Sprintf("sync-sgd (step=%.0e)", sgdStep),
			sFinal.Objective, sFinal.TestAccuracy, sFinal.Time, "1x")

		for _, tr := range []*metrics.Trace{admmTrace, sgdTrace} {
			tr.Dataset = ds.Name
			if err := WriteTrace(w, sampleTracePoints(tr, 10)); err != nil {
				return err
			}
		}
	}
	return summary.Render(w)
}

// bestSGD sweeps the step size (the paper sweeps 1e-8..1e8; we cover the
// productive middle decades) and returns the best trace.
func bestSGD(ccfg clusterConfig, ds *datasets.Dataset, lambda float64, epochs int, quick bool) (*metrics.Trace, float64, error) {
	steps := []float64{1e-1, 1, 1e1}
	if quick {
		steps = []float64{1}
	}
	var best *metrics.Trace
	var bestStep float64
	for _, step := range steps {
		res, err := baselines.SolveSyncSGD(ccfg, ds, baselines.SGDOptions{
			Epochs: epochs, Lambda: lambda, BatchSize: 128, Step: step,
			Seed: 4, EvalTestAccuracy: true,
		})
		if err != nil {
			return nil, 0, err
		}
		if best == nil || res.Trace.BestObjective() < best.BestObjective() {
			tr := res.Trace
			best, bestStep = &tr, step
		}
	}
	return best, bestStep, nil
}

// bestADMM sweeps CG iterations {10,20,30} at tolerance 1e-10 (the
// paper's Figure 4 protocol) and returns the best trace.
func bestADMM(ccfg clusterConfig, ds *datasets.Dataset, lambda float64, epochs int, quick bool) (*metrics.Trace, int, error) {
	cgIters := []int{10, 20, 30}
	if quick {
		cgIters = []int{10}
	}
	var best *metrics.Trace
	var bestCG int
	for _, iters := range cgIters {
		opts := admmOptions(epochs, lambda, true)
		opts.CG = cg.Options{MaxIters: iters, RelTol: 1e-10}
		res, err := core.Solve(ccfg, ds, opts)
		if err != nil {
			return nil, 0, err
		}
		if best == nil || res.Trace.BestObjective() < best.BestObjective() {
			tr := res.Trace
			best, bestCG = &tr, iters
		}
	}
	return best, bestCG, nil
}
