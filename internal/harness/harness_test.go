package harness

import (
	"bytes"
	"strings"
	"testing"

	"newtonadmm/internal/metrics"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5",
		"ablation-penalty", "ablation-network", "ablation-inexact",
		"extra-disco", "extra-jacobi",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Experiments()), len(want))
	}
	for _, e := range Experiments() {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incompletely described", e.ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown id resolved")
	}
}

// TestAllExperimentsRunQuick smoke-tests every experiment at quick scale.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(RunConfig{Quick: true}, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s produced almost no output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("%s missing section header", e.ID)
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "a", "bee", "c")
	tab.Add(1, 2.5, "x")
	tab.Add("long-cell", 3.14159, "y")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected table layout:\n%s", out)
	}
	if !strings.Contains(out, "long-cell") || !strings.Contains(out, "3.142") {
		t.Fatalf("cells not rendered:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.Add(1, 2)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestSampleTracePoints(t *testing.T) {
	tr := &metrics.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(metrics.Point{Epoch: i})
	}
	thin := sampleTracePoints(tr, 10)
	if len(thin.Points) != 10 {
		t.Fatalf("thinned to %d points", len(thin.Points))
	}
	if thin.Points[0].Epoch != 0 || thin.Points[9].Epoch != 99 {
		t.Fatal("endpoints not preserved")
	}
	// Short traces pass through.
	short := &metrics.Trace{Points: tr.Points[:5]}
	if got := sampleTracePoints(short, 10); len(got.Points) != 5 {
		t.Fatal("short trace was modified")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[string]string{}
	_ = cases
	if got := formatDuration(1500 * 1000 * 1000); !strings.Contains(got, "s") {
		t.Fatalf("formatDuration(1.5s)=%q", got)
	}
}
