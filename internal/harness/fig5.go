package harness

import (
	"fmt"
	"io"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: weak scaling on E18 with 16 workers, lambda in {1e-3, 1e-5}",
		Paper: "avg epoch time 1.87s (Newton-ADMM) vs 2.44s (GIANT); " +
			"Newton-ADMM converges faster at both lambdas despite the " +
			"high-dimensional Hessian-free-only regime",
		Run: runFig5,
	})
}

// runFig5 reproduces the high-dimensional sparse experiment: the E18
// analogue spread over 16 ranks (weak scaling), where the Hessian can
// only be touched through products.
func runFig5(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const ranks = 16
	epochs := cfg.epochs(30)
	base := datasets.E18Like(cfg.Scale)
	perRank := base.Samples / 8
	if perRank < 8 {
		perRank = 8
	}
	base.Samples = perRank * ranks
	ds, err := generate(base)
	if err != nil {
		return err
	}
	section(w, "Figure 5 — %s, %d ranks weak scaling, %d epochs, network %s",
		ds.Name, ranks, epochs, cfg.Network.Name)

	tab := NewTable("summary",
		"lambda", "solver", "avg epoch time", "final objective")
	for _, lambda := range []float64{1e-3, 1e-5} {
		ccfg := cfg.cluster(ranks)
		aRes, err := core.Solve(ccfg, ds, admmOptions(epochs, lambda, false))
		if err != nil {
			return fmt.Errorf("newton-admm lambda=%g: %w", lambda, err)
		}
		gRes, err := baselines.SolveGIANT(ccfg, ds, giantOptions(epochs, lambda, false))
		if err != nil {
			return fmt.Errorf("giant lambda=%g: %w", lambda, err)
		}
		aFinal, _ := aRes.Trace.Final()
		gFinal, _ := gRes.Trace.Final()
		tab.Add(fmt.Sprintf("%.0e", lambda), "newton-admm", aRes.Trace.AvgEpochTime(), aFinal.Objective)
		tab.Add(fmt.Sprintf("%.0e", lambda), "giant", gRes.Trace.AvgEpochTime(), gFinal.Objective)

		if err := WriteTrace(w, sampleTracePoints(&aRes.Trace, 8)); err != nil {
			return err
		}
		if err := WriteTrace(w, sampleTracePoints(&gRes.Trace, 8)); err != nil {
			return err
		}
	}
	return tab.Render(w)
}
