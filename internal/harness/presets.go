package harness

import (
	"newtonadmm/internal/cg"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/linesearch"

	"newtonadmm/internal/baselines"
)

// presetConfigs returns the four Table 1 analogues at the given scale.
func presetConfigs(scale float64) []datasets.Config {
	return datasets.Presets(scale)
}

// paperCG is the inner-solver budget the paper fixes for the fair
// Newton-ADMM vs GIANT comparison: 10 CG iterations at tolerance 1e-4.
func paperCG() cg.Options { return cg.Options{MaxIters: 10, RelTol: 1e-4} }

// paperLS is the paper's line-search budget: at most 10 halvings.
func paperLS() linesearch.Options { return linesearch.Options{MaxIters: 10} }

// admmOptions assembles the paper's Newton-ADMM settings.
func admmOptions(epochs int, lambda float64, evalAcc bool) core.Options {
	return core.Options{
		Epochs:           epochs,
		Lambda:           lambda,
		CG:               paperCG(),
		LineSearch:       paperLS(),
		EvalTestAccuracy: evalAcc,
	}
}

// giantOptions assembles the paper's GIANT settings (same shared
// hyper-parameters, per Figure 1's protocol).
func giantOptions(epochs int, lambda float64, evalAcc bool) baselines.GiantOptions {
	return baselines.GiantOptions{
		Epochs:           epochs,
		Lambda:           lambda,
		CG:               paperCG(),
		LineSearch:       paperLS(),
		EvalTestAccuracy: evalAcc,
	}
}
