// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation (plus the ablations motivated by its design
// claims) and renders their results as text tables and series. Both the
// nadmm-bench CLI and the repository's testing.B benchmarks drive this
// package (see DESIGN.md for where the harness sits in the tree).
package harness

import (
	"fmt"
	"io"
	"sort"

	"newtonadmm/internal/cg"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/newton"
)

// RunConfig tunes an experiment run.
type RunConfig struct {
	// Scale multiplies the preset dataset sizes; <=0 selects 1. The
	// full-scale runs use 1; CI smoke tests use Quick instead.
	Scale float64
	// Epochs overrides the experiment's default epoch budget when > 0.
	Epochs int
	// Network is the interconnect model; zero value selects the paper's
	// InfiniBand100G.
	Network cluster.NetworkModel
	// Quick shrinks datasets and budgets to smoke-test size.
	Quick bool
	// DeviceWorkers caps per-rank accelerator workers (0 = auto).
	DeviceWorkers int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Quick {
		c.Scale = minFloat(c.Scale, 0.05)
	}
	if c.Network == (cluster.NetworkModel{}) {
		c.Network = cluster.InfiniBand100G
	}
	return c
}

func (c RunConfig) epochs(def int) int {
	if c.Epochs > 0 {
		return c.Epochs
	}
	if c.Quick {
		if def > 5 {
			return 5
		}
	}
	return def
}

func (c RunConfig) cluster(ranks int) cluster.Config {
	return cluster.Config{
		Ranks:         ranks,
		Network:       c.Network,
		DeviceWorkers: c.DeviceWorkers,
	}
}

// clusterConfig abbreviates cluster.Config in experiment signatures.
type clusterConfig = cluster.Config

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the harness identifier (e.g. "fig2").
	ID string
	// Title names the paper artifact.
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Run executes the experiment and writes tables/series to w.
	Run func(cfg RunConfig, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in declaration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// generate builds a preset dataset at the run's scale.
func generate(cfg datasets.Config) (*datasets.Dataset, error) {
	return datasets.Generate(cfg)
}

// oracleFStar computes F(x*) with a long single-node Newton run, the
// paper's protocol for the theta criterion of Figure 3.
func oracleFStar(ds *datasets.Dataset, lambda float64) (float64, error) {
	dev := device.New("oracle", 0)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, lambda)
	if err != nil {
		return 0, err
	}
	w := make([]float64, prob.Dim())
	// Budget scales down for very high-dimensional problems (the E18
	// regime): Newton's superlinear convergence makes a shorter run
	// sufficient for a theta = 0.05 reference, and the full budget would
	// dominate the experiment's wall time.
	opts := newton.Options{
		MaxIters: 300, GradTol: 1e-7,
		CG: cg.Options{MaxIters: 200, RelTol: 1e-10},
	}
	if prob.Dim() > 100000 {
		opts.MaxIters = 60
		opts.CG.MaxIters = 50
	}
	newton.Solve(prob, w, opts)
	return prob.Value(w), nil
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func section(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, "== "+format+" ==\n\n", args...)
}
