package harness

import (
	"fmt"
	"io"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: speedup ratio (GIANT time / Newton-ADMM time) to theta < 0.05",
		Paper: "HIGGS ~1.3x constant; E18 strong scaling 18x down to 1.3x; " +
			"CIFAR-10 speedup grows with ranks (ill-conditioning); " +
			"E18 weak scaling omitted (single-node x* infeasible)",
		Run: runFig3,
	})
}

const fig3Theta = 0.05

// speedupAt runs both solvers until the theta target (or the epoch cap)
// and returns GIANT's time-to-target divided by Newton-ADMM's.
func speedupAt(ccfg clusterConfig, ds *datasets.Dataset, lambda, fStar float64, capEpochs int) (ratio float64, aEpochs, gEpochs int, ok bool, err error) {
	target := metrics.RelativeTarget(fStar, fig3Theta)
	aOpts := admmOptions(capEpochs, lambda, false)
	aOpts.TargetObjective = target
	aRes, err := core.Solve(ccfg, ds, aOpts)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("newton-admm: %w", err)
	}
	gOpts := giantOptions(capEpochs, lambda, false)
	gOpts.TargetObjective = target
	gRes, err := baselines.SolveGIANT(ccfg, ds, gOpts)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("giant: %w", err)
	}
	ratio, ok = metrics.SpeedupRatio(&gRes.Trace, &aRes.Trace, fStar, fig3Theta)
	aEpochs, _ = aRes.Trace.EpochsToObjective(metrics.RelativeTarget(fStar, fig3Theta))
	gEpochs, _ = gRes.Trace.EpochsToObjective(metrics.RelativeTarget(fStar, fig3Theta))
	return ratio, aEpochs, gEpochs, ok, nil
}

// runFig3 regenerates both panels of Figure 3. The "optimal" F(x*) comes
// from a long single-node Newton run, the paper's protocol; E18 is
// excluded from the weak-scaling panel exactly as in the paper.
func runFig3(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	capEpochs := cfg.epochs(150)
	section(w, "Figure 3 — speedup to theta < %.2f (cap %d epochs, network %s)",
		fig3Theta, capEpochs, cfg.Network.Name)

	strong := NewTable("strong scaling speedup",
		"dataset", "ranks", "speedup", "admm epochs", "giant epochs")
	for _, pcfg := range presetConfigs(cfg.Scale) {
		ds, err := generate(pcfg)
		if err != nil {
			return err
		}
		fStar, err := oracleFStar(ds, lambda)
		if err != nil {
			return err
		}
		for _, ranks := range scalingRanks {
			ratio, aE, gE, ok, err := speedupAt(cfg.cluster(ranks), ds, lambda, fStar, capEpochs)
			if err != nil {
				return fmt.Errorf("%s s%d: %w", ds.Name, ranks, err)
			}
			cell := "not reached"
			if ok {
				cell = fmt.Sprintf("%.2fx", ratio)
			}
			strong.Add(ds.Name, fmt.Sprintf("s%d", ranks), cell, aE, gE)
		}
	}
	if err := strong.Render(w); err != nil {
		return err
	}

	weak := NewTable("weak scaling speedup (E18 omitted, as in the paper)",
		"dataset", "ranks", "speedup", "admm epochs", "giant epochs")
	for _, pcfg := range presetConfigs(cfg.Scale) {
		if pcfg.Name == "e18-like" {
			continue
		}
		perRank := pcfg.Samples / scalingRanks[len(scalingRanks)-1]
		if perRank < 8 {
			perRank = 8
		}
		for _, ranks := range scalingRanks {
			wcfg := pcfg
			wcfg.Samples = perRank * ranks
			ds, err := generate(wcfg)
			if err != nil {
				return err
			}
			fStar, err := oracleFStar(ds, lambda)
			if err != nil {
				return err
			}
			ratio, aE, gE, ok, err := speedupAt(cfg.cluster(ranks), ds, lambda, fStar, capEpochs)
			if err != nil {
				return fmt.Errorf("%s w%d: %w", ds.Name, ranks, err)
			}
			cell := "not reached"
			if ok {
				cell = fmt.Sprintf("%.2fx", ratio)
			}
			weak.Add(ds.Name, fmt.Sprintf("w%d", ranks), cell, aE, gE)
		}
	}
	return weak.Render(w)
}
