package harness

import (
	"fmt"
	"io"
	"time"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/cg"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/newton"
)

func init() {
	register(Experiment{
		ID:    "ablation-penalty",
		Title: "Ablation: penalty policy (SPS vs residual balancing vs fixed rho)",
		Paper: "§2.2: residual balancing 'is still not effective in practice'; " +
			"SPS 'yields significant improvement in the efficiency of ADMM'",
		Run: runAblationPenalty,
	})
	register(Experiment{
		ID:    "ablation-network",
		Title: "Ablation: interconnect sensitivity (Newton-ADMM vs GIANT vs SGD)",
		Paper: "§3: 'the difference in communication overhead ... is not " +
			"crippling [on 100Gbps InfiniBand]. However, in environments " +
			"with low bandwidth and high latency, this can lead to " +
			"significant performance degradation'",
		Run: runAblationNetwork,
	})
	register(Experiment{
		ID:    "ablation-inexact",
		Title: "Ablation: CG inexactness (paper §2.1 claim)",
		Paper: "§2.1: a mild CG tolerance 'yields good performance, " +
			"comparable to the exact update'",
		Run: runAblationInexact,
	})
}

// runAblationPenalty compares the three penalty policies on the MNIST
// analogue with 4 ranks.
func runAblationPenalty(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	const ranks = 4
	epochs := cfg.epochs(60)
	ds, err := generate(datasets.MNISTLike(cfg.Scale))
	if err != nil {
		return err
	}
	fStar, err := oracleFStar(ds, lambda)
	if err != nil {
		return err
	}
	section(w, "Penalty-policy ablation — %s, %d ranks, %d epochs", ds.Name, ranks, epochs)

	tab := NewTable("policies",
		"policy", "final objective", "epochs to theta<0.05", "final primal residual")
	for _, policy := range []string{"spectral", "residual-balancing", "fixed"} {
		opts := admmOptions(epochs, lambda, false)
		opts.Penalty = policy
		res, err := core.Solve(cfg.cluster(ranks), ds, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", policy, err)
		}
		final, _ := res.Trace.Final()
		reached := "not reached"
		if e, ok := res.Trace.EpochsToObjective(fStar + fig3Theta*abs(fStar)); ok {
			reached = fmt.Sprintf("%d", e)
		}
		tab.Add(policy, final.Objective, reached, res.PrimalResidual)
	}
	return tab.Render(w)
}

// runAblationNetwork re-times one epoch budget of each solver under
// progressively worse interconnects. Only the modeled communication term
// changes, so the table isolates the communication structure: SGD's
// per-mini-batch round and GIANT's 3 rounds degrade much faster than
// Newton-ADMM's single round.
func runAblationNetwork(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	const ranks = 8
	epochs := cfg.epochs(10)
	ds, err := generate(datasets.MNISTLike(cfg.Scale))
	if err != nil {
		return err
	}
	section(w, "Network ablation — %s, %d ranks, %d epochs", ds.Name, ranks, epochs)

	nets := []cluster.NetworkModel{
		cluster.InfiniBand100G, cluster.Ethernet10G, cluster.Ethernet1G, cluster.WAN,
	}
	tab := NewTable("avg epoch time by interconnect",
		"network", "newton-admm", "giant", "sync-sgd", "admm/giant advantage")
	for _, net := range nets {
		ccfg := cfg.cluster(ranks)
		ccfg.Network = net
		aRes, err := core.Solve(ccfg, ds, admmOptions(epochs, lambda, false))
		if err != nil {
			return err
		}
		gRes, err := baselines.SolveGIANT(ccfg, ds, giantOptions(epochs, lambda, false))
		if err != nil {
			return err
		}
		sRes, err := baselines.SolveSyncSGD(ccfg, ds, baselines.SGDOptions{
			Epochs: epochs, Lambda: lambda, BatchSize: 128, Step: 1, Seed: 4,
		})
		if err != nil {
			return err
		}
		a := aRes.Trace.AvgEpochTime()
		g := gRes.Trace.AvgEpochTime()
		s := sRes.Trace.AvgEpochTime()
		tab.Add(net.Name, a, g, s, fmt.Sprintf("%.2fx", float64(g)/float64(a)))
	}
	return tab.Render(w)
}

// runAblationInexact sweeps the CG budget on a single-node Newton solve,
// demonstrating the inexactness claim the whole design rests on.
func runAblationInexact(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	epochs := cfg.epochs(40)
	ds, err := generate(datasets.MNISTLike(cfg.Scale))
	if err != nil {
		return err
	}
	fStar, err := oracleFStar(ds, lambda)
	if err != nil {
		return err
	}
	section(w, "CG inexactness ablation — single-node Newton on %s", ds.Name)

	dev := device.New("ablation-inexact", 0)
	defer dev.Close()
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, ds.Classes, lambda)
	if err != nil {
		return err
	}

	tab := NewTable("CG budget sweep",
		"cg iters", "newton iters", "wall time", "final objective", "relative gap")
	for _, iters := range []int{3, 10, 30, 100} {
		x := make([]float64, prob.Dim())
		start := time.Now()
		res := newton.Solve(prob, x, newton.Options{
			MaxIters: epochs, GradTol: 1e-6,
			CG: cg.Options{MaxIters: iters, RelTol: 1e-12},
		})
		elapsed := time.Since(start)
		gap := (res.Value - fStar) / abs(fStar)
		tab.Add(iters, res.Iters, elapsed, res.Value, gap)
	}
	return tab.Render(w)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
