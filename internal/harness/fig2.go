package harness

import (
	"fmt"
	"io"
	"time"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: average epoch time, strong and weak scaling (Newton-ADMM vs GIANT)",
		Paper: "strong scaling: epoch time roughly halves as workers double " +
			"(HIGGS scales best); weak scaling: epoch time stays roughly " +
			"constant as workers double",
		Run: runFig2,
	})
}

var scalingRanks = []int{1, 2, 4, 8}

// epochTimes runs both solvers for a fixed epoch budget and returns their
// average (virtual) epoch times.
func epochTimes(ccfg clusterConfig, ds *datasets.Dataset, lambda float64, epochs int) (admm, giant time.Duration, err error) {
	aRes, err := core.Solve(ccfg, ds, admmOptions(epochs, lambda, false))
	if err != nil {
		return 0, 0, fmt.Errorf("newton-admm: %w", err)
	}
	gRes, err := baselines.SolveGIANT(ccfg, ds, giantOptions(epochs, lambda, false))
	if err != nil {
		return 0, 0, fmt.Errorf("giant: %w", err)
	}
	return aRes.Trace.AvgEpochTime(), gRes.Trace.AvgEpochTime(), nil
}

// runFig2 regenerates both panels of Figure 2. Strong scaling splits one
// fixed dataset across s in {1,2,4,8} ranks; weak scaling holds the
// per-rank shard constant by growing the dataset with the rank count.
// (For E18 the paper itself subsamples: 60k strong, 60k/node weak.)
func runFig2(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	epochs := cfg.epochs(10)
	section(w, "Figure 2 — avg epoch time (ms), %d epochs, network %s", epochs, cfg.Network.Name)

	strong := NewTable("strong scaling (fixed total samples)",
		"dataset", "ranks", "newton-admm", "giant")
	for _, pcfg := range presetConfigs(cfg.Scale) {
		ds, err := generate(pcfg)
		if err != nil {
			return err
		}
		for _, ranks := range scalingRanks {
			a, g, err := epochTimes(cfg.cluster(ranks), ds, lambda, epochs)
			if err != nil {
				return fmt.Errorf("%s s%d: %w", ds.Name, ranks, err)
			}
			strong.Add(ds.Name, fmt.Sprintf("s%d", ranks), a, g)
		}
	}
	if err := strong.Render(w); err != nil {
		return err
	}

	weak := NewTable("weak scaling (fixed samples per rank)",
		"dataset", "ranks", "newton-admm", "giant")
	for _, pcfg := range presetConfigs(cfg.Scale) {
		base := pcfg // per-rank shard = the scale-1 sample count / max ranks
		perRank := base.Samples / scalingRanks[len(scalingRanks)-1]
		if perRank < 8 {
			perRank = 8
		}
		for _, ranks := range scalingRanks {
			wcfg := base
			wcfg.Samples = perRank * ranks
			ds, err := generate(wcfg)
			if err != nil {
				return err
			}
			a, g, err := epochTimes(cfg.cluster(ranks), ds, lambda, epochs)
			if err != nil {
				return fmt.Errorf("%s w%d: %w", ds.Name, ranks, err)
			}
			weak.Add(ds.Name, fmt.Sprintf("w%d", ranks), a, g)
		}
	}
	return weak.Render(w)
}
