package harness

import (
	"fmt"
	"io"

	"newtonadmm/internal/baselines"
	"newtonadmm/internal/core"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: training objective vs time, second-order solvers on MNIST",
		Paper: "Newton-ADMM and GIANT reach F < 0.25 in seconds; InexactDANE " +
			"and AIDE epochs are ~4 orders of magnitude slower " +
			"(Newton-ADMM 2.4s vs InexactDANE ~1.5h to F < 0.25)",
		Run: runFig1,
	})
}

// runFig1 reproduces the four-solver comparison on the MNIST analogue with
// lambda = 1e-5 and the paper's shared hyper-parameters (10 CG iterations
// at 1e-4, 10 line-search iterations). DANE and AIDE get 10 epochs, as in
// the paper, because each of their epochs sweeps the shard many times.
func runFig1(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	const lambda = 1e-5
	const ranks = 4
	ds, err := generate(datasets.MNISTLike(cfg.Scale))
	if err != nil {
		return err
	}
	section(w, "Figure 1 — %s, lambda=%.0e, %d ranks, network %s",
		ds.Name, lambda, ranks, cfg.Network.Name)

	ccfg := cfg.cluster(ranks)
	epochs := cfg.epochs(100)
	daneEpochs := cfg.epochs(10)
	if daneEpochs > 10 {
		daneEpochs = 10
	}

	var traces []*metrics.Trace

	admmRes, err := core.Solve(ccfg, ds, admmOptions(epochs, lambda, false))
	if err != nil {
		return fmt.Errorf("newton-admm: %w", err)
	}
	traces = append(traces, &admmRes.Trace)

	giantRes, err := baselines.SolveGIANT(ccfg, ds, giantOptions(epochs, lambda, false))
	if err != nil {
		return fmt.Errorf("giant: %w", err)
	}
	traces = append(traces, &giantRes.Trace)

	// InexactDANE with the paper's protocol: eta=1, mu=0, SVRG inner
	// solver; the step size is swept and the best is reported.
	daneTrace, daneStep, err := bestDANE(ccfg, ds, lambda, daneEpochs, cfg.Quick)
	if err != nil {
		return fmt.Errorf("inexact-dane: %w", err)
	}
	traces = append(traces, daneTrace)

	aideTrace, aideTau, err := bestAIDE(ccfg, ds, lambda, daneEpochs, cfg.Quick)
	if err != nil {
		return fmt.Errorf("aide: %w", err)
	}
	traces = append(traces, aideTrace)

	summary := NewTable("summary",
		"solver", "epochs", "avg epoch time", "final objective", "note")
	notes := map[string]string{
		"inexact-dane": fmt.Sprintf("best SVRG step %.0e", daneStep),
		"aide":         fmt.Sprintf("best tau %.0e", aideTau),
	}
	for _, tr := range traces {
		final, _ := tr.Final()
		summary.Add(tr.Solver, final.Epoch, tr.AvgEpochTime(), final.Objective, notes[tr.Solver])
	}
	if err := summary.Render(w); err != nil {
		return err
	}

	// Epoch-cost gap: the paper's headline "four orders of magnitude".
	gap := float64(daneTrace.AvgEpochTime()) / float64(admmRes.Trace.AvgEpochTime())
	fmt.Fprintf(w, "InexactDANE epoch / Newton-ADMM epoch = %.1fx\n\n", gap)

	for _, tr := range traces {
		if err := WriteTrace(w, sampleTracePoints(tr, 12)); err != nil {
			return err
		}
	}
	return nil
}

// fig1SVRG approximates the paper's SVRG budget ("100 iterations,
// update frequency 2n") scaled to the harness sizes: 8 snapshot rounds
// of 2n/8 mini-batch steps each — deliberately lighter than the paper's
// (batch-1, 100-round) budget so the experiment completes in minutes,
// which means the measured DANE/ADMM epoch-cost gap *understates* the
// paper's four orders of magnitude. Quick mode keeps the light default.
func fig1SVRG(step float64, quick bool) baselines.SVRGOptions {
	if quick {
		return baselines.SVRGOptions{Step: step}
	}
	return baselines.SVRGOptions{Step: step, Snapshots: 8, BatchSize: 8}
}

// bestDANE sweeps the SVRG step size (the paper sweeps 1e-4..1e4) and
// returns the trace with the lowest final objective.
func bestDANE(ccfg clusterConfig, ds *datasets.Dataset, lambda float64, epochs int, quick bool) (*metrics.Trace, float64, error) {
	steps := []float64{1e-1, 1, 1e1}
	if quick {
		steps = []float64{1}
	}
	var best *metrics.Trace
	var bestStep float64
	for _, step := range steps {
		res, err := baselines.SolveInexactDANE(ccfg, ds, baselines.DANEOptions{
			Epochs: epochs, Lambda: lambda, Eta: 1, Mu: 0, Seed: 1,
			SVRG: fig1SVRG(step, quick),
		})
		if err != nil {
			return nil, 0, err
		}
		if best == nil || res.Trace.BestObjective() < best.BestObjective() {
			tr := res.Trace
			best, bestStep = &tr, step
		}
	}
	return best, bestStep, nil
}

// bestAIDE sweeps tau (the paper sweeps 1e-4..1e4).
func bestAIDE(ccfg clusterConfig, ds *datasets.Dataset, lambda float64, epochs int, quick bool) (*metrics.Trace, float64, error) {
	taus := []float64{1e-2, 1, 1e2}
	if quick {
		taus = []float64{1}
	}
	var best *metrics.Trace
	var bestTau float64
	for _, tau := range taus {
		res, err := baselines.SolveAIDE(ccfg, ds, baselines.AIDEOptions{
			DANE: baselines.DANEOptions{
				Epochs: epochs, Lambda: lambda, Eta: 1, Mu: 0, Seed: 2,
				SVRG: fig1SVRG(1, quick),
			},
			Tau: tau,
		})
		if err != nil {
			return nil, 0, err
		}
		if best == nil || res.Trace.BestObjective() < best.BestObjective() {
			tr := res.Trace
			best, bestTau = &tr, tau
		}
	}
	return best, bestTau, nil
}
