package harness

import (
	"io"

	"newtonadmm/internal/loss"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: description of the datasets",
		Paper: "HIGGS 11M x 28 (2 classes), MNIST 70k x 784 (10), " +
			"CIFAR-10 60k x 3072 (10), E18 1.3M x 279,998 (20)",
		Run: runTable1,
	})
}

// runTable1 regenerates Table 1 for the synthetic analogues actually used
// in this reproduction, with the paper's originals for reference.
func runTable1(cfg RunConfig, w io.Writer) error {
	cfg = cfg.withDefaults()
	section(w, "Table 1 — datasets (synthetic analogues at scale %.3g)", cfg.Scale)

	paper := NewTable("paper originals",
		"classes", "dataset", "samples", "test size", "features")
	paper.Add(2, "HIGGS", 11000000, 1000000, 28)
	paper.Add(10, "MNIST", 70000, 10000, 784)
	paper.Add(10, "CIFAR-10", 60000, 10000, 3072)
	paper.Add(20, "E18", 1306127, 6000, 279998)
	if err := paper.Render(w); err != nil {
		return err
	}

	ours := NewTable("this reproduction",
		"classes", "dataset", "samples", "test size", "features", "storage", "nnz")
	for _, pcfg := range presetConfigs(cfg.Scale) {
		ds, err := generate(pcfg)
		if err != nil {
			return err
		}
		storage, nnz := "dense", ds.TrainSize()*ds.NumFeatures()
		if sp, ok := ds.Xtrain.(loss.Sparse); ok {
			storage, nnz = "csr", sp.M.NNZ()
		}
		ours.Add(ds.Classes, ds.Name, ds.TrainSize(), ds.TestSize(), ds.NumFeatures(), storage, nnz)
	}
	return ours.Render(w)
}
