// Package device provides the compute-accelerator substrate of the
// reproduction. The paper offloads the bulk data-parallel work (score
// matrices, gradients, Hessian-vector products) to Tesla P100 GPUs; this
// package substitutes a software accelerator with the same execution model:
//
//   - kernels are launched as bulk data-parallel operations over row ranges;
//   - a persistent worker pool executes the launched kernel (no per-launch
//     goroutine spawning, mirroring a GPU's persistent execution engine and
//     keeping launch overhead at a few microseconds, the same order as a
//     real CUDA kernel launch);
//   - the device keeps FLOP, byte, and launch counters so experiments can
//     report arithmetic intensity and throughput like a GPU profiler would.
//
// Solvers are written purely against this API, so swapping in a real GPU
// backend would not change any solver code — which is the property the
// substitution must preserve (see DESIGN.md).
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"newtonadmm/internal/linalg"
)

// Device is a software compute accelerator with a fixed-size worker pool.
// A Device is safe for use from a single logical stream at a time (like a
// CUDA stream); cluster ranks each own one Device.
type Device struct {
	name    string
	workers int

	mu     sync.Mutex // serializes kernel launches on this device
	tasks  chan func()
	wg     sync.WaitGroup
	closed atomic.Bool

	launches atomic.Int64
	flops    atomic.Int64
	bytes    atomic.Int64
}

// Stats is a snapshot of a device's accounting counters.
type Stats struct {
	Launches int64 // kernel launches
	FLOPs    int64 // floating point operations reported by kernels
	Bytes    int64 // bytes touched reported by kernels
}

// New creates a device with the given worker count. workers <= 0 selects
// runtime.NumCPU().
func New(name string, workers int) *Device {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	d := &Device{
		name:    name,
		workers: workers,
		tasks:   make(chan func(), workers),
	}
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

func (d *Device) worker() {
	for fn := range d.tasks {
		fn()
		d.wg.Done()
	}
}

// Close shuts down the worker pool. The device must not be used afterwards.
func (d *Device) Close() {
	if d.closed.CompareAndSwap(false, true) {
		close(d.tasks)
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Workers returns the size of the worker pool.
func (d *Device) Workers() int { return d.workers }

// Stats returns a snapshot of the accounting counters.
func (d *Device) Stats() Stats {
	return Stats{
		Launches: d.launches.Load(),
		FLOPs:    d.flops.Load(),
		Bytes:    d.bytes.Load(),
	}
}

// ResetStats zeroes the accounting counters.
func (d *Device) ResetStats() {
	d.launches.Store(0)
	d.flops.Store(0)
	d.bytes.Store(0)
}

// AddFLOPs lets kernels report arithmetic work.
func (d *Device) AddFLOPs(n int64) { d.flops.Add(n) }

// AddBytes lets kernels report memory traffic.
func (d *Device) AddBytes(n int64) { d.bytes.Add(n) }

func (d *Device) String() string {
	s := d.Stats()
	return fmt.Sprintf("device %s: %d workers, %d launches, %.3g GFLOP, %.3g GB",
		d.name, d.workers, s.Launches, float64(s.FLOPs)/1e9, float64(s.Bytes)/1e9)
}

// chunkCount returns how many contiguous chunks a launch over [0, n)
// with the given grain uses (the same split for every launch shape, so
// reductions are bitwise deterministic).
func (d *Device) chunkCount(n, grain int) int {
	chunks := d.workers
	if grain <= 0 {
		grain = (n + 4*d.workers - 1) / (4 * d.workers)
		if grain < 1 {
			grain = 1
		}
	}
	if maxChunks := (n + grain - 1) / grain; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// ChunkCount reports how many chunks a launch over [0, n) with the given
// grain will use; external reduction kernels size their partial buffers
// with it.
func (d *Device) ChunkCount(n, grain int) int {
	if n <= 0 {
		return 0
	}
	return d.chunkCount(n, grain)
}

// ParallelForChunks launches a kernel over [0, n) split into contiguous
// chunks; fn(chunk, lo, hi) runs on the worker pool for each chunk and
// the call blocks until all complete. The chunk index lets reduction
// kernels store partials at fixed positions so they can be combined in a
// deterministic order regardless of worker scheduling. Returns the
// number of chunks.
func (d *Device) ParallelForChunks(n, grain int, fn func(chunk, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if d.closed.Load() {
		panic("device: kernel launch on closed device " + d.name)
	}
	d.launches.Add(1)
	chunks := d.chunkCount(n, grain)
	if chunks == 1 {
		fn(0, 0, n)
		return 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		c := c
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		d.tasks <- func() { fn(c, lo, hi) }
	}
	d.wg.Wait()
	return chunks
}

// ParallelFor launches a kernel over [0, n): the range is split into
// roughly equal contiguous chunks (at least grain items each, grain <= 0
// selects an automatic grain) and fn(lo, hi) runs on the worker pool for
// each chunk. ParallelFor blocks until all chunks complete, like a
// synchronous kernel launch.
func (d *Device) ParallelFor(n, grain int, fn func(lo, hi int)) {
	d.ParallelForChunks(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// ParallelReduce launches a kernel over [0, n) where each chunk produces
// a partial float64 via fn(lo, hi); the partials are summed in chunk
// order, so the result is bitwise deterministic across runs (worker
// scheduling cannot reorder the floating-point sum).
func (d *Device) ParallelReduce(n, grain int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	partials := make([]float64, d.chunkCount(n, grain))
	d.ParallelForChunks(n, grain, func(chunk, lo, hi int) {
		partials[chunk] = fn(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// MulNT computes S = A * B^T on the device: A is n x p dense, B is m x p
// row-major, S is n x m row-major (overwritten). This is the "scores"
// kernel of the softmax loss.
func (d *Device) MulNT(a *linalg.Matrix, b []float64, m int, s []float64) {
	if len(s) != a.Rows*m {
		panic("device: MulNT output dimension mismatch")
	}
	d.ParallelFor(a.Rows, 0, func(lo, hi int) {
		linalg.MulNTRange(a, b, m, s, lo, hi)
	})
	d.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(m))
	d.AddBytes(8 * (int64(a.Rows)*int64(a.Cols) + int64(len(b)) + int64(len(s))))
}

// MulTN computes G = D^T * A on the device: D is n x m, A is n x p, G is
// m x p (overwritten). Each chunk accumulates into a private buffer and
// the partials are reduced in chunk order — the standard GPU strategy
// for transposed gradient accumulation without atomics, kept bitwise
// deterministic across runs.
func (d *Device) MulTN(a *linalg.Matrix, dmat []float64, m int, g []float64) {
	if len(g) != m*a.Cols {
		panic("device: MulTN output dimension mismatch")
	}
	linalg.Zero(g)
	parts := make([][]float64, d.chunkCount(a.Rows, 0))
	d.ParallelForChunks(a.Rows, 0, func(chunk, lo, hi int) {
		part := make([]float64, len(g))
		linalg.MulTNRange(a, dmat, m, part, lo, hi)
		parts[chunk] = part
	})
	for _, part := range parts {
		linalg.Add(g, part)
	}
	d.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(m))
	d.AddBytes(8 * (int64(a.Rows)*int64(a.Cols) + int64(len(dmat)) + int64(len(g))))
}
