// Package device provides the compute-accelerator substrate of the
// reproduction. The paper offloads the bulk data-parallel work (score
// matrices, gradients, Hessian-vector products) to Tesla P100 GPUs; this
// package substitutes a software accelerator with the same execution model:
//
//   - kernels are launched as bulk data-parallel operations over row ranges;
//   - a persistent worker pool executes the launched kernel (no per-launch
//     goroutine spawning, mirroring a GPU's persistent execution engine and
//     keeping launch overhead at a few microseconds, the same order as a
//     real CUDA kernel launch);
//   - a per-device scratch arena pools the chunk accumulators reduction
//     kernels need, so steady-state launches perform zero heap allocation
//     (the analogue of a GPU memory pool: cudaMalloc per kernel would
//     dominate small launches exactly like make() per MulTN did here);
//   - the device keeps FLOP, byte, and launch counters so experiments can
//     report arithmetic intensity and throughput like a GPU profiler would.
//
// Solvers are written purely against this API, so swapping in a real GPU
// backend would not change any solver code — which is the property the
// substitution must preserve (see DESIGN.md). PERF.md documents the
// kernel design, the arena lifecycle, and the determinism guarantee.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"newtonadmm/internal/linalg"
)

// Kernel is a launched device program: Run is invoked once per contiguous
// chunk of the launch range. Long-lived kernel objects (the built-in
// matrix kernels, the loss functors) are reused across launches so a
// steady-state launch allocates nothing; the closure-based ParallelFor
// helpers wrap ad-hoc functions for callers off the hot path.
type Kernel interface {
	// Run executes chunk `chunk`, covering rows [lo, hi).
	Run(chunk, lo, hi int)
}

// chunkFunc adapts a chunk-indexed closure to Kernel. Func values are
// pointer-shaped, so the interface conversion itself does not allocate.
type chunkFunc func(chunk, lo, hi int)

func (f chunkFunc) Run(chunk, lo, hi int) { f(chunk, lo, hi) }

// rangeFunc adapts a plain range closure to Kernel.
type rangeFunc func(lo, hi int)

func (f rangeFunc) Run(_, lo, hi int) { f(lo, hi) }

// Device is a software compute accelerator with a fixed-size worker pool.
// A Device is safe for use from a single logical stream at a time (like a
// CUDA stream); cluster ranks each own one Device. The scratch arena is
// tied to that single-stream discipline: at most one launch uses it at a
// time.
type Device struct {
	name    string
	workers int

	mu     sync.Mutex // serializes kernel launches on this device
	work   chan int   // chunk indices of the in-flight launch
	wg     sync.WaitGroup
	closed atomic.Bool

	// In-flight launch state, published to workers by the channel sends
	// (the send/receive pair orders these writes before worker reads).
	cur       Kernel
	curN      int
	curChunks int

	launches atomic.Int64
	flops    atomic.Int64
	bytes    atomic.Int64

	// Scratch arena: pooled, growable buffers keyed by launch shape
	// (chunks x size). Grow-only; steady-state launches of any
	// previously seen shape allocate nothing.
	partFlat []float64   // backing store for chunk accumulators
	parts    [][]float64 // per-chunk views into partFlat
	partials []float64   // per-chunk scalar partials for reductions

	// Built-in kernels, reused across launches (parameter structs, not
	// closures, so launching them never allocates).
	mulNT    mulNTKernel
	mulTN    mulTNKernel
	mulNTRed mulNTReduceKernel
	fusedGK  fusedGradKernel
}

// Stats is a snapshot of a device's accounting counters.
type Stats struct {
	Launches int64 // kernel launches
	FLOPs    int64 // floating point operations reported by kernels
	Bytes    int64 // bytes touched reported by kernels
}

// New creates a device with the given worker count. workers <= 0 selects
// runtime.NumCPU().
func New(name string, workers int) *Device {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	d := &Device{
		name:    name,
		workers: workers,
		work:    make(chan int, workers),
	}
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

func (d *Device) worker() {
	for c := range d.work {
		n, chunks := d.curN, d.curChunks
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		d.cur.Run(c, lo, hi)
		d.wg.Done()
	}
}

// Close shuts down the worker pool. The device must not be used afterwards.
// Close is idempotent.
func (d *Device) Close() {
	if d.closed.CompareAndSwap(false, true) {
		close(d.work)
	}
}

// Closed reports whether Close has been called. The serving layer's model
// registry uses it to assert retired predictors released their devices.
func (d *Device) Closed() bool { return d.closed.Load() }

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Workers returns the size of the worker pool.
func (d *Device) Workers() int { return d.workers }

// Stats returns a snapshot of the accounting counters.
func (d *Device) Stats() Stats {
	return Stats{
		Launches: d.launches.Load(),
		FLOPs:    d.flops.Load(),
		Bytes:    d.bytes.Load(),
	}
}

// ResetStats zeroes the accounting counters.
func (d *Device) ResetStats() {
	d.launches.Store(0)
	d.flops.Store(0)
	d.bytes.Store(0)
}

// AddFLOPs lets kernels report arithmetic work.
func (d *Device) AddFLOPs(n int64) { d.flops.Add(n) }

// AddBytes lets kernels report memory traffic.
func (d *Device) AddBytes(n int64) { d.bytes.Add(n) }

func (d *Device) String() string {
	s := d.Stats()
	return fmt.Sprintf("device %s: %d workers, %d launches, %.3g GFLOP, %.3g GB",
		d.name, d.workers, s.Launches, float64(s.FLOPs)/1e9, float64(s.Bytes)/1e9)
}

// chunkCount returns how many contiguous chunks a launch over [0, n)
// with the given grain uses (the same split for every launch shape, so
// reductions are bitwise deterministic).
func (d *Device) chunkCount(n, grain int) int {
	chunks := d.workers
	if grain <= 0 {
		grain = (n + 4*d.workers - 1) / (4 * d.workers)
		if grain < 1 {
			grain = 1
		}
	}
	if maxChunks := (n + grain - 1) / grain; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// ChunkCount reports how many chunks a launch over [0, n) with the given
// grain will use; external reduction kernels size their partial buffers
// with it.
func (d *Device) ChunkCount(n, grain int) int {
	if n <= 0 {
		return 0
	}
	return d.chunkCount(n, grain)
}

// ScratchParts returns `chunks` scratch accumulators of `size` float64s
// each from the device arena, backed by one contiguous allocation. The
// contents are stale (kernels zero their own chunk in-parallel); the
// buffers are valid until the next ScratchParts call. The arena grows
// monotonically, so any previously seen launch shape is served without
// allocating.
func (d *Device) ScratchParts(chunks, size int) [][]float64 {
	if need := chunks * size; cap(d.partFlat) < need {
		d.partFlat = make([]float64, need)
	}
	flat := d.partFlat[:chunks*size]
	if cap(d.parts) < chunks {
		d.parts = make([][]float64, chunks)
	}
	ps := d.parts[:chunks]
	for c := range ps {
		ps[c] = flat[c*size : (c+1)*size]
	}
	return ps
}

// ScratchPartials returns a pooled []float64 of per-chunk scalar partials
// (contents stale), valid until the next ScratchPartials call.
func (d *Device) ScratchPartials(chunks int) []float64 {
	if cap(d.partials) < chunks {
		d.partials = make([]float64, chunks)
	}
	return d.partials[:chunks]
}

// Launch executes k over [0, n) split into contiguous chunks on the
// worker pool and blocks until all chunks complete, like a synchronous
// kernel launch. The chunk split depends only on (n, grain, workers), so
// chunk-ordered reductions are bitwise deterministic across runs. Launch
// performs no heap allocation: reusing a persistent Kernel object makes
// the whole call allocation-free, which is what the hot-path kernels do.
// Returns the number of chunks.
func (d *Device) Launch(n, grain int, k Kernel) int {
	if n <= 0 {
		return 0
	}
	if d.closed.Load() {
		panic("device: kernel launch on closed device " + d.name)
	}
	d.launches.Add(1)
	chunks := d.chunkCount(n, grain)
	if chunks == 1 {
		k.Run(0, 0, n)
		return 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cur, d.curN, d.curChunks = k, n, chunks
	d.wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		d.work <- c
	}
	d.wg.Wait()
	d.cur = nil
	return chunks
}

// ParallelForChunks launches a kernel over [0, n) split into contiguous
// chunks; fn(chunk, lo, hi) runs on the worker pool for each chunk and
// the call blocks until all complete. The chunk index lets reduction
// kernels store partials at fixed positions so they can be combined in a
// deterministic order regardless of worker scheduling. Returns the
// number of chunks.
func (d *Device) ParallelForChunks(n, grain int, fn func(chunk, lo, hi int)) int {
	return d.Launch(n, grain, chunkFunc(fn))
}

// ParallelFor launches a kernel over [0, n): the range is split into
// roughly equal contiguous chunks (at least grain items each, grain <= 0
// selects an automatic grain) and fn(lo, hi) runs on the worker pool for
// each chunk. ParallelFor blocks until all chunks complete, like a
// synchronous kernel launch.
func (d *Device) ParallelFor(n, grain int, fn func(lo, hi int)) {
	d.Launch(n, grain, rangeFunc(fn))
}

// ParallelReduce launches a kernel over [0, n) where each chunk produces
// a partial float64 via fn(lo, hi); the partials are summed in chunk
// order, so the result is bitwise deterministic across runs (worker
// scheduling cannot reorder the floating-point sum).
func (d *Device) ParallelReduce(n, grain int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	partials := d.ScratchPartials(d.chunkCount(n, grain))
	d.ParallelForChunks(n, grain, func(chunk, lo, hi int) {
		partials[chunk] = fn(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// mulNTKernel is the persistent parameter block of the MulNT launch.
type mulNTKernel struct {
	a *linalg.Matrix
	b []float64
	m int
	s []float64
}

func (k *mulNTKernel) Run(_, lo, hi int) {
	linalg.MulNTRange(k.a, k.b, k.m, k.s, lo, hi)
}

// MulNT computes S = A * B^T on the device: A is n x p dense, B is m x p
// row-major, S is n x m row-major (overwritten). This is the "scores"
// kernel of the softmax loss.
func (d *Device) MulNT(a *linalg.Matrix, b []float64, m int, s []float64) {
	if len(s) != a.Rows*m {
		panic("device: MulNT output dimension mismatch")
	}
	k := &d.mulNT
	k.a, k.b, k.m, k.s = a, b, m, s
	d.Launch(a.Rows, 0, k)
	k.a, k.b, k.s = nil, nil, nil
	d.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(m))
	d.AddBytes(8 * (int64(a.Rows)*int64(a.Cols) + int64(len(b)) + int64(len(s))))
}

// mulNTReduceKernel fuses the score kernel with a row functor: each chunk
// computes its tile of S and immediately reduces it while the tile is
// still cache-hot, storing the partial at its chunk slot.
type mulNTReduceKernel struct {
	a        *linalg.Matrix
	b        []float64
	m        int
	s        []float64
	fn       func(lo, hi int) float64
	partials []float64
}

func (k *mulNTReduceKernel) Run(chunk, lo, hi int) {
	linalg.MulNTRange(k.a, k.b, k.m, k.s, lo, hi)
	k.partials[chunk] = k.fn(lo, hi)
}

// MulNTReduce computes S = A * B^T and applies fn over each row range of
// the fresh output tile in the same launch, returning the chunk-ordered
// sum of fn's partials. This is the fused score + log-sum-exp primitive:
// the softmax loss uses it to evaluate objective, residuals, and
// probabilities in one pass over S instead of a matmul launch followed by
// a second full sweep of S. fn must only touch rows [lo, hi) of S and
// must be safe to run concurrently on disjoint ranges. Passing a
// long-lived fn keeps the call allocation-free.
func (d *Device) MulNTReduce(a *linalg.Matrix, b []float64, m int, s []float64, fn func(lo, hi int) float64) float64 {
	if len(s) != a.Rows*m {
		panic("device: MulNTReduce output dimension mismatch")
	}
	if a.Rows == 0 {
		return 0
	}
	chunks := d.chunkCount(a.Rows, 0)
	k := &d.mulNTRed
	k.a, k.b, k.m, k.s = a, b, m, s
	k.fn = fn
	k.partials = d.ScratchPartials(chunks)
	d.Launch(a.Rows, 0, k)
	var total float64
	for _, p := range k.partials {
		total += p
	}
	k.a, k.b, k.s, k.fn, k.partials = nil, nil, nil, nil, nil
	d.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(m))
	d.AddBytes(8 * (int64(a.Rows)*int64(a.Cols) + int64(len(b)) + int64(len(s))))
	return total
}

// GradPanel is the row-panel width of the fused gradient kernels (dense
// here and the CSR twin in internal/sparse): score, functor, and
// accumulation sweeps interleave in panels of this many rows so each
// panel of A is still cache-resident when the transposed accumulation
// re-reads it (A is the only O(n·p) operand; without panelling it
// streams from memory twice per gradient). 48 rows of even MNIST-width
// features is ~300 KiB — L2-resident on anything modern.
const GradPanel = 48

// fusedGradKernel runs the whole gradient pipeline per chunk: for each
// row panel it computes the score tile, applies the row functor (log-
// sum-exp + residual, in place), and immediately accumulates the
// panel's outer products into the chunk accumulator while the panel of
// A is hot.
type fusedGradKernel struct {
	a        *linalg.Matrix
	b        []float64
	m        int
	s        []float64
	fn       func(lo, hi int) float64
	partials []float64
	g        []float64
	parts    [][]float64 // nil on the single-chunk fast path
}

func (k *fusedGradKernel) Run(chunk, lo, hi int) {
	dst := k.g
	if k.parts != nil {
		dst = k.parts[chunk]
		linalg.Zero(dst)
	}
	var sum float64
	for plo := lo; plo < hi; plo += GradPanel {
		phi := plo + GradPanel
		if phi > hi {
			phi = hi
		}
		linalg.MulNTRange(k.a, k.b, k.m, k.s, plo, phi)
		sum += k.fn(plo, phi)
		linalg.MulTNRange(k.a, k.s, k.m, dst, plo, phi)
	}
	k.partials[chunk] = sum
}

// FusedGradient runs S = A·Bᵀ, applies fn to each fresh row range of S
// (which may rewrite its rows in place — the residual transform), and
// accumulates G = Sᵀ·A, all in one launch that streams A once. It
// returns the chunk-ordered sum of fn's partials; G is overwritten.
// This is the single-launch gradient (and Hessian-vector) pipeline of
// the softmax loss: one pass over A and one pass over the score tile
// instead of two and three. G is bitwise identical to the unfused
// MulNT/fn/MulTN sequence (the panel split never reorders per-element
// accumulation); the returned scalar regroups fn's partials by panel,
// which is deterministic for a fixed worker count.
func (d *Device) FusedGradient(a *linalg.Matrix, b []float64, m int, s []float64, fn func(lo, hi int) float64, g []float64) float64 {
	if len(s) != a.Rows*m {
		panic("device: FusedGradient score dimension mismatch")
	}
	if len(g) != m*a.Cols {
		panic("device: FusedGradient output dimension mismatch")
	}
	linalg.Zero(g)
	if a.Rows == 0 {
		return 0
	}
	chunks := d.chunkCount(a.Rows, 0)
	k := &d.fusedGK
	k.a, k.b, k.m, k.s, k.fn, k.g = a, b, m, s, fn, g
	k.partials = d.ScratchPartials(chunks)
	if chunks > 1 {
		k.parts = d.ScratchParts(chunks, len(g))
	}
	d.Launch(a.Rows, 0, k)
	for _, part := range k.parts {
		linalg.Add(g, part)
	}
	var total float64
	for _, p := range k.partials {
		total += p
	}
	k.a, k.b, k.s, k.fn, k.g, k.parts, k.partials = nil, nil, nil, nil, nil, nil, nil
	d.AddFLOPs(4 * int64(a.Rows) * int64(a.Cols) * int64(m))
	d.AddBytes(8 * (int64(a.Rows)*int64(a.Cols) + int64(len(b)) + int64(len(s)) + int64(len(g))))
	return total
}

// mulTNKernel is the persistent parameter block of the MulTN launch.
// With a single chunk it accumulates straight into g; otherwise each
// chunk zeroes and fills its arena accumulator in parallel.
type mulTNKernel struct {
	a     *linalg.Matrix
	d     []float64
	m     int
	g     []float64
	parts [][]float64 // nil on the single-chunk fast path
}

func (k *mulTNKernel) Run(chunk, lo, hi int) {
	dst := k.g
	if k.parts != nil {
		dst = k.parts[chunk]
		linalg.Zero(dst)
	}
	linalg.MulTNRange(k.a, k.d, k.m, dst, lo, hi)
}

// MulTN computes G = D^T * A on the device: D is n x m, A is n x p, G is
// m x p (overwritten). Each chunk accumulates into a pooled arena buffer
// and the partials are reduced in chunk order — the standard GPU strategy
// for transposed gradient accumulation without atomics, kept bitwise
// deterministic across runs. Steady-state calls perform zero heap
// allocation (the arena replaces the per-call accumulator allocations of
// the naive implementation).
func (d *Device) MulTN(a *linalg.Matrix, dmat []float64, m int, g []float64) {
	if len(g) != m*a.Cols {
		panic("device: MulTN output dimension mismatch")
	}
	linalg.Zero(g)
	k := &d.mulTN
	k.a, k.d, k.m, k.g = a, dmat, m, g
	if a.Rows > 0 {
		if chunks := d.chunkCount(a.Rows, 0); chunks > 1 {
			k.parts = d.ScratchParts(chunks, len(g))
		}
	}
	d.Launch(a.Rows, 0, k)
	for _, part := range k.parts {
		linalg.Add(g, part)
	}
	k.a, k.d, k.g, k.parts = nil, nil, nil, nil
	d.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(m))
	d.AddBytes(8 * (int64(a.Rows)*int64(a.Cols) + int64(len(dmat)) + int64(len(g))))
}
