package device

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"newtonadmm/internal/linalg"
)

func randMatrix(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	d := New("test", 4)
	defer d.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1023} {
		hits := make([]int32, n)
		var mu sync.Mutex
		d.ParallelFor(n, 1, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				hits[i]++
			}
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestParallelForSingleWorker(t *testing.T) {
	d := New("single", 1)
	defer d.Close()
	sum := 0
	d.ParallelFor(10, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestParallelReduce(t *testing.T) {
	d := New("test", 8)
	defer d.Close()
	n := 10000
	got := d.ParallelReduce(n, 0, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Fatalf("ParallelReduce = %v, want %v", got, want)
	}
}

func TestParallelReduceEmpty(t *testing.T) {
	d := New("test", 2)
	defer d.Close()
	if got := d.ParallelReduce(0, 0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduce = %v, want 0", got)
	}
}

func TestMulNTMatchesSerial(t *testing.T) {
	d := New("test", 6)
	defer d.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n, p, m := 1+rng.Intn(200), 1+rng.Intn(30), 1+rng.Intn(9)
		a := randMatrix(rng, n, p)
		b := randVec(rng, m*p)
		got := make([]float64, n*m)
		d.MulNT(a, b, m, got)
		want := make([]float64, n*m)
		linalg.MulNT(a, b, m, want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MulNT parallel/serial mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestMulTNMatchesSerial(t *testing.T) {
	d := New("test", 6)
	defer d.Close()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n, p, m := 1+rng.Intn(200), 1+rng.Intn(30), 1+rng.Intn(9)
		a := randMatrix(rng, n, p)
		dm := randVec(rng, n*m)
		got := make([]float64, m*p)
		d.MulTN(a, dm, m, got)
		want := make([]float64, m*p)
		linalg.MulTN(a, dm, m, want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("MulTN parallel/serial mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := New("test", 2)
	defer d.Close()
	if s := d.Stats(); s.Launches != 0 || s.FLOPs != 0 {
		t.Fatal("fresh device should have zero stats")
	}
	a := linalg.NewMatrix(10, 4)
	b := make([]float64, 3*4)
	s := make([]float64, 10*3)
	d.MulNT(a, b, 3, s)
	st := d.Stats()
	if st.Launches != 1 {
		t.Fatalf("launches = %d, want 1", st.Launches)
	}
	if st.FLOPs != 2*10*4*3 {
		t.Fatalf("flops = %d, want %d", st.FLOPs, 2*10*4*3)
	}
	d.ResetStats()
	if st := d.Stats(); st.Launches != 0 || st.FLOPs != 0 || st.Bytes != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestCloseThenUsePanics(t *testing.T) {
	d := New("test", 2)
	d.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on closed device")
		}
	}()
	d.ParallelFor(10, 0, func(lo, hi int) {})
}

func TestCloseIdempotent(t *testing.T) {
	d := New("test", 2)
	d.Close()
	d.Close() // must not panic
}

func TestConcurrentIndependentDevices(t *testing.T) {
	// Multiple devices (as cluster ranks have) must work concurrently.
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := New("rank", 2)
			defer d.Close()
			total := d.ParallelReduce(1000, 0, func(lo, hi int) float64 {
				return float64(hi - lo)
			})
			if total != 1000 {
				t.Errorf("rank %d: reduce = %v", r, total)
			}
		}(r)
	}
	wg.Wait()
}
