package device

import (
	"math/rand"
	"testing"
)

// Tests for the scratch arena, the fused MulNTReduce primitive, and the
// zero-allocation guarantee of steady-state kernel launches.

func TestMulNTReduceMatchesSeparatePasses(t *testing.T) {
	d := New("fused", 5)
	defer d.Close()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n, p, m := 1+rng.Intn(200), 1+rng.Intn(30), 1+rng.Intn(9)
		a := randMatrix(rng, n, p)
		b := randVec(rng, m*p)
		s1 := make([]float64, n*m)
		d.MulNT(a, b, m, s1)
		want := d.ParallelReduce(n, 0, func(lo, hi int) float64 {
			var acc float64
			for i := lo * m; i < hi*m; i++ {
				acc += s1[i]
			}
			return acc
		})
		s2 := make([]float64, n*m)
		got := d.MulNTReduce(a, b, m, s2, func(lo, hi int) float64 {
			var acc float64
			for i := lo * m; i < hi*m; i++ {
				acc += s2[i]
			}
			return acc
		})
		// The fused launch uses the same chunk split as the separate
		// passes, so the chunk-ordered partial sums must agree bitwise.
		if got != want {
			t.Fatalf("trial %d: fused reduce %v != separate passes %v", trial, got, want)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("trial %d: fused scores differ at %d: %v vs %v", trial, i, s1[i], s2[i])
			}
		}
	}
}

func TestMulNTReduceDeterministicAcrossRuns(t *testing.T) {
	d := New("det", 7)
	defer d.Close()
	rng := rand.New(rand.NewSource(42))
	n, p, m := 500, 20, 4
	a := randMatrix(rng, n, p)
	b := randVec(rng, m*p)
	s := make([]float64, n*m)
	fn := func(lo, hi int) float64 {
		var acc float64
		for i := lo * m; i < hi*m; i++ {
			acc += s[i]
		}
		return acc
	}
	ref := d.MulNTReduce(a, b, m, s, fn)
	for run := 0; run < 10; run++ {
		if got := d.MulNTReduce(a, b, m, s, fn); got != ref {
			t.Fatalf("run %d: MulNTReduce = %v, want %v (nondeterministic reduction)", run, got, ref)
		}
	}
}

func TestMulTNDeterministicAcrossRuns(t *testing.T) {
	d := New("det-tn", 6)
	defer d.Close()
	rng := rand.New(rand.NewSource(43))
	n, p, m := 500, 24, 5
	a := randMatrix(rng, n, p)
	dm := randVec(rng, n*m)
	ref := make([]float64, m*p)
	d.MulTN(a, dm, m, ref)
	got := make([]float64, m*p)
	for run := 0; run < 10; run++ {
		d.MulTN(a, dm, m, got)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("run %d: nondeterministic MulTN at %d: %v vs %v", run, i, got[i], ref[i])
			}
		}
	}
}

func TestFusedGradientMatchesUnfusedPipeline(t *testing.T) {
	d := New("fused-grad", 5)
	defer d.Close()
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		n, p, m := 1+rng.Intn(300), 1+rng.Intn(30), 1+rng.Intn(9)
		a := randMatrix(rng, n, p)
		b := randVec(rng, m*p)
		// Row functor: halve each score row in place, return its sum.
		mkFn := func(s []float64) func(lo, hi int) float64 {
			return func(lo, hi int) float64 {
				var acc float64
				for i := lo * m; i < hi*m; i++ {
					s[i] *= 0.5
					acc += s[i]
				}
				return acc
			}
		}
		s1 := make([]float64, n*m)
		g1 := make([]float64, m*p)
		d.MulNTReduce(a, b, m, s1, mkFn(s1))
		d.MulTN(a, s1, m, g1)

		s2 := make([]float64, n*m)
		g2 := make([]float64, m*p)
		d.FusedGradient(a, b, m, s2, mkFn(s2), g2)

		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("trial %d: fused scores differ at %d: %v vs %v", trial, i, s1[i], s2[i])
			}
		}
		// G must be bitwise identical: the panel split never reorders
		// any element's accumulation.
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("trial %d: fused gradient differs at %d: %v vs %v", trial, i, g1[i], g2[i])
			}
		}
	}
}

func TestFusedGradientDeterministicAcrossRuns(t *testing.T) {
	d := New("fused-det", 6)
	defer d.Close()
	rng := rand.New(rand.NewSource(46))
	n, p, m := 500, 20, 4
	a := randMatrix(rng, n, p)
	b := randVec(rng, m*p)
	s := make([]float64, n*m)
	g := make([]float64, m*p)
	fn := func(lo, hi int) float64 {
		var acc float64
		for i := lo * m; i < hi*m; i++ {
			acc += s[i]
		}
		return acc
	}
	ref := d.FusedGradient(a, b, m, s, fn, g)
	gRef := append([]float64(nil), g...)
	for run := 0; run < 5; run++ {
		if got := d.FusedGradient(a, b, m, s, fn, g); got != ref {
			t.Fatalf("run %d: FusedGradient partial %v, want %v", run, got, ref)
		}
		for i := range gRef {
			if g[i] != gRef[i] {
				t.Fatalf("run %d: nondeterministic fused gradient at %d", run, i)
			}
		}
	}
}

func TestScratchPartsPooled(t *testing.T) {
	d := New("arena", 4)
	defer d.Close()
	parts := d.ScratchParts(3, 100)
	if len(parts) != 3 || len(parts[0]) != 100 {
		t.Fatalf("ScratchParts shape = %dx%d, want 3x100", len(parts), len(parts[0]))
	}
	first := &parts[0][0]
	// Same shape again: must reuse the same backing store.
	parts2 := d.ScratchParts(3, 100)
	if &parts2[0][0] != first {
		t.Fatal("ScratchParts reallocated for an already-seen shape")
	}
	// Smaller shape: still served from the same arena.
	parts3 := d.ScratchParts(2, 50)
	if &parts3[0][0] != first {
		t.Fatal("ScratchParts reallocated for a smaller shape")
	}
	// Larger shape grows the arena.
	parts4 := d.ScratchParts(4, 200)
	if len(parts4) != 4 || len(parts4[0]) != 200 {
		t.Fatalf("ScratchParts growth shape = %dx%d, want 4x200", len(parts4), len(parts4[0]))
	}
}

func TestKernelLaunchesZeroAllocsSteadyState(t *testing.T) {
	d := New("allocs", 4)
	defer d.Close()
	rng := rand.New(rand.NewSource(44))
	n, p, m := 600, 32, 6
	a := randMatrix(rng, n, p)
	b := randVec(rng, m*p)
	dm := randVec(rng, n*m)
	s := make([]float64, n*m)
	g := make([]float64, m*p)
	fn := func(lo, hi int) float64 { return float64(hi - lo) }

	if allocs := testing.AllocsPerRun(20, func() { d.MulNT(a, b, m, s) }); allocs != 0 {
		t.Fatalf("MulNT allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { d.MulTN(a, dm, m, g) }); allocs != 0 {
		t.Fatalf("MulTN allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { d.MulNTReduce(a, b, m, s, fn) }); allocs != 0 {
		t.Fatalf("MulNTReduce allocates %v per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { d.FusedGradient(a, b, m, s, fn, g) }); allocs != 0 {
		t.Fatalf("FusedGradient allocates %v per call in steady state, want 0", allocs)
	}
}
