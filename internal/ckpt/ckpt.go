// Package ckpt provides crash-safe checkpointing for distributed
// training runs: versioned, CRC-checked snapshots of the full solver
// state, written atomically (tmp + fsync + rename) so a crash at any
// instant leaves either the previous checkpoint or the new one — never a
// torn file that resumes garbage. LoadLatest walks backwards from the
// newest file past anything torn or corrupt to the last good snapshot,
// and rejects checkpoints whose dataset/config fingerprint does not
// match the resuming run, so a checkpoint from a different problem can
// never be silently loaded.
//
// The binary layout is normative and pinned by a decoder test (see
// DESIGN.md "Fault-tolerant training"); all integers and floats are
// little-endian:
//
//	offset  size  field
//	0       4     magic "NACK"
//	4       4     format version (uint32, currently 1)
//	8       8     fingerprint (uint64, FNV-1a of solver+dataset+config)
//	16      8     iter (uint64, last completed outer iteration)
//	24      4     rank count (uint32)
//	28      4     solver name length (uint32)
//	32      n     solver name bytes
//	...           shared section:   count uint32, count × float64
//	...           per-rank section (rank count times): count uint32, count × float64
//	...           trace section: count uint32, then per point:
//	              epoch uint32, timeNs float64, objective float64,
//	              testAccuracy float64, gradNorm float64  (36 bytes)
//	tail    4     CRC-32C (Castagnoli) of everything before it
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Magic identifies a checkpoint file; Version is the current format.
const (
	Magic   = "NACK"
	Version = 1
)

var (
	// ErrNoCheckpoint means no usable checkpoint exists in the directory
	// (empty, missing, or every candidate was torn/corrupt).
	ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint")
	// ErrFingerprintMismatch means the latest good checkpoint belongs to a
	// different solver/dataset/config than the resuming run.
	ErrFingerprintMismatch = errors.New("ckpt: fingerprint mismatch")
	// ErrCorrupt means a file failed structural or CRC validation.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TracePoint is one convergence-trace sample, stored so a resumed run
// can reconstruct the full uninterrupted trace bitwise.
type TracePoint struct {
	Epoch        int
	TimeNs       float64 // virtual-clock time in nanoseconds
	Objective    float64
	TestAccuracy float64
	GradNorm     float64
}

// Snapshot is the full recoverable state of a training run at an outer
// iteration boundary.
type Snapshot struct {
	// Fingerprint binds the snapshot to a solver+dataset+config; resume
	// rejects a mismatch.
	Fingerprint uint64
	// Iter is the last completed outer iteration.
	Iter uint64
	// Solver names the algorithm ("newton-admm", "giant", ...).
	Solver string
	// Shared is replicated state identical on all ranks (e.g. the ADMM
	// consensus iterate z and its previous value).
	Shared []float64
	// Ranks holds each rank's private state (e.g. x, duals, penalty-policy
	// state), indexed by rank.
	Ranks [][]float64
	// Trace is the convergence trace accumulated so far.
	Trace []TracePoint
}

// Fingerprinter accumulates run-identity fields into a stable 64-bit
// hash (FNV-1a). Field order matters; both the saving and resuming run
// must feed identical sequences.
type Fingerprinter struct{ h uint64 }

// NewFingerprinter starts an empty fingerprint.
func NewFingerprinter() *Fingerprinter {
	f := fnv.New64a()
	return &Fingerprinter{h: f.Sum64()}
}

func (f *Fingerprinter) bytes(b []byte) {
	h := f.h
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211 // FNV-1a prime
	}
	f.h = h
}

// String folds a labeled string field into the fingerprint.
func (f *Fingerprinter) String(s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	f.bytes(n[:])
	f.bytes([]byte(s))
}

// Int folds an integer field into the fingerprint.
func (f *Fingerprinter) Int(v int) { f.Uint64(uint64(int64(v))) }

// Uint64 folds a 64-bit field into the fingerprint.
func (f *Fingerprinter) Uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	f.bytes(b[:])
}

// Float folds a float64 field bitwise into the fingerprint.
func (f *Fingerprinter) Float(v float64) { f.Uint64(math.Float64bits(v)) }

// Bool folds a boolean field into the fingerprint.
func (f *Fingerprinter) Bool(v bool) {
	if v {
		f.Uint64(1)
	} else {
		f.Uint64(0)
	}
}

// Sum returns the accumulated fingerprint.
func (f *Fingerprinter) Sum() uint64 { return f.h }

func putF64s(buf []byte, vals []float64) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(vals)))
	buf = append(buf, n[:]...)
	var v [8]byte
	for _, x := range vals {
		binary.LittleEndian.PutUint64(v[:], math.Float64bits(x))
		buf = append(buf, v[:]...)
	}
	return buf
}

// Encode serializes the snapshot into the normative binary layout,
// including the trailing CRC.
func Encode(s *Snapshot) []byte {
	buf := make([]byte, 0, 32+len(s.Solver)+8*(len(s.Shared)+1)+36*len(s.Trace))
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, s.Iter)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Ranks)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Solver)))
	buf = append(buf, s.Solver...)
	buf = putF64s(buf, s.Shared)
	for _, r := range s.Ranks {
		buf = putF64s(buf, r)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Trace)))
	for _, p := range s.Trace {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Epoch))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.TimeNs))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Objective))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.TestAccuracy))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.GradNorm))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.off)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.off)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) f64s() ([]float64, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.off+8*int(n) > len(r.buf) {
		return nil, fmt.Errorf("%w: section of %d floats truncated at offset %d", ErrCorrupt, n, r.off)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
		r.off += 8
	}
	return vals, nil
}

// Decode parses and validates a checkpoint buffer (magic, version,
// structure, CRC). Any failure returns an error wrapping ErrCorrupt.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) < 36 {
		return nil, fmt.Errorf("%w: %d bytes is below the minimum frame", ErrCorrupt, len(buf))
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	if string(buf[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:4])
	}
	r := &reader{buf: body, off: 4}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	s := &Snapshot{}
	if s.Fingerprint, err = r.u64(); err != nil {
		return nil, err
	}
	if s.Iter, err = r.u64(); err != nil {
		return nil, err
	}
	rankCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	nameLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.off+int(nameLen) > len(body) {
		return nil, fmt.Errorf("%w: solver name truncated", ErrCorrupt)
	}
	s.Solver = string(body[r.off : r.off+int(nameLen)])
	r.off += int(nameLen)
	if s.Shared, err = r.f64s(); err != nil {
		return nil, err
	}
	s.Ranks = make([][]float64, rankCount)
	for i := range s.Ranks {
		if s.Ranks[i], err = r.f64s(); err != nil {
			return nil, err
		}
	}
	traceLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.off+36*int(traceLen) > len(body) {
		return nil, fmt.Errorf("%w: trace of %d points truncated", ErrCorrupt, traceLen)
	}
	s.Trace = make([]TracePoint, traceLen)
	for i := range s.Trace {
		epoch, _ := r.u32()
		tn, _ := r.u64()
		obj, _ := r.u64()
		acc, _ := r.u64()
		gn, _ := r.u64()
		s.Trace[i] = TracePoint{
			Epoch:        int(epoch),
			TimeNs:       math.Float64frombits(tn),
			Objective:    math.Float64frombits(obj),
			TestAccuracy: math.Float64frombits(acc),
			GradNorm:     math.Float64frombits(gn),
		}
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.off)
	}
	return s, nil
}

// FileName returns the canonical checkpoint file name for an iteration.
// Names sort lexicographically in iteration order, which LoadLatest
// relies on.
func FileName(iter uint64) string { return fmt.Sprintf("ckpt-%08d.nack", iter) }

// Save atomically writes the snapshot into dir as FileName(s.Iter):
// encode to a temp file in the same directory, fsync it, rename over the
// final name, then fsync the directory so the rename itself is durable.
// A crash at any point leaves either no new file or a complete one.
func Save(dir string, s *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: mkdir: %w", err)
	}
	final := filepath.Join(dir, FileName(s.Iter))
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("ckpt: tmp create: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(Encode(s)); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: tmp write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: tmp fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: tmp close: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// listCheckpoints returns checkpoint file names in dir, ascending.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".nack") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadLatest returns the newest structurally-valid snapshot in dir whose
// fingerprint matches, skipping torn or corrupt files back to the last
// good one. It returns ErrNoCheckpoint when nothing usable exists and
// ErrFingerprintMismatch when the newest good snapshot belongs to a
// different run configuration (a mismatch is a hard error, not a skip:
// silently falling back to an older matching file would resume a
// different run's state).
func LoadLatest(dir string, fingerprint uint64) (*Snapshot, error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(filepath.Join(dir, names[i]))
		if err != nil {
			continue
		}
		s, err := Decode(buf)
		if err != nil {
			continue // torn or corrupt: fall back to the previous file
		}
		if s.Fingerprint != fingerprint {
			return nil, fmt.Errorf("%w: checkpoint %s has %016x, run has %016x",
				ErrFingerprintMismatch, names[i], s.Fingerprint, fingerprint)
		}
		return s, nil
	}
	return nil, ErrNoCheckpoint
}

// Prune removes all but the newest keep checkpoint files (keep <= 0
// keeps everything). Corrupt files count like any other; Save+Prune
// with keep >= 2 therefore always retains at least one good snapshot.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for i := 0; i < len(names)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
			return fmt.Errorf("ckpt: prune: %w", err)
		}
	}
	return nil
}

// Clear removes every checkpoint file (and stale temp file) in dir. A
// fresh (non-resume) run calls it so a restart within that run can never
// load a stale snapshot from an older run in the same directory.
func Clear(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ckpt: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasPrefix(name, "ckpt-") && (strings.HasSuffix(name, ".nack") || strings.HasSuffix(name, ".tmp"))
		if e.Type().IsRegular() && stale {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("ckpt: clear: %w", err)
			}
		}
	}
	return nil
}
