package ckpt

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Fingerprint: 0xDEADBEEFCAFEF00D,
		Iter:        42,
		Solver:      "newton-admm",
		Shared:      []float64{1.5, -2.25, math.Pi},
		Ranks: [][]float64{
			{0.5, 0.25},
			{-1, math.Inf(1)},
		},
		Trace: []TracePoint{
			{Epoch: 1, TimeNs: 1e6, Objective: 0.69, TestAccuracy: 0.1, GradNorm: 3.2},
			{Epoch: 2, TimeNs: 2e6, Objective: 0.42, TestAccuracy: 0.9, GradNorm: 0.01},
		},
	}
}

// TestNormativeLayoutOffsets pins the exact binary layout documented in
// DESIGN.md "Fault-tolerant training": a hand-decoded buffer, field by
// field at its documented offset. If this test needs updating, the
// format version must be bumped and DESIGN.md updated with it.
func TestNormativeLayoutOffsets(t *testing.T) {
	s := sampleSnapshot()
	buf := Encode(s)

	if string(buf[0:4]) != "NACK" {
		t.Fatalf("offset 0: magic %q, want NACK", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != 1 {
		t.Fatalf("offset 4: version %d, want 1", v)
	}
	if fp := binary.LittleEndian.Uint64(buf[8:16]); fp != s.Fingerprint {
		t.Fatalf("offset 8: fingerprint %016x", fp)
	}
	if it := binary.LittleEndian.Uint64(buf[16:24]); it != 42 {
		t.Fatalf("offset 16: iter %d", it)
	}
	if rc := binary.LittleEndian.Uint32(buf[24:28]); rc != 2 {
		t.Fatalf("offset 24: rank count %d", rc)
	}
	nameLen := binary.LittleEndian.Uint32(buf[28:32])
	if nameLen != uint32(len("newton-admm")) {
		t.Fatalf("offset 28: solver length %d", nameLen)
	}
	off := 32
	if got := string(buf[off : off+int(nameLen)]); got != "newton-admm" {
		t.Fatalf("offset 32: solver %q", got)
	}
	off += int(nameLen)

	// Shared section: count then values.
	if n := binary.LittleEndian.Uint32(buf[off:]); n != 3 {
		t.Fatalf("shared count %d", n)
	}
	off += 4
	if v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])); v != 1.5 {
		t.Fatalf("shared[0] = %v", v)
	}
	off += 3 * 8

	// Per-rank sections.
	for r, want := range [][]float64{{0.5, 0.25}, {-1, math.Inf(1)}} {
		if n := binary.LittleEndian.Uint32(buf[off:]); int(n) != len(want) {
			t.Fatalf("rank %d count %d", r, n)
		}
		off += 4
		for i, w := range want {
			got := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			if got != w {
				t.Fatalf("rank %d[%d] = %v, want %v", r, i, got, w)
			}
			off += 8
		}
	}

	// Trace section: count, then 36-byte points.
	if n := binary.LittleEndian.Uint32(buf[off:]); n != 2 {
		t.Fatalf("trace count %d", n)
	}
	off += 4
	if e := binary.LittleEndian.Uint32(buf[off:]); e != 1 {
		t.Fatalf("trace[0].epoch %d", e)
	}
	if obj := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+12:])); obj != 0.69 {
		t.Fatalf("trace[0].objective %v", obj)
	}
	off += 2 * 36

	// Tail: CRC-32C over everything before it; buffer ends exactly there.
	if off+4 != len(buf) {
		t.Fatalf("layout drift: computed end %d, buffer length %d", off+4, len(buf))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	s.Shared = append(s.Shared, math.NaN()) // NaN must survive bitwise
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != s.Fingerprint || got.Iter != s.Iter || got.Solver != s.Solver {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Shared) != len(s.Shared) || !math.IsNaN(got.Shared[3]) {
		t.Fatalf("shared mismatch: %v", got.Shared)
	}
	for i := range s.Shared[:3] {
		if got.Shared[i] != s.Shared[i] {
			t.Fatalf("shared[%d] = %v", i, got.Shared[i])
		}
	}
	if len(got.Ranks) != 2 || got.Ranks[1][1] != math.Inf(1) {
		t.Fatalf("ranks mismatch: %v", got.Ranks)
	}
	if len(got.Trace) != 2 || got.Trace[1] != s.Trace[1] {
		t.Fatalf("trace mismatch: %v", got.Trace)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := sampleSnapshot()
	good := Encode(s)

	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[40] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not caught: %v", err)
	}

	// Truncate (torn write): must fail, not panic.
	for _, cut := range []int{0, 3, 17, len(good) / 2, len(good) - 1} {
		if _, err := Decode(good[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d not caught: %v", cut, err)
		}
	}

	// Wrong magic with a valid CRC over the altered body.
	bad = append([]byte(nil), good[:len(good)-4]...)
	copy(bad[0:4], "JUNK")
	bad = binary.LittleEndian.AppendUint32(bad, crcOf(bad))
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic not caught: %v", err)
	}

	// Unsupported version, CRC re-stamped.
	bad = append([]byte(nil), good[:len(good)-4]...)
	binary.LittleEndian.PutUint32(bad[4:8], 99)
	bad = binary.LittleEndian.AppendUint32(bad, crcOf(bad))
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version not caught: %v", err)
	}
}

func crcOf(body []byte) uint32 {
	return crc32.Checksum(body, castagnoli)
}

func TestSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	const fp = 7
	for iter := uint64(1); iter <= 3; iter++ {
		s := sampleSnapshot()
		s.Fingerprint = fp
		s.Iter = iter
		if err := Save(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadLatest(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 3 {
		t.Fatalf("LoadLatest iter %d, want 3", got.Iter)
	}
}

func TestLoadLatestSkipsTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	const fp = 7
	for iter := uint64(1); iter <= 2; iter++ {
		s := sampleSnapshot()
		s.Fingerprint = fp
		s.Iter = iter
		if err := Save(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	// Newest file is torn mid-write (truncated), the one before is
	// bit-flipped; LoadLatest must fall back to iter 1.
	s := sampleSnapshot()
	s.Fingerprint = fp
	s.Iter = 2
	buf := Encode(s)
	if err := os.WriteFile(filepath.Join(dir, FileName(2)), buf[:len(buf)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	s.Iter = 3
	buf = Encode(s)
	buf[20] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, FileName(3)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover tmp file must be ignored entirely.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-12345.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 1 {
		t.Fatalf("LoadLatest fell back to iter %d, want 1", got.Iter)
	}
}

func TestLoadLatestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	s.Fingerprint = 111
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLatest(dir, 222); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mismatch not typed: %v", err)
	}
}

func TestLoadLatestEmptyAndMissingDir(t *testing.T) {
	if _, err := LoadLatest(t.TempDir(), 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	if _, err := LoadLatest(filepath.Join(t.TempDir(), "nope"), 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for iter := uint64(1); iter <= 5; iter++ {
		s := sampleSnapshot()
		s.Iter = iter
		if err := Save(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != FileName(4) || names[1] != FileName(5) {
		t.Fatalf("prune kept %v", names)
	}
}

func TestClearRemovesCheckpointsAndTmp(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-zzz.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "unrelated.txt" {
		t.Fatalf("clear left %v", entries)
	}
	if err := Clear(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("clear of missing dir: %v", err)
	}
}

func TestFingerprinterStable(t *testing.T) {
	build := func() uint64 {
		f := NewFingerprinter()
		f.String("newton-admm")
		f.Int(4)
		f.Float(1e-4)
		f.Bool(true)
		return f.Sum()
	}
	if build() != build() {
		t.Fatal("fingerprint not deterministic")
	}
	f := NewFingerprinter()
	f.String("giant")
	f.Int(4)
	f.Float(1e-4)
	f.Bool(true)
	if f.Sum() == build() {
		t.Fatal("different solvers collide")
	}
	// Field boundaries matter: "ab"+"c" must differ from "a"+"bc".
	g1 := NewFingerprinter()
	g1.String("ab")
	g1.String("c")
	g2 := NewFingerprinter()
	g2.String("a")
	g2.String("bc")
	if g1.Sum() == g2.Sum() {
		t.Fatal("string boundaries not encoded")
	}
}
