package control

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"newtonadmm/internal/metrics"
	"newtonadmm/internal/obs"
)

// Snapshot is one observation of the serving tier, the autoscaler's
// input signal.
type Snapshot struct {
	// P99 is the recent (windowed, not cumulative) p99 request latency;
	// zero when nothing was observed in the window.
	P99 time.Duration
	// InFlight is the number of requests currently inside the tier.
	InFlight int64
	// Capacity is the tier's nominal concurrency (replicas x max batch);
	// InFlight/Capacity is the utilization the loop tracks.
	Capacity int64
	// Replicas is the current pool size.
	Replicas int
}

// SnapshotProvider feeds the autoscaler; RegistrySource is the
// production implementation over the obs metrics registry.
type SnapshotProvider interface {
	Snapshot() Snapshot
}

// Actuator applies scaling decisions. ScaleDown must be drain-safe:
// refuse (return an error) rather than drop accepted work or violate
// shard coverage — the serving tier's implementation routes through
// the pool's CanDrain/Drain primitives.
type Actuator interface {
	Replicas() int
	ScaleUp() error
	ScaleDown() error
}

// AutoscalerConfig tunes the control loop. The hysteresis constants
// (UpAfter/DownAfter consecutive ticks, Up/DownCooldown) are the
// normative defaults documented in DESIGN.md "Control plane".
type AutoscalerConfig struct {
	// Min and Max bound the replica count; Min <= 0 selects 1.
	Min, Max int
	// TargetP99 is the latency target: the tier is overloaded when the
	// windowed p99 exceeds it and latency-idle below half of it. Zero
	// disables the latency signal (utilization-only tracking).
	TargetP99 time.Duration
	// HighUtilization/LowUtilization bracket the in-flight utilization
	// signal; <= 0 select 0.75 and 0.25.
	HighUtilization, LowUtilization float64
	// Tick is the evaluation period; <= 0 selects 1s.
	Tick time.Duration
	// UpAfter/DownAfter are the hysteresis thresholds: that many
	// CONSECUTIVE overloaded (resp. idle) ticks before acting; <= 0
	// select 2 and 5 (scaling down is deliberately more reluctant).
	UpAfter, DownAfter int
	// UpCooldown/DownCooldown are the minimum gaps after a scale-up
	// (resp. any scaling action) before the next one; <= 0 select 3s
	// and 10s.
	UpCooldown, DownCooldown time.Duration
	// TickSource, when non-nil, replaces the wall ticker: Start
	// evaluates one control tick per received time instead of every
	// Tick. This is the synthetic-clock seam the fleet simulator and
	// tests use; production leaves it nil. (The simulator's event loop
	// calls Evaluate directly with virtual times; TickSource exists for
	// callers that want Start's goroutine with an external clock.)
	TickSource <-chan time.Time
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.HighUtilization <= 0 {
		c.HighUtilization = 0.75
	}
	if c.LowUtilization <= 0 {
		c.LowUtilization = 0.25
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 5
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = 3 * time.Second
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 10 * time.Second
	}
	return c
}

// Autoscaler is the target-tracking control loop: overloaded ticks
// (p99 above target or utilization above the high-water mark) grow the
// pool one replica at a time, idle ticks (utilization under the
// low-water mark and latency comfortably under target) drain it, and
// hysteresis plus cooldowns keep one noisy window from flapping the
// fleet. Step size is fixed at 1: replica spawn is cheap in-process,
// and single steps compose with the cooldowns into a bounded ramp.
type Autoscaler struct {
	src SnapshotProvider
	act Actuator
	cfg AutoscalerConfig

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Evaluation state, owned by the loop goroutine (or the test
	// driving Evaluate directly).
	hot, cold        int
	lastUp, lastDown time.Time

	ups      atomic.Uint64
	downs    atomic.Uint64
	replicas atomic.Int64
	failures atomic.Uint64
}

// NewAutoscaler builds the loop (call Start to run it).
func NewAutoscaler(src SnapshotProvider, act Actuator, cfg AutoscalerConfig) *Autoscaler {
	a := &Autoscaler{src: src, act: act, cfg: cfg.withDefaults(), stop: make(chan struct{})}
	a.replicas.Store(int64(act.Replicas()))
	return a
}

// Config returns the effective (defaulted) configuration.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// Start runs the loop until Stop, ticking from cfg.TickSource when set
// and a wall ticker of period cfg.Tick otherwise.
func (a *Autoscaler) Start() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		ticks := a.cfg.TickSource
		if ticks == nil {
			tick := time.NewTicker(a.cfg.Tick)
			defer tick.Stop()
			ticks = tick.C
		}
		for {
			select {
			case <-a.stop:
				return
			case now := <-ticks:
				a.Evaluate(now)
			}
		}
	}()
}

// Stop halts the loop; idempotent, blocks until the loop exits.
func (a *Autoscaler) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

// Evaluate runs one control tick at the given time. Exported so tests
// drive the state machine with a synthetic clock; the production loop
// calls it with the ticker's time.
func (a *Autoscaler) Evaluate(now time.Time) {
	s := a.src.Snapshot()
	n := a.act.Replicas()
	a.replicas.Store(int64(n))

	util := 0.0
	if s.Capacity > 0 {
		util = float64(s.InFlight) / float64(s.Capacity)
	}
	overloaded := util > a.cfg.HighUtilization ||
		(a.cfg.TargetP99 > 0 && s.P99 > a.cfg.TargetP99)
	idle := util < a.cfg.LowUtilization &&
		(a.cfg.TargetP99 <= 0 || s.P99 < a.cfg.TargetP99/2)
	switch {
	case overloaded:
		a.hot++
		a.cold = 0
	case idle:
		a.cold++
		a.hot = 0
	default:
		a.hot, a.cold = 0, 0
	}

	if a.hot >= a.cfg.UpAfter && n < a.cfg.Max && now.Sub(a.lastUp) >= a.cfg.UpCooldown {
		a.lastUp = now
		a.hot = 0
		if err := a.act.ScaleUp(); err != nil {
			a.failures.Add(1)
		} else {
			a.ups.Add(1)
			a.replicas.Store(int64(n + 1))
		}
		return
	}
	// Scale-down waits out the cooldown after ANY action (including a
	// scale-up), so a grow immediately followed by a quiet window does
	// not oscillate.
	if a.cold >= a.cfg.DownAfter && n > a.cfg.Min &&
		now.Sub(a.lastDown) >= a.cfg.DownCooldown && now.Sub(a.lastUp) >= a.cfg.DownCooldown {
		a.lastDown = now
		a.cold = 0
		if err := a.act.ScaleDown(); err != nil {
			// A refused drain (coverage would break, or a race with a
			// concurrent removal) is not an error state: the guard
			// doing its job. Try again after the next idle run.
			a.failures.Add(1)
		} else {
			a.downs.Add(1)
			a.replicas.Store(int64(n - 1))
		}
	}
}

// Ups returns the number of successful scale-ups.
func (a *Autoscaler) Ups() uint64 { return a.ups.Load() }

// Downs returns the number of successful scale-downs.
func (a *Autoscaler) Downs() uint64 { return a.downs.Load() }

// Failures returns the number of refused scaling actions.
func (a *Autoscaler) Failures() uint64 { return a.failures.Load() }

// Replicas returns the replica count as of the last evaluation (the
// nadmm_autoscale_replicas gauge source).
func (a *Autoscaler) Replicas() int64 { return a.replicas.Load() }

// RegistrySource is the production SnapshotProvider: windowed p99 from
// the tier's request-latency histogram in the obs Registry (cumulative
// histograms are windowed per tick via metrics.Delta), in-flight and
// capacity from the provided closures.
type RegistrySource struct {
	delta    *metrics.Delta
	inFlight func() int64
	capacity func() int64
	replicas func() int
}

// NewRegistrySource looks up the latency histogram registered under
// metric (e.g. "nadmm_request_latency") and wraps the tier's live
// counters.
func NewRegistrySource(reg *obs.Registry, metric string, inFlight, capacity func() int64, replicas func() int) (*RegistrySource, error) {
	h, ok := reg.FindDuration(metric)
	if !ok {
		return nil, fmt.Errorf("control: no duration metric %q in registry", metric)
	}
	return &RegistrySource{
		delta: metrics.NewDelta(h), inFlight: inFlight, capacity: capacity, replicas: replicas,
	}, nil
}

// Snapshot implements SnapshotProvider.
func (s *RegistrySource) Snapshot() Snapshot {
	_, p99 := s.delta.Advance(0.99)
	return Snapshot{
		P99:      p99,
		InFlight: s.inFlight(),
		Capacity: s.capacity(),
		Replicas: s.replicas(),
	}
}
