package control

// DefaultWeights is the batcher's per-class dequeue weight: of every
// 21 batch slots filled under saturation, interactive gets 16, batch 4,
// background 1. Background still always progresses (weight >= 1), so a
// flood degrades to a bounded share instead of starving — the other
// half of the starvation bound (the first half is the token bucket's
// reserve thresholds).
var DefaultWeights = [NumPriorities]int{16, 4, 1}

// WRR is deterministic credit-based weighted round-robin over the
// priority classes. It is NOT safe for concurrent use; the batcher's
// single dequeue goroutine owns it.
type WRR struct {
	weights [NumPriorities]int
	credits [NumPriorities]int
}

// NewWRR returns a scheduler with the given weights; non-positive
// entries are clamped to 1 so every class keeps forward progress.
func NewWRR(weights [NumPriorities]int) *WRR {
	w := &WRR{}
	for i, v := range weights {
		if v <= 0 {
			v = 1
		}
		w.weights[i] = v
	}
	w.credits = w.weights
	return w
}

// Pick selects the next class to dequeue among those with pending > 0,
// spending one credit; when every pending class is out of credits the
// credits replenish to the weights. Returns false when nothing is
// pending.
func (w *WRR) Pick(pending func(Priority) int) (Priority, bool) {
	any := false
	for c := Priority(0); c < NumPriorities; c++ {
		if pending(c) > 0 {
			any = true
			break
		}
	}
	if !any {
		return 0, false
	}
	for {
		for c := Priority(0); c < NumPriorities; c++ {
			if pending(c) > 0 && w.credits[c] > 0 {
				w.credits[c]--
				return c, true
			}
		}
		w.credits = w.weights
	}
}

// Spend charges one credit to a class dequeued outside Pick (the
// batcher's blocking first-request receive takes whichever class
// arrives); the floor keeps a burst of out-of-band receives from
// going negative.
func (w *WRR) Spend(c Priority) {
	if c < NumPriorities && w.credits[c] > 0 {
		w.credits[c]--
	}
}
