package control

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource returns a settable snapshot.
type fakeSource struct{ s atomic.Pointer[Snapshot] }

func (f *fakeSource) set(s Snapshot)     { f.s.Store(&s) }
func (f *fakeSource) Snapshot() Snapshot { return *f.s.Load() }

// fakeActuator counts actions and can be told to refuse them.
type fakeActuator struct {
	n          int
	refuseDown bool
	ups, downs int
}

func (f *fakeActuator) Replicas() int { return f.n }
func (f *fakeActuator) ScaleUp() error {
	f.n++
	f.ups++
	return nil
}
func (f *fakeActuator) ScaleDown() error {
	if f.refuseDown {
		return errors.New("drain refused")
	}
	f.n--
	f.downs++
	return nil
}

func newTestScaler(act *fakeActuator, src *fakeSource, cfg AutoscalerConfig) *Autoscaler {
	// Never Start(): the tests drive Evaluate with a synthetic clock.
	return NewAutoscaler(src, act, cfg)
}

func TestAutoscalerDefaults(t *testing.T) {
	cfg := AutoscalerConfig{Max: 4}.withDefaults()
	if cfg.Min != 1 || cfg.HighUtilization != 0.75 || cfg.LowUtilization != 0.25 ||
		cfg.Tick != time.Second || cfg.UpAfter != 2 || cfg.DownAfter != 5 ||
		cfg.UpCooldown != 3*time.Second || cfg.DownCooldown != 10*time.Second {
		t.Fatalf("defaults drifted: %+v (DESIGN.md pins 1/0.75/0.25/1s/2/5/3s/10s)", cfg)
	}
	if c := (AutoscalerConfig{Min: 5, Max: 2}).withDefaults(); c.Max != 5 {
		t.Fatalf("Max below Min not clamped: %+v", c)
	}
}

// TestAutoscalerScaleUpHysteresis: one hot tick is noise, UpAfter
// consecutive hot ticks scale up, and the up-cooldown gates the next
// grow.
func TestAutoscalerScaleUpHysteresis(t *testing.T) {
	act := &fakeActuator{n: 1}
	src := &fakeSource{}
	a := newTestScaler(act, src, AutoscalerConfig{Min: 1, Max: 3, UpAfter: 2, UpCooldown: 3 * time.Second})
	now := time.Unix(1000, 0)

	src.set(Snapshot{InFlight: 90, Capacity: 100}) // util 0.9 > 0.75
	a.Evaluate(now)
	if act.ups != 0 {
		t.Fatal("scaled up after a single hot tick")
	}
	// An intervening calm tick resets the streak.
	src.set(Snapshot{InFlight: 50, Capacity: 100})
	a.Evaluate(now.Add(time.Second))
	src.set(Snapshot{InFlight: 90, Capacity: 100})
	a.Evaluate(now.Add(2 * time.Second))
	if act.ups != 0 {
		t.Fatal("hot streak survived a calm tick")
	}
	a.Evaluate(now.Add(3 * time.Second))
	if act.ups != 1 || act.n != 2 {
		t.Fatalf("2 consecutive hot ticks: ups=%d n=%d, want 1/2", act.ups, act.n)
	}
	// Still hot, but inside the 3s up-cooldown: no action.
	a.Evaluate(now.Add(4 * time.Second))
	a.Evaluate(now.Add(5 * time.Second))
	if act.ups != 1 {
		t.Fatalf("scaled up inside the cooldown: ups=%d", act.ups)
	}
	a.Evaluate(now.Add(6 * time.Second))
	a.Evaluate(now.Add(7 * time.Second))
	if act.ups != 2 || act.n != 3 {
		t.Fatalf("after cooldown: ups=%d n=%d, want 2/3", act.ups, act.n)
	}
	// At Max, sustained heat never grows past the bound.
	for i := 8; i < 20; i++ {
		a.Evaluate(now.Add(time.Duration(i) * time.Second))
	}
	if act.n != 3 {
		t.Fatalf("pool grew past Max: n=%d", act.n)
	}
	if a.Ups() != 2 {
		t.Fatalf("Ups() = %d, want 2", a.Ups())
	}
}

// TestAutoscalerLatencySignal: p99 above target counts as overloaded
// even at low utilization.
func TestAutoscalerLatencySignal(t *testing.T) {
	act := &fakeActuator{n: 1}
	src := &fakeSource{}
	a := newTestScaler(act, src, AutoscalerConfig{Min: 1, Max: 2, TargetP99: 10 * time.Millisecond, UpAfter: 2})
	now := time.Unix(1000, 0)
	src.set(Snapshot{P99: 50 * time.Millisecond, InFlight: 1, Capacity: 100})
	a.Evaluate(now)
	a.Evaluate(now.Add(4 * time.Second))
	if act.ups != 1 {
		t.Fatalf("latency overload did not scale up: ups=%d", act.ups)
	}
}

// TestAutoscalerScaleDown: DownAfter consecutive idle ticks drain one
// replica, never below Min, and a refused drain counts as a failure
// while leaving the pool unchanged.
func TestAutoscalerScaleDown(t *testing.T) {
	act := &fakeActuator{n: 3}
	src := &fakeSource{}
	a := newTestScaler(act, src, AutoscalerConfig{
		Min: 1, Max: 3, DownAfter: 3, DownCooldown: 5 * time.Second, UpCooldown: time.Second,
	})
	now := time.Unix(2000, 0)
	src.set(Snapshot{InFlight: 1, Capacity: 100}) // util 0.01 < 0.25
	for i := 0; i < 2; i++ {
		a.Evaluate(now.Add(time.Duration(i) * time.Second))
	}
	if act.downs != 0 {
		t.Fatal("scaled down before DownAfter idle ticks")
	}
	a.Evaluate(now.Add(2 * time.Second))
	if act.downs != 1 || act.n != 2 {
		t.Fatalf("3 idle ticks: downs=%d n=%d, want 1/2", act.downs, act.n)
	}
	// Refused drains (coverage guard) are failures, not crashes.
	act.refuseDown = true
	for i := 3; i < 20; i++ {
		a.Evaluate(now.Add(time.Duration(i) * time.Second))
	}
	if act.n != 2 {
		t.Fatalf("refused drain still shrank the pool: n=%d", act.n)
	}
	if a.Failures() == 0 {
		t.Fatal("refused drain not counted as a failure")
	}
	// Allowed again: drains to Min and stops.
	act.refuseDown = false
	for i := 20; i < 60; i++ {
		a.Evaluate(now.Add(time.Duration(i) * time.Second))
	}
	if act.n != 1 {
		t.Fatalf("pool = %d, want Min=1", act.n)
	}
	if a.Replicas() != 1 || a.Downs() != uint64(act.downs) {
		t.Fatalf("gauges drifted: Replicas=%d Downs=%d downs=%d", a.Replicas(), a.Downs(), act.downs)
	}
}

// TestAutoscalerDownWaitsOutUpCooldown: a scale-up immediately followed
// by quiet must not oscillate — the down waits DownCooldown after the
// up.
func TestAutoscalerDownWaitsOutUpCooldown(t *testing.T) {
	act := &fakeActuator{n: 1}
	src := &fakeSource{}
	a := newTestScaler(act, src, AutoscalerConfig{
		Min: 1, Max: 2, UpAfter: 1, DownAfter: 1, UpCooldown: time.Second, DownCooldown: 10 * time.Second,
	})
	now := time.Unix(3000, 0)
	src.set(Snapshot{InFlight: 90, Capacity: 100})
	a.Evaluate(now)
	if act.ups != 1 {
		t.Fatal("no scale-up")
	}
	src.set(Snapshot{InFlight: 0, Capacity: 100})
	for i := 1; i < 10; i++ {
		a.Evaluate(now.Add(time.Duration(i) * time.Second))
	}
	if act.downs != 0 {
		t.Fatalf("scaled down %d times within DownCooldown of the up", act.downs)
	}
	a.Evaluate(now.Add(11 * time.Second))
	if act.downs != 1 {
		t.Fatalf("down after the cooldown: downs=%d, want 1", act.downs)
	}
}

// TestAutoscalerStartStop exercises the real loop end to end with a
// tiny tick (smoke: no deadlock, counters move).
func TestAutoscalerStartStop(t *testing.T) {
	act := &fakeActuator{n: 1}
	src := &fakeSource{}
	src.set(Snapshot{InFlight: 90, Capacity: 100})
	a := NewAutoscaler(src, act, AutoscalerConfig{
		Min: 1, Max: 2, Tick: time.Millisecond, UpAfter: 1, UpCooldown: time.Millisecond,
	})
	a.Start()
	deadline := time.Now().Add(2 * time.Second)
	for a.Ups() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	a.Stop() // idempotent
	if a.Ups() == 0 {
		t.Fatal("loop never scaled up")
	}
}
