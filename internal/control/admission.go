package control

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a request's service class. The zero value (Interactive)
// is the default for untagged traffic, so legacy clients behave exactly
// as before priorities existed.
type Priority uint8

const (
	// Interactive is latency-sensitive user-facing traffic; it gets the
	// largest dequeue weight and drains the admission budget to zero
	// before being refused.
	Interactive Priority = iota
	// Batch is throughput-oriented bulk work (offline scoring, backfill).
	Batch
	// Background is best-effort traffic: first to be rejected under
	// admission pressure, smallest dequeue weight.
	Background

	// NumPriorities is the number of service classes.
	NumPriorities = 3
)

var priorityNames = [NumPriorities]string{"interactive", "batch", "background"}

func (p Priority) String() string {
	if p < NumPriorities {
		return priorityNames[p]
	}
	return fmt.Sprintf("priority(%d)", uint8(p))
}

// Valid reports whether p names a defined class.
func (p Priority) Valid() bool { return p < NumPriorities }

// ParsePriority maps the wire spelling (the X-Nadmm-Priority header
// value) to a class. The empty string is Interactive: unset means the
// legacy default, not an error.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "background":
		return Background, nil
	}
	return Interactive, fmt.Errorf("control: unknown priority %q (want interactive, batch, or background)", s)
}

// Reason is the machine-readable cause of an admission rejection,
// carried on both planes (a JSON field and a wire error detail code)
// so clients and the load generator can tell backpressure kinds apart.
type Reason uint8

const (
	ReasonNone Reason = iota
	// ReasonQueueFull: the bounded admission queue was at capacity.
	ReasonQueueFull
	// ReasonRateLimited: a TokenBucket refused the request.
	ReasonRateLimited
	// ReasonCostRejected: a cost-aware policy refused the request's
	// rows x features price.
	ReasonCostRejected

	numReasons = 4
)

var reasonNames = [numReasons]string{"none", "queue_full", "rate_limited", "cost_rejected"}

func (r Reason) String() string {
	if r < numReasons {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// ParseReason is the inverse of Reason.String for the known rejection
// reasons; anything unrecognized maps to ReasonQueueFull (the safe
// legacy interpretation of a 429).
func ParseReason(s string) Reason {
	switch s {
	case "rate_limited":
		return ReasonRateLimited
	case "cost_rejected":
		return ReasonCostRejected
	}
	return ReasonQueueFull
}

// Decision is a policy's verdict on one request.
type Decision struct {
	Admit bool
	// Reason is set on rejections.
	Reason Reason
	// RetryAfter, when positive, hints how long until the policy would
	// admit an identical request (a token bucket's refill time). Zero
	// means no estimate.
	RetryAfter time.Duration
}

// Admitted is the positive decision.
var Admitted = Decision{Admit: true}

// AdmissionPolicy decides, before any queue slot or device time is
// spent, whether a request enters the system. Implementations must be
// safe for concurrent Admit calls: the batcher evaluates the policy on
// every submit and the router on every scatter.
//
// cost is the request's price in the policy's own unit — the serving
// layers pass rows x features, so a policy that ignores size simply
// ignores it. pri is the request's service class.
type AdmissionPolicy interface {
	Name() string
	Admit(cost int64, pri Priority) Decision
}

// AlwaysAdmit is the default policy: every request is admitted and the
// bounded queue remains the only backpressure.
type AlwaysAdmit struct{}

// Name implements AdmissionPolicy.
func (AlwaysAdmit) Name() string { return "always" }

// Admit implements AdmissionPolicy.
func (AlwaysAdmit) Admit(int64, Priority) Decision { return Admitted }

// reserveFrac is the fraction of the bucket's burst that must remain
// AFTER admitting a request of the given class. Interactive drains the
// bucket to zero; batch keeps a quarter in reserve; background keeps
// half. Under sustained overload the bucket hovers near empty, so
// background and batch are deterministically refused first and
// interactive absorbs none of the rejections as long as its own demand
// stays under the refill rate — the starvation bound the priority
// tests pin.
var reserveFrac = [NumPriorities]float64{0, 0.25, 0.5}

// TokenBucket is the standard refill-rate limiter with priority
// reserves. Two pricings share the implementation: NewTokenBucket
// charges one token per request (reason rate_limited), NewCostPolicy
// charges the request's cost — rows x features — per request (reason
// cost_rejected).
type TokenBucket struct {
	name    string
	rate    float64 // tokens per second
	burst   float64
	reason  Reason
	perCost bool // charge cost tokens instead of 1

	mu     sync.Mutex
	now    func() time.Time // refill clock; nil selects time.Now
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a request-rate policy admitting rate requests
// per second with bursts up to burst; burst <= 0 selects max(rate, 1).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	return newBucket("token-bucket", ReasonRateLimited, false, rate, float64(burst))
}

// NewCostPolicy returns the cost-aware policy: a bucket refilled at
// rate cost-units (row-feature products) per second, each request
// charged its own rows x features. burst <= 0 selects max(rate, 1).
func NewCostPolicy(rate float64, burst int64) *TokenBucket {
	return newBucket("cost", ReasonCostRejected, true, rate, float64(burst))
}

func newBucket(name string, reason Reason, perCost bool, rate, burst float64) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{
		name: name, rate: rate, burst: burst, reason: reason, perCost: perCost,
		tokens: burst, last: time.Now(),
	}
}

// Name implements AdmissionPolicy.
func (t *TokenBucket) Name() string { return t.name }

// SetNow injects the bucket's refill clock (nil restores time.Now) and
// restarts the refill window at the injected clock's current reading.
// This is the simulator seam: admission decisions under a virtual clock
// depend only on virtual time, so a scenario replays byte-identically.
// Call before the bucket takes traffic; not safe to swap under load.
func (t *TokenBucket) SetNow(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	if now != nil {
		t.last = now()
	} else {
		t.last = time.Now()
	}
}

// Admit implements AdmissionPolicy. Rejections carry the time until
// the bucket refills enough to admit an identical request.
func (t *TokenBucket) Admit(cost int64, pri Priority) Decision {
	need := 1.0
	if t.perCost {
		need = float64(cost)
		if need < 1 {
			need = 1
		}
	}
	floor := 0.0
	if pri.Valid() {
		floor = t.burst * reserveFrac[pri]
	} else {
		floor = t.burst * reserveFrac[Background]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	if t.now != nil {
		now = t.now()
	}
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.last = now
	if t.tokens-need >= floor {
		t.tokens -= need
		return Admitted
	}
	deficit := need + floor - t.tokens
	return Decision{
		Reason:     t.reason,
		RetryAfter: time.Duration(deficit / t.rate * float64(time.Second)),
	}
}

// RejectStats counts rejections by reason with one atomic per reason;
// the evaluation sites (batcher, router) keep one per policy seam and
// the registry renders them as nadmm_admission_rejected_total{reason}.
type RejectStats struct {
	counts [numReasons]atomic.Uint64
}

// Note records one rejection.
func (s *RejectStats) Note(r Reason) {
	if r >= numReasons {
		r = ReasonQueueFull
	}
	s.counts[r].Add(1)
}

// Count returns the rejections recorded for one reason.
func (s *RejectStats) Count(r Reason) uint64 {
	if r >= numReasons {
		return 0
	}
	return s.counts[r].Load()
}

// Total returns all recorded rejections.
func (s *RejectStats) Total() uint64 {
	var n uint64
	for i := range s.counts {
		n += s.counts[i].Load()
	}
	return n
}
