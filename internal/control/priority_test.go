package control

import "testing"

// TestWRRShares: under saturation (every class always pending) the pick
// distribution is exactly the weights.
func TestWRRShares(t *testing.T) {
	w := NewWRR(DefaultWeights)
	allPending := func(Priority) int { return 1 }
	var got [NumPriorities]int
	total := 16 + 4 + 1
	for i := 0; i < 10*total; i++ {
		c, ok := w.Pick(allPending)
		if !ok {
			t.Fatal("Pick returned false with every class pending")
		}
		got[c]++
	}
	want := [NumPriorities]int{160, 40, 10}
	if got != want {
		t.Fatalf("10 full cycles dequeued %v, want %v", got, want)
	}
}

// TestWRRSkipsEmptyClasses: an idle class's credits do not block the
// others, and a lone pending class is always picked.
func TestWRRSkipsEmptyClasses(t *testing.T) {
	w := NewWRR(DefaultWeights)
	onlyBackground := func(c Priority) int {
		if c == Background {
			return 1
		}
		return 0
	}
	for i := 0; i < 50; i++ {
		c, ok := w.Pick(onlyBackground)
		if !ok || c != Background {
			t.Fatalf("pick %d = (%v, %v), want Background", i, c, ok)
		}
	}
	if _, ok := w.Pick(func(Priority) int { return 0 }); ok {
		t.Fatal("Pick returned true with nothing pending")
	}
}

// TestWRRClampsWeights: non-positive weights clamp to 1 so every class
// keeps forward progress.
func TestWRRClampsWeights(t *testing.T) {
	w := NewWRR([NumPriorities]int{0, -3, 5})
	allPending := func(Priority) int { return 1 }
	var got [NumPriorities]int
	for i := 0; i < 7; i++ { // one full cycle of 1+1+5
		c, _ := w.Pick(allPending)
		got[c]++
	}
	if got != [NumPriorities]int{1, 1, 5} {
		t.Fatalf("cycle = %v, want [1 1 5]", got)
	}
}

// TestWRRSpend: out-of-band dequeues (the batcher's blocking receive)
// charge the class's credit, shifting the next cycle accordingly; a
// burst of spends floors at zero rather than going negative.
func TestWRRSpend(t *testing.T) {
	w := NewWRR([NumPriorities]int{2, 1, 1})
	w.Spend(Interactive)
	w.Spend(Interactive)
	w.Spend(Interactive) // would go negative; floors at 0
	allPending := func(Priority) int { return 1 }
	c, _ := w.Pick(allPending)
	if c != Batch {
		t.Fatalf("after spending interactive's credits, first pick = %v, want Batch", c)
	}
}
