package control

import (
	"testing"
	"time"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		err  bool
	}{
		{"", Interactive, false},
		{"interactive", Interactive, false},
		{"batch", Batch, false},
		{"background", Background, false},
		{"urgent", Interactive, true},
		{"BATCH", Interactive, true},
	}
	for _, c := range cases {
		got, err := ParsePriority(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParsePriority(%q) = (%v, %v), want (%v, err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if Interactive.String() != "interactive" || Background.String() != "background" {
		t.Fatalf("priority names drifted: %q %q", Interactive, Background)
	}
}

func TestReasonRoundTrip(t *testing.T) {
	for _, r := range []Reason{ReasonQueueFull, ReasonRateLimited, ReasonCostRejected} {
		if got := ParseReason(r.String()); got != r {
			t.Errorf("ParseReason(%q) = %v, want %v", r.String(), got, r)
		}
	}
	// Unknown spellings (legacy bare 429s) degrade to queue_full.
	if got := ParseReason("whatever"); got != ReasonQueueFull {
		t.Errorf("ParseReason(unknown) = %v, want ReasonQueueFull", got)
	}
}

func TestTokenBucketBurstAndRefill(t *testing.T) {
	b := NewTokenBucket(1000, 3)
	for i := 0; i < 3; i++ {
		if d := b.Admit(1, Interactive); !d.Admit {
			t.Fatalf("request %d within burst rejected: %+v", i, d)
		}
	}
	d := b.Admit(1, Interactive)
	if d.Admit {
		t.Fatal("4th request admitted with an empty bucket")
	}
	if d.Reason != ReasonRateLimited {
		t.Fatalf("reason = %v, want rate_limited", d.Reason)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want a positive refill hint", d.RetryAfter)
	}
	// At 1000 tokens/s the bucket refills within a few milliseconds.
	deadline := time.Now().Add(time.Second)
	for !b.Admit(1, Interactive).Admit {
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTokenBucketReserves pins the starvation-bound mechanism: with the
// bucket drained to its batch/background reserve floors, lower classes
// are refused while interactive is still admitted. Rate 0-ish keeps the
// refill from interfering within the test's runtime.
func TestTokenBucketReserves(t *testing.T) {
	b := NewTokenBucket(0.001, 100) // burst 100: floors are 25 (batch), 50 (background)
	// Drain to just under the background floor using interactive.
	for i := 0; i < 51; i++ {
		if d := b.Admit(1, Interactive); !d.Admit {
			t.Fatalf("interactive drain %d rejected early: %+v", i, d)
		}
	}
	if d := b.Admit(1, Background); d.Admit {
		t.Fatal("background admitted below its half-burst reserve")
	}
	if d := b.Admit(1, Batch); !d.Admit {
		t.Fatalf("batch rejected above its quarter-burst reserve: %+v", d)
	}
	// Drain past the batch floor too.
	for b.Admit(1, Interactive).Admit && b.tokensLeft() > 25 {
	}
	if d := b.Admit(1, Batch); d.Admit {
		t.Fatal("batch admitted below its reserve")
	}
	if d := b.Admit(1, Interactive); !d.Admit {
		t.Fatalf("interactive rejected while tokens remain: %+v", d)
	}
	// An invalid class is treated like background (the strictest floor).
	if d := b.Admit(1, Priority(9)); d.Admit {
		t.Fatal("invalid class admitted below the background reserve")
	}
}

func TestCostPolicy(t *testing.T) {
	b := NewCostPolicy(1, 1000)
	if d := b.Admit(600, Interactive); !d.Admit {
		t.Fatalf("600-unit request within the 1000 burst rejected: %+v", d)
	}
	d := b.Admit(600, Interactive)
	if d.Admit {
		t.Fatal("second 600-unit request admitted from a 400-token bucket")
	}
	if d.Reason != ReasonCostRejected {
		t.Fatalf("reason = %v, want cost_rejected", d.Reason)
	}
	// The refill hint scales with the deficit: ~200 units at 1 unit/s.
	if d.RetryAfter < 100*time.Second {
		t.Fatalf("RetryAfter = %v, want a deficit-scaled hint", d.RetryAfter)
	}
	// Tiny requests still pass while the remainder lasts.
	if d := b.Admit(1, Interactive); !d.Admit {
		t.Fatalf("1-unit request rejected with ~400 tokens left: %+v", d)
	}
}

func TestRejectStats(t *testing.T) {
	var s RejectStats
	s.Note(ReasonRateLimited)
	s.Note(ReasonRateLimited)
	s.Note(ReasonCostRejected)
	s.Note(Reason(200)) // out of range folds into queue_full
	if s.Count(ReasonRateLimited) != 2 || s.Count(ReasonCostRejected) != 1 || s.Count(ReasonQueueFull) != 1 {
		t.Fatalf("counts = qf:%d rl:%d cr:%d", s.Count(ReasonQueueFull), s.Count(ReasonRateLimited), s.Count(ReasonCostRejected))
	}
	if s.Total() != 4 {
		t.Fatalf("Total = %d, want 4", s.Total())
	}
}

// tokensLeft reads the bucket level (test helper; production code never
// inspects it).
func (t *TokenBucket) tokensLeft() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tokens
}
