// Package control is the serving tier's control plane: the pieces that
// decide, from the signals the data plane already exports, which
// requests enter the system and how much capacity serves them.
//
// Three subsystems, deliberately decoupled from the data plane they
// steer (DESIGN.md "Control plane"):
//
//   - Admission: a pluggable AdmissionPolicy evaluated at submit time
//     in the batcher and at scatter time in the router. AlwaysAdmit is
//     the zero-cost default; TokenBucket rate-limits by request count;
//     the cost-aware variant prices each batch at rows x features so a
//     wide batch spends proportionally more budget. Every rejection
//     carries a machine-readable Reason and a Retry-After hint derived
//     from the bucket's refill time.
//
//   - Priority: three request classes (Interactive, Batch, Background)
//     carried end to end — an X-Nadmm-Priority header on the JSON
//     plane, a flag+byte on the binary plane — with weighted dequeue
//     in the batcher (WRR) so a background flood cannot starve
//     interactive p99, and reserve thresholds in the token bucket so
//     background deterministically absorbs the rejections first.
//
//   - Autoscaling: a target-tracking control loop (Autoscaler) that
//     reads windowed p99 latency and in-flight utilization from a
//     SnapshotProvider and grows or drains in-process replicas through
//     an Actuator. Hysteresis (consecutive-tick thresholds) plus
//     separate up/down cooldowns keep it from flapping; the actuator
//     reuses the pool's CanDrain/Drain primitives, so scale-down can
//     never drop an accepted request or make a shard unserviceable.
package control
