// Package newton implements the paper's Algorithm 1: the single-node
// inexact Newton method. Each iteration forms the gradient, solves
// H p = -g approximately with CG under the relative-residual rule
// (eq. 3b), and takes an Armijo backtracking step (eq. 3c). It is both
// the inner solver run on every rank of Newton-ADMM and the oracle used
// to compute the "optimal" F(x*) for the theta convergence studies.
package newton

import (
	"newtonadmm/internal/cg"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/linesearch"
	"newtonadmm/internal/loss"
)

// Options controls the Newton iteration.
type Options struct {
	// MaxIters caps outer Newton iterations; <=0 selects 100.
	MaxIters int
	// GradTol stops the iteration once ||g|| < GradTol; <=0 selects 1e-8.
	GradTol float64
	// CG configures the inner linear solver.
	CG cg.Options
	// Jacobi enables diagonal preconditioning of the CG solve when the
	// problem can produce its Hessian diagonal (an optional optimization
	// beyond the paper; helps on ill-conditioned problems).
	Jacobi bool
	// LineSearch configures the Armijo backtracking.
	LineSearch linesearch.Options
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-8
	}
	return o
}

// IterStat records one Newton iteration for convergence traces.
type IterStat struct {
	Iter     int
	Value    float64 // objective before the step
	GradNorm float64
	CGIters  int
	Alpha    float64
	NewValue float64 // objective after the step
}

// Result reports the terminal state of a Newton run.
type Result struct {
	Iters     int
	Value     float64
	GradNorm  float64
	Converged bool // gradient tolerance reached
	Trace     []IterStat
}

// Solve minimizes prob starting from x, which is updated in place.
func Solve(prob loss.Problem, x []float64, opts Options) Result {
	opts = opts.withDefaults()
	dim := prob.Dim()
	if len(x) != dim {
		panic("newton: x dimension mismatch")
	}
	g := make([]float64, dim)
	p := make([]float64, dim)
	scratch := make([]float64, dim)
	if opts.CG.Work == nil {
		// One workspace for the whole run: the inner CG solves of every
		// outer iteration reuse the same vectors instead of allocating.
		opts.CG.Work = &cg.Workspace{}
	}
	useJacobi := opts.Jacobi && loss.CanDiag(prob)
	var diag []float64
	if useJacobi {
		diag = make([]float64, dim)
	}

	res := Result{}
	val := prob.Gradient(x, g)
	for k := 0; k < opts.MaxIters; k++ {
		gNorm := linalg.Nrm2(g)
		res.Value = val
		res.GradNorm = gNorm
		if gNorm < opts.GradTol {
			res.Converged = true
			return res
		}
		h := prob.HessianAt(x)
		var cgRes cg.Result
		if useJacobi {
			prob.(loss.DiagHessian).HessianDiag(x, diag)
			cgRes = cg.NewtonDirectionPrecond(h, diag, g, p, opts.CG)
		} else {
			cgRes = cg.NewtonDirection(h, g, p, opts.CG)
		}
		slope := linalg.Dot(p, g)
		ls := linesearch.Backtrack(
			linesearch.Objective(prob.Value, x, p, scratch),
			val, slope, opts.LineSearch,
		)
		stat := IterStat{
			Iter: k, Value: val, GradNorm: gNorm,
			CGIters: cgRes.Iters, Alpha: ls.Alpha, NewValue: ls.Value,
		}
		res.Trace = append(res.Trace, stat)
		if !ls.Satisfied && ls.Value >= val {
			// No progress possible along p within the budget: stop rather
			// than accept an increase.
			res.Iters = k
			return res
		}
		linalg.Axpy(ls.Alpha, p, x)
		res.Iters = k + 1
		val = prob.Gradient(x, g)
	}
	res.Value = val
	res.GradNorm = linalg.Nrm2(g)
	res.Converged = res.GradNorm < opts.GradTol
	return res
}
