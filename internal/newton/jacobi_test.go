package newton

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/cg"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

// illConditionedSoftmax builds a softmax problem whose features have a
// steep power-law scale, giving the Hessian a wide spectrum.
func illConditionedSoftmax(rng *rand.Rand, n, p, classes int) *loss.Softmax {
	x := linalg.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := 0; j < p; j++ {
			row[j] = rng.NormFloat64() * math.Pow(float64(j+1), -1.5)
		}
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	s, err := loss.NewSoftmax(testDev, loss.Dense{M: x}, y, classes, 1e-4)
	if err != nil {
		panic(err)
	}
	return s
}

func TestJacobiNewtonConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	s := illConditionedSoftmax(rng, 80, 12, 3)
	x := make([]float64, s.Dim())
	res := Solve(s, x, Options{
		MaxIters: 60, GradTol: 1e-6, Jacobi: true,
		CG: cg.Options{MaxIters: 10, RelTol: 1e-8},
	})
	if !res.Converged && res.GradNorm > 1e-4 {
		t.Fatalf("Jacobi Newton did not converge: %+v", res)
	}
}

func TestJacobiMatchesPlainOptimum(t *testing.T) {
	// Both variants must find (essentially) the same minimizer.
	rng := rand.New(rand.NewSource(221))
	s := illConditionedSoftmax(rng, 60, 10, 3)
	plain := make([]float64, s.Dim())
	Solve(s, plain, Options{MaxIters: 100, GradTol: 1e-8})
	jac := make([]float64, s.Dim())
	Solve(s, jac, Options{MaxIters: 100, GradTol: 1e-8, Jacobi: true})
	fPlain, fJac := s.Value(plain), s.Value(jac)
	if math.Abs(fPlain-fJac) > 1e-5*math.Max(1, math.Abs(fPlain)) {
		t.Fatalf("optima differ: plain %v vs jacobi %v", fPlain, fJac)
	}
}

func TestJacobiProgressWithTinyCGBudget(t *testing.T) {
	// With a very small CG budget on an ill-conditioned problem,
	// preconditioning should reach at least as low an objective in the
	// same number of Newton iterations.
	rng := rand.New(rand.NewSource(222))
	s := illConditionedSoftmax(rng, 100, 16, 4)
	budget := cg.Options{MaxIters: 3, RelTol: 1e-12}

	plain := make([]float64, s.Dim())
	Solve(s, plain, Options{MaxIters: 8, GradTol: 0, CG: budget})
	jac := make([]float64, s.Dim())
	Solve(s, jac, Options{MaxIters: 8, GradTol: 0, CG: budget, Jacobi: true})

	fPlain, fJac := s.Value(plain), s.Value(jac)
	if fJac > fPlain*(1+0.05) {
		t.Fatalf("jacobi underperformed badly: %v vs plain %v", fJac, fPlain)
	}
}

func TestJacobiFallsBackWithoutDiagSupport(t *testing.T) {
	// Quadratic does not implement HessianDiag: Jacobi must silently
	// fall back to plain CG and still solve the problem.
	rng := rand.New(rand.NewSource(223))
	d := 8
	q := &loss.Quadratic{A: randSPD(rng, d, 1), B: randVec(rng, d)}
	x := randVec(rng, d)
	res := Solve(q, x, Options{MaxIters: 10, GradTol: 1e-8, Jacobi: true})
	if !res.Converged {
		t.Fatalf("fallback path failed: %+v", res)
	}
}

func TestAugmentedSupportsJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	s := illConditionedSoftmax(rng, 40, 8, 3)
	v := make([]float64, s.Dim())
	aug := loss.NewAugmented(s, 2.0, v)
	if !loss.CanDiag(aug) {
		t.Fatal("Augmented(Softmax) should support diagonals")
	}
	// diag(H_aug) = diag(H_base) + rho
	w := randVec(rng, s.Dim())
	base := make([]float64, s.Dim())
	s.HessianDiag(w, base)
	got := make([]float64, s.Dim())
	aug.HessianDiag(w, got)
	for j := range got {
		if math.Abs(got[j]-(base[j]+2.0)) > 1e-12 {
			t.Fatalf("augmented diag[%d]=%v, want %v", j, got[j], base[j]+2)
		}
	}
	// Quadratic-based Augmented must report no support.
	q := &loss.Quadratic{A: randSPD(rng, 4, 1), B: make([]float64, 4)}
	if loss.CanDiag(loss.NewAugmented(q, 1, make([]float64, 4))) {
		t.Fatal("Augmented(Quadratic) should not claim diagonal support")
	}
}

func TestScaledSupportsJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(225))
	s := illConditionedSoftmax(rng, 40, 8, 3)
	sc := &loss.Scaled{Base: s, Factor: 3}
	if !loss.CanDiag(sc) {
		t.Fatal("Scaled(Softmax) should support diagonals")
	}
	w := randVec(rng, s.Dim())
	base := make([]float64, s.Dim())
	s.HessianDiag(w, base)
	got := make([]float64, s.Dim())
	sc.HessianDiag(w, got)
	for j := range got {
		if math.Abs(got[j]-3*base[j]) > 1e-12 {
			t.Fatalf("scaled diag[%d]=%v, want %v", j, got[j], 3*base[j])
		}
	}
}
