package newton

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/cg"
	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

var testDev = device.New("newton-test", 4)

func randSPD(rng *rand.Rand, d int, shift float64) *linalg.Matrix {
	b := linalg.NewMatrix(d, d)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for k := 0; k < d; k++ {
				acc += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, acc)
		}
		a.Set(i, i, a.At(i, i)+shift)
	}
	return a
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestQuadraticConvergesInOneStep(t *testing.T) {
	// With exact CG, Newton solves a strictly convex quadratic in one
	// iteration from any start.
	rng := rand.New(rand.NewSource(50))
	d := 10
	q := &loss.Quadratic{A: randSPD(rng, d, 1), B: randVec(rng, d)}
	x := randVec(rng, d)
	res := Solve(q, x, Options{
		MaxIters: 5, GradTol: 1e-8,
		CG: cg.Options{MaxIters: 10 * d, RelTol: 1e-12},
	})
	if !res.Converged {
		t.Fatalf("Newton did not converge: %+v", res)
	}
	if res.Iters > 2 {
		t.Fatalf("quadratic took %d Newton iterations, want <=2", res.Iters)
	}
	// Verify optimality: A x = b
	ax := make([]float64, d)
	linalg.MulNT(q.A, x, 1, ax)
	if linalg.Dist2(ax, q.B) > 1e-5 {
		t.Fatalf("solution residual = %v", linalg.Dist2(ax, q.B))
	}
}

func makeSoftmax(rng *rand.Rand, n, p, classes int, l2 float64) *loss.Softmax {
	x := linalg.NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	s, err := loss.NewSoftmax(testDev, loss.Dense{M: x}, y, classes, l2)
	if err != nil {
		panic(err)
	}
	return s
}

func TestSoftmaxConvergesToStationaryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := makeSoftmax(rng, 80, 6, 3, 0.5)
	x := make([]float64, s.Dim())
	res := Solve(s, x, Options{MaxIters: 50, GradTol: 1e-7})
	if !res.Converged {
		t.Fatalf("Newton on softmax did not converge: grad %v after %d iters", res.GradNorm, res.Iters)
	}
	g := make([]float64, s.Dim())
	s.Gradient(x, g)
	if linalg.Nrm2(g) > 1e-6 {
		t.Fatalf("gradient at solution = %v", linalg.Nrm2(g))
	}
}

func TestMonotoneDecrease(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := makeSoftmax(rng, 60, 5, 4, 0.1)
	x := randVec(rng, s.Dim())
	res := Solve(s, x, Options{MaxIters: 20, GradTol: 0})
	prev := math.Inf(1)
	for _, st := range res.Trace {
		if st.Value > prev+1e-12 {
			t.Fatalf("objective increased at iter %d: %v -> %v", st.Iter, prev, st.Value)
		}
		if st.NewValue > st.Value+1e-12 {
			t.Fatalf("line search accepted increase at iter %d", st.Iter)
		}
		prev = st.Value
	}
}

func TestGradTolImmediateStop(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := 5
	q := &loss.Quadratic{A: randSPD(rng, d, 1), B: make([]float64, d)}
	x := make([]float64, d) // already optimal: g = -b = 0
	res := Solve(q, x, Options{MaxIters: 10, GradTol: 1e-10})
	if !res.Converged || res.Iters != 0 {
		t.Fatalf("expected immediate convergence: %+v", res)
	}
}

func TestMaxItersRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	s := makeSoftmax(rng, 100, 8, 5, 1e-6)
	x := make([]float64, s.Dim())
	res := Solve(s, x, Options{MaxIters: 3, GradTol: 1e-16})
	if res.Iters > 3 {
		t.Fatalf("ran %d iterations, cap 3", res.Iters)
	}
	if len(res.Trace) > 3 {
		t.Fatalf("trace has %d entries, cap 3", len(res.Trace))
	}
}

func TestInexactCGStillConverges(t *testing.T) {
	// Paper claim (§2.1): mild CG tolerance preserves Newton convergence.
	rng := rand.New(rand.NewSource(55))
	s := makeSoftmax(rng, 70, 6, 3, 0.3)
	exact := make([]float64, s.Dim())
	Solve(s, exact, Options{MaxIters: 100, GradTol: 1e-10})
	fStar := s.Value(exact)

	inexact := make([]float64, s.Dim())
	res := Solve(s, inexact, Options{
		MaxIters: 100, GradTol: 1e-8,
		CG: cg.Options{MaxIters: 10, RelTol: 1e-4}, // the paper's budget
	})
	if !res.Converged {
		t.Fatalf("inexact Newton did not converge: %+v", res)
	}
	if gap := s.Value(inexact) - fStar; gap > 1e-6*math.Max(1, math.Abs(fStar)) {
		t.Fatalf("inexact solution gap = %v", gap)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	q := &loss.Quadratic{A: randSPD(rng, 3, 1), B: make([]float64, 3)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Solve(q, make([]float64, 4), Options{})
}

func TestTraceRecordsCGAndAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	s := makeSoftmax(rng, 40, 4, 3, 0.2)
	x := make([]float64, s.Dim())
	res := Solve(s, x, Options{MaxIters: 5, GradTol: 0})
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for _, st := range res.Trace {
		if st.Alpha <= 0 || st.Alpha > 1 {
			t.Fatalf("alpha out of range: %+v", st)
		}
		if st.CGIters < 0 {
			t.Fatalf("negative CG iters: %+v", st)
		}
	}
}
