package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a full stack (predictor -> registry -> batcher ->
// server) over httptest.
func newTestServer(t *testing.T, classes, features int) (*httptest.Server, *Predictor, func()) {
	t.Helper()
	p := makePredictor(t, classes, features, 40)
	reg := NewRegistry()
	reg.Swap(p, ModelMeta{Path: "test.gob", Solver: "newton-admm"})
	bat := NewBatcher(reg, BatcherConfig{MaxBatch: 8, MaxLinger: 100 * time.Microsecond, QueueDepth: 64})
	srv := NewServer(reg, bat, nil)
	ts := httptest.NewServer(srv.Handler())
	return ts, p, func() {
		ts.Close()
		bat.Close()
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerPredictDenseAndSparse(t *testing.T) {
	const classes, features = 4, 6
	ts, p, done := newTestServer(t, classes, features)
	defer done()

	rng := rand.New(rand.NewSource(41))
	rows := randRows(rng, 5, features, 0.6)
	want := make([]int, len(rows))
	if err := p.PredictDense(rows, want); err != nil {
		t.Fatal(err)
	}
	idx, val := toCSRRows(rows)

	// Mix dense arrays and sparse objects in one request.
	instances := []any{}
	for i, r := range rows {
		if i%2 == 0 {
			instances = append(instances, r)
		} else {
			instances = append(instances, map[string]any{"indices": idx[i], "values": val[i]})
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": instances})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr struct {
		Predictions  []int `json:"predictions"`
		ModelVersion int64 `json:"model_version"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion != 1 {
		t.Fatalf("model_version %d", pr.ModelVersion)
	}
	if len(pr.Predictions) != len(rows) {
		t.Fatalf("%d predictions for %d instances", len(pr.Predictions), len(rows))
	}
	for i, c := range pr.Predictions {
		if c != want[i] {
			t.Fatalf("instance %d: class %d, want %d", i, c, want[i])
		}
	}
}

func TestServerProba(t *testing.T) {
	const classes, features = 3, 5
	ts, p, done := newTestServer(t, classes, features)
	defer done()

	rng := rand.New(rand.NewSource(42))
	rows := randRows(rng, 3, features, 1)
	want := make([]int, len(rows))
	if err := p.PredictDense(rows, want); err != nil {
		t.Fatal(err)
	}
	instances := make([]any, len(rows))
	for i, r := range rows {
		instances[i] = r
	}
	resp, body := postJSON(t, ts.URL+"/v1/proba", map[string]any{"instances": instances})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr struct {
		Predictions   []int       `json:"predictions"`
		Probabilities [][]float64 `json:"probabilities"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Probabilities) != len(rows) {
		t.Fatalf("%d probability rows", len(pr.Probabilities))
	}
	for i, probs := range pr.Probabilities {
		if len(probs) != classes {
			t.Fatalf("row %d has %d probabilities", i, len(probs))
		}
		var sum float64
		for _, v := range probs {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if pr.Predictions[i] != want[i] {
			t.Fatalf("row %d: class %d, want %d", i, pr.Predictions[i], want[i])
		}
	}
}

func TestServerBadRequests(t *testing.T) {
	ts, _, done := newTestServer(t, 3, 5)
	defer done()

	resp, _ := postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty instances: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": []any{"nope"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("string instance: status %d", resp.StatusCode)
	}
	// Typo'd sparse keys must be a 400, not an all-zeros prediction.
	resp, body := postJSON(t, ts.URL+"/v1/predict",
		map[string]any{"instances": []any{map[string]any{"idx": []int{1}, "vals": []float64{1}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd sparse keys: status %d: %s", resp.StatusCode, body)
	}
	// An empty object has neither indices nor values.
	resp, body = postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": []any{map[string]any{}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sparse object: status %d: %s", resp.StatusCode, body)
	}
	// An explicit all-zero sparse row is still legal.
	resp, body = postJSON(t, ts.URL+"/v1/predict",
		map[string]any{"instances": []any{map[string]any{"indices": []int{}, "values": []float64{}}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit empty sparse row: status %d: %s", resp.StatusCode, body)
	}
	// Wrong feature width is a per-row validation error -> 400.
	resp, body = postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": []any{[]float64{1, 2}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short row: status %d: %s", resp.StatusCode, body)
	}
	// GET on a POST endpoint.
	r, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: status %d", r.StatusCode)
	}
}

func TestServerNoModel503(t *testing.T) {
	reg := NewRegistry()
	bat := NewBatcher(reg, BatcherConfig{})
	defer bat.Close()
	ts := httptest.NewServer(NewServer(reg, bat, nil).Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": []any{[]float64{1}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict without model: status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz without model: status %d", r.StatusCode)
	}
}

func TestServerBackpressure429(t *testing.T) {
	// Tiny queue + a slow scorer: a burst inside one HTTP request must
	// hit ErrQueueFull and surface as 429.
	f := &slowScorer{fakeScorer: fakeScorer{classes: 3, features: 2}, delay: 2 * time.Millisecond}
	reg := NewRegistry() // only for Meta; swap in a real tiny predictor
	p := makePredictor(t, 3, 2, 43)
	reg.Swap(p, ModelMeta{})
	bat := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 1, MaxLinger: -1, QueueDepth: 1})
	defer bat.Close()
	ts := httptest.NewServer(NewServer(reg, bat, nil).Handler())
	defer ts.Close()

	instances := make([]any, 64)
	for i := range instances {
		instances[i] = []float64{1, 0}
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": instances})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (want 429): %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("body %s", body)
	}
}

type slowScorer struct {
	fakeScorer
	delay time.Duration
}

func (s *slowScorer) PredictDense(rows [][]float64, out []int) error {
	time.Sleep(s.delay)
	return s.fakeScorer.PredictDense(rows, out)
}

func TestServerHealthzAndMetricz(t *testing.T) {
	ts, _, done := newTestServer(t, 3, 5)
	defer done()

	// Drive a little traffic first.
	postJSON(t, ts.URL+"/v1/predict", map[string]any{"instances": []any{[]float64{1, 2, 3, 4, 5}}})

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", r.StatusCode)
	}
	var health struct {
		Status string    `json:"status"`
		Model  ModelMeta `json:"model"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Model.Version != 1 || health.Model.Classes != 3 {
		t.Fatalf("health %+v", health)
	}

	r, err = http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, key := range []string{
		"nadmm_requests_submitted_total", "nadmm_requests_total", "nadmm_batches_total",
		"nadmm_request_latency_p50_seconds", "nadmm_request_latency_p99_seconds",
		"nadmm_model_version 1", "nadmm_device_launches_total",
	} {
		if !strings.Contains(string(mb), key) {
			t.Fatalf("metricz missing %q:\n%s", key, mb)
		}
	}
}

func TestServerReload(t *testing.T) {
	reg := NewRegistry()
	p := makePredictor(t, 3, 5, 44)
	reg.Swap(p, ModelMeta{})
	bat := NewBatcher(reg, BatcherConfig{})
	defer bat.Close()

	calls := 0
	reload := func() (int64, error) {
		calls++
		if calls > 1 {
			return 0, fmt.Errorf("checkpoint corrupt")
		}
		return 7, nil
	}
	ts := httptest.NewServer(NewServer(reg, bat, reload).Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/reload", map[string]any{})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"model_version":7`) {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/reload", map[string]any{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload: status %d", resp.StatusCode)
	}

	// Without a reloader the endpoint reports 501.
	ts2 := httptest.NewServer(NewServer(reg, bat, nil).Handler())
	defer ts2.Close()
	resp, _ = postJSON(t, ts2.URL+"/v1/reload", map[string]any{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("nil reloader: status %d", resp.StatusCode)
	}
}

func TestLoadGenClosedLoopInProcess(t *testing.T) {
	const classes, features = 3, 8
	p := makePredictor(t, classes, features, 45)
	reg := NewRegistry()
	reg.Swap(p, ModelMeta{})
	bat := NewBatcher(reg, BatcherConfig{MaxBatch: 16, MaxLinger: 50 * time.Microsecond, QueueDepth: 256})
	defer bat.Close()

	rng := rand.New(rand.NewSource(46))
	rows := randRows(rng, 64, features, 1)
	res, err := RunLoad(bat, rows, LoadConfig{
		Mode: "closed", Concurrency: 8,
		Duration: 200 * time.Millisecond, Warmup: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors under load", res.Errors)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Fatalf("implausible latency snapshot %+v", res.Latency)
	}
}

func TestLoadGenOpenLoop(t *testing.T) {
	const classes, features = 3, 8
	p := makePredictor(t, classes, features, 47)
	reg := NewRegistry()
	reg.Swap(p, ModelMeta{})
	bat := NewBatcher(reg, BatcherConfig{MaxBatch: 16, MaxLinger: 50 * time.Microsecond, QueueDepth: 256})
	defer bat.Close()

	rng := rand.New(rand.NewSource(48))
	rows := randRows(rng, 16, features, 1)
	res, err := RunLoad(bat, rows, LoadConfig{
		Mode: "open", Rate: 2000, Concurrency: 32,
		Duration: 200 * time.Millisecond, Warmup: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 {
		t.Fatalf("open loop completed nothing: %+v", res)
	}
	if _, err := RunLoad(bat, rows, LoadConfig{Mode: "open"}); err == nil {
		t.Fatal("open loop without rate accepted")
	}
	if _, err := RunLoad(bat, rows, LoadConfig{Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := RunLoad(bat, nil, LoadConfig{}); err == nil {
		t.Fatal("empty row set accepted")
	}
}

func TestHTTPTargetAgainstServer(t *testing.T) {
	const classes, features = 4, 6
	ts, p, done := newTestServer(t, classes, features)
	defer done()

	rng := rand.New(rand.NewSource(49))
	rows := randRows(rng, 4, features, 1)
	want := make([]int, len(rows))
	if err := p.PredictDense(rows, want); err != nil {
		t.Fatal(err)
	}
	target := &HTTPTarget{Base: ts.URL}
	for i, r := range rows {
		got, err := target.Predict(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("row %d: got %d want %d", i, got, want[i])
		}
	}
}
