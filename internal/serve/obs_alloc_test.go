package serve

import (
	"testing"

	"newtonadmm/internal/obs"
)

// silentScorer is a zero-allocation Scorer: unlike fakeScorer it
// records nothing, so AllocsPerRun measures only the batcher itself.
type silentScorer struct{ classes, features int }

func (s silentScorer) Classes() int  { return s.classes }
func (s silentScorer) Features() int { return s.features }

func (s silentScorer) PredictDense(rows [][]float64, out []int) error {
	for i := range rows {
		out[i] = 0
	}
	return nil
}

func (s silentScorer) PredictCSR(idx [][]int, val [][]float64, out []int) error {
	for i := range idx {
		out[i] = 0
	}
	return nil
}

func (s silentScorer) ProbaDense(rows [][]float64, out []float64) error {
	for i := range out {
		out[i] = 1 / float64(s.classes)
	}
	return nil
}

func (s silentScorer) ProbaCSR(idx [][]int, val [][]float64, out []float64) error {
	return s.ProbaDense(nil, out)
}

// TestBatcherSubmitZeroAlloc pins the acceptance bound: the submit/wait
// round-trip performs zero heap allocations per request at the DEFAULT
// sampling stride — i.e. the 1-in-8 latency stamping and trace capture
// must themselves be allocation-free once the recorder's ring is warm.
// Sampled traces occupy ring slots until displacement recycling starts,
// so the warm-up must push enough sampled requests through to fill it.
func TestBatcherSubmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by -race instrumentation")
	}
	b := NewBatcher(fakeSource{s: silentScorer{classes: 3, features: 5}},
		BatcherConfig{MaxBatch: 8, MaxLinger: -1, QueueDepth: 1024})
	defer b.Close()
	row := make([]float64, 5)

	submitWait := func() {
		tk, err := b.SubmitDense(row, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < obs.DefaultRingSize*DefaultSampleEvery*2; i++ {
		submitWait()
	}
	if allocs := testing.AllocsPerRun(400, submitWait); allocs != 0 {
		t.Fatalf("SubmitDense+Wait: %.2f allocs/op at default sampling, want 0", allocs)
	}
}
