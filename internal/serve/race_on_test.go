//go:build race

package serve

// raceEnabled skips allocation-count tests under -race: the race
// detector instruments sync primitives with its own allocations, so
// AllocsPerRun bounds are only meaningful in uninstrumented builds.
const raceEnabled = true
