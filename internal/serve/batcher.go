package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/metrics"
	"newtonadmm/internal/obs"
)

// Errors returned by the batcher's admission path.
var (
	// ErrQueueFull is backpressure: the bounded admission queue is at
	// capacity and the request was rejected (never enqueued, never
	// dropped silently). Callers translate it to HTTP 429.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed means the batcher was shut down.
	ErrClosed = errors.New("serve: batcher closed")
	// ErrNoModel means no model is registered to score against.
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrModelShapeChanged means a hot swap changed the model's class
	// count between a request's admission and its scoring. The request
	// was valid when sent — callers should retry against the new shape
	// (the HTTP layer maps this to 503, not 4xx).
	ErrModelShapeChanged = errors.New("serve: model shape changed by hot swap; retry")
)

// RejectionError is a typed admission rejection — the 429 class with a
// machine-readable reason and an optional Retry-After hint (a token
// bucket's refill time). Its Is method matches ErrQueueFull, so every
// pre-control-plane backpressure consumer (router failover, HTTP
// status mapping, load-generator counters) keeps treating policy
// rejections as the load signal they are.
type RejectionError struct {
	Reason     control.Reason
	RetryAfter time.Duration
}

func (e *RejectionError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("serve: admission rejected (%s, retry after %v)", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("serve: admission rejected (%s)", e.Reason)
}

// Is reports rejection errors as ErrQueueFull for errors.Is, keeping
// the single backpressure sentinel every consumer already switches on.
func (e *RejectionError) Is(target error) bool { return target == ErrQueueFull }

// RejectionOf extracts the machine-readable rejection reason and retry
// hint from an error chain. A bare ErrQueueFull (the bounded queue's
// own backpressure) reports queue_full with no hint; a non-rejection
// error reports ok = false.
func RejectionOf(err error) (reason control.Reason, retryAfter time.Duration, ok bool) {
	var re *RejectionError
	if errors.As(err, &re) {
		return re.Reason, re.RetryAfter, true
	}
	if errors.Is(err, ErrQueueFull) {
		return control.ReasonQueueFull, 0, true
	}
	return control.ReasonNone, 0, false
}

// Scorer is the batch-scoring surface the batcher drives; *Predictor is
// the production implementation. Tests substitute fakes to exercise
// queueing behavior independent of the kernel layer.
type Scorer interface {
	Classes() int
	Features() int
	PredictDense(rows [][]float64, out []int) error
	PredictCSR(idx [][]int, val [][]float64, out []int) error
	ProbaDense(rows [][]float64, out []float64) error
	ProbaCSR(idx [][]int, val [][]float64, out []float64) error
}

// ScorerSource hands out the current scorer with a release function, so
// a batch holds one model snapshot for its whole launch while hot swaps
// proceed concurrently; *Registry is the production implementation.
type ScorerSource interface {
	Acquire() (Scorer, func(), error)
}

// BatcherConfig tunes the dynamic micro-batcher.
type BatcherConfig struct {
	// MaxBatch is the largest number of rows coalesced into one kernel
	// launch; <= 0 selects 64.
	MaxBatch int
	// MaxLinger bounds how long the first request of a batch waits for
	// stragglers before the batch launches anyway; < 0 disables
	// lingering (launch as soon as the queue is drained), 0 selects
	// 200µs.
	MaxLinger time.Duration
	// QueueDepth bounds the admission queue PER PRIORITY CLASS; <= 0
	// selects 4*MaxBatch. Per-class capacity isolation is deliberate: a
	// background flood filling its own queue cannot occupy interactive
	// slots, so interactive 429s stay a function of interactive load.
	QueueDepth int
	// SampleEvery is the observation stride shared by the server-side
	// latency histogram and trace sampling: 1 in SampleEvery requests is
	// stamped, timed per stage, and recorded into the trace ring. 0
	// selects DefaultSampleEvery (the historical 1-in-8); < 0 disables
	// sampling entirely (the effective value is then 0).
	SampleEvery int
	// Admission, when non-nil, is evaluated on every submit before a
	// queue slot is taken; rejections surface as *RejectionError (the
	// 429 class). Swappable at runtime with SetPolicy.
	Admission control.AdmissionPolicy
	// PriorityWeights is the per-class dequeue weight of the weighted
	// round-robin scheduler; an all-zero value selects
	// control.DefaultWeights (16/4/1).
	PriorityWeights [control.NumPriorities]int
	// LingerTimer, when non-nil, replaces the wall-clock linger timer:
	// the batching loop arms it with Reset(MaxLinger) when a partial
	// batch starts lingering and flushes when C delivers. This is the
	// synthetic-clock seam for the fleet simulator and deterministic
	// tests; production leaves it nil (a time.Timer).
	LingerTimer LingerTimer
}

// LingerTimer is the batcher's flush-timer seam. Reset arms the timer
// for one linger window, C delivers the expiry, and Stop disarms it
// leaving C drained (no stale expiry may leak into the next window).
// Implementations are used from the single batching goroutine only.
type LingerTimer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop()
}

// wallLingerTimer is the production LingerTimer over a time.Timer,
// carrying the stop-and-drain discipline a reused timer needs.
type wallLingerTimer struct{ t *time.Timer }

func newWallLingerTimer() *wallLingerTimer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &wallLingerTimer{t: t}
}

func (w *wallLingerTimer) C() <-chan time.Time  { return w.t.C }
func (w *wallLingerTimer) Reset(d time.Duration) { w.t.Reset(d) }
func (w *wallLingerTimer) Stop() {
	if !w.t.Stop() {
		select {
		case <-w.t.C:
		default:
		}
	}
}

// DefaultSampleEvery is the default latency/trace sampling stride.
const DefaultSampleEvery = 8

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxLinger == 0 {
		c.MaxLinger = 200 * time.Microsecond
	}
	if c.MaxLinger < 0 {
		c.MaxLinger = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.SampleEvery < 0 {
		c.SampleEvery = 0
	}
	if c.PriorityWeights == ([control.NumPriorities]int{}) {
		c.PriorityWeights = control.DefaultWeights
	}
	return c
}

// request is one in-flight prediction. Requests are pooled; the done
// channel is created once per pooled object and reused.
type request struct {
	// Exactly one of dense or (idx, val) is set. The slices are caller-
	// owned and only read until done is signaled (the caller blocks, so
	// they stay valid; the predictor stages its own copy).
	dense []float64
	idx   []int
	val   []float64

	// probaOut non-nil requests the full probability vector (length
	// Classes); the batcher copies the row's probabilities into it.
	probaOut []float64

	// pri is the request's service class; the zero value (Interactive)
	// is the legacy default for untagged traffic.
	pri control.Priority

	class int
	err   error
	// enq is only stamped on sampled requests (1 in SampleEvery): the
	// admission path is the serving hot path, and two clock reads plus a
	// histogram update per request are measurable at the request rates a
	// single batcher sustains. Sampling keeps /metricz honest while
	// keeping the hot path lean. deq is stamped at dequeue for the same
	// requests, bounding the queue-wait span.
	enq time.Time
	deq time.Time
	// trace collects per-stage spans for sampled requests. ownTrace
	// marks traces this batcher started (published at finish); a
	// propagated trace (scatter leg of a routed request) stays owned by
	// the submitter, which publishes it after Wait.
	trace    *obs.Trace
	ownTrace bool
	done     chan struct{}
}

// BatcherStats is a snapshot of the batcher's counters.
type BatcherStats struct {
	Submitted int64 // accepted into the queue
	Rejected  int64 // refused with ErrQueueFull
	Completed int64 // answered (including per-row errors)
	Batches   int64 // kernel batches launched
}

// Batcher coalesces concurrent single-row prediction requests into
// micro-batches scored by one fused launch — continuous batching with a
// bounded admission queue and linger-based flush, the standard serving
// discipline for amortizing per-request overhead into batched matrix
// kernels.
type Batcher struct {
	cfg    BatcherConfig
	source ScorerSource

	// queues holds one bounded admission queue per priority class; the
	// loop dequeues across them with deterministic weighted round-robin
	// (wrr), so a background flood degrades to its weight's share of
	// batch slots instead of starving interactive requests.
	queues [control.NumPriorities]chan *request
	stop   chan struct{}

	// policy is the admission policy evaluated on every submit, held in
	// an atomic pointer so SetPolicy swaps it race-free under load. A
	// nil pointer means open admission.
	policy      atomic.Pointer[policyBox]
	rejectStats control.RejectStats

	// wrr and lenFn are loop-goroutine state (lenFn is pre-bound so the
	// hot dequeue path does not allocate a method-value closure).
	wrr   *control.WRR
	lenFn func(control.Priority) int

	// closeMu guards the closed flag vs. in-flight submits: Submit holds
	// the read side while enqueueing, Close takes the write side before
	// signaling stop, so after Close returns the loop's final drain sees
	// every accepted request.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	pool sync.Pool // *request

	submitted  atomic.Int64
	rejected   atomic.Int64
	completed  atomic.Int64
	batches    atomic.Int64
	sampleTick atomic.Int64

	// Latency is enqueue-to-answer per request; BatchSize records rows
	// per launched batch through the same histogram machinery. The
	// Stage* histograms attribute the sampled requests' time per stage
	// (queue wait, batch linger, kernel execute) — the same boundaries
	// the trace spans record.
	Latency      *metrics.Histogram
	BatchSize    *metrics.Histogram
	StageQueue   *metrics.Histogram
	StageLinger  *metrics.Histogram
	StageExecute *metrics.Histogram

	// rec is the trace ring behind /debug/tracez for this replica.
	rec *obs.Recorder

	// Batch assembly scratch (loop goroutine only; grow-only).
	batch    []*request
	dDense   [][]float64
	dReqs    []*request
	sIdx     [][]int
	sVal     [][]float64
	sReqs    []*request
	outInt   []int
	outProba []float64
}

// policyBox wraps the AdmissionPolicy interface value so it can live
// in an atomic.Pointer (lock-free policy swap under concurrent load).
type policyBox struct{ p control.AdmissionPolicy }

// NewBatcher starts the batching loop over the given scorer source.
func NewBatcher(source ScorerSource, cfg BatcherConfig) *Batcher {
	b := &Batcher{
		cfg:          cfg.withDefaults(),
		source:       source,
		stop:         make(chan struct{}),
		Latency:      metrics.NewHistogram(),
		BatchSize:    metrics.NewHistogram(),
		StageQueue:   metrics.NewHistogram(),
		StageLinger:  metrics.NewHistogram(),
		StageExecute: metrics.NewHistogram(),
		rec:          obs.NewRecorder(0),
	}
	for c := range b.queues {
		b.queues[c] = make(chan *request, b.cfg.QueueDepth)
	}
	b.wrr = control.NewWRR(b.cfg.PriorityWeights)
	b.lenFn = func(c control.Priority) int { return len(b.queues[c]) }
	b.SetPolicy(b.cfg.Admission)
	b.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	b.wg.Add(1)
	go b.loop()
	return b
}

// SetPolicy installs or swaps the admission policy evaluated on every
// submit; nil opens admission. Safe to call under concurrent load —
// in-flight submits see either the old or the new policy.
func (b *Batcher) SetPolicy(p control.AdmissionPolicy) {
	if p == nil {
		b.policy.Store(nil)
		return
	}
	b.policy.Store(&policyBox{p: p})
}

// Policy returns the installed admission policy (nil when open).
func (b *Batcher) Policy() control.AdmissionPolicy {
	if box := b.policy.Load(); box != nil {
		return box.p
	}
	return nil
}

// AdmissionStats returns the per-reason rejection counters (shared
// with the registry rows; read-only for callers).
func (b *Batcher) AdmissionStats() *control.RejectStats { return &b.rejectStats }

// QueueLen returns the number of requests waiting in one priority
// class's queue — the nadmm_priority_queue_depth gauge source.
func (b *Batcher) QueueLen(pri control.Priority) int {
	if !pri.Valid() {
		return 0
	}
	return len(b.queues[pri])
}

// Config returns the effective (defaulted) configuration.
func (b *Batcher) Config() BatcherConfig { return b.cfg }

// Recorder returns the trace ring this batcher publishes sampled
// traces into (the /debug/tracez source for the replica).
func (b *Batcher) Recorder() *obs.Recorder { return b.rec }

// Stats returns a snapshot of the batcher counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Submitted: b.submitted.Load(),
		Rejected:  b.rejected.Load(),
		Completed: b.completed.Load(),
		Batches:   b.batches.Load(),
	}
}

// Close shuts the batcher down: subsequent submits fail with ErrClosed,
// already-accepted requests are answered (scored or rejected with
// ErrClosed), and the loop exits. Close is idempotent and blocks until
// the loop drains.
func (b *Batcher) Close() {
	b.closeMu.Lock()
	already := b.closed
	b.closed = true
	b.closeMu.Unlock()
	if !already {
		close(b.stop)
	}
	b.wg.Wait()
}

// InFlight returns the number of accepted requests not yet answered.
func (b *Batcher) InFlight() int64 {
	return b.submitted.Load() - b.completed.Load()
}

// Drain blocks until every request accepted before the call has been
// answered (scored or failed); requests submitted after Drain starts are
// not waited for. This is the replica-side drain hook the serving
// router uses to retire a replica without dropping accepted work: stop
// routing to the replica, Drain, then close it.
func (b *Batcher) Drain() {
	target := b.submitted.Load()
	for b.completed.Load() < target {
		time.Sleep(100 * time.Microsecond)
	}
}

func (b *Batcher) getReq() *request {
	return b.pool.Get().(*request)
}

// putReq clears the request's payload references before pooling it, so
// idle pooled requests never pin callers' row or probability buffers
// (the same retention discipline clearScratch enforces on the batch
// scratch), and drains a stray completion signal so a reused request
// never sees a stale one (possible only if a caller abandoned a
// ticket).
func (b *Batcher) putReq(r *request) {
	r.dense, r.idx, r.val, r.probaOut = nil, nil, nil, nil
	r.pri = control.Interactive
	r.class, r.err = 0, nil
	r.enq, r.deq = time.Time{}, time.Time{}
	r.trace, r.ownTrace = nil, false
	select {
	case <-r.done:
	default:
	}
	b.pool.Put(r)
}

// cost prices one request for the admission policy: rows x features
// with rows = 1, where a sparse row's width is its nonzero count.
func (r *request) cost() int64 {
	if r.dense != nil {
		return int64(len(r.dense))
	}
	return int64(len(r.idx))
}

// submit enqueues r with backpressure; it never blocks. Every reject
// path is strictly no-publish: the rejection counters are bumped only
// after the request carries no observable state (no trace, no
// timestamps, no queue slot), so the pooled object the caller recycles
// is already inert — the old order recycled state a -race stress run
// could observe mid-reset.
func (b *Batcher) submit(r *request) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	if box := b.policy.Load(); box != nil {
		if d := box.p.Admit(r.cost(), r.pri); !d.Admit {
			// Policy rejection: evaluated before any stamp or queue
			// slot, so nothing to unwind.
			b.rejected.Add(1)
			b.rejectStats.Note(d.Reason)
			return &RejectionError{Reason: d.Reason, RetryAfter: d.RetryAfter}
		}
	}
	if r.trace != nil {
		// A propagated trace (the replica leg of a routed request) is
		// always timed: the originator already made the sampling call.
		r.enq = time.Now()
	} else if n := b.cfg.SampleEvery; n > 0 && b.sampleTick.Add(1)%int64(n) == 0 {
		r.enq = time.Now() // stamped before the enqueue: the loop reads it
		r.trace = b.rec.Start(r.enq)
		r.ownTrace = true
	}
	select {
	case b.queues[r.pri] <- r:
		b.submitted.Add(1)
		return nil
	default:
	}
	// Queue overflow: unwind the stamps and the trace BEFORE counting
	// the rejection, restoring the no-publish invariant.
	if r.ownTrace {
		b.rec.Discard(r.trace)
	}
	r.trace, r.ownTrace = nil, false
	r.enq = time.Time{}
	b.rejected.Add(1)
	b.rejectStats.Note(control.ReasonQueueFull)
	return ErrQueueFull
}

// Ticket is a handle for one submitted request; Wait blocks for the
// result. Tickets are single-use.
type Ticket struct {
	r *request
	b *Batcher
}

// Wait blocks until the request is answered and returns the predicted
// class. If the request asked for probabilities they have been copied
// into the submitted buffer by the time Wait returns.
func (t Ticket) Wait() (int, error) {
	<-t.r.done
	class, err := t.r.class, t.r.err
	t.b.putReq(t.r)
	return class, err
}

// SubmitDense enqueues one dense row; probaOut, when non-nil, must have
// Classes entries and receives the probability vector. A nil row is
// rejected (it would be indistinguishable from a sparse request in the
// batch partition); an explicit all-zero row is a zero-filled slice of
// Features entries, or SubmitCSR with empty indices/values.
func (b *Batcher) SubmitDense(row []float64, probaOut []float64) (Ticket, error) {
	return b.SubmitDensePri(row, probaOut, control.Interactive, nil)
}

// SubmitCSR enqueues one sparse row (strictly increasing indices).
func (b *Batcher) SubmitCSR(idx []int, val []float64, probaOut []float64) (Ticket, error) {
	return b.SubmitCSRPri(idx, val, probaOut, control.Interactive, nil)
}

// SubmitDenseTraced is SubmitDense with a caller-owned trace attached:
// the batcher records its queue/linger/execute spans into tr but does
// NOT publish it — the caller keeps ownership and finishes the trace
// after the ticket's Wait returns. This is how a propagated trace (a
// frame with the trace trailer, or a routed in-process request) picks
// up replica-side stages.
func (b *Batcher) SubmitDenseTraced(row []float64, probaOut []float64, tr *obs.Trace) (Ticket, error) {
	return b.SubmitDensePri(row, probaOut, control.Interactive, tr)
}

// SubmitCSRTraced is SubmitCSR with a caller-owned trace attached.
func (b *Batcher) SubmitCSRTraced(idx []int, val []float64, probaOut []float64, tr *obs.Trace) (Ticket, error) {
	return b.SubmitCSRPri(idx, val, probaOut, control.Interactive, tr)
}

// SubmitDensePri is the full-control submit: service class plus an
// optional caller-owned trace (nil tr falls back to the batcher's own
// sampling). An invalid class is clamped to Interactive — the wire and
// HTTP layers validate before reaching here.
func (b *Batcher) SubmitDensePri(row []float64, probaOut []float64, pri control.Priority, tr *obs.Trace) (Ticket, error) {
	if row == nil {
		return Ticket{}, errors.New("serve: nil dense row")
	}
	if !pri.Valid() {
		pri = control.Interactive
	}
	r := b.getReq()
	r.dense = row
	r.probaOut = probaOut
	r.pri = pri
	r.trace = tr
	if err := b.submit(r); err != nil {
		b.putReq(r)
		return Ticket{}, err
	}
	return Ticket{r: r, b: b}, nil
}

// SubmitCSRPri is SubmitDensePri for one sparse row.
func (b *Batcher) SubmitCSRPri(idx []int, val []float64, probaOut []float64, pri control.Priority, tr *obs.Trace) (Ticket, error) {
	if !pri.Valid() {
		pri = control.Interactive
	}
	r := b.getReq()
	r.idx, r.val = idx, val
	r.probaOut = probaOut
	r.pri = pri
	r.trace = tr
	if err := b.submit(r); err != nil {
		b.putReq(r)
		return Ticket{}, err
	}
	return Ticket{r: r, b: b}, nil
}

// Predict scores one dense row through the micro-batcher.
func (b *Batcher) Predict(row []float64) (int, error) {
	t, err := b.SubmitDense(row, nil)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// PredictCSR scores one sparse row through the micro-batcher.
func (b *Batcher) PredictCSR(idx []int, val []float64) (int, error) {
	t, err := b.SubmitCSR(idx, val, nil)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// Proba scores one dense row and fills out (length Classes) with the
// class probabilities, returning the predicted class.
func (b *Batcher) Proba(row []float64, out []float64) (int, error) {
	t, err := b.SubmitDense(row, out)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// ProbaCSR is Proba for one sparse row.
func (b *Batcher) ProbaCSR(idx []int, val []float64, out []float64) (int, error) {
	t, err := b.SubmitCSR(idx, val, out)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// loop is the batching goroutine: collect a batch (greedy drain, then
// linger), score it, answer every request, repeat.
func (b *Batcher) loop() {
	defer b.wg.Done()
	timer := b.cfg.LingerTimer
	if timer == nil {
		timer = newWallLingerTimer()
	}
	for {
		// First request of the next batch: weighted pick when work is
		// already pending, else block on all three class queues. The
		// blocking select takes whichever class arrives (charged via
		// Spend), so an idle batcher never adds scheduling latency.
		first, ok := b.takeWeighted()
		if !ok {
			select {
			case first = <-b.queues[control.Interactive]:
				b.wrr.Spend(control.Interactive)
			case first = <-b.queues[control.Batch]:
				b.wrr.Spend(control.Batch)
			case first = <-b.queues[control.Background]:
				b.wrr.Spend(control.Background)
			case <-b.stop:
				b.drainReject()
				return
			}
		}
		b.noteDequeue(first)
		b.batch = append(b.batch[:0], first)
		stopping := b.fill(timer)
		b.scoreBatch(b.batch)
		b.clearScratch()
		if stopping {
			b.drainReject()
			return
		}
	}
}

// takeWeighted dequeues one pending request under the credit scheduler,
// or reports that all three class queues are empty. The loop goroutine
// is the only receiver, so a queue Pick saw as non-empty still holds
// the request when we receive from it.
func (b *Batcher) takeWeighted() (*request, bool) {
	c, ok := b.wrr.Pick(b.lenFn)
	if !ok {
		return nil, false
	}
	select {
	case r := <-b.queues[c]:
		return r, true
	default:
		// Unreachable while loop() is the sole consumer; fail soft
		// rather than block if that invariant is ever broken.
		return nil, false
	}
}

// fill grows the current batch to MaxBatch: greedy weighted drain
// first, then a linger window measured from the first request's arrival.
// Returns true when shutdown was requested mid-fill.
func (b *Batcher) fill(timer LingerTimer) bool {
	for len(b.batch) < b.cfg.MaxBatch {
		r, ok := b.takeWeighted()
		if !ok {
			break
		}
		b.noteDequeue(r)
		b.batch = append(b.batch, r)
	}
	if len(b.batch) >= b.cfg.MaxBatch || b.cfg.MaxLinger <= 0 {
		return false
	}
	// Linger from batch formation (the first dequeue), so no request
	// waits in the batcher more than ~MaxLinger before its launch
	// starts.
	timer.Reset(b.cfg.MaxLinger)
	defer timer.Stop()
	for len(b.batch) < b.cfg.MaxBatch {
		var r *request
		select {
		case r = <-b.queues[control.Interactive]:
			b.wrr.Spend(control.Interactive)
		case r = <-b.queues[control.Batch]:
			b.wrr.Spend(control.Batch)
		case r = <-b.queues[control.Background]:
			b.wrr.Spend(control.Background)
		case <-timer.C():
			return false
		case <-b.stop:
			return true
		}
		b.noteDequeue(r)
		b.batch = append(b.batch, r)
		// A linger arrival often rides a burst; drain it under the
		// scheduler so the weights, not select's coin flip, decide who
		// fills the remaining slots.
		for len(b.batch) < b.cfg.MaxBatch {
			r, ok := b.takeWeighted()
			if !ok {
				break
			}
			b.noteDequeue(r)
			b.batch = append(b.batch, r)
		}
	}
	return false
}

// noteDequeue closes a sampled request's queue-wait span the moment it
// joins the forming batch. Untraced requests pay one nil check.
func (b *Batcher) noteDequeue(r *request) {
	if r.trace == nil {
		return
	}
	r.deq = time.Now()
	wait := r.deq.Sub(r.enq)
	r.trace.AddSpan(obs.StageQueue, -1, 0, r.enq, wait)
	b.StageQueue.Observe(wait)
}

// drainReject answers every request still queued after shutdown.
func (b *Batcher) drainReject() {
	for c := range b.queues {
		for {
			select {
			case r := <-b.queues[c]:
				r.err = ErrClosed
				b.finish(r)
				continue
			default:
			}
			break
		}
	}
}

func (b *Batcher) finish(r *request) {
	if !r.enq.IsZero() { // latency-sampled request
		b.Latency.Observe(time.Since(r.enq))
	}
	if r.ownTrace {
		// The batcher started this trace, so the batcher publishes it;
		// propagated traces stay with their submitter, which finishes
		// them after Wait (the done signal below is the ownership
		// handoff back).
		b.rec.Finish(r.trace, time.Now())
		r.trace, r.ownTrace = nil, false
	}
	b.completed.Add(1)
	r.done <- struct{}{}
}

// clearScratch drops the batch-assembly scratch's pointers once a batch
// completes, so the grow-only arrays don't pin finished requests (and
// transitively their callers' row buffers) until the next batch of the
// same size happens to overwrite the slots. Only the batcher's own
// slices are touched — the request objects now belong to their waiters.
func (b *Batcher) clearScratch() {
	for i := range b.batch {
		b.batch[i] = nil
	}
	for i := range b.dReqs {
		b.dReqs[i], b.dDense[i] = nil, nil
	}
	for i := range b.sReqs {
		b.sReqs[i], b.sIdx[i], b.sVal[i] = nil, nil, nil
	}
}

// scoreBatch scores one coalesced batch: requests are partitioned into a
// dense and a CSR sub-batch (each still one launch); if any request in a
// sub-batch wants probabilities the whole sub-batch is scored through
// ProbaInto (classes via argmax, same launch), otherwise PredictInto.
func (b *Batcher) scoreBatch(batch []*request) {
	if len(batch) == 0 {
		return
	}
	b.batches.Add(1)
	b.BatchSize.ObserveValue(int64(len(batch)))

	// Launch timestamp for the sampled requests' linger and execute
	// spans; untraced batches skip both clock reads.
	var launch time.Time
	traced := false
	for _, r := range batch {
		if r.trace != nil {
			traced = true
			break
		}
	}
	if traced {
		launch = time.Now()
		for _, r := range batch {
			if r.trace != nil {
				linger := launch.Sub(r.deq)
				r.trace.AddSpan(obs.StageLinger, -1, 0, r.deq, linger)
				b.StageLinger.Observe(linger)
			}
		}
	}

	scorer, release, err := b.source.Acquire()
	if err != nil {
		for _, r := range batch {
			r.err = err
			b.finish(r)
		}
		return
	}
	defer release()

	// Partition into dense and sparse sub-batches.
	b.dDense, b.dReqs = b.dDense[:0], b.dReqs[:0]
	b.sIdx, b.sVal, b.sReqs = b.sIdx[:0], b.sVal[:0], b.sReqs[:0]
	for _, r := range batch {
		if r.dense != nil {
			b.dDense = append(b.dDense, r.dense)
			b.dReqs = append(b.dReqs, r)
		} else {
			b.sIdx = append(b.sIdx, r.idx)
			b.sVal = append(b.sVal, r.val)
			b.sReqs = append(b.sReqs, r)
		}
	}
	b.scoreSub(scorer, false, b.dReqs, launch)
	b.scoreSub(scorer, true, b.sReqs, launch)
}

// scoreSub scores one kind-homogeneous sub-batch (sparse selects the
// CSR staging, otherwise the dense staging; both are one launch). The
// kind flag instead of scorer-method closures keeps the steady-state
// path allocation-free. launch is non-zero only when the batch carries
// at least one sampled trace; it anchors the execute span.
func (b *Batcher) scoreSub(scorer Scorer, sparse bool, reqs []*request, launch time.Time) {
	n := len(reqs)
	if n == 0 {
		return
	}
	classes := scorer.Classes()
	anyProba := false
	for _, r := range reqs {
		if r.probaOut != nil {
			anyProba = true
			break
		}
	}
	var err error
	if anyProba {
		if cap(b.outProba) < n*classes {
			b.outProba = make([]float64, n*classes)
		}
		probs := b.outProba[:n*classes]
		if sparse {
			err = scorer.ProbaCSR(b.sIdx, b.sVal, probs)
		} else {
			err = scorer.ProbaDense(b.dDense, probs)
		}
		if err == nil {
			for i, r := range reqs {
				deliverProba(r, probs[i*classes:(i+1)*classes], classes)
			}
		}
	} else {
		if cap(b.outInt) < n {
			b.outInt = make([]int, n)
		}
		out := b.outInt[:n]
		if sparse {
			err = scorer.PredictCSR(b.sIdx, b.sVal, out)
		} else {
			err = scorer.PredictDense(b.dDense, out)
		}
		if err == nil {
			for i, r := range reqs {
				r.class = out[i]
			}
		}
	}
	// Execute span: launch to the end of this sub-batch's scoring.
	// Recorded before finishSub because finish publishes owned traces.
	if !launch.IsZero() {
		d := time.Since(launch)
		for _, r := range reqs {
			if r.trace != nil {
				r.trace.AddSpan(obs.StageExecute, -1, 0, launch, d)
				b.StageExecute.Observe(d)
			}
		}
	}
	b.finishSub(reqs, err)
}

// deliverProba hands one request its class and probability vector. A
// hot swap may change the model's class count between admission (when
// the caller sized probaOut) and scoring; that request fails with an
// explicit error instead of a silently truncated or padded vector —
// the retried request sees the new shape.
func deliverProba(r *request, row []float64, classes int) {
	if r.probaOut != nil && len(r.probaOut) != classes {
		r.err = fmt.Errorf("%w (now %d classes, request expected %d)", ErrModelShapeChanged, classes, len(r.probaOut))
		return
	}
	r.class = ArgmaxProba(row)
	if r.probaOut != nil {
		copy(r.probaOut, row)
	}
}

// finishSub answers a sub-batch. A staging/validation error from the
// scorer is fanned out to every request of the sub-batch after retrying
// each row individually, so one malformed row cannot fail its batchmates
// (the retry is off the steady-state path: it only runs on errors).
func (b *Batcher) finishSub(reqs []*request, err error) {
	if err == nil {
		for _, r := range reqs {
			b.finish(r)
		}
		return
	}
	if len(reqs) == 1 {
		reqs[0].err = err
		b.finish(reqs[0])
		return
	}
	scorer, release, aerr := b.source.Acquire()
	if aerr != nil {
		for _, r := range reqs {
			r.err = err
			b.finish(r)
		}
		return
	}
	defer release()
	classes := scorer.Classes()
	var out [1]int
	for _, r := range reqs {
		var rerr error
		if r.probaOut != nil && len(r.probaOut) != classes {
			rerr = fmt.Errorf("%w (now %d classes, request expected %d)", ErrModelShapeChanged, classes, len(r.probaOut))
		} else if r.dense != nil {
			if r.probaOut != nil {
				rerr = scorer.ProbaDense([][]float64{r.dense}, r.probaOut)
				if rerr == nil {
					r.class = ArgmaxProba(r.probaOut)
				}
			} else {
				rerr = scorer.PredictDense([][]float64{r.dense}, out[:])
				r.class = out[0]
			}
		} else {
			if r.probaOut != nil {
				rerr = scorer.ProbaCSR([][]int{r.idx}, [][]float64{r.val}, r.probaOut)
				if rerr == nil {
					r.class = ArgmaxProba(r.probaOut)
				}
			} else {
				rerr = scorer.PredictCSR([][]int{r.idx}, [][]float64{r.val}, out[:])
				r.class = out[0]
			}
		}
		r.err = rerr
		b.finish(r)
	}
}
