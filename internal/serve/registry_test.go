package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"newtonadmm/internal/device"
)

// ownedPredictor builds a predictor that owns its device (so the
// registry's teardown can be observed through Device().Closed()).
func ownedPredictor(t testing.TB, classes, features int, seed int64) *Predictor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, (classes-1)*features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	p, err := NewPredictor(w, classes, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegistryEmpty(t *testing.T) {
	reg := NewRegistry()
	if _, _, err := reg.Acquire(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("got %v, want ErrNoModel", err)
	}
	if _, ok := reg.Meta(); ok {
		t.Fatal("empty registry reported a model")
	}
	reg.Close() // no-op on empty
}

func TestRegistrySwapVersionsAndMeta(t *testing.T) {
	reg := NewRegistry()
	p1 := ownedPredictor(t, 3, 4, 1)
	v1 := reg.Swap(p1, ModelMeta{Path: "a.gob", Solver: "newton-admm"})
	if v1 != 1 {
		t.Fatalf("first version %d", v1)
	}
	meta, ok := reg.Meta()
	if !ok || meta.Version != 1 || meta.Path != "a.gob" || meta.Classes != 3 || meta.Features != 4 {
		t.Fatalf("meta %+v", meta)
	}
	p2 := ownedPredictor(t, 3, 4, 2)
	if v2 := reg.Swap(p2, ModelMeta{Path: "b.gob"}); v2 != 2 {
		t.Fatalf("second version %d", v2)
	}
	// No acquirers were holding p1: its device must be closed by now.
	if !p1.Device().Closed() {
		t.Fatal("retired predictor's device not closed")
	}
	if p2.Device().Closed() {
		t.Fatal("current predictor's device closed")
	}
	reg.Close()
	if !p2.Device().Closed() {
		t.Fatal("Close did not release the current predictor")
	}
}

// TestRegistryHotSwapZeroDowntime is the headline swap test: readers
// acquire and score continuously while models swap underneath; every
// acquire must succeed on a live (unclosed) device, and every retired
// snapshot must be released once its readers drain.
func TestRegistryHotSwapZeroDowntime(t *testing.T) {
	const classes, features = 4, 6
	reg := NewRegistry()
	preds := make([]*Predictor, 5)
	preds[0] = ownedPredictor(t, classes, features, 10)
	reg.Swap(preds[0], ModelMeta{})

	rng := rand.New(rand.NewSource(11))
	rows := randRows(rng, 4, features, 1)
	out := make([]int, len(rows))
	_ = out

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myOut := make([]int, len(rows))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, rel, err := reg.Acquire()
				if err != nil {
					errCh <- err
					return
				}
				p := s.(*Predictor)
				if p.Device().Closed() {
					rel()
					errCh <- errors.New("acquired a predictor with a closed device")
					return
				}
				if err := p.PredictDense(rows, myOut); err != nil {
					rel()
					errCh <- err
					return
				}
				rel()
			}
		}()
	}

	for i := 1; i < len(preds); i++ {
		time.Sleep(2 * time.Millisecond)
		preds[i] = ownedPredictor(t, classes, features, int64(10+i))
		reg.Swap(preds[i], ModelMeta{})
	}
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// All retired snapshots must now be fully released; the live one not.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < len(preds)-1; i++ {
		for !preds[i].Device().Closed() {
			if time.Now().After(deadline) {
				t.Fatalf("retired predictor %d still holds its device", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if preds[len(preds)-1].Device().Closed() {
		t.Fatal("live predictor closed prematurely")
	}
	reg.Close()
	if !preds[len(preds)-1].Device().Closed() {
		t.Fatal("registry Close did not release the last predictor")
	}
}

// TestRegistryAcquireHoldsSnapshotAcrossSwap: a reader holding a lease
// keeps its snapshot alive through a swap; release then closes it.
func TestRegistryAcquireHoldsSnapshotAcrossSwap(t *testing.T) {
	reg := NewRegistry()
	p1 := ownedPredictor(t, 3, 4, 20)
	reg.Swap(p1, ModelMeta{})

	s, rel, err := reg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	p2 := ownedPredictor(t, 3, 4, 21)
	reg.Swap(p2, ModelMeta{})
	if p1.Device().Closed() {
		t.Fatal("held snapshot closed while leased")
	}
	// The lease still scores correctly on the old snapshot.
	out := make([]int, 1)
	if err := s.(*Predictor).PredictDense([][]float64{{1, 2, 3, 4}}, out); err != nil {
		t.Fatal(err)
	}
	rel()
	if !p1.Device().Closed() {
		t.Fatal("released retired snapshot not closed")
	}
	reg.Close()
}

func TestDeviceClosedAccessor(t *testing.T) {
	d := device.New("closed-test", 1)
	if d.Closed() {
		t.Fatal("fresh device reports closed")
	}
	d.Close()
	if !d.Closed() {
		t.Fatal("closed device reports open")
	}
	d.Close() // idempotent
}
