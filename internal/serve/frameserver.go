package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/wire"
)

// FrameServer is the binary data plane's server side: a frame listener
// (DESIGN.md, "Binary data plane") serving the same Batcher and
// Registry as the HTTP Server, so a replica exposes both planes over
// one serving stack and hot swaps are visible on both at once.
//
// Each accepted connection is handled by one goroutine that reads
// frames in order and answers them in order — clients pipeline by
// writing ahead without waiting, and match answers by correlation ID.
// Request-shaped failures answer with an error frame and keep the
// connection; framing-level failures (bad magic, version, truncation)
// cannot be resynchronized and close it.
//
// Predict and proba requests submit their rows through the shared
// micro-batcher (so frame-plane and HTTP-plane traffic coalesce into
// the same kernel launches); partial-score requests bypass it exactly
// like the HTTP /v1/scores handler — the router already coalesced the
// client batch, so they score in at most two launches via the
// registry's predictor.
type FrameServer struct {
	reg    *Registry
	bat    *Batcher
	reload func() (int64, error) // nil: reload unsupported on this plane

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewFrameServer wires the frame listener's handler state. reload may
// be nil, which makes OpReload answer CodeNotImplemented.
func NewFrameServer(reg *Registry, bat *Batcher, reload func() (int64, error)) *FrameServer {
	return &FrameServer{reg: reg, bat: bat, reload: reload, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close (or a listener error) and
// blocks meanwhile; run it in its own goroutine.
func (s *FrameServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Close stops the listener, closes every live connection, and waits for
// their handlers to return.
func (s *FrameServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// connState is the per-connection reusable scratch: one of everything a
// handler needs, grown to high-water shapes so steady-state request
// handling performs no frame-layer allocations.
type connState struct {
	enc   wire.Encoder
	batch wire.Batch

	classes  []int     // predict output
	tickets  []Ticket  // batcher round-trip
	rowOf    []int     // ticket index -> arrival row
	probaBuf []float64 // rows x classes staging

	scoreBuf  []float64 // merged rows x cols tile, arrival order
	denseOut  []float64 // dense sub-batch tile
	sparseOut []float64 // sparse sub-batch tile
}

func (s *FrameServer) handleConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.wg.Done()
	}()
	fr := wire.NewReader(bufio.NewReaderSize(c, 64<<10))
	var st connState
	for {
		h, payload, err := fr.Next()
		if err != nil {
			// Framing errors are unrecoverable mid-stream: answer with a
			// best-effort error frame (correlation 0 — the request's ID
			// never parsed) and drop the connection.
			if errors.Is(err, wire.ErrBadFrame) {
				st.enc.Begin(wire.OpError, 0)
				st.enc.Error(wire.CodeBadRequest, err.Error())
				c.Write(st.enc.Bytes())
			}
			return
		}
		s.handleFrame(h, payload, &st)
		if _, err := c.Write(st.enc.Bytes()); err != nil {
			return
		}
	}
}

// wireCodeFor maps serving errors to the spec's error codes with the
// same taxonomy statusFor maps them to HTTP statuses.
func wireCodeFor(err error) wire.ErrCode {
	switch {
	case errors.Is(err, ErrQueueFull):
		return wire.CodeQueueFull
	case errors.Is(err, ErrNoModel):
		return wire.CodeNoModel
	case errors.Is(err, ErrModelShapeChanged):
		return wire.CodeShapeChanged
	case errors.Is(err, ErrClosed):
		return wire.CodeClosed
	default:
		return wire.CodeBadRequest
	}
}

// wireDetailFor extracts the admission rejection detail carried by a
// serving error: the wire-level ErrDetail code plus the policy's
// retry-after hint. Non-rejection errors map to DetailNone, which
// ErrorDetail encodes as a legacy error payload.
func wireDetailFor(err error) (wire.ErrDetail, time.Duration) {
	reason, retryAfter, ok := RejectionOf(err)
	if !ok {
		return wire.DetailNone, 0
	}
	switch reason {
	case control.ReasonRateLimited:
		return wire.DetailRateLimited, retryAfter
	case control.ReasonCostRejected:
		return wire.DetailCostRejected, retryAfter
	default:
		return wire.DetailQueueFull, retryAfter
	}
}

// remoteTrace adopts a trace propagated over the wire: a nonzero
// sampled ID starts a span collection on this replica's recorder under
// the router's trace ID, so the fleet's traces stitch across processes.
func (s *FrameServer) remoteTrace(id uint64, sampled bool) *obs.Trace {
	if id == 0 || !sampled {
		return nil
	}
	return s.bat.Recorder().StartRemote(id, time.Now())
}

// handleFrame dispatches one request and leaves the response frame in
// st.enc.
func (s *FrameServer) handleFrame(h wire.Header, payload []byte, st *connState) {
	fail := func(code wire.ErrCode, format string, args ...any) {
		st.enc.Begin(wire.OpError, h.Corr)
		st.enc.Error(code, fmt.Sprintf(format, args...))
	}
	// The trailers ride at the payload's end on any flagged frame;
	// strip in reverse append order — trace first, then priority —
	// before opcode-specific decoding.
	payload, traceID, sampled, err := wire.SplitTraceTrailer(h, payload)
	if err != nil {
		fail(wire.CodeBadRequest, "%v", err)
		return
	}
	payload, priByte, err := wire.SplitPriorityTrailer(h, payload)
	if err != nil {
		fail(wire.CodeBadRequest, "%v", err)
		return
	}
	pri := control.Priority(priByte)
	switch h.Op {
	case wire.OpMeta:
		meta, ok := s.reg.Meta()
		if !ok {
			fail(wire.CodeNoModel, "no model loaded")
			return
		}
		st.enc.Begin(wire.OpMetaResp, h.Corr)
		st.enc.MetaResp(wire.Meta{
			Version: meta.Version, Classes: meta.Classes, Features: meta.Features,
			ShardIndex: meta.ShardIndex, ShardCount: meta.ShardCount,
			ShardLow: meta.ShardLow, ShardHigh: meta.ShardHigh, TotalClasses: meta.TotalClasses,
			Zone: meta.Zone,
		})
	case wire.OpReload:
		if s.reload == nil {
			fail(wire.CodeNotImplemented, "no reloader configured")
			return
		}
		v, err := s.reload()
		if err != nil {
			fail(wire.CodeInternal, "reload failed: %v", err)
			return
		}
		st.enc.Begin(wire.OpReloadResp, h.Corr)
		st.enc.ReloadResp(v)
	case wire.OpPredict, wire.OpProba:
		s.handleBatch(h, payload, st, h.Op == wire.OpProba, pri, s.remoteTrace(traceID, sampled))
	case wire.OpScores:
		s.handleScoresFrame(h, payload, st, s.remoteTrace(traceID, sampled))
	default:
		fail(wire.CodeBadRequest, "unknown opcode %#x", h.Op)
	}
}

// handleBatch is the full-model data plane: decode, submit every row
// through the shared batcher (before waiting on any, so one request's
// rows coalesce), wait all, answer.
func (s *FrameServer) handleBatch(h wire.Header, payload []byte, st *connState, proba bool, pri control.Priority, tr *obs.Trace) {
	finishTrace := func() {
		if tr != nil {
			s.bat.Recorder().Finish(tr, time.Now())
			tr = nil
		}
	}
	fail := func(code wire.ErrCode, format string, args ...any) {
		st.enc.Begin(wire.OpError, h.Corr)
		st.enc.Error(code, fmt.Sprintf(format, args...))
		finishTrace()
	}
	// failErr carries the admission detail trailer when the error is a
	// rejection, so a router (or client) can distinguish queue_full from
	// rate_limited and honor the retry-after hint.
	failErr := func(err error, format string, args ...any) {
		st.enc.Begin(wire.OpError, h.Corr)
		detail, retryAfter := wireDetailFor(err)
		st.enc.ErrorDetail(wireCodeFor(err), fmt.Sprintf(format, args...), detail, retryAfter)
		finishTrace()
	}
	if err := st.batch.Decode(payload); err != nil {
		fail(wire.CodeBadRequest, "%v", err)
		return
	}
	rows := st.batch.Rows()
	if rows == 0 {
		fail(wire.CodeBadRequest, "no instances")
		return
	}
	meta, ok := s.reg.Meta()
	if !ok {
		fail(wire.CodeNoModel, "no model loaded")
		return
	}
	classes := meta.Classes
	if cap(st.classes) < rows {
		st.classes = make([]int, rows)
		st.rowOf = make([]int, rows)
	}
	st.classes = st.classes[:rows]
	st.rowOf = st.rowOf[:0]
	st.tickets = st.tickets[:0]
	if proba {
		if cap(st.probaBuf) < rows*classes {
			st.probaBuf = make([]float64, rows*classes)
		}
		st.probaBuf = st.probaBuf[:rows*classes]
	}

	// The propagated trace rides on the first row only — one
	// representative pass through the batcher's stages — so a wide
	// client batch cannot overflow the trace's fixed span array.
	var submitErr error
	d, sp := 0, 0
	rowTrace := tr
	for i, isSparse := range st.batch.Kind {
		var po []float64
		if proba {
			po = st.probaBuf[i*classes : (i+1)*classes]
		}
		var t Ticket
		var err error
		if isSparse {
			t, err = s.bat.SubmitCSRPri(st.batch.Idx[sp], st.batch.Val[sp], po, pri, rowTrace)
			sp++
		} else {
			t, err = s.bat.SubmitDensePri(st.batch.Dense[d], po, pri, rowTrace)
			d++
		}
		rowTrace = nil
		if err != nil {
			submitErr = fmt.Errorf("instance %d: %w", i, err)
			break
		}
		st.tickets = append(st.tickets, t)
		st.rowOf = append(st.rowOf, i)
	}
	// Every accepted ticket is waited even after a submit failure, so no
	// enqueued row is abandoned mid-batch.
	var waitErr error
	for k, t := range st.tickets {
		class, err := t.Wait()
		if err != nil && waitErr == nil {
			waitErr = fmt.Errorf("instance %d: %w", st.rowOf[k], err)
		}
		st.classes[st.rowOf[k]] = class
	}
	if submitErr == nil {
		submitErr = waitErr
	}
	if submitErr != nil {
		failErr(submitErr, "%v", submitErr)
		return
	}
	encStart := time.Now()
	if proba {
		st.enc.Begin(wire.OpProbaResp, h.Corr)
		st.enc.FloatsResp(meta.Version, rows, classes, st.probaBuf)
	} else {
		st.enc.Begin(wire.OpPredictResp, h.Corr)
		st.enc.PredictResp(meta.Version, st.classes)
	}
	if tr != nil {
		tr.AddSpan(obs.StageEncode, -1, 0, encStart, time.Since(encStart))
	}
	finishTrace()
}

// handleScoresFrame is the class-shard data plane: score the request's
// rows against this replica's weight slice and answer the raw partial
// tile with the snapshot version it was computed against.
func (s *FrameServer) handleScoresFrame(h wire.Header, payload []byte, st *connState, tr *obs.Trace) {
	// Partial scoring bypasses the batcher, so the whole handler is the
	// execute stage; finish publishes the trace on every exit path.
	if tr != nil {
		execStart := time.Now()
		defer func() {
			tr.AddSpan(obs.StageExecute, -1, 0, execStart, time.Since(execStart))
			s.bat.Recorder().Finish(tr, time.Now())
		}()
	}
	fail := func(code wire.ErrCode, format string, args ...any) {
		st.enc.Begin(wire.OpError, h.Corr)
		st.enc.Error(code, fmt.Sprintf(format, args...))
	}
	if err := st.batch.Decode(payload); err != nil {
		fail(wire.CodeBadRequest, "%v", err)
		return
	}
	rows := st.batch.Rows()
	if rows == 0 {
		fail(wire.CodeBadRequest, "no instances")
		return
	}
	p, meta, release, err := s.reg.AcquireCurrent()
	if err != nil {
		fail(wireCodeFor(err), "%v", err)
		return
	}
	defer release()
	m := p.Classes() - 1
	// Cols is the shard width the router planned against; a mismatch
	// means a shape-changing reload behind the router's back, and a
	// mismatched tile must never be written (same contract as the JSON
	// plane's cols field).
	if st.batch.Cols != 0 && st.batch.Cols != m {
		fail(wire.CodeShapeChanged, "shard now %d explicit classes, request planned %d", m, st.batch.Cols)
		return
	}
	nd, ns := len(st.batch.Dense), len(st.batch.Idx)
	if cap(st.scoreBuf) < rows*m {
		st.scoreBuf = make([]float64, rows*m)
	}
	st.scoreBuf = st.scoreBuf[:rows*m]
	if nd > 0 {
		if cap(st.denseOut) < nd*m {
			st.denseOut = make([]float64, nd*m)
		}
		st.denseOut = st.denseOut[:nd*m]
		if err := p.ScoresDense(st.batch.Dense, st.denseOut); err != nil {
			fail(wireCodeFor(err), "%v", err)
			return
		}
	}
	if ns > 0 {
		if cap(st.sparseOut) < ns*m {
			st.sparseOut = make([]float64, ns*m)
		}
		st.sparseOut = st.sparseOut[:ns*m]
		if err := p.ScoresCSR(st.batch.Idx, st.batch.Val, st.sparseOut); err != nil {
			fail(wireCodeFor(err), "%v", err)
			return
		}
	}
	// Interleave the per-kind tiles back into arrival order.
	d, sp := 0, 0
	for i, isSparse := range st.batch.Kind {
		dst := st.scoreBuf[i*m : (i+1)*m]
		if isSparse {
			copy(dst, st.sparseOut[sp*m:(sp+1)*m])
			sp++
		} else {
			copy(dst, st.denseOut[d*m:(d+1)*m])
			d++
		}
	}
	st.enc.Begin(wire.OpScoresResp, h.Corr)
	st.enc.FloatsResp(meta.Version, rows, m, st.scoreBuf)
}
