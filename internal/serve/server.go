package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/device"
	"newtonadmm/internal/obs"
)

// TraceHeader is the HTTP request header a router sets to propagate a
// sampled request's trace ID (16 hex digits) to a JSON-plane replica —
// the HTTP equivalent of the binary plane's trace trailer (DESIGN.md
// "Observability"). The replica adopts the ID, records its local spans
// under it, and publishes to its own recorder so the fleet's traces
// stitch by ID.
const TraceHeader = "X-Nadmm-Trace"

// PriorityHeader is the HTTP request header carrying the request's
// service class ("interactive", "batch", "background") — the JSON-plane
// equivalent of the binary plane's priority trailer. Absent means
// interactive, so pre-priority clients are unchanged; an unknown value
// is a 400 (a typo'd class silently served as interactive would defeat
// the starvation bound the classes exist for).
const PriorityHeader = "X-Nadmm-Priority"

// Server is the kserve-style HTTP surface over the batcher and registry:
//
//	POST /v1/predict  {"instances":[[...], {"indices":[...],"values":[...]}, ...]}
//	POST /v1/proba    same body, returns class probabilities as well
//	GET  /healthz     serving readiness + current model metadata
//	GET  /metricz     unified nadmm_* metrics exposition (internal/obs)
//	GET  /debug/tracez  recent sampled traces + slowest-request waterfall
//	POST /v1/reload   hot-swap the model via the configured reloader
//
// Dense instances are JSON arrays of Features numbers; sparse instances
// are {"indices":[...],"values":[...]} objects with strictly increasing
// zero-based indices. The two kinds may be mixed in one request.
type Server struct {
	reg    *Registry
	bat    *Batcher
	reload func() (int64, error) // optional hot-reload hook
	mux    *http.ServeMux
	start  time.Time
	obsReg *obs.Registry
}

// NewServer wires the HTTP surface. reload may be nil, which disables
// /v1/reload.
func NewServer(reg *Registry, bat *Batcher, reload func() (int64, error)) *Server {
	s := &Server{reg: reg, bat: bat, reload: reload, mux: http.NewServeMux(), start: time.Now()}
	s.obsReg = obs.NewRegistry()
	registerServeMetrics(s.obsReg, reg, bat, s.start)
	s.mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, false) })
	s.mux.HandleFunc("/v1/proba", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, true) })
	s.mux.HandleFunc("/v1/scores", s.handleScores)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.Handle("/debug/tracez", obs.TracezHandler(bat.Recorder()))
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	return s
}

// EnableDebug mounts net/http/pprof under /debug/pprof/. Opt-in (the
// -debug flag): profiling endpoints expose stack traces and must not be
// on by default on a serving port.
func (s *Server) EnableDebug() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// registerServeMetrics wires the serving tier's canonical metric rows
// (the name table in DESIGN.md "Observability") over the batcher's and
// registry's live counters. Scrapes read atomics; nothing is locked
// against the request path.
func registerServeMetrics(o *obs.Registry, reg *Registry, bat *Batcher, start time.Time) {
	o.CounterFunc("nadmm_requests_total", "", "instances completed (unit: rows; the router's figure counts client requests)",
		func() uint64 { return uint64(bat.Stats().Completed) })
	o.CounterFunc("nadmm_requests_submitted_total", "", "instances accepted into the admission queue",
		func() uint64 { return uint64(bat.Stats().Submitted) })
	o.CounterFunc("nadmm_requests_rejected_total", "", "instances rejected by admission-queue backpressure (HTTP 429)",
		func() uint64 { return uint64(bat.Stats().Rejected) })
	o.CounterFunc("nadmm_batches_total", "", "micro-batches launched",
		func() uint64 { return uint64(bat.Stats().Batches) })
	o.GaugeFunc("nadmm_batch_rows_mean", "", "mean rows per launched micro-batch", func() float64 {
		st := bat.Stats()
		if st.Batches == 0 {
			return 0
		}
		return float64(st.Completed) / float64(st.Batches)
	})
	o.GaugeFunc("nadmm_batch_size_p50", "", "median micro-batch size (rows)",
		func() float64 { return float64(bat.BatchSize.Quantile(0.5)) })
	o.GaugeFunc("nadmm_batch_size_max", "", "largest micro-batch size (rows)",
		func() float64 { return float64(bat.BatchSize.Max()) })
	o.Duration("nadmm_request_latency", "", "sampled end-to-end instance latency, submit to completion", bat.Latency)
	o.Duration("nadmm_stage_queue", "", "admission-queue wait of sampled instances", bat.StageQueue)
	o.Duration("nadmm_stage_linger", "", "dequeue-to-launch linger of sampled instances", bat.StageLinger)
	o.Duration("nadmm_stage_execute", "", "batch execute (kernel) time of sampled instances", bat.StageExecute)
	o.GaugeFunc("nadmm_model_version", "", "current model snapshot version (0 = none loaded)", func() float64 {
		if m, ok := reg.Meta(); ok {
			return float64(m.Version)
		}
		return 0
	})
	deviceStat := func(pick func(device.Stats) uint64) func() uint64 {
		return func() uint64 {
			p, rel, err := reg.AcquirePredictor()
			if err != nil {
				return 0
			}
			ds := p.Device().Stats()
			rel()
			return pick(ds)
		}
	}
	o.CounterFunc("nadmm_device_launches_total", "", "kernel launches on the serving device",
		deviceStat(func(ds device.Stats) uint64 { return uint64(ds.Launches) }))
	o.CounterFunc("nadmm_device_flops_total", "", "floating-point operations executed by the serving device",
		deviceStat(func(ds device.Stats) uint64 { return uint64(ds.FLOPs) }))
	o.CounterFunc("nadmm_device_bytes_total", "", "bytes moved by the serving device",
		deviceStat(func(ds device.Stats) uint64 { return uint64(ds.Bytes) }))
	registerControlMetrics(o, bat)
	o.GaugeFunc("nadmm_uptime_seconds", "", "seconds since server start",
		func() float64 { return time.Since(start).Seconds() })
	o.GaugeFunc("nadmm_goroutines", "", "goroutines in this process",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// registerControlMetrics wires the admission/priority rows shared by
// both serving tiers (the router registers the same shape over its own
// rejection stats).
func registerControlMetrics(o *obs.Registry, bat *Batcher) {
	stats := bat.AdmissionStats()
	for _, reason := range []control.Reason{control.ReasonQueueFull, control.ReasonRateLimited, control.ReasonCostRejected} {
		reason := reason
		o.CounterFunc("nadmm_admission_rejected_total", `reason="`+reason.String()+`"`,
			"instances rejected by admission control, by machine-readable reason",
			func() uint64 { return stats.Count(reason) })
	}
	for c := control.Priority(0); c < control.NumPriorities; c++ {
		c := c
		o.GaugeFunc("nadmm_priority_queue_depth", `class="`+c.String()+`"`,
			"requests waiting in the admission queue, by service class",
			func() float64 { return float64(bat.QueueLen(c)) })
	}
	o.GaugeFunc("nadmm_admission_active", "", "1 when an admission policy beyond the queue bound is installed",
		func() float64 {
			if bat.Policy() != nil {
				return 1
			}
			return 0
		})
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batcher returns the server's batcher (for stats and tests).
func (s *Server) Batcher() *Batcher { return s.bat }

type sparseInstance struct {
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

type predictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
	ModelVersion  int64       `json:"model_version"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Reason is the machine-readable admission rejection reason
	// ("queue_full", "rate_limited", "cost_rejected"), set on 429s only.
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeServeError is writeError plus the admission-control envelope: a
// 429 carries the machine-readable reason in the body and, when the
// policy computed a refill horizon, a Retry-After header (whole
// seconds, rounded up, min 1 — HTTP has no sub-second form).
func writeServeError(w http.ResponseWriter, err error, format string, args ...any) {
	status := statusFor(err)
	if status != http.StatusTooManyRequests {
		writeError(w, status, format, args...)
		return
	}
	reason, retryAfter, ok := RejectionOf(err)
	if !ok {
		reason = control.ReasonQueueFull
	}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, errorResponse{
		Error:  fmt.Sprintf(format, args...),
		Reason: reason.String(),
	})
}

// statusFor maps serving errors to HTTP statuses: backpressure is 429;
// missing model, shutdown, and mid-request hot-swap shape changes are
// 503 (transient — the request was valid when sent, retry succeeds);
// everything else is a 400-class request problem (bad shapes, bad
// indices).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrClosed), errors.Is(err, ErrModelShapeChanged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, proba bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	meta, ok := s.reg.Meta()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	pri, err := control.ParsePriority(r.Header.Get(PriorityHeader))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s: %v", PriorityHeader, err)
		return
	}

	resp := predictResponse{
		Predictions:  make([]int, len(req.Instances)),
		ModelVersion: meta.Version,
	}
	if proba {
		resp.Probabilities = make([][]float64, len(req.Instances))
		for i := range resp.Probabilities {
			resp.Probabilities[i] = make([]float64, meta.Classes)
		}
	}

	// A router-propagated trace (TraceHeader) is adopted under its wire
	// ID and rides on the first instance only — one representative pass
	// through the batcher's stages — then publishes to this replica's
	// recorder so the fleet's traces stitch by ID.
	var trace *obs.Trace
	if idStr := r.Header.Get(TraceHeader); idStr != "" {
		if id, err := strconv.ParseUint(idStr, 16, 64); err == nil && id != 0 {
			trace = s.bat.Recorder().StartRemote(id, time.Now())
		}
	}
	finishTrace := func() {
		if trace != nil {
			s.bat.Recorder().Finish(trace, time.Now())
			trace = nil
		}
	}

	// Submit every instance before waiting on any, so the instances of
	// one HTTP request coalesce into the same micro-batches.
	tickets := make([]Ticket, 0, len(req.Instances))
	submitErr := error(nil)
	rowTrace := trace
	for i, raw := range req.Instances {
		var probaOut []float64
		if proba {
			probaOut = resp.Probabilities[i]
		}
		t, err := s.submitInstance(raw, probaOut, pri, rowTrace)
		rowTrace = nil
		if err != nil {
			submitErr = fmt.Errorf("instance %d: %w", i, err)
			break
		}
		tickets = append(tickets, t)
	}
	var waitErr error
	for i, t := range tickets {
		class, err := t.Wait()
		if err != nil && waitErr == nil {
			waitErr = fmt.Errorf("instance %d: %w", i, err)
		}
		resp.Predictions[i] = class
	}
	if submitErr != nil {
		writeServeError(w, submitErr, "%v", submitErr)
		finishTrace()
		return
	}
	if waitErr != nil {
		writeServeError(w, waitErr, "%v", waitErr)
		finishTrace()
		return
	}
	encStart := time.Now()
	writeJSON(w, http.StatusOK, resp)
	if trace != nil {
		trace.AddSpan(obs.StageEncode, -1, 0, encStart, time.Since(encStart))
	}
	finishTrace()
}

// Instance is one decoded wire instance: a dense feature row or a
// sparse (indices, values) pair. Exactly one form is populated,
// discriminated by Sparse (a sparse instance may legitimately have zero
// nonzeros, so nil-ness of the slices cannot discriminate).
type Instance struct {
	Dense   []float64
	Indices []int
	Values  []float64
	Sparse  bool
}

// ParseInstance decodes one request instance: a dense JSON array of
// Features numbers, or a sparse {"indices":[...],"values":[...]} object
// with strictly increasing zero-based indices. The scatter-gather router
// shares this decoder so the router and single-node wire formats can
// never drift apart.
func ParseInstance(raw json.RawMessage) (Instance, error) {
	switch firstByte(raw) {
	case '[':
		var row []float64
		if err := json.Unmarshal(raw, &row); err != nil {
			return Instance{}, fmt.Errorf("bad dense instance: %w", err)
		}
		return Instance{Dense: row}, nil
	case '{':
		// Strict decoding: a typo'd key must be a 400, not a silently
		// all-zero row scored as the reference class.
		var sp sparseInstance
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return Instance{}, fmt.Errorf("bad sparse instance: %w", err)
		}
		if sp.Indices == nil || sp.Values == nil {
			return Instance{}, fmt.Errorf("sparse instance needs both \"indices\" and \"values\"")
		}
		return Instance{Indices: sp.Indices, Values: sp.Values, Sparse: true}, nil
	default:
		return Instance{}, fmt.Errorf("instance must be an array or an {indices, values} object")
	}
}

// submitInstance parses one instance and enqueues it under the
// request's service class, attaching the propagated trace when non-nil.
func (s *Server) submitInstance(raw json.RawMessage, probaOut []float64, pri control.Priority, trace *obs.Trace) (Ticket, error) {
	inst, err := ParseInstance(raw)
	if err != nil {
		return Ticket{}, err
	}
	if inst.Sparse {
		return s.bat.SubmitCSRPri(inst.Indices, inst.Values, probaOut, pri, trace)
	}
	return s.bat.SubmitDensePri(inst.Dense, probaOut, pri, trace)
}

// scoresResponse is the partial-logit wire format: raw explicit-class
// scores per instance (no softmax), plus the snapshot version they were
// computed against. Go's encoding/json round-trips finite float64 values
// bit-exactly, so a router merging these partials reproduces single-node
// output bitwise.
type scoresResponse struct {
	Scores       [][]float64 `json:"scores"`
	Cols         int         `json:"cols"`
	ModelVersion int64       `json:"model_version"`
}

// handleScores is the class-shard data plane: it scores every instance
// against this replica's weight rows and returns the raw partial score
// tile. It deliberately bypasses the micro-batcher — the router already
// batches a whole request's instances into one call, so the instances
// arrive pre-coalesced and are scored in at most two launches (one
// dense, one CSR).
func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	// Partition into dense and sparse sub-batches, remembering each
	// instance's slot so the response rows come back in request order.
	var (
		dense    [][]float64
		idx      [][]int
		val      [][]float64
		denseAt  []int
		sparseAt []int
	)
	for i, raw := range req.Instances {
		inst, err := ParseInstance(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		if inst.Sparse {
			idx = append(idx, inst.Indices)
			val = append(val, inst.Values)
			sparseAt = append(sparseAt, i)
		} else {
			dense = append(dense, inst.Dense)
			denseAt = append(denseAt, i)
		}
	}
	p, meta, release, err := s.reg.AcquireCurrent()
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	defer release()
	m := p.Classes() - 1
	resp := scoresResponse{
		Scores:       make([][]float64, len(req.Instances)),
		Cols:         m,
		ModelVersion: meta.Version,
	}
	if len(dense) > 0 {
		out := make([]float64, len(dense)*m)
		if err := p.ScoresDense(dense, out); err != nil {
			writeError(w, statusFor(err), "%v", err)
			return
		}
		for k, i := range denseAt {
			resp.Scores[i] = out[k*m : (k+1)*m]
		}
	}
	if len(idx) > 0 {
		out := make([]float64, len(idx)*m)
		if err := p.ScoresCSR(idx, val, out); err != nil {
			writeError(w, statusFor(err), "%v", err)
			return
		}
		for k, i := range sparseAt {
			resp.Scores[i] = out[k*m : (k+1)*m]
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func firstByte(raw json.RawMessage) byte {
	for _, c := range raw {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return c
	}
	return 0
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	meta, ok := s.reg.Meta()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no model"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"model":          meta,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.obsReg.WriteText(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.reload == nil {
		writeError(w, http.StatusNotImplemented, "no reloader configured (start the server with a model path)")
		return
	}
	version, err := s.reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "model_version": version})
}
