package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// Server is the kserve-style HTTP surface over the batcher and registry:
//
//	POST /v1/predict  {"instances":[[...], {"indices":[...],"values":[...]}, ...]}
//	POST /v1/proba    same body, returns class probabilities as well
//	GET  /healthz     serving readiness + current model metadata
//	GET  /metricz     flat text metrics (latency quantiles, counters)
//	POST /v1/reload   hot-swap the model via the configured reloader
//
// Dense instances are JSON arrays of Features numbers; sparse instances
// are {"indices":[...],"values":[...]} objects with strictly increasing
// zero-based indices. The two kinds may be mixed in one request.
type Server struct {
	reg    *Registry
	bat    *Batcher
	reload func() (int64, error) // optional hot-reload hook
	mux    *http.ServeMux
	start  time.Time
}

// NewServer wires the HTTP surface. reload may be nil, which disables
// /v1/reload.
func NewServer(reg *Registry, bat *Batcher, reload func() (int64, error)) *Server {
	s := &Server{reg: reg, bat: bat, reload: reload, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, false) })
	s.mux.HandleFunc("/v1/proba", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, true) })
	s.mux.HandleFunc("/v1/scores", s.handleScores)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batcher returns the server's batcher (for stats and tests).
func (s *Server) Batcher() *Batcher { return s.bat }

type sparseInstance struct {
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

type predictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
	ModelVersion  int64       `json:"model_version"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps serving errors to HTTP statuses: backpressure is 429;
// missing model, shutdown, and mid-request hot-swap shape changes are
// 503 (transient — the request was valid when sent, retry succeeds);
// everything else is a 400-class request problem (bad shapes, bad
// indices).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrClosed), errors.Is(err, ErrModelShapeChanged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, proba bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	meta, ok := s.reg.Meta()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}

	resp := predictResponse{
		Predictions:  make([]int, len(req.Instances)),
		ModelVersion: meta.Version,
	}
	if proba {
		resp.Probabilities = make([][]float64, len(req.Instances))
		for i := range resp.Probabilities {
			resp.Probabilities[i] = make([]float64, meta.Classes)
		}
	}

	// Submit every instance before waiting on any, so the instances of
	// one HTTP request coalesce into the same micro-batches.
	tickets := make([]Ticket, 0, len(req.Instances))
	submitErr := error(nil)
	for i, raw := range req.Instances {
		var probaOut []float64
		if proba {
			probaOut = resp.Probabilities[i]
		}
		t, err := s.submitInstance(raw, probaOut)
		if err != nil {
			submitErr = fmt.Errorf("instance %d: %w", i, err)
			break
		}
		tickets = append(tickets, t)
	}
	var waitErr error
	for i, t := range tickets {
		class, err := t.Wait()
		if err != nil && waitErr == nil {
			waitErr = fmt.Errorf("instance %d: %w", i, err)
		}
		resp.Predictions[i] = class
	}
	if submitErr != nil {
		writeError(w, statusFor(submitErr), "%v", submitErr)
		return
	}
	if waitErr != nil {
		writeError(w, statusFor(waitErr), "%v", waitErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Instance is one decoded wire instance: a dense feature row or a
// sparse (indices, values) pair. Exactly one form is populated,
// discriminated by Sparse (a sparse instance may legitimately have zero
// nonzeros, so nil-ness of the slices cannot discriminate).
type Instance struct {
	Dense   []float64
	Indices []int
	Values  []float64
	Sparse  bool
}

// ParseInstance decodes one request instance: a dense JSON array of
// Features numbers, or a sparse {"indices":[...],"values":[...]} object
// with strictly increasing zero-based indices. The scatter-gather router
// shares this decoder so the router and single-node wire formats can
// never drift apart.
func ParseInstance(raw json.RawMessage) (Instance, error) {
	switch firstByte(raw) {
	case '[':
		var row []float64
		if err := json.Unmarshal(raw, &row); err != nil {
			return Instance{}, fmt.Errorf("bad dense instance: %w", err)
		}
		return Instance{Dense: row}, nil
	case '{':
		// Strict decoding: a typo'd key must be a 400, not a silently
		// all-zero row scored as the reference class.
		var sp sparseInstance
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return Instance{}, fmt.Errorf("bad sparse instance: %w", err)
		}
		if sp.Indices == nil || sp.Values == nil {
			return Instance{}, fmt.Errorf("sparse instance needs both \"indices\" and \"values\"")
		}
		return Instance{Indices: sp.Indices, Values: sp.Values, Sparse: true}, nil
	default:
		return Instance{}, fmt.Errorf("instance must be an array or an {indices, values} object")
	}
}

// submitInstance parses one instance and enqueues it.
func (s *Server) submitInstance(raw json.RawMessage, probaOut []float64) (Ticket, error) {
	inst, err := ParseInstance(raw)
	if err != nil {
		return Ticket{}, err
	}
	if inst.Sparse {
		return s.bat.SubmitCSR(inst.Indices, inst.Values, probaOut)
	}
	return s.bat.SubmitDense(inst.Dense, probaOut)
}

// scoresResponse is the partial-logit wire format: raw explicit-class
// scores per instance (no softmax), plus the snapshot version they were
// computed against. Go's encoding/json round-trips finite float64 values
// bit-exactly, so a router merging these partials reproduces single-node
// output bitwise.
type scoresResponse struct {
	Scores       [][]float64 `json:"scores"`
	Cols         int         `json:"cols"`
	ModelVersion int64       `json:"model_version"`
}

// handleScores is the class-shard data plane: it scores every instance
// against this replica's weight rows and returns the raw partial score
// tile. It deliberately bypasses the micro-batcher — the router already
// batches a whole request's instances into one call, so the instances
// arrive pre-coalesced and are scored in at most two launches (one
// dense, one CSR).
func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	// Partition into dense and sparse sub-batches, remembering each
	// instance's slot so the response rows come back in request order.
	var (
		dense    [][]float64
		idx      [][]int
		val      [][]float64
		denseAt  []int
		sparseAt []int
	)
	for i, raw := range req.Instances {
		inst, err := ParseInstance(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "instance %d: %v", i, err)
			return
		}
		if inst.Sparse {
			idx = append(idx, inst.Indices)
			val = append(val, inst.Values)
			sparseAt = append(sparseAt, i)
		} else {
			dense = append(dense, inst.Dense)
			denseAt = append(denseAt, i)
		}
	}
	p, meta, release, err := s.reg.AcquireCurrent()
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	defer release()
	m := p.Classes() - 1
	resp := scoresResponse{
		Scores:       make([][]float64, len(req.Instances)),
		Cols:         m,
		ModelVersion: meta.Version,
	}
	if len(dense) > 0 {
		out := make([]float64, len(dense)*m)
		if err := p.ScoresDense(dense, out); err != nil {
			writeError(w, statusFor(err), "%v", err)
			return
		}
		for k, i := range denseAt {
			resp.Scores[i] = out[k*m : (k+1)*m]
		}
	}
	if len(idx) > 0 {
		out := make([]float64, len(idx)*m)
		if err := p.ScoresCSR(idx, val, out); err != nil {
			writeError(w, statusFor(err), "%v", err)
			return
		}
		for k, i := range sparseAt {
			resp.Scores[i] = out[k*m : (k+1)*m]
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func firstByte(raw json.RawMessage) byte {
	for _, c := range raw {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return c
	}
	return 0
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	meta, ok := s.reg.Meta()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no model"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"model":          meta,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.bat.Stats()
	fmt.Fprintf(w, "serve_requests_submitted %d\n", st.Submitted)
	fmt.Fprintf(w, "serve_requests_rejected %d\n", st.Rejected)
	fmt.Fprintf(w, "serve_requests_completed %d\n", st.Completed)
	fmt.Fprintf(w, "serve_batches %d\n", st.Batches)
	if st.Batches > 0 {
		fmt.Fprintf(w, "serve_batch_rows_mean %.2f\n", float64(st.Completed)/float64(st.Batches))
	}
	s.bat.Latency.WriteMetrics(w, "serve_request_latency")
	fmt.Fprintf(w, "serve_batch_size_p50 %d\n", int64(s.bat.BatchSize.Quantile(0.5)))
	fmt.Fprintf(w, "serve_batch_size_max %d\n", int64(s.bat.BatchSize.Max()))
	if meta, ok := s.reg.Meta(); ok {
		fmt.Fprintf(w, "serve_model_version %d\n", meta.Version)
		if p, rel, err := s.reg.AcquirePredictor(); err == nil {
			ds := p.Device().Stats()
			rel()
			fmt.Fprintf(w, "serve_device_launches %d\n", ds.Launches)
			fmt.Fprintf(w, "serve_device_flops %d\n", ds.FLOPs)
			fmt.Fprintf(w, "serve_device_bytes %d\n", ds.Bytes)
		}
	}
	fmt.Fprintf(w, "serve_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(w, "serve_goroutines %d\n", runtime.NumGoroutine())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.reload == nil {
		writeError(w, http.StatusNotImplemented, "no reloader configured (start the server with a model path)")
		return
	}
	version, err := s.reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "model_version": version})
}
